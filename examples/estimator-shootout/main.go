// Estimator shootout: all the estimators this repository implements —
// EPFIS, the paper's four baselines (ML, DC, SD, OT), and the classical
// formulas (Cardenas, Yao, naive bounds) — against ground truth on one
// dataset, across buffer sizes and scan sizes.
//
// Ground truth is an exact LRU simulation of each scan's page trace.
//
// Run with: go run ./examples/estimator-shootout
package main

import (
	"fmt"
	"log"

	"epfis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shootout: ")

	// The paper's synthetic configuration, scaled to N=100k:
	// theta=0.86 (80-20 skew), K=0.5 (fairly unclustered).
	const (
		n = 100_000
		i = 1_000
		r = 40
	)
	ds, err := epfis.GenerateDataset(epfis.SyntheticConfig{
		Name: "shootout", N: n, I: i, R: r, Theta: 0.86, K: 0.5, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	trace := ds.Trace()

	// Statistics passes.
	st, err := epfis.CollectStats(trace, epfis.Meta{
		Table: "shootout", Column: "key", T: ds.T, N: n, I: i,
	}, epfis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ss, err := epfis.CollectScanStats(ds.Keys, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: T=%d N=%d I=%d theta=0.86 K=0.5  ->  C=%.3f\n\n", ds.T, n, i, st.C)

	estimators := append(epfis.ClusterRatioBaselines(ss), epfis.Baselines()...)

	// Scans: 10%, 40%, and 90% of the key range, by entry count.
	bounds := ds.KeyRankBounds()
	scanFor := func(frac float64) (lo, hi int) {
		want := int(frac * float64(n))
		for k := 0; k+1 < len(bounds); k++ {
			if bounds[k+1]-bounds[0] >= want {
				return bounds[0], bounds[k+1]
			}
		}
		return 0, n
	}

	for _, frac := range []float64{0.1, 0.4, 0.9} {
		lo, hi := scanFor(frac)
		sigma := float64(hi-lo) / float64(n)
		partial := ds.SliceTrace(lo, hi)
		truth := epfis.AnalyzeTrace(partial)

		fmt.Printf("== scan of %.0f%% of records (sigma=%.3f) ==\n", frac*100, sigma)
		fmt.Printf("%-18s", "B (pages)")
		buffers := []int64{int64(ds.T) / 20, int64(ds.T) / 4, int64(ds.T) / 2, int64(ds.T)}
		for _, b := range buffers {
			fmt.Printf(" %10d", b)
		}
		fmt.Println()
		fmt.Printf("%-18s", "ACTUAL (LRU sim)")
		for _, b := range buffers {
			fmt.Printf(" %10d", truth.Fetches(int(b)))
		}
		fmt.Println()

		// EPFIS first.
		fmt.Printf("%-18s", "EPFIS")
		for _, b := range buffers {
			est, err := epfis.Estimate(st, b, sigma, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10.0f", est)
		}
		fmt.Println()
		for _, e := range estimators {
			fmt.Printf("%-18s", e.Name())
			for _, b := range buffers {
				v, err := e.Estimate(epfis.Params{
					T: ds.T, N: n, I: i, B: b, Sigma: sigma, S: 1,
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %10.0f", v)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("Note how only EPFIS and ML respond to B at all, and how the")
	fmt.Println("cluster-ratio algorithms (DC/SD/OT) are constants that can be")
	fmt.Println("orders of magnitude off — the paper's Figures 10-21 in miniature.")
}
