// Estimation service: run the statistics catalog + Est-IO as an HTTP
// service and cost candidate plans over the network, the way a fleet of
// query optimizers would.
//
//  1. Start the service in-process on an ephemeral port (in production run
//     cmd/epfis-serve).
//  2. Generate a synthetic index, run Subprogram LRU-Fit, and install the
//     resulting statistics over HTTP (PUT /v1/indexes/{table}/{column}).
//  3. Cost a whole batch of candidate plans — one buffer budget per plan —
//     in a single POST /v1/estimate/batch round trip.
//  4. Re-cost one plan twice to show the memo cache, then read /metrics.
//
// Run with: go run ./examples/estimation-service
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"epfis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("estimation-service: ")

	// 1. An in-memory catalog store behind the HTTP service.
	store := epfis.NewCatalogStore()
	srv, err := epfis.NewService(epfis.ServiceConfig{Store: store})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := srv.Serve(ctx, ln); err != nil {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("service listening on %s\n", base)

	// 2. Statistics collection (ANALYZE time): a 100k-record index with a
	// moderately clustered placement, fitted by LRU-Fit.
	ds, err := epfis.GenerateDataset(epfis.SyntheticConfig{
		Name: "orders", N: 100_000, I: 1_000, R: 40, K: 0.2, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, err := epfis.CollectStats(ds.Trace(), epfis.Meta{
		Table: "orders", Column: "key", T: ds.T, N: 100_000, I: 1_000,
	}, epfis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	body, err := json.Marshal(st)
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/indexes/orders/key", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var installed struct {
		Key        string `json:"key"`
		Generation uint64 `json:"generation"`
	}
	mustDecode(resp, &installed)
	fmt.Printf("installed statistics for %s (catalog generation %d)\n", installed.Key, installed.Generation)

	// 3. Cost candidate plans: the same scan (sigma = 0.1) under a sweep of
	// buffer budgets, all in one batch round trip.
	type planInput struct {
		Table  string  `json:"table"`
		Column string  `json:"column"`
		B      int64   `json:"b"`
		Sigma  float64 `json:"sigma"`
	}
	var batch struct {
		Requests []planInput `json:"requests"`
	}
	budgets := []int64{12, 25, 50, 100, 250, 500, 1000, 2500}
	for _, b := range budgets {
		batch.Requests = append(batch.Requests, planInput{"orders", "key", b, 0.1})
	}
	raw, err := json.Marshal(batch)
	if err != nil {
		log.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/estimate/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	var costed struct {
		Items []struct {
			Estimate *struct {
				B       int64   `json:"b"`
				Fetches float64 `json:"fetches"`
			} `json:"estimate"`
			Error string `json:"error"`
		} `json:"items"`
	}
	mustDecode(resp, &costed)
	fmt.Println("\ncandidate plans (sigma = 0.10):")
	fmt.Println("  buffer pages B | estimated data-page fetches")
	for _, item := range costed.Items {
		if item.Estimate == nil {
			log.Fatalf("batch item failed: %s", item.Error)
		}
		fmt.Printf("  %14d | %10.1f\n", item.Estimate.B, item.Estimate.Fetches)
	}

	// 4. Identical plan shapes hit the memo cache.
	single := base + "/v1/estimate?table=orders&column=key&b=500&sigma=0.25"
	for i := 0; i < 2; i++ {
		resp, err = http.Get(single)
		if err != nil {
			log.Fatal(err)
		}
		var est struct {
			Fetches float64 `json:"fetches"`
			Cached  bool    `json:"cached"`
		}
		mustDecode(resp, &est)
		fmt.Printf("\nestimate(B=500, sigma=0.25) = %.1f fetches (cached: %v)", est.Fetches, est.Cached)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var metrics struct {
		Estimates uint64 `json:"estimates"`
		Cache     struct {
			Hits     uint64  `json:"hits"`
			Misses   uint64  `json:"misses"`
			HitRatio float64 `json:"hitRatio"`
		} `json:"cache"`
	}
	mustDecode(resp, &metrics)
	fmt.Printf("\n\nmetrics: %d estimates served, cache %d hits / %d misses (ratio %.2f)\n",
		metrics.Estimates, metrics.Cache.Hits, metrics.Cache.Misses, metrics.Cache.HitRatio)
}

// mustDecode checks the HTTP status and decodes the JSON body.
func mustDecode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s %s: HTTP %d: %s", resp.Request.Method, resp.Request.URL.Path, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
