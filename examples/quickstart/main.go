// Quickstart: the minimal end-to-end EPFIS workflow.
//
//  1. Build a table with a partially clustered index (real heap pages and a
//     real B-tree, via the synthetic generator).
//  2. Run Subprogram LRU-Fit once to collect the index's statistics.
//  3. Ask Subprogram Est-IO for page-fetch estimates at different buffer
//     sizes and selectivities.
//  4. Check the estimates against real scans executed through a real LRU
//     buffer pool.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"epfis"
	"epfis/internal/buffer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. A 100k-record table, 40 records/page, 1000 distinct keys, with a
	// moderate clustering window (K = 0.1) and the paper's 5% noise.
	tbl, _, err := epfis.GenerateTable(epfis.SyntheticConfig{
		Name: "orders", N: 100_000, I: 1_000, R: 40, K: 0.1, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table %q: T=%d pages, N=%d records\n", tbl.Name, tbl.T(), tbl.N())

	// 2. Statistics collection (runs once, at ANALYZE time).
	st, err := epfis.CollectStatsFromIndex(tbl, "key", epfis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LRU-Fit: clustering factor C=%.3f, FPF curve %d segments over B in [%d, %d]\n\n",
		st.C, st.Curve.NumSegments(), st.BMin, st.BMax)

	// 3 + 4. Estimates vs reality for a few scans.
	fmt.Printf("%-28s %8s %12s %12s %8s\n", "SCAN", "BUFFER", "ESTIMATED", "ACTUAL", "ERR%")
	scans := []struct {
		name   string
		lo, hi int64
		buffer int
	}{
		{"full scan, small buffer", 1, 1000, 100},
		{"full scan, large buffer", 1, 1000, 2000},
		{"30% range, small buffer", 100, 399, 100},
		{"30% range, large buffer", 100, 399, 2000},
		{"2% range", 500, 519, 500},
	}
	ix, err := tbl.Index("key")
	if err != nil {
		log.Fatal(err)
	}
	for _, sc := range scans {
		records, err := ix.CountRange(epfis.Ge(sc.lo), epfis.Le(sc.hi))
		if err != nil {
			log.Fatal(err)
		}
		sigma := float64(records) / float64(tbl.N())

		est, err := epfis.Estimate(st, int64(sc.buffer), sigma, 1)
		if err != nil {
			log.Fatal(err)
		}

		pool, err := buffer.NewLRU(tbl.Store, sc.buffer)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tbl.ScanThroughPool(pool, "key", epfis.Ge(sc.lo), epfis.Le(sc.hi))
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * (est - float64(res.PageFetches)) / float64(res.PageFetches)
		fmt.Printf("%-28s %8d %12.0f %12d %7.1f%%\n", sc.name, sc.buffer, est, res.PageFetches, errPct)
	}
}
