// Sargable-predicates example: the paper's §2 two-column index in action.
//
// An index on (region, status) — region is the major column carrying the
// starting/stopping conditions, status is the minor column stored in every
// index entry. A predicate like "status = 3" is INDEX-SARGABLE: it is
// evaluated on the index entries during the scan, so non-matching records
// are never fetched. Est-IO models the resulting reduction in page fetches
// with an urn model (step 7); this example measures it against real scans.
//
// Run with: go run ./examples/sargable-predicates
package main

import (
	"fmt"
	"log"

	"epfis"
	"epfis/internal/btree"
	"epfis/internal/buffer"
	"epfis/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sargable: ")

	// 80k records, 800 regions, status in 1..10 (so "status = v" has
	// S = 0.1), unclustered placement (K = 0.6) where the reduction
	// matters most.
	const (
		n       = 80_000
		regions = 800
		bCard   = 10
	)
	ds, err := datagen.GenerateDataset(datagen.Config{
		Name: "claims", N: n, I: regions, R: 40, K: 0.6, Seed: 33,
		Column: "region", BCardinality: bCard,
	})
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := datagen.Materialize(ds)
	if err != nil {
		log.Fatal(err)
	}
	st, err := epfis.CollectStatsFromIndex(tbl, "region", epfis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table %q: T=%d pages, N=%d records, C=%.3f\n", tbl.Name, tbl.T(), tbl.N(), st.C)
	fmt.Printf("index on (region, status): status stored in every entry, %d distinct values\n\n", bCard)

	ix, err := tbl.Index("region")
	if err != nil {
		log.Fatal(err)
	}

	// A 25% region range, with and without "status = 3", at two buffer
	// sizes.
	lo, hi := int64(100), int64(299)
	records, err := ix.CountRange(epfis.Ge(lo), epfis.Le(hi))
	if err != nil {
		log.Fatal(err)
	}
	sigma := float64(records) / float64(n)
	fmt.Printf("query: region BETWEEN %d AND %d (sigma = %.3f)\n\n", lo, hi, sigma)

	fmt.Printf("%-34s %8s %12s %12s %8s\n", "PREDICATES", "BUFFER", "ESTIMATED", "ACTUAL", "ERR%")
	for _, b := range []int{150, 1500} {
		pool, err := buffer.NewLRU(tbl.Store, b)
		if err != nil {
			log.Fatal(err)
		}

		// Without the sargable predicate.
		plain, err := tbl.ScanThroughPool(pool, "region", epfis.Ge(lo), epfis.Le(hi))
		if err != nil {
			log.Fatal(err)
		}
		estPlain, err := epfis.Estimate(st, int64(b), sigma, 1)
		if err != nil {
			log.Fatal(err)
		}
		printRow("range only", b, estPlain, plain.PageFetches)

		// With "status = 3": evaluated on index entries, records filtered
		// BEFORE their pages are fetched.
		filtered, err := tbl.ScanThroughPoolFiltered(pool, "region", epfis.Ge(lo), epfis.Le(hi),
			func(e btree.Entry) bool { return e.Included == 3 })
		if err != nil {
			log.Fatal(err)
		}
		estSarg, err := epfis.Estimate(st, int64(b), sigma, 1.0/bCard)
		if err != nil {
			log.Fatal(err)
		}
		printRow(fmt.Sprintf("range AND status=3 (S=%.1f)", 1.0/bCard), b, estSarg, filtered.PageFetches)
		fmt.Println()
	}
	fmt.Println("Note how the saving depends on the buffer: with a small buffer every")
	fmt.Println("record costs its own fetch, so S=0.1 saves ~10x; with a large buffer")
	fmt.Println("the qualifying records share cached pages and the saving shrinks to")
	fmt.Println("~2x — the nonlinearity Est-IO's urn model (step 7) captures.")
}

func printRow(label string, b int, est float64, actual int64) {
	errPct := 100 * (est - float64(actual)) / float64(actual)
	fmt.Printf("%-34s %8d %12.0f %12d %7.1f%%\n", label, b, est, actual, errPct)
}
