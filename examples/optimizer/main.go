// Optimizer example: access-path selection with EPFIS costing — the paper's
// motivating scenario (§2).
//
// A table has two indexes: a well-clustered one ("orderdate", records mostly
// in date order) and a badly clustered one ("custid", customers interleaved
// across all pages). The optimizer must choose among a table scan, a partial
// index scan, and a full index scan — and the right answer flips with the
// available buffer size, which is exactly what EPFIS models and the constant
// cluster-ratio formulas miss.
//
// Run with: go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"epfis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimizer: ")

	catalog := epfis.NewCatalog()
	opt, err := epfis.NewOptimizer(catalog)
	if err != nil {
		log.Fatal(err)
	}

	// Two vertical partitions of the same logical "orders" table: one per
	// indexed column, each with its own physical clustering (the estimators
	// consume only T, N, I, C and the page trace, so this reproduces the
	// two-index regime exactly).
	for column, k := range map[string]float64{"orderdate": 0.005, "custid": 1.0} {
		noise := 0.05 // paper default
		if column == "orderdate" {
			noise = -1 // a true clustering index: records in key order
		}
		ds, err := epfis.GenerateDataset(epfis.SyntheticConfig{
			Name: "orders", Column: column,
			N: 200_000, I: 2_000, R: 50, K: k, Noise: noise, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := epfis.CollectStats(ds.Trace(), epfis.Meta{
			Table: "orders", Column: column, T: ds.T, N: 200_000, I: 2_000,
		}, epfis.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := catalog.Put(st); err != nil {
			log.Fatal(err)
		}
		h, err := epfis.BuildHistogram(ds.Keys, 64)
		if err != nil {
			log.Fatal(err)
		}
		opt.AddHistogram("orders", column, h)
		fmt.Printf("index orders.%-10s  T=%d  C=%.3f\n", column, st.T, st.C)
	}
	fmt.Println()

	show := func(title string, q epfis.Query) {
		best, plans, err := opt.Choose(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %s (buffer = %d pages) --\n", title, q.BufferPages)
		for _, p := range plans {
			marker := "  "
			if p.Kind == best.Kind && p.Index == best.Index {
				marker = "=>"
			}
			idx := p.Index
			if idx == "" {
				idx = "-"
			}
			fmt.Printf("  %s %-20s index=%-10s sigma=%.4f fetches=%9.0f sort=%6.0f cost=%9.0f\n",
				marker, p.Kind, idx, p.Sigma, p.DataFetches, p.SortPages, p.Cost)
		}
		fmt.Println()
	}

	// Query A: a 10% date-range query. The clustered date index wins at any
	// buffer size.
	dateRange := &epfis.RangePred{Column: "orderdate", HasLo: true, Lo: 100, HasHi: true, Hi: 299}
	show("10% range on the CLUSTERED date index", epfis.Query{
		Table: "orders", Range: dateRange, BufferPages: 200,
	})

	// Query B: a 3% range on the UNCLUSTERED customer index. With a small
	// buffer the index scan thrashes (one fetch per record) and the table
	// scan wins; with a table-sized buffer most re-references hit and the
	// index scan becomes the cheaper plan.
	custRange := &epfis.RangePred{Column: "custid", HasLo: true, Lo: 1, HasHi: true, Hi: 60}
	for _, b := range []int64{50, 4000} {
		show("3% range on the UNCLUSTERED customer index", epfis.Query{
			Table: "orders", Range: custRange, BufferPages: b,
		})
	}

	// Query C: ORDER BY orderdate with no range predicate: a full scan of
	// the date index delivers the order for free; the table scan must sort.
	show("full retrieval ORDER BY orderdate", epfis.Query{
		Table: "orders", OrderBy: "orderdate", BufferPages: 400,
	})

	// Query D: sargable predicate on top of the date range: fewer records
	// qualify, so fewer pages are fetched.
	show("10% date range plus a 1% sargable predicate", epfis.Query{
		Table: "orders", Range: dateRange,
		Sargable:    []epfis.SargPred{{Selectivity: 0.01}},
		BufferPages: 200,
	})
}
