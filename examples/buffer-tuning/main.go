// Buffer-tuning example: the DBA's what-if analysis from the paper's
// Figure 1 — how does the page-fetch count of a full index scan respond to
// buffer pool size, for indexes with different degrees of clustering?
//
// A single LRU-Fit pass per index answers the question for EVERY buffer size
// at once (the Mattson stack property); this example prints the FPF curves
// and the "knee" — the smallest buffer at which the scan stops re-fetching.
//
// Run with: go run ./examples/buffer-tuning
package main

import (
	"fmt"
	"log"
	"strings"

	"epfis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("buffer-tuning: ")

	type indexCase struct {
		name string
		k    float64
	}
	cases := []indexCase{
		{"clustered (K=0)", 0},
		{"mild (K=0.05)", 0.05},
		{"medium (K=0.20)", 0.20},
		{"random (K=1.0)", 1.0},
	}

	const (
		n = 120_000
		i = 1_200
		r = 40
	)
	fmt.Printf("table: N=%d records, R=%d records/page, T=%d pages\n\n", n, r, n/r)

	type fitted struct {
		name  string
		curve *epfis.FetchCurve
		stats *epfis.IndexStats
	}
	var fits []fitted
	for _, c := range cases {
		ds, err := epfis.GenerateDataset(epfis.SyntheticConfig{
			Name: "tune", N: n, I: i, R: r, K: c.k, Seed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := epfis.CollectStats(ds.Trace(), epfis.Meta{
			Table: "tune", Column: "key", T: ds.T, N: n, I: i,
		}, epfis.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fits = append(fits, fitted{name: c.name, curve: epfis.AnalyzeTrace(ds.Trace()), stats: st})
	}

	t := n / r
	fmt.Printf("%-18s %8s", "B (pages)", "B/T")
	for _, f := range fits {
		fmt.Printf(" %18s", f.name)
	}
	fmt.Println("   (full-scan page fetches, in multiples of T)")
	for _, frac := range []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0} {
		b := int(frac * float64(t))
		if b < 1 {
			b = 1
		}
		fmt.Printf("%-18d %8.2f", b, frac)
		for _, f := range fits {
			fmt.Printf(" %18.2f", float64(f.curve.Fetches(b))/float64(t))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Printf("%-18s %10s %14s %22s\n", "INDEX", "C", "F at B=1%T", "buffer for F=A (knee)")
	for _, f := range fits {
		knee := f.curve.MinBufferForFullCaching()
		fmt.Printf("%-18s %10.3f %13.1fT %17d pages\n",
			f.name, f.stats.C, float64(f.curve.Fetches(t/100))/float64(t), knee)
	}

	fmt.Println()
	fmt.Println("what-if: page fetches for a 10% scan at candidate buffer budgets")
	fmt.Printf("%-18s", "INDEX")
	budgets := []int64{100, 500, 1000, 2000, 3000}
	for _, b := range budgets {
		fmt.Printf(" %10s", fmt.Sprintf("B=%d", b))
	}
	fmt.Println()
	for _, f := range fits {
		fmt.Printf("%-18s", f.name)
		for _, b := range budgets {
			est, err := epfis.Estimate(f.stats, b, 0.10, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10.0f", est)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("Each row used ONE statistics pass; every estimate above is a")
	fmt.Println("constant-time interpolation of the stored 6-segment curve.")
}
