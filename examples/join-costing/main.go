// Join-costing example: the setting EPFIS's main baseline was born in.
// Mackert & Lohman's 1989 model costs the INNER index scan of a nested-loop
// join; this example runs real index nested-loop joins and compares both
// estimation approaches against measured inner page fetches:
//
//   - outer sorted on the join key  -> the inner reference trace is a
//     partial index scan -> EPFIS (Est-IO) is the right model;
//   - outer in physical heap order  -> probes hit the inner index in random
//     key order -> Mackert-Lohman is the right model.
//
// Run with: go run ./examples/join-costing
package main

import (
	"fmt"
	"log"

	"epfis"
	"epfis/internal/buffer"
	"epfis/internal/datagen"
	"epfis/internal/join"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("join: ")

	// Inner: 40k records, 10k keys (4 rows per key), lightly clustered —
	// enough physical locality that sorted probes can exploit it.
	innerDS, err := datagen.GenerateDataset(datagen.Config{
		Name: "lineitems", N: 40_000, I: 10_000, R: 40, K: 0.08, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	inner, err := datagen.Materialize(innerDS)
	if err != nil {
		log.Fatal(err)
	}
	innerStats, err := epfis.CollectStatsFromIndex(inner, "key", epfis.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Outer: 4000 unique keys covering 40% of the inner domain, placed
	// randomly (heap order scrambles the probes).
	outerDS, err := datagen.GenerateDataset(datagen.Config{
		Name: "orders", N: 4_000, I: 4_000, R: 40, K: 1, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	outer, err := datagen.Materialize(outerDS)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("inner %q: T=%d pages, N=%d, I=%d, C=%.3f\n", inner.Name, inner.T(), inner.N(), 10_000, innerStats.C)
	fmt.Printf("outer %q: %d unique probe keys (40%% of the inner domain)\n\n", outer.Name, outer.N())

	fmt.Printf("%-12s %8s %14s %12s %12s\n", "OUTER ORDER", "BUFFER", "ACTUAL INNER F", "EPFIS EST", "ML EST")
	for _, b := range []int{50, 250, 1000} {
		pool, err := buffer.NewLRU(inner.Store, b)
		if err != nil {
			log.Fatal(err)
		}
		for _, order := range []join.OuterOrder{join.ByKey, join.ByHeap} {
			res, err := join.IndexNestedLoop(outer, "key", inner, "key", order, pool)
			if err != nil {
				log.Fatal(err)
			}
			matched := int64(res.Matches)
			epfisEst, err := join.EstimateSortedProbes(innerStats, matched, int64(b))
			if err != nil {
				log.Fatal(err)
			}
			mlEst, err := join.EstimateRandomProbes(innerStats, int64(res.ProbeKeys), int64(b))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %8d %14d %12.0f %12.0f\n", order, b, res.InnerFetches, epfisEst, mlEst)
		}
		fmt.Println()
	}
	fmt.Println("Read each row against its home model: EPFIS tracks the key-order rows,")
	fmt.Println("ML tracks the heap-order rows — and the two orders really do cost")
	fmt.Println("differently, which is why the optimizer needs both estimates.")
}
