// Command epfis-experiments regenerates every table and figure of the
// paper's evaluation (§5) plus the ablation studies DESIGN.md calls out:
//
//	epfis-experiments                  # scaled run (fast, shape-preserving)
//	epfis-experiments -full            # paper-size run (N = 10^6 synthetic, full GWL shapes)
//	epfis-experiments -only figure-13  # one experiment
//	epfis-experiments -list            # list experiment ids
//
// Output is text: a value table per figure (the same series the paper
// plots) followed by an ASCII chart. Paper-vs-measured numbers are recorded
// in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"epfis/internal/experiment"
)

type runner func(cfg experiment.Config, w io.Writer) error

func figureRunner(fn func(experiment.Config) (*experiment.FigureResult, error)) runner {
	return func(cfg experiment.Config, w io.Writer) error {
		fig, err := fn(cfg)
		if err != nil {
			return err
		}
		return fig.Render(w)
	}
}

func tableRunner(fn func(experiment.Config) (*experiment.TableResult, error)) runner {
	return func(cfg experiment.Config, w io.Writer) error {
		tbl, err := fn(cfg)
		if err != nil {
			return err
		}
		return tbl.Render(w)
	}
}

func experiments() (map[string]runner, []string) {
	m := map[string]runner{
		"table-2":  tableRunner(experiment.RunTable2),
		"table-3":  tableRunner(experiment.RunTable3),
		"figure-1": figureRunner(experiment.RunFigure1),
		"summary-gwl": func(cfg experiment.Config, w io.Writer) error {
			var figs []*experiment.FigureResult
			for f := 2; f <= 9; f++ {
				fig, err := experiment.RunGWLFigure(f, cfg)
				if err != nil {
					return err
				}
				figs = append(figs, fig)
			}
			return experiment.MaxErrorSummary("summary-gwl",
				"Maximum |error| per algorithm across the GWL figures (paper §5.1)", figs).Render(w)
		},
		"summary-synthetic": func(cfg experiment.Config, w io.Writer) error {
			var figs []*experiment.FigureResult
			for _, spec := range experiment.SyntheticFigures {
				fig, err := experiment.RunSyntheticFigure(spec, cfg)
				if err != nil {
					return err
				}
				figs = append(figs, fig)
			}
			return experiment.MaxErrorSummary("summary-synthetic",
				"Maximum |error| per algorithm across the synthetic figures (paper §5.2)", figs).Render(w)
		},
		"ablation-segments": func(cfg experiment.Config, w io.Writer) error {
			fig, err := experiment.RunSegmentCountAblation(cfg, nil)
			if err != nil {
				return err
			}
			return fig.Render(w)
		},
		"ablation-spacing":    figureRunner(experiment.RunSpacingAblation),
		"ablation-fitter":     figureRunner(experiment.RunFitterAblation),
		"ablation-correction": figureRunner(experiment.RunCorrectionAblation),
		"study-scan-size":     figureRunner(experiment.RunScanSizeStudy),
		"study-sorted-rids":   figureRunner(experiment.RunSortedRIDStudy),
		"study-sargable":      figureRunner(experiment.RunSargableStudy),
		"study-policy":        figureRunner(experiment.RunPolicyStudy),
		"study-contention":    figureRunner(experiment.RunContentionStudy),
	}
	for f := 2; f <= 9; f++ {
		f := f
		m[fmt.Sprintf("figure-%d", f)] = func(cfg experiment.Config, w io.Writer) error {
			fig, err := experiment.RunGWLFigure(f, cfg)
			if err != nil {
				return err
			}
			return fig.Render(w)
		}
	}
	for _, spec := range experiment.SyntheticFigures {
		spec := spec
		m[fmt.Sprintf("figure-%d", spec.Figure)] = func(cfg experiment.Config, w io.Writer) error {
			fig, err := experiment.RunSyntheticFigure(spec, cfg)
			if err != nil {
				return err
			}
			return fig.Render(w)
		}
	}
	order := []string{"table-2", "table-3", "figure-1"}
	for f := 2; f <= 21; f++ {
		order = append(order, fmt.Sprintf("figure-%d", f))
	}
	order = append(order,
		"summary-gwl", "summary-synthetic",
		"ablation-segments", "ablation-spacing", "ablation-fitter", "ablation-correction",
		"study-scan-size", "study-sorted-rids", "study-sargable", "study-policy", "study-contention",
	)
	return m, order
}

func main() {
	var (
		full  = flag.Bool("full", false, "paper-size run (slow): synthetic N=10^6, full GWL table sizes")
		scale = flag.Int("scale", 10, "dataset scale divisor for non-full runs")
		scans = flag.Int("scans", 200, "scans per error sweep")
		seed  = flag.Int64("seed", 1, "random seed")
		only  = flag.String("only", "", "run a single experiment id")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	reg, order := experiments()
	if *list {
		ids := make([]string, 0, len(reg))
		for id := range reg {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	cfg := experiment.Config{Scale: *scale, Scans: *scans, Seed: *seed}
	if *full {
		cfg.Scale = 1
	}

	run := func(id string) {
		r, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "epfis-experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		if err := r(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "epfis-experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("   [%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *only != "" {
		run(*only)
		return
	}
	for _, id := range order {
		run(id)
	}
}
