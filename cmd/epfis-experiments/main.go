// Command epfis-experiments regenerates every table and figure of the
// paper's evaluation (§5) plus the ablation studies DESIGN.md calls out:
//
//	epfis-experiments                    # scaled run (fast, shape-preserving)
//	epfis-experiments -full              # paper-size run (N = 10^6 synthetic, full GWL shapes)
//	epfis-experiments -only figure-13    # one experiment (comma-separate for several)
//	epfis-experiments -parallel 8        # run experiments on 8 workers
//	epfis-experiments -list              # list experiment ids
//
// Experiments run on the experiment engine's worker pool (-parallel,
// default GOMAXPROCS). Results are bit-identical at any parallelism;
// rendering always follows the canonical order. Progress and per-experiment
// timing go to stderr, results to stdout: a value table per figure (the
// same series the paper plots) followed by an ASCII chart. Paper-vs-measured
// numbers are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"epfis/internal/experiment"
)

// selectExperiments resolves the -only flag (comma-separated ids; empty =
// the full registry in canonical order).
func selectExperiments(only string) ([]experiment.Experiment, error) {
	if only == "" {
		return experiment.Registry(), nil
	}
	var ids []string
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return experiment.LookupExperiments(ids)
}

func main() {
	var (
		full     = flag.Bool("full", false, "paper-size run (slow): synthetic N=10^6, full GWL table sizes")
		scale    = flag.Int("scale", 10, "dataset scale divisor for non-full runs")
		scans    = flag.Int("scans", 200, "scans per error sweep")
		seed     = flag.Int64("seed", 1, "random seed")
		only     = flag.String("only", "", "run a comma-separated subset of experiment ids")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"experiments run concurrently (results are identical at any value)")
	)
	flag.Parse()

	if *list {
		var ids []string
		for _, e := range experiment.Registry() {
			ids = append(ids, e.ID)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	exps, err := selectExperiments(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "epfis-experiments: %v (use -list)\n", err)
		os.Exit(2)
	}

	cfg := experiment.Config{Scale: *scale, Scans: *scans, Seed: *seed}
	if *full {
		cfg.Scale = 1
	}

	eng := experiment.Engine{
		Parallel: *parallel,
		Progress: func(p experiment.Progress) {
			if !p.Done {
				return
			}
			status := "done"
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%2d/%d] %-20s %s in %v\n",
				p.Index+1, p.Total, p.ID, status, p.Elapsed.Round(time.Millisecond))
		},
	}
	start := time.Now()
	reports := eng.RunAll(cfg, exps)

	failed := 0
	for _, r := range reports {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "epfis-experiments: %s: %v\n", r.ID, r.Err)
			failed++
			continue
		}
		// Timing goes to stderr with the progress events; stdout carries only
		// the results, so runs at different -parallel diff byte-identically.
		if err := r.Result.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "epfis-experiments: render %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "epfis-experiments: %d experiment(s) in %v (parallel=%d)\n",
		len(reports), time.Since(start).Round(time.Millisecond), *parallel)
	if failed > 0 {
		os.Exit(1)
	}
}
