package main

import (
	"io"
	"strings"
	"testing"

	"epfis/internal/experiment"
)

func TestRegistryCoversOrder(t *testing.T) {
	reg, order := experiments()
	seen := map[string]bool{}
	for _, id := range order {
		if _, ok := reg[id]; !ok {
			t.Errorf("order lists unknown experiment %q", id)
		}
		if seen[id] {
			t.Errorf("order repeats %q", id)
		}
		seen[id] = true
	}
	for id := range reg {
		if !seen[id] {
			t.Errorf("experiment %q missing from default order", id)
		}
	}
	// Every paper table and figure must be present.
	for _, id := range []string{"table-2", "table-3", "figure-1", "figure-9", "figure-21"} {
		if _, ok := reg[id]; !ok {
			t.Errorf("missing %q", id)
		}
	}
}

func TestRunnersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	reg, _ := experiments()
	cfg := experiment.Config{Scale: 50, Scans: 20, Seed: 1}
	for _, id := range []string{"table-2", "figure-13", "study-sargable"} {
		var sb strings.Builder
		if err := reg[id](cfg, &sb); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(sb.String(), id) {
			t.Errorf("%s output does not name itself", id)
		}
	}
	var _ io.Writer
}
