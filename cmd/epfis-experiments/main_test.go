package main

import (
	"bytes"
	"strings"
	"testing"

	"epfis/internal/experiment"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(experiment.Registry()) {
		t.Errorf("empty -only selected %d of %d experiments", len(all), len(experiment.Registry()))
	}
	// Every paper table and figure must be selectable.
	for _, id := range []string{"table-2", "table-3", "figure-1", "figure-9", "figure-21"} {
		exps, err := selectExperiments(id)
		if err != nil || len(exps) != 1 || exps[0].ID != id {
			t.Errorf("selecting %q: exps=%v err=%v", id, exps, err)
		}
	}
	exps, err := selectExperiments(" figure-13 , table-2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].ID != "figure-13" || exps[1].ID != "table-2" {
		t.Errorf("comma selection wrong: %v", exps)
	}
	if _, err := selectExperiments("figure-99"); err == nil {
		t.Error("unknown id did not error")
	}
}

func TestRunnersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	exps, err := selectExperiments("table-2,figure-13,study-sargable")
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiment.Config{Scale: 50, Scans: 20, Seed: 1}
	for _, e := range exps {
		res, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		var sb bytes.Buffer
		if err := res.Render(&sb); err != nil {
			t.Fatalf("%s render: %v", e.ID, err)
		}
		if !strings.Contains(sb.String(), e.ID) {
			t.Errorf("%s output does not name itself", e.ID)
		}
	}
}
