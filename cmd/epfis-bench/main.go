// Command epfis-bench measures the repository's perf-tracked paths and
// writes machine-readable baselines. Suites are selected with -suite:
//
// -suite cluster (BENCH_cluster.json, via `make bench-cluster`) measures
// the cluster data plane over an in-process multi-node cluster: proxied
// estimate cost at a non-owner node, quorum PUT latency with and without a
// faultnet-slowed straggler peer (gating the fast-ack property), and
// delta anti-entropy bytes-on-wire for a 1-key divergence against the full
// snapshot stream. See cluster.go.
//
// -suite serve (BENCH_serve.json, via `make bench-serve`) measures the
// estimation service's serving path at the handler level — single estimate,
// cache hit, cache miss, batch64, and parallel clients — and enforces the
// committed allocation budgets (-max-allocs-single, -max-allocs-batch64),
// exiting non-zero on a breach so CI fails on serving-path allocation
// regressions.
//
// -suite experiments (BENCH_experiments.json, via `make bench-json`)
// measures the experiment engine:
//
//   - microbenchmarks of the pooled Mattson simulator against the
//     fresh-structures legacy path, and of the pooled parallel Measure
//     against the per-scan-allocation legacy loop;
//   - one warm-cache error sweep (the engine's marginal per-figure cost);
//   - wall-clock for the full experiment suite through the engine at
//     -parallel 1 and -parallel 4, plus an uncached baseline that drops the
//     shared build cache between experiments (the pre-engine behavior);
//   - a determinism bit: the parallel-1 and parallel-4 suite runs must
//     render byte-identical output.
//
// Benchmarks run through testing.Benchmark, so numbers come from the std
// benchmark machinery (auto-scaled iteration counts), not from parsing
// benchmark text output. num_cpu and gomaxprocs are recorded so readers can
// judge the parallel numbers: on a single-CPU machine the parallel-4 run
// cannot beat serial, only match it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"epfis/internal/datagen"
	"epfis/internal/experiment"
	"epfis/internal/lrusim"
	"epfis/internal/storage"
	"epfis/internal/workload"
)

type benchEntry struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type suiteReport struct {
	Experiments                 int     `json:"experiments"`
	Scale                       int     `json:"scale"`
	Scans                       int     `json:"scans"`
	NumCPU                      int     `json:"num_cpu"`
	WallSecondsParallel1        float64 `json:"wall_seconds_parallel_1"`
	WallSecondsParallel4        float64 `json:"wall_seconds_parallel_4"`
	WallSecondsUncachedBaseline float64 `json:"wall_seconds_uncached_baseline"`
	// SpeedupParallel4VsSerial is null on a single-CPU host, where the
	// parallel-4 run cannot beat serial and a "speedup" figure would be
	// scheduler noise presented as signal; the Note says why.
	SpeedupParallel4VsSerial       *float64 `json:"speedup_parallel_4_vs_serial"`
	SpeedupParallel4VsSerialNote   string   `json:"speedup_parallel_4_vs_serial_note,omitempty"`
	SpeedupEngineVsUncached        float64  `json:"speedup_engine_vs_uncached"`
	DeterministicAcrossParallelism bool     `json:"deterministic_across_parallelism"`
}

type report struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	NumCPU      int          `json:"num_cpu"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Benchmarks  []benchEntry `json:"benchmarks"`
	Suite       suiteReport  `json:"suite"`
}

func entry(name string, r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		Name:        name,
		Ops:         r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// lcgTrace builds a deterministic pseudo-random reference trace without
// importing the test-only helpers of internal/lrusim.
func lcgTrace(n int, pages uint64) lrusim.Trace {
	trace := make(lrusim.Trace, n)
	state := uint64(12345)
	for i := range trace {
		state = state*6364136223846793005 + 1442695040888963407
		trace[i] = storage.PageID((state >> 33) % pages)
	}
	return trace
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "epfis-bench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		suite = flag.String("suite", "experiments", "which suite to run: experiments | serve | ingest | cluster")
		out   = flag.String("out", "", "output path for the JSON baseline (default BENCH_<suite>.json)")
		scale = flag.Int("scale", 25, "dataset scale divisor for the suite runs")
		scans = flag.Int("scans", 20, "scans per error sweep in the suite runs")

		maxAllocsSingle = flag.Int64("max-allocs-single", 8,
			"serve suite: fail when serve/single exceeds this allocs/op")
		maxAllocsBatch64 = flag.Int64("max-allocs-batch64", 64,
			"serve suite: fail when serve/batch64 exceeds this allocs/op")

		maxAllocsFeed = flag.Int64("max-allocs-feed", 2,
			"ingest suite: fail when lrusim/accum_feed_512 exceeds this amortized allocs/op")
		minWALSpeedup = flag.Float64("min-wal-speedup", 10,
			"ingest suite: fail when WAL mutation throughput is below this multiple of the rename-per-commit baseline")

		maxAllocsProxied = flag.Int64("max-allocs-proxied", 32,
			"cluster suite: fail when cluster/proxied_estimate exceeds this allocs/op")
		maxQuorumSlowdown = flag.Float64("max-slowdown-quorum", 2,
			"cluster suite: fail when a quorum PUT with one slowed non-owner peer exceeds this multiple of the no-fault latency")
		maxDeltaFraction = flag.Float64("max-delta-fraction", 0.10,
			"cluster suite: fail when a 1-key delta sync moves more than this fraction of the full snapshot's bytes")
	)
	flag.Parse()

	switch *suite {
	case "serve":
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		if !runServeSuite(*out, allocBudgets{
			SingleAllocsPerOpMax:  *maxAllocsSingle,
			Batch64AllocsPerOpMax: *maxAllocsBatch64,
		}) {
			os.Exit(1)
		}
		return
	case "ingest":
		if *out == "" {
			*out = "BENCH_ingest.json"
		}
		if !runIngestSuite(*out, ingestBudgets{
			FeedAllocsPerOpMax: *maxAllocsFeed,
			WALSpeedupMin:      *minWALSpeedup,
		}) {
			os.Exit(1)
		}
		return
	case "cluster":
		if *out == "" {
			*out = "BENCH_cluster.json"
		}
		if !runClusterSuite(*out, clusterBudgets{
			ProxiedAllocsPerOpMax: *maxAllocsProxied,
			QuorumSlowdownMax:     *maxQuorumSlowdown,
			DeltaBytesFractionMax: *maxDeltaFraction,
		}) {
			os.Exit(1)
		}
		return
	case "experiments":
		if *out == "" {
			*out = "BENCH_experiments.json"
		}
	default:
		fatalf("unknown -suite %q (want experiments, serve, ingest, or cluster)", *suite)
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	// --- Simulator microbenchmarks: pooled Scratch vs fresh structures. ---
	trace := lcgTrace(100_000, 2_000)
	scratch := lrusim.NewScratch()
	rep.Benchmarks = append(rep.Benchmarks,
		entry("lrusim/scratch_analyze_100k", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scratch.Analyze(trace)
			}
		})),
		entry("lrusim/tree_analyze_legacy_100k", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				(lrusim.TreeSimulator{}).Run(trace).FetchCurve()
			}
		})),
	)

	// --- Measure: pooled parallel path vs the per-scan-allocation loop. ---
	// Same shape as the internal/workload Measure benchmarks, so the two
	// harnesses report comparable numbers.
	ds, err := datagen.GenerateDataset(datagen.Config{
		Name: "bench", N: 100_000, I: 1_000, R: 20, K: 0.2, Seed: 1,
	})
	if err != nil {
		fatalf("dataset: %v", err)
	}
	gen, err := workload.NewGenerator(ds, 7)
	if err != nil {
		fatalf("generator: %v", err)
	}
	benchScans := gen.Mix(200, 0.5)
	rep.Benchmarks = append(rep.Benchmarks,
		entry("workload/measure_200scans_pooled", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				workload.Measure(ds, benchScans)
			}
		})),
		entry("workload/measure_200scans_legacy", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := make([]workload.Measured, len(benchScans))
				for j, s := range benchScans {
					tr := ds.SliceTrace(s.Lo, s.Hi)
					out[j] = workload.Measured{Scan: s, Curve: (lrusim.TreeSimulator{}).Run(tr).FetchCurve()}
				}
			}
		})),
	)

	// --- Warm-cache error sweep: the engine's marginal per-figure cost once
	// the dataset and suite are cached (the figure-level cache is bypassed by
	// calling the runner directly, so the sweep itself runs every op). ---
	cfg := experiment.Config{Scale: *scale, Scans: *scans, Seed: 1}
	experiment.ClearSharedCache()
	spec13, err := experiment.SyntheticSpecFor(13)
	if err != nil {
		fatalf("spec: %v", err)
	}
	rep.Benchmarks = append(rep.Benchmarks,
		entry("experiment/figure13_sweep_warm_cache", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunSyntheticFigure(spec13, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})),
	)

	// --- Full-suite wall clock: engine at parallel 1 and 4, then the
	// uncached per-experiment baseline. Rendered bytes from the two engine
	// runs feed the determinism bit. ---
	exps := experiment.Registry()
	rep.Suite = suiteReport{Experiments: len(exps), Scale: *scale, Scans: *scans, NumCPU: rep.NumCPU}
	runSuite := func(parallel int) (float64, [][]byte) {
		experiment.ClearSharedCache()
		defer experiment.ClearSharedCache()
		eng := experiment.Engine{Parallel: parallel}
		start := time.Now()
		reports := eng.RunAll(cfg, exps)
		elapsed := time.Since(start).Seconds()
		rendered := make([][]byte, len(reports))
		for i, r := range reports {
			if r.Err != nil {
				fatalf("suite (parallel=%d) %s: %v", parallel, r.ID, r.Err)
			}
			var buf bytes.Buffer
			if err := r.Result.Render(&buf); err != nil {
				fatalf("render %s: %v", r.ID, err)
			}
			rendered[i] = buf.Bytes()
		}
		return elapsed, rendered
	}
	var serialOut, parallelOut [][]byte
	rep.Suite.WallSecondsParallel1, serialOut = runSuite(1)
	rep.Suite.WallSecondsParallel4, parallelOut = runSuite(4)
	rep.Suite.DeterministicAcrossParallelism = true
	for i := range serialOut {
		if !bytes.Equal(serialOut[i], parallelOut[i]) {
			rep.Suite.DeterministicAcrossParallelism = false
			fmt.Fprintf(os.Stderr, "epfis-bench: %s renders differently at parallel 1 vs 4\n", exps[i].ID)
		}
	}

	start := time.Now()
	for _, e := range exps {
		experiment.ClearSharedCache()
		if _, err := e.Run(cfg); err != nil {
			fatalf("uncached baseline %s: %v", e.ID, err)
		}
	}
	experiment.ClearSharedCache()
	rep.Suite.WallSecondsUncachedBaseline = time.Since(start).Seconds()

	if rep.NumCPU > 1 {
		speedup := rep.Suite.WallSecondsParallel1 / rep.Suite.WallSecondsParallel4
		rep.Suite.SpeedupParallel4VsSerial = &speedup
	} else {
		rep.Suite.SpeedupParallel4VsSerialNote = "n/a: single-CPU host, parallel-4 cannot beat serial"
	}
	rep.Suite.SpeedupEngineVsUncached = rep.Suite.WallSecondsUncachedBaseline / rep.Suite.WallSecondsParallel1

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}

	fmt.Printf("epfis-bench: wrote %s\n", *out)
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-36s %12.0f ns/op %8d allocs/op %12d B/op\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	s := rep.Suite
	fmt.Printf("  suite (%d experiments, scale=%d, scans=%d): parallel1=%.2fs parallel4=%.2fs uncached=%.2fs\n",
		s.Experiments, s.Scale, s.Scans, s.WallSecondsParallel1, s.WallSecondsParallel4, s.WallSecondsUncachedBaseline)
	p4 := "n/a"
	if s.SpeedupParallel4VsSerial != nil {
		p4 = fmt.Sprintf("%.2fx", *s.SpeedupParallel4VsSerial)
	}
	fmt.Printf("  speedup: engine-vs-uncached %.2fx, parallel4-vs-serial %s (num_cpu=%d), deterministic=%v\n",
		s.SpeedupEngineVsUncached, p4, rep.NumCPU, s.DeterministicAcrossParallelism)
	if !s.DeterministicAcrossParallelism {
		os.Exit(1)
	}
}
