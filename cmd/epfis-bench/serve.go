package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/service"
)

// allocBudgets is the CI regression gate: the serve suite exits non-zero
// when a measured allocs/op exceeds its committed budget, so an
// encoding/json reflection path (or any other allocation regression)
// sneaking back into the serving path fails the build instead of the next
// profiling session.
type allocBudgets struct {
	SingleAllocsPerOpMax  int64 `json:"single_allocs_per_op_max"`
	Batch64AllocsPerOpMax int64 `json:"batch64_allocs_per_op_max"`
}

// serveReport is the BENCH_serve.json document.
type serveReport struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	NumCPU      int          `json:"num_cpu"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Benchmarks  []benchEntry `json:"benchmarks"`
	Budgets     allocBudgets `json:"alloc_budgets"`
	BudgetsMet  bool         `json:"budgets_met"`
}

// serveBenchServer mirrors the serving-path configuration of the
// cmd/epfis-serve benchmarks: one fitted synthetic index, request timeout
// disabled (http.TimeoutHandler spawns a goroutine and buffer per request,
// which belongs to socket serving, not the path under measurement).
func serveBenchServer(cacheEntries int) (*service.Server, error) {
	cfg := datagen.Config{Name: "orders", Column: "key", N: 100_000, I: 1_000, R: 40, K: 0.2, Seed: 1}
	ds, err := datagen.GenerateDataset(cfg)
	if err != nil {
		return nil, err
	}
	st, err := core.LRUFit(ds.Trace(), core.Meta{Table: "orders", Column: "key", T: ds.T, N: cfg.N, I: cfg.I}, core.Options{})
	if err != nil {
		return nil, err
	}
	store := catalog.NewStore()
	if _, err := store.Put(st); err != nil {
		return nil, err
	}
	return service.New(service.Config{Store: store, RequestTimeout: -1, CacheEntries: cacheEntries})
}

// discardWriter is a reusable http.ResponseWriter so the measurement sees
// only the server's own allocations.
type discardWriter struct {
	h      http.Header
	status int
}

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) WriteHeader(code int)        { w.status = code }
func (w *discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func (w *discardWriter) reset() {
	w.status = 0
	for k := range w.h {
		delete(w.h, k)
	}
}

type rewindBody struct{ r *bytes.Reader }

func (b *rewindBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *rewindBody) Close() error               { return nil }

type planShape struct {
	B     int64
	Sigma float64
}

func servePlanShapes() []planShape {
	shapes := make([]planShape, 32)
	for i := range shapes {
		shapes[i] = planShape{B: int64(12 + 77*i), Sigma: float64(1+i) / float64(len(shapes)+1)}
	}
	return shapes
}

func serveSingleRequests(shapes []planShape) []*http.Request {
	reqs := make([]*http.Request, len(shapes))
	for i, sh := range shapes {
		reqs[i] = httptest.NewRequest(http.MethodGet,
			fmt.Sprintf("/v1/estimate?table=orders&column=key&b=%d&sigma=%g", sh.B, sh.Sigma), nil)
	}
	return reqs
}

const serveFanout = 64

func serveBatchPayload(shapes []planShape) ([]byte, error) {
	var breq service.BatchRequest
	for i := 0; i < serveFanout; i++ {
		sh := shapes[i%len(shapes)]
		breq.Requests = append(breq.Requests, service.EstimateRequest{
			Table: "orders", Column: "key", B: sh.B, Sigma: sh.Sigma,
		})
	}
	return json.Marshal(breq)
}

// runServeSuite measures the serving-path benchmarks, writes BENCH_serve.json
// to out, and enforces the allocation budgets. Returns false on a budget
// breach (main exits non-zero).
func runServeSuite(out string, budgets allocBudgets) bool {
	shapes := servePlanShapes()
	rep := serveReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Budgets:     budgets,
	}

	newServer := func(cacheEntries int) *service.Server {
		srv, err := serveBenchServer(cacheEntries)
		if err != nil {
			fatalf("serve suite: %v", err)
		}
		return srv
	}
	serveOne := func(srv *service.Server, w *discardWriter, req *http.Request) {
		w.reset()
		srv.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			fatalf("serve suite: status %d for %s", w.status, req.URL)
		}
	}

	// single: rotating plan shapes through the warm memo.
	srv := newServer(0)
	reqs := serveSingleRequests(shapes)
	w := &discardWriter{h: make(http.Header, 4)}
	serveOne(srv, w, reqs[0])
	single := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serveOne(srv, w, reqs[i%len(reqs)])
		}
	})
	rep.Benchmarks = append(rep.Benchmarks, entry("serve/single", single))

	// cache_hit: one shape, always memoized.
	hitSrv := newServer(0)
	serveOne(hitSrv, w, reqs[0])
	rep.Benchmarks = append(rep.Benchmarks,
		entry("serve/cache_hit", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				serveOne(hitSrv, w, reqs[0])
			}
		})))

	// cache_miss: memoization disabled, every request runs the compiled
	// estimator.
	missSrv := newServer(-1)
	serveOne(missSrv, w, reqs[0])
	rep.Benchmarks = append(rep.Benchmarks,
		entry("serve/cache_miss", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				serveOne(missSrv, w, reqs[i%len(reqs)])
			}
		})))

	// batch64: 64 estimates per request.
	payload, err := serveBatchPayload(shapes)
	if err != nil {
		fatalf("serve suite: %v", err)
	}
	body := &rewindBody{r: bytes.NewReader(payload)}
	breq := httptest.NewRequest(http.MethodPost, "/v1/estimate/batch", body)
	serveBatch := func(srv *service.Server) {
		w.reset()
		body.r.Seek(0, io.SeekStart)
		breq.Body = body
		srv.ServeHTTP(w, breq)
		if w.status != http.StatusOK {
			fatalf("serve suite: batch status %d", w.status)
		}
	}
	serveBatch(srv)
	batch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serveBatch(srv)
		}
	})
	be := entry("serve/batch64", batch)
	rep.Benchmarks = append(rep.Benchmarks, be)

	// parallel: contended clients over one server (per-goroutine writers and
	// cloned requests).
	parSrv := newServer(0)
	serveOne(parSrv, w, reqs[0])
	rep.Benchmarks = append(rep.Benchmarks,
		entry("serve/parallel_clients", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				pw := &discardWriter{h: make(http.Header, 4)}
				i := 0
				for pb.Next() {
					req := reqs[i%len(reqs)].Clone(reqs[0].Context())
					i++
					serveOne(parSrv, pw, req)
				}
			})
		})))

	// Budget gate.
	rep.BudgetsMet = true
	if single.AllocsPerOp() > budgets.SingleAllocsPerOpMax {
		rep.BudgetsMet = false
		fmt.Fprintf(os.Stderr, "epfis-bench: serve/single allocates %d/op, budget %d\n",
			single.AllocsPerOp(), budgets.SingleAllocsPerOpMax)
	}
	if batch.AllocsPerOp() > budgets.Batch64AllocsPerOpMax {
		rep.BudgetsMet = false
		fmt.Fprintf(os.Stderr, "epfis-bench: serve/batch64 allocates %d/op, budget %d\n",
			batch.AllocsPerOp(), budgets.Batch64AllocsPerOpMax)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatalf("write %s: %v", out, err)
	}

	fmt.Printf("epfis-bench: wrote %s\n", out)
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-36s %12.0f ns/op %8d allocs/op %12d B/op\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	fmt.Printf("  budgets: single<=%d batch64<=%d met=%v (num_cpu=%d)\n",
		budgets.SingleAllocsPerOpMax, budgets.Batch64AllocsPerOpMax, rep.BudgetsMet, rep.NumCPU)
	return rep.BudgetsMet
}
