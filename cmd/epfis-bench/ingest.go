package main

// -suite ingest: the streaming-ingestion perf baselines (BENCH_ingest.json,
// via `make bench-ingest`).
//
// Three layers are measured:
//
//   - catalog mutation throughput: the WAL-backed group-committed store
//     against the legacy fsync-rename-per-commit store, both hammered by
//     parallel writers over a realistically sized (~64 entry) catalog. The
//     suite fails when the WAL path is not at least -min-wal-speedup times
//     the legacy path — the headline number of the WAL redesign.
//   - incremental simulation: lrusim.Accum Feed cost per reference and the
//     cost of merging two 100k-reference shard accumulators. Feed's
//     amortized allocs/op is budgeted (-max-allocs-feed, default 2) and
//     enforced non-zero-exit like the serving-path budgets.
//   - the ingest route: POST /v1/ingest handler latency for a 4096-reference
//     batch, measured through ServeHTTP like the serve suite.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/curvefit"
	"epfis/internal/lrusim"
	"epfis/internal/service"
	"epfis/internal/stats"
)

// ingestBudgets is the ingest suite's regression gate.
type ingestBudgets struct {
	// FeedAllocsPerOpMax bounds Accum.Feed's amortized allocations per
	// 512-reference batch in steady state.
	FeedAllocsPerOpMax int64 `json:"feed_allocs_per_op_max"`
	// WALSpeedupMin is the minimum acceptable ratio of WAL group-commit
	// mutation throughput over the legacy rename-per-commit store.
	WALSpeedupMin float64 `json:"wal_speedup_min"`
}

// ingestReport is the BENCH_ingest.json document.
type ingestReport struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	NumCPU      int          `json:"num_cpu"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Benchmarks  []benchEntry `json:"benchmarks"`
	// WALMutationsPerSec and LegacyMutationsPerSec are the two stores'
	// committed-durable mutation rates under parallel writers.
	WALMutationsPerSec    float64       `json:"wal_mutations_per_sec"`
	LegacyMutationsPerSec float64       `json:"legacy_mutations_per_sec"`
	WALSpeedup            float64       `json:"wal_speedup_vs_rename"`
	FeedNsPerRef          float64       `json:"accum_feed_ns_per_ref"`
	Budgets               ingestBudgets `json:"budgets"`
	BudgetsMet            bool          `json:"budgets_met"`
}

// ingestBenchEntry builds one valid catalog entry; fmin varies so repeated
// Puts are real mutations, not byte-identical no-ops.
func ingestBenchEntry(table, column string, fmin int64) *stats.IndexStats {
	return &stats.IndexStats{
		Table: table, Column: column,
		T: 1000, N: 100_000, I: 1000,
		BMin: 12, BMax: 1000, FMin: fmin, C: 0.5,
		Curve: curvefit.PolyLine{Knots: []curvefit.Point{
			{X: 12, Y: float64(fmin)}, {X: 1000, Y: 1000}}},
		GridPoints:  2,
		CollectedAt: time.Unix(0, 0).UTC(),
	}
}

// seedIngestCatalog installs ~64 entries so every commit serializes a
// realistically sized catalog (the legacy path rewrites all of it).
func seedIngestCatalog(store *catalog.Store) error {
	for i := 0; i < 64; i++ {
		if _, err := store.Put(ingestBenchEntry("t", fmt.Sprintf("c%d", i), 2000)); err != nil {
			return err
		}
	}
	return nil
}

// benchMutations hammers store.Put from parallel writers and reports the
// benchmark result; every iteration is one durably committed mutation.
func benchMutations(store *catalog.Store) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		// Group commit's throughput comes from batching concurrent writers:
		// run well more goroutines than cores so real groups form, the same
		// way a busy service has many in-flight mutations. The legacy store
		// serializes them all behind one fsync-rename each, regardless.
		b.SetParallelism(16)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				if _, err := store.Put(ingestBenchEntry("t", fmt.Sprintf("c%d", i%64), 2000+int64(i%971))); err != nil {
					fatalf("ingest suite: Put: %v", err)
				}
			}
		})
	})
}

func mutationsPerSec(r testing.BenchmarkResult) float64 {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return 1e9 / ns
}

// runIngestSuite measures the ingest-path benchmarks, writes the JSON
// baseline to out, and enforces the budgets. Returns false on a breach.
func runIngestSuite(out string, budgets ingestBudgets) bool {
	rep := ingestReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Budgets:     budgets,
	}

	dir, err := os.MkdirTemp("", "epfis-bench-ingest")
	if err != nil {
		fatalf("ingest suite: %v", err)
	}
	defer os.RemoveAll(dir)

	// --- Catalog mutation throughput: WAL group commit vs fsync-rename. ---
	if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		fatalf("ingest suite: %v", err)
	}
	walStore, err := catalog.OpenWAL(filepath.Join(dir, "wal", "catalog.json"), catalog.WALOptions{})
	if err != nil {
		fatalf("ingest suite: open WAL store: %v", err)
	}
	if err := seedIngestCatalog(walStore); err != nil {
		fatalf("ingest suite: seed WAL store: %v", err)
	}
	walRes := benchMutations(walStore)
	rep.Benchmarks = append(rep.Benchmarks, entry("catalog/put_wal_groupcommit", walRes))
	walStore.Close()

	legacyStore, err := catalog.Open(filepath.Join(dir, "legacy-catalog.json"))
	if err != nil {
		fatalf("ingest suite: open legacy store: %v", err)
	}
	if err := seedIngestCatalog(legacyStore); err != nil {
		fatalf("ingest suite: seed legacy store: %v", err)
	}
	legacyRes := benchMutations(legacyStore)
	rep.Benchmarks = append(rep.Benchmarks, entry("catalog/put_legacy_rename", legacyRes))

	rep.WALMutationsPerSec = mutationsPerSec(walRes)
	rep.LegacyMutationsPerSec = mutationsPerSec(legacyRes)
	rep.WALSpeedup = rep.WALMutationsPerSec / rep.LegacyMutationsPerSec

	// --- Incremental simulation: Accum feed and shard merge. ---
	const feedBatch = 512
	trace := lcgTrace(1 << 22, 4096)
	accum := lrusim.NewAccum()
	var off int
	feedRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		// Warm past the growth phase so the measurement sees steady state.
		if accum.Total() == 0 {
			for i := 0; i < 64; i++ {
				accum.Feed(trace[off : off+feedBatch])
				off = (off + feedBatch) % (len(trace) - feedBatch)
			}
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			if accum.Total() > lrusim.MaxAccumRefs-feedBatch {
				accum.Reset()
			}
			accum.Feed(trace[off : off+feedBatch])
			off = (off + feedBatch) % (len(trace) - feedBatch)
		}
	})
	fe := entry("lrusim/accum_feed_512", feedRes)
	rep.Benchmarks = append(rep.Benchmarks, fe)
	rep.FeedNsPerRef = fe.NsPerOp / feedBatch

	half := len(trace) / 2
	mergeRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			a, c := lrusim.NewAccum(), lrusim.NewAccum()
			a.Feed(trace[:100_000])
			c.Feed(trace[half : half+100_000])
			b.StartTimer()
			a.Merge(c)
		}
	})
	rep.Benchmarks = append(rep.Benchmarks, entry("lrusim/accum_merge_100k", mergeRes))

	// --- The ingest route: one 4096-reference batch through ServeHTTP. ---
	store := catalog.NewStore()
	if err := seedIngestCatalog(store); err != nil {
		fatalf("ingest suite: %v", err)
	}
	srv, err := service.New(service.Config{Store: store, RequestTimeout: -1, IngestQueue: 1 << 16})
	if err != nil {
		fatalf("ingest suite: %v", err)
	}
	defer srv.Close()
	payload, err := json.Marshal(service.IngestRequest{
		Table: "t", Column: "c0", Pages: lcgTrace(4096, 1000),
		T: 1000, N: 1 << 30, I: 1000, // N unreachable: pure feed cost, no refits
	})
	if err != nil {
		fatalf("ingest suite: %v", err)
	}
	body := &rewindBody{r: bytes.NewReader(payload)}
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", body)
	w := &discardWriter{h: make(http.Header, 4)}
	postBatch := func() {
		w.reset()
		body.r.Seek(0, 0)
		req.Body = body
		srv.ServeHTTP(w, req)
		if w.status != http.StatusAccepted {
			fatalf("ingest suite: ingest status %d", w.status)
		}
	}
	postBatch()
	ingestRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			postBatch()
		}
	})
	ie := entry("service/ingest_post_4096", ingestRes)
	rep.Benchmarks = append(rep.Benchmarks, ie)

	// --- Budgets. ---
	rep.BudgetsMet = true
	if fe.AllocsPerOp > budgets.FeedAllocsPerOpMax {
		fmt.Fprintf(os.Stderr,
			"epfis-bench: BUDGET BREACH: lrusim/accum_feed_512 allocs/op = %d, budget %d\n",
			fe.AllocsPerOp, budgets.FeedAllocsPerOpMax)
		rep.BudgetsMet = false
	}
	if rep.WALSpeedup < budgets.WALSpeedupMin {
		fmt.Fprintf(os.Stderr,
			"epfis-bench: BUDGET BREACH: WAL mutation throughput %.1fx legacy, budget %.1fx\n",
			rep.WALSpeedup, budgets.WALSpeedupMin)
		rep.BudgetsMet = false
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("ingest suite: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatalf("ingest suite: %v", err)
	}
	fmt.Printf("wrote %s (wal %.0f mut/s, legacy %.0f mut/s, speedup %.1fx, feed %.1f ns/ref)\n",
		out, rep.WALMutationsPerSec, rep.LegacyMutationsPerSec, rep.WALSpeedup, rep.FeedNsPerRef)
	return rep.BudgetsMet
}
