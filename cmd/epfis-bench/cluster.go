package main

// The cluster suite (-suite cluster, BENCH_cluster.json via `make
// bench-cluster`) measures the cluster data plane with an in-process
// multi-node cluster: every node is a real *service.Server wired to a real
// *cluster.Node, but HTTP hops dispatch straight into the target server's
// handler through a pooled in-memory transport instead of sockets. That
// keeps the measurement on the code under test — proxy request building,
// replication fan-out, digest/entry serving — rather than on kernel TCP,
// and makes allocs/op meaningful (testing.Benchmark counts mallocs across
// all goroutines, so socket serving would drown the signal).
//
// Three gated measurements:
//
//   - cluster/proxied_estimate: a non-owner node forwards a single estimate
//     to its owner and relays the reply. Gate: allocs/op.
//   - cluster/put_quorum_slow_peer vs cluster/put_quorum_nofault: a quorum
//     PUT with a faultnet-slowed NON-owner peer must ack in at most
//     -max-slowdown-quorum times the no-fault latency — the fast-ack
//     property (pre-fast-ack, the slow peer's full injected delay lands on
//     every client PUT).
//   - delta_sync: a 1-key divergence must converge through the digest
//     route for at most -max-delta-fraction of the full snapshot stream's
//     bytes-on-wire.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/cluster"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/faultnet"
	"epfis/internal/service"
	"epfis/internal/stats"
)

// clusterBudgets is the cluster suite's CI gate.
type clusterBudgets struct {
	ProxiedAllocsPerOpMax int64   `json:"proxied_allocs_per_op_max"`
	QuorumSlowdownMax     float64 `json:"quorum_slowdown_max"`
	DeltaBytesFractionMax float64 `json:"delta_bytes_fraction_max"`
}

// deltaSyncReport records the bytes-on-wire comparison for a 1-key
// divergence: the delta path (digest + divergent entries) against the full
// snapshot stream it replaces.
type deltaSyncReport struct {
	Entries            int     `json:"entries"`
	DivergentKeys      int     `json:"divergent_keys"`
	DeltaBytes         uint64  `json:"delta_bytes"`
	FullSnapshotBytes  int     `json:"full_snapshot_bytes"`
	BytesFraction      float64 `json:"bytes_fraction"`
	FellBackToSnapshot bool    `json:"fell_back_to_snapshot"`
}

// clusterReport is the BENCH_cluster.json document.
type clusterReport struct {
	GeneratedAt    string          `json:"generated_at"`
	GoVersion      string          `json:"go_version"`
	NumCPU         int             `json:"num_cpu"`
	GOMAXPROCS     int             `json:"gomaxprocs"`
	Nodes          int             `json:"nodes"`
	Benchmarks     []benchEntry    `json:"benchmarks"`
	QuorumSlowdown float64         `json:"quorum_slowdown"`
	DeltaSync      deltaSyncReport `json:"delta_sync"`
	Budgets        clusterBudgets  `json:"budgets"`
	BudgetsMet     bool            `json:"budgets_met"`
}

// memRecorder is a pooled http.ResponseWriter that captures a handler's
// response for conversion into an *http.Response without allocating a
// recorder, header map, or body buffer per hop.
type memRecorder struct {
	h      http.Header
	status int
	body   []byte
}

func (r *memRecorder) Header() http.Header { return r.h }
func (r *memRecorder) WriteHeader(c int)   { r.status = c }
func (r *memRecorder) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}

// memBody is the pooled ReadCloser a memTransport response reads from;
// Close returns the whole frame (recorder included) to the pool.
type memBody struct {
	t    *memTransport
	rec  *memRecorder
	resp *http.Response
	off  int
}

func (b *memBody) Read(p []byte) (int, error) {
	if b.off >= len(b.rec.body) {
		return 0, io.EOF
	}
	n := copy(p, b.rec.body[b.off:])
	b.off += n
	return n, nil
}

func (b *memBody) Close() error {
	b.t.put(b)
	return nil
}

// memTransport routes requests to in-process handlers by URL host. It is
// the socketless stand-in for the pooled cluster transport: same interface,
// zero kernel involvement.
type memTransport struct {
	handlers map[string]http.Handler
	pool     sync.Pool
}

func newMemTransport() *memTransport {
	t := &memTransport{handlers: map[string]http.Handler{}}
	t.pool.New = func() any {
		b := &memBody{t: t, rec: &memRecorder{h: make(http.Header, 8)}}
		b.resp = &http.Response{Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1, Body: b}
		return b
	}
	return t
}

func (t *memTransport) put(b *memBody) {
	b.off = 0
	b.rec.status = 0
	b.rec.body = b.rec.body[:0]
	for k := range b.rec.h {
		delete(b.rec.h, k)
	}
	t.pool.Put(b)
}

func (t *memTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t.handlers[req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("memtransport: unknown host %q", req.URL.Host)
	}
	b := t.pool.Get().(*memBody)
	h.ServeHTTP(b.rec, req)
	if b.rec.status == 0 {
		b.rec.status = http.StatusOK
	}
	resp := b.resp
	resp.StatusCode = b.rec.status
	resp.Status = http.StatusText(b.rec.status)
	resp.Header = b.rec.h
	resp.ContentLength = int64(len(b.rec.body))
	resp.Request = req
	// http.Client mutates resp.Body (cancelTimerBody) when a client timeout
	// is armed; restore the pooled body so reuse never re-wraps a wrapper.
	resp.Body = b
	return resp, nil
}

// benchNode is one in-process cluster member.
type benchNode struct {
	id   string
	url  string
	host string
	st   *catalog.Store
	node *cluster.Node
	srv  *service.Server
}

// fitClusterEntries fits n synthetic indexes through the real LRU-Fit
// pipeline — the catalog every node starts from.
func fitClusterEntries(n int) ([]*stats.IndexStats, error) {
	out := make([]*stats.IndexStats, n)
	for i := range out {
		col := fmt.Sprintf("c%02d", i)
		cfg := datagen.Config{Name: "bench", Column: col, N: 20_000, I: 500, R: 40, K: 0.2, Seed: int64(i) + 1}
		ds, err := datagen.GenerateDataset(cfg)
		if err != nil {
			return nil, err
		}
		st, err := core.LRUFit(ds.Trace(), core.Meta{Table: "bench", Column: col, T: ds.T, N: cfg.N, I: cfg.I}, core.Options{})
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// startBenchCluster brings up n in-process nodes over mt, seeds every store
// with the same entries, and converges membership through in-process
// gossip. outbound optionally wraps mt for one node's service transport
// (the faultnet seam); nil means every node talks straight through mt.
func startBenchCluster(mt *memTransport, n, replicas int, entries []*stats.IndexStats, outbound map[int]http.RoundTripper) ([]*benchNode, error) {
	nodes := make([]*benchNode, n)
	urls := make([]string, n)
	for i := range nodes {
		urls[i] = fmt.Sprintf("http://node-%c.bench", 'a'+i)
	}
	for i := range nodes {
		id := fmt.Sprintf("node-%c", 'a'+i)
		store := catalog.NewStore()
		for _, e := range entries {
			if _, err := store.Put(e); err != nil {
				return nil, err
			}
		}
		tr := http.RoundTripper(mt)
		if outbound != nil && outbound[i] != nil {
			tr = outbound[i]
		}
		node, err := cluster.NewNode(cluster.Config{
			SelfID:     id,
			SelfURL:    urls[i],
			Seeds:      urls,
			Replicas:   replicas,
			Heartbeat:  time.Hour, // ticks are driven manually
			DeadAfter:  time.Hour,
			Store:      store,
			HTTPClient: &http.Client{Timeout: 5 * time.Second, Transport: tr},
		})
		if err != nil {
			return nil, err
		}
		srv, err := service.New(service.Config{
			Store:          store,
			Cluster:        node,
			RequestTimeout: -1,
			Transport:      tr,
		})
		if err != nil {
			return nil, err
		}
		host := urls[i][len("http://"):]
		mt.handlers[host] = srv
		nodes[i] = &benchNode{id: id, url: urls[i], host: host, st: store, node: node, srv: srv}
	}
	for round := 0; round < 2; round++ {
		for _, bn := range nodes {
			bn.node.Tick(context.Background())
		}
	}
	for _, bn := range nodes {
		if got := bn.node.Ring().Len(); got != n {
			return nil, fmt.Errorf("%s ring has %d members, want %d", bn.id, got, n)
		}
	}
	return nodes, nil
}

// pickProxiedColumn finds an entry column the given node does NOT own, so a
// request for it exercises the full forward-and-relay path.
func pickProxiedColumn(bn *benchNode, entries []*stats.IndexStats) string {
	for _, e := range entries {
		if !bn.node.Owns(e.Key()) {
			return e.Column
		}
	}
	return ""
}

// pickQuorumKey finds an entry whose owner set includes owner but not
// nonOwner — the shape the slow-peer drill needs.
func pickQuorumKey(nodes []*benchNode, owner, nonOwner int, entries []*stats.IndexStats) string {
	for _, e := range entries {
		if nodes[owner].node.Owns(e.Key()) && !nodes[nonOwner].node.Owns(e.Key()) {
			return e.Column
		}
	}
	return ""
}

// runClusterSuite measures the cluster data plane, writes BENCH_cluster.json
// to out, and enforces the budgets. Returns false on a breach.
func runClusterSuite(out string, budgets clusterBudgets) bool {
	const clusterEntries = 64
	rep := clusterReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Nodes:       3,
		Budgets:     budgets,
	}
	entries, err := fitClusterEntries(clusterEntries)
	if err != nil {
		fatalf("cluster suite: fit entries: %v", err)
	}

	// --- proxied estimate: R=1 makes exactly one owner per key, so a
	// request at a non-owner always forwards one hop. ---
	mt := newMemTransport()
	nodes, err := startBenchCluster(mt, 3, 1, entries, nil)
	if err != nil {
		fatalf("cluster suite: %v", err)
	}
	proxyNode := nodes[0]
	col := pickProxiedColumn(proxyNode, entries)
	if col == "" {
		fatalf("cluster suite: node-a owns every key at R=1 (ring bug?)")
	}
	req := httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/v1/estimate?table=bench&column=%s&b=120&sigma=0.5", col), nil)
	w := &discardWriter{h: make(http.Header, 4)}
	serveProxied := func() {
		w.reset()
		proxyNode.srv.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			fatalf("cluster suite: proxied estimate status %d", w.status)
		}
	}
	serveProxied()
	if got := w.h.Get(cluster.HeaderNode); got == proxyNode.id || got == "" {
		fatalf("cluster suite: proxied estimate answered by %q, want a remote owner", got)
	}
	proxied := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serveProxied()
		}
	})
	rep.Benchmarks = append(rep.Benchmarks, entry("cluster/proxied_estimate", proxied))

	// Owned baseline for the same cluster, for the report's contrast row.
	ownCol := ""
	for _, e := range entries {
		if proxyNode.node.Owns(e.Key()) {
			ownCol = e.Column
			break
		}
	}
	ownReq := httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/v1/estimate?table=bench&column=%s&b=120&sigma=0.5", ownCol), nil)
	rep.Benchmarks = append(rep.Benchmarks,
		entry("cluster/owned_estimate", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.reset()
				proxyNode.srv.ServeHTTP(w, ownReq)
			}
		})))

	// --- quorum PUT, no-fault vs one slowed non-owner peer. R=2 over three
	// nodes leaves one non-owner per key; the injector slows only that
	// peer's replication route, so fast-ack must keep the client latency at
	// the no-fault level while the slowed send detaches. ---
	quorumPut := func(slowed bool) (testing.BenchmarkResult, error) {
		qmt := newMemTransport()
		var inj *faultnet.Injector
		outbound := map[int]http.RoundTripper{}
		if slowed {
			inj = faultnet.NewInjector(qmt, 1)
			outbound[0] = inj
		}
		qnodes, err := startBenchCluster(qmt, 3, 2, entries, outbound)
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		origin := qnodes[0]
		// Owners = {node-a, node-b}; node-c is the non-owner straggler.
		key := pickQuorumKey(qnodes, 1, 2, entries)
		if key == "" || !origin.node.Owns("bench."+key) {
			// Any a/b-owned key works; fall back to scanning for one a owns.
			for _, e := range entries {
				if origin.node.Owns(e.Key()) && !qnodes[2].node.Owns(e.Key()) {
					key = e.Column
					break
				}
			}
		}
		if key == "" {
			return testing.BenchmarkResult{}, fmt.Errorf("no key with non-owner node-c")
		}
		if slowed {
			inj.Add(faultnet.Rule{
				Op:    faultnet.OpRequest,
				Peer:  qnodes[2].host,
				Route: "/v1/indexes/",
				Count: -1,
				Mode:  faultnet.ModeSlow,
				Delay: 40 * time.Millisecond,
			})
		}
		var ent *stats.IndexStats
		for _, e := range entries {
			if e.Column == key {
				ent = e
			}
		}
		payload, err := json.Marshal(ent)
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		body := &rewindBody{r: bytes.NewReader(payload)}
		preq := httptest.NewRequest(http.MethodPut, "/v1/indexes/bench/"+key, body)
		pw := &discardWriter{h: make(http.Header, 4)}
		putOnce := func() {
			pw.reset()
			body.r.Seek(0, io.SeekStart)
			preq.Body = body
			origin.srv.ServeHTTP(pw, preq)
			if pw.status != http.StatusOK {
				fatalf("cluster suite: quorum PUT status %d", pw.status)
			}
		}
		putOnce()
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				putOnce()
			}
		})
		return res, nil
	}
	nofault, err := quorumPut(false)
	if err != nil {
		fatalf("cluster suite: %v", err)
	}
	slowed, err := quorumPut(true)
	if err != nil {
		fatalf("cluster suite: %v", err)
	}
	rep.Benchmarks = append(rep.Benchmarks,
		entry("cluster/put_quorum_nofault", nofault),
		entry("cluster/put_quorum_slow_peer", slowed))
	rep.QuorumSlowdown = float64(slowed.T.Nanoseconds()) / float64(slowed.N) /
		(float64(nofault.T.Nanoseconds()) / float64(nofault.N))

	// --- delta anti-entropy bytes-on-wire: 1 divergent key out of 64. ---
	dmt := newMemTransport()
	dnodes, err := startBenchCluster(dmt, 2, 2, entries, nil)
	if err != nil {
		fatalf("cluster suite: %v", err)
	}
	src, puller := dnodes[0], dnodes[1]
	divergent, err := fitClusterEntries(1)
	if err != nil {
		fatalf("cluster suite: %v", err)
	}
	divergent[0].Column = entries[clusterEntries/2].Column
	divergent[0].FMin++ // guarantee different canonical bytes
	if _, err := src.st.Put(divergent[0]); err != nil {
		fatalf("cluster suite: diverge: %v", err)
	}
	fullStream, _, err := src.st.ExportSnapshot()
	if err != nil {
		fatalf("cluster suite: %v", err)
	}
	if err := puller.node.Sync(context.Background(), src.url); err != nil {
		fatalf("cluster suite: delta sync: %v", err)
	}
	hs, _, _ := src.st.ContentHash()
	hp, _, _ := puller.st.ContentHash()
	if hs != hp {
		fatalf("cluster suite: delta sync did not converge (%s vs %s)", hs, hp)
	}
	deltaBytes, fullBytes := puller.node.AntiEntropyBytes()
	_, fallbacks := puller.node.DeltaPulls()
	rep.DeltaSync = deltaSyncReport{
		Entries:            clusterEntries,
		DivergentKeys:      1,
		DeltaBytes:         deltaBytes,
		FullSnapshotBytes:  len(fullStream),
		BytesFraction:      float64(deltaBytes) / float64(len(fullStream)),
		FellBackToSnapshot: fallbacks > 0 || fullBytes > 0,
	}

	// --- Budget gate. ---
	rep.BudgetsMet = true
	if proxied.AllocsPerOp() > budgets.ProxiedAllocsPerOpMax {
		rep.BudgetsMet = false
		fmt.Fprintf(os.Stderr, "epfis-bench: cluster/proxied_estimate allocates %d/op, budget %d\n",
			proxied.AllocsPerOp(), budgets.ProxiedAllocsPerOpMax)
	}
	if rep.QuorumSlowdown > budgets.QuorumSlowdownMax {
		rep.BudgetsMet = false
		fmt.Fprintf(os.Stderr, "epfis-bench: quorum PUT with slow peer is %.2fx no-fault latency, budget %.1fx\n",
			rep.QuorumSlowdown, budgets.QuorumSlowdownMax)
	}
	if rep.DeltaSync.FellBackToSnapshot {
		rep.BudgetsMet = false
		fmt.Fprintf(os.Stderr, "epfis-bench: 1-key delta sync fell back to a full snapshot pull\n")
	}
	if rep.DeltaSync.BytesFraction > budgets.DeltaBytesFractionMax {
		rep.BudgetsMet = false
		fmt.Fprintf(os.Stderr, "epfis-bench: delta sync moved %.1f%% of the snapshot bytes, budget %.0f%%\n",
			rep.DeltaSync.BytesFraction*100, budgets.DeltaBytesFractionMax*100)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatalf("write %s: %v", out, err)
	}

	fmt.Printf("epfis-bench: wrote %s\n", out)
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-36s %12.0f ns/op %8d allocs/op %12d B/op\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	fmt.Printf("  quorum slowdown with slow non-owner peer: %.2fx (budget %.1fx)\n",
		rep.QuorumSlowdown, budgets.QuorumSlowdownMax)
	d := rep.DeltaSync
	fmt.Printf("  delta sync: %d bytes vs %d-byte snapshot (%.1f%%, budget %.0f%%), fallback=%v\n",
		d.DeltaBytes, d.FullSnapshotBytes, d.BytesFraction*100, budgets.DeltaBytesFractionMax*100, d.FellBackToSnapshot)
	fmt.Printf("  budgets met: %v (num_cpu=%d)\n", rep.BudgetsMet, rep.NumCPU)
	return rep.BudgetsMet
}
