package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around fn and returns what was printed.
// A concurrent reader drains the pipe so large outputs cannot deadlock.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestGenInspectEstimateCurveFlow(t *testing.T) {
	dir := t.TempDir()
	catalog := filepath.Join(dir, "cat.json")

	out, err := captureStdout(t, func() error {
		return runGen([]string{
			"-out", catalog, "-table", "orders", "-column", "key",
			"-n", "20000", "-i", "200", "-r", "40", "-k", "0.3", "-seed", "7",
		})
	})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	if !strings.Contains(out, "generated orders.key") || !strings.Contains(out, "LRU-Fit") {
		t.Errorf("gen output: %q", out)
	}
	if _, err := os.Stat(catalog); err != nil {
		t.Fatalf("catalog not written: %v", err)
	}

	out, err = captureStdout(t, func() error {
		return runInspect([]string{"-catalog", catalog})
	})
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if !strings.Contains(out, "orders.key") {
		t.Errorf("inspect output: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return runEstimate([]string{
			"-catalog", catalog, "-table", "orders", "-column", "key",
			"-b", "100", "-sigma", "0.25",
		})
	})
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	for _, want := range []string{"PF_B", "estimated page fetches", "sargable factor"} {
		if !strings.Contains(out, want) {
			t.Errorf("estimate output missing %q:\n%s", want, out)
		}
	}

	out, err = captureStdout(t, func() error {
		return runCurve([]string{"-catalog", catalog, "-table", "orders", "-column", "key"})
	})
	if err != nil {
		t.Fatalf("curve: %v", err)
	}
	if !strings.Contains(out, "FPF curve") || !strings.Contains(out, "F/T") {
		t.Errorf("curve output: %q", out)
	}
}

func TestGenAppend(t *testing.T) {
	dir := t.TempDir()
	catalog := filepath.Join(dir, "cat.json")
	gen := func(column string, appendFlag bool) error {
		args := []string{
			"-out", catalog, "-table", "t", "-column", column,
			"-n", "4000", "-i", "50", "-r", "20",
		}
		if appendFlag {
			args = append(args, "-append")
		}
		_, err := captureStdout(t, func() error { return runGen(args) })
		return err
	}
	if err := gen("a", false); err != nil {
		t.Fatal(err)
	}
	if err := gen("b", true); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error { return runInspect([]string{"-catalog", catalog}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "t.a") || !strings.Contains(out, "t.b") {
		t.Errorf("append lost an entry:\n%s", out)
	}
}

func TestEstimateErrors(t *testing.T) {
	if err := runEstimate([]string{"-catalog", "/nonexistent.json", "-b", "10"}); err == nil {
		t.Error("missing catalog accepted")
	}
	if err := runEstimate([]string{"-b", "0"}); err == nil {
		t.Error("B=0 accepted")
	}
}

func TestSplitKeyHelper(t *testing.T) {
	tbl, col := splitKey("a.b.c")
	if tbl != "a.b" || col != "c" {
		t.Errorf("splitKey = %q, %q", tbl, col)
	}
	tbl, col = splitKey("plain")
	if tbl != "plain" || col != "" {
		t.Errorf("splitKey(plain) = %q, %q", tbl, col)
	}
}

func TestPlanCommand(t *testing.T) {
	dir := t.TempDir()
	catalog := filepath.Join(dir, "cat.json")
	if _, err := captureStdout(t, func() error {
		return runGen([]string{
			"-out", catalog, "-table", "orders", "-column", "key",
			"-n", "20000", "-i", "200", "-r", "40", "-k", "1", "-seed", "3",
		})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return runPlan([]string{
			"-catalog", catalog, "-table", "orders", "-column", "key",
			"-b", "100", "-lo", "1", "-hi", "20", "-ridlist",
		})
	})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	for _, want := range []string{"=>", "table-scan", "partial-index-scan", "rid-list-scan", "cost="} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
	// The histogram-derived sigma must appear (10% of keys => ~0.1).
	if !strings.Contains(out, "sigma=0.1") {
		t.Errorf("plan output sigma unexpected:\n%s", out)
	}
	if err := runPlan([]string{"-catalog", catalog, "-b", "0"}); err == nil {
		t.Error("plan with B=0 accepted")
	}
}
