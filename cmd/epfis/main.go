// Command epfis is the statistics-and-estimation CLI over the EPFIS library:
//
//	epfis gen      -out catalog.json [-n 100000 -i 1000 -r 40 -theta 0 -k 0.2 ...]
//	epfis inspect  -catalog catalog.json
//	epfis estimate -catalog catalog.json -table syn -column key -b 500 -sigma 0.1 [-s 1]
//	epfis curve    -catalog catalog.json -table syn -column key
//
// gen creates a synthetic table with the paper's window-clustering placement
// model, runs Subprogram LRU-Fit over its index, and stores the resulting
// statistics in a JSON catalog. estimate runs Subprogram Est-IO against a
// stored catalog entry, printing the estimate and its intermediate terms.
package main

import (
	"flag"
	"fmt"
	"os"

	"epfis"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "estimate":
		err = runEstimate(os.Args[2:])
	case "curve":
		err = runCurve(os.Args[2:])
	case "plan":
		err = runPlan(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "epfis: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "epfis: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: epfis <command> [flags]

commands:
  gen       generate a synthetic table, run LRU-Fit, write a statistics catalog
  inspect   list the entries of a statistics catalog
  estimate  run Est-IO against a catalog entry
  curve     print a catalog entry's fitted FPF curve knots
  plan      choose an access plan for a query against a catalog

run "epfis <command> -h" for the command's flags`)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		out    = fs.String("out", "catalog.json", "output catalog path")
		tbl    = fs.String("table", "syn", "table name")
		column = fs.String("column", "key", "indexed column name")
		n      = fs.Int64("n", 100_000, "number of records (N)")
		i      = fs.Int64("i", 1_000, "number of distinct key values (I)")
		r      = fs.Int("r", 40, "records per page (R)")
		theta  = fs.Float64("theta", 0, "Zipf skew of duplicates (0 = uniform, 0.86 = 80-20)")
		k      = fs.Float64("k", 0.2, "clustering window fraction (0 = clustered, 1 = random)")
		noise  = fs.Float64("noise", 0.05, "placement noise probability")
		seed   = fs.Int64("seed", 1, "generator seed")
		segs   = fs.Int("segments", 0, "FPF curve segments (0 = paper's 6)")
		appnd  = fs.Bool("append", false, "append to an existing catalog instead of creating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := epfis.SyntheticConfig{
		Name: *tbl, Column: *column,
		N: *n, I: *i, R: *r, Theta: *theta, K: *k, Seed: *seed,
	}
	if *noise == 0 {
		cfg.Noise = -1 // datagen.NoNoise
	} else {
		cfg.Noise = *noise
	}
	ds, err := epfis.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	st, err := epfis.CollectStats(ds.Trace(), epfis.Meta{
		Table: *tbl, Column: *column, T: ds.T, N: *n, I: *i,
	}, epfis.Options{Segments: *segs})
	if err != nil {
		return err
	}
	// Store the key histogram alongside, so `epfis plan` can estimate
	// selectivities from the catalog alone.
	h, err := epfis.BuildHistogram(ds.Keys, 32)
	if err != nil {
		return err
	}
	st.KeyHistogram = h.Buckets()
	cat := epfis.NewCatalog()
	if *appnd {
		if existing, err := epfis.LoadCatalog(*out); err == nil {
			cat = existing
		}
	}
	if err := cat.Put(st); err != nil {
		return err
	}
	if err := cat.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("generated %s.%s: T=%d pages, N=%d records, I=%d keys\n", *tbl, *column, ds.T, *n, *i)
	fmt.Printf("LRU-Fit: C=%.4f, modeled B in [%d, %d], %d grid points, %d curve segments\n",
		st.C, st.BMin, st.BMax, st.GridPoints, st.Curve.NumSegments())
	fmt.Printf("catalog written to %s (%d entries)\n", *out, cat.Len())
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	catalogPath := fs.String("catalog", "catalog.json", "catalog path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cat, err := epfis.LoadCatalog(*catalogPath)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %10s %12s %10s %8s %14s %9s\n", "INDEX", "T", "N", "I", "C", "B-RANGE", "SEGMENTS")
	for _, key := range cat.Keys() {
		tblName, column := splitKey(key)
		st, err := cat.Get(tblName, column)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %10d %12d %10d %8.4f [%5d,%6d] %9d\n",
			key, st.T, st.N, st.I, st.C, st.BMin, st.BMax, st.Curve.NumSegments())
	}
	return nil
}

func runEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	var (
		catalogPath = fs.String("catalog", "catalog.json", "catalog path")
		tbl         = fs.String("table", "syn", "table name")
		column      = fs.String("column", "key", "column name")
		b           = fs.Int64("b", 0, "LRU buffer pages available (required)")
		sigma       = fs.Float64("sigma", 1, "start/stop-condition selectivity")
		s           = fs.Float64("s", 1, "index-sargable selectivity (1 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *b < 1 {
		return fmt.Errorf("-b is required and must be >= 1")
	}
	cat, err := epfis.LoadCatalog(*catalogPath)
	if err != nil {
		return err
	}
	st, err := cat.Get(*tbl, *column)
	if err != nil {
		return err
	}
	det, err := epfis.EstimateDetailed(st, epfis.Input{B: *b, Sigma: *sigma, S: *s}, epfis.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("index %s.%s: T=%d N=%d I=%d C=%.4f\n", *tbl, *column, st.T, st.N, st.I, st.C)
	fmt.Printf("Est-IO(B=%d, sigma=%g, S=%g):\n", *b, *sigma, *s)
	fmt.Printf("  PF_B (full-scan fetches at B) = %.1f\n", det.PFB)
	fmt.Printf("  base (sigma * PF_B)           = %.1f\n", det.Base)
	fmt.Printf("  phi = %.4f, nu = %d, correction = %.1f\n", det.Phi, det.Nu, det.Correction)
	fmt.Printf("  sargable factor               = %.4f\n", det.SargableFactor)
	fmt.Printf("  estimated page fetches F      = %.1f\n", det.F)
	return nil
}

func runCurve(args []string) error {
	fs := flag.NewFlagSet("curve", flag.ExitOnError)
	var (
		catalogPath = fs.String("catalog", "catalog.json", "catalog path")
		tbl         = fs.String("table", "syn", "table name")
		column      = fs.String("column", "key", "column name")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cat, err := epfis.LoadCatalog(*catalogPath)
	if err != nil {
		return err
	}
	st, err := cat.Get(*tbl, *column)
	if err != nil {
		return err
	}
	fmt.Printf("FPF curve of %s.%s (%d segments):\n", *tbl, *column, st.Curve.NumSegments())
	fmt.Printf("%12s %14s %10s\n", "B (pages)", "F (fetches)", "F/T")
	for _, kn := range st.Curve.Knots {
		fmt.Printf("%12.0f %14.0f %10.3f\n", kn.X, kn.Y, kn.Y/float64(st.T))
	}
	return nil
}

func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	var (
		catalogPath = fs.String("catalog", "catalog.json", "catalog path")
		tbl         = fs.String("table", "syn", "table name")
		column      = fs.String("column", "key", "range-predicate column")
		b           = fs.Int64("b", 0, "LRU buffer pages available (required)")
		lo          = fs.Int64("lo", 0, "range lower bound (inclusive)")
		hi          = fs.Int64("hi", 0, "range upper bound (inclusive)")
		hasLo       = fs.Bool("haslo", true, "range has a lower bound")
		hasHi       = fs.Bool("hashi", true, "range has an upper bound")
		s           = fs.Float64("s", 1, "index-sargable selectivity (1 = none)")
		orderBy     = fs.String("orderby", "", "required sort column")
		ridlist     = fs.Bool("ridlist", false, "also consider RID-list plans")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *b < 1 {
		return fmt.Errorf("-b is required and must be >= 1")
	}
	cat, err := epfis.LoadCatalog(*catalogPath)
	if err != nil {
		return err
	}
	opt, err := epfis.NewOptimizer(cat)
	if err != nil {
		return err
	}
	q := epfis.Query{
		Table:         *tbl,
		BufferPages:   *b,
		OrderBy:       *orderBy,
		EnableRIDList: *ridlist,
	}
	if *hasLo || *hasHi {
		q.Range = &epfis.RangePred{Column: *column, HasLo: *hasLo, Lo: *lo, HasHi: *hasHi, Hi: *hi}
	}
	if *s < 1 {
		q.Sargable = []epfis.SargPred{{Selectivity: *s}}
	}
	best, plans, err := opt.Choose(q)
	if err != nil {
		return err
	}
	for _, p := range plans {
		marker := "  "
		if p.Kind == best.Kind && p.Index == best.Index {
			marker = "=>"
		}
		idx := p.Index
		if idx == "" {
			idx = "-"
		}
		fmt.Printf("%s %-20s index=%-12s sigma=%.4f fetches=%10.1f sort=%8.1f cost=%10.1f\n",
			marker, p.Kind, idx, p.Sigma, p.DataFetches, p.SortPages, p.Cost)
		for _, line := range p.Explain {
			fmt.Printf("      %s\n", line)
		}
	}
	return nil
}

func splitKey(key string) (tbl, column string) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}
