// Command epfis-clustercheck smoke-tests cluster mode end to end over real
// HTTP: it spawns a 3-node cluster (the same servers epfis-serve runs) on
// loopback ports, installs a freshly fitted index through one node, verifies
// every node answers the same estimate bit-for-bit (serving its own keys or
// proxying to an owner), verifies the snapshot stream imports cleanly,
// converges a single divergent key through delta anti-entropy (per-entry
// transfers over the digest route, checked against the bytes-on-wire
// counters — never a full snapshot),
// partitions one node away while both sides take writes (the quorum side must
// ack, the minority must answer an honest 503 and journal hints), heals the
// partition and requires every store to converge to the same content hash,
// then kills one node and verifies the survivors keep serving bit-exact
// answers.
//
//	epfis-clustercheck
//
// Exit status is non-zero when any check fails; `make cluster-check` runs it
// in CI alongside the chaos and observability drills.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/cluster"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/faultnet"
	"epfis/internal/service"
	"epfis/internal/stats"
)

const (
	checkTable  = "epfis_clustercheck"
	checkColumn = "key"
	numNodes    = 3
	replicas    = 2
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "epfis-clustercheck: %v\n", err)
		os.Exit(1)
	}
}

// member is one spawned node: its base URL plus the handles needed to
// partition and kill it.
type member struct {
	id     string
	base   string
	store  *catalog.Store
	node   *cluster.Node
	srv    *service.Server
	inj    *faultnet.Injector
	cancel context.CancelFunc
	done   chan error
}

// host is the peer address other members dial — what faultnet rules match.
func (m *member) host() string { return m.base[len("http://"):] }

func run(args []string) error {
	fs := flag.NewFlagSet("epfis-clustercheck", flag.ExitOnError)
	timeout := fs.Duration("timeout", 60*time.Second, "overall deadline for the checks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	out := os.Stdout

	// Listeners first: every node must know every URL before it starts.
	lns := make([]net.Listener, numNodes)
	urls := make([]string, numNodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}

	handoffRoot, err := os.MkdirTemp("", "epfis-clustercheck-hints-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(handoffRoot)
	members := make([]*member, numNodes)
	for i := range members {
		id := fmt.Sprintf("node-%c", 'a'+i)
		m, err := spawn(ctx, id, lns[i], urls, int64(i+1), fmt.Sprintf("%s/%s", handoffRoot, id))
		if err != nil {
			return err
		}
		defer m.cancel()
		members[i] = m
	}
	client := &http.Client{}
	for _, m := range members {
		if err := pollHealthz(ctx, client, m.base); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "ok spawn: %d nodes up (R=%d)\n", numNodes, replicas)

	// Let gossip converge: every node must see all members on its ring.
	if err := waitFor(ctx, "membership convergence", func() bool {
		for _, m := range members {
			if m.node.Ring().Len() != numNodes {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "ok gossip: all rings have %d members\n", numNodes)

	// Install a freshly fitted index through one node; replication must land
	// it on every store.
	st, err := fitCheckStats()
	if err != nil {
		return err
	}
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	putPath := fmt.Sprintf("/v1/indexes/%s/%s", checkTable, checkColumn)
	if _, _, err := do(ctx, client, http.MethodPut, members[0].base+putPath, body); err != nil {
		return fmt.Errorf("install check index: %w", err)
	}
	for _, m := range members {
		if m.store.Len() != 1 {
			return fmt.Errorf("replication: %s has %d catalog entries, want 1", m.id, m.store.Len())
		}
	}
	fmt.Fprintf(out, "ok install: %s.%s replicated to all %d stores\n", checkTable, checkColumn, numNodes)

	// Every node must answer the estimate bit-for-bit — owners serve locally,
	// non-owners proxy one hop.
	want, err := core.EstimateFetches(st, 128, 0.1, 1)
	if err != nil {
		return err
	}
	key := checkTable + "." + checkColumn
	estPath := fmt.Sprintf("/v1/estimate?table=%s&column=%s&b=128&sigma=0.1", checkTable, checkColumn)
	for _, m := range members {
		got, err := estimate(ctx, client, m.base+estPath)
		if err != nil {
			return fmt.Errorf("estimate via %s: %w", m.id, err)
		}
		if got != want {
			return fmt.Errorf("estimate via %s = %v, want %v (owns=%v)", m.id, got, want, m.node.Owns(key))
		}
	}
	fmt.Fprintf(out, "ok estimate: bit-exact (%v) from all %d nodes\n", want, numNodes)

	// The snapshot stream must carry the checksummed catalog and import into
	// a fresh store — the path a recovering node uses.
	_, raw, err := do(ctx, client, http.MethodGet, members[0].base+cluster.PathSnapshot, nil)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	fresh := catalog.NewStore()
	if _, err := fresh.ImportSnapshot(raw); err != nil {
		return fmt.Errorf("snapshot import: %w", err)
	}
	if fresh.Len() != 1 {
		return fmt.Errorf("snapshot import: %d entries, want 1", fresh.Len())
	}
	fmt.Fprintf(out, "ok snapshot: %d-byte checksummed stream imports cleanly\n", len(raw))

	// Delta anti-entropy: with a wide catalog and a single divergent key, an
	// explicit sync must converge through the digest route — per-entry
	// transfers, never a full snapshot — and the bytes-on-wire counters must
	// show it. Base entries go through HTTP so replication lands them
	// everywhere; the divergent key is written straight into one store so no
	// replication or stamp ever touches it.
	for i := 0; i < 12; i++ {
		col := fmt.Sprintf("base%02d", i)
		baseSt, err := fitVariantStats("epfis_delta", col, int64(40+i))
		if err != nil {
			return err
		}
		baseBody, err := json.Marshal(baseSt)
		if err != nil {
			return err
		}
		if _, _, err := do(ctx, client, http.MethodPut, members[0].base+"/v1/indexes/epfis_delta/"+col, baseBody); err != nil {
			return fmt.Errorf("install delta base %s: %w", col, err)
		}
	}
	soloSt, err := fitVariantStats("epfis_delta", "solo", 53)
	if err != nil {
		return err
	}
	if _, err := members[0].store.Put(soloSt); err != nil {
		return err
	}
	// The divergence sits at an equal cluster epoch (no mutation flowed), so
	// background gossip deliberately leaves it to operators; each behind node
	// syncs explicitly, exactly as an operator-triggered repair would.
	puller := members[1]
	okBefore, fbBefore := puller.node.DeltaPulls()
	deltaBefore, fullBefore := puller.node.AntiEntropyBytes()
	for _, m := range members[1:] {
		if err := m.node.Sync(ctx, members[0].base); err != nil {
			return fmt.Errorf("delta sync via %s: %w", m.id, err)
		}
		if _, err := m.store.Get("epfis_delta", "solo"); err != nil {
			return fmt.Errorf("delta sync did not deliver the divergent key to %s: %w", m.id, err)
		}
	}
	okAfter, fbAfter := puller.node.DeltaPulls()
	deltaAfter, fullAfter := puller.node.AntiEntropyBytes()
	if okAfter <= okBefore || fbAfter != fbBefore {
		return fmt.Errorf("delta sync pulls ok %d->%d fallback %d->%d, want ok+1 and no fallback",
			okBefore, okAfter, fbBefore, fbAfter)
	}
	if fullAfter != fullBefore {
		return fmt.Errorf("delta sync moved %d full-snapshot bytes, want 0", fullAfter-fullBefore)
	}
	deltaBytes := deltaAfter - deltaBefore
	fullStream, _, err := members[0].store.ExportSnapshot()
	if err != nil {
		return err
	}
	if deltaBytes == 0 || deltaBytes*2 >= uint64(len(fullStream)) {
		return fmt.Errorf("delta sync moved %d bytes vs %d-byte snapshot, want well under half",
			deltaBytes, len(fullStream))
	}
	fmt.Fprintf(out, "ok delta-sync: 1 divergent key in %d bytes (full snapshot %d), no fallback\n",
		deltaBytes, len(fullStream))

	// Partition node-a away from {node-b, node-c} while both sides take
	// writes, then heal and require convergence to one content hash.
	minority, majority := members[0], members[1:]
	for _, m := range majority {
		minority.inj.Block(m.host())
		m.inj.Block(minority.host())
	}

	// Pick a key whose replica set sits entirely on the majority side: its
	// write quorum is fully reachable, so the mutation must ack with a hint
	// journaled for the minority. (With R=2 of 3 nodes, a key owned by the
	// partitioned node cannot assemble a majority of owners from either side;
	// that degraded case is the minority check below.)
	majorCol := ""
	for i := 0; i < 64 && majorCol == ""; i++ {
		col := fmt.Sprintf("major%d", i)
		ownedByMinority := false
		for _, o := range majority[0].node.Owners("epfis_partition." + col) {
			if o.ID == minority.id {
				ownedByMinority = true
				break
			}
		}
		if !ownedByMinority {
			majorCol = col
		}
	}
	if majorCol == "" {
		return fmt.Errorf("no key found with all owners on the majority side")
	}
	majorSt, err := fitVariantStats("epfis_partition", majorCol, 23)
	if err != nil {
		return err
	}
	majorBody, err := json.Marshal(majorSt)
	if err != nil {
		return err
	}
	if _, _, err := do(ctx, client, http.MethodPut, majority[0].base+"/v1/indexes/epfis_partition/"+majorCol, majorBody); err != nil {
		return fmt.Errorf("majority-side PUT during partition: %w", err)
	}

	// The minority cannot assemble a quorum: it must apply locally, journal
	// hints, and answer an honest 503 — never a silent success or data loss.
	minorSt, err := fitVariantStats("epfis_partition", "minor", 29)
	if err != nil {
		return err
	}
	minorBody, err := json.Marshal(minorSt)
	if err != nil {
		return err
	}
	code, err := doStatus(ctx, client, http.MethodPut, minority.base+"/v1/indexes/epfis_partition/minor", minorBody)
	if err != nil {
		return fmt.Errorf("minority-side PUT during partition: %w", err)
	}
	if code != http.StatusServiceUnavailable {
		return fmt.Errorf("minority-side PUT during partition = %d, want 503", code)
	}
	if _, err := minority.store.Get("epfis_partition", "minor"); err != nil {
		return fmt.Errorf("minority-side PUT was not applied locally: %w", err)
	}
	fmt.Fprintf(out, "ok partition: majority acked, minority answered 503 and journaled hints\n")

	// Heal and converge: gossip anti-entropy plus hinted handoff must bring
	// every store to the same content hash.
	for _, m := range members {
		m.inj.Heal()
	}
	if err := waitFor(ctx, "partition heal convergence", func() bool {
		pending := 0
		for _, m := range members {
			pending += m.srv.DrainHandoff(ctx)
		}
		var first string
		for i, m := range members {
			h, _, err := m.store.ContentHash()
			if err != nil {
				return false
			}
			if i == 0 {
				first = h
			} else if h != first {
				return false
			}
		}
		return pending == 0
	}); err != nil {
		return err
	}
	for _, m := range members {
		for _, col := range []string{majorCol, "minor"} {
			if _, err := m.store.Get("epfis_partition", col); err != nil {
				return fmt.Errorf("%s missing epfis_partition.%s after heal: %w", m.id, col, err)
			}
		}
	}
	fmt.Fprintf(out, "ok heal: all %d stores converged to one content hash\n", numNodes)

	// Kill one node abruptly. The survivors must keep answering bit-exactly:
	// each one either owns the key or proxies to the surviving owner.
	victim := members[numNodes-1]
	victim.cancel()
	<-victim.done
	fmt.Fprintf(out, "ok kill: %s terminated\n", victim.id)

	for _, m := range members[:numNodes-1] {
		var got float64
		// The first attempt may race the dead node's teardown; allow brief
		// retries, but only honest errors are tolerated along the way.
		err := retry(ctx, 20, 100*time.Millisecond, func() error {
			var err error
			got, err = estimate(ctx, client, m.base+estPath)
			return err
		})
		if err != nil {
			return fmt.Errorf("post-kill estimate via %s: %w", m.id, err)
		}
		if got != want {
			return fmt.Errorf("post-kill estimate via %s = %v, want %v", m.id, got, want)
		}
	}
	fmt.Fprintf(out, "ok survive: bit-exact (%v) from both survivors after the kill\n", want)
	return nil
}

// spawn starts one cluster-mode service node on a pre-opened listener. Every
// outbound hop (gossip, replication, hint delivery) crosses a faultnet
// injector so the partition phase can sever links deterministically; hints
// are journaled under handoffDir.
func spawn(ctx context.Context, id string, ln net.Listener, urls []string, seed int64, handoffDir string) (*member, error) {
	store := catalog.NewStore()
	inj := faultnet.NewInjector(nil, seed)
	node, err := cluster.NewNode(cluster.Config{
		SelfID:     id,
		SelfURL:    "http://" + ln.Addr().String(),
		Seeds:      urls,
		Replicas:   replicas,
		Heartbeat:  100 * time.Millisecond,
		Store:      store,
		HTTPClient: inj.Client(5 * time.Second),
	})
	if err != nil {
		return nil, err
	}
	srv, err := service.New(service.Config{
		Store:      store,
		Cluster:    node,
		Transport:  inj,
		HandoffDir: handoffDir,
	})
	if err != nil {
		return nil, err
	}
	nctx, cancel := context.WithCancel(ctx)
	go node.Run(nctx)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(nctx, ln) }()
	return &member{
		id:     id,
		base:   "http://" + ln.Addr().String(),
		store:  store,
		node:   node,
		srv:    srv,
		inj:    inj,
		cancel: cancel,
		done:   done,
	}, nil
}

// waitFor polls cond until it holds or ctx expires.
func waitFor(ctx context.Context, what string, cond func() bool) error {
	for {
		if cond() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for %s", what)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// retry runs fn up to n times with a fixed pause between attempts.
func retry(ctx context.Context, n int, pause time.Duration, fn func() error) error {
	var err error
	for i := 0; i < n; i++ {
		if err = fn(); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(pause):
		}
	}
	return err
}

// estimate fetches one estimate and returns its fetches field.
func estimate(ctx context.Context, client *http.Client, url string) (float64, error) {
	_, raw, err := do(ctx, client, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	var resp struct {
		Fetches float64 `json:"fetches"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return 0, err
	}
	return resp.Fetches, nil
}

// pollHealthz waits for one node to answer /healthz with 200.
func pollHealthz(ctx context.Context, client *http.Client, base string) error {
	for {
		_, _, err := do(ctx, client, http.MethodGet, base+"/healthz", nil)
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("healthz %s: %w (last error: %v)", base, ctx.Err(), err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// do runs one request, treating any non-2xx status as an error.
func do(ctx context.Context, client *http.Client, method, url string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, nil, fmt.Errorf("%s %s: %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return resp, raw, nil
}

// doStatus runs one request and reports the status code — partition phases
// expect specific non-2xx answers, which do() would turn into errors.
func doStatus(ctx context.Context, client *http.Client, method, url string, body []byte) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// fitCheckStats runs the real LRU-Fit pipeline over a small synthetic index
// so the installed statistics are paper-shaped, not hand-rolled.
func fitCheckStats() (*stats.IndexStats, error) {
	return fitVariantStats(checkTable, checkColumn, 17)
}

// fitVariantStats fits statistics for an arbitrary index key — the partition
// phase installs distinct entries from each side of the split.
func fitVariantStats(table, column string, seed int64) (*stats.IndexStats, error) {
	cfg := datagen.Config{Name: table, Column: column, N: 20_000, I: 500, R: 40, K: 0.2, Seed: seed}
	ds, err := datagen.GenerateDataset(cfg)
	if err != nil {
		return nil, err
	}
	meta := core.Meta{Table: table, Column: column, T: ds.T, N: cfg.N, I: cfg.I}
	return core.LRUFit(ds.Trace(), meta, core.Options{})
}
