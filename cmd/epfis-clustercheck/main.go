// Command epfis-clustercheck smoke-tests cluster mode end to end over real
// HTTP: it spawns a 3-node cluster (the same servers epfis-serve runs) on
// loopback ports, installs a freshly fitted index through one node, verifies
// every node answers the same estimate bit-for-bit (serving its own keys or
// proxying to an owner), verifies the snapshot stream imports cleanly, then
// kills one node and verifies the survivors keep serving bit-exact answers.
//
//	epfis-clustercheck
//
// Exit status is non-zero when any check fails; `make cluster-check` runs it
// in CI alongside the chaos and observability drills.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/cluster"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/service"
	"epfis/internal/stats"
)

const (
	checkTable  = "epfis_clustercheck"
	checkColumn = "key"
	numNodes    = 3
	replicas    = 2
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "epfis-clustercheck: %v\n", err)
		os.Exit(1)
	}
}

// member is one spawned node: its base URL plus the handles needed to kill it.
type member struct {
	id     string
	base   string
	store  *catalog.Store
	node   *cluster.Node
	cancel context.CancelFunc
	done   chan error
}

func run(args []string) error {
	fs := flag.NewFlagSet("epfis-clustercheck", flag.ExitOnError)
	timeout := fs.Duration("timeout", 60*time.Second, "overall deadline for the checks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	out := os.Stdout

	// Listeners first: every node must know every URL before it starts.
	lns := make([]net.Listener, numNodes)
	urls := make([]string, numNodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}

	members := make([]*member, numNodes)
	for i := range members {
		m, err := spawn(ctx, fmt.Sprintf("node-%c", 'a'+i), lns[i], urls)
		if err != nil {
			return err
		}
		defer m.cancel()
		members[i] = m
	}
	client := &http.Client{}
	for _, m := range members {
		if err := pollHealthz(ctx, client, m.base); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "ok spawn: %d nodes up (R=%d)\n", numNodes, replicas)

	// Let gossip converge: every node must see all members on its ring.
	if err := waitFor(ctx, "membership convergence", func() bool {
		for _, m := range members {
			if m.node.Ring().Len() != numNodes {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "ok gossip: all rings have %d members\n", numNodes)

	// Install a freshly fitted index through one node; replication must land
	// it on every store.
	st, err := fitCheckStats()
	if err != nil {
		return err
	}
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	putPath := fmt.Sprintf("/v1/indexes/%s/%s", checkTable, checkColumn)
	if _, _, err := do(ctx, client, http.MethodPut, members[0].base+putPath, body); err != nil {
		return fmt.Errorf("install check index: %w", err)
	}
	for _, m := range members {
		if m.store.Len() != 1 {
			return fmt.Errorf("replication: %s has %d catalog entries, want 1", m.id, m.store.Len())
		}
	}
	fmt.Fprintf(out, "ok install: %s.%s replicated to all %d stores\n", checkTable, checkColumn, numNodes)

	// Every node must answer the estimate bit-for-bit — owners serve locally,
	// non-owners proxy one hop.
	want, err := core.EstimateFetches(st, 128, 0.1, 1)
	if err != nil {
		return err
	}
	key := checkTable + "." + checkColumn
	estPath := fmt.Sprintf("/v1/estimate?table=%s&column=%s&b=128&sigma=0.1", checkTable, checkColumn)
	for _, m := range members {
		got, err := estimate(ctx, client, m.base+estPath)
		if err != nil {
			return fmt.Errorf("estimate via %s: %w", m.id, err)
		}
		if got != want {
			return fmt.Errorf("estimate via %s = %v, want %v (owns=%v)", m.id, got, want, m.node.Owns(key))
		}
	}
	fmt.Fprintf(out, "ok estimate: bit-exact (%v) from all %d nodes\n", want, numNodes)

	// The snapshot stream must carry the checksummed catalog and import into
	// a fresh store — the path a recovering node uses.
	_, raw, err := do(ctx, client, http.MethodGet, members[0].base+cluster.PathSnapshot, nil)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	fresh := catalog.NewStore()
	if _, err := fresh.ImportSnapshot(raw); err != nil {
		return fmt.Errorf("snapshot import: %w", err)
	}
	if fresh.Len() != 1 {
		return fmt.Errorf("snapshot import: %d entries, want 1", fresh.Len())
	}
	fmt.Fprintf(out, "ok snapshot: %d-byte checksummed stream imports cleanly\n", len(raw))

	// Kill one node abruptly. The survivors must keep answering bit-exactly:
	// each one either owns the key or proxies to the surviving owner.
	victim := members[numNodes-1]
	victim.cancel()
	<-victim.done
	fmt.Fprintf(out, "ok kill: %s terminated\n", victim.id)

	for _, m := range members[:numNodes-1] {
		var got float64
		// The first attempt may race the dead node's teardown; allow brief
		// retries, but only honest errors are tolerated along the way.
		err := retry(ctx, 20, 100*time.Millisecond, func() error {
			var err error
			got, err = estimate(ctx, client, m.base+estPath)
			return err
		})
		if err != nil {
			return fmt.Errorf("post-kill estimate via %s: %w", m.id, err)
		}
		if got != want {
			return fmt.Errorf("post-kill estimate via %s = %v, want %v", m.id, got, want)
		}
	}
	fmt.Fprintf(out, "ok survive: bit-exact (%v) from both survivors after the kill\n", want)
	return nil
}

// spawn starts one cluster-mode service node on a pre-opened listener.
func spawn(ctx context.Context, id string, ln net.Listener, urls []string) (*member, error) {
	store := catalog.NewStore()
	node, err := cluster.NewNode(cluster.Config{
		SelfID:    id,
		SelfURL:   "http://" + ln.Addr().String(),
		Seeds:     urls,
		Replicas:  replicas,
		Heartbeat: 100 * time.Millisecond,
		Store:     store,
	})
	if err != nil {
		return nil, err
	}
	srv, err := service.New(service.Config{Store: store, Cluster: node})
	if err != nil {
		return nil, err
	}
	nctx, cancel := context.WithCancel(ctx)
	go node.Run(nctx)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(nctx, ln) }()
	return &member{
		id:     id,
		base:   "http://" + ln.Addr().String(),
		store:  store,
		node:   node,
		cancel: cancel,
		done:   done,
	}, nil
}

// waitFor polls cond until it holds or ctx expires.
func waitFor(ctx context.Context, what string, cond func() bool) error {
	for {
		if cond() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for %s", what)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// retry runs fn up to n times with a fixed pause between attempts.
func retry(ctx context.Context, n int, pause time.Duration, fn func() error) error {
	var err error
	for i := 0; i < n; i++ {
		if err = fn(); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(pause):
		}
	}
	return err
}

// estimate fetches one estimate and returns its fetches field.
func estimate(ctx context.Context, client *http.Client, url string) (float64, error) {
	_, raw, err := do(ctx, client, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	var resp struct {
		Fetches float64 `json:"fetches"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return 0, err
	}
	return resp.Fetches, nil
}

// pollHealthz waits for one node to answer /healthz with 200.
func pollHealthz(ctx context.Context, client *http.Client, base string) error {
	for {
		_, _, err := do(ctx, client, http.MethodGet, base+"/healthz", nil)
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("healthz %s: %w (last error: %v)", base, ctx.Err(), err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// do runs one request, treating any non-2xx status as an error.
func do(ctx context.Context, client *http.Client, method, url string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, nil, fmt.Errorf("%s %s: %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return resp, raw, nil
}

// fitCheckStats runs the real LRU-Fit pipeline over a small synthetic index
// so the installed statistics are paper-shaped, not hand-rolled.
func fitCheckStats() (*stats.IndexStats, error) {
	cfg := datagen.Config{Name: checkTable, Column: checkColumn, N: 20_000, I: 500, R: 40, K: 0.2, Seed: 17}
	ds, err := datagen.GenerateDataset(cfg)
	if err != nil {
		return nil, err
	}
	meta := core.Meta{Table: checkTable, Column: checkColumn, T: ds.T, N: cfg.N, I: cfg.I}
	return core.LRUFit(ds.Trace(), meta, core.Options{})
}
