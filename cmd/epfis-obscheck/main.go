// Command epfis-obscheck smoke-tests the estimation service's observability
// surface end to end over real HTTP: content-negotiated /metrics (the JSON
// default and both Prometheus forms, with the text exposition run through
// the obs package's format validator), the /debug/traces ring with its
// per-stage span breakdown, traceparent echo, and the build-info fields on
// /healthz.
//
// With no flags it spawns a live instance of the service (the same server
// epfis-serve runs) on a loopback port, installs a freshly fitted index
// through PUT /v1/indexes, drives traffic, and checks every surface:
//
//	epfis-obscheck
//
// With -addr it runs the same checks against an already-running epfis-serve
// — note the checks install and then delete an index named
// "epfis_obscheck"."key" on that instance:
//
//	epfis-obscheck -addr localhost:8080
//
// Exit status is non-zero when any check fails; `make obs-check` runs the
// self-spawning form in CI.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/cluster"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/obs"
	"epfis/internal/service"
	"epfis/internal/stats"
)

// checkTable/checkColumn name the index the checks install and remove.
const (
	checkTable  = "epfis_obscheck"
	checkColumn = "key"
)

// requiredFamilies must all appear in the Prometheus exposition after the
// check traffic has run.
var requiredFamilies = []string{
	"epfis_http_requests_total",
	"epfis_http_request_duration_seconds_bucket",
	"epfis_estimate_buffer_pages_bucket",
	"epfis_estimate_sigma_bucket",
	"epfis_index_estimates_total",
	"epfis_estimates_total",
	"epfis_cache_hits_total",
	"epfis_cache_misses_total",
	"epfis_catalog_generation",
	"epfis_breaker_state",
	"epfis_degraded",
	"epfis_draining",
	"epfis_traces_total",
	"epfis_uptime_seconds",
	"epfis_build_info",
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "epfis-obscheck: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("epfis-obscheck", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "check a running service at this address instead of spawning one")
		timeout = fs.Duration("timeout", 30*time.Second, "overall deadline for the checks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	base := *addr
	if base == "" {
		srv, err := service.New(service.Config{
			Store:     catalog.NewStore(),
			SlowTrace: -1, // flag every request slow so the slow path is exercised
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ctx, ln) }()
		defer func() {
			cancel()
			<-done
		}()
		base = ln.Addr().String()
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if err := runChecks(ctx, base, os.Stdout); err != nil {
		return err
	}
	// The cluster phase spawns its own nodes; against -addr there is nothing
	// to federate with, so it only runs in the self-spawning form.
	if *addr == "" {
		return runClusterChecks(ctx, os.Stdout)
	}
	return nil
}

// runChecks drives the observability checks against the service at base,
// logging one line per passed check to out.
func runChecks(ctx context.Context, base string, out io.Writer) error {
	client := &http.Client{}

	// The service must come up healthy, with build info stamped.
	var h service.Health
	if err := pollHealthz(ctx, client, base, &h); err != nil {
		return err
	}
	if h.GoVersion == "" {
		return fmt.Errorf("healthz: missing goVersion build info: %+v", h)
	}
	fmt.Fprintf(out, "ok healthz: status=%s generation=%d goVersion=%s\n", h.Status, h.Generation, h.GoVersion)

	// Install a freshly fitted index, then remove it when done.
	st, err := fitCheckStats()
	if err != nil {
		return err
	}
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	putURL := fmt.Sprintf("%s/v1/indexes/%s/%s", base, checkTable, checkColumn)
	if _, _, err := do(ctx, client, http.MethodPut, putURL, body, nil); err != nil {
		return fmt.Errorf("install check index: %w", err)
	}
	defer do(context.Background(), client, http.MethodDelete, putURL, nil, nil)
	fmt.Fprintf(out, "ok install: %s.%s\n", checkTable, checkColumn)

	// Estimate traffic with an explicit traceparent: the response must echo
	// the trace id with a fresh span id. A second identical request warms the
	// memo cache so hit counters move too.
	tp := obs.NewTraceparent()
	estURL := fmt.Sprintf("%s/v1/estimate?table=%s&column=%s&b=128&sigma=0.1", base, checkTable, checkColumn)
	hdr := http.Header{obs.TraceparentHeader: []string{tp.String()}}
	for i := 0; i < 2; i++ {
		resp, _, err := do(ctx, client, http.MethodGet, estURL, nil, hdr)
		if err != nil {
			return fmt.Errorf("estimate: %w", err)
		}
		echo, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
		if !ok {
			return fmt.Errorf("estimate: response traceparent %q unparseable", resp.Header.Get(obs.TraceparentHeader))
		}
		if echo.Trace != tp.Trace {
			return fmt.Errorf("estimate: trace id not propagated: sent %s got %s", tp.TraceString(), echo.TraceString())
		}
		if echo.Span == tp.Span {
			return fmt.Errorf("estimate: span id not re-parented")
		}
	}
	fmt.Fprintf(out, "ok estimate: traceparent %s echoed and re-parented\n", tp.TraceString())

	// Default /metrics stays JSON.
	resp, raw, err := do(ctx, client, http.MethodGet, base+"/metrics", nil, nil)
	if err != nil {
		return fmt.Errorf("metrics json: %w", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		return fmt.Errorf("metrics json: Content-Type = %q", ct)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("metrics json: not a JSON document: %w", err)
	}
	if _, ok := doc["routes"]; !ok {
		return fmt.Errorf("metrics json: missing routes map")
	}
	fmt.Fprintf(out, "ok metrics: default JSON document (%d bytes, %d keys)\n", len(raw), len(doc))

	// Both Prometheus negotiation forms must yield a valid exposition with
	// the expected families.
	for _, form := range []struct {
		name string
		url  string
		hdr  http.Header
	}{
		{"query", base + "/metrics?format=prom", nil},
		{"accept", base + "/metrics", http.Header{"Accept": []string{"text/plain"}}},
	} {
		resp, raw, err := do(ctx, client, http.MethodGet, form.url, nil, form.hdr)
		if err != nil {
			return fmt.Errorf("metrics prom (%s): %w", form.name, err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
			return fmt.Errorf("metrics prom (%s): Content-Type = %q", form.name, ct)
		}
		if err := obs.ValidateExposition(raw); err != nil {
			return fmt.Errorf("metrics prom (%s): invalid exposition: %w", form.name, err)
		}
		for _, fam := range requiredFamilies {
			if !bytes.Contains(raw, []byte(fam)) {
				return fmt.Errorf("metrics prom (%s): missing family %s", form.name, fam)
			}
		}
		idx := fmt.Sprintf(`epfis_index_estimates_total{index="%s.%s"}`, checkTable, checkColumn)
		if !bytes.Contains(raw, []byte(idx)) {
			return fmt.Errorf("metrics prom (%s): missing per-index series %s", form.name, idx)
		}
		fmt.Fprintf(out, "ok metrics: prom via %s valid (%d bytes, %d families)\n", form.name, len(raw), len(requiredFamilies))
	}

	// The trace ring must hold the estimate request with its span breakdown.
	resp, raw, err = do(ctx, client, http.MethodGet, base+"/debug/traces", nil, nil)
	if err != nil {
		return fmt.Errorf("debug/traces: %w (is tracing disabled on this instance?)", err)
	}
	_ = resp
	var traces struct {
		Ring   int `json:"ring"`
		Traces []struct {
			Trace string `json:"trace"`
			Route string `json:"route"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(raw, &traces); err != nil {
		return fmt.Errorf("debug/traces: %w", err)
	}
	// Both estimate requests share the trace id; the memo-cold one carries
	// the full parse/cache/estimate/encode breakdown, the warm one skips the
	// estimate stage.
	want := strings.Join([]string{obs.StageParse, obs.StageCache, obs.StageEstimate, obs.StageEncode}, ",")
	found, matched := 0, false
	for _, tr := range traces.Traces {
		if tr.Trace != tp.TraceString() {
			continue
		}
		found++
		var names []string
		for _, sp := range tr.Spans {
			names = append(names, sp.Name)
		}
		if strings.Join(names, ",") == want {
			matched = true
		}
	}
	if found == 0 {
		return fmt.Errorf("debug/traces: trace %s not in ring (%d traces)", tp.TraceString(), len(traces.Traces))
	}
	if !matched {
		return fmt.Errorf("debug/traces: no trace %s with span breakdown %s", tp.TraceString(), want)
	}
	fmt.Fprintf(out, "ok traces: ring=%d, trace %s has parse/cache/estimate/encode spans\n", traces.Ring, tp.TraceString())
	return nil
}

// pollHealthz waits for the service to answer /healthz with 200.
func pollHealthz(ctx context.Context, client *http.Client, base string, h *service.Health) error {
	for {
		_, raw, err := do(ctx, client, http.MethodGet, base+"/healthz", nil, nil)
		if err == nil {
			return json.Unmarshal(raw, h)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("healthz: %w (last error: %v)", ctx.Err(), err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// do runs one request and returns the response plus its full body, treating
// any non-2xx status as an error.
func do(ctx context.Context, client *http.Client, method, url string, body []byte, hdr http.Header) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, nil, err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, nil, fmt.Errorf("%s %s: %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return resp, raw, nil
}

// fitCheckStats runs the real LRU-Fit pipeline over a small synthetic index
// so the installed statistics are paper-shaped, not hand-rolled.
func fitCheckStats() (*stats.IndexStats, error) {
	ds, _, err := checkDataset()
	if err != nil {
		return nil, err
	}
	meta := core.Meta{Table: checkTable, Column: checkColumn, T: ds.T, N: int64(len(ds.Trace())), I: 500}
	return core.LRUFit(ds.Trace(), meta, core.Options{})
}

// checkDataset generates the synthetic index the checks fit and re-scan; the
// cluster phase streams its trace through /v1/ingest, so fitting and ingest
// must see the same references.
func checkDataset() (*datagen.Dataset, core.Meta, error) {
	cfg := datagen.Config{Name: checkTable, Column: checkColumn, N: 20_000, I: 500, R: 40, K: 0.2, Seed: 11}
	ds, err := datagen.GenerateDataset(cfg)
	if err != nil {
		return nil, core.Meta{}, err
	}
	return ds, core.Meta{Table: checkTable, Column: checkColumn, T: ds.T, N: cfg.N, I: cfg.I}, nil
}

// clusterMember is one spawned node of the cluster observability phase.
type clusterMember struct {
	id   string
	base string
	node *cluster.Node
}

// runClusterChecks spawns a 3-node fully replicated cluster and checks the
// distributed observability surfaces: cross-node trace stitching of a
// replicated PUT, the federated /v1/cluster/metrics exposition, and accuracy
// telemetry flowing from a streamed ingest scan.
func runClusterChecks(ctx context.Context, out io.Writer) error {
	const (
		numNodes = 3
		// Full replication: every PUT fans out to every node, so the stitched
		// trace must span the whole cluster.
		replicas = 3
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	lns := make([]net.Listener, numNodes)
	urls := make([]string, numNodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	members := make([]*clusterMember, numNodes)
	for i := range members {
		id := fmt.Sprintf("node-%c", 'a'+i)
		store := catalog.NewStore()
		node, err := cluster.NewNode(cluster.Config{
			SelfID:    id,
			SelfURL:   urls[i],
			Seeds:     urls,
			Replicas:  replicas,
			Heartbeat: 100 * time.Millisecond,
			Store:     store,
		})
		if err != nil {
			return err
		}
		srv, err := service.New(service.Config{Store: store, Cluster: node})
		if err != nil {
			return err
		}
		go node.Run(ctx)
		go srv.Serve(ctx, lns[i])
		members[i] = &clusterMember{id: id, base: urls[i], node: node}
	}
	client := &http.Client{}
	for _, m := range members {
		var h service.Health
		if err := pollHealthz(ctx, client, m.base, &h); err != nil {
			return err
		}
	}
	if err := waitFor(ctx, "membership convergence", func() bool {
		for _, m := range members {
			if m.node.Ring().Len() != numNodes {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "ok cluster: %d nodes up and gossiped (R=%d)\n", numNodes, replicas)

	// A replicated PUT under a known traceparent must stitch into one
	// distributed trace on a node that did not coordinate the write: the
	// coordinator's replicate hops to both peers plus records from every node.
	st, err := fitCheckStats()
	if err != nil {
		return err
	}
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tp := obs.NewTraceparent()
	putURL := fmt.Sprintf("%s/v1/indexes/%s/%s", members[0].base, checkTable, checkColumn)
	if _, _, err := do(ctx, client, http.MethodPut, putURL, body,
		http.Header{obs.TraceparentHeader: []string{tp.String()}}); err != nil {
		return fmt.Errorf("cluster install: %w", err)
	}
	type stitched struct {
		Nodes        []string `json:"nodes"`
		MissingNodes []string `json:"missing_nodes"`
		Records      []struct {
			Node string `json:"node"`
			Kind string `json:"kind"`
			Peer string `json:"peer"`
		} `json:"records"`
	}
	var doc stitched
	stitchURL := members[1].base + "/debug/traces/" + tp.TraceString()
	if err := waitFor(ctx, "stitched trace convergence", func() bool {
		_, raw, err := do(ctx, client, http.MethodGet, stitchURL, nil, nil)
		if err != nil {
			return false
		}
		doc = stitched{}
		if err := json.Unmarshal(raw, &doc); err != nil {
			return false
		}
		hops := map[string]bool{}
		for _, rec := range doc.Records {
			if rec.Kind == obs.HopReplicate && rec.Node == members[0].id {
				hops[rec.Peer] = true
			}
		}
		return len(doc.Nodes) == numNodes && hops[members[1].id] && hops[members[2].id]
	}); err != nil {
		return err
	}
	if len(doc.MissingNodes) != 0 {
		return fmt.Errorf("stitch: healthy cluster reported missing nodes %v", doc.MissingNodes)
	}
	fmt.Fprintf(out, "ok stitch: trace %s spans all %d nodes with both replicate hops (%d records)\n",
		tp.TraceString(), numNodes, len(doc.Records))

	// Estimate traffic through every node, then one federated scrape: a valid
	// exposition carrying per-node series, the cluster counter rollup, and a
	// peer-up gauge for every member.
	estPath := fmt.Sprintf("/v1/estimate?table=%s&column=%s&b=128&sigma=0.1", checkTable, checkColumn)
	for _, m := range members {
		if _, _, err := do(ctx, client, http.MethodGet, m.base+estPath, nil, nil); err != nil {
			return fmt.Errorf("cluster estimate via %s: %w", m.id, err)
		}
	}
	fedRaw, err := federatedScrape(ctx, client, members[2].base, func(raw []byte) error {
		if !bytes.Contains(raw, []byte(`epfis_estimates_total{node="cluster"}`)) {
			return fmt.Errorf("missing cluster counter rollup")
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, m := range members {
		if !bytes.Contains(fedRaw, []byte(fmt.Sprintf(`epfis_federation_peer_up{node=%q} 1`, m.id))) {
			return fmt.Errorf("federation: peer %s not reported up", m.id)
		}
		if !bytes.Contains(fedRaw, []byte(fmt.Sprintf(`node=%q`, m.id))) {
			return fmt.Errorf("federation: no per-node series for %s", m.id)
		}
	}
	fmt.Fprintf(out, "ok federate: valid %d-byte exposition, %d nodes up, cluster rollups present\n",
		len(fedRaw), numNodes)

	// Stream one full scan of the fitted index through ingest: the owning
	// node must surface the measurement on /debug/accuracy, and the accuracy
	// histograms must reach the federated exposition.
	ds, meta, err := checkDataset()
	if err != nil {
		return err
	}
	trace := ds.Trace()
	for batch := 0; len(trace) > 0; batch++ {
		n := 4096
		if n > len(trace) {
			n = len(trace)
		}
		req := service.IngestRequest{
			Table: meta.Table, Column: meta.Column, Pages: trace[:n],
			BatchID: fmt.Sprintf("obscheck-%d", batch),
		}
		raw, err := json.Marshal(req)
		if err != nil {
			return err
		}
		if _, _, err := do(ctx, client, http.MethodPost, members[0].base+"/v1/ingest", raw, nil); err != nil {
			return fmt.Errorf("cluster ingest batch %d: %w", batch, err)
		}
		trace = trace[n:]
	}
	key := checkTable + "." + checkColumn
	var scans uint64
	if err := waitFor(ctx, "accuracy telemetry", func() bool {
		for _, m := range members {
			var acc struct {
				Indexes map[string]struct {
					Scans     uint64  `json:"scans"`
					MaxRelErr float64 `json:"maxRelErr"`
				} `json:"indexes"`
			}
			_, raw, err := do(ctx, client, http.MethodGet, m.base+"/debug/accuracy", nil, nil)
			if err != nil {
				continue
			}
			if err := json.Unmarshal(raw, &acc); err != nil {
				continue
			}
			if a, ok := acc.Indexes[key]; ok && a.Scans >= 1 {
				scans = a.Scans
				return true
			}
		}
		return false
	}); err != nil {
		return err
	}
	if _, err := federatedScrape(ctx, client, members[0].base, func(raw []byte) error {
		if !bytes.Contains(raw, []byte("epfis_accuracy_relerr_bucket")) {
			return fmt.Errorf("missing epfis_accuracy_relerr histograms")
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "ok accuracy: %s measured (%d scans), relerr histograms federated\n", key, scans)
	return nil
}

// federatedScrape fetches /v1/cluster/metrics, validates the exposition, and
// applies one extra content check.
func federatedScrape(ctx context.Context, client *http.Client, base string, check func([]byte) error) ([]byte, error) {
	resp, raw, err := do(ctx, client, http.MethodGet, base+"/v1/cluster/metrics", nil, nil)
	if err != nil {
		return nil, fmt.Errorf("federated metrics: %w", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		return nil, fmt.Errorf("federated metrics: Content-Type = %q", ct)
	}
	if err := obs.ValidateExposition(raw); err != nil {
		return nil, fmt.Errorf("federated metrics: invalid exposition: %w", err)
	}
	if err := check(raw); err != nil {
		return nil, fmt.Errorf("federated metrics: %w", err)
	}
	return raw, nil
}

// waitFor polls cond until it holds or ctx expires.
func waitFor(ctx context.Context, what string, cond func() bool) error {
	for {
		if cond() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for %s", what)
		case <-time.After(50 * time.Millisecond):
		}
	}
}
