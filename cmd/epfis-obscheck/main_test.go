package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/service"
)

func TestRunSelfSpawned(t *testing.T) {
	// run() with no -addr spawns its own service instance on a loopback port.
	if err := run([]string{"-timeout", "30s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunChecksAgainstLiveServer(t *testing.T) {
	srv, err := service.New(service.Config{Store: catalog.NewStore(), SlowTrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var out strings.Builder
	if err := runChecks(ctx, ts.URL, &out); err != nil {
		t.Fatalf("checks failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"ok healthz", "ok install", "ok estimate", "ok metrics: default JSON",
		"ok metrics: prom via query", "ok metrics: prom via accept", "ok traces"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunChecksFailsWhenTracingDisabled(t *testing.T) {
	srv, err := service.New(service.Config{Store: catalog.NewStore(), TraceRing: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var out strings.Builder
	err = runChecks(ctx, ts.URL, &out)
	if err == nil || !strings.Contains(err.Error(), "traceparent") && !strings.Contains(err.Error(), "traces") {
		t.Fatalf("err = %v, want tracing-related failure", err)
	}
}

func TestRunChecksFailsAgainstNonService(t *testing.T) {
	ts := httptest.NewServer(nil) // 404 for everything
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var out strings.Builder
	if err := runChecks(ctx, ts.URL, &out); err == nil {
		t.Fatal("checks passed against a server with no routes")
	}
}
