// Command epfis-serve runs the estimation service: the statistics catalog
// plus Subprogram Est-IO behind an HTTP JSON API, so query optimizers can
// cost candidate index-scan plans over the network at high QPS.
//
//	epfis-serve -addr :8080 -catalog catalog.json
//
// The catalog file is the same JSON format `epfis gen` writes. A missing
// file starts the service empty; statistics can then be installed with
// PUT /v1/indexes/{table}/{column} and are persisted back to the file with
// the atomic-rename pattern. POST /v1/reload picks up a catalog refreshed
// out-of-process (an LRU-Fit rerun) without restarting.
//
// The process shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "epfis-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("epfis-serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		path     = fs.String("catalog", "catalog.json", "statistics catalog file (created on first install if missing)")
		memory   = fs.Bool("in-memory", false, "run without a catalog file (no persistence, no reload)")
		cache    = fs.Int("cache", service.DefaultCacheEntries, "Est-IO memo cache entries (negative disables)")
		timeout  = fs.Duration("timeout", service.DefaultRequestTimeout, "per-request timeout (negative disables)")
		maxBatch = fs.Int("max-batch", service.DefaultMaxBatch, "maximum inputs per batch request")
		quiet    = fs.Bool("quiet", false, "suppress lifecycle logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *quiet {
		logger = nil
	}

	var (
		store *catalog.Store
		err   error
	)
	if *memory {
		store = catalog.NewStore()
	} else {
		store, err = catalog.Open(*path)
		if err != nil {
			return err
		}
	}
	if logger != nil {
		switch {
		case *memory:
			logger.Printf("in-memory catalog (no persistence)")
		case store.Len() == 0:
			logger.Printf("catalog %s absent or empty; will be created on first install", *path)
		default:
			logger.Printf("loaded %d catalog entries from %s", store.Len(), *path)
		}
	}

	srv, err := service.New(service.Config{
		Store:          store,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
		MaxBatch:       *maxBatch,
		Logger:         logger,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	if err := srv.Run(ctx, *addr); err != nil {
		return err
	}
	if logger != nil {
		logger.Printf("stopped after %s", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
