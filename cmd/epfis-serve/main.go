// Command epfis-serve runs the estimation service: the statistics catalog
// plus Subprogram Est-IO behind an HTTP JSON API, so query optimizers can
// cost candidate index-scan plans over the network at high QPS.
//
//	epfis-serve -addr :8080 -catalog catalog.json
//
// The catalog file is the same JSON format `epfis gen` writes. A missing
// file starts the service empty; statistics can then be installed with
// PUT /v1/indexes/{table}/{column} and are persisted back to the file with
// the atomic-rename pattern. POST /v1/reload picks up a catalog refreshed
// out-of-process (an LRU-Fit rerun) without restarting.
//
// The process shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests. Overload and persistence-failure behaviour is tunable with
// -max-inflight and -breaker-* (see the README's "Resilience & operations"
// section). -pprof-addr serves net/http/pprof on a separate listener for
// live profiling (off by default; see the README's "Performance" section).
//
// Observability (see the README's "Observability" section): lifecycle and
// degradation events are structured log/slog records shaped by -log-level
// and -log-format; GET /metrics serves Prometheus text when asked for
// text/plain (JSON stays the default); GET /debug/traces exposes a ring of
// recent request traces sized with -trace-ring, with requests at or above
// -slow-trace flagged slow.
//
// The EPFIS_FAULTS / EPFIS_FAULT_SEED environment variables
// arm deterministic filesystem fault injection for chaos drills:
//
//	EPFIS_FAULTS='sync:catalog:3:error' epfis-serve -catalog catalog.json
//
// EPFIS_NET_FAULTS / EPFIS_NET_FAULT_SEED do the same for the network: the
// rules (see faultnet.ParseRules for the grammar) sit on every outbound
// cluster hop — gossip, replication, forwarding, hinted handoff — and on
// inbound accepts, so partition and flaky-link drills are reproducible:
//
//	EPFIS_NET_FAULTS='request:10.0.0.2:*:3:drop' epfis-serve -cluster-seeds ...
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/cluster"
	"epfis/internal/faultfs"
	"epfis/internal/faultnet"
	"epfis/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "epfis-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("epfis-serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		path     = fs.String("catalog", "catalog.json", "statistics catalog file (created on first install if missing)")
		memory   = fs.Bool("in-memory", false, "run without a catalog file (no persistence, no reload)")
		cache    = fs.Int("cache", service.DefaultCacheEntries, "Est-IO memo cache entries (negative disables)")
		timeout  = fs.Duration("timeout", service.DefaultRequestTimeout, "per-request timeout (negative disables)")
		maxBatch = fs.Int("max-batch", service.DefaultMaxBatch, "maximum inputs per batch request")
		quiet    = fs.Bool("quiet", false, "suppress lifecycle logging")
		pprof    = fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

		maxInflight = fs.Int("max-inflight", service.DefaultMaxInflight,
			"concurrent requests admitted per route before shedding with 429 (negative disables)")
		breakerFailures = fs.Int("breaker-failures", 0,
			"consecutive persistence failures that open the circuit breaker (0 = default, negative disables)")
		breakerCooldown = fs.Duration("breaker-cooldown", 0,
			"how long the opened breaker rejects mutations before probing (0 = default)")

		logLevel = fs.String("log-level", "info",
			"minimum log level: debug, info, warn, or error")
		logFormat = fs.String("log-format", "text",
			"log record encoding: text or json")
		traceRing = fs.Int("trace-ring", 0,
			fmt.Sprintf("completed traces kept for GET /debug/traces (0 = default %d, negative disables tracing)", service.DefaultTraceRing))
		slowTrace = fs.Duration("slow-trace", 0,
			fmt.Sprintf("requests at or above this duration are flagged slow (0 = default %s, negative flags all)", service.DefaultSlowTrace))

		walDir = fs.String("wal-dir", "",
			"enable the WAL-backed catalog (group-committed mutations) with the log in this directory; empty keeps rename-per-commit persistence")
		checkpointEvery = fs.Int("checkpoint-every", 0,
			fmt.Sprintf("committed mutations between WAL checkpoints (0 = default %d, negative disables automatic checkpoints; requires -wal-dir)", catalog.DefaultCheckpointEvery))
		ingestQueue = fs.Int("ingest-queue", 0,
			fmt.Sprintf("trace batches queued for the ingest worker before POST /v1/ingest sheds with 429 (0 = default %d, negative disables the route)", service.DefaultIngestQueue))
		driftThreshold = fs.Float64("drift-threshold", 0,
			fmt.Sprintf("relative fetch-curve divergence that triggers a catalog republish (0 = default %g)", service.DefaultDriftThreshold))

		clusterSeeds = fs.String("cluster-seeds", "",
			"comma-separated peer base URLs; non-empty enables cluster mode")
		nodeID = fs.String("node-id", "",
			"stable node identity on the hash ring (required with -cluster-seeds)")
		nodeURL = fs.String("node-url", "",
			"base URL peers reach this node at, e.g. http://host:8080 (required with -cluster-seeds)")
		replicas = fs.Int("replicas", cluster.DefaultReplicas,
			fmt.Sprintf("replica-set size R per index key (1..%d)", cluster.MaxReplicas))
		heartbeat = fs.Duration("heartbeat", cluster.DefaultHeartbeat,
			"cluster gossip interval")
		handoffDir = fs.String("handoff-dir", "",
			"directory for the durable hinted-handoff and mutation-stamp journals (cluster mode); empty keeps both in memory only")
		handoffAbandonAfter = fs.Duration("handoff-abandon-after", 0,
			fmt.Sprintf("drop hint queues for peers absent from membership this long (0 = default %s, negative keeps them forever)", service.DefaultHandoffAbandonAfter))
		replicateTimeout = fs.Duration("replicate-timeout", 0,
			fmt.Sprintf("per-peer replication send timeout (0 = default %s)", service.DefaultReplicateTimeout))
		writeQuorum = fs.Int("write-quorum", 0,
			"owner acks required before a mutation succeeds (0 = majority of the replica set, negative = best-effort fan-out only)")
		clusterMaxIdleConns = fs.Int("cluster-max-idle-conns", 0,
			fmt.Sprintf("kept-alive connections per peer in the shared cluster transport (0 = default %d; requires -cluster-seeds)", cluster.DefaultMaxIdleConnsPerHost))
		deltaThreshold = fs.Float64("antientropy-delta-threshold", 0,
			fmt.Sprintf("divergent-key fraction above which anti-entropy falls back from per-entry delta sync to a full snapshot pull (0 = default %g, 1 = never fall back; requires -cluster-seeds)", cluster.DefaultDeltaThreshold))
		snapshotMaxBytes = fs.Int64("snapshot-max-bytes", 0,
			fmt.Sprintf("largest snapshot, digest, or entry body accepted from a peer during anti-entropy (0 = default %d; requires -cluster-seeds)", cluster.DefaultSnapshotMaxBytes))
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := buildLogger(*quiet, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	fsys, err := faultFS(logger)
	if err != nil {
		return err
	}
	netInj, err := faultNet(logger)
	if err != nil {
		return err
	}

	if *memory && *walDir != "" {
		return fmt.Errorf("-in-memory and -wal-dir are mutually exclusive")
	}
	if *checkpointEvery != 0 && *walDir == "" {
		return fmt.Errorf("-checkpoint-every requires -wal-dir")
	}
	var store *catalog.Store
	switch {
	case *memory:
		store = catalog.NewStore()
	case *walDir != "":
		opts := catalog.WALOptions{Dir: *walDir, CheckpointEvery: *checkpointEvery}
		store, err = catalog.OpenWALFS(*path, opts, fsys)
		if err != nil {
			return err
		}
		defer store.Close()
		if logger != nil {
			logger.Info("WAL-backed catalog enabled",
				"wal", store.WALPath(), "checkpointEvery", *checkpointEvery)
		}
	default:
		store, err = catalog.OpenFS(*path, fsys)
		if err != nil {
			return err
		}
	}
	if logger != nil {
		switch {
		case *memory:
			logger.Info("in-memory catalog (no persistence)")
		case store.Recovered():
			logger.Warn("catalog corrupt or missing; recovered previous generation",
				"path", *path, "entries", store.Len(), "recoveredFrom", catalog.PrevPath(*path))
		case store.Len() == 0:
			logger.Info("catalog absent or empty; will be created on first install", "path", *path)
		default:
			logger.Info("catalog loaded", "path", *path, "entries", store.Len())
		}
	}

	var node *cluster.Node
	if *clusterSeeds == "" {
		for name, set := range map[string]bool{
			"-cluster-max-idle-conns":      *clusterMaxIdleConns != 0,
			"-antientropy-delta-threshold": *deltaThreshold != 0,
			"-snapshot-max-bytes":          *snapshotMaxBytes != 0,
		} {
			if set {
				return fmt.Errorf("%s requires -cluster-seeds", name)
			}
		}
	} else {
		if *nodeID == "" || *nodeURL == "" {
			return fmt.Errorf("-cluster-seeds requires -node-id and -node-url")
		}
		if *deltaThreshold < 0 || *deltaThreshold > 1 {
			return fmt.Errorf("-antientropy-delta-threshold must be in [0, 1], got %g", *deltaThreshold)
		}
		if *snapshotMaxBytes < 0 {
			return fmt.Errorf("-snapshot-max-bytes must be positive, got %d", *snapshotMaxBytes)
		}
		ncfg := cluster.Config{
			SelfID:              *nodeID,
			SelfURL:             *nodeURL,
			Seeds:               splitSeeds(*clusterSeeds),
			Replicas:            *replicas,
			Heartbeat:           *heartbeat,
			Store:               store,
			Log:                 logger,
			MaxIdleConnsPerHost: *clusterMaxIdleConns,
			DeltaThreshold:      *deltaThreshold,
			SnapshotMaxBytes:    *snapshotMaxBytes,
		}
		if netInj != nil {
			// Gossip and anti-entropy cross the injector too; partitions
			// must be total, not replication-only. 5s matches the private
			// client the node builds when HTTPClient is nil.
			ncfg.HTTPClient = netInj.Client(5 * time.Second)
		}
		node, err = cluster.NewNode(ncfg)
		if err != nil {
			return err
		}
	}

	scfg := service.Config{
		Store:               store,
		CacheEntries:        *cache,
		RequestTimeout:      *timeout,
		MaxBatch:            *maxBatch,
		MaxInflight:         *maxInflight,
		BreakerFailures:     *breakerFailures,
		BreakerCooldown:     *breakerCooldown,
		Slog:                logger,
		TraceRing:           *traceRing,
		SlowTrace:           *slowTrace,
		Cluster:             node,
		IngestQueue:         *ingestQueue,
		DriftThreshold:      *driftThreshold,
		HandoffDir:          *handoffDir,
		HandoffAbandonAfter: *handoffAbandonAfter,
		ReplicateTimeout:    *replicateTimeout,
		WriteQuorum:         *writeQuorum,
	}
	if netInj != nil {
		scfg.Transport = netInj
	}
	srv, err := service.New(scfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if logger != nil && *ingestQueue >= 0 {
		logger.Info("trace ingestion enabled",
			"queue", *ingestQueue, "driftThreshold", *driftThreshold)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if node != nil {
		go node.Run(ctx)
		if logger != nil {
			logger.Info("cluster mode enabled", "nodeID", *nodeID, "nodeURL", *nodeURL,
				"replicas", *replicas, "seeds", *clusterSeeds)
			idle, thr, maxB := *clusterMaxIdleConns, *deltaThreshold, *snapshotMaxBytes
			if idle == 0 {
				idle = cluster.DefaultMaxIdleConnsPerHost
			}
			if thr == 0 {
				thr = cluster.DefaultDeltaThreshold
			}
			if maxB == 0 {
				maxB = cluster.DefaultSnapshotMaxBytes
			}
			logger.Info("cluster hot path tuned", "maxIdleConnsPerHost", idle,
				"deltaThreshold", thr, "snapshotMaxBytes", maxB)
		}
	}

	if *pprof != "" {
		if err := servePprof(ctx, *pprof, logger); err != nil {
			return err
		}
	}

	start := time.Now()
	if netInj != nil {
		// Accept-side faults need the listener wrapped too.
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		err = srv.Serve(ctx, faultnet.WrapListener(ln, netInj))
		if err != nil {
			return err
		}
	} else if err := srv.Run(ctx, *addr); err != nil {
		return err
	}
	if logger != nil {
		logger.Info("stopped", "uptime", time.Since(start).Round(time.Millisecond).String())
	}
	return nil
}

// splitSeeds parses the -cluster-seeds list, trimming blanks.
func splitSeeds(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildLogger assembles the process logger from the -quiet/-log-level/
// -log-format flags. Quiet returns nil: every call site nil-guards, and the
// service layer substitutes a discard handler.
func buildLogger(quiet bool, level, format string) (*slog.Logger, error) {
	if quiet {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format: unknown format %q (want text or json)", format)
	}
}

// servePprof exposes the net/http/pprof endpoints on their own listener —
// deliberately separate from the service address so profiling stays
// reachable when admission control is shedding, and so operators can keep it
// bound to localhost while the API faces the network. Off by default: the
// profiler is opt-in via -pprof-addr.
func servePprof(ctx context.Context, addr string, logger *slog.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof-addr: %w", err)
	}
	// An explicit mux, not http.DefaultServeMux: nothing else in the process
	// registers handlers implicitly.
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && logger != nil {
			logger.Error("pprof server", "error", err)
		}
	}()
	if logger != nil {
		logger.Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()))
	}
	return nil
}

// faultFS builds the catalog's filesystem. With EPFIS_FAULTS unset it is the
// real OS; with a rule spec set (see faultfs.ParseRules for the grammar) it
// is a deterministic fault injector for chaos drills, seeded from
// EPFIS_FAULT_SEED so a failing drill can be replayed exactly.
func faultFS(logger *slog.Logger) (faultfs.FS, error) {
	spec := os.Getenv("EPFIS_FAULTS")
	if spec == "" {
		return faultfs.OS(), nil
	}
	rules, err := faultfs.ParseRules(spec)
	if err != nil {
		return nil, fmt.Errorf("EPFIS_FAULTS: %w", err)
	}
	var seed int64 = 1
	if raw := os.Getenv("EPFIS_FAULT_SEED"); raw != "" {
		if seed, err = strconv.ParseInt(raw, 10, 64); err != nil {
			return nil, fmt.Errorf("EPFIS_FAULT_SEED: %w", err)
		}
	}
	inj := faultfs.NewInjector(faultfs.OS(), seed)
	for _, r := range rules {
		inj.Add(r)
	}
	if logger != nil {
		logger.Warn("FAULT INJECTION ACTIVE — not for production",
			"rules", len(rules), "seed", seed)
	}
	return inj, nil
}

// faultNet builds the deterministic network fault injector from
// EPFIS_NET_FAULTS / EPFIS_NET_FAULT_SEED; unset returns nil (real network).
// The injector sits on every outbound cluster hop and, via WrapListener, on
// inbound accepts.
func faultNet(logger *slog.Logger) (*faultnet.Injector, error) {
	spec := os.Getenv("EPFIS_NET_FAULTS")
	if spec == "" {
		return nil, nil
	}
	rules, err := faultnet.ParseRules(spec)
	if err != nil {
		return nil, fmt.Errorf("EPFIS_NET_FAULTS: %w", err)
	}
	var seed int64 = 1
	if raw := os.Getenv("EPFIS_NET_FAULT_SEED"); raw != "" {
		if seed, err = strconv.ParseInt(raw, 10, 64); err != nil {
			return nil, fmt.Errorf("EPFIS_NET_FAULT_SEED: %w", err)
		}
	}
	inj := faultnet.NewInjector(nil, seed)
	for _, r := range rules {
		inj.Add(r)
	}
	if logger != nil {
		logger.Warn("NETWORK FAULT INJECTION ACTIVE — not for production",
			"rules", len(rules), "seed", seed)
	}
	return inj, nil
}
