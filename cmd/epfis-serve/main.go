// Command epfis-serve runs the estimation service: the statistics catalog
// plus Subprogram Est-IO behind an HTTP JSON API, so query optimizers can
// cost candidate index-scan plans over the network at high QPS.
//
//	epfis-serve -addr :8080 -catalog catalog.json
//
// The catalog file is the same JSON format `epfis gen` writes. A missing
// file starts the service empty; statistics can then be installed with
// PUT /v1/indexes/{table}/{column} and are persisted back to the file with
// the atomic-rename pattern. POST /v1/reload picks up a catalog refreshed
// out-of-process (an LRU-Fit rerun) without restarting.
//
// The process shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests. Overload and persistence-failure behaviour is tunable with
// -max-inflight and -breaker-* (see the README's "Resilience & operations"
// section). -pprof-addr serves net/http/pprof on a separate listener for
// live profiling (off by default; see the README's "Performance" section).
// The EPFIS_FAULTS / EPFIS_FAULT_SEED environment variables
// arm deterministic filesystem fault injection for chaos drills:
//
//	EPFIS_FAULTS='sync:catalog:3:error' epfis-serve -catalog catalog.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/faultfs"
	"epfis/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "epfis-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("epfis-serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		path     = fs.String("catalog", "catalog.json", "statistics catalog file (created on first install if missing)")
		memory   = fs.Bool("in-memory", false, "run without a catalog file (no persistence, no reload)")
		cache    = fs.Int("cache", service.DefaultCacheEntries, "Est-IO memo cache entries (negative disables)")
		timeout  = fs.Duration("timeout", service.DefaultRequestTimeout, "per-request timeout (negative disables)")
		maxBatch = fs.Int("max-batch", service.DefaultMaxBatch, "maximum inputs per batch request")
		quiet    = fs.Bool("quiet", false, "suppress lifecycle logging")
		pprof    = fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

		maxInflight = fs.Int("max-inflight", service.DefaultMaxInflight,
			"concurrent requests admitted per route before shedding with 429 (negative disables)")
		breakerFailures = fs.Int("breaker-failures", 0,
			"consecutive persistence failures that open the circuit breaker (0 = default, negative disables)")
		breakerCooldown = fs.Duration("breaker-cooldown", 0,
			"how long the opened breaker rejects mutations before probing (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *quiet {
		logger = nil
	}

	fsys, err := faultFS(logger)
	if err != nil {
		return err
	}

	var store *catalog.Store
	if *memory {
		store = catalog.NewStore()
	} else {
		store, err = catalog.OpenFS(*path, fsys)
		if err != nil {
			return err
		}
	}
	if logger != nil {
		switch {
		case *memory:
			logger.Printf("in-memory catalog (no persistence)")
		case store.Recovered():
			logger.Printf("catalog %s was corrupt or missing; recovered %d entries from previous generation %s",
				*path, store.Len(), catalog.PrevPath(*path))
		case store.Len() == 0:
			logger.Printf("catalog %s absent or empty; will be created on first install", *path)
		default:
			logger.Printf("loaded %d catalog entries from %s", store.Len(), *path)
		}
	}

	srv, err := service.New(service.Config{
		Store:           store,
		CacheEntries:    *cache,
		RequestTimeout:  *timeout,
		MaxBatch:        *maxBatch,
		MaxInflight:     *maxInflight,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		Logger:          logger,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprof != "" {
		if err := servePprof(ctx, *pprof, logger); err != nil {
			return err
		}
	}

	start := time.Now()
	if err := srv.Run(ctx, *addr); err != nil {
		return err
	}
	if logger != nil {
		logger.Printf("stopped after %s", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// servePprof exposes the net/http/pprof endpoints on their own listener —
// deliberately separate from the service address so profiling stays
// reachable when admission control is shedding, and so operators can keep it
// bound to localhost while the API faces the network. Off by default: the
// profiler is opt-in via -pprof-addr.
func servePprof(ctx context.Context, addr string, logger *log.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof-addr: %w", err)
	}
	// An explicit mux, not http.DefaultServeMux: nothing else in the process
	// registers handlers implicitly.
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && logger != nil {
			logger.Printf("pprof server: %v", err)
		}
	}()
	if logger != nil {
		logger.Printf("pprof listening on http://%s/debug/pprof/", ln.Addr())
	}
	return nil
}

// faultFS builds the catalog's filesystem. With EPFIS_FAULTS unset it is the
// real OS; with a rule spec set (see faultfs.ParseRules for the grammar) it
// is a deterministic fault injector for chaos drills, seeded from
// EPFIS_FAULT_SEED so a failing drill can be replayed exactly.
func faultFS(logger *log.Logger) (faultfs.FS, error) {
	spec := os.Getenv("EPFIS_FAULTS")
	if spec == "" {
		return faultfs.OS(), nil
	}
	rules, err := faultfs.ParseRules(spec)
	if err != nil {
		return nil, fmt.Errorf("EPFIS_FAULTS: %w", err)
	}
	var seed int64 = 1
	if raw := os.Getenv("EPFIS_FAULT_SEED"); raw != "" {
		if seed, err = strconv.ParseInt(raw, 10, 64); err != nil {
			return nil, fmt.Errorf("EPFIS_FAULT_SEED: %w", err)
		}
	}
	inj := faultfs.NewInjector(faultfs.OS(), seed)
	for _, r := range rules {
		inj.Add(r)
	}
	if logger != nil {
		logger.Printf("FAULT INJECTION ACTIVE: %d rule(s) from EPFIS_FAULTS (seed %d) — not for production", len(rules), seed)
	}
	return inj, nil
}
