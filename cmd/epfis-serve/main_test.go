package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsCorruptCatalog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-catalog", path, "-quiet"})
	if err == nil {
		t.Fatal("run accepted a corrupt catalog file")
	}
	if !strings.Contains(err.Error(), "catalog") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsBadAddress(t *testing.T) {
	err := run([]string{"-in-memory", "-quiet", "-addr", "256.256.256.256:99999"})
	if err == nil {
		t.Fatal("run accepted an unusable listen address")
	}
}
