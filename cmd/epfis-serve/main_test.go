package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsCorruptCatalog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-catalog", path, "-quiet"})
	if err == nil {
		t.Fatal("run accepted a corrupt catalog file")
	}
	if !strings.Contains(err.Error(), "catalog") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsBadAddress(t *testing.T) {
	err := run([]string{"-in-memory", "-quiet", "-addr", "256.256.256.256:99999"})
	if err == nil {
		t.Fatal("run accepted an unusable listen address")
	}
}

func TestRunRejectsBadFaultSpec(t *testing.T) {
	t.Setenv("EPFIS_FAULTS", "write:catalog:not-a-number:error")
	err := run([]string{"-in-memory", "-quiet"})
	if err == nil || !strings.Contains(err.Error(), "EPFIS_FAULTS") {
		t.Fatalf("err = %v, want EPFIS_FAULTS parse failure", err)
	}
}

func TestRunRejectsBadFaultSeed(t *testing.T) {
	t.Setenv("EPFIS_FAULTS", "write:catalog:1:error")
	t.Setenv("EPFIS_FAULT_SEED", "not-a-number")
	err := run([]string{"-in-memory", "-quiet"})
	if err == nil || !strings.Contains(err.Error(), "EPFIS_FAULT_SEED") {
		t.Fatalf("err = %v, want EPFIS_FAULT_SEED parse failure", err)
	}
}

func TestFaultFSBuildsInjector(t *testing.T) {
	t.Setenv("EPFIS_FAULTS", "sync:catalog:2:error,write:*:1:slow=5ms")
	t.Setenv("EPFIS_FAULT_SEED", "7")
	fsys, err := faultFS(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fsys.(interface{ Injected() int }); !ok {
		t.Fatalf("faultFS returned %T, want an injector", fsys)
	}
}
