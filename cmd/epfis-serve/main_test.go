package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsCorruptCatalog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-catalog", path, "-quiet"})
	if err == nil {
		t.Fatal("run accepted a corrupt catalog file")
	}
	if !strings.Contains(err.Error(), "catalog") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsBadAddress(t *testing.T) {
	err := run([]string{"-in-memory", "-quiet", "-addr", "256.256.256.256:99999"})
	if err == nil {
		t.Fatal("run accepted an unusable listen address")
	}
}

func TestRunRejectsBadFaultSpec(t *testing.T) {
	t.Setenv("EPFIS_FAULTS", "write:catalog:not-a-number:error")
	err := run([]string{"-in-memory", "-quiet"})
	if err == nil || !strings.Contains(err.Error(), "EPFIS_FAULTS") {
		t.Fatalf("err = %v, want EPFIS_FAULTS parse failure", err)
	}
}

func TestRunRejectsBadFaultSeed(t *testing.T) {
	t.Setenv("EPFIS_FAULTS", "write:catalog:1:error")
	t.Setenv("EPFIS_FAULT_SEED", "not-a-number")
	err := run([]string{"-in-memory", "-quiet"})
	if err == nil || !strings.Contains(err.Error(), "EPFIS_FAULT_SEED") {
		t.Fatalf("err = %v, want EPFIS_FAULT_SEED parse failure", err)
	}
}

func TestRunRejectsBadLogLevel(t *testing.T) {
	err := run([]string{"-in-memory", "-log-level", "chatty"})
	if err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("err = %v, want -log-level parse failure", err)
	}
}

func TestRunRejectsBadLogFormat(t *testing.T) {
	err := run([]string{"-in-memory", "-log-format", "logfmt2"})
	if err == nil || !strings.Contains(err.Error(), "-log-format") {
		t.Fatalf("err = %v, want -log-format rejection", err)
	}
}

func TestBuildLogger(t *testing.T) {
	if l, err := buildLogger(true, "info", "text"); err != nil || l != nil {
		t.Fatalf("quiet: logger = %v, err = %v, want nil/nil", l, err)
	}
	for _, format := range []string{"text", "json"} {
		for _, level := range []string{"debug", "info", "warn", "ERROR"} {
			if l, err := buildLogger(false, level, format); err != nil || l == nil {
				t.Fatalf("level %q format %q: logger = %v, err = %v", level, format, l, err)
			}
		}
	}
}

func TestFaultFSBuildsInjector(t *testing.T) {
	t.Setenv("EPFIS_FAULTS", "sync:catalog:2:error,write:*:1:slow=5ms")
	t.Setenv("EPFIS_FAULT_SEED", "7")
	fsys, err := faultFS(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fsys.(interface{ Injected() int }); !ok {
		t.Fatalf("faultFS returned %T, want an injector", fsys)
	}
}
