// Throughput benchmarks for the estimation service. Run with
//
//	go test -bench=ServiceEstimate -cpu 1,4 ./cmd/epfis-serve
//
// Both sub-benchmarks report ns/estimate: "single" pays one HTTP round trip
// per estimate, "batch64" amortizes one round trip and one JSON document
// across 64 estimates — the shape of an optimizer costing many candidate
// plans per query. The per-estimate cost of batch64 should be well over 5x
// cheaper than single.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"epfis/internal/catalog"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/service"
)

// benchServer builds a service over one fitted synthetic index.
func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	cfg := datagen.Config{Name: "orders", Column: "key", N: 100_000, I: 1_000, R: 40, K: 0.2, Seed: 1}
	ds, err := datagen.GenerateDataset(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st, err := core.LRUFit(ds.Trace(), core.Meta{Table: "orders", Column: "key", T: ds.T, N: cfg.N, I: cfg.I}, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	store := catalog.NewStore()
	if _, err := store.Put(st); err != nil {
		b.Fatal(err)
	}
	srv, err := service.New(service.Config{Store: store})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)
	return ts
}

// benchClient allows enough idle connections that parallel benchmark
// goroutines reuse keep-alive connections instead of redialing.
func benchClient() *http.Client {
	return &http.Client{Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}}
}

func drain(resp *http.Response) error {
	_, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return err
}

func BenchmarkServiceEstimate(b *testing.B) {
	const fanout = 64 // candidate plans costed per "query"

	// A rotation of plan shapes, so the memo cache sees realistic re-costing
	// rather than one key.
	shapes := make([]struct {
		B     int64
		Sigma float64
	}, 32)
	for i := range shapes {
		shapes[i].B = int64(12 + 77*i)
		shapes[i].Sigma = float64(1+i) / float64(len(shapes)+1)
	}

	b.Run("single", func(b *testing.B) {
		ts := benchServer(b)
		client := benchClient()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				sh := shapes[i%len(shapes)]
				i++
				url := fmt.Sprintf("%s/v1/estimate?table=orders&column=key&b=%d&sigma=%g", ts.URL, sh.B, sh.Sigma)
				resp, err := client.Get(url)
				if err != nil {
					b.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					drain(resp)
					return
				}
				if err := drain(resp); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/estimate")
	})

	b.Run("batch64", func(b *testing.B) {
		ts := benchServer(b)
		client := benchClient()

		// Pre-encode a few distinct 64-plan batch payloads.
		type planInput struct {
			Table  string  `json:"table"`
			Column string  `json:"column"`
			B      int64   `json:"b"`
			Sigma  float64 `json:"sigma"`
		}
		payloads := make([][]byte, 4)
		for p := range payloads {
			var breq struct {
				Requests []planInput `json:"requests"`
			}
			for i := 0; i < fanout; i++ {
				sh := shapes[(p*fanout+i)%len(shapes)]
				breq.Requests = append(breq.Requests, planInput{"orders", "key", sh.B, sh.Sigma})
			}
			raw, err := json.Marshal(breq)
			if err != nil {
				b.Fatal(err)
			}
			payloads[p] = raw
		}

		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				raw := payloads[i%len(payloads)]
				i++
				resp, err := client.Post(ts.URL+"/v1/estimate/batch", "application/json", bytes.NewReader(raw))
				if err != nil {
					b.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					drain(resp)
					return
				}
				if err := drain(resp); err != nil {
					b.Error(err)
					return
				}
			}
		})
		// One iteration costs 64 estimates; report the amortized unit cost.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*fanout), "ns/estimate")
	})
}
