// Benchmarks for the estimation service, in two families:
//
// BenchmarkServiceEstimate is the serving path — the handler stack invoked
// directly (mux, admission control, metrics, parse, estimate, encode) with a
// reusable response writer and no sockets. This is the path the
// zero-allocation work targets, and the one the CI alloc gate pins: run with
//
//	go test -bench=ServiceEstimate -benchmem ./cmd/epfis-serve
//
// and read allocs/op directly. Request timeouts are disabled here because
// http.TimeoutHandler spawns a goroutine and buffer per request — socket-era
// plumbing that would drown the measurement.
//
// BenchmarkServiceHTTP is the old end-to-end family (real sockets, real
// client), kept for continuity: it measures what a remote optimizer
// experiences, where kernel round trips and net/http client internals
// dominate.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"epfis/internal/catalog"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/service"
)

// benchShapes is a rotation of plan shapes, so the memo cache sees realistic
// re-costing rather than one key.
func benchShapes() []struct {
	B     int64
	Sigma float64
} {
	shapes := make([]struct {
		B     int64
		Sigma float64
	}, 32)
	for i := range shapes {
		shapes[i].B = int64(12 + 77*i)
		shapes[i].Sigma = float64(1+i) / float64(len(shapes)+1)
	}
	return shapes
}

// benchStore builds a catalog with one fitted synthetic index.
func benchStore(b *testing.B) *catalog.Store {
	b.Helper()
	cfg := datagen.Config{Name: "orders", Column: "key", N: 100_000, I: 1_000, R: 40, K: 0.2, Seed: 1}
	ds, err := datagen.GenerateDataset(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st, err := core.LRUFit(ds.Trace(), core.Meta{Table: "orders", Column: "key", T: ds.T, N: cfg.N, I: cfg.I}, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	store := catalog.NewStore()
	if _, err := store.Put(st); err != nil {
		b.Fatal(err)
	}
	return store
}

// benchHandler builds the serving-path server: full handler stack, no
// request-timeout wrapper, optional memo cache.
func benchHandler(b *testing.B, cacheEntries int) *service.Server {
	b.Helper()
	srv, err := service.New(service.Config{Store: benchStore(b), RequestTimeout: -1, CacheEntries: cacheEntries})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// discardWriter is a reusable http.ResponseWriter for handler-level
// benchmarks.
type discardWriter struct {
	h      http.Header
	status int
}

func newDiscardWriter() *discardWriter { return &discardWriter{h: make(http.Header, 4)} }

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) WriteHeader(code int)        { w.status = code }
func (w *discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func (w *discardWriter) reset() {
	w.status = 0
	for k := range w.h {
		delete(w.h, k)
	}
}

// singleRequests pre-builds one GET request per plan shape.
func singleRequests(srvShapes []struct {
	B     int64
	Sigma float64
}) []*http.Request {
	reqs := make([]*http.Request, len(srvShapes))
	for i, sh := range srvShapes {
		reqs[i] = httptest.NewRequest(http.MethodGet,
			fmt.Sprintf("/v1/estimate?table=orders&column=key&b=%d&sigma=%g", sh.B, sh.Sigma), nil)
	}
	return reqs
}

// rewindReader is a rewindable no-op-close request body.
type rewindReader struct{ r *bytes.Reader }

func (b *rewindReader) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *rewindReader) Close() error               { return nil }

const benchFanout = 64 // candidate plans costed per "query"

func batchPayloads(b *testing.B, shapes []struct {
	B     int64
	Sigma float64
}) [][]byte {
	b.Helper()
	payloads := make([][]byte, 4)
	for p := range payloads {
		var breq service.BatchRequest
		for i := 0; i < benchFanout; i++ {
			sh := shapes[(p*benchFanout+i)%len(shapes)]
			breq.Requests = append(breq.Requests, service.EstimateRequest{
				Table: "orders", Column: "key", B: sh.B, Sigma: sh.Sigma,
			})
		}
		raw, err := json.Marshal(breq)
		if err != nil {
			b.Fatal(err)
		}
		payloads[p] = raw
	}
	return payloads
}

// serveSingle drives one pre-built request through the handler stack.
func serveSingle(b *testing.B, srv *service.Server, w *discardWriter, req *http.Request) {
	w.reset()
	srv.ServeHTTP(w, req)
	if w.status != http.StatusOK {
		b.Fatalf("status %d", w.status)
	}
}

func BenchmarkServiceEstimate(b *testing.B) {
	shapes := benchShapes()

	b.Run("single", func(b *testing.B) {
		srv := benchHandler(b, 0)
		reqs := singleRequests(shapes)
		w := newDiscardWriter()
		serveSingle(b, srv, w, reqs[0]) // warm pools and memo slot 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveSingle(b, srv, w, reqs[i%len(reqs)])
		}
	})

	b.Run("cache_hit", func(b *testing.B) {
		srv := benchHandler(b, 0)
		reqs := singleRequests(shapes[:1])
		w := newDiscardWriter()
		serveSingle(b, srv, w, reqs[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveSingle(b, srv, w, reqs[0])
		}
	})

	b.Run("cache_miss", func(b *testing.B) {
		// Memoization disabled: every request runs the compiled estimator.
		srv := benchHandler(b, -1)
		reqs := singleRequests(shapes)
		w := newDiscardWriter()
		serveSingle(b, srv, w, reqs[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveSingle(b, srv, w, reqs[i%len(reqs)])
		}
	})

	b.Run("batch64", func(b *testing.B) {
		srv := benchHandler(b, 0)
		payloads := batchPayloads(b, shapes)
		bodies := make([]*rewindReader, len(payloads))
		reqs := make([]*http.Request, len(payloads))
		for i, raw := range payloads {
			bodies[i] = &rewindReader{r: bytes.NewReader(raw)}
			reqs[i] = httptest.NewRequest(http.MethodPost, "/v1/estimate/batch", bodies[i])
		}
		w := newDiscardWriter()
		serve := func(i int) {
			w.reset()
			bodies[i].r.Seek(0, io.SeekStart)
			reqs[i].Body = bodies[i]
			srv.ServeHTTP(w, reqs[i])
			if w.status != http.StatusOK {
				b.Fatalf("status %d", w.status)
			}
		}
		serve(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serve(i % len(reqs))
		}
		// One iteration costs 64 estimates; report the amortized unit cost.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchFanout), "ns/estimate")
	})

	b.Run("parallel", func(b *testing.B) {
		srv := benchHandler(b, 0)
		reqs := singleRequests(shapes)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			w := newDiscardWriter()
			i := 0
			for pb.Next() {
				// Each goroutine needs its own request: handlers may mutate
				// per-request state on the shared *http.Request.
				req := reqs[i%len(reqs)].Clone(reqs[0].Context())
				i++
				serveSingle(b, srv, w, req)
			}
		})
	})
}

// --- end-to-end family (sockets + net/http client), the pre-existing view --

// benchServer builds a service over one fitted synthetic index behind a real
// listener.
func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	srv, err := service.New(service.Config{Store: benchStore(b)})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)
	return ts
}

// benchClient allows enough idle connections that parallel benchmark
// goroutines reuse keep-alive connections instead of redialing.
func benchClient() *http.Client {
	return &http.Client{Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}}
}

func drain(resp *http.Response) error {
	_, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return err
}

func BenchmarkServiceHTTP(b *testing.B) {
	shapes := benchShapes()

	b.Run("single", func(b *testing.B) {
		ts := benchServer(b)
		client := benchClient()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				sh := shapes[i%len(shapes)]
				i++
				url := fmt.Sprintf("%s/v1/estimate?table=orders&column=key&b=%d&sigma=%g", ts.URL, sh.B, sh.Sigma)
				resp, err := client.Get(url)
				if err != nil {
					b.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					drain(resp)
					return
				}
				if err := drain(resp); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/estimate")
	})

	b.Run("batch64", func(b *testing.B) {
		ts := benchServer(b)
		client := benchClient()
		payloads := batchPayloads(b, shapes)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				raw := payloads[i%len(payloads)]
				i++
				resp, err := client.Post(ts.URL+"/v1/estimate/batch", "application/json", bytes.NewReader(raw))
				if err != nil {
					b.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					drain(resp)
					return
				}
				if err := drain(resp); err != nil {
					b.Error(err)
					return
				}
			}
		})
		// One iteration costs 64 estimates; report the amortized unit cost.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchFanout), "ns/estimate")
	})
}
