// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, as indexed in DESIGN.md §4. Each bench regenerates its
// experiment end to end (dataset generation, statistics passes, 200-scan
// error sweep) and reports the per-algorithm maximum |error| as custom
// metrics, so `go test -bench=.` prints the same headline numbers the paper
// discusses. The experiment package shares datasets and suites through a
// build cache; these benches clear it every iteration so each op really is
// an end-to-end rebuild (cmd/epfis-bench measures the cached engine path).
//
// Benches default to a shape-preserving scaled run (Scale 25, 60 scans; see
// DESIGN.md §6); set -epfis.full to run at paper size.
package epfis_test

import (
	"flag"
	"fmt"
	"math"
	"testing"

	"epfis/internal/baselines"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/experiment"
	"epfis/internal/gwl"
	"epfis/internal/lrusim"
	"epfis/internal/storage"
)

var fullSize = flag.Bool("epfis.full", false, "run benchmarks at paper size (N=10^6 synthetic, full GWL tables)")

func benchConfig() experiment.Config {
	if *fullSize {
		return experiment.Config{Scale: 1, Scans: 200, Seed: 1}
	}
	return experiment.Config{Scale: 25, Scans: 60, Seed: 1}
}

// reportSeries attaches each algorithm's maximum |error| to the benchmark
// output.
func reportSeries(b *testing.B, fig *experiment.FigureResult) {
	b.Helper()
	for _, s := range fig.Series {
		_, worst := s.MaxAbsY()
		b.ReportMetric(math.Abs(worst), "maxerr%/"+s.Name)
	}
}

func benchGWLFigure(b *testing.B, figure int) {
	cfg := benchConfig()
	if !*fullSize {
		cfg.Scale = 8 // GWL tables are smaller than the synthetic datasets
	}
	var fig *experiment.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		fig, err = experiment.RunGWLFigure(figure, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

func benchSyntheticFigure(b *testing.B, figure int) {
	spec, err := experiment.SyntheticSpecFor(figure)
	if err != nil {
		b.Fatal(err)
	}
	var fig *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		fig, err = experiment.RunSyntheticFigure(spec, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

// BenchmarkTable2GWLTables regenerates Table 2 (GWL table shapes).
func BenchmarkTable2GWLTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunTable2(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3GWLColumns regenerates Table 3 (column cardinalities and
// clustering factors), reporting the worst C calibration gap.
func BenchmarkTable3GWLColumns(b *testing.B) {
	cfg := benchConfig()
	if !*fullSize {
		cfg.Scale = 8
	}
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, spec := range gwl.Columns {
			recon, err := gwl.Reconstruct(spec, gwl.Options{Seed: cfg.Seed, Scale: cfg.Scale})
			if err != nil {
				b.Fatal(err)
			}
			if gap := math.Abs(recon.MeasuredC-spec.TargetC) * 100; gap > worst {
				worst = gap
			}
		}
	}
	b.ReportMetric(worst, "worstCgap%")
}

// BenchmarkFigure1FPFCurves regenerates the Figure 1 FPF curves.
func BenchmarkFigure1FPFCurves(b *testing.B) {
	cfg := benchConfig()
	if !*fullSize {
		cfg.Scale = 8
	}
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		if _, err := experiment.RunFigure1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 2-9: GWL error sweeps.
func BenchmarkFigure2(b *testing.B) { benchGWLFigure(b, 2) }
func BenchmarkFigure3(b *testing.B) { benchGWLFigure(b, 3) }
func BenchmarkFigure4(b *testing.B) { benchGWLFigure(b, 4) }
func BenchmarkFigure5(b *testing.B) { benchGWLFigure(b, 5) }
func BenchmarkFigure6(b *testing.B) { benchGWLFigure(b, 6) }
func BenchmarkFigure7(b *testing.B) { benchGWLFigure(b, 7) }
func BenchmarkFigure8(b *testing.B) { benchGWLFigure(b, 8) }
func BenchmarkFigure9(b *testing.B) { benchGWLFigure(b, 9) }

// Figures 10-21: synthetic error sweeps (theta x K grid).
func BenchmarkFigure10(b *testing.B) { benchSyntheticFigure(b, 10) }
func BenchmarkFigure11(b *testing.B) { benchSyntheticFigure(b, 11) }
func BenchmarkFigure12(b *testing.B) { benchSyntheticFigure(b, 12) }
func BenchmarkFigure13(b *testing.B) { benchSyntheticFigure(b, 13) }
func BenchmarkFigure14(b *testing.B) { benchSyntheticFigure(b, 14) }
func BenchmarkFigure15(b *testing.B) { benchSyntheticFigure(b, 15) }
func BenchmarkFigure16(b *testing.B) { benchSyntheticFigure(b, 16) }
func BenchmarkFigure17(b *testing.B) { benchSyntheticFigure(b, 17) }
func BenchmarkFigure18(b *testing.B) { benchSyntheticFigure(b, 18) }
func BenchmarkFigure19(b *testing.B) { benchSyntheticFigure(b, 19) }
func BenchmarkFigure20(b *testing.B) { benchSyntheticFigure(b, 20) }
func BenchmarkFigure21(b *testing.B) { benchSyntheticFigure(b, 21) }

// BenchmarkMaxErrorSummary reproduces the §5.2 per-algorithm maximum-error
// summary across all twelve synthetic figures.
func BenchmarkMaxErrorSummary(b *testing.B) {
	var sum *experiment.TableResult
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		var figs []*experiment.FigureResult
		for _, spec := range experiment.SyntheticFigures {
			fig, err := experiment.RunSyntheticFigure(spec, benchConfig())
			if err != nil {
				b.Fatal(err)
			}
			figs = append(figs, fig)
		}
		sum = experiment.MaxErrorSummary("summary-synthetic", "bench", figs)
	}
	if sum != nil {
		for _, row := range sum.Rows {
			var v float64
			fmt.Sscanf(row[1], "%f", &v)
			b.ReportMetric(v, "maxerr%/"+row[0])
		}
	}
}

// BenchmarkSegmentCountAblation reproduces the §4.1 segment-count study.
func BenchmarkSegmentCountAblation(b *testing.B) {
	cfg := benchConfig()
	cfg.Scans = 40
	var fig *experiment.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		fig, err = experiment.RunSegmentCountAblation(cfg, []int{1, 2, 4, 6, 8, 12})
		if err != nil {
			b.Fatal(err)
		}
	}
	s := fig.Series[0]
	for i := range s.X {
		b.ReportMetric(s.Y[i], fmt.Sprintf("meanerr%%/seg%d", int(s.X[i])))
	}
}

// BenchmarkSpacingAblation compares arithmetic vs geometric modeling grids.
func BenchmarkSpacingAblation(b *testing.B) {
	cfg := benchConfig()
	cfg.Scans = 40
	var fig *experiment.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		fig, err = experiment.RunSpacingAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		b.ReportMetric(s.Y[0], "meanerr%/"+s.Name[:4])
	}
}

// BenchmarkCorrectionAblation measures the Equation-1 correction's impact.
func BenchmarkCorrectionAblation(b *testing.B) {
	cfg := benchConfig()
	cfg.Scans = 40
	var fig *experiment.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		fig, err = experiment.RunCorrectionAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, s := range fig.Series {
		m := 0.0
		for _, y := range s.Y {
			m += math.Abs(y)
		}
		b.ReportMetric(m/float64(len(s.Y)), fmt.Sprintf("meanerr%%/v%d", i))
	}
}

// BenchmarkSortedRIDStudy measures the §6 sorted-RID extension experiment.
func BenchmarkSortedRIDStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		if _, err := experiment.RunSortedRIDStudy(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyStudy measures the LRU-vs-clock sensitivity experiment.
func BenchmarkPolicyStudy(b *testing.B) {
	cfg := benchConfig()
	cfg.Scans = 30
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		if _, err := experiment.RunPolicyStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentionStudy measures the shared-pool contention experiment.
func BenchmarkContentionStudy(b *testing.B) {
	cfg := benchConfig()
	cfg.Scans = 40
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		if _, err := experiment.RunContentionStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLRUFitPass measures the cost of the one-time statistics pass
// itself (the Mattson stack simulation + curve fit) on a 1M-reference trace
// — the paper's claim that LRU-Fit piggybacks on statistics collection.
func BenchmarkLRUFitPass(b *testing.B) {
	const pages = 25_000
	trace := make(lrusim.Trace, 1_000_000)
	state := uint64(12345)
	for i := range trace {
		state = state*6364136223846793005 + 1442695040888963407
		trace[i] = storage.PageID((state >> 33) % pages)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lrusim.Analyze(trace)
	}
	b.SetBytes(int64(len(trace) * 4))
}

// BenchmarkEstIOCall measures the per-plan estimation cost the optimizer
// pays — the paper's claim that Est-IO "only involves computing a simple
// formula".
func BenchmarkEstIOCall(b *testing.B) {
	ds, err := datagen.GenerateDataset(datagen.Config{
		Name: "bench", N: 40_000, I: 400, R: 40, K: 0.2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	suite, err := experiment.NewSuite(ds, experiment.MetaFor("bench", ds), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	est := suite.Estimators[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := baselines.Params{
			T: suite.Meta.T, N: suite.Meta.N, I: suite.Meta.I,
			B:     int64(1 + i%int(ds.T)),
			Sigma: 0.001 + float64(i%1000)/1001,
			S:     1,
		}
		if _, err := est.Estimate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSargableStudy measures the urn-model validation experiment.
func BenchmarkSargableStudy(b *testing.B) {
	cfg := benchConfig()
	cfg.Scans = 60
	for i := 0; i < b.N; i++ {
		experiment.ClearSharedCache()
		if _, err := experiment.RunSargableStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
