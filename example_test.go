package epfis_test

import (
	"fmt"

	"epfis"
)

// ExampleCollectStats shows the minimal LRU-Fit -> Est-IO round trip on a
// perfectly clustered index: page fetches equal sigma * T at any buffer size.
func ExampleCollectStats() {
	// 10,000 records, 100 per key, 20 per page, laid out in key order.
	ds, err := epfis.GenerateDataset(epfis.SyntheticConfig{
		Name: "orders", N: 10_000, I: 100, R: 20,
		K: 0, Noise: -1, // perfectly clustered
		Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	st, err := epfis.CollectStats(ds.Trace(), epfis.Meta{
		Table: "orders", Column: "key", T: ds.T, N: 10_000, I: 100,
	}, epfis.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("clustering factor C = %.2f\n", st.C)
	for _, b := range []int64{25, 250} {
		f, err := epfis.Estimate(st, b, 0.5, 1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("B=%-4d sigma=0.5: %.0f fetches\n", b, f)
	}
	// Output:
	// clustering factor C = 1.00
	// B=25   sigma=0.5: 250 fetches
	// B=250  sigma=0.5: 250 fetches
}

// ExampleAnalyzeTrace demonstrates the one-pass Mattson stack analysis: one
// scan of the trace answers F(B) for every buffer size.
func ExampleAnalyzeTrace() {
	// Two pages referenced alternately: thrashes with 1 frame, caches with 2.
	trace := epfis.Trace{0, 1, 0, 1, 0, 1}
	curve := epfis.AnalyzeTrace(trace)
	fmt.Println("F(1) =", curve.Fetches(1))
	fmt.Println("F(2) =", curve.Fetches(2))
	fmt.Println("pages accessed =", curve.Accesses())
	// Output:
	// F(1) = 6
	// F(2) = 2
	// pages accessed = 2
}

// ExampleEstimateDetailed exposes Est-IO's intermediate terms — the fitted
// PF_B, the Equation-1 correction, and the sargable urn factor.
func ExampleEstimateDetailed() {
	ds, err := epfis.GenerateDataset(epfis.SyntheticConfig{
		Name: "t", N: 40_000, I: 400, R: 40, K: 1, Seed: 7, // random placement
	})
	if err != nil {
		panic(err)
	}
	st, err := epfis.CollectStats(ds.Trace(), epfis.Meta{
		Table: "t", Column: "key", T: ds.T, N: 40_000, I: 400,
	}, epfis.Options{})
	if err != nil {
		panic(err)
	}
	det, err := epfis.EstimateDetailed(st, epfis.Input{B: st.BMax, Sigma: 0.01, S: 1}, epfis.Options{})
	if err != nil {
		panic(err)
	}
	// With a table-sized buffer and a tiny scan on an unclustered index,
	// the small-sigma correction must engage (nu = 1).
	fmt.Println("nu =", det.Nu)
	fmt.Println("correction engaged =", det.Correction > 0)
	fmt.Println("estimate within records bound =", det.F <= 0.01*40_000)
	// Output:
	// nu = 1
	// correction engaged = true
	// estimate within records bound = true
}
