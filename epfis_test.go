package epfis_test

import (
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"epfis"
	"epfis/internal/buffer"
)

// TestEndToEndEstimationAccuracy is the headline integration test: build a
// real table (heap pages + B-tree), collect statistics through the public
// API, then compare Est-IO predictions with the fetch counts of real scans
// executed through a real LRU buffer pool.
func TestEndToEndEstimationAccuracy(t *testing.T) {
	tbl, ds, err := epfis.GenerateTable(epfis.SyntheticConfig{
		Name: "orders", N: 40_000, I: 800, R: 40, K: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := epfis.CollectStatsFromIndex(tbl, "key", epfis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = ds

	n := float64(tbl.N())
	var sumEst, sumActual float64
	for _, tc := range []struct {
		lo, hi  int64
		bufferB int
		// relTol is the per-scan tolerance. The paper's own metric is the
		// aggregate error precisely because individual small scans can have
		// large *relative* error with small *absolute* error; the small-scan
		// case below gets a correspondingly loose bound while the aggregate
		// is held tight.
		relTol float64
	}{
		{1, 800, 100, 0.20},   // full scan
		{1, 800, 500, 0.20},   // full scan, larger buffer
		{100, 500, 200, 0.45}, // half the keys
		{1, 40, 300, 3.0},     // small scan: heuristic correction regime
	} {
		ix, err := tbl.Index("key")
		if err != nil {
			t.Fatal(err)
		}
		records, err := ix.CountRange(epfis.Ge(tc.lo), epfis.Le(tc.hi))
		if err != nil {
			t.Fatal(err)
		}
		sigma := float64(records) / n

		pool, err := buffer.NewLRU(tbl.Store, tc.bufferB)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tbl.ScanThroughPool(pool, "key", epfis.Ge(tc.lo), epfis.Le(tc.hi))
		if err != nil {
			t.Fatal(err)
		}
		actual := float64(res.PageFetches)

		est, err := epfis.Estimate(st, int64(tc.bufferB), sigma, 1)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(est-actual) / actual
		if relErr > tc.relTol {
			t.Errorf("range [%d,%d] B=%d: est %.0f vs actual %.0f (%.0f%% err, tol %.0f%%)",
				tc.lo, tc.hi, tc.bufferB, est, actual, relErr*100, tc.relTol*100)
		}
		sumEst += est
		sumActual += actual
	}
	// The paper's aggregate metric over the whole mix stays tight.
	if agg := math.Abs(sumEst-sumActual) / sumActual; agg > 0.25 {
		t.Errorf("aggregate error %.0f%%", agg*100)
	}
}

func TestCatalogRoundTripThroughFacade(t *testing.T) {
	_, ds, err := epfis.GenerateTable(epfis.SyntheticConfig{
		Name: "t", N: 5_000, I: 100, R: 20, K: 0.5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := epfis.CollectStats(ds.Trace(), epfis.Meta{
		Table: "t", Column: "key", T: ds.T, N: 5_000, I: 100,
	}, epfis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := epfis.NewCatalog()
	if err := cat.Put(st); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := cat.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	re, err := epfis.LoadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Get("t", "key")
	if err != nil {
		t.Fatal(err)
	}
	// Estimates from the reloaded entry must be identical.
	a, err := epfis.Estimate(st, 100, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epfis.Estimate(got, 100, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("estimate drifted through catalog round trip: %g vs %g", a, b)
	}
}

func TestFacadeOptimizerFlow(t *testing.T) {
	_, ds, err := epfis.GenerateTable(epfis.SyntheticConfig{
		Name: "orders", N: 20_000, I: 400, R: 40, K: 1, Seed: 5, Column: "custid",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := epfis.CollectStats(ds.Trace(), epfis.Meta{
		Table: "orders", Column: "custid", T: ds.T, N: 20_000, I: 400,
	}, epfis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := epfis.NewCatalog()
	if err := cat.Put(st); err != nil {
		t.Fatal(err)
	}
	opt, err := epfis.NewOptimizer(cat)
	if err != nil {
		t.Fatal(err)
	}
	h, err := epfis.BuildHistogram(ds.Keys, 32)
	if err != nil {
		t.Fatal(err)
	}
	opt.AddHistogram("orders", "custid", h)
	best, plans, err := opt.Choose(epfis.Query{
		Table:       "orders",
		Range:       &epfis.RangePred{Column: "custid", HasLo: true, Lo: 1, HasHi: true, Hi: 8},
		BufferPages: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Errorf("%d plans", len(plans))
	}
	if best.Cost <= 0 {
		t.Errorf("best cost %g", best.Cost)
	}
}

func TestBaselineSets(t *testing.T) {
	_, ds, err := epfis.GenerateTable(epfis.SyntheticConfig{
		Name: "t", N: 4_000, I: 100, R: 20, K: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := epfis.CollectScanStats(ds.Keys, ds.Trace())
	if err != nil {
		t.Fatal(err)
	}
	all := append(epfis.Baselines(), epfis.ClusterRatioBaselines(ss)...)
	if len(all) != 8 {
		t.Fatalf("%d estimators", len(all))
	}
	p := epfis.Params{T: ds.T, N: 4_000, I: 100, B: 50, Sigma: 0.25, S: 1}
	for _, e := range all {
		v, err := e.Estimate(p)
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
		if v < 0 || math.IsNaN(v) {
			t.Errorf("%s: estimate %g", e.Name(), v)
		}
	}
}

func TestAnalyzeTraceFacade(t *testing.T) {
	tr := epfis.Trace{1, 2, 3, 1, 2, 3}
	c := epfis.AnalyzeTrace(tr)
	if c.Fetches(3) != 3 || c.Fetches(2) != 6 {
		t.Error("AnalyzeTrace wrong")
	}
}

func TestFacadeJoinFlow(t *testing.T) {
	inner, _, err := epfis.GenerateTable(epfis.SyntheticConfig{
		Name: "inner", N: 8_000, I: 2_000, R: 40, K: 0.1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	outer, _, err := epfis.GenerateTable(epfis.SyntheticConfig{
		Name: "outer", N: 1_000, I: 1_000, R: 40, K: 1, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := epfis.NewLRUPool(inner, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := epfis.IndexNestedLoopJoin(outer, "key", inner, "key", epfis.JoinByKey, pool)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 unique outer keys, 4 inner rows per key.
	if res.Matches != 4000 || res.ProbeKeys != 1000 {
		t.Errorf("join result = %+v", res)
	}
	if res.InnerFetches < 1 {
		t.Error("no inner fetches measured")
	}
}

// TestServiceFacade drives the estimation service end to end through the
// public API: generate statistics, install them in a concurrent catalog
// store, serve them over HTTP, and check the response matches a direct
// Estimate call bit for bit.
func TestServiceFacade(t *testing.T) {
	ds, err := epfis.GenerateDataset(epfis.SyntheticConfig{
		Name: "orders", N: 20_000, I: 500, R: 40, K: 0.2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := epfis.CollectStats(ds.Trace(), epfis.Meta{
		Table: "orders", Column: "key", T: ds.T, N: 20_000, I: 500,
	}, epfis.Options{})
	if err != nil {
		t.Fatal(err)
	}

	store := epfis.NewCatalogStore()
	if _, err := store.Put(st); err != nil {
		t.Fatal(err)
	}
	srv, err := epfis.NewService(epfis.ServiceConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	want, err := epfis.Estimate(st, 120, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/estimate?table=orders&column=key&b=120&sigma=0.15")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got struct {
		Fetches    float64 `json:"fetches"`
		Generation uint64  `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Fetches != want {
		t.Fatalf("service estimate = %v, direct = %v", got.Fetches, want)
	}

	// The typed validation sentinels surface through the facade.
	if _, err := epfis.Estimate(st, 0, 0.1, 1); !errors.Is(err, epfis.ErrBadBuffer) {
		t.Fatalf("B=0 err = %v, want ErrBadBuffer", err)
	}
	if _, err := epfis.Estimate(st, 10, 0.1, 0); !errors.Is(err, epfis.ErrBadSarg) {
		t.Fatalf("S=0 err = %v, want ErrBadSarg", err)
	}
}
