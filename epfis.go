// Package epfis is the public API of this repository: a complete Go
// implementation of Algorithm EPFIS — "Estimating Page Fetches for Index
// Scans with Finite LRU Buffers" (Swami & Schiefer, VLDB Journal 4(4),
// 1995) — together with the storage engine substrate it runs on and the
// baseline estimators it was evaluated against.
//
// # What EPFIS does
//
// A cost-based query optimizer must predict F, the number of data-page
// fetches an index scan will perform, given B buffer-pool pages managed with
// LRU. For unclustered indexes F depends strongly on B. EPFIS splits the
// problem in two:
//
//   - CollectStats (the paper's Subprogram LRU-Fit) runs once per index at
//     statistics-collection time: one pass over the index's data-page
//     reference trace simulates LRU for every buffer size simultaneously
//     (Mattson stack analysis), fits the resulting full-scan page-fetch
//     curve with six line segments, computes the clustering factor C, and
//     returns a compact catalog entry.
//
//   - Estimate (the paper's Subprogram Est-IO) runs per candidate plan at
//     query-compilation time: it interpolates the stored curve at B, scales
//     by the range-predicate selectivity σ, applies the small-σ heuristic
//     correction, and applies the urn-model reduction for index-sargable
//     predicates. It costs a handful of float operations.
//
// # Quick start
//
//	tbl, ds, _ := epfis.GenerateTable(epfis.SyntheticConfig{
//		Name: "orders", N: 100_000, I: 1_000, R: 40, K: 0.2, Seed: 1,
//	})
//	ix, _ := tbl.Index("key")
//	st, _ := epfis.CollectStatsFromIndex(tbl, "key", epfis.Options{})
//	f, _ := epfis.Estimate(st, 500 /* buffer pages */, 0.05 /* sigma */, 1)
//	_ = f // predicted page fetches for the scan
//	_ = ds
//	_ = ix
//
// See the examples/ directory for runnable end-to-end programs and
// cmd/epfis-experiments for the harness that regenerates every table and
// figure of the paper's evaluation.
package epfis

import (
	"net/http"

	"epfis/internal/baselines"
	"epfis/internal/btree"
	"epfis/internal/buffer"
	"epfis/internal/catalog"
	"epfis/internal/cluster"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/faultnet"
	"epfis/internal/histogram"
	"epfis/internal/join"
	"epfis/internal/lrusim"
	"epfis/internal/optimizer"
	"epfis/internal/resilience"
	"epfis/internal/service"
	"epfis/internal/stats"
	"epfis/internal/storage"
	"epfis/internal/table"
)

// Storage and index substrate.
type (
	// PageID identifies a data page.
	PageID = storage.PageID
	// RID is a record identifier (page, slot).
	RID = storage.RID
	// Table is a heap file plus its B-tree indexes.
	Table = table.Table
	// Index is one B-tree index of a table.
	Index = table.Index
	// TableBuilder constructs tables with caller-controlled record
	// placement.
	TableBuilder = table.Builder
	// Bound is a range-scan endpoint (start/stop condition).
	Bound = btree.Bound
)

// Range-bound constructors for index scans.
var (
	// Ge builds an inclusive lower bound (key >= v).
	Ge = btree.Ge
	// Gt builds an exclusive lower bound (key > v).
	Gt = btree.Gt
	// Le builds an inclusive upper bound (key <= v).
	Le = btree.Le
	// Lt builds an exclusive upper bound (key < v).
	Lt = btree.Lt
)

// LRU simulation.
type (
	// Trace is a data-page reference sequence in index order.
	Trace = lrusim.Trace
	// FetchCurve answers F(B) for any buffer size after one trace pass.
	FetchCurve = lrusim.FetchCurve
)

// EPFIS core.
type (
	// Meta carries the index's table-level statistics (T, N, I).
	Meta = core.Meta
	// Options configures LRU-Fit and Est-IO (segment budget, grid spacing,
	// ablation switches). The zero value is the paper's configuration.
	Options = core.Options
	// Input is one Est-IO request (B, sigma, S).
	Input = core.Input
	// Detail is the full Est-IO result with intermediate terms.
	Detail = core.Estimate
	// IndexStats is the catalog entry LRU-Fit produces.
	IndexStats = stats.IndexStats
	// Catalog stores IndexStats entries and round-trips to JSON.
	Catalog = stats.Catalog
	// CompiledEstimator is an IndexStats pre-validated and flattened for the
	// estimation hot path: EstimateInto computes Est-IO without allocating,
	// bit-identical to EstimateDetailed.
	CompiledEstimator = core.CompiledEstimator
)

// Synthetic data generation.
type (
	// SyntheticConfig parameterizes the clustered-placement generator
	// (N, I, R, Zipf theta, window K, noise, seed).
	SyntheticConfig = datagen.Config
	// Dataset is the logical output of the generator.
	Dataset = datagen.Dataset
)

// Optimizer layer.
type (
	// Optimizer performs access-path selection using Est-IO costing.
	Optimizer = optimizer.Optimizer
	// Query is a single-table retrieval request.
	Query = optimizer.Query
	// Plan is one costed access plan.
	Plan = optimizer.Plan
	// RangePred is a start/stop condition pair.
	RangePred = optimizer.RangePred
	// SargPred is an index-sargable predicate.
	SargPred = optimizer.SargPred
	// Histogram is an equi-depth histogram for selectivity estimation.
	Histogram = histogram.EquiDepth
)

// Baseline estimators (the paper's §3 comparison set).
type (
	// Estimator is the shared estimation interface.
	Estimator = baselines.Estimator
	// Params is a baseline estimation request.
	Params = baselines.Params
)

// AnalyzeTrace runs the one-pass Mattson stack simulation over a page
// reference trace, yielding F(B) for every buffer size.
func AnalyzeTrace(t Trace) *FetchCurve { return lrusim.Analyze(t) }

// CollectStats is Subprogram LRU-Fit: one pass over the full index scan's
// page trace producing the catalog entry Estimate consumes.
func CollectStats(trace Trace, meta Meta, opts Options) (*IndexStats, error) {
	return core.LRUFit(trace, meta, opts)
}

// CollectStatsFromIndex runs LRU-Fit over a materialized table's index.
func CollectStatsFromIndex(tbl *Table, column string, opts Options) (*IndexStats, error) {
	ix, err := tbl.Index(column)
	if err != nil {
		return nil, err
	}
	trace, err := ix.FullScanTrace()
	if err != nil {
		return nil, err
	}
	meta := Meta{
		Table:  tbl.Name,
		Column: column,
		T:      int64(tbl.T()),
		N:      int64(tbl.N()),
		I:      int64(ix.DistinctKeys),
	}
	return core.LRUFit(trace, meta, opts)
}

// Estimate is Subprogram Est-IO: the predicted page-fetch count for an index
// scan with bufferPages LRU pages, start/stop selectivity sigma, and
// index-sargable selectivity s (pass 1 when there are no sargable
// predicates).
func Estimate(st *IndexStats, bufferPages int64, sigma, s float64) (float64, error) {
	return core.EstimateFetches(st, bufferPages, sigma, s)
}

// EstimateDetailed is Estimate with every intermediate term exposed
// (PF_B, the Equation-1 correction, the sargable urn factor).
func EstimateDetailed(st *IndexStats, in Input, opts Options) (Detail, error) {
	return core.EstIO(st, in, opts)
}

// Compile pre-validates and flattens a catalog entry into a
// CompiledEstimator. Build it once per index (the estimation service does
// this per catalog snapshot) and call EstimateInto per candidate plan: the
// per-call path allocates nothing and returns the same results, bit for bit,
// as EstimateDetailed.
func Compile(st *IndexStats, opts Options) (*CompiledEstimator, error) {
	return core.Compile(st, opts)
}

// NewCatalog returns an empty statistics catalog.
func NewCatalog() *Catalog { return stats.NewCatalog() }

// LoadCatalog reads a catalog previously written with Catalog.SaveFile.
func LoadCatalog(path string) (*Catalog, error) { return stats.LoadFile(path) }

// Estimation service layer: a concurrent versioned catalog store plus the
// HTTP JSON API that serves Est-IO at query-compilation QPS
// (cmd/epfis-serve is the standalone binary).
type (
	// CatalogStore is the concurrent copy-on-write statistics store:
	// lock-free snapshot reads, serialized writers, atomic-rename file
	// persistence, and generation counters.
	CatalogStore = catalog.Store
	// CatalogSnapshot is an immutable point-in-time view of a CatalogStore.
	CatalogSnapshot = catalog.Snapshot
	// Service is the estimation HTTP service (GET /v1/estimate,
	// POST /v1/estimate/batch, catalog management, /healthz, /metrics).
	Service = service.Server
	// ServiceConfig configures NewService.
	ServiceConfig = service.Config
	// ServiceClient is the retrying HTTP client for the estimation service:
	// transport errors and 429/503 responses retry with backoff, honoring
	// the server's Retry-After header.
	ServiceClient = service.Client
	// ServiceClientConfig configures NewServiceClient.
	ServiceClientConfig = service.ClientConfig
	// ServiceHealth is the /healthz document.
	ServiceHealth = service.Health
	// RetryPolicy tunes retry attempts, backoff, and jitter for
	// ServiceClient (and is reusable standalone via internal/resilience).
	RetryPolicy = resilience.RetryPolicy
)

// Cluster layer: coordinator-free sharding of the estimation service across
// nodes — consistent-hash ownership, heartbeat/gossip membership, and
// catalog snapshot streaming (see internal/cluster and the README's
// "Running a cluster" section).
type (
	// ClusterNode is the per-process cluster agent: ring, membership,
	// gossip, and catalog anti-entropy. Pass it to ServiceConfig.Cluster.
	ClusterNode = cluster.Node
	// ClusterNodeConfig configures NewClusterNode.
	ClusterNodeConfig = cluster.Config
	// ClusterRing is the immutable consistent-hash ring (virtual nodes,
	// deterministic R-way replica sets).
	ClusterRing = cluster.Ring
	// ClusterClient routes estimates by ring position with hedging,
	// per-node breakers, and 421 re-routing.
	ClusterClient = service.ClusterClient
	// ClusterClientConfig configures NewClusterClient.
	ClusterClientConfig = service.ClusterClientConfig
)

// NewClusterNode builds the cluster agent for one estimation-service
// process. Start its gossip loop with Run and pass it to NewService via
// ServiceConfig.Cluster.
func NewClusterNode(cfg ClusterNodeConfig) (*ClusterNode, error) {
	return cluster.NewNode(cfg)
}

// NewClusterClient builds the cluster-aware client over a seed list of node
// URLs.
func NewClusterClient(cfg ClusterClientConfig) (*ClusterClient, error) {
	return service.NewClusterClient(cfg)
}

// BuildClusterRing constructs a consistent-hash ring over member IDs —
// exposed for tooling that needs to predict placement offline.
func BuildClusterRing(members []string, vnodes int) *ClusterRing {
	return cluster.BuildRing(members, vnodes)
}

// Deterministic network fault injection for partition drills (see
// internal/faultnet and the README's "Partition tolerance & durable
// ingestion" section): a NetFaultInjector plugs into ClusterNodeConfig's
// HTTPClient and ServiceConfig's Transport so test harnesses can drop,
// reset, slow, or truncate any cluster hop — or partition whole peers —
// reproducibly from a seed.
type (
	// NetFaultInjector is the http.RoundTripper that injects faults.
	NetFaultInjector = faultnet.Injector
	// NetFaultRule matches one (op, peer, route) and names the fault mode.
	NetFaultRule = faultnet.Rule
)

// NewNetFaultInjector builds a network fault injector over inner (nil uses
// the default transport), deterministic from seed.
func NewNetFaultInjector(inner http.RoundTripper, seed int64) *NetFaultInjector {
	return faultnet.NewInjector(inner, seed)
}

// ParseNetFaultRules parses the compact rule grammar
// "op:peer:route:nth:mode[:count]" — the same specs the EPFIS_NET_FAULTS
// environment knob accepts.
func ParseNetFaultRules(spec string) ([]NetFaultRule, error) {
	return faultnet.ParseRules(spec)
}

// NewCatalogStore returns an empty in-memory concurrent catalog store.
func NewCatalogStore() *CatalogStore { return catalog.NewStore() }

// OpenCatalogStore binds a concurrent catalog store to a catalog file,
// loading it when present; writes persist back with checksummed atomic
// renames (fsync before rename, previous generation retained). A corrupt or
// truncated file is recovered from the previous generation when one exists;
// CatalogStore.Recovered reports when that happened.
func OpenCatalogStore(path string) (*CatalogStore, error) { return catalog.Open(path) }

// NewService builds the estimation HTTP service over a catalog store.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// NewServiceClient builds the retrying client for a running estimation
// service.
func NewServiceClient(cfg ServiceClientConfig) (*ServiceClient, error) {
	return service.NewClient(cfg)
}

// Typed Est-IO input-validation sentinels. Each wraps ErrBadInput, so
// errors.Is(err, ErrBadInput) matches any of them; the estimation service
// maps them to HTTP 400.
var (
	// ErrBadInput is the umbrella sentinel for invalid estimation inputs.
	ErrBadInput = core.ErrBadInput
	// ErrBadBuffer reports a buffer page count B < 1.
	ErrBadBuffer = core.ErrBadBuffer
	// ErrBadSigma reports a start/stop selectivity outside [0, 1].
	ErrBadSigma = core.ErrBadSigma
	// ErrBadSarg reports a sargable selectivity outside (0, 1].
	ErrBadSarg = core.ErrBadSarg
	// ErrStatsNotFound reports a catalog lookup miss.
	ErrStatsNotFound = stats.ErrNotFound
)

// GenerateTable builds a synthetic table (real heap pages + B-tree index)
// with the paper's window-clustering placement model, returning both the
// materialized table and the logical dataset.
func GenerateTable(cfg SyntheticConfig) (*Table, *Dataset, error) {
	return datagen.Generate(cfg)
}

// GenerateDataset builds only the logical placement (keys + page trace),
// which is sufficient for estimation experiments and much cheaper at large N.
func GenerateDataset(cfg SyntheticConfig) (*Dataset, error) {
	return datagen.GenerateDataset(cfg)
}

// NewOptimizer creates an access-path optimizer over a statistics catalog.
func NewOptimizer(catalog *Catalog) (*Optimizer, error) {
	return optimizer.New(catalog)
}

// BuildHistogram constructs a compressed equi-depth histogram for
// selectivity estimation.
func BuildHistogram(values []int64, buckets int) (*Histogram, error) {
	return histogram.Build(values, buckets)
}

// Baselines returns the paper's comparison estimators that need no
// statistics pass (ML plus the classical formulas). The cluster-ratio
// algorithms (DC, SD, OT) require a statistics scan; use CollectScanStats.
func Baselines() []Estimator {
	return []Estimator{
		baselines.ML{},
		baselines.Cardenas{},
		baselines.Yao{},
		baselines.NaiveClustered{},
		baselines.NaiveUnclustered{},
	}
}

// ScanStats is the statistics record the cluster-ratio baselines collect.
type ScanStats = baselines.ScanStats

// CollectScanStats runs the cluster-ratio baselines' statistics pass over
// the index entries (keys and the matching page trace, in key order).
func CollectScanStats(keys []int64, trace Trace) (ScanStats, error) {
	return baselines.Collect(keys, trace)
}

// ClusterRatioBaselines returns DC, SD, and OT bound to a statistics record.
func ClusterRatioBaselines(ss ScanStats) []Estimator {
	return []Estimator{
		baselines.DC{Stats: ss},
		baselines.SD{Stats: ss},
		baselines.OT{Stats: ss},
	}
}

// Join layer (the Mackert-Lohman setting: inner index scans of nested-loop
// joins).
type (
	// JoinResult summarizes an executed index nested-loop join.
	JoinResult = join.Result
	// JoinOuterOrder selects the outer streaming order (ByKey / ByHeap).
	JoinOuterOrder = join.OuterOrder
)

// Join outer-order constants.
const (
	// JoinByKey streams the outer relation in join-key order.
	JoinByKey = join.ByKey
	// JoinByHeap streams the outer relation in physical page order.
	JoinByHeap = join.ByHeap
)

// IndexNestedLoopJoin executes outer JOIN inner ON the named columns,
// measuring inner data-page fetches through the pool.
func IndexNestedLoopJoin(outer *Table, outerCol string, inner *Table, innerCol string, order JoinOuterOrder, pool BufferPool) (JoinResult, error) {
	return join.IndexNestedLoop(outer, outerCol, inner, innerCol, order, pool)
}

// BufferPool is the page-access interface scans run through.
type BufferPool = buffer.Pool

// LRUPool is the strict least-recently-used buffer pool — the policy the
// paper's model assumes.
type LRUPool = buffer.LRU

// NewLRUPool creates an LRU buffer pool with the given number of frames over
// a table's page store.
func NewLRUPool(tbl *Table, frames int) (*LRUPool, error) {
	return buffer.NewLRU(tbl.Store, frames)
}
