package experiment

import (
	"fmt"
	"math"

	"epfis/internal/core"
)

// ablationDatasets are the synthetic settings the ablations average over:
// one clustered, one midway, one random — the regimes that stress different
// parts of EPFIS.
var ablationDatasets = []SyntheticSpec{
	{Figure: 11, Theta: 0, K: 0.05},
	{Figure: 13, Theta: 0, K: 0.20},
	{Figure: 15, Theta: 0, K: 1.0},
}

// meanAbs returns the mean absolute value of a series' Y.
func meanAbs(s *Series) float64 {
	if s == nil || len(s.Y) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, y := range s.Y {
		sum += math.Abs(y)
	}
	return sum / float64(len(s.Y))
}

// epfisMeanError runs the standard error sweep with the given core options
// and returns EPFIS's mean |error| (%) averaged over the ablation datasets.
func epfisMeanError(cfg Config, opts core.Options) (float64, error) {
	cfg.CoreOpts = opts
	cfg = cfg.normalized() // fills StepFactor for scaled runs
	opts = cfg.CoreOpts
	total, n := 0.0, 0
	for _, spec := range ablationDatasets {
		ds, err := syntheticDataset(spec, cfg)
		if err != nil {
			return 0, err
		}
		suite, err := suiteFor(ds, MetaFor(ds.Config.Name, ds), opts)
		if err != nil {
			return 0, err
		}
		series, err := ErrorSweep(ds, suite, cfg)
		if err != nil {
			return 0, err
		}
		for i := range series {
			if series[i].Name == "EPFIS" {
				total += meanAbs(&series[i])
				n++
			}
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("experiment: no EPFIS series in ablation sweep")
	}
	return total / float64(n), nil
}

// RunSegmentCountAblation reproduces the §4.1 study: estimation error as a
// function of the number of approximating line segments. The paper found the
// error stops improving past ~5 segments and chose 6.
func RunSegmentCountAblation(cfg Config, segmentCounts []int) (*FigureResult, error) {
	if len(segmentCounts) == 0 {
		segmentCounts = []int{1, 2, 3, 4, 5, 6, 8, 10, 12}
	}
	s := Series{Name: "EPFIS mean |err|"}
	for _, k := range segmentCounts {
		opts := cfg.CoreOpts
		opts.Segments = k
		e, err := epfisMeanError(cfg, opts)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, e)
	}
	return &FigureResult{
		ID:     "ablation-segments",
		Title:  "Sensitivity of EPFIS error to the number of FPF line segments (§4.1)",
		XLabel: "segments",
		YLabel: "mean |error| (%)",
		Series: []Series{s},
		Notes:  []string{cfg.normalized().scaleNote(), "averaged over theta=0, K in {0.05, 0.20, 1.0}"},
	}, nil
}

// RunSpacingAblation compares the paper's arithmetic modeling grid with the
// footnote-2 geometric (Graefe) grid.
func RunSpacingAblation(cfg Config) (*FigureResult, error) {
	variants := []struct {
		name    string
		spacing core.Spacing
	}{
		{"arithmetic (paper)", core.SpacingArithmetic},
		{"geometric (Graefe)", core.SpacingGeometric},
	}
	res := &FigureResult{
		ID:     "ablation-spacing",
		Title:  "Modeling-grid spacing: arithmetic vs geometric",
		XLabel: "variant",
		YLabel: "mean |error| (%)",
		Notes:  []string{cfg.normalized().scaleNote()},
	}
	for i, v := range variants {
		opts := cfg.CoreOpts
		opts.Spacing = v.spacing
		e, err := epfisMeanError(cfg, opts)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Series{Name: v.name, X: []float64{float64(i)}, Y: []float64{e}})
	}
	return res, nil
}

// RunFitterAblation compares the three curve fitters at the paper's
// six-segment budget.
func RunFitterAblation(cfg Config) (*FigureResult, error) {
	variants := []struct {
		name   string
		fitter core.Fitter
	}{
		{"optimal-DP", core.FitterOptimal},
		{"greedy", core.FitterGreedy},
		{"equal-spacing", core.FitterEqualSpacing},
	}
	res := &FigureResult{
		ID:     "ablation-fitter",
		Title:  "FPF curve fitter at equal segment budget",
		XLabel: "variant",
		YLabel: "mean |error| (%)",
		Notes:  []string{cfg.normalized().scaleNote()},
	}
	for i, v := range variants {
		opts := cfg.CoreOpts
		opts.Fitter = v.fitter
		e, err := epfisMeanError(cfg, opts)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Series{Name: v.name, X: []float64{float64(i)}, Y: []float64{e}})
	}
	return res, nil
}

// RunCorrectionAblation compares full EPFIS against EPFIS without the
// Equation-1 small-sigma correction and against the paper-printed
// phi = max(1, B/T) variant, on a small-scan-heavy workload where the
// correction matters most.
func RunCorrectionAblation(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	cfg.SmallProb = 0.9 // stress small scans
	spec := SyntheticSpec{Figure: 15, Theta: 0, K: 1.0}
	ds, err := syntheticDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"EPFIS", cfg.CoreOpts},
		{"EPFIS no-correction", func() core.Options { o := cfg.CoreOpts; o.DisableCorrection = true; return o }()},
		{"EPFIS phi=max (printed)", func() core.Options { o := cfg.CoreOpts; o.PhiUsesMax = true; return o }()},
	}
	res := &FigureResult{
		ID:     "ablation-correction",
		Title:  "Equation-1 small-sigma correction on an unclustered index (90% small scans)",
		XLabel: "B (% of T)",
		YLabel: "error (%)",
		Notes:  []string{cfg.scaleNote(), "theta=0, K=1.0"},
	}
	for _, v := range variants {
		suite, err := suiteFor(ds, MetaFor(ds.Config.Name, ds), v.opts)
		if err != nil {
			return nil, err
		}
		series, err := ErrorSweep(ds, suite, cfg)
		if err != nil {
			return nil, err
		}
		for i := range series {
			if series[i].Name == "EPFIS" {
				series[i].Name = v.name
				res.Series = append(res.Series, series[i])
			}
		}
	}
	return res, nil
}

// RunScanSizeStudy reproduces the §5 observation that "the algorithms other
// than Algorithm EPFIS performed worse as the scan size was made larger":
// it sweeps workload mixes from all-small to all-large and reports each
// algorithm's mean |error| per mix.
func RunScanSizeStudy(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	spec := SyntheticSpec{Figure: 13, Theta: 0, K: 0.20}
	ds, err := syntheticDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	suite, err := suiteFor(ds, MetaFor(ds.Config.Name, ds), cfg.CoreOpts)
	if err != nil {
		return nil, err
	}
	mixes := []float64{1.0, 0.75, 0.5, 0.25, 0.0} // P(small)
	res := &FigureResult{
		ID:     "study-scan-size",
		Title:  "Mean |error| vs workload scan-size mix (theta=0, K=0.20)",
		XLabel: "fraction of large scans",
		YLabel: "mean |error| (%)",
		Notes:  []string{cfg.scaleNote()},
	}
	var bySeries map[string]*Series
	for _, smallProb := range mixes {
		runCfg := cfg
		runCfg.SmallProb = smallProb
		if smallProb == 0 {
			runCfg.SmallProb = AllLargeScans
		}
		series, err := ErrorSweep(ds, suite, runCfg)
		if err != nil {
			return nil, err
		}
		if bySeries == nil {
			bySeries = make(map[string]*Series)
			for _, s := range series {
				res.Series = append(res.Series, Series{Name: s.Name})
			}
			for i := range res.Series {
				bySeries[res.Series[i].Name] = &res.Series[i]
			}
		}
		for i := range series {
			out := bySeries[series[i].Name]
			out.X = append(out.X, 1-smallProb)
			out.Y = append(out.Y, meanAbs(&series[i]))
		}
	}
	return res, nil
}
