package experiment

// The experiment suite reuses a handful of expensive intermediate builds
// everywhere: the same synthetic dataset backs a figure, two ablations, and
// a study; every GWL figure plus Table 3 re-runs the calibration bisection
// (~24 GenerateDataset+LRUFit rounds per column); the §5.1 summary re-runs
// the eight GWL figures the default order already ran. This file provides a
// process-wide build cache so each (spec, scale, seed) dataset, each
// (column, options) reconstruction, each (dataset, meta, options) suite, and
// each (id, config) figure is built exactly once and shared read-only.
//
// All cached values are immutable after construction (runners only read
// datasets, suites, and reconstructions), so sharing across the engine's
// worker goroutines is safe. Entries deduplicate concurrent builds
// singleflight-style: the first caller runs the build under the entry's
// sync.Once, later callers block on the same Once and read the result.

import (
	"sync"

	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/gwl"
)

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

type buildCache struct {
	mu      sync.Mutex
	entries map[any]*cacheEntry
}

// do returns the cached value for key, building it at most once per key.
// Builds run outside the cache lock, so slow builds for different keys
// proceed concurrently.
func (c *buildCache) do(key any, build func() (any, error)) (any, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[any]*cacheEntry)
	}
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

func (c *buildCache) clear() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
}

var shared buildCache

// ClearSharedCache drops every cached dataset, GWL reconstruction, suite,
// and figure result. Benchmarks call it to time uncached builds, and the
// determinism tests call it between runs so each run rebuilds from scratch.
func ClearSharedCache() { shared.clear() }

// Cache keys. All key types are comparable structs: datagen.Config,
// gwl.Options, core.Meta, core.Options, and Config carry only scalars and
// strings. Suites key on the dataset's pointer identity, which is canonical
// for cache-built datasets and still correct (merely less shared) for
// caller-supplied ones.
type (
	datasetKey struct{ cfg datagen.Config }
	reconKey   struct {
		column string
		opts   gwl.Options
	}
	suiteKey struct {
		ds   *datagen.Dataset
		meta core.Meta
		opts core.Options
	}
	figureKey struct {
		id  string
		cfg Config
	}
)

// generateDatasetCached is datagen.GenerateDataset behind the shared cache.
func generateDatasetCached(cfg datagen.Config) (*datagen.Dataset, error) {
	v, err := shared.do(datasetKey{cfg}, func() (any, error) {
		return datagen.GenerateDataset(cfg)
	})
	if err != nil {
		return nil, err
	}
	return v.(*datagen.Dataset), nil
}

// reconstructCached is gwl.Reconstruct behind the shared cache, so the
// calibration bisection for each column runs once per (options) across all
// figures, Table 3, and the GWL summary.
func reconstructCached(spec gwl.ColumnSpec, opts gwl.Options) (*gwl.Reconstruction, error) {
	v, err := shared.do(reconKey{column: spec.Name(), opts: opts}, func() (any, error) {
		return gwl.Reconstruct(spec, opts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*gwl.Reconstruction), nil
}

// suiteFor is NewSuite behind the shared cache: one LRU-Fit pass and one
// baseline-statistics scan per (dataset, meta, options).
func suiteFor(ds *datagen.Dataset, meta core.Meta, opts core.Options) (*Suite, error) {
	v, err := shared.do(suiteKey{ds: ds, meta: meta, opts: opts}, func() (any, error) {
		return NewSuite(ds, meta, opts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Suite), nil
}

// figureCached builds one figure result at most once per (id, config). The
// registry's figure entries and the summary entries share it, so running the
// default order computes each of Figures 2–21 once even though the summaries
// fold over all of them again.
func figureCached(id string, cfg Config, build func() (*FigureResult, error)) (*FigureResult, error) {
	v, err := shared.do(figureKey{id: id, cfg: cfg}, func() (any, error) {
		return build()
	})
	if err != nil {
		return nil, err
	}
	return v.(*FigureResult), nil
}
