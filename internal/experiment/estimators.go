package experiment

import (
	"fmt"

	"epfis/internal/baselines"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/stats"
)

// EPFISEstimator adapts Algorithm EPFIS to the baselines.Estimator interface
// so the harness treats all five algorithms uniformly.
type EPFISEstimator struct {
	// Stats is the LRU-Fit catalog entry for the index.
	Stats *stats.IndexStats
	// Opts carries Est-IO configuration (ablation switches).
	Opts core.Options
}

// Name implements baselines.Estimator.
func (e EPFISEstimator) Name() string { return "EPFIS" }

// Estimate implements baselines.Estimator.
func (e EPFISEstimator) Estimate(p baselines.Params) (float64, error) {
	s := p.S
	if s == 0 {
		s = 1
	}
	est, err := core.EstIO(e.Stats, core.Input{B: p.B, Sigma: p.Sigma, S: s}, e.Opts)
	if err != nil {
		return 0, err
	}
	return est.F, nil
}

// Suite bundles the five compared algorithms plus the dataset statistics
// they were prepared from.
type Suite struct {
	// Meta is the index metadata (T, N, I).
	Meta core.Meta
	// Stats is EPFIS's catalog entry.
	Stats *stats.IndexStats
	// ScanStats is the cluster-ratio baselines' statistics.
	ScanStats baselines.ScanStats
	// Estimators holds EPFIS, ML, DC, SD, OT in the paper's order.
	Estimators []baselines.Estimator
}

// NewSuite runs every statistics pass for the dataset once (LRU-Fit for
// EPFIS; the entry scan for DC/SD/OT) and returns the ready-to-query suite.
func NewSuite(ds *datagen.Dataset, meta core.Meta, opts core.Options) (*Suite, error) {
	trace := ds.Trace()
	st, err := core.LRUFit(trace, meta, opts)
	if err != nil {
		return nil, fmt.Errorf("experiment: suite statistics: %w", err)
	}
	ss, err := baselines.Collect(ds.Keys, trace)
	if err != nil {
		return nil, fmt.Errorf("experiment: suite statistics: %w", err)
	}
	return &Suite{
		Meta:      meta,
		Stats:     st,
		ScanStats: ss,
		Estimators: []baselines.Estimator{
			EPFISEstimator{Stats: st, Opts: opts},
			baselines.ML{},
			baselines.DC{Stats: ss},
			baselines.SD{Stats: ss},
			baselines.OT{Stats: ss},
		},
	}, nil
}

// MetaFor derives the core.Meta of a generated dataset.
func MetaFor(name string, ds *datagen.Dataset) core.Meta {
	return core.Meta{
		Table:  name,
		Column: ds.Config.Column,
		T:      ds.T,
		N:      ds.Config.N,
		I:      ds.Config.I,
	}
}
