package experiment

import (
	"fmt"
	"math"

	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/lrusim"
	"epfis/internal/storage"
	"epfis/internal/workload"
)

// This file implements studies for the paper's §6 future-work list:
// sorted-RID indexes, buffer-policy sensitivity (clock vs. the modeled LRU),
// and intra-query/multi-scan buffer contention.

// RunSortedRIDStudy compares the FPF curves of an unclustered index with
// insertion-ordered RIDs (the paper's model) against the same placement with
// page-sorted RIDs per key value (§6 future work). Sorting RIDs converts
// within-key page revisits into sequential runs, flattening the left end of
// the FPF curve; EPFIS adapts automatically because LRU-Fit simply
// re-measures the new trace.
func RunSortedRIDStudy(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	res := &FigureResult{
		ID:     "study-sorted-rids",
		Title:  "FPF curves: insertion-ordered vs page-sorted RIDs per key (theta=0.86, K=1)",
		XLabel: "B / T",
		YLabel: "F / T",
		Notes:  []string{cfg.scaleNote(), "paper §6 future work: indexes with sorted RIDs for a given key value"},
	}
	for _, variant := range []struct {
		name string
		sort bool
	}{
		{"insertion-ordered RIDs", false},
		{"page-sorted RIDs", true},
	} {
		n := int64(PaperSyntheticN / cfg.Scale)
		i := int64(PaperSyntheticI / cfg.Scale)
		ds, err := generateDatasetCached(datagen.Config{
			Name: "sorted-rid-study", N: n, I: i, R: PaperSyntheticR,
			Theta: 0.86, K: 1.0, Seed: cfg.Seed, SortRIDs: variant.sort,
		})
		if err != nil {
			return nil, err
		}
		curve := lrusim.Analyze(ds.Trace())
		t := float64(ds.T)
		s := Series{Name: variant.name}
		for frac := 0.01; frac <= 1.0+1e-9; frac += 0.045 {
			b := int(math.Max(1, math.Round(frac*t)))
			s.X = append(s.X, frac)
			s.Y = append(s.Y, float64(curve.Fetches(b))/t)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// RunPolicyStudy measures how well EPFIS's LRU-derived model predicts a
// buffer pool managed by the CLOCK (second-chance) policy — the common LRU
// approximation in deployed systems and a multi-user-adjacent concern from
// §6. For each buffer size it reports the error of EPFIS against LRU ground
// truth and against clock ground truth on the same scans.
func RunPolicyStudy(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	if cfg.Scans > 60 {
		cfg.Scans = 60 // clock has no stack trick; direct per-(scan, B) sims
	}
	spec := SyntheticSpec{Figure: 13, Theta: 0, K: 0.20}
	ds, err := syntheticDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	suite, err := suiteFor(ds, MetaFor(ds.Config.Name, ds), cfg.CoreOpts)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(ds, cfg.Seed+1009)
	if err != nil {
		return nil, err
	}
	scans := gen.Mix(cfg.Scans, cfg.SmallProb)
	measured := workload.Measure(ds, scans)
	sweep := workload.BufferSweep(ds.T, cfg.sweepFloor())
	if len(sweep) == 0 {
		return nil, fmt.Errorf("%w: T=%d", ErrEmptySweep, ds.T)
	}
	// Thin the sweep: clock simulation is O(trace) per (scan, B).
	thin := sweep[:0]
	for i, b := range sweep {
		if i%3 == 0 || i == len(sweep)-1 {
			thin = append(thin, b)
		}
	}
	vsLRU := Series{Name: "EPFIS vs LRU actual"}
	vsClock := Series{Name: "EPFIS vs CLOCK actual"}
	for _, b := range thin {
		var mLRU, mClock workload.ErrorMetric
		for _, m := range measured {
			est, err := core.EstIO(suite.Stats, core.Input{B: int64(b), Sigma: m.Scan.Sigma, S: 1}, cfg.CoreOpts)
			if err != nil {
				return nil, err
			}
			mLRU.Add(est.F, float64(m.Curve.Fetches(b)))
			clock, err := lrusim.ClockFetches(ds.SliceTrace(m.Scan.Lo, m.Scan.Hi), b)
			if err != nil {
				return nil, err
			}
			mClock.Add(est.F, float64(clock))
		}
		x := 100 * float64(b) / float64(ds.T)
		yl, err := mLRU.Percent()
		if err != nil {
			return nil, err
		}
		yc, err := mClock.Percent()
		if err != nil {
			return nil, err
		}
		vsLRU.X = append(vsLRU.X, x)
		vsLRU.Y = append(vsLRU.Y, yl)
		vsClock.X = append(vsClock.X, x)
		vsClock.Y = append(vsClock.Y, yc)
	}
	return &FigureResult{
		ID:     "study-policy",
		Title:  "Policy sensitivity: EPFIS (LRU-modeled) vs LRU and CLOCK ground truth",
		XLabel: "B (% of T)",
		YLabel: "error (%)",
		Series: []Series{vsLRU, vsClock},
		Notes:  []string{cfg.scaleNote(), fmt.Sprintf("theta=0, K=0.20, %d scans", cfg.Scans)},
	}, nil
}

// RunContentionStudy probes §6's intra-query/multi-user contention: two
// concurrent index scans over two DIFFERENT tables (disjoint page sets)
// interleave their references in one shared LRU pool of B pages, so they
// compete for frames without ever sharing a page. It compares the combined
// actual fetch count with two estimation policies: the naive sum of
// per-scan estimates at the full B, and the fair-share heuristic of
// estimating each scan at B/2. (Scans over the SAME table can instead share
// pages constructively — a separate effect the naive sum handles better;
// this study isolates pure frame competition.)
func RunContentionStudy(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	n := int64(PaperSyntheticN / cfg.Scale)
	i := int64(PaperSyntheticI / cfg.Scale)

	type tableSide struct {
		ds    *datagen.Dataset
		suite *Suite
		gen   *workload.Generator
	}
	sides := make([]tableSide, 2)
	for sIdx := range sides {
		ds, err := generateDatasetCached(datagen.Config{
			Name: fmt.Sprintf("contention-%d", sIdx), N: n, I: i, R: PaperSyntheticR,
			Theta: 0, K: 0.5, Seed: cfg.Seed + int64(sIdx),
		})
		if err != nil {
			return nil, err
		}
		suite, err := suiteFor(ds, MetaFor(ds.Config.Name, ds), cfg.CoreOpts)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(ds, cfg.Seed+1009+int64(sIdx))
		if err != nil {
			return nil, err
		}
		sides[sIdx] = tableSide{ds: ds, suite: suite, gen: gen}
	}
	t := sides[0].ds.T // both tables share the shape

	pairs := cfg.Scans / 4
	if pairs < 10 {
		pairs = 10
	}
	type pair struct {
		curve  *lrusim.FetchCurve
		sigmas [2]float64
	}
	ps := make([]pair, pairs)
	for p := 0; p < pairs; p++ {
		a := sides[0].gen.Large()
		b := sides[1].gen.Large()
		ta := sides[0].ds.SliceTrace(a.Lo, a.Hi)
		tb := sides[1].ds.SliceTrace(b.Lo, b.Hi)
		// Disjoint page-id spaces: offset table 1's pages beyond table 0's.
		inter := make(lrusim.Trace, 0, len(ta)+len(tb))
		for k := 0; k < len(ta) || k < len(tb); k++ {
			if k < len(ta) {
				inter = append(inter, ta[k])
			}
			if k < len(tb) {
				inter = append(inter, tb[k]+storagePageOffset(t))
			}
		}
		ps[p] = pair{curve: lrusim.Analyze(inter), sigmas: [2]float64{a.Sigma, b.Sigma}}
	}

	sweep := workload.BufferSweep(t, cfg.sweepFloor())
	if len(sweep) == 0 {
		return nil, fmt.Errorf("%w: T=%d", ErrEmptySweep, t)
	}
	thin := sweep[:0]
	for idx, b := range sweep {
		if idx%3 == 0 || idx == len(sweep)-1 {
			thin = append(thin, b)
		}
	}

	naive := Series{Name: "sum of estimates at B"}
	fair := Series{Name: "sum of estimates at B/2"}
	for _, b := range thin {
		var mNaive, mFair workload.ErrorMetric
		for p := 0; p < pairs; p++ {
			actual := float64(ps[p].curve.Fetches(b))
			var sumB, sumHalf float64
			for sIdx, sigma := range ps[p].sigmas {
				st := sides[sIdx].suite.Stats
				eb, err := core.EstIO(st, core.Input{B: int64(b), Sigma: sigma, S: 1}, cfg.CoreOpts)
				if err != nil {
					return nil, err
				}
				half := int64(b / 2)
				if half < 1 {
					half = 1
				}
				eh, err := core.EstIO(st, core.Input{B: half, Sigma: sigma, S: 1}, cfg.CoreOpts)
				if err != nil {
					return nil, err
				}
				sumB += eb.F
				sumHalf += eh.F
			}
			mNaive.Add(sumB, actual)
			mFair.Add(sumHalf, actual)
		}
		x := 100 * float64(b) / float64(t)
		yn, err := mNaive.Percent()
		if err != nil {
			return nil, err
		}
		yf, err := mFair.Percent()
		if err != nil {
			return nil, err
		}
		naive.X = append(naive.X, x)
		naive.Y = append(naive.Y, yn)
		fair.X = append(fair.X, x)
		fair.Y = append(fair.Y, yf)
	}
	return &FigureResult{
		ID:     "study-contention",
		Title:  "Two interleaved scans over disjoint tables sharing one LRU pool",
		XLabel: "B (% of one table's T)",
		YLabel: "error (%)",
		Series: []Series{naive, fair},
		Notes: []string{
			cfg.scaleNote(),
			fmt.Sprintf("theta=0, K=0.5, %d scan pairs, large scans; §6 contention future work", pairs),
		},
	}, nil
}

// storagePageOffset shifts a second table's page ids past the first's.
func storagePageOffset(t int64) storage.PageID { return storage.PageID(t) }

// RunSargableStudy validates Est-IO's step 7 — the urn-model reduction for
// index-sargable predicates — against measured ground truth. The dataset
// carries a minor index column b (uniform over BCard values, so the
// predicate "b = v" has S = 1/BCard); the actual fetch count of each
// filtered scan is measured by simulating the filtered page trace. Three
// estimation policies are scored: the paper's urn reduction, the naive
// proportional rule e = S * estimate(sigma), and ignoring the predicate.
func RunSargableStudy(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	const bCard = 16
	res := &FigureResult{
		ID:     "study-sargable",
		Title:  "Index-sargable predicates: urn-model reduction vs ground truth",
		XLabel: "B (% of T)",
		YLabel: "error (%)",
		Notes: []string{
			cfg.scaleNote(),
			fmt.Sprintf("minor column with %d values (S=%.4f)", bCard, 1.0/bCard),
			"clustered regime (K=0.02): several qualifying records share each page, naive e*S collapses",
			"unclustered regime (K=1): one record per fetch, naive e*S coincides with truth",
		},
	}
	for _, regime := range []struct {
		label string
		k     float64
	}{
		{"clustered", 0.02},
		{"unclustered", 1.0},
	} {
		n := int64(PaperSyntheticN / cfg.Scale)
		i := int64(PaperSyntheticI / cfg.Scale)
		ds, err := generateDatasetCached(datagen.Config{
			Name: "sargable-study-" + regime.label, N: n, I: i, R: PaperSyntheticR,
			Theta: 0, K: regime.k, Seed: cfg.Seed, BCardinality: bCard,
		})
		if err != nil {
			return nil, err
		}
		suite, err := suiteFor(ds, MetaFor(ds.Config.Name, ds), cfg.CoreOpts)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(ds, cfg.Seed+1009)
		if err != nil {
			return nil, err
		}
		scans := gen.Mix(cfg.Scans/2, cfg.SmallProb)

		// Per scan: the filtered trace for one predicate value.
		type fscan struct {
			sigma float64
			curve *lrusim.FetchCurve
		}
		fscans := make([]fscan, 0, len(scans))
		for idx, sc := range scans {
			b := uint32(1 + idx%bCard)
			ft, err := ds.FilteredSliceTrace(sc.Lo, sc.Hi, b)
			if err != nil {
				return nil, err
			}
			if len(ft) == 0 {
				continue
			}
			fscans = append(fscans, fscan{sigma: sc.Sigma, curve: lrusim.Analyze(ft)})
		}

		sweep := workload.BufferSweep(ds.T, cfg.sweepFloor())
		if len(sweep) == 0 {
			return nil, fmt.Errorf("%w: T=%d", ErrEmptySweep, ds.T)
		}
		const s = 1.0 / bCard
		urn := Series{Name: "urn model, " + regime.label}
		naive := Series{Name: "naive e*S, " + regime.label}
		ignore := Series{Name: "ignore S, " + regime.label}
		for _, b := range sweep {
			var mUrn, mNaive, mIgnore workload.ErrorMetric
			for _, fs := range fscans {
				actual := float64(fs.curve.Fetches(b))
				withUrn, err := core.EstIO(suite.Stats, core.Input{B: int64(b), Sigma: fs.sigma, S: s}, cfg.CoreOpts)
				if err != nil {
					return nil, err
				}
				noS, err := core.EstIO(suite.Stats, core.Input{B: int64(b), Sigma: fs.sigma, S: 1}, cfg.CoreOpts)
				if err != nil {
					return nil, err
				}
				mUrn.Add(withUrn.F, actual)
				mNaive.Add(s*noS.F, actual)
				mIgnore.Add(noS.F, actual)
			}
			x := 100 * float64(b) / float64(ds.T)
			for _, pair := range []struct {
				m  *workload.ErrorMetric
				sr *Series
			}{{&mUrn, &urn}, {&mNaive, &naive}, {&mIgnore, &ignore}} {
				y, err := pair.m.Percent()
				if err != nil {
					return nil, err
				}
				pair.sr.X = append(pair.sr.X, x)
				pair.sr.Y = append(pair.sr.Y, y)
			}
		}
		res.Series = append(res.Series, urn, naive, ignore)
	}
	return res, nil
}
