// Package experiment regenerates every table and figure in the paper's
// evaluation (§5): the FPF curves of Figure 1, the GWL error plots of
// Figures 2–9, the synthetic error plots of Figures 10–21, the Table 2/3
// statistics, the §5.1/§5.2 maximum-error summaries, and the §4.1 segment-
// count study — plus the ablations DESIGN.md calls out.
//
// Results are structured (series of points per algorithm) and render to
// aligned text tables and ASCII charts, so cmd/epfis-experiments can emit
// the same rows/series the paper plots.
package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line in a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// FigureResult is one regenerated table or figure.
type FigureResult struct {
	// ID is the paper's label, e.g. "figure-7" or "table-2".
	ID string
	// Title describes the experiment.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds one line per algorithm (or per index for Figure 1).
	Series []Series
	// Notes records caveats (scaling, substitutions) attached to this run.
	Notes []string
}

// Render writes the figure as an aligned value table followed by an ASCII
// chart.
func (f *FigureResult) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	if len(f.Series) == 0 {
		b.WriteString("   (no data)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}

	// Header.
	fmt.Fprintf(&b, "%12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')

	// All series share X in our runners; verify and fall back politely.
	xs := f.Series[0].X
	aligned := true
	for _, s := range f.Series {
		if len(s.X) != len(xs) {
			aligned = false
			break
		}
	}
	if aligned {
		for i := range xs {
			fmt.Fprintf(&b, "%12.4g", xs[i])
			for _, s := range f.Series {
				fmt.Fprintf(&b, " %14.4g", s.Y[i])
			}
			b.WriteByte('\n')
		}
	} else {
		for _, s := range f.Series {
			fmt.Fprintf(&b, "-- %s --\n", s.Name)
			for i := range s.X {
				fmt.Fprintf(&b, "%12.4g %14.4g\n", s.X[i], s.Y[i])
			}
		}
	}
	b.WriteString(renderChart(f, 72, 20))
	_, err := io.WriteString(w, b.String())
	return err
}

// seriesGlyphs mark different series in the ASCII chart.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'}

// renderChart draws a simple scatter/line chart of every series.
func renderChart(f *FigureResult, width, height int) string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range f.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return ""
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	// Zero line if the Y range crosses zero.
	if minY < 0 && maxY > 0 {
		r := int((maxY - 0) / (maxY - minY) * float64(height-1))
		for c := 0; c < width; c++ {
			grid[r][c] = '-'
		}
	}
	for si, s := range f.Series {
		g := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := int((maxY - s.Y[i]) / (maxY - minY) * float64(height-1))
			grid[r][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\n  %s vs %s   [y: %.4g .. %.4g]\n", f.YLabel, f.XLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "   x: %.4g .. %.4g   ", minX, maxX)
	for si, s := range f.Series {
		fmt.Fprintf(&b, " %c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	b.WriteString("\n\n")
	return b.String()
}

// MaxAbsY returns the series' maximum |Y| and its X position.
func (s Series) MaxAbsY() (x, y float64) {
	best := -1.0
	for i := range s.Y {
		if a := math.Abs(s.Y[i]); a > best {
			best = a
			x, y = s.X[i], s.Y[i]
		}
	}
	return x, y
}

// FindSeries returns the series with the given name, or nil.
func (f *FigureResult) FindSeries(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}
