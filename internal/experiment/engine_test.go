package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryOrderAndCoverage(t *testing.T) {
	exps := Registry()
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("registry entry %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Errorf("registry repeats %q", e.ID)
		}
		seen[e.ID] = true
	}
	want := []string{"table-2", "table-3", "figure-1"}
	for f := 2; f <= 21; f++ {
		want = append(want, fmt.Sprintf("figure-%d", f))
	}
	want = append(want,
		"summary-gwl", "summary-synthetic",
		"ablation-segments", "ablation-spacing", "ablation-fitter", "ablation-correction",
		"study-scan-size", "study-sorted-rids", "study-sargable", "study-policy", "study-contention",
	)
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("registry[%d] = %q, want %q", i, exps[i].ID, id)
		}
	}
}

func TestLookupExperiments(t *testing.T) {
	exps, err := LookupExperiments([]string{"figure-13", "table-2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].ID != "figure-13" || exps[1].ID != "table-2" {
		t.Fatalf("lookup order wrong: %v", exps)
	}
	if _, err := LookupExperiments([]string{"figure-99"}); err == nil {
		t.Error("unknown id did not error")
	}
}

// seriesIdentical demands bit-identical float values, not approximate ones:
// the engine's contract is that parallelism does not change the numbers.
func seriesIdentical(a, b []Series) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].X) != len(b[i].X) || len(a[i].Y) != len(b[i].Y) {
			return false
		}
		for j := range a[i].X {
			if a[i].X[j] != b[i].X[j] || a[i].Y[j] != b[i].Y[j] {
				return false
			}
		}
	}
	return true
}

func TestEngineDeterministicAcrossParallelism(t *testing.T) {
	// One synthetic figure and one GWL figure through the orchestrator API at
	// -parallel 1 and -parallel 8. The cache is cleared between runs so the
	// second run rebuilds everything; series must be bit-identical and the
	// rendered bytes equal.
	cfg := Config{Scale: 50, Scans: 30, Seed: 3}
	exps, err := LookupExperiments([]string{"figure-13", "figure-5"})
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel int) ([]RunReport, [][]byte) {
		ClearSharedCache()
		defer ClearSharedCache()
		eng := Engine{Parallel: parallel}
		reports := eng.RunAll(cfg, exps)
		rendered := make([][]byte, len(reports))
		for i, r := range reports {
			if r.Err != nil {
				t.Fatalf("parallel=%d %s: %v", parallel, r.ID, r.Err)
			}
			var buf bytes.Buffer
			if err := r.Result.Render(&buf); err != nil {
				t.Fatalf("parallel=%d %s render: %v", parallel, r.ID, err)
			}
			rendered[i] = buf.Bytes()
		}
		return reports, rendered
	}
	serialReports, serialBytes := run(1)
	parallelReports, parallelBytes := run(8)
	for i := range serialReports {
		sf, ok := serialReports[i].Result.(*FigureResult)
		if !ok {
			t.Fatalf("%s: not a figure result", serialReports[i].ID)
		}
		pf := parallelReports[i].Result.(*FigureResult)
		if !seriesIdentical(sf.Series, pf.Series) {
			t.Errorf("%s: series differ between parallel=1 and parallel=8", sf.ID)
		}
		if !bytes.Equal(serialBytes[i], parallelBytes[i]) {
			t.Errorf("%s: rendered output differs between parallel=1 and parallel=8", sf.ID)
		}
	}
}

func TestEngineReportsAndProgress(t *testing.T) {
	var stubErr = errors.New("stub failure")
	const n = 9
	exps := make([]Experiment, n)
	for i := range exps {
		i := i
		exps[i] = Experiment{
			ID: fmt.Sprintf("stub-%d", i),
			Run: func(Config) (Result, error) {
				time.Sleep(time.Millisecond)
				if i == 4 {
					return nil, stubErr
				}
				return &TableResult{ID: fmt.Sprintf("stub-%d", i)}, nil
			},
		}
	}
	var mu sync.Mutex
	var events []Progress
	eng := Engine{Parallel: 4, Progress: func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}}
	reports := eng.RunAll(Config{}, exps)
	if len(reports) != n {
		t.Fatalf("got %d reports", len(reports))
	}
	for i, r := range reports {
		if r.ID != exps[i].ID {
			t.Errorf("report %d is %q, want %q (input order must be preserved)", i, r.ID, exps[i].ID)
		}
		if i == 4 {
			if !errors.Is(r.Err, stubErr) {
				t.Errorf("report 4 error = %v, want stub failure", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Result == nil {
			t.Errorf("report %d: err=%v result=%v", i, r.Err, r.Result)
		}
	}
	if len(events) != 2*n {
		t.Fatalf("got %d progress events, want %d", len(events), 2*n)
	}
	started := map[string]bool{}
	for _, ev := range events {
		if !ev.Done {
			started[ev.ID] = true
			continue
		}
		if !started[ev.ID] {
			t.Errorf("%s finished before starting", ev.ID)
		}
		if ev.ID == "stub-4" && !errors.Is(ev.Err, stubErr) {
			t.Errorf("stub-4 completion event missing error: %v", ev.Err)
		}
	}
}
