package experiment

// The engine is the experiment orchestrator: a registry of every paper
// table, figure, summary, ablation, and study, plus a bounded worker pool
// that runs any subset of them concurrently with deterministic results.
//
// Determinism contract: RunAll's report slice is ordered by the input slice,
// each experiment's computation is internally ordered (ErrorSweep points
// write their own index; per-point float accumulation is serial), and shared
// intermediates come from the singleflight build cache — so the numbers are
// bit-identical at any Parallel setting, including 1. Only wall-clock and
// the interleaving of Progress callbacks vary.

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Result is a runnable experiment's output: anything that renders itself as
// text. Both *FigureResult and *TableResult satisfy it.
type Result interface {
	Render(w io.Writer) error
}

// Experiment is one registered experiment: a stable ID (the paper's label)
// and a runner.
type Experiment struct {
	ID  string
	Run func(cfg Config) (Result, error)
}

// figureExp adapts a figure runner, sharing results through the figure cache
// so summaries that fold over the same figures do not recompute them.
func figureExp(id string, fn func(Config) (*FigureResult, error)) Experiment {
	return Experiment{ID: id, Run: func(cfg Config) (Result, error) {
		fig, err := figureCached(id, cfg.normalized(), func() (*FigureResult, error) { return fn(cfg) })
		if err != nil {
			return nil, err
		}
		return fig, nil
	}}
}

// tableExp adapts a table runner.
func tableExp(id string, fn func(Config) (*TableResult, error)) Experiment {
	return Experiment{ID: id, Run: func(cfg Config) (Result, error) {
		tbl, err := fn(cfg)
		if err != nil {
			return nil, err
		}
		return tbl, nil
	}}
}

// gwlFigureCached is RunGWLFigure behind the figure cache, shared by the
// figure-N registry entries and the GWL summary.
func gwlFigureCached(figure int, cfg Config) (*FigureResult, error) {
	return figureCached(fmt.Sprintf("figure-%d", figure), cfg.normalized(),
		func() (*FigureResult, error) { return RunGWLFigure(figure, cfg) })
}

// syntheticFigureCached is RunSyntheticFigure behind the figure cache,
// shared by the figure-N registry entries and the synthetic summary.
func syntheticFigureCached(spec SyntheticSpec, cfg Config) (*FigureResult, error) {
	return figureCached(fmt.Sprintf("figure-%d", spec.Figure), cfg.normalized(),
		func() (*FigureResult, error) { return RunSyntheticFigure(spec, cfg) })
}

// Registry returns every experiment in the canonical rendering order:
// tables, Figure 1, the GWL figures (2-9), the synthetic figures (10-21),
// the two maximum-error summaries, then the ablations and studies.
func Registry() []Experiment {
	exps := []Experiment{
		tableExp("table-2", RunTable2),
		tableExp("table-3", RunTable3),
		figureExp("figure-1", RunFigure1),
	}
	for f := 2; f <= 9; f++ {
		f := f
		exps = append(exps, figureExp(fmt.Sprintf("figure-%d", f),
			func(cfg Config) (*FigureResult, error) { return RunGWLFigure(f, cfg) }))
	}
	for _, spec := range SyntheticFigures {
		spec := spec
		exps = append(exps, figureExp(fmt.Sprintf("figure-%d", spec.Figure),
			func(cfg Config) (*FigureResult, error) { return RunSyntheticFigure(spec, cfg) }))
	}
	exps = append(exps,
		Experiment{ID: "summary-gwl", Run: func(cfg Config) (Result, error) {
			figs := make([]*FigureResult, 0, len(GWLFigureColumns))
			for f := 2; f <= 9; f++ {
				fig, err := gwlFigureCached(f, cfg)
				if err != nil {
					return nil, err
				}
				figs = append(figs, fig)
			}
			return MaxErrorSummary("summary-gwl",
				"Maximum |error| per algorithm across the GWL figures (paper §5.1)", figs), nil
		}},
		Experiment{ID: "summary-synthetic", Run: func(cfg Config) (Result, error) {
			figs := make([]*FigureResult, 0, len(SyntheticFigures))
			for _, spec := range SyntheticFigures {
				fig, err := syntheticFigureCached(spec, cfg)
				if err != nil {
					return nil, err
				}
				figs = append(figs, fig)
			}
			return MaxErrorSummary("summary-synthetic",
				"Maximum |error| per algorithm across the synthetic figures (paper §5.2)", figs), nil
		}},
		figureExp("ablation-segments", func(cfg Config) (*FigureResult, error) {
			return RunSegmentCountAblation(cfg, nil)
		}),
		figureExp("ablation-spacing", RunSpacingAblation),
		figureExp("ablation-fitter", RunFitterAblation),
		figureExp("ablation-correction", RunCorrectionAblation),
		figureExp("study-scan-size", RunScanSizeStudy),
		figureExp("study-sorted-rids", RunSortedRIDStudy),
		figureExp("study-sargable", RunSargableStudy),
		figureExp("study-policy", RunPolicyStudy),
		figureExp("study-contention", RunContentionStudy),
	)
	return exps
}

// LookupExperiments resolves ids against the registry, preserving the ids'
// order. Unknown ids report an error listing what exists.
func LookupExperiments(ids []string) ([]Experiment, error) {
	byID := make(map[string]Experiment)
	for _, e := range Registry() {
		byID[e.ID] = e
	}
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("experiment: unknown experiment %q", id)
		}
		out = append(out, e)
	}
	return out, nil
}

// RunReport is the outcome of one experiment in a RunAll batch.
type RunReport struct {
	ID      string
	Result  Result
	Err     error
	Elapsed time.Duration
}

// Progress is one engine event: an experiment starting (Done=false) or
// finishing (Done=true, with Elapsed and any error). Events for different
// experiments interleave under parallelism; the callback itself is
// serialized, so implementations need no locking.
type Progress struct {
	ID      string
	Index   int // position in the RunAll input
	Total   int
	Done    bool
	Err     error
	Elapsed time.Duration
}

// Engine runs batches of experiments on a bounded worker pool.
type Engine struct {
	// Parallel caps concurrent experiments; <= 0 means GOMAXPROCS.
	Parallel int
	// Progress, when non-nil, receives start/finish events.
	Progress func(Progress)
}

// RunAll runs every experiment and returns one report per input, in input
// order. A failed experiment records its error in its report; the rest still
// run. Results are bit-identical regardless of Parallel (see the package
// comment on the determinism contract).
func (e *Engine) RunAll(cfg Config, exps []Experiment) []RunReport {
	reports := make([]RunReport, len(exps))
	var progMu sync.Mutex
	notify := func(p Progress) {
		if e.Progress == nil {
			return
		}
		progMu.Lock()
		defer progMu.Unlock()
		e.Progress(p)
	}
	runOne := func(i int) {
		exp := exps[i]
		notify(Progress{ID: exp.ID, Index: i, Total: len(exps)})
		start := time.Now()
		res, err := exp.Run(cfg)
		elapsed := time.Since(start)
		reports[i] = RunReport{ID: exp.ID, Result: res, Err: err, Elapsed: elapsed}
		notify(Progress{ID: exp.ID, Index: i, Total: len(exps), Done: true, Err: err, Elapsed: elapsed})
	}
	workers := e.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers <= 1 {
		for i := range exps {
			runOne(i)
		}
		return reports
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(exps) {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	return reports
}
