package experiment

import (
	"math"
	"strings"
	"testing"

	"epfis/internal/core"
)

// testCfg shrinks everything so the full pipeline runs in milliseconds:
// synthetic N = 20,000 (Scale 50), GWL tables divided by 8.
func testCfg() Config {
	return Config{Scale: 50, Scans: 60, Seed: 3}
}

func TestSyntheticSpecFor(t *testing.T) {
	s, err := SyntheticSpecFor(17)
	if err != nil || s.Theta != 0.86 || s.K != 0.05 {
		t.Errorf("spec = %+v, %v", s, err)
	}
	if _, err := SyntheticSpecFor(9); err == nil {
		t.Error("figure 9 accepted as synthetic")
	}
	if len(SyntheticFigures) != 12 {
		t.Errorf("%d synthetic figures", len(SyntheticFigures))
	}
}

func TestRunSyntheticFigureShape(t *testing.T) {
	spec := SyntheticSpec{Figure: 14, Theta: 0, K: 0.5}
	fig, err := RunSyntheticFigure(spec, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "figure-14" {
		t.Errorf("ID = %s", fig.ID)
	}
	wantSeries := []string{"EPFIS", "ML", "DC", "SD", "OT"}
	if len(fig.Series) != len(wantSeries) {
		t.Fatalf("%d series", len(fig.Series))
	}
	for i, name := range wantSeries {
		if fig.Series[i].Name != name {
			t.Errorf("series %d = %s, want %s", i, fig.Series[i].Name, name)
		}
		if len(fig.Series[i].X) == 0 {
			t.Errorf("series %s empty", name)
		}
	}
	// X axis: percent of T, increasing, within (0, 95].
	xs := fig.Series[0].X
	for i := range xs {
		if xs[i] <= 0 || xs[i] > 95 {
			t.Errorf("x[%d] = %g", i, xs[i])
		}
		if i > 0 && xs[i] <= xs[i-1] {
			t.Errorf("x not increasing at %d", i)
		}
	}
}

func TestEPFISDominatesOnUnclusteredSynthetic(t *testing.T) {
	// The paper's headline: EPFIS dominates the other algorithms, staying
	// low and stable while the cluster-ratio algorithms blow up.
	for _, spec := range []SyntheticSpec{{14, 0, 0.5}, {15, 0, 1.0}, {20, 0.86, 0.5}} {
		fig, err := RunSyntheticFigure(spec, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		epfis := fig.FindSeries("EPFIS")
		if epfis == nil {
			t.Fatal("no EPFIS series")
		}
		_, worstE := epfis.MaxAbsY()
		if math.Abs(worstE) > 50 {
			t.Errorf("K=%g theta=%g: EPFIS max |err| = %.1f%%, paper bound is 48%%", spec.K, spec.Theta, worstE)
		}
		for _, name := range []string{"DC", "SD", "OT"} {
			s := fig.FindSeries(name)
			if s == nil {
				t.Fatalf("no %s series", name)
			}
			_, worst := s.MaxAbsY()
			if math.Abs(worst) <= math.Abs(worstE) {
				t.Errorf("K=%g theta=%g: %s max |err| %.1f%% not worse than EPFIS %.1f%%",
					spec.K, spec.Theta, name, math.Abs(worst), math.Abs(worstE))
			}
		}
	}
}

func TestEPFISStableAcrossBufferSizes(t *testing.T) {
	fig, err := RunSyntheticFigure(SyntheticSpec{Figure: 13, Theta: 0, K: 0.2}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	epfis := fig.FindSeries("EPFIS")
	for i, y := range epfis.Y {
		if math.Abs(y) > 50 {
			t.Errorf("EPFIS error at x=%g is %.1f%%", epfis.X[i], y)
		}
	}
}

func TestClusteredSyntheticAllReasonable(t *testing.T) {
	// K=0: everything is clustered; even naive algorithms do fine, and
	// EPFIS must too.
	fig, err := RunSyntheticFigure(SyntheticSpec{Figure: 10, Theta: 0, K: 0}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	epfis := fig.FindSeries("EPFIS")
	_, worst := epfis.MaxAbsY()
	if math.Abs(worst) > 25 {
		t.Errorf("clustered EPFIS max |err| = %.1f%%", worst)
	}
}

func TestRunGWLFigure(t *testing.T) {
	cfg := testCfg()
	cfg.Scale = 8
	fig, err := RunGWLFigure(7, cfg) // INAP.MALD
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "figure-7" || !strings.Contains(fig.Title, "INAP.MALD") {
		t.Errorf("fig = %s %q", fig.ID, fig.Title)
	}
	epfis := fig.FindSeries("EPFIS")
	if epfis == nil {
		t.Fatal("no EPFIS series")
	}
	_, worst := epfis.MaxAbsY()
	// Paper: EPFIS max error on GWL never exceeds 20%; allow headroom for
	// the scaled reconstruction.
	if math.Abs(worst) > 35 {
		t.Errorf("EPFIS max |err| on GWL = %.1f%%", worst)
	}
	if _, err := RunGWLFigure(1, cfg); err == nil {
		t.Error("figure 1 accepted as GWL error figure")
	}
}

func TestRunFigure1(t *testing.T) {
	cfg := testCfg()
	cfg.Scale = 8
	fig, err := RunFigure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("%d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		// FPF curves are non-increasing in B and bounded by [1, N/T].
		for i := range s.Y {
			if i > 0 && s.Y[i] > s.Y[i-1]+1e-9 {
				t.Errorf("%s: FPF rises at %g", s.Name, s.X[i])
			}
			if s.Y[i] < 1-1e-9 {
				t.Errorf("%s: F/T = %g below 1", s.Name, s.Y[i])
			}
		}
		// At B = T the curve must reach F = T exactly (full caching).
		if last := s.Y[len(s.Y)-1]; math.Abs(last-1) > 0.01 {
			t.Errorf("%s: F/T at B=T is %g, want 1", s.Name, last)
		}
	}
}

func TestRunTables(t *testing.T) {
	cfg := testCfg()
	cfg.Scale = 8
	t2, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 4 {
		t.Errorf("table 2 rows = %d", len(t2.Rows))
	}
	t3, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 8 {
		t.Errorf("table 3 rows = %d", len(t3.Rows))
	}
	var sb strings.Builder
	if err := t2.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if err := t3.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"CMAC", "PLON.CLID", "table-2", "table-3"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

func TestMaxErrorSummary(t *testing.T) {
	figA := &FigureResult{ID: "figure-x", Series: []Series{
		{Name: "EPFIS", X: []float64{10, 20}, Y: []float64{5, -8}},
		{Name: "DC", X: []float64{10, 20}, Y: []float64{300, -20}},
	}}
	figB := &FigureResult{ID: "figure-y", Series: []Series{
		{Name: "EPFIS", X: []float64{10}, Y: []float64{-12}},
		{Name: "DC", X: []float64{10}, Y: []float64{40}},
	}}
	sum := MaxErrorSummary("summary", "test", []*FigureResult{figA, figB})
	if len(sum.Rows) != 2 {
		t.Fatalf("rows = %+v", sum.Rows)
	}
	if sum.Rows[0][0] != "EPFIS" || sum.Rows[0][1] != "12.0" || sum.Rows[0][2] != "figure-y" {
		t.Errorf("EPFIS row = %v", sum.Rows[0])
	}
	if sum.Rows[1][0] != "DC" || sum.Rows[1][1] != "300.0" || sum.Rows[1][2] != "figure-x" {
		t.Errorf("DC row = %v", sum.Rows[1])
	}
}

func TestFigureRender(t *testing.T) {
	fig := &FigureResult{
		ID: "figure-t", Title: "render test", XLabel: "B", YLabel: "err",
		Series: []Series{
			{Name: "A", X: []float64{1, 2, 3}, Y: []float64{5, -5, 2}},
			{Name: "B", X: []float64{1, 2, 3}, Y: []float64{1, 1, 1}},
		},
		Notes: []string{"a note"},
	}
	var sb strings.Builder
	if err := fig.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"figure-t", "a note", "*=A", "o=B"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Empty figure renders without panic.
	sb.Reset()
	if err := (&FigureResult{ID: "e"}).Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunSegmentCountAblation(t *testing.T) {
	cfg := testCfg()
	cfg.Scans = 40
	fig, err := RunSegmentCountAblation(cfg, []int{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.X) != 3 {
		t.Fatalf("points = %d", len(s.X))
	}
	// The paper's finding: more segments never much worse, and 6 segments
	// should beat 1 segment clearly.
	if s.Y[2] > s.Y[0] {
		t.Errorf("6 segments (%.1f%%) worse than 1 segment (%.1f%%)", s.Y[2], s.Y[0])
	}
}

func TestRunCorrectionAblation(t *testing.T) {
	cfg := testCfg()
	cfg.Scans = 40
	fig, err := RunCorrectionAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	full := fig.Series[0]
	nocorr := fig.Series[1]
	// On an unclustered index with mostly-small scans the correction must
	// reduce the (under)estimation error on aggregate.
	if meanAbs(&full) > meanAbs(&nocorr) {
		t.Errorf("correction hurt: with %.1f%%, without %.1f%%", meanAbs(&full), meanAbs(&nocorr))
	}
}

func TestRunSpacingAndFitterAblations(t *testing.T) {
	cfg := testCfg()
	cfg.Scans = 30
	sp, err := RunSpacingAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Series) != 2 {
		t.Errorf("spacing series = %d", len(sp.Series))
	}
	ft, err := RunFitterAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Series) != 3 {
		t.Errorf("fitter series = %d", len(ft.Series))
	}
	for _, s := range append(sp.Series, ft.Series...) {
		if len(s.Y) != 1 || math.IsNaN(s.Y[0]) || s.Y[0] < 0 {
			t.Errorf("ablation series %s bad: %+v", s.Name, s.Y)
		}
	}
}

func TestRunScanSizeStudy(t *testing.T) {
	cfg := testCfg()
	cfg.Scans = 40
	fig, err := RunScanSizeStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 5 {
			t.Errorf("%s has %d mixes", s.Name, len(s.X))
		}
	}
	// The paper's trend: cluster-ratio algorithms get worse with larger
	// scans — their all-large error exceeds their all-small error.
	for _, name := range []string{"OT"} {
		s := fig.FindSeries(name)
		if s.Y[len(s.Y)-1] < s.Y[0] {
			t.Logf("note: %s all-large %.1f%% vs all-small %.1f%% (trend not strict on scaled data)",
				name, s.Y[len(s.Y)-1], s.Y[0])
		}
	}
}

func TestEstimatorSuiteConsistency(t *testing.T) {
	cfg := testCfg()
	ds, err := syntheticDataset(SyntheticSpec{Figure: 13, Theta: 0, K: 0.2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := NewSuite(ds, MetaFor("syn", ds), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if suite.Stats.N != ds.Config.N || suite.ScanStats.Refs != ds.Config.N {
		t.Error("suite statistics inconsistent with dataset")
	}
	if suite.ScanStats.Keys != ds.Config.I {
		t.Errorf("suite keys = %d, want %d", suite.ScanStats.Keys, ds.Config.I)
	}
	names := []string{"EPFIS", "ML", "DC", "SD", "OT"}
	for i, e := range suite.Estimators {
		if e.Name() != names[i] {
			t.Errorf("estimator %d = %s", i, e.Name())
		}
	}
}

func TestRunSortedRIDStudy(t *testing.T) {
	fig, err := RunSortedRIDStudy(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	plain, sorted := fig.Series[0], fig.Series[1]
	// Sorting RIDs shrinks within-key stack distances (it can stretch a few
	// cross-key distances, so the improvement is aggregate, not pointwise):
	// require a clear win at the small-buffer end and on average.
	if sorted.Y[0] >= plain.Y[0] {
		t.Errorf("no benefit at smallest B: sorted %.2f vs plain %.2f", sorted.Y[0], plain.Y[0])
	}
	if meanAbs(&sorted) > meanAbs(&plain) {
		t.Errorf("sorted RIDs worse on average: %.2f vs %.2f", meanAbs(&sorted), meanAbs(&plain))
	}
}

func TestRunPolicyStudy(t *testing.T) {
	cfg := testCfg()
	cfg.Scans = 20
	fig, err := RunPolicyStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	lru, clock := fig.Series[0], fig.Series[1]
	if len(lru.X) == 0 || len(lru.X) != len(clock.X) {
		t.Fatalf("series lengths: %d vs %d", len(lru.X), len(clock.X))
	}
	// Clock approximates LRU: EPFIS's error against clock stays within a
	// modest band of its error against LRU.
	for i := range lru.Y {
		if math.Abs(clock.Y[i]-lru.Y[i]) > 40 {
			t.Errorf("at x=%.0f: clock err %.1f vs lru err %.1f diverge", lru.X[i], clock.Y[i], lru.Y[i])
		}
	}
}

func TestRunContentionStudy(t *testing.T) {
	cfg := testCfg()
	cfg.Scans = 40
	fig, err := RunContentionStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	naive, fair := fig.Series[0], fig.Series[1]
	// Disjoint tables competing for frames: each scan effectively sees less
	// than B, so the naive sum at full B underestimates; the fair-share B/2
	// heuristic must be at least as accurate on aggregate.
	mNaive, mFair := meanAbs(&naive), meanAbs(&fair)
	if mFair > mNaive+5 {
		t.Errorf("B/2 heuristic (%.1f%%) clearly worse than naive (%.1f%%)", mFair, mNaive)
	}
	// And the naive estimate must skew low (negative aggregate error) at
	// the small-buffer end, where competition is fiercest.
	if naive.Y[0] > 5 {
		t.Errorf("naive sum not underestimating under contention: %+.1f%%", naive.Y[0])
	}
}

func TestRunSargableStudy(t *testing.T) {
	cfg := testCfg()
	cfg.Scans = 40
	fig, err := RunSargableStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	urnC, naiveC, ignoreC := fig.Series[0], fig.Series[1], fig.Series[2]
	urnU, _, ignoreU := fig.Series[3], fig.Series[4], fig.Series[5]
	// Ignoring the predicate always overestimates badly.
	if meanAbs(&urnU) >= meanAbs(&ignoreU)/3 {
		t.Errorf("unclustered: urn %.1f%% not clearly better than ignore-S %.1f%%", meanAbs(&urnU), meanAbs(&ignoreU))
	}
	// Clustered regime: with R/bCard qualifying records per page, the naive
	// proportional rule collapses (it divides pages by 16 when almost every
	// page is still touched); the urn model must beat it decisively.
	if meanAbs(&urnC) >= meanAbs(&naiveC)/2 {
		t.Errorf("clustered: urn %.1f%% not clearly better than naive e*S %.1f%%", meanAbs(&urnC), meanAbs(&naiveC))
	}
	if meanAbs(&urnC) >= meanAbs(&ignoreC) && meanAbs(&ignoreC) > 10 {
		t.Errorf("clustered: urn %.1f%% not better than ignore-S %.1f%%", meanAbs(&urnC), meanAbs(&ignoreC))
	}
	// Both regimes stay within a usable band.
	if meanAbs(&urnC) > 60 || meanAbs(&urnU) > 60 {
		t.Errorf("urn model mean |err|: clustered %.1f%%, unclustered %.1f%%", meanAbs(&urnC), meanAbs(&urnU))
	}
}
