package experiment

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"epfis/internal/baselines"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/gwl"
	"epfis/internal/lrusim"
	"epfis/internal/workload"
)

// Config scales and seeds an experiment run. The zero value runs the paper's
// full-size experiments; tests and default benches pass Scale > 1 to shrink
// every dataset proportionally (ratios N/I and N/T are preserved, so curve
// and error shapes are too).
type Config struct {
	// Scale divides dataset sizes; 0 or 1 = paper size.
	Scale int
	// Scans is the number of random scans per error sweep; 0 = the paper's
	// 200.
	Scans int
	// SmallProb is the probability a scan is small; 0 = the paper's 0.5.
	// Use AllLargeScans for a workload with no small scans.
	SmallProb float64
	// Seed drives all randomness; 0 = 1.
	Seed int64
	// CoreOpts configures EPFIS (segment budget, spacing, ablations).
	CoreOpts core.Options
}

func (c Config) normalized() Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Scans == 0 {
		c.Scans = 200
	}
	switch {
	case c.SmallProb == AllLargeScans:
		c.SmallProb = 0
	case c.SmallProb <= 0:
		c.SmallProb = 0.5
	case c.SmallProb > 1:
		c.SmallProb = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CoreOpts.StepFactor == 0 && c.Scale > 1 {
		// Preserve the paper's grid density relative to T on scaled-down
		// tables (the arithmetic step grows like sqrt(T); see core.Options).
		c.CoreOpts.StepFactor = 1 / math.Sqrt(float64(c.Scale))
	}
	return c
}

// AllLargeScans is the SmallProb sentinel for a workload of only large
// scans (probability 0 of a small scan, distinct from the 0 = default).
const AllLargeScans = -1

// sweepFloor scales the paper's 300-page sweep floor.
func (c Config) sweepFloor() int64 {
	f := int64(300 / c.Scale)
	if f < 1 {
		f = 1
	}
	return f
}

// scaleNote describes the run size for figure notes.
func (c Config) scaleNote() string {
	if c.Scale == 1 {
		return "paper-size run"
	}
	return fmt.Sprintf("scaled run: all dataset sizes divided by %d (shape-preserving)", c.Scale)
}

// The paper's synthetic data parameters (§5.2).
const (
	PaperSyntheticN = 1_000_000
	PaperSyntheticI = 10_000
	PaperSyntheticR = 40
)

// SyntheticSpec identifies one of Figures 10–21.
type SyntheticSpec struct {
	Figure int
	Theta  float64
	K      float64
}

// SyntheticFigures lists Figures 10–21 in the paper's order:
// theta in {0, 0.86} crossed with K in {0, 0.05, 0.10, 0.20, 0.50, 1.0}.
var SyntheticFigures = []SyntheticSpec{
	{10, 0, 0}, {11, 0, 0.05}, {12, 0, 0.10}, {13, 0, 0.20}, {14, 0, 0.50}, {15, 0, 1.0},
	{16, 0.86, 0}, {17, 0.86, 0.05}, {18, 0.86, 0.10}, {19, 0.86, 0.20}, {20, 0.86, 0.50}, {21, 0.86, 1.0},
}

// SyntheticSpecFor returns the spec for a figure number in [10, 21].
func SyntheticSpecFor(figure int) (SyntheticSpec, error) {
	for _, s := range SyntheticFigures {
		if s.Figure == figure {
			return s, nil
		}
	}
	return SyntheticSpec{}, fmt.Errorf("experiment: no synthetic spec for figure %d", figure)
}

// ErrEmptySweep reports that the buffer sweep had no points (table too small
// for the configured floor).
var ErrEmptySweep = errors.New("experiment: empty buffer sweep")

// ErrorSweep runs the paper's error experiment for one dataset: draw the
// scan mix, measure actual fetches per scan per buffer size, query every
// estimator, and aggregate with the paper's error metric. The returned
// series map buffer size (as % of T) to error (%), one series per algorithm.
//
// Sweep points are independent — every estimator query is a pure function of
// the read-only suite — so they run on all CPUs. Each point writes its own
// series index, and per-point float accumulation order is untouched, so the
// output is bit-identical to the serial loop regardless of worker count.
func ErrorSweep(ds *datagen.Dataset, suite *Suite, cfg Config) ([]Series, error) {
	cfg = cfg.normalized()
	gen, err := workload.NewGenerator(ds, cfg.Seed+1009)
	if err != nil {
		return nil, err
	}
	scans := gen.Mix(cfg.Scans, cfg.SmallProb)
	measured := workload.Measure(ds, scans)
	sweep := workload.BufferSweep(ds.T, cfg.sweepFloor())
	if len(sweep) == 0 {
		return nil, fmt.Errorf("%w: T=%d floor=%d", ErrEmptySweep, ds.T, cfg.sweepFloor())
	}
	series := make([]Series, len(suite.Estimators))
	for i, e := range suite.Estimators {
		series[i] = Series{
			Name: e.Name(),
			X:    make([]float64, len(sweep)),
			Y:    make([]float64, len(sweep)),
		}
	}
	sweepPoint := func(j int) error {
		b := sweep[j]
		metrics := make([]workload.ErrorMetric, len(suite.Estimators))
		for _, m := range measured {
			actual := float64(m.Curve.Fetches(b))
			p := baselines.Params{
				T: suite.Meta.T, N: suite.Meta.N, I: suite.Meta.I,
				B: int64(b), Sigma: m.Scan.Sigma, S: 1,
			}
			for i, e := range suite.Estimators {
				est, err := e.Estimate(p)
				if err != nil {
					return fmt.Errorf("experiment: %s at B=%d: %w", e.Name(), b, err)
				}
				metrics[i].Add(est, actual)
			}
		}
		x := 100 * float64(b) / float64(ds.T)
		for i := range metrics {
			pct, err := metrics[i].Percent()
			if err != nil {
				return err
			}
			series[i].X[j] = x
			series[i].Y[j] = pct
		}
		return nil
	}
	errs := make([]error, len(sweep))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sweep) {
		workers = len(sweep)
	}
	if workers <= 1 {
		for j := range sweep {
			errs[j] = sweepPoint(j)
		}
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= len(sweep) {
						return
					}
					errs[j] = sweepPoint(j)
				}
			}()
		}
		wg.Wait()
	}
	// Report the lowest-index failure so the returned error does not depend
	// on goroutine scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return series, nil
}

// syntheticDataset generates (or fetches from the shared cache) the dataset
// for one synthetic figure. Figures, ablations, and studies that share a
// (spec, scale, seed) build it once.
func syntheticDataset(spec SyntheticSpec, cfg Config) (*datagen.Dataset, error) {
	cfg = cfg.normalized()
	n := int64(PaperSyntheticN / cfg.Scale)
	i := int64(PaperSyntheticI / cfg.Scale)
	if i < 1 {
		i = 1
	}
	if n < i {
		n = i
	}
	return generateDatasetCached(datagen.Config{
		Name:  fmt.Sprintf("synthetic-theta%.2f-K%.2f", spec.Theta, spec.K),
		N:     n,
		I:     i,
		R:     PaperSyntheticR,
		Theta: spec.Theta,
		K:     spec.K,
		Seed:  cfg.Seed,
	})
}

// RunSyntheticFigure regenerates one of Figures 10–21.
func RunSyntheticFigure(spec SyntheticSpec, cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	ds, err := syntheticDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	suite, err := suiteFor(ds, MetaFor(ds.Config.Name, ds), cfg.CoreOpts)
	if err != nil {
		return nil, err
	}
	series, err := ErrorSweep(ds, suite, cfg)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     fmt.Sprintf("figure-%d", spec.Figure),
		Title:  fmt.Sprintf("Error behavior for theta = %g, K = %g", spec.Theta, spec.K),
		XLabel: "B (% of T)",
		YLabel: "error (%)",
		Series: series,
		Notes: []string{
			cfg.scaleNote(),
			fmt.Sprintf("N=%d I=%d R=%d C=%.3f, %d scans (50/50 small/large)",
				ds.Config.N, ds.Config.I, ds.Config.R, suite.Stats.C, cfg.Scans),
		},
	}, nil
}

// GWLFigureColumns maps Figures 2–9 to the GWL columns in the paper's order.
var GWLFigureColumns = map[int]string{
	2: "CMAC.BRAN", 3: "CMAC.CEDT", 4: "CAGD.CMAN", 5: "CAGD.POLN",
	6: "INAP.APLD", 7: "INAP.MALD", 8: "INAP.UWID", 9: "PLON.CLID",
}

// RunGWLFigure regenerates one of Figures 2–9 on the calibrated GWL
// reconstruction.
func RunGWLFigure(figure int, cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	colName, ok := GWLFigureColumns[figure]
	if !ok {
		return nil, fmt.Errorf("experiment: no GWL column for figure %d", figure)
	}
	spec, err := gwl.ColumnByName(colName)
	if err != nil {
		return nil, err
	}
	recon, err := reconstructCached(spec, gwl.Options{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, err
	}
	meta := core.Meta{Table: spec.Table.Name, Column: spec.Column, T: recon.T, N: recon.N, I: recon.I}
	suite, err := suiteFor(recon.Dataset, meta, cfg.CoreOpts)
	if err != nil {
		return nil, err
	}
	series, err := ErrorSweep(recon.Dataset, suite, cfg)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     fmt.Sprintf("figure-%d", figure),
		Title:  fmt.Sprintf("Error behavior for %s", colName),
		XLabel: "B (% of T)",
		YLabel: "error (%)",
		Series: series,
		Notes: []string{
			cfg.scaleNote(),
			"GWL data is proprietary; calibrated synthetic reconstruction (see DESIGN.md)",
			fmt.Sprintf("target C=%.3f, calibrated C=%.3f (disorder=%.4f), T=%d N=%d I=%d",
				spec.TargetC, recon.MeasuredC, recon.Disorder, recon.T, recon.N, recon.I),
		},
	}, nil
}

// RunFigure1 regenerates the FPF curves of Figure 1: full-index-scan page
// fetches (in multiples of T) versus buffer size (as a fraction of T) for
// the five plotted GWL columns.
func RunFigure1(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	res := &FigureResult{
		ID:     "figure-1",
		Title:  "Full index scan page fetch (FPF) curves, GWL reconstruction",
		XLabel: "B / T",
		YLabel: "F / T",
		Notes: []string{
			cfg.scaleNote(),
			"GWL data is proprietary; calibrated synthetic reconstruction (see DESIGN.md)",
		},
	}
	for _, name := range gwl.Figure1Columns {
		spec, err := gwl.ColumnByName(name)
		if err != nil {
			return nil, err
		}
		recon, err := reconstructCached(spec, gwl.Options{Seed: cfg.Seed, Scale: cfg.Scale})
		if err != nil {
			return nil, err
		}
		curve := lrusim.Analyze(recon.Dataset.Trace())
		t := float64(recon.T)
		s := Series{Name: name}
		for frac := 0.01; frac <= 1.0+1e-9; frac += 0.0225 {
			b := int(math.Max(1, math.Round(frac*t)))
			s.X = append(s.X, frac)
			s.Y = append(s.Y, float64(curve.Fetches(b))/t)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// TableResult is a regenerated paper table.
type TableResult struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table with aligned columns.
func (t *TableResult) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, wd := range widths {
		fmt.Fprintf(&b, "  %s", strings.Repeat("-", wd))
		_ = i
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RunTable2 regenerates Table 2: the GWL tables' shapes, paper-published
// versus reconstructed.
func RunTable2(cfg Config) (*TableResult, error) {
	cfg = cfg.normalized()
	res := &TableResult{
		ID:     "table-2",
		Title:  "GWL database tables",
		Header: []string{"Table", "Pages(paper)", "Pages(run)", "Rec/Page(paper)", "Rec/Page(run)"},
		Notes:  []string{cfg.scaleNote()},
	}
	for _, name := range []string{"CMAC", "CAGD", "INAP", "PLON"} {
		spec := gwl.Tables[name]
		t := spec.Pages / int64(cfg.Scale)
		if t < 8 {
			t = 8
		}
		res.Rows = append(res.Rows, []string{
			name,
			fmt.Sprint(spec.Pages), fmt.Sprint(t),
			fmt.Sprint(spec.RecordsPerPage), fmt.Sprint(spec.RecordsPerPage),
		})
	}
	return res, nil
}

// RunTable3 regenerates Table 3: per-column cardinality and clustering
// factor, paper-published versus measured on the calibrated reconstruction.
func RunTable3(cfg Config) (*TableResult, error) {
	cfg = cfg.normalized()
	res := &TableResult{
		ID:     "table-3",
		Title:  "GWL database columns",
		Header: []string{"Column", "ColCard(paper)", "ColCard(run)", "C%(paper)", "C%(run)"},
		Notes:  []string{cfg.scaleNote(), "C measured by LRU-Fit on the calibrated reconstruction"},
	}
	for _, spec := range gwl.Columns {
		recon, err := reconstructCached(spec, gwl.Options{Seed: cfg.Seed, Scale: cfg.Scale})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			spec.Name(),
			fmt.Sprint(spec.Cardinality), fmt.Sprint(recon.I),
			fmt.Sprintf("%.1f", spec.TargetC*100), fmt.Sprintf("%.1f", recon.MeasuredC*100),
		})
	}
	return res, nil
}

// MaxErrorSummary reproduces the §5.1/§5.2 prose summaries: the maximum
// absolute error per algorithm across a set of figures.
func MaxErrorSummary(id, title string, figs []*FigureResult) *TableResult {
	res := &TableResult{
		ID:     id,
		Title:  title,
		Header: []string{"Algorithm", "max |error| %", "at figure", "at B (% of T)"},
	}
	type worst struct {
		err, x float64
		fig    string
	}
	byAlgo := map[string]worst{}
	var order []string
	for _, f := range figs {
		for _, s := range f.Series {
			x, y := s.MaxAbsY()
			w, ok := byAlgo[s.Name]
			if !ok {
				order = append(order, s.Name)
			}
			if !ok || math.Abs(y) > w.err {
				byAlgo[s.Name] = worst{err: math.Abs(y), x: x, fig: f.ID}
			}
		}
	}
	for _, name := range order {
		w := byAlgo[name]
		res.Rows = append(res.Rows, []string{
			name, fmt.Sprintf("%.1f", w.err), w.fig, fmt.Sprintf("%.0f", w.x),
		})
	}
	return res
}
