package experiment

import (
	"runtime"
	"testing"
)

// benchCfg is small enough for -benchtime=1x CI smoke runs while still
// exercising every stage (dataset, suite, sweep). Scale 25 is the smallest
// round size at which every GWL column still calibrates.
var benchCfg = Config{Scale: 25, Scans: 20, Seed: 1}

// BenchmarkErrorSweep measures one error sweep (all five estimators across
// the buffer sweep) with the dataset and suite prebuilt, i.e. the marginal
// cost the engine pays per figure once the cache is warm.
func BenchmarkErrorSweep(b *testing.B) {
	ClearSharedCache()
	defer ClearSharedCache()
	spec, err := SyntheticSpecFor(13)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := syntheticDataset(spec, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	suite, err := suiteFor(ds, MetaFor(ds.Config.Name, ds), benchCfg.normalized().CoreOpts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ErrorSweep(ds, suite, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineSuite runs the full registry through the engine, rebuilding the
// shared cache every iteration so each op is one complete suite run.
func benchEngineSuite(b *testing.B, parallel int) {
	b.Helper()
	exps := Registry()
	defer ClearSharedCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClearSharedCache()
		for _, r := range (&Engine{Parallel: parallel}).RunAll(benchCfg, exps) {
			if r.Err != nil {
				b.Fatal(r.ID, r.Err)
			}
		}
	}
}

// BenchmarkEngineSuiteSerial is the full figure suite at -parallel 1.
func BenchmarkEngineSuiteSerial(b *testing.B) { benchEngineSuite(b, 1) }

// BenchmarkEngineSuiteParallel is the full figure suite with one worker per
// CPU (identical output, see TestEngineDeterministicAcrossParallelism).
func BenchmarkEngineSuiteParallel(b *testing.B) { benchEngineSuite(b, runtime.GOMAXPROCS(0)) }

// BenchmarkEngineSuiteUncached runs every experiment with the cache dropped
// between experiments — the pre-engine behavior where each figure, summary,
// and ablation rebuilt its own datasets, calibrations, and suites. The gap
// between this and BenchmarkEngineSuiteSerial is the shared cache's win.
func BenchmarkEngineSuiteUncached(b *testing.B) {
	exps := Registry()
	defer ClearSharedCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range exps {
			ClearSharedCache()
			if _, err := e.Run(benchCfg); err != nil {
				b.Fatal(e.ID, err)
			}
		}
	}
}
