package baselines

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"epfis/internal/lrusim"
	"epfis/internal/storage"
)

// clustered builds keys/trace for a perfectly clustered index:
// perKey records per key, perPage records per page, in page order.
func clustered(keys64, perKey, perPage int) ([]int64, lrusim.Trace) {
	n := keys64 * perKey
	ks := make([]int64, 0, n)
	tr := make(lrusim.Trace, 0, n)
	rec := 0
	for k := 0; k < keys64; k++ {
		for d := 0; d < perKey; d++ {
			ks = append(ks, int64(k))
			tr = append(tr, storage.PageID(rec/perPage))
			rec++
		}
	}
	return ks, tr
}

// scattered builds a worst-case layout: consecutive keys on cycling pages.
func scattered(keys64, perKey, pages int) ([]int64, lrusim.Trace) {
	n := keys64 * perKey
	ks := make([]int64, 0, n)
	tr := make(lrusim.Trace, 0, n)
	rec := 0
	for k := 0; k < keys64; k++ {
		for d := 0; d < perKey; d++ {
			ks = append(ks, int64(k))
			tr = append(tr, storage.PageID(rec%pages))
			rec++
		}
	}
	return ks, tr
}

func TestCollectClustered(t *testing.T) {
	ks, tr := clustered(100, 5, 10) // 500 records, 50 pages
	st, err := Collect(ks, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 100 || st.Refs != 500 {
		t.Errorf("Keys=%d Refs=%d", st.Keys, st.Refs)
	}
	// Perfectly clustered: every key's first page >= previous key's last.
	if st.CC != 100 {
		t.Errorf("CC = %d, want 100", st.CC)
	}
	// Sequential page pattern: J1 = J3 = number of pages.
	if st.J1 != 50 || st.J3 != 50 {
		t.Errorf("J1=%d J3=%d, want 50", st.J1, st.J3)
	}
}

func TestCollectScattered(t *testing.T) {
	const pages = 25
	ks, tr := scattered(100, 5, pages) // 500 records over 25 pages, cycling
	st, err := Collect(ks, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Cycling pages: every reference misses at B=1 and B=3 after warmup.
	if st.J1 != 500 {
		t.Errorf("J1 = %d, want 500", st.J1)
	}
	if st.J3 != 500 {
		t.Errorf("J3 = %d, want 500", st.J3)
	}
	// Each key spans 5 consecutive cycling pages; the next key's first page
	// often lower than this key's last page. CC far below Keys.
	if st.CC >= st.Keys {
		t.Errorf("CC = %d not below Keys = %d for scattered layout", st.CC, st.Keys)
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := Collect([]int64{1}, nil); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v", err)
	}
	st, err := Collect(nil, nil)
	if err != nil || st.Refs != 0 || st.Keys != 0 {
		t.Errorf("empty Collect = %+v, %v", st, err)
	}
}

func params(t, n, i, b int64, sigma float64) Params {
	return Params{T: t, N: n, I: i, B: b, Sigma: sigma, S: 1}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{T: 0, N: 10, I: 5, B: 1, Sigma: 0.5, S: 1},
		{T: 5, N: 0, I: 5, B: 1, Sigma: 0.5, S: 1},
		{T: 5, N: 10, I: 0, B: 1, Sigma: 0.5, S: 1},
		{T: 5, N: 10, I: 11, B: 1, Sigma: 0.5, S: 1},
		{T: 5, N: 10, I: 5, B: 0, Sigma: 0.5, S: 1},
		{T: 5, N: 10, I: 5, B: 1, Sigma: -1, S: 1},
		{T: 5, N: 10, I: 5, B: 1, Sigma: 2, S: 1},
		{T: 5, N: 10, I: 5, B: 1, Sigma: 0.5, S: 7},
	}
	ests := []Estimator{ML{}, DC{}, SD{}, OT{}, Cardenas{}, Yao{}, NaiveClustered{}, NaiveUnclustered{}}
	for _, p := range bad {
		for _, e := range ests {
			if _, err := e.Estimate(p); !errors.Is(err, ErrBadParams) {
				t.Errorf("%s(%+v) err = %v, want ErrBadParams", e.Name(), p, err)
			}
		}
	}
}

func TestNames(t *testing.T) {
	want := map[Estimator]string{
		ML{}: "ML", DC{}: "DC", SD{}: "SD", OT{}: "OT",
		Cardenas{}: "Cardenas", Yao{}: "Yao",
		NaiveClustered{}: "NaiveClustered", NaiveUnclustered{}: "NaiveUnclustered",
	}
	for e, n := range want {
		if e.Name() != n {
			t.Errorf("Name = %q, want %q", e.Name(), n)
		}
	}
}

func TestMLFullBufferEqualsCardenasStyle(t *testing.T) {
	// With B >= T the window never saturates (n = I): ML reduces to
	// T(1 - q^x), Cardenas-like in the key count.
	p := params(1000, 100_000, 1000, 1000, 1)
	got, err := ML{}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	// D = 100 > R = 100? D = N/I = 100, R = N/T = 100: q = (1-1/T)^100.
	q := math.Pow(1-1.0/1000, 100)
	want := 1000 * (1 - math.Pow(q, 1000))
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("ML = %g, want %g", got, want)
	}
}

func TestMLSmallBufferLinearTail(t *testing.T) {
	// Tiny buffer: n is small, most keys fall in the linear tail, so the
	// estimate grows linearly with sigma there.
	p := params(1000, 100_000, 1000, 12, 0)
	var prev float64
	for i, sigma := range []float64{0.4, 0.6, 0.8} {
		p.Sigma = sigma
		got, err := ML{}.Estimate(p)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && got <= prev {
			t.Errorf("ML not increasing in sigma: %g then %g", prev, got)
		}
		prev = got
	}
	// And the tail slope is constant: est(0.8)-est(0.6) == est(0.6)-est(0.4).
	est := func(sigma float64) float64 {
		p.Sigma = sigma
		v, err := ML{}.Estimate(p)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	d1 := est(0.6) - est(0.4)
	d2 := est(0.8) - est(0.6)
	if math.Abs(d1-d2) > 1e-6*math.Abs(d1) {
		t.Errorf("ML tail not linear: %g vs %g", d1, d2)
	}
}

func TestMLZeroSigma(t *testing.T) {
	got, err := ML{}.Estimate(params(100, 1000, 50, 10, 0))
	if err != nil || got != 0 {
		t.Errorf("ML(sigma=0) = %g, %v", got, err)
	}
}

func TestMLMonotoneInB(t *testing.T) {
	p := params(2000, 200_000, 2000, 1, 0.5)
	prev := math.MaxFloat64
	for b := int64(10); b <= 2000; b += 100 {
		p.B = b
		got, err := ML{}.Estimate(p)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-9 {
			t.Errorf("ML increases with B at %d: %g > %g", b, got, prev)
		}
		prev = got
	}
}

func TestDCClusteredGivesSigmaT(t *testing.T) {
	ks, tr := clustered(100, 5, 10)
	st, err := Collect(ks, tr)
	if err != nil {
		t.Fatal(err)
	}
	// CC/I = 1, log term >= 0 here (T=50 < I=100 -> negative!). Use a case
	// with T >= I to get CR = 1: 100 keys, 50 pages -> T/I = 0.5 < 1.
	// Instead use 20 keys over 50 pages.
	ks2, tr2 := clustered(20, 25, 10) // 500 records, 50 pages, I=20
	st, err = Collect(ks2, tr2)
	if err != nil {
		t.Fatal(err)
	}
	p := params(50, 500, 20, 10, 0.4)
	got, err := DC{Stats: st}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.4 * 50.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("DC clustered = %g, want %g", got, want)
	}
}

func TestDCNegativeLogBlowup(t *testing.T) {
	// I >> T: the printed min(0.4, 5 ln(T/I)) term goes strongly negative,
	// CR << 0, and DC wildly overestimates — the behavior behind the
	// paper's reported 2876% DC errors.
	ks, tr := clustered(400, 1, 8) // I=400, T=50, N=400
	st, err := Collect(ks, tr)
	if err != nil {
		t.Fatal(err)
	}
	p := params(50, 400, 400, 10, 0.5)
	got, err := DC{Stats: st}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0.5*400 {
		t.Errorf("DC = %g, expected blowup above sigma*N = 200", got)
	}
}

func TestSDClusteredGivesSigmaT(t *testing.T) {
	ks, tr := clustered(100, 5, 10) // J1 = 50 pages = T -> CR = 1
	st, err := Collect(ks, tr)
	if err != nil {
		t.Fatal(err)
	}
	p := params(50, 500, 100, 10, 0.3)
	got, err := SD{Stats: st}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3*50) > 1e-9 {
		t.Errorf("SD clustered = %g, want %g", got, 0.3*50)
	}
}

func TestSDUnclusteredUsesCardenasTerm(t *testing.T) {
	const pages = 25
	ks, tr := scattered(100, 5, pages) // J1 = 500 = N -> CR = 0
	st, err := Collect(ks, tr)
	if err != nil {
		t.Fatal(err)
	}
	p := params(pages, 500, 100, 10, 0.5)
	got, err := SD{Stats: st}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	// CR = (500-500)/(500-25) = 0 -> F = V = U.
	d := 500.0 / 100.0
	u := 0.5 * 100 * (float64(pages) * (1 - math.Pow(1-1.0/pages, d)))
	if math.Abs(got-u) > 1e-9 {
		t.Errorf("SD unclustered = %g, want U = %g", got, u)
	}
	// Printed-exponent variant differs.
	got2, err := SD{Stats: st, Opts: SDOptions{UsePrintedExponent: true}}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got2 == got {
		t.Error("printed-exponent variant identical to default")
	}
}

func TestSDCapsAtTWhenBufferExceedsTable(t *testing.T) {
	const pages = 25
	ks, tr := scattered(100, 5, pages)
	st, err := Collect(ks, tr)
	if err != nil {
		t.Fatal(err)
	}
	p := params(pages, 500, 100, 100, 1) // B = 100 > T = 25
	got, err := SD{Stats: st}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got > float64(pages)+1e-9 {
		t.Errorf("SD with B > T = %g, want <= T = %d", got, pages)
	}
}

func TestOTBounds(t *testing.T) {
	// Clustered: J3 = T -> CR = 1 -> sigma*T.
	ks, tr := clustered(100, 5, 10)
	st, err := Collect(ks, tr)
	if err != nil {
		t.Fatal(err)
	}
	p := params(50, 500, 100, 10, 0.2)
	got, err := OT{Stats: st}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2*50) > 1e-9 {
		t.Errorf("OT clustered = %g, want %g", got, 0.2*50)
	}
	// Worst case: J3 = N -> CR = T/N -> estimate ~ sigma * (T + (1-T/N)(N-T)).
	ks2, tr2 := scattered(100, 5, 25)
	st2, err := Collect(ks2, tr2)
	if err != nil {
		t.Fatal(err)
	}
	p2 := params(25, 500, 100, 10, 0.2)
	got2, err := OT{Stats: st2}.Estimate(p2)
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(500+25-500) / 500.0
	want := 0.2 * (25 + (1-cr)*475)
	if math.Abs(got2-want) > 1e-9 {
		t.Errorf("OT scattered = %g, want %g", got2, want)
	}
}

func TestCardenasBasics(t *testing.T) {
	// sigma*N = 1 record: ~1 page. sigma = 1, N >> T: ~T pages.
	p := params(100, 10_000, 100, 10, 1.0/10_000)
	got, err := Cardenas{}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 0.01 {
		t.Errorf("Cardenas(1 record) = %g, want ~1", got)
	}
	p.Sigma = 1
	got, err = Cardenas{}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 0.1 {
		t.Errorf("Cardenas(all) = %g, want ~100", got)
	}
}

func TestYaoBasics(t *testing.T) {
	p := params(100, 10_000, 100, 10, 1)
	got, err := Yao{}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("Yao(all records) = %g, want exactly T", got)
	}
	p.Sigma = 1.0 / 10_000
	got, err = Yao{}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 0.01 {
		t.Errorf("Yao(1 record) = %g, want ~1", got)
	}
	p.Sigma = 0
	got, err = Yao{}.Estimate(p)
	if err != nil || got != 0 {
		t.Errorf("Yao(0) = %g, %v", got, err)
	}
}

func TestYaoBelowCardenas(t *testing.T) {
	// Without replacement always touches at least as many... Yao <= Cardenas
	// does NOT hold in general; but Yao <= T and Yao >= 0 always, and for
	// sampling without replacement Yao >= Cardenas for the same k.
	for _, sigma := range []float64{0.01, 0.1, 0.5, 0.9} {
		p := params(500, 50_000, 100, 10, sigma)
		y, err := Yao{}.Estimate(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Cardenas{}.Estimate(p)
		if err != nil {
			t.Fatal(err)
		}
		if y < c-1e-6 {
			t.Errorf("sigma=%g: Yao %g < Cardenas %g", sigma, y, c)
		}
		if y > 500 {
			t.Errorf("Yao %g exceeds T", y)
		}
	}
}

func TestNaiveEstimators(t *testing.T) {
	p := params(100, 5000, 50, 10, 0.3)
	c, err := NaiveClustered{}.Estimate(p)
	if err != nil || c != 30 {
		t.Errorf("NaiveClustered = %g, %v", c, err)
	}
	u, err := NaiveUnclustered{}.Estimate(p)
	if err != nil || u != 1500 {
		t.Errorf("NaiveUnclustered = %g, %v", u, err)
	}
}

func TestSargableFoldedIntoSigma(t *testing.T) {
	p := params(100, 5000, 50, 10, 0.4)
	p.S = 0.5
	got, err := NaiveUnclustered{}.Estimate(p)
	if err != nil || got != 1000 {
		t.Errorf("S folding = %g, %v, want 1000", got, err)
	}
}

// Property: all estimators return finite non-negative values on valid params.
func TestEstimatorsFiniteProperty(t *testing.T) {
	ks, tr := scattered(200, 5, 40)
	st, err := Collect(ks, tr)
	if err != nil {
		t.Fatal(err)
	}
	ests := []Estimator{ML{}, DC{Stats: st}, SD{Stats: st}, OT{Stats: st}, Cardenas{}, Yao{}, NaiveClustered{}, NaiveUnclustered{}}
	f := func(tRaw, iRaw uint16, bRaw uint16, sigmaRaw uint8) bool {
		t64 := int64(tRaw)%5000 + 1
		n64 := t64 * 10
		i64 := int64(iRaw)%n64 + 1
		b64 := int64(bRaw)%8000 + 1
		p := Params{T: t64, N: n64, I: i64, B: b64, Sigma: float64(sigmaRaw) / 255, S: 1}
		for _, e := range ests {
			v, err := e.Estimate(p)
			if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
