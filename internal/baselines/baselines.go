// Package baselines implements the estimation algorithms the paper compares
// EPFIS against (§3):
//
//   - ML — Mackert & Lohman's validated LRU I/O model (TODS 1989),
//     the iterative/closed formula with the single-buffer moving window.
//   - DC, SD, OT — three "cluster ratio" algorithms abstracted from the
//     internal algorithms of existing database products, each with its own
//     statistics pass over the index entries.
//
// For completeness the classical infinite-buffer estimators are also
// provided: Cardenas (1975), Yao (1977), and the naive perfectly-clustered /
// perfectly-unclustered bounds that predate them.
//
// Formulas are implemented exactly as printed, with two documented
// exceptions (see DESIGN.md):
//
//  1. SD's U term prints an exponent of T/I inside Cardenas's formula where
//     the text says "the number of pages fetched for random location of
//     tuples on pages"; Cardenas's formula for the D = N/I tuples of one key
//     value requires the exponent D = N/I. (With T/I the term degenerates to
//     ~sigma*T, making SD a constant clustered estimate, inconsistent with
//     the +1889% maximum error the paper reports for SD.) The printed
//     variant remains available via SDOptions.
//  2. None of the baselines model index-sargable predicates; per the paper's
//     experiments (S = 1 throughout) S is folded into sigma as the fraction
//     of qualifying records, which is how a naive optimizer would treat it.
package baselines

import (
	"errors"
	"fmt"
	"math"

	"epfis/internal/lrusim"
)

// Params is one estimation request, shared by every baseline.
type Params struct {
	// T = pages in table, N = records, I = distinct key values,
	// B = LRU buffer pages available.
	T, N, I, B int64
	// Sigma is the start/stop-condition selectivity in [0, 1].
	Sigma float64
	// S is the index-sargable selectivity in (0, 1]; 0 means none (= 1).
	S float64
}

// ErrBadParams reports invalid estimation parameters.
var ErrBadParams = errors.New("baselines: invalid parameters")

func (p Params) validate() error {
	switch {
	case p.T < 1, p.N < 1, p.I < 1, p.I > p.N, p.B < 1:
		return fmt.Errorf("%w: T=%d N=%d I=%d B=%d", ErrBadParams, p.T, p.N, p.I, p.B)
	case p.Sigma < 0 || p.Sigma > 1:
		return fmt.Errorf("%w: sigma=%g", ErrBadParams, p.Sigma)
	case p.S < 0 || p.S > 1:
		return fmt.Errorf("%w: S=%g", ErrBadParams, p.S)
	}
	return nil
}

// effSigma folds the sargable selectivity into sigma (see package comment).
func (p Params) effSigma() float64 {
	if p.S == 0 || p.S == 1 {
		return p.Sigma
	}
	return p.Sigma * p.S
}

// Estimator estimates page fetches for an index scan.
type Estimator interface {
	// Name returns the short label used in reports ("ML", "DC", ...).
	Name() string
	// Estimate returns the estimated number of data-page fetches.
	Estimate(p Params) (float64, error)
}

// ScanStats holds the per-index statistics the cluster-ratio baselines
// collect by scanning the index entries in key-sequence order, mirroring how
// the products the paper abstracted them from gather statistics.
type ScanStats struct {
	// CC is DC's cluster counter: incremented when the first page of a key
	// value's records is the same or a higher page than the last page of the
	// previous key value's records (the first key value counts as clustered).
	CC int64
	// J1 is the number of page fetches for a full index scan with a buffer
	// pool of one page (SD's J).
	J1 int64
	// J3 is the number of page fetches with a buffer pool of three pages
	// (OT's J).
	J3 int64
	// Keys is the number of distinct key values seen (I).
	Keys int64
	// Refs is the number of index entries seen (N).
	Refs int64
}

// ErrLengthMismatch reports keys/trace length disagreement.
var ErrLengthMismatch = errors.New("baselines: keys and trace lengths differ")

// Collect performs the statistics pass: keys[i] is the i-th index entry's
// key value and trace[i] the data page holding its record, both in index
// (key, seq) order.
func Collect(keys []int64, trace lrusim.Trace) (ScanStats, error) {
	if len(keys) != len(trace) {
		return ScanStats{}, fmt.Errorf("%w: %d keys, %d refs", ErrLengthMismatch, len(keys), len(trace))
	}
	var st ScanStats
	st.Refs = int64(len(keys))
	if len(keys) == 0 {
		return st, nil
	}
	curve := lrusim.Analyze(trace)
	st.J1 = curve.Fetches(1)
	st.J3 = curve.Fetches(3)

	// Cluster counter: group by key value.
	i := 0
	var lastPageOfPrev int64 = -1
	for i < len(keys) {
		j := i
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		st.Keys++
		firstPage := int64(trace[i])
		if lastPageOfPrev < 0 || firstPage >= lastPageOfPrev {
			st.CC++
		}
		lastPageOfPrev = int64(trace[j-1])
		i = j
	}
	return st, nil
}

// ML is Mackert & Lohman's finite-LRU-buffer estimator.
type ML struct{}

// Name implements Estimator.
func (ML) Name() string { return "ML" }

// Estimate implements Estimator. Retrieving all tuples matching x = sigma*I
// key values is estimated as
//
//	T(1 - q^x)                        for x <= n
//	T(1 - q^n) + (x - n) T p q^n      for n <  x <= I
//
// with q = (1 - 1/T)^min(D, R), D = N/I, R = N/T, p = 1 - q, and n the
// largest j with T(1 - q^j) <= B (the buffer's key-value horizon).
func (ML) Estimate(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	sigma := p.effSigma()
	if sigma == 0 {
		return 0, nil
	}
	t := float64(p.T)
	d := float64(p.N) / float64(p.I)
	r := float64(p.N) / float64(p.T)
	exp := d
	if d > r {
		exp = r
	}
	q := math.Pow(1-1/t, exp)
	pp := 1 - q
	x := sigma * float64(p.I)

	// n = max{ j in [0, I] : T(1 - q^j) <= B }.
	var n float64
	switch {
	case float64(p.B) >= t, q == 1:
		n = float64(p.I)
	case q <= 0:
		n = 0
	default:
		// T(1-q^j) <= B  <=>  q^j >= 1 - B/T  <=>  j <= ln(1-B/T)/ln(q).
		lim := 1 - float64(p.B)/t
		if lim <= 0 {
			n = float64(p.I)
		} else {
			n = math.Floor(math.Log(lim) / math.Log(q))
			if n < 0 {
				n = 0
			}
			if n > float64(p.I) {
				n = float64(p.I)
			}
		}
	}
	var f float64
	if x <= n {
		f = t * (1 - math.Pow(q, x))
	} else {
		f = t*(1-math.Pow(q, n)) + (x-n)*t*pp*math.Pow(q, n)
	}
	return clampEstimate(f, sigma, p), nil
}

// DC is the first cluster-ratio baseline:
//
//	CR = min(1, CC/I + min(0.4, 5 ln(T/I)))
//	F  = sigma (T + (1 - CR)(N - T))
//
// Implemented exactly as printed; note that for I > T the log term is
// negative and CR can go far below zero, which is the source of the very
// large DC errors the paper reports (e.g. Figure 8).
type DC struct {
	Stats ScanStats
}

// Name implements Estimator.
func (DC) Name() string { return "DC" }

// Estimate implements Estimator.
func (a DC) Estimate(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	sigma := p.effSigma()
	cr := math.Min(1, float64(a.Stats.CC)/float64(p.I)+math.Min(0.4, 5*math.Log(float64(p.T)/float64(p.I))))
	f := sigma * (float64(p.T) + (1-cr)*float64(p.N-p.T))
	return clampEstimate(f, sigma, p), nil
}

// SDOptions configures the SD baseline.
type SDOptions struct {
	// UsePrintedExponent uses the paper's printed T/I exponent in the U term
	// instead of the Cardenas-consistent D = N/I (see package comment).
	UsePrintedExponent bool
}

// SD is the second cluster-ratio baseline:
//
//	CR = (N - J)/(N - T)                       with J = fetches at B = 1
//	U  = sigma * I * (T (1 - (1 - 1/T)^D))     Cardenas per key value
//	V  = min(U, T) if T < B, else U
//	F  = CR * T * sigma + (1 - CR) V
type SD struct {
	Stats ScanStats
	Opts  SDOptions
}

// Name implements Estimator.
func (SD) Name() string { return "SD" }

// Estimate implements Estimator.
func (a SD) Estimate(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	sigma := p.effSigma()
	t := float64(p.T)
	cr := 1.0
	if p.N > p.T {
		cr = float64(p.N-a.Stats.J1) / float64(p.N-p.T)
	}
	exp := float64(p.N) / float64(p.I)
	if a.Opts.UsePrintedExponent {
		exp = t / float64(p.I)
	}
	u := sigma * float64(p.I) * (t * (1 - math.Pow(1-1/t, exp)))
	v := u
	if p.T < p.B {
		v = math.Min(u, t)
	}
	f := cr*t*sigma + (1-cr)*v
	return clampEstimate(f, sigma, p), nil
}

// OT is the third cluster-ratio baseline:
//
//	CR = (N + T - J)/N                         with J = fetches at B = 3
//	F  = sigma (T + (1 - CR)(N - T))
type OT struct {
	Stats ScanStats
}

// Name implements Estimator.
func (OT) Name() string { return "OT" }

// Estimate implements Estimator.
func (a OT) Estimate(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	sigma := p.effSigma()
	cr := float64(p.N+p.T-a.Stats.J3) / float64(p.N)
	f := sigma * (float64(p.T) + (1-cr)*float64(p.N-p.T))
	return clampEstimate(f, sigma, p), nil
}

// Cardenas is the classical infinite-buffer random-placement estimator
// (Cardenas 1975): F = T (1 - (1 - 1/T)^{sigma N}), i.e. selection with
// replacement.
type Cardenas struct{}

// Name implements Estimator.
func (Cardenas) Name() string { return "Cardenas" }

// Estimate implements Estimator.
func (Cardenas) Estimate(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	sigma := p.effSigma()
	t := float64(p.T)
	f := t * (1 - math.Pow(1-1/t, sigma*float64(p.N)))
	return clampEstimate(f, sigma, p), nil
}

// Yao is the classical without-replacement estimator (Yao 1977):
//
//	F = T [ 1 - prod_{i=1..k} (N - N/T - i + 1)/(N - i + 1) ]
//
// for k = sigma*N records selected from N without replacement, N/T records
// per page. Computed in log space for numerical stability.
type Yao struct{}

// Name implements Estimator.
func (Yao) Name() string { return "Yao" }

// Estimate implements Estimator.
func (Yao) Estimate(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	sigma := p.effSigma()
	k := int64(math.Round(sigma * float64(p.N)))
	if k <= 0 {
		return 0, nil
	}
	if k >= p.N {
		return float64(p.T), nil
	}
	n := float64(p.N)
	m := n / float64(p.T) // records per page
	// log prod = sum log((n - m - i + 1)/(n - i + 1)), i = 1..k
	logProd := 0.0
	for i := int64(1); i <= k; i++ {
		num := n - m - float64(i) + 1
		if num <= 0 {
			logProd = math.Inf(-1)
			break
		}
		logProd += math.Log(num) - math.Log(n-float64(i)+1)
	}
	f := float64(p.T) * (1 - math.Exp(logProd))
	return clampEstimate(f, sigma, p), nil
}

// NaiveClustered is the earliest model: assume the index is perfectly
// clustered, F = sigma * T.
type NaiveClustered struct{}

// Name implements Estimator.
func (NaiveClustered) Name() string { return "NaiveClustered" }

// Estimate implements Estimator.
func (NaiveClustered) Estimate(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return p.effSigma() * float64(p.T), nil
}

// NaiveUnclustered assumes one fetch per record, F = sigma * N.
type NaiveUnclustered struct{}

// Name implements Estimator.
func (NaiveUnclustered) Name() string { return "NaiveUnclustered" }

// Estimate implements Estimator.
func (NaiveUnclustered) Estimate(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return p.effSigma() * float64(p.N), nil
}

// clampEstimate keeps estimates non-negative; deliberately NO upper clamp —
// the paper scores the algorithms as proposed, and their over-estimates
// (sometimes 20x the true value) are part of the published comparison.
func clampEstimate(f, _ float64, _ Params) float64 {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	return f
}
