package faultnet

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// upstream spins a plain HTTP server answering every request with the given
// body and returns a client whose transport is the injector under test.
func upstream(t *testing.T, body string) (*httptest.Server, *Injector, *http.Client) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	inj := NewInjector(nil, 1)
	return ts, inj, inj.Client(5 * time.Second)
}

func get(t *testing.T, c *http.Client, url string) (string, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestInjectorPassthrough(t *testing.T) {
	ts, inj, c := upstream(t, "ok")
	body, err := get(t, c, ts.URL+"/v1/estimate")
	if err != nil || body != "ok" {
		t.Fatalf("passthrough: body=%q err=%v", body, err)
	}
	if inj.Injected() != 0 {
		t.Fatalf("injected %d faults on passthrough", inj.Injected())
	}
	tr := inj.Trace()
	if len(tr) != 2 || !strings.HasPrefix(tr[0], "request ") || !strings.HasPrefix(tr[1], "response ") {
		t.Fatalf("trace = %v, want request then response", tr)
	}
}

func TestDropOnNthRequest(t *testing.T) {
	ts, inj, c := upstream(t, "ok")
	inj.Add(Rule{Op: OpRequest, Route: "/v1/indexes", Nth: 2, Mode: ModeDrop})

	if _, err := get(t, c, ts.URL+"/v1/indexes/a.b"); err != nil {
		t.Fatalf("first request should pass: %v", err)
	}
	// A non-matching route does not advance the rule's counter.
	if _, err := get(t, c, ts.URL+"/v1/estimate"); err != nil {
		t.Fatalf("other route should pass: %v", err)
	}
	_, err := get(t, c, ts.URL+"/v1/indexes/a.b")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second matching request should drop, got err=%v", err)
	}
	// Count defaults to 1: the third matching request passes again.
	if _, err := get(t, c, ts.URL+"/v1/indexes/a.b"); err != nil {
		t.Fatalf("third request should pass after single-shot rule: %v", err)
	}
	if inj.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", inj.Injected())
	}
}

func TestResetAndPersistentCount(t *testing.T) {
	ts, inj, c := upstream(t, "ok")
	inj.Add(Rule{Op: OpRequest, Nth: 1, Count: -1, Mode: ModeReset})
	for i := 0; i < 3; i++ {
		_, err := get(t, c, ts.URL+"/x")
		if err == nil || !strings.Contains(err.Error(), "connection reset") {
			t.Fatalf("request %d: want reset error, got %v", i, err)
		}
	}
	inj.Reset()
	if _, err := get(t, c, ts.URL+"/x"); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestResponseDropAfterServerSawRequest(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "done")
	}))
	defer ts.Close()
	inj := NewInjector(nil, 1)
	inj.Add(Rule{Op: OpResponse, Nth: 1, Mode: ModeDrop})
	c := inj.Client(5 * time.Second)
	if _, err := get(t, c, ts.URL+"/mutate"); err == nil {
		t.Fatal("response drop should surface an error")
	}
	// The crucial asymmetry vs OpRequest: the server DID the work.
	if hits != 1 {
		t.Fatalf("server hits = %d, want 1", hits)
	}
}

func TestTruncatedResponseBody(t *testing.T) {
	ts, inj, c := upstream(t, strings.Repeat("x", 4096))
	inj.Add(Rule{Op: OpResponse, Nth: 1, Mode: ModeTruncate})
	body, err := get(t, c, ts.URL+"/snapshot")
	if err == nil {
		t.Fatal("truncated body should end in an error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "unexpected EOF") {
		t.Fatalf("want unexpected EOF, got %v", err)
	}
	if len(body) == 0 || len(body) >= 4096 {
		t.Fatalf("read %d bytes, want a strict prefix", len(body))
	}
}

func TestSlowIsDeterministicPerSeed(t *testing.T) {
	delays := make([]time.Duration, 2)
	for trial := 0; trial < 2; trial++ {
		inj := NewInjector(nil, 42)
		inj.Add(Rule{Op: OpRequest, Nth: 1, Mode: ModeSlow, Delay: 40 * time.Millisecond})
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		start := time.Now()
		if _, err := inj.Client(5 * time.Second).Get(ts.URL); err != nil {
			t.Fatalf("slow request failed: %v", err)
		}
		delays[trial] = time.Since(start)
		ts.Close()
	}
	// Same seed, same op sequence: both trials drew the same jitter, so they
	// sit within scheduling noise of each other and above Delay/2.
	if delays[0] < 20*time.Millisecond {
		t.Fatalf("delay %v under the Delay/2 floor", delays[0])
	}
	diff := delays[0] - delays[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 15*time.Millisecond {
		t.Fatalf("seeded delays diverge: %v vs %v", delays[0], delays[1])
	}
}

func TestPartitionBlockAndHeal(t *testing.T) {
	ts, inj, c := upstream(t, "ok")
	host := strings.TrimPrefix(ts.URL, "http://")
	inj.Block(host)
	_, err := get(t, c, ts.URL+"/v1/estimate")
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	// Other peers stay reachable: block is per-target, not global.
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "up") }))
	defer other.Close()
	if body, err := get(t, c, other.URL); err != nil || body != "up" {
		t.Fatalf("unblocked peer: body=%q err=%v", body, err)
	}
	inj.Heal()
	if body, err := get(t, c, ts.URL+"/v1/estimate"); err != nil || body != "ok" {
		t.Fatalf("after heal: body=%q err=%v", body, err)
	}
}

func TestListenerAcceptDrop(t *testing.T) {
	inj := NewInjector(nil, 1)
	inj.Add(Rule{Op: OpAccept, Nth: 1, Mode: ModeDrop})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "served")
	}))
	srv.Listener = WrapListener(ln, inj)
	srv.Start()
	defer srv.Close()

	// First connection is dropped at accept; the client's retry (a fresh
	// connection) gets through, so a plain GET with keep-alives disabled
	// succeeds on the second dial.
	c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
	resp, err := c.Get(srv.URL)
	if err != nil {
		// Depending on timing the dropped conn surfaces as EOF on the first
		// GET; one retry must succeed.
		resp, err = c.Get(srv.URL)
		if err != nil {
			t.Fatalf("second GET through fault listener: %v", err)
		}
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "served" {
		t.Fatalf("body = %q", b)
	}
	if inj.Injected() < 1 {
		t.Fatal("accept fault never fired")
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("request:9001:/v1/indexes:1:drop, response:*:/v1/cluster/snapshot:2:truncate:-1, *:node-b::3:slow=50ms:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	r := rules[0]
	if r.Op != OpRequest || r.Peer != "9001" || r.Route != "/v1/indexes" || r.Nth != 1 || r.Mode != ModeDrop {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = rules[1]
	if r.Op != OpResponse || r.Peer != "" || r.Route != "/v1/cluster/snapshot" || r.Count != -1 || r.Mode != ModeTruncate {
		t.Fatalf("rule 1 = %+v", r)
	}
	r = rules[2]
	if r.Op != OpAny || r.Peer != "node-b" || r.Route != "" || r.Nth != 3 || r.Mode != ModeSlow || r.Delay != 50*time.Millisecond || r.Count != 2 {
		t.Fatalf("rule 2 = %+v", r)
	}

	for _, bad := range []string{
		"",
		"request:only:three:parts",
		"jump:*:*:1:drop",
		"request:*:*:0:drop",
		"request:*:*:1:explode",
		"request:*:*:1:slow=fast",
		"request:*:*:1:drop:0",
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) should fail", bad)
		}
	}
}

func TestFirstFiringRuleWins(t *testing.T) {
	ts, inj, c := upstream(t, "ok")
	inj.Add(Rule{Op: OpRequest, Nth: 1, Mode: ModeDrop})
	inj.Add(Rule{Op: OpRequest, Nth: 1, Mode: ModeReset})
	_, err := get(t, c, ts.URL+"/x")
	if err == nil || strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("first rule (drop) should win, got %v", err)
	}
	// The second rule counted the first match without firing; it gets its
	// turn on the next request, after which both rules are spent.
	if _, err := get(t, c, ts.URL+"/x"); err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("second request should hit the reset rule, got %v", err)
	}
	if _, err := get(t, c, ts.URL+"/x"); err != nil {
		t.Fatalf("third request: %v", err)
	}
}
