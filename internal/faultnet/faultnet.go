// Package faultnet is the network sibling of faultfs: a failpoint-style
// fault injector for HTTP traffic between cluster nodes. Production code
// talks plain net/http; tests (and the EPFIS_NET_FAULTS env knob on
// cmd/epfis-serve) interpose an Injector as the node's http.RoundTripper
// and/or net.Listener so specific requests at specific points are dropped,
// reset, slowed, or answered with a truncated body — deterministically, so
// a partition drill that passed once passes every time.
//
// The fault model is a list of rules. Each rule matches an operation class
// (request, response, accept), a peer substring (the target host:port for
// outbound traffic, the remote address for accepts), and a route substring
// (the URL path, outbound only), and fires on the Nth matching call
// (counted per rule) for Count consecutive matches:
//
//	inj := faultnet.NewInjector(nil, 1)
//	inj.Add(faultnet.Rule{Op: faultnet.OpRequest, Route: "/v1/cluster/gossip", Nth: 3, Mode: faultnet.ModeDrop})
//
// drops the third outbound gossip exchange. Every operation is traced so
// tests can assert ordering (for example that a hinted-handoff retry
// follows the original failed send).
//
// Partitions are modelled on top of the same injector: Block(peer) makes
// every outbound request to a matching host fail with ErrPartitioned until
// Heal. Because each node owns its outbound transport, a full partition is
// symmetric blocks on both sides and an asymmetric partition (A can reach
// B, B cannot reach A) is a block on one side only.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error returned by injected faults (possibly wrapped).
var ErrInjected = errors.New("faultnet: injected fault")

// ErrPartitioned is the error outbound requests fail with while the target
// peer is blocked by Block/Partition. It wraps ErrInjected.
var ErrPartitioned = fmt.Errorf("%w: partitioned", ErrInjected)

// Op identifies one class of network operation the injector can fault.
type Op string

// Operation classes. OpAny matches every class in a Rule.
const (
	OpAny Op = "*"
	// OpRequest is an outbound HTTP request, faulted before it is sent:
	// the peer never sees it.
	OpRequest Op = "request"
	// OpResponse is an outbound HTTP request faulted after the peer
	// answered: the peer did the work, the caller never learns (drop,
	// reset) or learns only part of it (truncate).
	OpResponse Op = "response"
	// OpAccept is an inbound connection at a wrapped listener.
	OpAccept Op = "accept"
)

// Mode is what an armed rule does when it fires.
type Mode string

const (
	// ModeDrop makes the operation vanish: outbound requests fail with
	// ErrInjected, accepted connections are closed before the server
	// sees them.
	ModeDrop Mode = "drop"
	// ModeReset fails the operation with a connection-reset error — the
	// TCP-level RST a crashed peer produces.
	ModeReset Mode = "reset"
	// ModeSlow delays the operation by Delay (± seeded jitter), then lets
	// it proceed — a congested link rather than a cut one.
	ModeSlow Mode = "slow"
	// ModeTruncate applies to responses: the body is cut roughly in half
	// and then errors, so the caller sees an unexpected EOF mid-stream.
	ModeTruncate Mode = "truncate"
)

// Rule arms one fault. Zero Peer/Route match everything; OpAny (or "")
// matches every operation class.
type Rule struct {
	// Op is the operation class to match.
	Op Op
	// Peer matches operations whose peer address (target host:port for
	// outbound, remote address for accepts) contains this substring.
	Peer string
	// Route matches outbound operations whose URL path contains this
	// substring. Ignored for OpAccept.
	Route string
	// Nth fires the rule on the Nth matching operation (1-based; 0 = 1).
	Nth int
	// Count is how many consecutive matching operations fire once armed
	// (0 = 1; negative = every matching operation from the Nth on).
	Count int
	// Mode selects the fault behaviour; default ModeDrop.
	Mode Mode
	// Delay is the added latency for ModeSlow (default 10ms).
	Delay time.Duration
}

// ruleState pairs a rule with its per-rule match counter.
type ruleState struct {
	Rule
	matched int // matching operations seen so far
	fired   int // faults delivered
}

// Injector decides the fate of each network operation: it implements
// http.RoundTripper over an inner transport and wraps net.Listeners. It
// also records an operation trace ("op peer route") so tests can assert
// ordering invariants. Safe for concurrent use.
type Injector struct {
	inner http.RoundTripper

	mu        sync.Mutex
	rules     []*ruleState
	blocked   []string // peer substrings cut off by Block/Partition
	rng       *rand.Rand
	trace     []string
	injected  int
	maxTraced int
}

// NewInjector builds an injector over inner (nil = http.DefaultTransport).
// The seed makes ModeSlow jitter (and therefore the whole injector, given
// the same operation sequence) deterministic.
func NewInjector(inner http.RoundTripper, seed int64) *Injector {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Injector{
		inner:     inner,
		rng:       rand.New(rand.NewSource(seed)),
		maxTraced: 4096,
	}
}

// Add arms a rule. Rules are evaluated in insertion order; the first one
// that fires wins for a given operation.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if r.Op == "" {
		r.Op = OpAny
	}
	if r.Nth <= 0 {
		r.Nth = 1
	}
	if r.Count == 0 {
		r.Count = 1
	}
	if r.Mode == "" {
		r.Mode = ModeDrop
	}
	if r.Mode == ModeSlow && r.Delay <= 0 {
		r.Delay = 10 * time.Millisecond
	}
	in.rules = append(in.rules, &ruleState{Rule: r})
}

// Reset disarms every rule and clears counters; blocks and trace are kept.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Block cuts off every outbound request whose target host matches the peer
// substring: they fail immediately with ErrPartitioned. Blocking is
// directional — it stops traffic this injector originates, nothing else —
// so a full partition blocks on both sides and an asymmetric one on one.
func (in *Injector) Block(peer string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, b := range in.blocked {
		if b == peer {
			return
		}
	}
	in.blocked = append(in.blocked, peer)
}

// Unblock removes one peer substring from the block list.
func (in *Injector) Unblock(peer string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, b := range in.blocked {
		if b == peer {
			in.blocked = append(in.blocked[:i], in.blocked[i+1:]...)
			return
		}
	}
}

// Heal clears every block (rules stay armed; use Reset for those).
func (in *Injector) Heal() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.blocked = nil
}

// Injected reports how many faults (including partition drops) have been
// delivered.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// Trace returns a copy of the recorded "op peer route" entries, oldest
// first (bounded; oldest entries are dropped past the cap). Faulted
// operations are suffixed with " !fault".
func (in *Injector) Trace() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.trace...)
}

// check records the operation and decides its fate.
func (in *Injector) check(op Op, peer, route string) (delay time.Duration, mode Mode, err error) {
	in.mu.Lock()
	// Partition blocks trump rules: a cut link fails everything.
	if op == OpRequest {
		for _, b := range in.blocked {
			if b != "" && strings.Contains(peer, b) {
				in.injected++
				in.record(op, peer, route, true)
				in.mu.Unlock()
				return 0, ModeDrop, fmt.Errorf("%w: %s -> %s", ErrPartitioned, op, peer)
			}
		}
	}
	var fired *ruleState
	for _, rs := range in.rules {
		if rs.Op != OpAny && rs.Op != op {
			continue
		}
		if rs.Peer != "" && rs.Peer != "*" && !strings.Contains(peer, rs.Peer) {
			continue
		}
		if rs.Route != "" && rs.Route != "*" && !strings.Contains(route, rs.Route) {
			continue
		}
		rs.matched++
		if rs.matched < rs.Nth {
			continue
		}
		if rs.Count > 0 && rs.fired >= rs.Count {
			continue
		}
		if fired == nil { // first firing rule wins; later rules still count the match
			rs.fired++
			fired = rs
		}
	}
	if fired != nil {
		in.injected++
	}
	in.record(op, peer, route, fired != nil)
	if fired == nil {
		in.mu.Unlock()
		return 0, "", nil
	}
	switch fired.Mode {
	case ModeSlow:
		// Jitter in [Delay/2, Delay], drawn from the seeded source.
		d := fired.Delay/2 + time.Duration(in.rng.Int63n(int64(fired.Delay/2)+1))
		in.mu.Unlock()
		return d, ModeSlow, nil
	case ModeTruncate:
		in.mu.Unlock()
		return 0, ModeTruncate, nil
	case ModeReset:
		in.mu.Unlock()
		return 0, ModeReset, fmt.Errorf("%w: %s %s%s: connection reset by peer", ErrInjected, op, peer, route)
	default:
		in.mu.Unlock()
		return 0, ModeDrop, fmt.Errorf("%w: %s %s%s", ErrInjected, op, peer, route)
	}
}

// record appends one trace entry; callers hold in.mu.
func (in *Injector) record(op Op, peer, route string, fault bool) {
	entry := string(op) + " " + peer + route
	if fault {
		entry += " !fault"
	}
	if len(in.trace) >= in.maxTraced {
		in.trace = in.trace[1:]
	}
	in.trace = append(in.trace, entry)
}

// RoundTrip implements http.RoundTripper: OpRequest faults fire before the
// request reaches the wire, OpResponse faults after the peer answered.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	peer := req.URL.Host
	route := req.URL.Path
	delay, _, err := in.check(OpRequest, peer, route)
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if err != nil {
		return nil, err
	}
	resp, rerr := in.inner.RoundTrip(req)
	if rerr != nil {
		return nil, rerr
	}
	delay, mode, err := in.check(OpResponse, peer, route)
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			resp.Body.Close()
			return nil, req.Context().Err()
		}
	}
	if err != nil {
		resp.Body.Close()
		return nil, err
	}
	if mode == ModeTruncate {
		resp.Body = truncateBody(resp.Body, resp.ContentLength)
	}
	return resp, nil
}

// truncateBody wraps a response body so roughly half of it reads before an
// unexpected EOF — a connection cut mid-stream.
func truncateBody(body io.ReadCloser, contentLength int64) io.ReadCloser {
	limit := int64(64)
	if contentLength > 1 {
		limit = contentLength / 2
	}
	return &truncatedBody{inner: body, remain: limit}
}

type truncatedBody struct {
	inner  io.ReadCloser
	remain int64
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.remain <= 0 {
		return 0, fmt.Errorf("%w: truncated body: %w", ErrInjected, io.ErrUnexpectedEOF)
	}
	if int64(len(p)) > t.remain {
		p = p[:t.remain]
	}
	n, err := t.inner.Read(p)
	t.remain -= int64(n)
	if err == nil && t.remain <= 0 {
		err = fmt.Errorf("%w: truncated body: %w", ErrInjected, io.ErrUnexpectedEOF)
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.inner.Close() }

// WrapListener interposes the injector on an accept path: OpAccept drop and
// reset faults close the connection before the server sees it, slow faults
// delay the hand-off. A nil injector returns ln unchanged.
func WrapListener(ln net.Listener, in *Injector) net.Listener {
	if in == nil {
		return ln
	}
	return &faultListener{Listener: ln, in: in}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		delay, _, ferr := l.in.check(OpAccept, conn.RemoteAddr().String(), "")
		if delay > 0 {
			time.Sleep(delay)
		}
		if ferr != nil {
			conn.Close() // the client sees a reset/refused connection
			continue
		}
		return conn, nil
	}
}

// Client is a convenience: an *http.Client using the injector as its
// transport with the given timeout.
func (in *Injector) Client(timeout time.Duration) *http.Client {
	return &http.Client{Transport: in, Timeout: timeout}
}

// ParseRules parses the compact spec used by the EPFIS_NET_FAULTS knob:
// comma-separated rules of the form
//
//	op:peer:route:nth:mode[:count]
//
// where op is one of the Op constants (or * for any), peer and route are
// substring matches (* or empty for any), nth is the 1-based trigger
// point, mode is drop, reset, truncate, or slow[=DURATION], and count is
// the number of firings (-1 = forever). Examples:
//
//	request:9001:/v1/indexes:1:drop        drop the first PUT replicated to :9001
//	response:*:/v1/cluster/snapshot:1:truncate  cut the first snapshot stream short
//	*:node-b::1:slow=50ms:3                slow three exchanges with node-b by ~50ms
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.Split(raw, ":")
		if len(parts) < 5 || len(parts) > 6 {
			return nil, fmt.Errorf("faultnet: rule %q: want op:peer:route:nth:mode[:count]", raw)
		}
		r := Rule{Op: Op(parts[0]), Peer: parts[1], Route: parts[2]}
		if r.Peer == "*" {
			r.Peer = ""
		}
		if r.Route == "*" {
			r.Route = ""
		}
		switch r.Op {
		case OpAny, OpRequest, OpResponse, OpAccept:
		default:
			return nil, fmt.Errorf("faultnet: rule %q: unknown op %q", raw, parts[0])
		}
		n, err := strconv.Atoi(parts[3])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("faultnet: rule %q: bad nth %q", raw, parts[3])
		}
		r.Nth = n
		mode := parts[4]
		if d, ok := strings.CutPrefix(mode, string(ModeSlow)+"="); ok {
			dur, err := time.ParseDuration(d)
			if err != nil {
				return nil, fmt.Errorf("faultnet: rule %q: bad delay %q", raw, d)
			}
			r.Mode, r.Delay = ModeSlow, dur
		} else {
			switch Mode(mode) {
			case ModeDrop, ModeReset, ModeSlow, ModeTruncate:
				r.Mode = Mode(mode)
			default:
				return nil, fmt.Errorf("faultnet: rule %q: unknown mode %q", raw, mode)
			}
		}
		if len(parts) == 6 {
			c, err := strconv.Atoi(parts[5])
			if err != nil || c == 0 {
				return nil, fmt.Errorf("faultnet: rule %q: bad count %q", raw, parts[5])
			}
			r.Count = c
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, errors.New("faultnet: empty fault spec")
	}
	return rules, nil
}
