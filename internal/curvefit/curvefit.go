// Package curvefit approximates monotone curves — in this system, full-index-
// scan page-fetch (FPF) curves F(B) — by polylines with a small number of
// segments, as Subprogram LRU-Fit requires:
//
//	"We use the simple but adequate method of approximating the FPF curve
//	 using line segments ... The line segment information is captured by
//	 storing the coordinates of the end-points of the line segments."
//
// Three fitters are provided, all selecting knots from the data points so the
// polyline passes through measured values exactly:
//
//   - FitEqualSpacing: knots at (approximately) equally spaced indices. The
//     cheapest possible choice; the baseline for the fitter ablation.
//   - FitGreedy: Douglas–Peucker-style recursive splitting at the point of
//     maximum vertical error. Near-optimal in practice, O(n k).
//   - FitOptimal: dynamic program minimizing the maximum absolute vertical
//     error for exactly k segments (cf. Natarajan 1991). O(n^2 k) with an
//     O(n^2) error table; the default for LRU-Fit, since the FPF grids are
//     tiny (tens of points).
package curvefit

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is one (x, y) sample of a curve.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// PolyLine is a piecewise-linear function through Knots, which are strictly
// increasing in X. Evaluation interpolates between knots and extrapolates
// beyond the ends using the slope of the first/last segment (the paper:
// "If the buffer pool size falls outside of the range, extrapolation is used
// to generate page fetch estimates").
type PolyLine struct {
	Knots []Point `json:"knots"`
}

// Errors returned by this package.
var (
	ErrTooFewPoints = errors.New("curvefit: need at least 2 points")
	ErrBadSegments  = errors.New("curvefit: segment count must be >= 1")
	ErrUnsortedX    = errors.New("curvefit: points must be strictly increasing in x")
)

// NumSegments reports the number of line segments.
func (pl PolyLine) NumSegments() int {
	if len(pl.Knots) < 2 {
		return 0
	}
	return len(pl.Knots) - 1
}

// Validate checks the strictly-increasing-X invariant.
func (pl PolyLine) Validate() error {
	if len(pl.Knots) < 2 {
		return fmt.Errorf("%w: polyline has %d knots", ErrTooFewPoints, len(pl.Knots))
	}
	for i := 1; i < len(pl.Knots); i++ {
		if !(pl.Knots[i].X > pl.Knots[i-1].X) {
			return fmt.Errorf("%w: knot %d x=%g after x=%g", ErrUnsortedX, i, pl.Knots[i].X, pl.Knots[i-1].X)
		}
	}
	return nil
}

// Eval returns the polyline's value at x, extrapolating linearly beyond the
// first and last knots. Eval on a polyline with fewer than 2 knots returns
// the single knot's Y or 0.
func (pl PolyLine) Eval(x float64) float64 {
	k := pl.Knots
	switch len(k) {
	case 0:
		return 0
	case 1:
		return k[0].Y
	}
	if x <= k[0].X {
		return lerp(k[0], k[1], x)
	}
	if x >= k[len(k)-1].X {
		return lerp(k[len(k)-2], k[len(k)-1], x)
	}
	// Binary search for the segment containing x.
	i := sort.Search(len(k), func(i int) bool { return k[i].X >= x })
	return lerp(k[i-1], k[i], x)
}

func lerp(a, b Point, x float64) float64 {
	if b.X == a.X {
		return a.Y
	}
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}

// EvalClamped evaluates like Eval but clamps the result into [lo, hi];
// useful for fetch curves where extrapolation must never leave physical
// bounds (A <= F <= N).
func (pl PolyLine) EvalClamped(x, lo, hi float64) float64 {
	v := pl.Eval(x)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func checkFitArgs(pts []Point, segments int) error {
	if len(pts) < 2 {
		return fmt.Errorf("%w: got %d", ErrTooFewPoints, len(pts))
	}
	if segments < 1 {
		return fmt.Errorf("%w: got %d", ErrBadSegments, segments)
	}
	for i := 1; i < len(pts); i++ {
		if !(pts[i].X > pts[i-1].X) {
			return fmt.Errorf("%w: point %d x=%g after x=%g", ErrUnsortedX, i, pts[i].X, pts[i-1].X)
		}
	}
	return nil
}

// FitEqualSpacing picks segment+1 knots at equally spaced indices (always
// including the first and last point).
func FitEqualSpacing(pts []Point, segments int) (PolyLine, error) {
	if err := checkFitArgs(pts, segments); err != nil {
		return PolyLine{}, err
	}
	if segments > len(pts)-1 {
		segments = len(pts) - 1
	}
	knots := make([]Point, 0, segments+1)
	for s := 0; s <= segments; s++ {
		idx := s * (len(pts) - 1) / segments
		knots = append(knots, pts[idx])
	}
	return PolyLine{Knots: dedupeKnots(knots)}, nil
}

// FitGreedy starts from the single segment (first, last) and repeatedly
// splits the segment with the largest maximum vertical error at its argmax
// point, until the segment budget is used or the fit is exact.
func FitGreedy(pts []Point, segments int) (PolyLine, error) {
	if err := checkFitArgs(pts, segments); err != nil {
		return PolyLine{}, err
	}
	knotIdx := []int{0, len(pts) - 1}
	for len(knotIdx)-1 < segments {
		worstSeg, worstPoint, worstErr := -1, -1, 0.0
		for s := 0; s+1 < len(knotIdx); s++ {
			i, j := knotIdx[s], knotIdx[s+1]
			p, e := maxSegmentError(pts, i, j)
			if e > worstErr {
				worstSeg, worstPoint, worstErr = s, p, e
			}
		}
		if worstSeg < 0 || worstErr == 0 {
			break // exact fit already
		}
		knotIdx = append(knotIdx, 0)
		copy(knotIdx[worstSeg+2:], knotIdx[worstSeg+1:])
		knotIdx[worstSeg+1] = worstPoint
	}
	return polylineFromIndices(pts, knotIdx), nil
}

// FitOptimal computes the polyline through data points with exactly the given
// number of segments (fewer if the data has fewer points) minimizing the
// maximum absolute vertical error, by dynamic programming over knot indices.
func FitOptimal(pts []Point, segments int) (PolyLine, error) {
	if err := checkFitArgs(pts, segments); err != nil {
		return PolyLine{}, err
	}
	n := len(pts)
	if segments > n-1 {
		segments = n - 1
	}
	// segErr[i][j] = max abs error of the chord pts[i]..pts[j] over points
	// strictly between them.
	segErr := make([][]float64, n)
	for i := 0; i < n; i++ {
		segErr[i] = make([]float64, n)
		for j := i + 1; j < n; j++ {
			_, e := maxSegmentError(pts, i, j)
			segErr[i][j] = e
		}
	}
	const inf = math.MaxFloat64
	// dp[s][j] = minimal max-error covering pts[0..j] with s segments ending
	// at knot j; parent[s][j] = previous knot.
	dp := make([][]float64, segments+1)
	parent := make([][]int, segments+1)
	for s := range dp {
		dp[s] = make([]float64, n)
		parent[s] = make([]int, n)
		for j := range dp[s] {
			dp[s][j] = inf
			parent[s][j] = -1
		}
	}
	dp[0][0] = 0
	for s := 1; s <= segments; s++ {
		for j := 1; j < n; j++ {
			for i := s - 1; i < j; i++ {
				if dp[s-1][i] == inf {
					continue
				}
				e := math.Max(dp[s-1][i], segErr[i][j])
				if e < dp[s][j] {
					dp[s][j] = e
					parent[s][j] = i
				}
			}
		}
	}
	// Choose the smallest s achieving the best error at j = n-1 (the DP with
	// exactly `segments` segments can always pad with zero-length... it
	// cannot: knots are distinct indices, so fewer points than segments+1 is
	// handled by the clamp above; take s = segments).
	idx := []int{n - 1}
	s, j := segments, n-1
	for s > 0 {
		j = parent[s][j]
		if j < 0 {
			return PolyLine{}, fmt.Errorf("curvefit: internal: broken DP backtrack at s=%d", s)
		}
		idx = append(idx, j)
		s--
	}
	// Reverse.
	for a, b := 0, len(idx)-1; a < b; a, b = a+1, b-1 {
		idx[a], idx[b] = idx[b], idx[a]
	}
	return polylineFromIndices(pts, idx), nil
}

// maxSegmentError returns the index and value of the maximum absolute
// vertical deviation of points strictly between i and j from the chord
// through pts[i] and pts[j].
func maxSegmentError(pts []Point, i, j int) (int, float64) {
	argmax, maxErr := -1, 0.0
	for p := i + 1; p < j; p++ {
		e := math.Abs(pts[p].Y - lerp(pts[i], pts[j], pts[p].X))
		if e > maxErr {
			argmax, maxErr = p, e
		}
	}
	return argmax, maxErr
}

func polylineFromIndices(pts []Point, idx []int) PolyLine {
	sort.Ints(idx)
	knots := make([]Point, 0, len(idx))
	for _, i := range idx {
		knots = append(knots, pts[i])
	}
	return PolyLine{Knots: dedupeKnots(knots)}
}

func dedupeKnots(knots []Point) []Point {
	out := knots[:0]
	for _, k := range knots {
		if len(out) == 0 || k.X > out[len(out)-1].X {
			out = append(out, k)
		}
	}
	return out
}

// MaxAbsError evaluates the polyline at every data point and returns the
// largest absolute deviation.
func MaxAbsError(pl PolyLine, pts []Point) float64 {
	worst := 0.0
	for _, p := range pts {
		if e := math.Abs(pl.Eval(p.X) - p.Y); e > worst {
			worst = e
		}
	}
	return worst
}

// MeanAbsError evaluates the polyline at every data point and returns the
// mean absolute deviation. Returns 0 for empty input.
func MeanAbsError(pl PolyLine, pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pts {
		sum += math.Abs(pl.Eval(p.X) - p.Y)
	}
	return sum / float64(len(pts))
}
