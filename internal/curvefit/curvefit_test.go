package curvefit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func linearPoints(n int, slope, intercept float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		x := float64(i)
		pts[i] = Point{X: x, Y: slope*x + intercept}
	}
	return pts
}

// fpfLike generates a convex decreasing curve resembling an FPF curve:
// steep at small B, flattening to A.
func fpfLike(n int, total, accessed float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		x := 1 + float64(i)*100
		y := accessed + (total-accessed)*math.Exp(-x/300)
		pts[i] = Point{X: x, Y: y}
	}
	return pts
}

func TestEvalInterpolation(t *testing.T) {
	pl := PolyLine{Knots: []Point{{0, 0}, {10, 100}, {20, 100}}}
	cases := []struct{ x, want float64 }{
		{0, 0}, {5, 50}, {10, 100}, {15, 100}, {20, 100},
	}
	for _, c := range cases {
		if got := pl.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestEvalExtrapolation(t *testing.T) {
	pl := PolyLine{Knots: []Point{{0, 0}, {10, 100}, {20, 150}}}
	if got := pl.Eval(-5); math.Abs(got-(-50)) > 1e-12 {
		t.Errorf("Eval(-5) = %g, want -50 (first-segment slope)", got)
	}
	if got := pl.Eval(30); math.Abs(got-200) > 1e-12 {
		t.Errorf("Eval(30) = %g, want 200 (last-segment slope)", got)
	}
}

func TestEvalClamped(t *testing.T) {
	pl := PolyLine{Knots: []Point{{0, 0}, {10, 100}}}
	if got := pl.EvalClamped(-100, 0, 100); got != 0 {
		t.Errorf("EvalClamped low = %g", got)
	}
	if got := pl.EvalClamped(1000, 0, 100); got != 100 {
		t.Errorf("EvalClamped high = %g", got)
	}
	if got := pl.EvalClamped(5, 0, 100); got != 50 {
		t.Errorf("EvalClamped mid = %g", got)
	}
}

func TestEvalDegenerate(t *testing.T) {
	if got := (PolyLine{}).Eval(3); got != 0 {
		t.Errorf("empty polyline Eval = %g", got)
	}
	pl := PolyLine{Knots: []Point{{5, 42}}}
	if got := pl.Eval(99); got != 42 {
		t.Errorf("single-knot Eval = %g", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (PolyLine{Knots: []Point{{0, 0}, {1, 1}}}).Validate(); err != nil {
		t.Errorf("valid polyline rejected: %v", err)
	}
	if err := (PolyLine{Knots: []Point{{0, 0}}}).Validate(); err == nil {
		t.Error("1-knot polyline accepted")
	}
	if err := (PolyLine{Knots: []Point{{0, 0}, {0, 1}}}).Validate(); err == nil {
		t.Error("duplicate-x polyline accepted")
	}
	if err := (PolyLine{Knots: []Point{{5, 0}, {1, 1}}}).Validate(); err == nil {
		t.Error("descending-x polyline accepted")
	}
}

func TestFitArgValidation(t *testing.T) {
	fitters := map[string]func([]Point, int) (PolyLine, error){
		"equal": FitEqualSpacing, "greedy": FitGreedy, "optimal": FitOptimal,
	}
	for name, fit := range fitters {
		if _, err := fit([]Point{{0, 0}}, 3); err == nil {
			t.Errorf("%s: accepted 1 point", name)
		}
		if _, err := fit(linearPoints(5, 1, 0), 0); err == nil {
			t.Errorf("%s: accepted 0 segments", name)
		}
		if _, err := fit([]Point{{1, 0}, {0, 1}}, 1); err == nil {
			t.Errorf("%s: accepted unsorted x", name)
		}
	}
}

func TestFittersExactOnLinearData(t *testing.T) {
	pts := linearPoints(20, -3, 1000)
	fitters := map[string]func([]Point, int) (PolyLine, error){
		"equal": FitEqualSpacing, "greedy": FitGreedy, "optimal": FitOptimal,
	}
	for name, fit := range fitters {
		for _, k := range []int{1, 2, 6} {
			pl, err := fit(pts, k)
			if err != nil {
				t.Fatalf("%s(k=%d): %v", name, k, err)
			}
			if err := pl.Validate(); err != nil {
				t.Fatalf("%s(k=%d): invalid polyline: %v", name, k, err)
			}
			if e := MaxAbsError(pl, pts); e > 1e-9 {
				t.Errorf("%s(k=%d): error %g on exactly linear data", name, k, e)
			}
		}
	}
}

func TestFitKnotsAreDataPoints(t *testing.T) {
	pts := fpfLike(40, 100000, 5000)
	for name, fit := range map[string]func([]Point, int) (PolyLine, error){
		"equal": FitEqualSpacing, "greedy": FitGreedy, "optimal": FitOptimal,
	} {
		pl, err := fit(pts, 6)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range pl.Knots {
			found := false
			for _, p := range pts {
				if p == k {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: knot %+v is not a data point", name, k)
			}
		}
		// First and last data points must be knots (range coverage).
		if pl.Knots[0] != pts[0] || pl.Knots[len(pl.Knots)-1] != pts[len(pts)-1] {
			t.Errorf("%s: endpoints not preserved", name)
		}
	}
}

func TestOptimalBeatsOrMatchesOthers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(40)
		pts := make([]Point, n)
		y := 1e6
		for i := range pts {
			y -= rng.Float64() * 1e4
			pts[i] = Point{X: float64(i*50 + rng.Intn(40)), Y: y}
		}
		// Ensure strictly increasing X.
		for i := 1; i < n; i++ {
			if pts[i].X <= pts[i-1].X {
				pts[i].X = pts[i-1].X + 1
			}
		}
		k := 2 + rng.Intn(6)
		opt, err := FitOptimal(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		grd, err := FitGreedy(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := FitEqualSpacing(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		eOpt, eGrd, eEq := MaxAbsError(opt, pts), MaxAbsError(grd, pts), MaxAbsError(eq, pts)
		if eOpt > eGrd+1e-9 || eOpt > eEq+1e-9 {
			t.Errorf("trial %d k=%d: optimal %g worse than greedy %g / equal %g", trial, k, eOpt, eGrd, eEq)
		}
	}
}

func TestMoreSegmentsNeverWorse(t *testing.T) {
	pts := fpfLike(50, 2e5, 1e4)
	prev := math.MaxFloat64
	for k := 1; k <= 10; k++ {
		pl, err := FitOptimal(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		e := MaxAbsError(pl, pts)
		if e > prev+1e-9 {
			t.Errorf("k=%d: error %g worse than k=%d's %g", k, e, k-1, prev)
		}
		prev = e
	}
}

func TestSegmentBudgetClamped(t *testing.T) {
	pts := linearPoints(4, 2, 0)
	for name, fit := range map[string]func([]Point, int) (PolyLine, error){
		"equal": FitEqualSpacing, "greedy": FitGreedy, "optimal": FitOptimal,
	} {
		pl, err := fit(pts, 50)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pl.NumSegments() > 3 {
			t.Errorf("%s: %d segments from 4 points", name, pl.NumSegments())
		}
	}
}

func TestNumSegments(t *testing.T) {
	if (PolyLine{}).NumSegments() != 0 {
		t.Error("empty polyline has segments")
	}
	pl := PolyLine{Knots: []Point{{0, 0}, {1, 1}, {2, 0}}}
	if pl.NumSegments() != 2 {
		t.Errorf("NumSegments = %d, want 2", pl.NumSegments())
	}
}

func TestMeanAbsError(t *testing.T) {
	pl := PolyLine{Knots: []Point{{0, 0}, {10, 0}}}
	pts := []Point{{2, 1}, {4, -1}, {6, 3}}
	if got := MeanAbsError(pl, pts); math.Abs(got-5.0/3.0) > 1e-12 {
		t.Errorf("MeanAbsError = %g", got)
	}
	if MeanAbsError(pl, nil) != 0 {
		t.Error("MeanAbsError(empty) != 0")
	}
}

// Property: Eval is monotone on monotone polylines within the knot range.
func TestEvalMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		knots := make([]Point, n)
		x, y := 0.0, 1e6
		for i := range knots {
			x += 1 + rng.Float64()*100
			y -= rng.Float64() * 1e4
			knots[i] = Point{X: x, Y: y}
		}
		pl := PolyLine{Knots: knots}
		lo, hi := knots[0].X, knots[n-1].X
		prev := math.MaxFloat64
		for i := 0; i <= 100; i++ {
			v := pl.Eval(lo + (hi-lo)*float64(i)/100)
			if v > prev+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: fitted polylines evaluated at knot x-values reproduce data
// exactly, and max error decreases to 0 when segments = points-1.
func TestFitExactWithFullBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		pts := make([]Point, n)
		x := 0.0
		for i := range pts {
			x += 1 + rng.Float64()*10
			pts[i] = Point{X: x, Y: rng.Float64() * 1000}
		}
		pl, err := FitOptimal(pts, n-1)
		if err != nil {
			return false
		}
		return MaxAbsError(pl, pts) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
