package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeTemp drives one create→write→sync→close→rename cycle through fs,
// mirroring the catalog's persistence sequence.
func writeTemp(t *testing.T, fs FS, dir, final string, data []byte) error {
	t.Helper()
	f, err := fs.CreateTemp(dir, ".t-*.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(f.Name(), final); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	final := filepath.Join(dir, "out.json")
	if err := writeTemp(t, OS(), dir, final, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := OS().ReadFile(final)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := OS().Remove(final); err != nil {
		t.Fatal(err)
	}
	if _, err := OS().ReadFile(final); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ReadFile after Remove = %v, want ErrNotExist", err)
	}
}

func TestInjectErrorOnNthOp(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS(), 1)
	inj.Add(Rule{Op: OpRename, Nth: 2, Mode: ModeError})

	// First cycle: rename #1 passes.
	if err := writeTemp(t, inj, dir, filepath.Join(dir, "a"), []byte("x")); err != nil {
		t.Fatalf("first cycle: %v", err)
	}
	// Second cycle: rename #2 faults.
	err := writeTemp(t, inj, dir, filepath.Join(dir, "b"), []byte("y"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second cycle err = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("faulted rename left target: %v", err)
	}
	// Third cycle: the rule fired its single count; rename #3 passes.
	if err := writeTemp(t, inj, dir, filepath.Join(dir, "c"), []byte("z")); err != nil {
		t.Fatalf("third cycle: %v", err)
	}
	if got := inj.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestInjectPartialWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS(), 1)
	inj.Add(Rule{Op: OpWrite, Mode: ModePartial})

	f, err := inj.CreateTemp(dir, ".t-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
	f.Close()
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("torn write left %q, want first half", got)
	}
}

func TestInjectSlowIsDeterministicPerSeed(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		inj := NewInjector(OS(), seed)
		inj.Add(Rule{Op: OpReadFile, Mode: ModeSlow, Delay: 40 * time.Millisecond, Count: -1})
		var out []time.Duration
		for i := 0; i < 4; i++ {
			d, _, err := inj.check(OpReadFile, "x")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, d)
		}
		return out
	}
	a, b := delays(7), delays(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded delays diverged at %d: %v vs %v", i, a, b)
		}
		if a[i] < 20*time.Millisecond || a[i] > 40*time.Millisecond {
			t.Fatalf("delay %v outside [Delay/2, Delay]", a[i])
		}
	}
}

func TestPathSubstringMatch(t *testing.T) {
	inj := NewInjector(OS(), 1)
	inj.Add(Rule{Op: OpReadFile, Path: "catalog", Count: -1})
	if _, _, err := inj.check(OpReadFile, "/tmp/other.json"); err != nil {
		t.Fatalf("non-matching path faulted: %v", err)
	}
	if _, _, err := inj.check(OpReadFile, "/tmp/catalog.json"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching path err = %v, want ErrInjected", err)
	}
}

func TestTraceRecordsOrderAndFaults(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS(), 1)
	if err := writeTemp(t, inj, dir, filepath.Join(dir, "a"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, e := range inj.Trace() {
		ops = append(ops, strings.Fields(e)[0])
	}
	want := []string{"create", "write", "sync", "close", "rename", "syncdir"}
	if len(ops) != len(want) {
		t.Fatalf("trace ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s (full %v)", i, ops[i], want[i], ops)
		}
	}
}

func TestResetDisarms(t *testing.T) {
	inj := NewInjector(OS(), 1)
	inj.Add(Rule{Op: OpAny, Count: -1})
	if _, _, err := inj.check(OpSync, "x"); !errors.Is(err, ErrInjected) {
		t.Fatal("armed rule did not fire")
	}
	inj.Reset()
	if _, _, err := inj.check(OpSync, "x"); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("write:catalog:1:error, rename:*:2:slow=50ms:-1 ,sync::3:partial:4")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	if rules[0] != (Rule{Op: OpWrite, Path: "catalog", Nth: 1, Mode: ModeError}) {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1] != (Rule{Op: OpRename, Path: "", Nth: 2, Mode: ModeSlow, Delay: 50 * time.Millisecond, Count: -1}) {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2] != (Rule{Op: OpSync, Path: "", Nth: 3, Mode: ModePartial, Count: 4}) {
		t.Fatalf("rule 2 = %+v", rules[2])
	}

	for _, bad := range []string{
		"", "write:catalog", "bogus:x:1:error", "write:x:0:error",
		"write:x:1:explode", "write:x:1:slow=soon", "write:x:1:error:0",
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}
}
