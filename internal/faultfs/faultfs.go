// Package faultfs is a failpoint-style filesystem wrapper for the catalog's
// persistence path. Production code talks to the small FS interface; tests
// (and the EPFIS_FAULTS env knob on cmd/epfis-serve) swap in an Injector
// that fails, truncates, or slows down specific operations at specific
// points — deterministically, so a chaos test that passed once passes every
// time.
//
// The fault model is a list of rules. Each rule matches an operation class
// (write, sync, rename, ...) and a path substring, and fires on the Nth
// matching call (counted per rule), for Count consecutive matches:
//
//	inj := faultfs.NewInjector(faultfs.OS(), 1)
//	inj.Add(faultfs.Rule{Op: faultfs.OpRename, Path: "catalog", Nth: 2, Mode: faultfs.ModeError})
//
// fails the second rename touching a path containing "catalog" and every
// rename is traced, so tests can also assert operation order (for example
// that a sync happens before the rename that publishes it).
//
// Rules can also be parsed from a compact spec string (see ParseRules),
// which is how cmd/epfis-serve wires the EPFIS_FAULTS environment variable.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error returned by injected faults (possibly wrapped).
var ErrInjected = errors.New("faultfs: injected fault")

// Op identifies one class of filesystem operation the wrapper can fault.
type Op string

// Operation classes. OpAny matches every class in a Rule.
const (
	OpAny      Op = "*"
	OpReadFile Op = "readfile"
	OpCreate   Op = "create"
	OpAppend   Op = "append"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpSyncDir  Op = "syncdir"
	OpTruncate Op = "truncate"
)

// File is the writable temp-file surface catalog persistence needs.
type File interface {
	io.Writer
	// Name reports the file's path.
	Name() string
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Close closes the file.
	Close() error
}

// FS is the filesystem surface catalog persistence is written against.
// Implementations must be safe for concurrent use.
type FS interface {
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp pattern
	// semantics).
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens the named file for appending, creating it if missing —
	// the write-ahead-log surface.
	OpenAppend(name string) (File, error)
	// Truncate cuts the named file to size bytes (WAL torn-tail repair).
	Truncate(name string, size int64) error
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file; removing a missing file is the
	// platform error (os.ErrNotExist).
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making renames within it
	// durable.
	SyncDir(dir string) error
}

// osFS is the passthrough implementation over package os.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is advisory on some platforms; treat "not supported"
	// as success so the wrapper stays portable.
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

// Mode is what an armed rule does when it fires.
type Mode string

const (
	// ModeError fails the operation with ErrInjected (wrapped with the op
	// and path).
	ModeError Mode = "error"
	// ModePartial applies to writes: write roughly half the buffer, then
	// fail — a torn write, as left by a crash or a full disk.
	ModePartial Mode = "partial"
	// ModeSlow delays the operation by Delay (± seeded jitter), then lets
	// it proceed — a degraded disk rather than a broken one.
	ModeSlow Mode = "slow"
)

// Rule arms one fault. The zero Path matches every path; OpAny (or "")
// matches every operation class.
type Rule struct {
	// Op is the operation class to match.
	Op Op
	// Path matches operations whose primary path contains this substring.
	Path string
	// Nth fires the rule on the Nth matching operation (1-based; 0 = 1).
	Nth int
	// Count is how many consecutive matching operations fire once armed
	// (0 = 1; negative = every matching operation from the Nth on).
	Count int
	// Mode selects the fault behaviour; default ModeError.
	Mode Mode
	// Delay is the added latency for ModeSlow (default 10ms).
	Delay time.Duration
}

// ruleState pairs a rule with its per-rule match counter.
type ruleState struct {
	Rule
	matched int // matching operations seen so far
	fired   int // faults delivered
}

// Injector wraps an FS and delivers the armed faults. It also records an
// operation trace (op + path) so tests can assert ordering invariants.
// Safe for concurrent use.
type Injector struct {
	inner FS

	mu        sync.Mutex
	rules     []*ruleState
	rng       *rand.Rand // seeded; drives ModeSlow jitter only
	trace     []string
	injected  int
	maxTraced int
}

// NewInjector wraps inner. The seed makes ModeSlow jitter (and therefore
// the whole injector, given the same operation sequence) deterministic.
func NewInjector(inner FS, seed int64) *Injector {
	return &Injector{
		inner:     inner,
		rng:       rand.New(rand.NewSource(seed)),
		maxTraced: 4096,
	}
}

// Add arms a rule. Rules are evaluated in insertion order; the first one
// that fires wins for a given operation.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if r.Op == "" {
		r.Op = OpAny
	}
	if r.Nth <= 0 {
		r.Nth = 1
	}
	if r.Count == 0 {
		r.Count = 1
	}
	if r.Mode == "" {
		r.Mode = ModeError
	}
	if r.Mode == ModeSlow && r.Delay <= 0 {
		r.Delay = 10 * time.Millisecond
	}
	in.rules = append(in.rules, &ruleState{Rule: r})
}

// Reset disarms every rule and clears counters; the trace is kept.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Injected reports how many faults have been delivered.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// Trace returns a copy of the recorded "op path" entries, oldest first
// (bounded; oldest entries are dropped past the cap). Faulted operations
// are suffixed with " !fault".
func (in *Injector) Trace() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.trace...)
}

// check records the operation and decides its fate: nil error and zero
// delay means proceed; ModePartial reports partial=true so the file wrapper
// can tear the write.
func (in *Injector) check(op Op, path string) (delay time.Duration, partial bool, err error) {
	in.mu.Lock()
	var fired *ruleState
	for _, rs := range in.rules {
		if rs.Op != OpAny && rs.Op != op {
			continue
		}
		if rs.Path != "" && rs.Path != "*" && !strings.Contains(path, rs.Path) {
			continue
		}
		rs.matched++
		if rs.matched < rs.Nth {
			continue
		}
		if rs.Count > 0 && rs.fired >= rs.Count {
			continue
		}
		if fired == nil { // first firing rule wins; later rules still count the match
			rs.fired++
			fired = rs
		}
	}
	entry := string(op) + " " + path
	if fired != nil {
		in.injected++
		entry += " !fault"
	}
	if len(in.trace) >= in.maxTraced {
		in.trace = in.trace[1:]
	}
	in.trace = append(in.trace, entry)
	if fired == nil {
		in.mu.Unlock()
		return 0, false, nil
	}
	switch fired.Mode {
	case ModeSlow:
		// Jitter in [Delay/2, Delay], drawn from the seeded source.
		d := fired.Delay/2 + time.Duration(in.rng.Int63n(int64(fired.Delay/2)+1))
		in.mu.Unlock()
		return d, false, nil
	case ModePartial:
		in.mu.Unlock()
		return 0, true, nil
	default:
		in.mu.Unlock()
		return 0, false, fmt.Errorf("%w: %s %s", ErrInjected, op, path)
	}
}

// apply runs the check verdict for non-write operations.
func (in *Injector) apply(op Op, path string) error {
	delay, _, err := in.check(op, path)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if err := in.apply(OpReadFile, name); err != nil {
		return nil, err
	}
	return in.inner.ReadFile(name)
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.apply(OpCreate, dir); err != nil {
		return nil, err
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, in: in}, nil
}

func (in *Injector) OpenAppend(name string) (File, error) {
	if err := in.apply(OpAppend, name); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, in: in}, nil
}

func (in *Injector) Truncate(name string, size int64) error {
	if err := in.apply(OpTruncate, name); err != nil {
		return err
	}
	return in.inner.Truncate(name, size)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.apply(OpRename, newpath); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.apply(OpRemove, name); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

func (in *Injector) SyncDir(dir string) error {
	if err := in.apply(OpSyncDir, dir); err != nil {
		return err
	}
	return in.inner.SyncDir(dir)
}

// faultFile threads write/sync/close faults through an open file.
type faultFile struct {
	inner File
	in    *Injector
}

func (f *faultFile) Name() string { return f.inner.Name() }

func (f *faultFile) Write(p []byte) (int, error) {
	delay, partial, err := f.in.check(OpWrite, f.inner.Name())
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return 0, err
	}
	if partial {
		n, werr := f.inner.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, fmt.Errorf("%w: partial write %s", ErrInjected, f.inner.Name())
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.in.apply(OpSync, f.inner.Name()); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if err := f.in.apply(OpClose, f.inner.Name()); err != nil {
		f.inner.Close() // release the descriptor even when the close "fails"
		return err
	}
	return f.inner.Close()
}

// ParseRules parses the compact spec used by the EPFIS_FAULTS knob:
// comma-separated rules of the form
//
//	op:path:nth:mode[:count]
//
// where op is one of the Op constants (or * for any), path is a substring
// match (* or empty for any), nth is the 1-based trigger point, mode is
// error, partial, or slow[=DURATION], and count is the number of firings
// (-1 = forever). Examples:
//
//	write:catalog:1:error          fail the first catalog write
//	rename:*:2:error:-1            fail every rename from the second on
//	sync::1:slow=50ms:3            slow three fsyncs by ~50ms
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.Split(raw, ":")
		if len(parts) < 4 || len(parts) > 5 {
			return nil, fmt.Errorf("faultfs: rule %q: want op:path:nth:mode[:count]", raw)
		}
		r := Rule{Op: Op(parts[0]), Path: parts[1]}
		if r.Path == "*" {
			r.Path = ""
		}
		switch r.Op {
		case OpAny, OpReadFile, OpCreate, OpAppend, OpWrite, OpSync, OpClose, OpRename, OpRemove, OpSyncDir, OpTruncate:
		default:
			return nil, fmt.Errorf("faultfs: rule %q: unknown op %q", raw, parts[0])
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("faultfs: rule %q: bad nth %q", raw, parts[2])
		}
		r.Nth = n
		mode := parts[3]
		if d, ok := strings.CutPrefix(mode, string(ModeSlow)+"="); ok {
			dur, err := time.ParseDuration(d)
			if err != nil {
				return nil, fmt.Errorf("faultfs: rule %q: bad delay %q", raw, d)
			}
			r.Mode, r.Delay = ModeSlow, dur
		} else {
			switch Mode(mode) {
			case ModeError, ModePartial, ModeSlow:
				r.Mode = Mode(mode)
			default:
				return nil, fmt.Errorf("faultfs: rule %q: unknown mode %q", raw, mode)
			}
		}
		if len(parts) == 5 {
			c, err := strconv.Atoi(parts[4])
			if err != nil || c == 0 {
				return nil, fmt.Errorf("faultfs: rule %q: bad count %q", raw, parts[4])
			}
			r.Count = c
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, errors.New("faultfs: empty fault spec")
	}
	return rules, nil
}
