package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("epfis_test_total", "test counter")
	g := r.Gauge("epfis_test_depth", "test gauge")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("epfis_test_seconds", "test histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-102.65) > 1e-9 {
		t.Fatalf("sum = %g, want 102.65", got)
	}
	text := string(r.AppendText(nil))
	for _, want := range []string{
		`epfis_test_seconds_bucket{le="0.1"} 2`,
		`epfis_test_seconds_bucket{le="1"} 3`,
		`epfis_test_seconds_bucket{le="10"} 4`,
		`epfis_test_seconds_bucket{le="+Inf"} 5`,
		`epfis_test_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExpositionValidatesAndEscapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("epfis_routes_total", "requests",
		Label{Name: "route", Value: `GET "/v1/estimate"` + "\n\\x"})
	r.Counter("epfis_routes_total", "requests", Label{Name: "route", Value: "other"})
	r.GaugeFunc("epfis_up", "always one", func() float64 { return 1 })
	r.CounterFunc("epfis_scraped_total", "scrape bridge", func() float64 { return 42 })
	h := r.Histogram("epfis_lat_seconds", "latency", ExpBuckets(1e-6, 10, 5),
		Label{Name: "route", Value: "a"})
	h.Observe(3e-4)
	h.Observe(2)

	data := r.AppendText(nil)
	if err := ValidateExposition(data); err != nil {
		t.Fatalf("ValidateExposition: %v\n%s", err, data)
	}
	text := string(data)
	if !strings.Contains(text, `route="GET \"/v1/estimate\"\n\\x"`) {
		t.Fatalf("label escaping wrong:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE epfis_lat_seconds histogram") {
		t.Fatalf("missing histogram TYPE:\n%s", text)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("bad metric name", func() { NewRegistry().Counter("0bad", "x") })
	expectPanic("bad label name", func() {
		NewRegistry().Counter("epfis_ok_total", "x", Label{Name: "0bad", Value: "v"})
	})
	expectPanic("duplicate series", func() {
		r := NewRegistry()
		r.Counter("epfis_dup_total", "x")
		r.Counter("epfis_dup_total", "x")
	})
	expectPanic("kind mismatch", func() {
		r := NewRegistry()
		r.Counter("epfis_kind_total", "x")
		r.Gauge("epfis_kind_total", "x", Label{Name: "a", Value: "b"})
	})
	expectPanic("non-increasing bounds", func() {
		NewRegistry().Histogram("epfis_h_seconds", "x", []float64{1, 1})
	})
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(exp[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets[%d] = %g, want %g", i, exp[i], want[i])
		}
	}
	p2 := Pow2Buckets(0, 3)
	if len(p2) != 4 || p2[0] != 1 || p2[3] != 8 {
		t.Fatalf("Pow2Buckets = %v", p2)
	}
}

func TestObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("epfis_alloc_total", "x")
	g := r.Gauge("epfis_alloc_depth", "x")
	h := r.Histogram("epfis_alloc_seconds", "x", ExpBuckets(1e-6, 4, 12))
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.007)
	}); n != 0 {
		t.Fatalf("hot-path instruments allocate %.1f/op, want 0", n)
	}
}

func TestFamiliesSortedAndConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("epfis_b_total", "b")
	r.Counter("epfis_a_total", "a")
	fams := r.Families()
	if len(fams) != 2 || fams[0] != "epfis_a_total" || fams[1] != "epfis_b_total" {
		t.Fatalf("Families() = %v", fams)
	}
	// Concurrent record + scrape must be race-free (run under -race).
	h := r.Histogram("epfis_c_seconds", "c", []float64{1})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i))
		}
		close(done)
	}()
	for i := 0; i < 50; i++ {
		if err := ValidateExposition(r.AppendText(nil)); err != nil {
			t.Fatalf("concurrent scrape invalid: %v", err)
		}
	}
	<-done
}
