package obs

import (
	"context"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// TraceparentHeader is the W3C trace-context header name (HTTP headers are
// case-insensitive; Go canonicalizes this to "Traceparent").
const TraceparentHeader = "Traceparent"

// TraceID is the 16-byte W3C trace id.
type TraceID [16]byte

// SpanID is the 8-byte W3C parent/span id.
type SpanID [8]byte

// IsZero reports whether the id is all zeros (invalid per the spec).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is all zeros (invalid per the spec).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return string(appendHex(make([]byte, 0, 32), t[:])) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return string(appendHex(make([]byte, 0, 16), s[:])) }

// Traceparent is one parsed traceparent header: version 00 with a trace id,
// span id, and flags byte.
type Traceparent struct {
	Trace TraceID
	Span  SpanID
	Flags byte
}

// traceparentLen is len("00-" + 32 hex + "-" + 16 hex + "-" + 2 hex).
const traceparentLen = 55

// AppendText appends the canonical "00-<trace>-<span>-<flags>" form.
func (tp Traceparent) AppendText(dst []byte) []byte {
	dst = append(dst, '0', '0', '-')
	dst = appendHex(dst, tp.Trace[:])
	dst = append(dst, '-')
	dst = appendHex(dst, tp.Span[:])
	dst = append(dst, '-')
	return append(dst, hexDigits[tp.Flags>>4], hexDigits[tp.Flags&0xF])
}

// String renders the canonical header value (allocates; hot paths append
// into pooled buffers instead).
func (tp Traceparent) String() string {
	return string(tp.AppendText(make([]byte, 0, traceparentLen)))
}

// TraceString renders just the 32-hex-digit trace id.
func (tp Traceparent) TraceString() string {
	return string(appendHex(make([]byte, 0, 32), tp.Trace[:]))
}

const hexDigits = "0123456789abcdef"

func appendHex(dst, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0xF])
	}
	return dst
}

// ParseTraceparent parses a traceparent header value. It accepts version 00
// (and, per the spec's forward-compatibility rule, any other known-length
// non-ff version), lowercase hex only, and rejects all-zero trace or span
// ids. ok is false for an absent or malformed header — the caller falls back
// to a locally generated identity.
func ParseTraceparent(v string) (tp Traceparent, ok bool) {
	if len(v) < traceparentLen {
		return tp, false
	}
	if len(v) > traceparentLen && v[traceparentLen] != '-' {
		return tp, false // longer forms only valid for future versions with a dash
	}
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return tp, false
	}
	ver, ok1 := unhexByte(v[0], v[1])
	if !ok1 || ver == 0xff {
		return tp, false
	}
	if ver == 0 && len(v) != traceparentLen {
		return tp, false
	}
	for i := 0; i < 16; i++ {
		b, ok2 := unhexByte(v[3+2*i], v[4+2*i])
		if !ok2 {
			return tp, false
		}
		tp.Trace[i] = b
	}
	for i := 0; i < 8; i++ {
		b, ok2 := unhexByte(v[36+2*i], v[37+2*i])
		if !ok2 {
			return tp, false
		}
		tp.Span[i] = b
	}
	flags, ok3 := unhexByte(v[53], v[54])
	if !ok3 {
		return tp, false
	}
	tp.Flags = flags
	if tp.Trace.IsZero() || tp.Span.IsZero() {
		return tp, false
	}
	return tp, true
}

// unhexByte decodes two lowercase hex digits (the spec forbids uppercase).
func unhexByte(hi, lo byte) (byte, bool) {
	h, ok1 := unhexDigit(hi)
	l, ok2 := unhexDigit(lo)
	return h<<4 | l, ok1 && ok2
}

func unhexDigit(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// rngState drives the allocation-free id generator: an atomic splitmix64
// stream seeded once per process from wall time and pid. Trace ids need to
// be unique, not unguessable.
var rngState atomic.Uint64

func init() {
	rngState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 ^ 0x9E3779B97F4A7C15)
}

func randUint64() uint64 {
	x := rngState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

// NewTraceparent returns a sampled identity with fresh random ids.
func NewTraceparent() Traceparent {
	tp := Traceparent{Flags: 0x01}
	for tp.Trace.IsZero() {
		putUint64(tp.Trace[0:8], randUint64())
		putUint64(tp.Trace[8:16], randUint64())
	}
	for tp.Span.IsZero() {
		putUint64(tp.Span[:], randUint64())
	}
	return tp
}

// NewSpanID returns a fresh random span id.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		putUint64(s[:], randUint64())
	}
	return s
}

// Child derives the traceparent for an outbound hop: same trace and flags,
// fresh span id. The receiver's instrument middleware re-parents again, so
// every network edge gets its own span.
func (tp Traceparent) Child() Traceparent {
	tp.Span = NewSpanID()
	return tp
}

// ParseTraceID parses a 32-digit lowercase-hex trace id, rejecting the
// all-zero id the spec reserves as invalid.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	for i := 0; i < 16; i++ {
		b, ok := unhexByte(s[2*i], s[2*i+1])
		if !ok {
			return id, false
		}
		id[i] = b
	}
	if id.IsZero() {
		return id, false
	}
	return id, true
}

func putUint64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (56 - 8*i))
	}
}

// ctxKey keys the traceparent stored in a context.Context.
type ctxKey struct{}

// ContextWithTraceparent returns ctx carrying tp, for propagation through
// the retrying client.
func ContextWithTraceparent(ctx context.Context, tp Traceparent) context.Context {
	return context.WithValue(ctx, ctxKey{}, tp)
}

// TraceparentFrom extracts a traceparent stored by ContextWithTraceparent.
func TraceparentFrom(ctx context.Context) (Traceparent, bool) {
	tp, ok := ctx.Value(ctxKey{}).(Traceparent)
	return tp, ok
}

// Span stage names recorded by the service handlers.
const (
	StageParse    = "parse"
	StageCache    = "cache"
	StageEstimate = "estimate"
	StageEncode   = "encode"
	StageProxy    = "proxy" // cluster mode: request forwarded to the owning node
)

// Hop kinds recorded for cluster-internal sends. Each inter-node request
// stamps a child traceparent and the sender records one hop span, so a
// distributed trace shows every network edge it crossed.
const (
	HopReplicate = "replicate" // quorum replication fan-out
	HopHandoff   = "handoff"   // hinted-handoff retry delivery
	HopGossip    = "gossip"    // membership heartbeat exchange
	HopDigest    = "digest"    // anti-entropy digest pull
	HopEntry     = "entry"     // anti-entropy per-key entry pull
	HopSnapshot  = "snapshot"  // anti-entropy full snapshot pull
	HopForward   = "forward"   // ownership proxy of a client request
)

// MaxSpans bounds the per-request span buffer; stages past the limit are
// dropped rather than allocated.
const MaxSpans = 8

// Span is one recorded stage: offsets are relative to the request start.
type Span struct {
	Name  string
	Start time.Duration
	End   time.Duration
}

// TraceBuf is a pooled per-request span recorder. All methods are safe on a
// nil receiver, so handlers record stages unconditionally and tracing is
// disabled simply by not attaching a buffer.
type TraceBuf struct {
	TP        Traceparent
	Parent    SpanID // caller-supplied span id, zero when locally generated
	HasParent bool
	Route     string

	start time.Time
	spans [MaxSpans]Span
	n     int
	open  bool
}

var traceBufPool = sync.Pool{New: func() any { return new(TraceBuf) }}

// GetTraceBuf leases a reset buffer from the pool.
func GetTraceBuf(tp Traceparent, route string, start time.Time) *TraceBuf {
	tb := traceBufPool.Get().(*TraceBuf)
	tb.TP = tp
	tb.Parent = SpanID{}
	tb.HasParent = false
	tb.Route = route
	tb.start = start
	tb.n = 0
	tb.open = false
	return tb
}

// PutTraceBuf returns a buffer to the pool.
func PutTraceBuf(tb *TraceBuf) {
	if tb != nil {
		traceBufPool.Put(tb)
	}
}

// Mark closes the currently open span (if any) and opens a new one named
// name, both at time.Now. One monotonic clock read per stage boundary.
func (t *TraceBuf) Mark(name string) {
	if t == nil {
		return
	}
	now := time.Since(t.start)
	if t.open {
		t.spans[t.n-1].End = now
		t.open = false
	}
	if t.n == MaxSpans {
		return
	}
	t.spans[t.n] = Span{Name: name, Start: now}
	t.n++
	t.open = true
}

// CloseSpan ends the open span, if any.
func (t *TraceBuf) CloseSpan() {
	if t == nil || !t.open {
		return
	}
	t.spans[t.n-1].End = time.Since(t.start)
	t.open = false
}

// finish closes any open span at the request's total duration.
func (t *TraceBuf) finish(total time.Duration) {
	if t.open {
		t.spans[t.n-1].End = total
		t.open = false
	}
}

// TraceRecord is one completed request in the ring: a fixed-size value (the
// strings are route and stage constants), copied in without allocation.
// Hop records (written by RecordHop for cluster-internal sends) additionally
// carry the hop kind and peer node id; both are empty for request records.
type TraceRecord struct {
	TP        Traceparent
	Parent    SpanID
	HasParent bool
	Route     string
	Kind      string // hop kind (HopReplicate, ...); "" for served requests
	Peer      string // peer node id the hop targeted; "" for served requests
	Status    int
	Wall      time.Time // wall-clock request start
	Duration  time.Duration
	Slow      bool
	Spans     [MaxSpans]Span
	NSpans    int
}

// TraceRing keeps the last N completed traces. Writers take one short mutex
// to copy a fixed-size record — "lock-light": the critical section is a
// struct copy, with no allocation and no I/O.
type TraceRing struct {
	mu    sync.Mutex
	recs  []TraceRecord
	next  uint64 // total records ever written; next slot is next % len
	total atomic.Uint64
	slow  atomic.Uint64
}

// NewTraceRing builds a ring holding n completed traces (minimum 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{recs: make([]TraceRecord, n)}
}

// Record copies one completed request into the ring. wall is the wall-clock
// start time (the buffer's internal base is monotonic-only).
func (r *TraceRing) Record(tb *TraceBuf, status int, wall time.Time, total time.Duration, slow bool) {
	if r == nil || tb == nil {
		return
	}
	tb.finish(total)
	r.total.Add(1)
	if slow {
		r.slow.Add(1)
	}
	r.mu.Lock()
	rec := &r.recs[r.next%uint64(len(r.recs))]
	r.next++
	rec.TP = tb.TP
	rec.Parent = tb.Parent
	rec.HasParent = tb.HasParent
	rec.Route = tb.Route
	rec.Kind = ""
	rec.Peer = ""
	rec.Status = status
	rec.Wall = wall
	rec.Duration = total
	rec.Slow = slow
	rec.Spans = tb.spans
	rec.NSpans = tb.n
	r.mu.Unlock()
}

// RecordHop copies one completed cluster-internal send into the ring: the
// sender's view of a network edge, recorded under the hop's own (child)
// traceparent with parent set to the span it was derived from. kind and peer
// should be reused constants or long-lived ids — the record stores the
// strings as-is. Safe on a nil ring (tracing disabled).
func (r *TraceRing) RecordHop(tp Traceparent, parent SpanID, kind, peer, route string, status int, wall time.Time, d time.Duration) {
	if r == nil {
		return
	}
	r.total.Add(1)
	r.mu.Lock()
	rec := &r.recs[r.next%uint64(len(r.recs))]
	r.next++
	*rec = TraceRecord{
		TP:        tp,
		Parent:    parent,
		HasParent: !parent.IsZero(),
		Route:     route,
		Kind:      kind,
		Peer:      peer,
		Status:    status,
		Wall:      wall,
		Duration:  d,
	}
	rec.Spans[0] = Span{Name: kind, Start: 0, End: d}
	rec.NSpans = 1
	r.mu.Unlock()
}

// FindByTrace returns the ring's records for one trace id, newest first —
// the per-node input to cross-node trace stitching. Safe on a nil ring.
func (r *TraceRing) FindByTrace(id TraceID) []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	size := uint64(len(r.recs))
	count := n
	if count > size {
		count = size
	}
	var out []TraceRecord
	for i := uint64(1); i <= count; i++ {
		rec := r.recs[(n-i)%size]
		if rec.TP.Trace == id {
			out = append(out, rec)
		}
	}
	return out
}

// Snapshot copies the ring's contents, newest first (allocates; the debug
// endpoint is a cold path).
func (r *TraceRing) Snapshot() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	size := uint64(len(r.recs))
	count := n
	if count > size {
		count = size
	}
	out := make([]TraceRecord, 0, count)
	for i := uint64(1); i <= count; i++ {
		out = append(out, r.recs[(n-i)%size])
	}
	return out
}

// Totals reports how many traces completed and how many were slow.
func (r *TraceRing) Totals() (total, slow uint64) {
	return r.total.Load(), r.slow.Load()
}

// Len reports the ring capacity.
func (r *TraceRing) Len() int { return len(r.recs) }
