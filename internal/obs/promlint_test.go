package obs

import (
	"strings"
	"testing"
)

func TestValidateExpositionAccepts(t *testing.T) {
	good := strings.Join([]string{
		"# HELP epfis_requests_total Requests served.",
		"# TYPE epfis_requests_total counter",
		`epfis_requests_total{route="GET /v1/estimate",status="2xx"} 12`,
		`epfis_requests_total{route="GET /v1/estimate",status="5xx"} 0`,
		"# HELP epfis_lat_seconds Latency.",
		"# TYPE epfis_lat_seconds histogram",
		`epfis_lat_seconds_bucket{le="0.001"} 2`,
		`epfis_lat_seconds_bucket{le="0.01"} 5`,
		`epfis_lat_seconds_bucket{le="+Inf"} 7`,
		"epfis_lat_seconds_sum 0.042",
		"epfis_lat_seconds_count 7",
		"# TYPE epfis_up gauge",
		"epfis_up 1",
		"epfis_untyped_thing 3.5 1700000000000",
		`epfis_escaped{v="a\"b\\c\nd"} NaN`,
		"",
	}, "\n")
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"bad metric name", "0bad 1\n", "invalid metric name"},
		{"bad value", "epfis_x notanumber\n", "bad value"},
		{"bad timestamp", "epfis_x 1 soon\n", "bad timestamp"},
		{"bad label name", `epfis_x{0l="v"} 1` + "\n", "invalid label name"},
		{"unquoted label", `epfis_x{l=v} 1` + "\n", "not quoted"},
		{"unterminated label", `epfis_x{l="v} 1` + "\n", "unterminated"},
		{"bad escape", `epfis_x{l="\t"} 1` + "\n", "bad escape"},
		{"bad type", "# TYPE epfis_x frobnicator\n", "unknown metric type"},
		{"duplicate type", "# TYPE epfis_x counter\n# TYPE epfis_x counter\n", "duplicate TYPE"},
		{"type after samples", "epfis_x 1\n# TYPE epfis_x counter\n", "after its samples"},
		{"duplicate series", "epfis_x 1\nepfis_x 2\n", "duplicate series"},
		{
			"bucket without le",
			"# TYPE epfis_h histogram\nepfis_h_bucket 1\n",
			"without le",
		},
		{
			"missing +Inf",
			"# TYPE epfis_h histogram\n" + `epfis_h_bucket{le="1"} 1` + "\nepfis_h_count 1\n",
			"does not end with",
		},
		{
			"non-monotonic buckets",
			"# TYPE epfis_h histogram\n" +
				`epfis_h_bucket{le="1"} 5` + "\n" +
				`epfis_h_bucket{le="2"} 3` + "\n" +
				`epfis_h_bucket{le="+Inf"} 5` + "\n",
			"decrease",
		},
		{
			"unsorted bounds",
			"# TYPE epfis_h histogram\n" +
				`epfis_h_bucket{le="2"} 1` + "\n" +
				`epfis_h_bucket{le="1"} 2` + "\n" +
				`epfis_h_bucket{le="+Inf"} 2` + "\n",
			"not increasing",
		},
		{
			"count mismatch",
			"# TYPE epfis_h histogram\n" +
				`epfis_h_bucket{le="+Inf"} 5` + "\nepfis_h_count 4\n",
			"_count 4 != +Inf bucket 5",
		},
	}
	for _, tc := range cases {
		err := ValidateExposition([]byte(tc.text))
		if err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.text)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateExpositionHistogramGroupsByLabels(t *testing.T) {
	// Two label sets of the same histogram family validate independently.
	text := "# TYPE epfis_h histogram\n" +
		`epfis_h_bucket{route="a",le="1"} 1` + "\n" +
		`epfis_h_bucket{route="a",le="+Inf"} 2` + "\n" +
		`epfis_h_count{route="a"} 2` + "\n" +
		`epfis_h_bucket{route="b",le="1"} 9` + "\n" +
		`epfis_h_bucket{route="b",le="+Inf"} 9` + "\n" +
		`epfis_h_count{route="b"} 9` + "\n"
	if err := ValidateExposition([]byte(text)); err != nil {
		t.Fatalf("grouped histogram rejected: %v", err)
	}
	broken := strings.Replace(text, `epfis_h_count{route="b"} 9`, `epfis_h_count{route="b"} 8`, 1)
	if err := ValidateExposition([]byte(broken)); err == nil {
		t.Fatal("mismatched group accepted")
	}
}
