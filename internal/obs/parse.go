package obs

import (
	"fmt"
	"strings"
)

// ExpoSample is one parsed sample line. Name is the full sample name
// including any histogram suffix (_bucket/_sum/_count); Labels are in
// source order.
type ExpoSample struct {
	Name   string
	Labels []Label
	Value  float64
}

// ExpoFamily groups the samples of one metric family as parsed from a text
// exposition: Name is the base family name (histogram suffixes stripped for
// declared histograms), Type the declared TYPE ("" when undeclared).
type ExpoFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []ExpoSample
}

// ParseExposition parses a Prometheus text exposition (version 0.0.4) into
// its families, in source order. It is the structural complement of
// ValidateExposition: the federation endpoint uses it to merge per-node
// expositions into cluster rollups. It tolerates free-form comments and
// optional timestamps, and errors on malformed names, labels, or values.
func ParseExposition(data []byte) ([]ExpoFamily, error) {
	var (
		fams  []ExpoFamily
		index = map[string]int{} // family name -> position in fams
		typed = map[string]string{}
	)
	fam := func(name string) *ExpoFamily {
		if i, ok := index[name]; ok {
			return &fams[i]
		}
		index[name] = len(fams)
		fams = append(fams, ExpoFamily{Name: name, Type: typed[name]})
		return &fams[len(fams)-1]
	}
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) < 4 || !validMetricName(fields[2]) {
					return nil, fmt.Errorf("obs: parse line %d: malformed TYPE %q", ln+1, line)
				}
				typed[fields[2]] = strings.TrimSpace(fields[3])
				fam(fields[2]).Type = typed[fields[2]]
			case "HELP":
				if !validMetricName(fields[2]) {
					return nil, fmt.Errorf("obs: parse line %d: malformed HELP %q", ln+1, line)
				}
				help := ""
				if len(fields) == 4 {
					help = fields[3]
				}
				fam(fields[2]).Help = help
			}
			continue
		}
		name, rest, err := scanMetricName(line)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %w", ln+1, err)
		}
		labels, rest, err := scanLabels(rest)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %s: %w", ln+1, name, err)
		}
		rest = strings.TrimLeft(rest, " ")
		valueField, _, _ := strings.Cut(rest, " ")
		value, err := parseSampleValue(valueField)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %s: bad value %q", ln+1, name, valueField)
		}
		base, _ := histFamily(name, typed)
		f := fam(base)
		f.Samples = append(f.Samples, ExpoSample{Name: name, Labels: labels, Value: value})
	}
	return fams, nil
}

// LabelValue returns the value of the named label on the sample.
func (s ExpoSample) LabelValue(name string) (string, bool) {
	return labelValue(s.Labels, name)
}

// CanonicalLabels renders the sample's label set in sorted, quoted form —
// a stable identity key for matching series across expositions.
func (s ExpoSample) CanonicalLabels() string { return canonicalLabels(s.Labels) }

// CanonicalLabelsExcept is CanonicalLabels with one label (typically "le")
// excluded — the grouping key for histogram bucket series.
func (s ExpoSample) CanonicalLabelsExcept(skip string) string {
	return canonicalLabelsExcept(s.Labels, skip)
}
