package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition is a small, independent parser for the Prometheus text
// exposition format (version 0.0.4). It is deliberately not the code that
// renders the exposition — the obs-check tooling and tests use it to keep
// AppendText honest. It checks:
//
//   - line syntax: HELP/TYPE comments, sample lines
//     `name{labels} value [timestamp]`, metric and label name grammar,
//     escaped label values, parseable values (including +Inf/-Inf/NaN);
//   - at most one TYPE per family, appearing before the family's samples;
//   - no duplicate series (same name and label set);
//   - histogram shape: every `_bucket` sample carries an `le` label, each
//     bucket group ends with `le="+Inf"`, cumulative bucket counts are
//     non-decreasing, and `_count` equals the +Inf bucket.
func ValidateExposition(data []byte) error {
	p := &expoParser{
		typed:   map[string]string{},
		sampled: map[string]bool{},
		series:  map[string]bool{},
		hists:   map[string]*histCheck{},
	}
	for i, line := range strings.Split(string(data), "\n") {
		if err := p.line(line); err != nil {
			return fmt.Errorf("exposition line %d: %w", i+1, err)
		}
	}
	return p.finish()
}

// histCheck accumulates one histogram series group (family + labels sans le).
type histCheck struct {
	where   string
	bounds  []float64
	counts  []uint64
	count   uint64
	hasCnt  bool
	hasBkts bool
}

type expoParser struct {
	typed   map[string]string // family -> declared type
	sampled map[string]bool   // family -> sample seen
	series  map[string]bool   // name+labels -> seen
	hists   map[string]*histCheck
}

func (p *expoParser) line(line string) error {
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return p.comment(line)
	}
	return p.sample(line)
}

func (p *expoParser) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := p.typed[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if p.sampled[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		p.typed[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
		if !validMetricName(fields[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", fields[2])
		}
	}
	return nil
}

func (p *expoParser) sample(line string) error {
	name, rest, err := scanMetricName(line)
	if err != nil {
		return err
	}
	labels, rest, err := scanLabels(rest)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	rest = strings.TrimLeft(rest, " ")
	valueField, tsField, _ := strings.Cut(rest, " ")
	value, err := parseSampleValue(valueField)
	if err != nil {
		return fmt.Errorf("%s: bad value %q", name, valueField)
	}
	if tsField != "" {
		if _, err := strconv.ParseInt(strings.TrimSpace(tsField), 10, 64); err != nil {
			return fmt.Errorf("%s: bad timestamp %q", name, tsField)
		}
	}

	family, suffix := histFamily(name, p.typed)
	p.sampled[family] = true
	seriesKey := name + "{" + canonicalLabels(labels) + "}"
	if p.series[seriesKey] {
		return fmt.Errorf("duplicate series %s", seriesKey)
	}
	p.series[seriesKey] = true

	if suffix != "" {
		group := family + "{" + canonicalLabelsExcept(labels, "le") + "}"
		hc := p.hists[group]
		if hc == nil {
			hc = &histCheck{where: group}
			p.hists[group] = hc
		}
		switch suffix {
		case "_bucket":
			le, ok := labelValue(labels, "le")
			if !ok {
				return fmt.Errorf("%s: histogram bucket without le label", name)
			}
			bound, err := parseSampleValue(le)
			if err != nil {
				return fmt.Errorf("%s: bad le value %q", name, le)
			}
			hc.bounds = append(hc.bounds, bound)
			hc.counts = append(hc.counts, uint64(value))
			hc.hasBkts = true
		case "_count":
			hc.count = uint64(value)
			hc.hasCnt = true
		}
	}
	return nil
}

func (p *expoParser) finish() error {
	groups := make([]string, 0, len(p.hists))
	for g := range p.hists {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		hc := p.hists[g]
		if !hc.hasBkts {
			continue
		}
		last := math.Inf(-1)
		var prev uint64
		for i, b := range hc.bounds {
			if b <= last {
				return fmt.Errorf("%s: bucket bounds not increasing (le=%g after %g)", hc.where, b, last)
			}
			if hc.counts[i] < prev {
				return fmt.Errorf("%s: cumulative bucket counts decrease at le=%g", hc.where, b)
			}
			last, prev = b, hc.counts[i]
		}
		if !math.IsInf(last, 1) {
			return fmt.Errorf("%s: bucket group does not end with le=\"+Inf\"", hc.where)
		}
		if hc.hasCnt && hc.count != prev {
			return fmt.Errorf("%s: _count %d != +Inf bucket %d", hc.where, hc.count, prev)
		}
	}
	return nil
}

// histFamily maps a sample name to its family: for declared histograms the
// _bucket/_sum/_count suffixes belong to the base name.
func histFamily(name string, typed map[string]string) (family, histSuffix string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typed[base] == "histogram" {
			return base, suffix
		}
	}
	return name, ""
}

func scanMetricName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, line[i:], nil
}

// scanLabels parses an optional {k="v",...} block, returning the pairs and
// the remainder of the line.
func scanLabels(s string) ([]Label, string, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, nil
	}
	s = s[1:]
	var out []Label
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return out, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, s, fmt.Errorf("label pair missing '='")
		}
		lname := strings.TrimSpace(s[:eq])
		if !validLabelName(lname) {
			return nil, s, fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, s, fmt.Errorf("label %s value not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, s, fmt.Errorf("label %s value unterminated", lname)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return nil, s, fmt.Errorf("label %s value has truncated escape", lname)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, s, fmt.Errorf("label %s value has bad escape \\%c", lname, s[1])
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		out = append(out, Label{Name: lname, Value: val.String()})
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return out, s[1:], nil
		}
		return nil, s, fmt.Errorf("expected ',' or '}' after label %s", lname)
	}
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func labelValue(labels []Label, name string) (string, bool) {
	for _, l := range labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

func canonicalLabels(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func canonicalLabelsExcept(labels []Label, skip string) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Name == skip {
			continue
		}
		parts = append(parts, l.Name+"="+strconv.Quote(l.Value))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
