// Package obs is the estimation service's dependency-free observability
// core: fixed-slot atomic counters and gauges, preallocated log-bucketed
// histograms, a Prometheus text-format exposition writer, W3C traceparent
// propagation, and a lock-light ring buffer of completed request traces.
//
// Everything on the serving hot path is allocation-free by construction:
//
//   - instruments are registered once, up front, with their full label sets;
//     handlers hold direct *Counter / *Histogram pointers, so recording an
//     observation is one or two atomic operations with no map lookups, no
//     locks, and no garbage;
//   - histograms are fixed arrays of atomic uint64 bucket counts over bounds
//     chosen at registration (log-spaced helpers below), with the running sum
//     kept as CAS-updated float bits — the same technique the reference
//     Prometheus client uses, without importing it;
//   - scrape-time values (catalog generation, breaker state, cache counters
//     owned elsewhere) are registered as functions and evaluated only when
//     an exposition is rendered, so mirroring them costs the hot path
//     nothing.
//
// Exposition is rendered on demand by Registry.AppendText / WriteText in the
// Prometheus text format (version 0.0.4). ValidateExposition (promlint.go)
// is a small independent parser for that format, used by the obs-check
// tooling and tests to keep the writer honest.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ContentType is the Content-Type of the Prometheus text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable integer gauge.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: observation is a linear scan over
// the preallocated bounds plus two atomic updates, with no locks and no
// allocation. Bounds are upper bucket edges in increasing order; a final
// +Inf bucket is implicit.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %g <= %g", i, bs[i], bs[i-1]))
		}
	}
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state that can
// be merged with snapshots of other histograms over the same bounds — the
// building block for cluster-level metric rollups.
type HistogramSnapshot struct {
	Bounds []float64 // upper bucket edges, increasing; +Inf implicit
	Counts []uint64  // len(Bounds)+1 per-bucket (non-cumulative) counts
	Count  uint64    // total observations = sum(Counts)
	Sum    float64   // sum of observed values
}

// Snapshot copies the histogram's buckets and sum. Count is derived from the
// bucket counts so the snapshot is internally consistent even when taken
// concurrently with observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.buckets)),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Merge adds o's buckets, count, and sum into s. The bounds must match
// exactly; merging histograms over different bucket layouts is an error.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(s.Bounds) != len(o.Bounds) || len(s.Counts) != len(o.Counts) {
		return fmt.Errorf("obs: merge: bucket layouts differ (%d vs %d bounds)", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("obs: merge: bound %d differs (%g vs %g)", i, s.Bounds[i], o.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// AppendText renders the snapshot as one exposition histogram series:
// cumulative _bucket lines ending at +Inf, then _sum and _count.
func (s HistogramSnapshot) AppendText(dst []byte, name string, labels []Label) []byte {
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		dst = append(dst, name...)
		dst = append(dst, "_bucket"...)
		dst = appendLabelsWithLE(dst, labels, bound)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, cum, 10)
		dst = append(dst, '\n')
	}
	if len(s.Counts) > 0 {
		cum += s.Counts[len(s.Counts)-1]
	}
	dst = append(dst, name...)
	dst = append(dst, "_bucket"...)
	dst = appendLabelsWithLE(dst, labels, math.Inf(1))
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, cum, 10)
	dst = append(dst, '\n')

	dst = append(dst, name...)
	dst = append(dst, "_sum"...)
	dst = AppendSample(dst, "", labels, s.Sum)

	dst = append(dst, name...)
	dst = append(dst, "_count"...)
	if len(labels) > 0 {
		dst = appendLabelSet(dst, labels, "", 0)
	}
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, cum, 10)
	return append(dst, '\n')
}

// AppendSample renders one exposition sample line "name{labels} value\n"
// appended to dst. An empty name renders just the label set and value — used
// to continue a line whose name prefix is already written.
func AppendSample(dst []byte, name string, labels []Label, value float64) []byte {
	dst = append(dst, name...)
	if len(labels) > 0 {
		dst = appendLabelSet(dst, labels, "", 0)
	}
	dst = append(dst, ' ')
	dst = appendSampleValue(dst, value)
	return append(dst, '\n')
}

// ExpBuckets returns n exponentially growing bounds: start, start*factor,
// start*factor^2, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Pow2Buckets returns bounds 2^lo .. 2^hi inclusive — the natural shape for
// page-count distributions.
func Pow2Buckets(lo, hi int) []float64 {
	if hi < lo {
		panic("obs: Pow2Buckets needs hi >= lo")
	}
	out := make([]float64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, math.Ldexp(1, e))
	}
	return out
}

// Label is one name=value pair attached to a metric sample at registration.
type Label struct{ Name, Value string }

// metricKind discriminates family rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// sample is one registered series inside a family. Exactly one of counter,
// gauge, fn, hist is set.
type sample struct {
	labels  string // pre-rendered `{k="v",...}` or ""
	rawLbls []Label
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups the samples of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	samples []sample
}

// Registry is a fixed set of metric families. Registration happens at
// service construction (it takes a lock and allocates); recording and
// rendering afterwards are concurrency-safe.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register validates the family invariants shared by every constructor.
func (r *Registry) register(name, help string, kind metricKind, s sample) *family {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range s.rawLbls {
		if !validLabelName(l.Name) {
			panic("obs: invalid label name " + l.Name + " on " + name)
		}
	}
	s.labels = renderLabels(s.rawLbls, "", 0)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	} else if f.kind != kind {
		panic("obs: metric " + name + " re-registered with a different type")
	}
	for _, prev := range f.samples {
		if prev.labels == s.labels {
			panic("obs: duplicate series " + name + s.labels)
		}
	}
	f.samples = append(f.samples, s)
	return f
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, sample{rawLbls: labels, counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, sample{rawLbls: labels, gauge: g})
	return g
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for monotone atomics owned elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, sample{rawLbls: labels, fn: fn})
}

// GaugeFunc registers a gauge series evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, sample{rawLbls: labels, fn: fn})
}

// Histogram registers and returns a histogram series over bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, kindHistogram, sample{rawLbls: labels, hist: h})
	return h
}

// AppendText renders the registry in the Prometheus text exposition format,
// appended to dst. Families render in registration order, series in
// registration order within a family; histogram bucket counts are read once
// into a local snapshot so _count always equals the +Inf bucket.
func (r *Registry) AppendText(dst []byte) []byte {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		dst = append(dst, "# HELP "...)
		dst = append(dst, f.name...)
		dst = append(dst, ' ')
		dst = appendEscapedHelp(dst, f.help)
		dst = append(dst, '\n')
		dst = append(dst, "# TYPE "...)
		dst = append(dst, f.name...)
		dst = append(dst, ' ')
		dst = append(dst, f.kind.String()...)
		dst = append(dst, '\n')
		for i := range f.samples {
			s := &f.samples[i]
			switch {
			case s.hist != nil:
				dst = appendHistogram(dst, f.name, s)
			default:
				var v float64
				switch {
				case s.counter != nil:
					v = float64(s.counter.Value())
				case s.gauge != nil:
					v = float64(s.gauge.Value())
				case s.fn != nil:
					v = s.fn()
				}
				dst = append(dst, f.name...)
				dst = append(dst, s.labels...)
				dst = append(dst, ' ')
				dst = appendSampleValue(dst, v)
				dst = append(dst, '\n')
			}
		}
	}
	return dst
}

// WriteText renders the exposition to w.
func (r *Registry) WriteText(w io.Writer) error {
	_, err := w.Write(r.AppendText(nil))
	return err
}

// Families lists the registered family names in sorted order (for tests).
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}

// appendHistogram renders one histogram series: cumulative _bucket lines
// ending at +Inf, then _sum and _count, all from one consistent bucket read.
func appendHistogram(dst []byte, name string, s *sample) []byte {
	h := s.hist
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		dst = append(dst, name...)
		dst = append(dst, "_bucket"...)
		dst = appendLabelsWithLE(dst, s.rawLbls, bound)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, cum, 10)
		dst = append(dst, '\n')
	}
	cum += counts[len(counts)-1]
	dst = append(dst, name...)
	dst = append(dst, "_bucket"...)
	dst = appendLabelsWithLE(dst, s.rawLbls, math.Inf(1))
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, cum, 10)
	dst = append(dst, '\n')

	dst = append(dst, name...)
	dst = append(dst, "_sum"...)
	dst = append(dst, s.labels...)
	dst = append(dst, ' ')
	dst = appendSampleValue(dst, h.Sum())
	dst = append(dst, '\n')

	dst = append(dst, name...)
	dst = append(dst, "_count"...)
	dst = append(dst, s.labels...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, cum, 10)
	return append(dst, '\n')
}

// renderLabels pre-renders a label set; leName non-empty appends le=<bound>.
func renderLabels(labels []Label, leName string, bound float64) string {
	if len(labels) == 0 && leName == "" {
		return ""
	}
	b := make([]byte, 0, 64)
	b = appendLabelSet(b, labels, leName, bound)
	return string(b)
}

func appendLabelsWithLE(dst []byte, labels []Label, bound float64) []byte {
	return appendLabelSet(dst, labels, "le", bound)
}

func appendLabelSet(dst []byte, labels []Label, leName string, bound float64) []byte {
	dst = append(dst, '{')
	for i, l := range labels {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, l.Name...)
		dst = append(dst, '=', '"')
		dst = appendEscapedLabelValue(dst, l.Value)
		dst = append(dst, '"')
	}
	if leName != "" {
		if len(labels) > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, leName...)
		dst = append(dst, '=', '"')
		dst = appendSampleValue(dst, bound)
		dst = append(dst, '"')
	}
	return append(dst, '}')
}

// appendSampleValue renders a float as the exposition format expects:
// shortest round-trip form, with +Inf / -Inf / NaN spelled out.
func appendSampleValue(dst []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(dst, "+Inf"...)
	case math.IsInf(v, -1):
		return append(dst, "-Inf"...)
	case math.IsNaN(v):
		return append(dst, "NaN"...)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

func appendEscapedLabelValue(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

func appendEscapedHelp(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
