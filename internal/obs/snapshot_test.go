package obs

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestHistogramSnapshotMergeMatchesCombinedStream is the merge property the
// federation rollup depends on: splitting one observation stream across two
// histograms and merging their snapshots must equal observing the whole
// stream into one histogram — bucket-wise, count-wise, and (with integer
// observations, where float addition is exact) sum-wise.
func TestHistogramSnapshotMergeMatchesCombinedStream(t *testing.T) {
	bounds := ExpBuckets(1, 2, 10)
	reg := NewRegistry()
	h1 := reg.Histogram("m_one", "first shard", bounds)
	h2 := reg.Histogram("m_two", "second shard", bounds)
	hBoth := reg.Histogram("m_both", "combined stream", bounds)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := float64(rng.Intn(2048))
		if rng.Intn(2) == 0 {
			h1.Observe(v)
		} else {
			h2.Observe(v)
		}
		hBoth.Observe(v)
	}

	merged := h1.Snapshot()
	if err := merged.Merge(h2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := hBoth.Snapshot()
	if merged.Count != want.Count {
		t.Fatalf("merged Count = %d, combined stream %d", merged.Count, want.Count)
	}
	if merged.Sum != want.Sum {
		t.Fatalf("merged Sum = %g, combined stream %g", merged.Sum, want.Sum)
	}
	if !reflect.DeepEqual(merged.Bounds, want.Bounds) {
		t.Fatalf("merged Bounds = %v, combined stream %v", merged.Bounds, want.Bounds)
	}
	if !reflect.DeepEqual(merged.Counts, want.Counts) {
		t.Fatalf("merged Counts = %v, combined stream %v", merged.Counts, want.Counts)
	}
}

func TestHistogramSnapshotMergeRejectsMismatchedBounds(t *testing.T) {
	reg := NewRegistry()
	a := reg.Histogram("bounds_a", "h", []float64{1, 2}).Snapshot()
	b := reg.Histogram("bounds_b", "h", []float64{1, 3}).Snapshot()
	if err := a.Merge(b); err == nil {
		t.Fatal("merging snapshots with different bounds succeeded")
	}
	c := reg.Histogram("bounds_c", "h", []float64{1, 2, 3}).Snapshot()
	if err := a.Merge(c); err == nil {
		t.Fatal("merging snapshots with different bucket counts succeeded")
	}
}

// TestHistogramSnapshotAppendTextValidates renders a merged snapshot the way
// the federation endpoint does and checks the output is a valid exposition
// fragment that parses back to the same distribution.
func TestHistogramSnapshotAppendTextValidates(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_secs", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	snap := h.Snapshot()

	var buf []byte
	buf = append(buf, "# TYPE lat_merged histogram\n"...)
	buf = snap.AppendText(buf, "lat_merged", []Label{{Name: "node", Value: "cluster"}})
	if err := ValidateExposition(buf); err != nil {
		t.Fatalf("snapshot rendering is not a valid exposition: %v\n%s", err, buf)
	}
	fams, err := ParseExposition(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Name != "lat_merged" {
		t.Fatalf("parsed families = %+v, want one lat_merged", fams)
	}
	var count, inf float64
	for _, smp := range fams[0].Samples {
		if node, _ := smp.LabelValue("node"); node != "cluster" {
			t.Fatalf("sample %s lost the node label: %+v", smp.Name, smp.Labels)
		}
		switch {
		case smp.Name == "lat_merged_count":
			count = smp.Value
		case strings.HasSuffix(smp.Name, "_bucket"):
			if le, _ := smp.LabelValue("le"); le == "+Inf" {
				inf = smp.Value
			}
		}
	}
	if count != 3 || inf != 3 {
		t.Fatalf("_count = %g, +Inf bucket = %g, want 3 observations", count, inf)
	}
}

// TestParseExpositionStructure round-trips a registry rendering through the
// parser: family order, declared types, histogram suffix folding, and label
// values must all survive.
func TestParseExpositionStructure(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "requests", Label{Name: "route", Value: "/x"})
	c.Add(3)
	h := reg.Histogram("dur_seconds", "durations", []float64{1, 2})
	h.Observe(1.5)
	reg.GaugeFunc("up_g", "up", func() float64 { return 1 })

	fams, err := ParseExposition(reg.AppendText(nil))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ExpoFamily{}
	var order []string
	for _, f := range fams {
		byName[f.Name] = f
		order = append(order, f.Name)
	}
	if !reflect.DeepEqual(order, []string{"reqs_total", "dur_seconds", "up_g"}) {
		t.Fatalf("family order = %v, want registration order", order)
	}
	if f := byName["reqs_total"]; f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 3 {
		t.Fatalf("reqs_total = %+v", f)
	}
	if route, ok := byName["reqs_total"].Samples[0].LabelValue("route"); !ok || route != "/x" {
		t.Fatalf("reqs_total route label = %q", route)
	}
	// Histogram suffixes fold into the base family: 3 bucket lines (two
	// bounds plus +Inf), _sum, and _count.
	if f := byName["dur_seconds"]; f.Type != "histogram" || len(f.Samples) != 5 {
		t.Fatalf("dur_seconds = %d samples of type %q, want 5 histogram samples", len(f.Samples), f.Type)
	}
	if f := byName["up_g"]; f.Type != "gauge" || f.Samples[0].Value != 1 {
		t.Fatalf("up_g = %+v", f)
	}

	if _, err := ParseExposition([]byte("1bad_name 2\n")); err == nil {
		t.Fatal("malformed metric name parsed without error")
	}
	if _, err := ParseExposition([]byte("ok_name not-a-number\n")); err == nil {
		t.Fatal("malformed value parsed without error")
	}
}
