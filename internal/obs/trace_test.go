package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tp := NewTraceparent()
	s := tp.String()
	if len(s) != traceparentLen || !strings.HasPrefix(s, "00-") {
		t.Fatalf("String() = %q", s)
	}
	got, ok := ParseTraceparent(s)
	if !ok || got != tp {
		t.Fatalf("round trip failed: %q -> %+v ok=%v", s, got, ok)
	}
	if len(tp.TraceString()) != 32 {
		t.Fatalf("TraceString() = %q", tp.TraceString())
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header rejected: %q", valid)
	}
	// Future version with extra dash-separated data is accepted.
	if _, ok := ParseTraceparent("cc" + valid[2:] + "-extradata"); !ok {
		t.Fatal("future-version header with suffix rejected")
	}
	bad := []string{
		"",
		"short",
		valid[:54],                          // truncated
		valid + "x",                         // version 00 must be exact length
		"ff" + valid[2:],                    // version ff invalid
		strings.ToUpper(valid),              // uppercase hex forbidden
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e473Z-00f067aa0ba902b7-01", // non-hex
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Errorf("accepted malformed header %q", v)
		}
	}
}

func TestNewIdsUnique(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		tp := NewTraceparent()
		if tp.Trace.IsZero() || tp.Span.IsZero() {
			t.Fatal("generated zero id")
		}
		if seen[tp.Trace] {
			t.Fatal("duplicate trace id")
		}
		seen[tp.Trace] = true
	}
}

func TestContextPropagation(t *testing.T) {
	if _, ok := TraceparentFrom(context.Background()); ok {
		t.Fatal("empty context claims a traceparent")
	}
	tp := NewTraceparent()
	ctx := ContextWithTraceparent(context.Background(), tp)
	got, ok := TraceparentFrom(ctx)
	if !ok || got != tp {
		t.Fatalf("context round trip: %+v ok=%v", got, ok)
	}
}

func TestTraceBufSpans(t *testing.T) {
	start := time.Now()
	tb := GetTraceBuf(NewTraceparent(), "GET /v1/estimate", start)
	defer PutTraceBuf(tb)
	tb.Mark(StageParse)
	tb.Mark(StageCache)
	tb.Mark(StageEstimate)
	tb.Mark(StageEncode)
	tb.CloseSpan()
	if tb.n != 4 {
		t.Fatalf("n = %d, want 4", tb.n)
	}
	names := []string{StageParse, StageCache, StageEstimate, StageEncode}
	var prevEnd time.Duration
	for i, want := range names {
		sp := tb.spans[i]
		if sp.Name != want {
			t.Fatalf("span %d = %q, want %q", i, sp.Name, want)
		}
		if sp.End < sp.Start || sp.Start < prevEnd {
			t.Fatalf("span %d not ordered: %+v", i, sp)
		}
		prevEnd = sp.End
	}
	// Overflow past MaxSpans is dropped, not grown.
	for i := 0; i < MaxSpans+4; i++ {
		tb.Mark(StageParse)
	}
	if tb.n != MaxSpans {
		t.Fatalf("n = %d after overflow, want %d", tb.n, MaxSpans)
	}
}

func TestNilTraceBufSafe(t *testing.T) {
	var tb *TraceBuf
	tb.Mark(StageParse) // must not panic
	tb.CloseSpan()
	PutTraceBuf(tb)
	var ring *TraceRing
	ring.Record(tb, 200, time.Now(), time.Millisecond, false)
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(3)
	if ring.Len() != 3 {
		t.Fatalf("Len = %d", ring.Len())
	}
	for i := 0; i < 5; i++ {
		tb := GetTraceBuf(NewTraceparent(), "GET /v1/estimate", time.Now())
		tb.Mark(StageParse)
		ring.Record(tb, 200+i, time.Now(), time.Duration(i)*time.Millisecond, i%2 == 0)
		PutTraceBuf(tb)
	}
	recs := ring.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(recs))
	}
	// Newest first: statuses 204, 203, 202.
	for i, want := range []int{204, 203, 202} {
		if recs[i].Status != want {
			t.Fatalf("recs[%d].Status = %d, want %d", i, recs[i].Status, want)
		}
		if recs[i].NSpans != 1 || recs[i].Spans[0].Name != StageParse {
			t.Fatalf("recs[%d] spans = %+v", i, recs[i])
		}
	}
	total, slow := ring.Totals()
	if total != 5 || slow != 3 {
		t.Fatalf("Totals = %d, %d", total, slow)
	}
}

func TestTraceRingRecordAllocFree(t *testing.T) {
	ring := NewTraceRing(8)
	tp := NewTraceparent()
	start := time.Now()
	if n := testing.AllocsPerRun(200, func() {
		tb := GetTraceBuf(tp, "GET /v1/estimate", start)
		tb.Mark(StageParse)
		tb.Mark(StageEncode)
		ring.Record(tb, 200, start, time.Millisecond, false)
		PutTraceBuf(tb)
	}); n != 0 {
		t.Fatalf("trace record path allocates %.1f/op, want 0", n)
	}
}
