package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"epfis/internal/catalog"
)

// Serving-path allocation budgets. These are the numbers BENCH_serve.json
// gates in CI: the whole handler stack (mux routing, admission control,
// metrics, parse, estimate, encode) measured per request, excluding only the
// kernel socket I/O that testing cannot meter deterministically.
const (
	singleAllocBudget  = 8  // GET /v1/estimate, memo warm
	batch64AllocBudget = 64 // POST /v1/estimate/batch, 64 items, memo warm
)

// allocWriter is a reusable ResponseWriter: the header map and body buffer
// are allocated once and reused, so the measurement sees only the server's
// own garbage.
type allocWriter struct {
	h      http.Header
	status int
	body   []byte
}

func newAllocWriter() *allocWriter { return &allocWriter{h: make(http.Header, 4)} }

func (w *allocWriter) Header() http.Header { return w.h }

func (w *allocWriter) WriteHeader(code int) { w.status = code }

func (w *allocWriter) Write(b []byte) (int, error) {
	w.body = append(w.body, b...)
	return len(b), nil
}

func (w *allocWriter) reset() {
	w.status = 0
	w.body = w.body[:0]
	for k := range w.h {
		delete(w.h, k)
	}
}

// newServingPathServer builds the configuration the serving benchmarks and
// alloc gates use: request timeout disabled (http.TimeoutHandler spawns a
// goroutine and buffer per request, which belongs to socket-level serving,
// not the serving path under test) and admission control left on.
func newServingPathServer(t testing.TB) (*Server, *catalog.Store) {
	t.Helper()
	store := catalog.NewStore()
	if _, err := store.Put(fitStats(t, "orders", "key", 1)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, RequestTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	return srv, store
}

// rewindBody is a reusable request body.
type rewindBody struct{ r *bytes.Reader }

func (b *rewindBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *rewindBody) Close() error               { return nil }
func (b *rewindBody) rewind()                    { b.r.Seek(0, io.SeekStart) }

func batch64Body(t testing.TB) []byte {
	t.Helper()
	reqs := make([]EstimateRequest, 64)
	for i := range reqs {
		reqs[i] = EstimateRequest{Table: "orders", Column: "key", B: int64(12 + 77*i), Sigma: float64(1+i) / 33}
	}
	body, err := json.Marshal(BatchRequest{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestAllocBudgetSingle pins the steady-state allocation count of one
// memoized GET /v1/estimate through the full handler stack.
func TestAllocBudgetSingle(t *testing.T) {
	srv, _ := newServingPathServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/estimate?table=orders&column=key&b=64&sigma=0.05", nil)
	w := newAllocWriter()

	serve := func() {
		w.reset()
		srv.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d: %s", w.status, w.body)
		}
	}
	serve() // warm memo, pools, and lazily allocated header values
	if n := testing.AllocsPerRun(200, serve); n > singleAllocBudget {
		t.Errorf("single estimate allocates %.1f/op, budget %d", n, singleAllocBudget)
	}
}

// TestAllocBudgetBatch64 pins the warm batch path: 64 items through one POST.
func TestAllocBudgetBatch64(t *testing.T) {
	srv, _ := newServingPathServer(t)
	body := &rewindBody{r: bytes.NewReader(batch64Body(t))}
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate/batch", body)
	w := newAllocWriter()

	serve := func() {
		w.reset()
		body.rewind()
		req.Body = body
		srv.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d: %s", w.status, w.body)
		}
	}
	serve()
	if n := testing.AllocsPerRun(100, serve); n > batch64AllocBudget {
		t.Errorf("batch64 allocates %.1f/op, budget %d", n, batch64AllocBudget)
	}
}

// TestAllocBudgetSingleTraced pins the single-estimate path with every
// tracing feature exercised at once: an inbound traceparent to parse and
// re-parent, a slow-trace threshold of -1 so every request is flagged slow
// and copied into the ring, and the response header echo. This is the
// worst-case observability overhead, and it must fit the same budget.
func TestAllocBudgetSingleTraced(t *testing.T) {
	store := catalog.NewStore()
	if _, err := store.Put(fitStats(t, "orders", "key", 1)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, RequestTimeout: -1, SlowTrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/estimate?table=orders&column=key&b=64&sigma=0.05", nil)
	req.Header.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	w := newAllocWriter()

	serve := func() {
		w.reset()
		srv.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d: %s", w.status, w.body)
		}
	}
	serve()
	if got := w.h.Get("Traceparent"); len(got) != 55 || got[:36] != "00-4bf92f3577b34da6a3ce929d0e0e4736-" {
		t.Fatalf("response traceparent = %q, want same trace id re-parented", got)
	}
	if n := testing.AllocsPerRun(200, serve); n > singleAllocBudget {
		t.Errorf("traced single estimate allocates %.1f/op, budget %d", n, singleAllocBudget)
	}
}

// TestAllocBudgetBatch64Traced is the batch counterpart: slow-flagged and
// ring-recorded on every request, within the same 64-alloc budget.
func TestAllocBudgetBatch64Traced(t *testing.T) {
	store := catalog.NewStore()
	if _, err := store.Put(fitStats(t, "orders", "key", 1)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, RequestTimeout: -1, SlowTrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	body := &rewindBody{r: bytes.NewReader(batch64Body(t))}
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate/batch", body)
	req.Header.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	w := newAllocWriter()

	serve := func() {
		w.reset()
		body.rewind()
		req.Body = body
		srv.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d: %s", w.status, w.body)
		}
	}
	serve()
	if n := testing.AllocsPerRun(100, serve); n > batch64AllocBudget {
		t.Errorf("traced batch64 allocates %.1f/op, budget %d", n, batch64AllocBudget)
	}
}
