package service

// Metrics federation: GET /v1/cluster/metrics scrapes every live peer's
// Prometheus exposition concurrently, re-emits each sample with a per-node
// label, and appends cluster-level rollups under node="cluster" — counter
// sums and histogram bucket merges (via obs.HistogramSnapshot.Merge), so one
// scrape answers both "which node" and "how is the cluster doing". Gauges
// stay per-node: summing generations or queue depths across nodes would be
// meaningless.
//
// The output is a single valid exposition (obs.ValidateExposition-clean):
// one HELP/TYPE per family in first-seen order, per-node samples, then the
// rollups, then epfis_federation_peer_up marking which nodes answered the
// scrape. Peers that cannot answer inside the replication timeout are
// reported as down rather than stalling the scrape.

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"epfis/internal/cluster"
	"epfis/internal/obs"
)

// routeClusterMetrics serves the federated exposition. Cluster mode only.
const routeClusterMetrics = "GET /v1/cluster/metrics"

// maxFederatedBody bounds one peer's scraped exposition.
const maxFederatedBody = 8 << 20

// nodeExposition is one node's parsed exposition.
type nodeExposition struct {
	node string
	fams []obs.ExpoFamily
}

func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	self := s.cluster.SelfID()
	local, err := obs.ParseExposition(s.obs.reg.AppendText(nil))
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("render local metrics: %w", err))
		return
	}
	expos := []nodeExposition{{node: self, fams: local}}
	up := map[string]float64{self: 1}

	peers := s.cluster.Peers()
	ctx, cancel := context.WithTimeout(r.Context(), s.replTimeout)
	defer cancel()
	type scrape struct {
		node string
		fams []obs.ExpoFamily
		err  error
	}
	results := make(chan scrape, len(peers))
	n := 0
	var wg sync.WaitGroup
	for _, p := range peers {
		up[p.ID] = 0
		if p.URL == "" || p.State == cluster.StateDead {
			continue
		}
		n++
		wg.Add(1)
		go func(p cluster.PeerInfo) {
			defer wg.Done()
			fams, err := s.scrapePeerMetrics(ctx, p)
			results <- scrape{node: p.ID, fams: fams, err: err}
		}(p)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		res := <-results
		if res.err != nil {
			continue
		}
		up[res.node] = 1
		expos = append(expos, nodeExposition{node: res.node, fams: res.fams})
	}
	// Deterministic output: peers after self, sorted by node ID.
	sort.Slice(expos[1:], func(i, j int) bool { return expos[i+1].node < expos[j+1].node })

	body := renderFederated(expos, up)
	w.Header().Set("Content-Type", obs.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// scrapePeerMetrics fetches and parses one peer's Prometheus exposition.
func (s *Server) scrapePeerMetrics(ctx context.Context, p cluster.PeerInfo) ([]obs.ExpoFamily, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/metrics?format=prom", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(cluster.HeaderNode, s.cluster.SelfID())
	resp, err := s.proxyHTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: status %d", p.ID, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFederatedBody))
	if err != nil {
		return nil, err
	}
	return obs.ParseExposition(body)
}

// nodeSamples is one node's contribution to a family.
type nodeSamples struct {
	node    string
	samples []obs.ExpoSample
}

// famAgg accumulates one family across the cluster.
type famAgg struct {
	name    string
	typ     string
	help    string
	perNode []nodeSamples
}

// renderFederated merges per-node expositions into one: families in
// first-seen order, every sample re-labelled with its node, rollups under
// node="cluster", and the peer-up gauge last.
func renderFederated(expos []nodeExposition, up map[string]float64) []byte {
	var order []string
	agg := map[string]*famAgg{}
	for _, ne := range expos {
		for _, f := range ne.fams {
			a := agg[f.Name]
			if a == nil {
				a = &famAgg{name: f.Name, typ: f.Type, help: f.Help}
				agg[f.Name] = a
				order = append(order, f.Name)
			}
			if a.typ == "" {
				a.typ = f.Type
			}
			if a.help == "" {
				a.help = f.Help
			}
			if len(f.Samples) > 0 {
				a.perNode = append(a.perNode, nodeSamples{node: ne.node, samples: f.Samples})
			}
		}
	}
	var dst []byte
	for _, name := range order {
		a := agg[name]
		dst = appendFamilyHeader(dst, a.name, a.help, a.typ)
		for _, ns := range a.perNode {
			for _, smp := range ns.samples {
				dst = obs.AppendSample(dst, smp.Name,
					withLabel(smp.Labels, "node", ns.node), smp.Value)
			}
		}
		switch a.typ {
		case "counter":
			dst = appendCounterRollup(dst, a)
		case "histogram":
			dst = appendHistogramRollup(dst, a)
		}
	}
	dst = appendFamilyHeader(dst, "epfis_federation_peer_up",
		"1 when the node answered the federated metrics scrape, 0 when it did not.", "gauge")
	nodes := make([]string, 0, len(up))
	for node := range up {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		dst = obs.AppendSample(dst, "epfis_federation_peer_up",
			[]obs.Label{{Name: "node", Value: node}}, up[node])
	}
	return dst
}

// appendFamilyHeader emits the HELP/TYPE comments for one family.
func appendFamilyHeader(dst []byte, name, help, typ string) []byte {
	if help != "" {
		dst = append(dst, "# HELP "...)
		dst = append(dst, name...)
		dst = append(dst, ' ')
		dst = append(dst, help...)
		dst = append(dst, '\n')
	}
	if typ != "" {
		dst = append(dst, "# TYPE "...)
		dst = append(dst, name...)
		dst = append(dst, ' ')
		dst = append(dst, typ...)
		dst = append(dst, '\n')
	}
	return dst
}

// withLabel returns labels plus one more, without mutating the input.
func withLabel(labels []obs.Label, name, value string) []obs.Label {
	out := make([]obs.Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, obs.Label{Name: name, Value: value})
}

// labelsWithout returns labels minus the named one.
func labelsWithout(labels []obs.Label, skip string) []obs.Label {
	out := make([]obs.Label, 0, len(labels))
	for _, l := range labels {
		if l.Name != skip {
			out = append(out, l)
		}
	}
	return out
}

// appendCounterRollup sums counter series with identical label sets across
// nodes and emits one node="cluster" sample per set.
func appendCounterRollup(dst []byte, a *famAgg) []byte {
	type group struct {
		labels []obs.Label
		sum    float64
	}
	var order []string
	groups := map[string]*group{}
	for _, ns := range a.perNode {
		for _, smp := range ns.samples {
			k := smp.CanonicalLabels()
			g := groups[k]
			if g == nil {
				g = &group{labels: smp.Labels}
				groups[k] = g
				order = append(order, k)
			}
			g.sum += smp.Value
		}
	}
	for _, k := range order {
		g := groups[k]
		dst = obs.AppendSample(dst, a.name, withLabel(g.labels, "node", "cluster"), g.sum)
	}
	return dst
}

// appendHistogramRollup reconstructs each node's histogram series from its
// cumulative bucket samples, merges them bucket-wise across nodes per label
// set, and renders the merged snapshots under node="cluster". A label set
// whose bounds disagree across nodes (mixed binary versions) is skipped
// rather than merged wrongly.
func appendHistogramRollup(dst []byte, a *famAgg) []byte {
	type group struct {
		labels []obs.Label // sans le
		snap   obs.HistogramSnapshot
		begun  bool
		bad    bool
	}
	var order []string
	groups := map[string]*group{}
	for _, ns := range a.perNode {
		type build struct {
			labels []obs.Label
			bounds []float64
			cum    []float64
			sum    float64
		}
		var bOrder []string
		builds := map[string]*build{}
		for _, smp := range ns.samples {
			k := smp.CanonicalLabelsExcept("le")
			b := builds[k]
			if b == nil {
				b = &build{}
				builds[k] = b
				bOrder = append(bOrder, k)
			}
			switch {
			case strings.HasSuffix(smp.Name, "_bucket"):
				le, ok := smp.LabelValue("le")
				if !ok {
					continue
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					continue
				}
				b.bounds = append(b.bounds, bound)
				b.cum = append(b.cum, smp.Value)
				if b.labels == nil {
					b.labels = labelsWithout(smp.Labels, "le")
				}
			case strings.HasSuffix(smp.Name, "_sum"):
				b.sum = smp.Value
				if b.labels == nil {
					b.labels = smp.Labels
				}
			}
		}
		for _, k := range bOrder {
			b := builds[k]
			snap, ok := histSnapshotOf(b.bounds, b.cum, b.sum)
			g := groups[k]
			if g == nil {
				g = &group{labels: b.labels}
				groups[k] = g
				order = append(order, k)
			}
			if !ok {
				g.bad = true
				continue
			}
			if !g.begun {
				g.snap, g.begun = snap, true
				continue
			}
			if err := g.snap.Merge(snap); err != nil {
				g.bad = true
			}
		}
	}
	for _, k := range order {
		g := groups[k]
		if g.bad || !g.begun {
			continue
		}
		dst = g.snap.AppendText(dst, a.name, withLabel(g.labels, "node", "cluster"))
	}
	return dst
}

// histSnapshotOf rebuilds a non-cumulative snapshot from scraped cumulative
// bucket samples: sort by bound, require a final +Inf bucket and
// non-decreasing counts, then de-cumulate.
func histSnapshotOf(bounds, cum []float64, sum float64) (obs.HistogramSnapshot, bool) {
	if len(bounds) == 0 || len(bounds) != len(cum) {
		return obs.HistogramSnapshot{}, false
	}
	type pair struct{ bound, cum float64 }
	ps := make([]pair, len(bounds))
	for i := range bounds {
		ps[i] = pair{bound: bounds[i], cum: cum[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].bound < ps[j].bound })
	if !math.IsInf(ps[len(ps)-1].bound, 1) {
		return obs.HistogramSnapshot{}, false
	}
	snap := obs.HistogramSnapshot{
		Bounds: make([]float64, 0, len(ps)-1),
		Counts: make([]uint64, 0, len(ps)),
		Sum:    sum,
	}
	prev := 0.0
	for i, p := range ps {
		if p.cum < prev {
			return obs.HistogramSnapshot{}, false
		}
		c := uint64(p.cum - prev)
		prev = p.cum
		if i < len(ps)-1 {
			snap.Bounds = append(snap.Bounds, p.bound)
		}
		snap.Counts = append(snap.Counts, c)
		snap.Count += c
	}
	return snap, true
}
