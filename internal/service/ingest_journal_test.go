package service

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/core"
)

// postBatch delivers one identified batch and returns the response status.
func postBatch(t testing.TB, ts *httptest.Server, req IngestRequest) int {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		status := resp.StatusCode
		resp.Body.Close()
		if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			return status
		}
		if time.Now().After(deadline) {
			return status
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIngestJournalCrashReplayBitExact is the crash-durability acceptance for
// ingestion: a scan is streamed partway into a WAL-backed service — including
// a batch the at-least-once producer delivered twice — then the process
// "dies" (server closed, store closed, catalog reopened from disk). The
// restarted service must replay every acked batch from the WAL ingest
// journal, dedup the redelivered one, accept the remainder of the scan, and
// republish an entry bit-exact with running offline LRU-Fit over the full
// trace in one process.
func TestIngestJournalCrashReplayBitExact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.json")
	store, err := catalog.OpenWAL(path, catalog.WALOptions{CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)

	ds, meta := ingestDataset(t, "lineitem", "partkey", 7)
	trace := ds.Trace()
	split := len(trace) * 3 / 5
	split2 := split + 2000

	// Phase 1: stream 60% of the scan in identified batches, then deliver one
	// batch twice — the duplicate must be acked (202) but fed only once.
	postIngest(t, ts, meta, trace[:split], true, rand.New(rand.NewSource(17)))
	dup := IngestRequest{Table: meta.Table, Column: meta.Column, Pages: trace[split:split2],
		T: meta.T, N: meta.N, I: meta.I, BatchID: "dup-1"}
	for i := 0; i < 2; i++ {
		if status := postBatch(t, ts, dup); status != http.StatusAccepted {
			t.Fatalf("delivery %d of dup-1 = %d, want 202", i+1, status)
		}
	}

	// Crash: drain the worker so every acked batch reached the accumulator,
	// then tear the process state down to the on-disk files alone.
	srv.Close()
	ts.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := catalog.OpenWAL(path, catalog.WALOptions{CheckpointEvery: 3})
	if err != nil {
		t.Fatalf("reopening catalog after crash: %v", err)
	}
	defer re.Close()
	recs := re.IngestRecords()
	if len(recs) == 0 {
		t.Fatal("no journaled ingest batches recovered from the WAL")
	}
	dups := 0
	for _, raw := range recs {
		if bytes.Contains(raw, []byte(`"id":"dup-1"`)) {
			dups++
		}
	}
	if dups != 2 {
		t.Fatalf("journal holds %d frames for the redelivered batch, want 2 (both were acked)", dups)
	}

	// Restart: the service replays the journal before serving. The second
	// dup-1 frame must be deduplicated during replay too.
	srv2, err := New(Config{Store: re})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	// A third redelivery after the restart is still recognized.
	if status := postBatch(t, ts2, dup); status != http.StatusAccepted {
		t.Fatalf("post-restart redelivery of dup-1 = %d, want 202", status)
	}

	// Phase 2: stream the rest of the scan; the window completes and the
	// worker republishes.
	postIngest(t, ts2, meta, trace[split2:], true, rand.New(rand.NewSource(18)))
	srv2.Close()

	got, err := re.Snapshot().Get("lineitem", "partkey")
	if err != nil {
		t.Fatalf("republished entry missing after crash replay: %v", err)
	}
	want, err := core.LRUFit(trace, meta, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.T != want.T || got.N != want.N || got.I != want.I ||
		got.BMin != want.BMin || got.BMax != want.BMax ||
		got.FMin != want.FMin || got.C != want.C ||
		got.GridPoints != want.GridPoints {
		t.Fatalf("entry diverges from offline LRU-Fit after crash replay:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Curve.Knots) != len(want.Curve.Knots) {
		t.Fatalf("curve has %d knots, offline fit %d", len(got.Curve.Knots), len(want.Curve.Knots))
	}
	for i, k := range want.Curve.Knots {
		if got.Curve.Knots[i] != k {
			t.Fatalf("knot %d = %+v, offline fit %+v (must be bit-exact)", i, got.Curve.Knots[i], k)
		}
	}
}
