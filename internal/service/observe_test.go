package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/obs"
)

// newObsServer builds a server with every request flagged slow, so one
// request is enough to land a span breakdown in the trace ring.
func newObsServer(t testing.TB) (*Server, *catalog.Store) {
	t.Helper()
	store := catalog.NewStore()
	if _, err := store.Put(fitStats(t, "orders", "key", 1)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, SlowTrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	return srv, store
}

func TestTraceparentEchoAndPropagation(t *testing.T) {
	srv, _ := newObsServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// An inbound traceparent is re-parented: same trace id, fresh span id.
	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/estimate?table=orders&column=key&b=64&sigma=0.05", nil)
	req.Header.Set("Traceparent", inbound)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	echoed := resp.Header.Get("Traceparent")
	tp, ok := obs.ParseTraceparent(echoed)
	if !ok {
		t.Fatalf("response traceparent %q unparseable", echoed)
	}
	if got := tp.TraceString(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id not propagated: %s", got)
	}
	if tp.Span.String() == "00f067aa0ba902b7" {
		t.Fatal("span id not re-parented")
	}

	// Malformed and absent headers fall back to locally generated ids.
	for _, hdr := range []string{"", "not-a-traceparent", strings.ToUpper(inbound)} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if hdr != "" {
			req.Header.Set("Traceparent", hdr)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		tp, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
		if !ok {
			t.Fatalf("header %q: response traceparent %q unparseable", hdr, resp.Header.Get("Traceparent"))
		}
		if tp.TraceString() == "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Fatalf("header %q: malformed input must not be propagated", hdr)
		}
	}
}

func TestClientPropagatesTraceparent(t *testing.T) {
	srv, _ := newObsServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := NewClient(ClientConfig{BaseURL: ts.URL, HTTPClient: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}

	// A caller-provided traceparent travels Client -> service and shows up
	// with its parent span in the trace ring.
	tp := obs.NewTraceparent()
	ctx := obs.ContextWithTraceparent(context.Background(), tp)
	if _, err := client.Estimate(ctx, EstimateRequest{Table: "orders", Column: "key", B: 64, Sigma: 0.05}); err != nil {
		t.Fatal(err)
	}
	// Without one, the client generates a fresh identity per call.
	if _, err := client.Estimate(context.Background(), EstimateRequest{Table: "orders", Column: "key", B: 64, Sigma: 0.05}); err != nil {
		t.Fatal(err)
	}

	found := false
	for _, rec := range srv.obs.ring.Snapshot() {
		if rec.TP.Trace == tp.Trace {
			found = true
			if !rec.HasParent || rec.Parent != tp.Span {
				t.Fatalf("trace %s recorded without client parent span: %+v", tp.TraceString(), rec)
			}
			if rec.TP.Span == tp.Span {
				t.Fatal("server reused the client span id")
			}
		}
	}
	if !found {
		t.Fatalf("client trace %s not found in ring", tp.TraceString())
	}
}

func TestDebugTracesSpanBreakdown(t *testing.T) {
	srv, _ := newObsServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A memo-cold estimate records all four stages.
	resp, err := ts.Client().Get(ts.URL + "/v1/estimate?table=orders&column=key&b=512&sigma=0.3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var out struct {
		Ring   int    `json:"ring"`
		Total  uint64 `json:"total"`
		Slow   uint64 `json:"slow"`
		Traces []struct {
			Trace          string  `json:"trace"`
			Route          string  `json:"route"`
			Status         int     `json:"status"`
			DurationMicros float64 `json:"durationMicros"`
			Slow           bool    `json:"slow"`
			Spans          []struct {
				Name        string  `json:"name"`
				StartMicros float64 `json:"startMicros"`
				DurMicros   float64 `json:"durMicros"`
			} `json:"spans"`
		} `json:"traces"`
	}
	r2, err := ts.Client().Get(ts.URL + "/debug/traces?slow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Ring != DefaultTraceRing || out.Total == 0 || out.Slow == 0 {
		t.Fatalf("trace totals: %+v", out)
	}
	var est *struct {
		Trace          string  `json:"trace"`
		Route          string  `json:"route"`
		Status         int     `json:"status"`
		DurationMicros float64 `json:"durationMicros"`
		Slow           bool    `json:"slow"`
		Spans          []struct {
			Name        string  `json:"name"`
			StartMicros float64 `json:"startMicros"`
			DurMicros   float64 `json:"durMicros"`
		} `json:"spans"`
	}
	for i := range out.Traces {
		if out.Traces[i].Route == routeEstimate {
			est = &out.Traces[i]
			break
		}
	}
	if est == nil {
		t.Fatalf("no %s trace in ring: %+v", routeEstimate, out.Traces)
	}
	if est.Status != http.StatusOK || !est.Slow || len(est.Trace) != 32 {
		t.Fatalf("estimate trace: %+v", est)
	}
	want := []string{obs.StageParse, obs.StageCache, obs.StageEstimate, obs.StageEncode}
	if len(est.Spans) != len(want) {
		t.Fatalf("spans = %+v, want %v", est.Spans, want)
	}
	for i, name := range want {
		if est.Spans[i].Name != name {
			t.Fatalf("span %d = %q, want %q", i, est.Spans[i].Name, name)
		}
	}
}

func TestTracingDisabled(t *testing.T) {
	store := catalog.NewStore()
	if _, err := store.Put(fitStats(t, "orders", "key", 1)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, TraceRing: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/estimate?table=orders&column=key&b=64&sigma=0.05")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Traceparent"); got != "" {
		t.Fatalf("disabled tracing still echoes traceparent %q", got)
	}
	r2, err := ts.Client().Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces status = %d with tracing disabled", r2.StatusCode)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	srv, _ := newObsServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Drive a little traffic so histograms and counters are non-empty.
	for i := 0; i < 4; i++ {
		resp, err := ts.Client().Get(ts.URL + "/v1/estimate?table=orders&column=key&b=64&sigma=0.05")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/estimate?table=nosuch&column=key&b=64&sigma=0.05")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Default stays the JSON document.
	dflt, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer dflt.Body.Close()
	if ct := dflt.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default /metrics Content-Type = %q", ct)
	}
	var doc map[string]any
	if err := json.NewDecoder(dflt.Body).Decode(&doc); err != nil {
		t.Fatalf("default /metrics not JSON: %v", err)
	}
	if _, ok := doc["routes"]; !ok {
		t.Fatalf("JSON document lost its routes map: %v", doc)
	}

	// Both negotiation forms yield a valid Prometheus exposition.
	fetch := func(build func() *http.Request) string {
		t.Helper()
		resp, err := ts.Client().Do(build())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
			t.Fatalf("prom /metrics Content-Type = %q", ct)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateExposition(data); err != nil {
			t.Fatalf("invalid exposition: %v\n%s", err, data)
		}
		return string(data)
	}
	byQuery := fetch(func() *http.Request {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics?format=prom", nil)
		return req
	})
	fetch(func() *http.Request {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		req.Header.Set("Accept", "text/plain")
		return req
	})

	for _, want := range []string{
		`epfis_http_requests_total{route="GET /v1/estimate",status="2xx"} 4`,
		`epfis_http_requests_total{route="GET /v1/estimate",status="4xx"} 1`,
		`epfis_http_request_duration_seconds_bucket{route="GET /v1/estimate",le="+Inf"} 5`,
		`epfis_index_estimates_total{index="orders.key"} 4`,
		"epfis_estimate_buffer_pages_bucket",
		"epfis_estimate_sigma_bucket",
		"epfis_cache_hits_total",
		"epfis_catalog_generation 1",
		"epfis_degraded 0",
		"epfis_draining 0",
		"epfis_traces_total",
		"epfis_build_info{",
		"epfis_uptime_seconds",
	} {
		if !strings.Contains(byQuery, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestShedAndDrainingStatusLabels(t *testing.T) {
	store := catalog.NewStore()
	if _, err := store.Put(fitStats(t, "orders", "key", 1)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, MaxInflight: 1, RequestTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Saturate the estimate route's admission semaphore directly, then one
	// request sheds with 429.
	srv.inflight[routeEstimate] <- struct{}{}
	resp, err := ts.Client().Get(ts.URL + "/v1/estimate?table=orders&column=key&b=64&sigma=0.05")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated route status = %d, want 429", resp.StatusCode)
	}
	<-srv.inflight[routeEstimate]

	// Draining healthz answers 503.
	srv.draining.Store(true)
	r2, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", r2.StatusCode)
	}
	srv.draining.Store(false)

	r3, err := ts.Client().Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	data, err := io.ReadAll(r3.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(data); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	text := string(data)
	for _, want := range []string{
		`epfis_http_requests_total{route="GET /v1/estimate",status="429"} 1`,
		`epfis_http_requests_total{route="GET /healthz",status="503"} 1`,
		"epfis_admission_shed_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	srv, _ := newObsServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var h Health
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.GoVersion == "" || h.Version == "" || h.Revision == "" {
		t.Fatalf("healthz missing build info: %+v", h)
	}
	if h.Generation != 1 || h.UptimeSeconds < 0 {
		t.Fatalf("healthz generation/uptime: %+v", h)
	}
}

func TestPutIndexRegistersEstimateCounter(t *testing.T) {
	srv, _ := newObsServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := fitStats(t, "users", "id", 7)
	body, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/indexes/users/id", strings.NewReader(string(body)))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put status %d", resp.StatusCode)
	}

	r2, err := ts.Client().Get(ts.URL + "/v1/estimate?table=users&column=id&b=64&sigma=0.05")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()

	r3, err := ts.Client().Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	data, err := io.ReadAll(r3.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `epfis_index_estimates_total{index="users.id"} 1`) {
		t.Fatalf("installed index has no estimate counter:\n%s", data)
	}
}

func TestSlowTraceThreshold(t *testing.T) {
	store := catalog.NewStore()
	if _, err := store.Put(fitStats(t, "orders", "key", 1)); err != nil {
		t.Fatal(err)
	}
	// A generous threshold: microsecond requests must not be flagged slow.
	srv, err := New(Config{Store: store, SlowTrace: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/estimate?table=orders&column=key&b=64&sigma=0.05")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	total, slow := srv.obs.ring.Totals()
	if total == 0 || slow != 0 {
		t.Fatalf("totals = %d/%d, want >0 total and 0 slow", total, slow)
	}
}
