package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/stats"
)

// fitStats runs the real LRU-Fit pipeline over a small synthetic index, so
// service responses are compared against genuine paper-shaped statistics.
func fitStats(t testing.TB, table, column string, seed int64) *stats.IndexStats {
	t.Helper()
	cfg := datagen.Config{Name: table, Column: column, N: 20_000, I: 500, R: 40, K: 0.2, Seed: seed}
	ds, err := datagen.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := core.Meta{Table: table, Column: column, T: ds.T, N: cfg.N, I: cfg.I}
	st, err := core.LRUFit(ds.Trace(), meta, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// newTestServer builds a service over an in-memory store seeded with one
// fitted index, returning both so tests can compare against direct calls.
func newTestServer(t testing.TB) (*Server, *catalog.Store, *stats.IndexStats) {
	t.Helper()
	store := catalog.NewStore()
	st := fitStats(t, "orders", "key", 1)
	if _, err := store.Put(st); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return srv, store, st
}

func getJSON(t testing.TB, ts *httptest.Server, path string, status int, out any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != status {
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		t.Fatalf("GET %s = %d, want %d (body %s)", path, resp.StatusCode, status, body.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
}

func TestEstimateMatchesDirectBitForBit(t *testing.T) {
	srv, _, st := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		b        int64
		sigma, s float64
	}{
		{12, 0.001, 1}, {50, 0.05, 1}, {100, 0.1, 1}, {250, 0.5, 1},
		{500, 1, 1}, {50, 0.1, 0.25}, {400, 0.37, 0.031}, {1_000_000, 0.8, 1},
	}
	for _, tc := range cases {
		want, err := core.EstimateFetches(st, tc.b, tc.sigma, tc.s)
		if err != nil {
			t.Fatal(err)
		}
		var got EstimateResponse
		path := fmt.Sprintf("/v1/estimate?table=orders&column=key&b=%d&sigma=%g&s=%g", tc.b, tc.sigma, tc.s)
		getJSON(t, ts, path, http.StatusOK, &got)
		if got.Fetches != want {
			t.Errorf("estimate(B=%d sigma=%g s=%g) = %v over HTTP, %v direct", tc.b, tc.sigma, tc.s, got.Fetches, want)
		}
		if got.Generation != 1 {
			t.Errorf("generation = %d, want 1", got.Generation)
		}
	}

	// detail=1 exposes every intermediate Est-IO term, also bit-for-bit.
	wantDetail, err := core.EstIO(st, core.Input{B: 100, Sigma: 0.1, S: 1}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got EstimateResponse
	getJSON(t, ts, "/v1/estimate?table=orders&column=key&b=100&sigma=0.1&detail=1", http.StatusOK, &got)
	if got.Detail == nil {
		t.Fatal("detail=1 returned no detail")
	}
	if *got.Detail != wantDetail {
		t.Errorf("detail = %+v, want %+v", *got.Detail, wantDetail)
	}
}

func TestEstimateValidation(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		path    string
		status  int
		errFrag string
	}{
		{"/v1/estimate?table=orders&column=key&b=0&sigma=0.1", 400, "B must be >= 1"},
		{"/v1/estimate?table=orders&column=key&b=10&sigma=1.5", 400, "sigma must be in [0, 1]"},
		{"/v1/estimate?table=orders&column=key&b=10&sigma=0.1&s=0", 400, "S must be in (0, 1]"},
		{"/v1/estimate?table=orders&column=key&b=10&sigma=0.1&s=2", 400, "S must be in (0, 1]"},
		{"/v1/estimate?table=orders&column=key&b=ten&sigma=0.1", 400, "parameter b"},
		{"/v1/estimate?table=orders&column=key&sigma=0.1", 400, "parameter b"},
		{"/v1/estimate?b=10&sigma=0.1", 400, "table and column are required"},
		{"/v1/estimate?table=nosuch&column=key&b=10&sigma=0.1", 404, "no statistics"},
	}
	for _, tc := range cases {
		var got struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		getJSON(t, ts, tc.path, tc.status, &got)
		if !strings.Contains(got.Error, tc.errFrag) {
			t.Errorf("%s: error %q does not mention %q", tc.path, got.Error, tc.errFrag)
		}
	}
}

func postJSON(t testing.TB, ts *httptest.Server, path string, body any, status int, out any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != status {
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		t.Fatalf("POST %s = %d, want %d (body %s)", path, resp.StatusCode, status, b.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBatchEstimate(t *testing.T) {
	srv, _, st := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sarg := 0.5
	breq := BatchRequest{Requests: []EstimateRequest{
		{Table: "orders", Column: "key", B: 100, Sigma: 0.1},
		{Table: "orders", Column: "key", B: 200, Sigma: 0.25, S: &sarg},
		{Table: "orders", Column: "key", B: 0, Sigma: 0.1},   // invalid B
		{Table: "nosuch", Column: "key", B: 100, Sigma: 0.1}, // unknown index
	}}
	var bresp BatchResponse
	postJSON(t, ts, "/v1/estimate/batch", breq, http.StatusOK, &bresp)
	if bresp.Count != 4 || bresp.Failed != 2 || len(bresp.Items) != 4 {
		t.Fatalf("batch count=%d failed=%d items=%d", bresp.Count, bresp.Failed, len(bresp.Items))
	}
	for i, want := range []struct {
		b        int64
		sigma, s float64
	}{{100, 0.1, 1}, {200, 0.25, 0.5}} {
		item := bresp.Items[i]
		if item.Estimate == nil {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		direct, err := core.EstimateFetches(st, want.b, want.sigma, want.s)
		if err != nil {
			t.Fatal(err)
		}
		if item.Estimate.Fetches != direct {
			t.Errorf("batch item %d = %v, want %v", i, item.Estimate.Fetches, direct)
		}
	}
	if bresp.Items[2].Status != 400 || !strings.Contains(bresp.Items[2].Error, "B must be >= 1") {
		t.Errorf("item 2 = %+v, want 400 bad-buffer", bresp.Items[2])
	}
	if bresp.Items[3].Status != 404 {
		t.Errorf("item 3 status = %d, want 404", bresp.Items[3].Status)
	}

	// Empty batches are rejected outright; oversized batches answer 413 with
	// the typed sentinel's message so forwarders shed instead of buffering.
	postJSON(t, ts, "/v1/estimate/batch", BatchRequest{}, http.StatusBadRequest, nil)
	over := BatchRequest{Requests: make([]EstimateRequest, DefaultMaxBatch+1)}
	for i := range over.Requests {
		over.Requests[i] = EstimateRequest{Table: "orders", Column: "key", B: 10, Sigma: 0.1}
	}
	postJSON(t, ts, "/v1/estimate/batch", over, http.StatusRequestEntityTooLarge, nil)
}

func TestInstallListDelete(t *testing.T) {
	srv, store, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Install a second index over HTTP.
	st2 := fitStats(t, "lineitem", "partkey", 7)
	raw, err := json.Marshal(st2)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/indexes/lineitem/partkey", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	if store.Len() != 2 {
		t.Fatalf("store len = %d after install", store.Len())
	}

	// Path/body identity mismatch is a 400.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/indexes/other/column", bytes.NewReader(raw))
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched PUT status = %d, want 400", resp.StatusCode)
	}

	// Listing reflects both entries.
	var listing struct {
		Generation uint64         `json:"generation"`
		Count      int            `json:"count"`
		Indexes    []indexSummary `json:"indexes"`
	}
	getJSON(t, ts, "/v1/indexes", http.StatusOK, &listing)
	if listing.Count != 2 || len(listing.Indexes) != 2 {
		t.Fatalf("listing = %+v", listing)
	}
	if listing.Indexes[0].Table != "lineitem" || listing.Indexes[1].Table != "orders" {
		t.Fatalf("listing order = %s, %s", listing.Indexes[0].Table, listing.Indexes[1].Table)
	}

	// Delete, then estimates against it 404.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/indexes/lineitem/partkey", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	getJSON(t, ts, "/v1/estimate?table=lineitem&column=partkey&b=10&sigma=0.1", http.StatusNotFound, nil)
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/indexes/lineitem/partkey", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE status = %d, want 404", resp.StatusCode)
	}
}

func TestMemoCacheServesRepeatsAndInvalidatesOnPut(t *testing.T) {
	srv, store, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const path = "/v1/estimate?table=orders&column=key&b=100&sigma=0.1"
	var first, second EstimateResponse
	getJSON(t, ts, path, http.StatusOK, &first)
	getJSON(t, ts, path, http.StatusOK, &second)
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags = %v, %v; want false, true", first.Cached, second.Cached)
	}
	if first.Fetches != second.Fetches {
		t.Fatalf("cached estimate differs: %v != %v", first.Fetches, second.Fetches)
	}

	// Installing fresh statistics bumps the generation, so the same request
	// misses the memo and is recomputed against the new entry.
	if _, err := store.Put(fitStats(t, "orders", "key", 99)); err != nil {
		t.Fatal(err)
	}
	var third EstimateResponse
	getJSON(t, ts, path, http.StatusOK, &third)
	if third.Cached {
		t.Fatal("estimate served from memo across a statistics install")
	}
	if third.Generation != 2 {
		t.Fatalf("generation = %d, want 2", third.Generation)
	}

	var met struct {
		Cache struct {
			Hits     uint64  `json:"hits"`
			Misses   uint64  `json:"misses"`
			HitRatio float64 `json:"hitRatio"`
		} `json:"cache"`
	}
	getJSON(t, ts, "/metrics", http.StatusOK, &met)
	if met.Cache.Hits != 1 || met.Cache.Misses != 2 {
		t.Fatalf("cache counters = %+v", met.Cache)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var hz struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
		Indexes    int    `json:"indexes"`
	}
	getJSON(t, ts, "/healthz", http.StatusOK, &hz)
	if hz.Status != "ok" || hz.Generation != 1 || hz.Indexes != 1 {
		t.Fatalf("healthz = %+v", hz)
	}

	getJSON(t, ts, "/v1/estimate?table=orders&column=key&b=100&sigma=0.1", http.StatusOK, nil)
	getJSON(t, ts, "/v1/estimate?table=orders&column=key&b=0&sigma=0.1", http.StatusBadRequest, nil)

	var met struct {
		Routes map[string]routeSnapshot `json:"routes"`
	}
	getJSON(t, ts, "/metrics", http.StatusOK, &met)
	rs, ok := met.Routes[routeEstimate]
	if !ok {
		t.Fatalf("metrics missing route %q: %v", routeEstimate, met.Routes)
	}
	if rs.Requests != 2 || rs.Errors != 1 {
		t.Fatalf("estimate route counters = %+v", rs)
	}
}

func TestPanicRecovery(t *testing.T) {
	srv, _, _ := newTestServer(t)
	h := srv.instrument(routeHealthz, func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status after panic = %d", rec.Code)
	}
	if srv.met.panics.Load() != 1 {
		t.Fatalf("panic counter = %d", srv.met.panics.Load())
	}
}

// TestConcurrentEstimatesAndInstalls is the service-level race test: many
// clients estimating (single and batch) while a writer keeps installing
// fresh statistics. Run with -race.
func TestConcurrentEstimatesAndInstalls(t *testing.T) {
	srv, store, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Pre-fit the replacement entries outside the hot loop.
	replacements := []*stats.IndexStats{
		fitStats(t, "orders", "key", 2),
		fitStats(t, "orders", "key", 3),
	}

	const clients = 8
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				i++
				if c%2 == 0 {
					path := fmt.Sprintf("/v1/estimate?table=orders&column=key&b=%d&sigma=0.1", 10+i%200)
					resp, err := ts.Client().Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s = %d", path, resp.StatusCode)
						return
					}
				} else {
					breq := BatchRequest{Requests: []EstimateRequest{
						{Table: "orders", Column: "key", B: int64(10 + i%100), Sigma: 0.2},
						{Table: "orders", Column: "key", B: int64(10 + i%100), Sigma: 0.4},
					}}
					raw, _ := json.Marshal(breq)
					resp, err := ts.Client().Post(ts.URL+"/v1/estimate/batch", "application/json", bytes.NewReader(raw))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("batch = %d", resp.StatusCode)
						return
					}
				}
			}
		}(c)
	}

	for i := 0; i < 40; i++ {
		if _, err := store.Put(replacements[i%len(replacements)]); err != nil {
			t.Error(err)
			break
		}
	}
	close(done)
	wg.Wait()
}

func TestGracefulShutdown(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String() + "/healthz"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
}
