package service

// Continuous estimator-accuracy telemetry: every time the ingest worker
// completes an accumulated scan it compares the live fetch curve against the
// published catalog entry on the entry's own modeling grid — whether or not
// the divergence crosses the republish threshold. The comparison feeds three
// surfaces:
//
//   - per-index epfis_accuracy_relerr{index,stat} histograms (stat = "max"
//     and "mean" relative error over the grid), so dashboards track model
//     error as a distribution over time;
//   - GET /debug/accuracy, a per-index document with the latest sampled
//     curve points, published-model error, and refit bookkeeping;
//   - the existing epfis_ingest_drift histogram (max relative error only),
//     unchanged.
//
// The state lives on the ingester because the measurements do: the worker
// goroutine writes under accMu at each completed scan, the handler reads a
// copy. Nothing here touches the estimate serving path.

import (
	"errors"
	"net/http"
	"time"

	"epfis/internal/core"
	"epfis/internal/lrusim"
	"epfis/internal/obs"
)

// routeAccuracy serves the per-index accuracy document. Registered whenever
// ingestion is enabled (the measurements come from ingested scans).
const routeAccuracy = "GET /debug/accuracy"

// maxAccuracyPoints caps the modeling-grid samples retained per index in the
// /debug/accuracy document; the grid itself can run to thousands of points.
const maxAccuracyPoints = 32

// accuracyBuckets spans relative error from one-tenth of a percent to
// several-fold divergence — the same domain as epfis_ingest_drift.
var accuracyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// accPoint is one sampled modeling-grid comparison between the live measured
// curve and the published model.
type accPoint struct {
	B      int64   `json:"b"`         // buffer size sampled
	Live   float64 `json:"live"`      // measured fetches at B
	Pub    float64 `json:"published"` // published model's fetches at B
	RelErr float64 `json:"relErr"`
}

// indexAccuracy is one index's continuously measured model accuracy, updated
// at every completed scan.
type indexAccuracy struct {
	Scans          uint64     `json:"scans"`          // completed accumulation windows measured
	MaxRelErr      float64    `json:"maxRelErr"`      // last measurement, max over the grid
	MeanRelErr     float64    `json:"meanRelErr"`     // last measurement, mean over the grid
	RefsSinceRefit int64      `json:"refsSinceRefit"` // page references measured since the last republish
	Republishes    uint64     `json:"republishes"`    // refits published for this index
	Generation     uint64     `json:"generation"`     // catalog generation the last measurement compared against
	LastEval       time.Time  `json:"lastEval"`
	Points         []accPoint `json:"points,omitempty"` // sampled grid comparison from the last measurement
}

// curveAccuracy compares a live accumulated fetch curve against the
// published fetch polyline on the published entry's own modeling grid,
// returning the maximum and mean relative error — |F_live − F_pub| /
// max(F_pub, 1) — plus up to maxAccuracyPoints sampled grid points.
func curveAccuracy(live *lrusim.FetchCurve, pubT int64, pubEval func(float64) float64) (maxRel, meanRel float64, points []accPoint) {
	bmin, bmax := core.ModelingRange(pubT, core.Options{})
	grid := core.ModelingGridStep(bmin, bmax, 0, 0)
	if len(grid) == 0 {
		return 0, 0, nil
	}
	stride := 1
	if len(grid) > maxAccuracyPoints {
		stride = (len(grid) + maxAccuracyPoints - 1) / maxAccuracyPoints
	}
	sum := 0.0
	for i, b := range grid {
		pubF := pubEval(float64(b))
		liveF := float64(live.Fetches(b))
		den := pubF
		if den < 1 {
			den = 1
		}
		rel := (liveF - pubF) / den
		if rel < 0 {
			rel = -rel
		}
		sum += rel
		if rel > maxRel {
			maxRel = rel
		}
		if i%stride == 0 {
			points = append(points, accPoint{B: int64(b), Live: liveF, Pub: pubF, RelErr: rel})
		}
	}
	return maxRel, sum / float64(len(grid)), points
}

// recordAccuracy folds one completed-scan measurement into the index's
// accuracy state and its error histograms. Called by the worker from
// evaluate, never on the serving path.
func (g *ingester) recordAccuracy(key string, gen uint64, refs int64, maxRel, meanRel float64, points []accPoint) {
	g.accMu.Lock()
	a := g.acc[key]
	if a == nil {
		a = &indexAccuracy{}
		g.acc[key] = a
	}
	a.Scans++
	a.MaxRelErr = maxRel
	a.MeanRelErr = meanRel
	a.RefsSinceRefit += refs
	a.Generation = gen
	a.LastEval = time.Now()
	a.Points = points
	hMax := g.accHistLocked(key, "max")
	hMean := g.accHistLocked(key, "mean")
	g.accMu.Unlock()
	hMax.Observe(maxRel)
	hMean.Observe(meanRel)
}

// accHistLocked resolves (registering on first use) the index's relative
// error histogram for one stat. Caller holds accMu.
func (g *ingester) accHistLocked(index, stat string) *obs.Histogram {
	k := index + "\x00" + stat
	h := g.accHist[k]
	if h == nil {
		h = g.s.obs.reg.Histogram("epfis_accuracy_relerr",
			"Relative error between live measured fetch curves and the published model, by index and statistic.",
			accuracyBuckets,
			obs.Label{Name: "index", Value: index},
			obs.Label{Name: "stat", Value: stat})
		g.accHist[k] = h
	}
	return h
}

// noteRepublish resets the refit bookkeeping after a drifted entry was
// refitted and republished.
func (g *ingester) noteRepublish(key string, gen uint64) {
	g.accMu.Lock()
	if a := g.acc[key]; a != nil {
		a.Republishes++
		a.RefsSinceRefit = 0
		a.Generation = gen
	}
	g.accMu.Unlock()
}

// accuracyDoc is the GET /debug/accuracy document.
type accuracyDoc struct {
	Node           string                   `json:"node"`
	DriftThreshold float64                  `json:"driftThreshold"`
	Indexes        map[string]indexAccuracy `json:"indexes"`
}

func (s *Server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	g := s.ingest
	if g == nil { // route is only registered with ingest on; belt and braces
		writeError(w, http.StatusNotFound, errors.New("ingestion disabled"))
		return
	}
	out := accuracyDoc{
		Node:           s.nodeName(),
		DriftThreshold: g.drift,
		Indexes:        map[string]indexAccuracy{},
	}
	g.accMu.Lock()
	for key, a := range g.acc {
		// Value copy; Points is replaced wholesale each measurement, never
		// mutated in place, so sharing the slice is safe.
		out.Indexes[key] = *a
	}
	g.accMu.Unlock()
	writeJSON(w, http.StatusOK, out)
}
