package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/cluster"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/lrusim"
	"epfis/internal/storage"
)

// ingestDataset generates a synthetic index whose trace the tests stream.
func ingestDataset(t testing.TB, table, column string, seed int64) (*datagen.Dataset, core.Meta) {
	t.Helper()
	cfg := datagen.Config{Name: table, Column: column, N: 20_000, I: 500, R: 40, K: 0.2, Seed: seed}
	ds, err := datagen.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, core.Meta{Table: table, Column: column, T: ds.T, N: cfg.N, I: cfg.I}
}

// ingestBatchSeq issues process-unique batch IDs for postIngest, so separate
// calls never collide on the server's dedup window.
var ingestBatchSeq atomic.Int64

// postIngest streams one trace to POST /v1/ingest in randomly sized batches.
func postIngest(t testing.TB, ts *httptest.Server, meta core.Meta, trace lrusim.Trace, withMeta bool, rng *rand.Rand) {
	t.Helper()
	for len(trace) > 0 {
		n := 1 + rng.Intn(4096)
		if n > len(trace) {
			n = len(trace)
		}
		req := IngestRequest{Table: meta.Table, Column: meta.Column, Pages: trace[:n],
			BatchID: fmt.Sprintf("%s.%s-%d", meta.Table, meta.Column, ingestBatchSeq.Add(1))}
		if withMeta {
			req.T, req.N, req.I = meta.T, meta.N, meta.I
		}
		// An at-least-once producer: 429/503 are retried with the same batch
		// ID (the server dedups redelivery), anything else must be a 202.
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			status := resp.StatusCode
			resp.Body.Close()
			if status == http.StatusAccepted {
				break
			}
			if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
				t.Fatalf("POST /v1/ingest = %d, want 202", status)
			}
			if time.Now().After(deadline) {
				t.Fatalf("POST /v1/ingest still %d after retries", status)
			}
			time.Sleep(5 * time.Millisecond)
		}
		trace = trace[n:]
	}
}

func TestIngestRejectsBadBatches(t *testing.T) {
	srv, _, _ := newTestServer(t)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, tc := range []struct {
		name   string
		req    IngestRequest
		status int
	}{
		{"no index", IngestRequest{Pages: []storage.PageID{1}}, http.StatusBadRequest},
		{"no pages", IngestRequest{Table: "orders", Column: "key"}, http.StatusBadRequest},
		{"unknown index without meta", IngestRequest{Table: "nope", Column: "nope", Pages: []storage.PageID{1}}, http.StatusBadRequest},
		{"bad meta", IngestRequest{Table: "a", Column: "b", Pages: []storage.PageID{1}, T: 10, N: 5, I: 7}, http.StatusBadRequest},
	} {
		postJSON(t, ts, "/v1/ingest", tc.req, tc.status, nil)
		_ = tc.name
	}
}

func TestIngestDisabled(t *testing.T) {
	srv, _, _ := newTestServer(t)
	defer srv.Close()
	disabled, err := New(Config{Store: catalog.NewStore(), IngestQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(disabled)
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled ingest route = %d, want 404", resp.StatusCode)
	}
}

func TestIngestBackpressure(t *testing.T) {
	store := catalog.NewStore()
	srv, err := New(Config{Store: store, IngestQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stop the worker first: with nothing draining the queue, the second
	// batch must hit a full queue deterministically.
	srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := IngestRequest{Table: "t", Column: "c", Pages: []storage.PageID{1, 2, 3}, T: 3, N: 3, I: 3}
	postJSON(t, ts, "/v1/ingest", req, http.StatusAccepted, nil)

	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second batch = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestIngestRepublishBitExactWithOfflineLRUFit(t *testing.T) {
	// Stream a full scan of an index the catalog does not know (metadata in
	// the payload). The worker must republish an entry bit-exact with
	// running offline LRU-Fit over the very same trace.
	srv, store, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ds, meta := ingestDataset(t, "lineitem", "partkey", 7)
	trace := ds.Trace()
	postIngest(t, ts, meta, trace, true, rand.New(rand.NewSource(42)))
	srv.Close() // drains the worker: every queued batch is processed

	got, err := store.Snapshot().Get("lineitem", "partkey")
	if err != nil {
		t.Fatalf("republished entry missing: %v", err)
	}
	want, err := core.LRUFit(trace, meta, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.T != want.T || got.N != want.N || got.I != want.I ||
		got.BMin != want.BMin || got.BMax != want.BMax ||
		got.FMin != want.FMin || got.C != want.C ||
		got.GridPoints != want.GridPoints {
		t.Fatalf("republished entry diverges from offline LRU-Fit:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Curve.Knots) != len(want.Curve.Knots) {
		t.Fatalf("curve has %d knots, offline fit %d", len(got.Curve.Knots), len(want.Curve.Knots))
	}
	for i, k := range want.Curve.Knots {
		if got.Curve.Knots[i] != k {
			t.Fatalf("knot %d = %+v, offline fit %+v (must be bit-exact)", i, got.Curve.Knots[i], k)
		}
	}
}

func TestIngestNoRepublishBelowDrift(t *testing.T) {
	// Stream the exact trace the published entry was fitted from: drift is
	// zero, so no new generation may appear.
	srv, store, st := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cfg := datagen.Config{Name: st.Table, Column: st.Column, N: st.N, I: st.I, R: 40, K: 0.2, Seed: 1}
	ds, err := datagen.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := store.Generation()
	meta := core.Meta{Table: st.Table, Column: st.Column, T: st.T, N: st.N, I: st.I}
	// Metadata comes from the catalog entry this time (withMeta=false).
	postIngest(t, ts, meta, ds.Trace(), false, rand.New(rand.NewSource(43)))
	srv.Close()

	if gen := store.Generation(); gen != before {
		t.Fatalf("generation moved %d -> %d despite zero drift", before, gen)
	}
}

func TestIngestRepublishBumpsClusterEpoch(t *testing.T) {
	store := catalog.NewStore()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.NewNode(cluster.Config{
		SelfID:       "n1",
		SelfURL:      "http://" + ln.Addr().String(),
		Replicas:     1,
		Heartbeat:    time.Hour, // no background gossip during the test
		SuspectAfter: time.Hour,
		DeadAfter:    2 * time.Hour,
		Store:        store,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Cluster: node})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(srv)
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	defer ts.Close()

	ds, meta := ingestDataset(t, "region", "nation", 11)
	before := node.Epoch()
	postIngest(t, ts, meta, ds.Trace(), true, rand.New(rand.NewSource(44)))
	srv.Close()

	if node.Epoch() <= before {
		t.Fatalf("epoch still %d after republish; anti-entropy will never stream it", node.Epoch())
	}
	if _, err := store.Snapshot().Get("region", "nation"); err != nil {
		t.Fatalf("republished entry missing: %v", err)
	}
}
