package service

import (
	"container/list"
	"encoding/binary"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"

	"epfis/internal/core"
)

// memoKey identifies one Est-IO computation. The catalog generation is part
// of the key, so installing or reloading statistics invalidates stale memo
// entries implicitly — no explicit flush, and a reader racing a reload can
// never be served an estimate from the wrong statistics version.
type memoKey struct {
	index string // "table.column"
	gen   uint64
	b     int64
	sigma float64
	sarg  float64
}

// memoCache is a sharded LRU memo for Est-IO results. Optimizers re-cost
// identical plan shapes constantly (same index, same buffer budget, same
// selectivity buckets), so even a small memo absorbs most of the estimate
// traffic; sharding keeps lock hold times negligible under parallel load.
type memoCache struct {
	shards [memoShards]memoShard
	seed   maphash.Seed

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64 // entries removed by explicit sweeps
}

const memoShards = 16

type memoShard struct {
	mu      sync.Mutex
	cap     int
	entries map[memoKey]*list.Element
	lru     *list.List // front = most recently used
}

type memoEntry struct {
	key memoKey
	est core.Estimate
}

// newMemoCache builds a cache holding ~total entries split evenly across the
// shards. total < memoShards still gets one entry per shard.
func newMemoCache(total int) *memoCache {
	per := total / memoShards
	if per < 1 {
		per = 1
	}
	c := &memoCache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].entries = make(map[memoKey]*list.Element, per)
		c.shards[i].lru = list.New()
	}
	return c
}

func (c *memoCache) shard(k memoKey) *memoShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(k.index)
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:], k.gen)
	binary.LittleEndian.PutUint64(buf[8:], uint64(k.b))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(k.sigma))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(k.sarg))
	h.Write(buf[:])
	return &c.shards[h.Sum64()%memoShards]
}

func (c *memoCache) get(k memoKey) (core.Estimate, bool) {
	sh := c.shard(k)
	sh.mu.Lock()
	el, ok := sh.entries[k]
	if ok {
		sh.lru.MoveToFront(el)
		est := el.Value.(*memoEntry).est
		sh.mu.Unlock()
		c.hits.Add(1)
		return est, true
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return core.Estimate{}, false
}

func (c *memoCache) put(k memoKey, est core.Estimate) {
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[k]; ok {
		el.Value.(*memoEntry).est = est
		sh.lru.MoveToFront(el)
		return
	}
	sh.entries[k] = sh.lru.PushFront(&memoEntry{key: k, est: est})
	if sh.lru.Len() > sh.cap {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.entries, oldest.Value.(*memoEntry).key)
		c.evictions.Add(1)
	}
}

// invalidateIndex removes every memo entry for index, across all
// generations. Generation keying already makes stale entries unreachable
// after a delete bumps the generation; this sweep additionally frees them,
// so a dropped index cannot linger in memory (and a later re-install at a
// coincidentally reused generation can never alias them).
func (c *memoCache) invalidateIndex(index string) int {
	return c.sweep(func(k memoKey) bool { return k.index == index })
}

// dropOtherGenerations removes entries whose generation differs from gen —
// the post-write segment sweep: after a reload/install/delete publishes
// generation gen, every older generation's memo entries are garbage by
// construction of the (index, generation) key.
func (c *memoCache) dropOtherGenerations(gen uint64) int {
	return c.sweep(func(k memoKey) bool { return k.gen != gen })
}

// sweep removes entries matching drop, returning how many were removed.
func (c *memoCache) sweep(drop func(memoKey) bool) int {
	removed := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, el := range sh.entries {
			if drop(k) {
				sh.lru.Remove(el)
				delete(sh.entries, k)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	if removed > 0 {
		c.invalidations.Add(uint64(removed))
	}
	return removed
}

// len reports the live entry count across all shards.
func (c *memoCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].lru.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}
