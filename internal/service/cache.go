package service

import (
	"math"
	"math/bits"
	"sync/atomic"

	"epfis/internal/core"
)

// memoKey identifies one Est-IO computation. The catalog generation is part
// of the key, so installing or reloading statistics invalidates stale memo
// entries implicitly — no explicit flush, and a reader racing a reload can
// never be served an estimate from the wrong statistics version. Table and
// column are kept as separate fields (not concatenated) so building a key on
// the serving hot path performs no allocation.
type memoKey struct {
	table  string
	column string
	gen    uint64
	b      int64
	sigma  float64
	sarg   float64
}

// memoEntry is one published cache record. Entries are immutable after
// publication: replacement stores a fresh entry rather than mutating, so a
// reader holding a pointer always sees a consistent (key, estimate) pair.
type memoEntry struct {
	key memoKey
	est core.Estimate
}

// memoWindow is the open-addressing probe window: a key may live in any of
// the memoWindow slots starting at its home index. It doubles as the CLOCK
// eviction arena — when the window is full, the insert sweeps it once,
// granting second chances (clearing reference bits) until it finds a victim.
const memoWindow = 8

// memoCache is a fixed-size open-addressed memo for Est-IO results.
// Optimizers re-cost identical plan shapes constantly (same index, same
// buffer budget, same selectivity buckets), so even a small memo absorbs most
// of the estimate traffic.
//
// Unlike the earlier mutex+map+container/list LRU, every slot is a single
// atomic pointer with an adjacent atomic reference bit:
//
//   - get is a hash plus at most memoWindow atomic loads — no locks, no
//     allocation, and readers never contend with each other;
//   - put publishes one freshly allocated immutable entry with an atomic
//     store (the only allocation in the cache, paid on misses);
//   - eviction is CLOCK (second chance) within the probe window instead of
//     global LRU — an approximation that costs O(window) atomics instead of
//     a locked list splice.
//
// The table size is fixed at construction (rounded up to a power of two), so
// the cache can never grow past its configured capacity.
type memoCache struct {
	slots []atomic.Pointer[memoEntry]
	ref   []atomic.Uint32 // CLOCK reference bits, parallel to slots
	mask  uint64          // len(slots) - 1

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64 // entries removed by explicit sweeps
}

// newMemoCache builds a cache with at least total slots (rounded up to a
// power of two, minimum one probe window).
func newMemoCache(total int) *memoCache {
	if total < memoWindow {
		total = memoWindow
	}
	size := 1 << bits.Len(uint(total-1)) // next power of two >= total
	return &memoCache{
		slots: make([]atomic.Pointer[memoEntry], size),
		ref:   make([]atomic.Uint32, size),
		mask:  uint64(size - 1),
	}
}

// hash is FNV-1a over the key's fields with a final avalanche mix. Inlined
// byte loops over the two strings keep it allocation-free.
func (k *memoKey) hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(k.table); i++ {
		h = (h ^ uint64(k.table[i])) * prime
	}
	h = (h ^ '.') * prime
	for i := 0; i < len(k.column); i++ {
		h = (h ^ uint64(k.column[i])) * prime
	}
	for _, w := range [4]uint64{k.gen, uint64(k.b), math.Float64bits(k.sigma), math.Float64bits(k.sarg)} {
		h = (h ^ (w & 0xff)) * prime
		h = (h ^ (w >> 8 & 0xffff)) * prime
		h = (h ^ (w >> 24)) * prime
	}
	// splitmix64-style finalizer so adjacent b values spread across slots.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func (c *memoCache) get(k memoKey) (core.Estimate, bool) {
	home := k.hash()
	for i := uint64(0); i < memoWindow; i++ {
		slot := (home + i) & c.mask
		e := c.slots[slot].Load()
		if e != nil && e.key == k {
			if c.ref[slot].Load() == 0 {
				c.ref[slot].Store(1) // second-chance bit for CLOCK
			}
			c.hits.Add(1)
			return e.est, true
		}
	}
	c.misses.Add(1)
	return core.Estimate{}, false
}

func (c *memoCache) put(k memoKey, est core.Estimate) {
	e := &memoEntry{key: k, est: est}
	home := k.hash()
	// First pass: take over the key's existing slot, or claim an empty one.
	for i := uint64(0); i < memoWindow; i++ {
		slot := (home + i) & c.mask
		cur := c.slots[slot].Load()
		if cur != nil && cur.key == k {
			c.slots[slot].Store(e)
			c.ref[slot].Store(1)
			return
		}
		if cur == nil && c.slots[slot].CompareAndSwap(nil, e) {
			c.ref[slot].Store(1)
			return
		}
	}
	// Window full: CLOCK sweep. Referenced slots get their second chance
	// (bit cleared); the first unreferenced slot is the victim. If every
	// slot was referenced, the home slot — now cleared — is overwritten.
	victim := home & c.mask
	for i := uint64(0); i < memoWindow; i++ {
		slot := (home + i) & c.mask
		if c.ref[slot].Load() != 0 {
			c.ref[slot].Store(0)
			continue
		}
		victim = slot
		break
	}
	if c.slots[victim].Swap(e) != nil {
		c.evictions.Add(1)
	}
	c.ref[victim].Store(1)
}

// invalidateIndex removes every memo entry for table.column, across all
// generations. Generation keying already makes stale entries unreachable
// after a delete bumps the generation; this sweep additionally frees them,
// so a dropped index cannot linger in memory (and a later re-install at a
// coincidentally reused generation can never alias them).
func (c *memoCache) invalidateIndex(table, column string) int {
	return c.sweep(func(k *memoKey) bool { return k.table == table && k.column == column })
}

// dropOtherGenerations removes entries whose generation differs from gen —
// the post-write segment sweep: after a reload/install/delete publishes
// generation gen, every older generation's memo entries are garbage by
// construction of the (index, generation) key.
func (c *memoCache) dropOtherGenerations(gen uint64) int {
	return c.sweep(func(k *memoKey) bool { return k.gen != gen })
}

// sweep removes entries matching drop, returning how many were removed. It
// walks every slot with CAS removal, so it is safe against concurrent reads
// and inserts (an entry inserted concurrently after its slot was examined
// simply survives until the next sweep — the generation key keeps it
// unreachable for readers either way).
func (c *memoCache) sweep(drop func(*memoKey) bool) int {
	removed := 0
	for i := range c.slots {
		e := c.slots[i].Load()
		if e == nil || !drop(&e.key) {
			continue
		}
		if c.slots[i].CompareAndSwap(e, nil) {
			removed++
		}
	}
	if removed > 0 {
		c.invalidations.Add(uint64(removed))
	}
	return removed
}

// len reports the live entry count.
func (c *memoCache) len() int {
	n := 0
	for i := range c.slots {
		if c.slots[i].Load() != nil {
			n++
		}
	}
	return n
}
