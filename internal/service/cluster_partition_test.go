package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/cluster"
	"epfis/internal/core"
	"epfis/internal/faultnet"
	"epfis/internal/stats"
)

// fnode is one partition-drill cluster member: a WAL-backed store, a durable
// handoff directory, and a faultnet injector sitting on every outbound HTTP
// hop (gossip, replication, forwarding, hint delivery).
type fnode struct {
	*cnode
	inj         *faultnet.Injector
	catalogPath string
	handoffDir  string
}

func (n *fnode) host() string { return strings.TrimPrefix(n.url, "http://") }

// startFaultCluster brings up n WAL-backed nodes whose every outbound request
// crosses a deterministic faultnet injector, so tests can partition the
// cluster without touching real sockets. DeadAfter is effectively infinite:
// partitions in these drills heal, and a peer that went "dead" would change
// the replication decision being tested.
func startFaultCluster(t testing.TB, n, replicas int) []*fnode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*fnode, n)
	for i := range nodes {
		id := fmt.Sprintf("node-%c", 'a'+i)
		dir := t.TempDir()
		catalogPath := filepath.Join(dir, "catalog.json")
		store, err := catalog.OpenWAL(catalogPath, catalog.WALOptions{CheckpointEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		inj := faultnet.NewInjector(nil, int64(i+1))
		node, err := cluster.NewNode(cluster.Config{
			SelfID:       id,
			SelfURL:      urls[i],
			Seeds:        urls,
			Replicas:     replicas,
			Heartbeat:    50 * time.Millisecond,
			SuspectAfter: 300 * time.Millisecond,
			DeadAfter:    time.Hour,
			Store:        store,
			HTTPClient:   inj.Client(2 * time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
		handoffDir := filepath.Join(dir, "hints")
		srv, err := New(Config{
			Store:            store,
			Cluster:          node,
			Transport:        inj,
			ReplicateTimeout: 500 * time.Millisecond,
			HandoffDir:       handoffDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		t.Cleanup(ts.Close)
		nodes[i] = &fnode{
			cnode:       &cnode{id: id, url: urls[i], store: store, node: node, srv: srv, ts: ts},
			inj:         inj,
			catalogPath: catalogPath,
			handoffDir:  handoffDir,
		}
	}
	for round := 0; round < 2; round++ {
		for _, cn := range nodes {
			cn.node.Tick(context.Background())
		}
	}
	for _, cn := range nodes {
		if got := cn.node.Ring().Len(); got != n {
			t.Fatalf("%s ring has %d members after convergence, want %d", cn.id, got, n)
		}
	}
	return nodes
}

// partition blocks every cross-side hop, both directions, at the senders.
func partition(a, b []*fnode) {
	for _, x := range a {
		for _, y := range b {
			x.inj.Block(y.host())
			y.inj.Block(x.host())
		}
	}
}

func healAll(nodes []*fnode) {
	for _, n := range nodes {
		n.inj.Heal()
	}
}

// converge ticks gossip and drains hinted handoff until every store reports
// the same content hash, or fails after the deadline.
func converge(t *testing.T, nodes []*fnode) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		for _, n := range nodes {
			n.node.Tick(context.Background())
		}
		pending := 0
		for _, n := range nodes {
			pending += n.srv.DrainHandoff(context.Background())
		}
		hashes := make([]string, len(nodes))
		same := true
		for i, n := range nodes {
			h, _, err := n.store.ContentHash()
			if err != nil {
				t.Fatal(err)
			}
			hashes[i] = h
			if h != hashes[0] {
				same = false
			}
		}
		if same && pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stores never converged (pending hints %d): %v", pending, hashes)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// rawMutate issues a PUT or DELETE and returns the status plus body, without
// failing on non-200 — partition drills expect honest 503s.
func rawMutate(t testing.TB, cn *cnode, method, path string, body []byte) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, cn.url+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cn.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(raw)
}

func mustMarshal(t testing.TB, st *stats.IndexStats) []byte {
	t.Helper()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// crashImage copies the node's catalog files (checkpoint, WAL, fallbacks) to
// a fresh directory — a point-in-time crash image taken while the process is
// still running — and reopens it as a recovered store.
func crashImage(t testing.TB, n *fnode) *catalog.Store {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Dir(n.catalogPath)
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re, err := catalog.OpenWAL(filepath.Join(dir, filepath.Base(n.catalogPath)), catalog.WALOptions{CheckpointEvery: 4})
	if err != nil {
		t.Fatalf("reopening crash image: %v", err)
	}
	t.Cleanup(func() { re.Close() })
	return re
}

// TestClusterPartitionHealConvergence is the jepsen-lite acceptance drill: a
// 3-node cluster is split into a minority {a} and a majority {b,c} while both
// sides take mutations and the majority streams an ingest scan. The minority
// must answer honest 503s (applied locally, hint journaled); the majority
// must keep acking with quorum. After the partition heals, gossip plus
// hinted handoff must converge every store to the same content hash, every
// node must serve bit-exact estimates, and a crash image of the minority node
// must rebuild the identical catalog from its WAL.
func TestClusterPartitionHealConvergence(t *testing.T) {
	nodes := startFaultCluster(t, 3, 3) // R=3: all nodes own every key, majority W=2
	a, b, c := nodes[0], nodes[1], nodes[2]

	// Baseline entries, fully replicated before the split.
	keep := fitStats(t, "orders", "key", 1)
	doomed := fitStats(t, "orders", "doomed", 2)
	putIndex(t, a.cnode, keep)
	putIndex(t, b.cnode, doomed)
	for _, n := range nodes {
		if n.store.Len() != 2 {
			t.Fatalf("%s store len = %d before partition, want 2", n.id, n.store.Len())
		}
	}

	partition(nodes[:1], nodes[1:])

	// Majority side: quorum (2 of 3 owners) is still reachable, so mutations
	// succeed and hints queue for the unreachable minority.
	major := fitStats(t, "orders", "major", 3)
	if status, body := rawMutate(t, b.cnode, http.MethodPut, "/v1/indexes/orders/major", mustMarshal(t, major)); status != http.StatusOK {
		t.Fatalf("majority PUT = %d, want 200: %s", status, body)
	}
	if status, body := rawMutate(t, c.cnode, http.MethodDelete, "/v1/indexes/orders/doomed", nil); status != http.StatusOK {
		t.Fatalf("majority DELETE = %d, want 200: %s", status, body)
	}

	// Minority side: the write quorum is unreachable. The mutation applies
	// locally, a hint is journaled, and the client gets an honest 503.
	minor := fitStats(t, "orders", "minor", 4)
	status, body := rawMutate(t, a.cnode, http.MethodPut, "/v1/indexes/orders/minor", mustMarshal(t, minor))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("minority PUT = %d, want 503: %s", status, body)
	}
	if _, err := a.store.Get("orders", "minor"); err != nil {
		t.Fatalf("minority PUT not applied locally: %v", err)
	}
	if n := a.srv.handoff.pending(); n == 0 {
		t.Fatal("minority PUT queued no hints")
	}

	// Concurrent ingestion on the majority: a full scan of an index the
	// catalog does not know republishes a new entry mid-partition.
	ds, meta := ingestDataset(t, "lineitem", "orderkey", 5)
	trace := ds.Trace()
	postIngest(t, b.ts, meta, trace, true, rand.New(rand.NewSource(5)))
	waitFor(t, 5*time.Second, func() bool {
		_, err := b.store.Get("lineitem", "orderkey")
		return err == nil
	}, "majority ingest republish")

	healAll(nodes)
	converge(t, nodes)

	for _, n := range nodes {
		snap := n.store.Snapshot()
		for _, key := range []string{"orders.key", "orders.minor", "orders.major", "lineitem.orderkey"} {
			if _, ok := snap.Lookup(key); !ok {
				t.Errorf("%s: %s missing after heal", n.id, key)
			}
		}
		if _, ok := snap.Lookup("orders.doomed"); ok {
			t.Errorf("%s: deleted index resurrected after heal", n.id)
		}
	}

	// Bit-exact serving: all three nodes answer identical numbers, including
	// for the entry republished from the mid-partition ingest stream.
	fit, err := core.LRUFit(trace, meta, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []struct {
		path string
		st   *stats.IndexStats
		b    int64
	}{
		{"/v1/estimate?table=orders&column=minor&b=100&sigma=0.1", minor, 100},
		{"/v1/estimate?table=orders&column=major&b=250&sigma=0.2", major, 250},
		{"/v1/estimate?table=lineitem&column=orderkey&b=64&sigma=0.1", fit, 64},
	} {
		want, err := core.EstimateFetches(q.st, q.b, gatherSigma(q.path), 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nodes {
			var got EstimateResponse
			getJSON(t, n.ts, q.path, http.StatusOK, &got)
			if got.Fetches != want {
				t.Errorf("%s: %s = %v, want %v", n.id, q.path, got.Fetches, want)
			}
		}
	}

	// Crash-durability: a point-in-time file copy of the minority node's
	// catalog — taken as if the process died right now — must recover to the
	// exact same content hash.
	wantHash, _, err := a.store.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	re := crashImage(t, a)
	gotHash, _, err := re.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if gotHash != wantHash {
		t.Fatalf("crash image recovered hash %q, live store has %q", gotHash, wantHash)
	}
}

// gatherSigma pulls the sigma query parameter back out of a test path so the
// expectation matches the request exactly.
func gatherSigma(path string) float64 {
	i := strings.Index(path, "sigma=")
	v, err := strconv.ParseFloat(path[i+len("sigma="):], 64)
	if err != nil {
		panic(err)
	}
	return v
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAsymmetricPartitionHandoff covers the one-way link failure: b can be
// reached but cannot send. Writes through the healthy direction keep their
// quorum; writes from the degraded node apply locally, answer 503, and drain
// from the durable hint journal once the link heals.
func TestAsymmetricPartitionHandoff(t *testing.T) {
	nodes := startFaultCluster(t, 2, 2) // W = majority of 2 owners = 2
	a, b := nodes[0], nodes[1]

	b.inj.Block(a.host()) // b -> a dead; a -> b still fine

	// a reaches b: full quorum, both stores apply synchronously.
	viaA := fitStats(t, "orders", "via_a", 1)
	if status, body := rawMutate(t, a.cnode, http.MethodPut, "/v1/indexes/orders/via_a", mustMarshal(t, viaA)); status != http.StatusOK {
		t.Fatalf("PUT via healthy direction = %d, want 200: %s", status, body)
	}
	if _, err := b.store.Get("orders", "via_a"); err != nil {
		t.Fatalf("entry missing on b after quorum PUT: %v", err)
	}

	// b cannot reach a: local apply, hint, honest 503.
	viaB := fitStats(t, "orders", "via_b", 2)
	status, body := rawMutate(t, b.cnode, http.MethodPut, "/v1/indexes/orders/via_b", mustMarshal(t, viaB))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("PUT via degraded direction = %d, want 503: %s", status, body)
	}
	if _, err := b.store.Get("orders", "via_b"); err != nil {
		t.Fatalf("degraded PUT not applied locally: %v", err)
	}
	if b.srv.handoff.pending() == 0 {
		t.Fatal("degraded PUT queued no hints")
	}

	b.inj.Heal()
	converge(t, nodes)
	if _, err := a.store.Get("orders", "via_b"); err != nil {
		t.Fatalf("hint never delivered to a: %v", err)
	}
}

// TestReplicatedDeleteEpochGuard is the regression for the DELETE
// resurrection race: a replicated PUT that was assigned an older epoch than a
// later DELETE arrives out of order and must be dropped, not applied.
func TestReplicatedDeleteEpochGuard(t *testing.T) {
	nodes := startCluster(t, 1, 1)
	n := nodes[0]
	raw := mustMarshal(t, fitStats(t, "orders", "key", 1))

	send := func(method string, epoch uint64, body []byte) (int, string) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, n.url+"/v1/indexes/orders/key", rd)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(cluster.HeaderReplicated, "peer-x")
		req.Header.Set(cluster.HeaderEpoch, strconv.FormatUint(epoch, 10))
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := n.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(out)
	}

	if status, body := send(http.MethodPut, 5, raw); status != http.StatusOK {
		t.Fatalf("replicated PUT@5 = %d: %s", status, body)
	}
	if n.store.Len() != 1 {
		t.Fatal("replicated PUT@5 not applied")
	}
	if status, body := send(http.MethodDelete, 7, nil); status != http.StatusOK {
		t.Fatalf("replicated DELETE@7 = %d: %s", status, body)
	}
	if n.store.Len() != 0 {
		t.Fatal("replicated DELETE@7 not applied")
	}

	// The race: a PUT stamped with epoch 6 — older than the DELETE — arrives
	// late (slow link, retry, hint replay). Applying it would resurrect the
	// deleted index; the epoch gate must drop it and say so.
	status, body := send(http.MethodPut, 6, raw)
	if status != http.StatusOK {
		t.Fatalf("stale replicated PUT@6 = %d: %s", status, body)
	}
	if !strings.Contains(body, `"skipped":true`) {
		t.Fatalf("stale replicated PUT@6 was not reported skipped: %s", body)
	}
	if n.store.Len() != 0 {
		t.Fatal("stale replicated PUT resurrected a deleted index")
	}

	// A genuinely newer PUT applies again...
	if status, body := send(http.MethodPut, 8, raw); status != http.StatusOK {
		t.Fatalf("replicated PUT@8 = %d: %s", status, body)
	}
	if n.store.Len() != 1 {
		t.Fatal("newer replicated PUT@8 not applied")
	}
	// ...and redelivering the same epoch (at-least-once retry) is idempotent.
	gen := n.store.Generation()
	if status, _ := send(http.MethodPut, 8, raw); status != http.StatusOK {
		t.Fatalf("redelivered PUT@8 = %d", status)
	}
	if n.store.Generation() != gen {
		t.Fatal("duplicate redelivery advanced the catalog generation")
	}
}

// TestHandoffJournalSurvivesRestart proves hints are durable: a server that
// crashed with undelivered hints must reload them from disk on restart and
// deliver them once the peer is reachable.
func TestHandoffJournalSurvivesRestart(t *testing.T) {
	nodes := startFaultCluster(t, 2, 2)
	a, b := nodes[0], nodes[1]

	partition(nodes[:1], nodes[1:])

	st := fitStats(t, "orders", "key", 1)
	status, body := rawMutate(t, a.cnode, http.MethodPut, "/v1/indexes/orders/key", mustMarshal(t, st))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("partitioned PUT = %d, want 503: %s", status, body)
	}
	if a.srv.handoff.pending() == 0 {
		t.Fatal("no hints queued")
	}

	// "Crash" node a's service: stop its drainer with the hint undelivered.
	a.srv.Close()

	// Restart the service over the same store, node, and handoff directory.
	// The hint journal must reload from disk.
	reborn, err := New(Config{
		Store:            a.store,
		Cluster:          a.node,
		Transport:        a.inj,
		ReplicateTimeout: 500 * time.Millisecond,
		HandoffDir:       a.handoffDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	if reborn.handoff.pending() == 0 {
		t.Fatal("restarted server loaded no hints from the journal")
	}

	healAll(nodes)
	waitFor(t, 5*time.Second, func() bool {
		return reborn.DrainHandoff(context.Background()) == 0
	}, "hint drain after restart")
	if _, err := b.store.Get("orders", "key"); err != nil {
		t.Fatalf("journaled hint never delivered after restart: %v", err)
	}
}

// TestClusterIngestOwnershipRouting is the satellite for ingest routing: a
// batch posted to a non-owner is forwarded one hop to the ring owner (the
// response carries the owner's node header), an already-forwarded misroute
// answers 421, and a full scan streamed entirely through a non-owner still
// accumulates coherently on the owner and republishes cluster-wide.
func TestClusterIngestOwnershipRouting(t *testing.T) {
	nodes := startCluster(t, 3, 1) // R=1: exactly one owner per key
	ds, meta := ingestDataset(t, "lineitem", "suppkey", 9)
	trace := ds.Trace()
	key := "lineitem.suppkey"

	var owner, nonOwner *cnode
	for _, cn := range nodes {
		if cn.node.Owns(key) {
			owner = cn
		} else if nonOwner == nil {
			nonOwner = cn
		}
	}
	if owner == nil || nonOwner == nil {
		t.Fatalf("no owner/non-owner split for %s with R=1", key)
	}

	// A probe batch through the non-owner is forwarded: the 202 comes back
	// stamped with the owner's identity.
	probe := IngestRequest{Table: meta.Table, Column: meta.Column, Pages: trace[:1],
		T: meta.T, N: meta.N, I: meta.I, BatchID: "probe-1"}
	raw, err := json.Marshal(probe)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := nonOwner.ts.Client().Post(nonOwner.url+"/v1/ingest", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded ingest = %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.HeaderNode); got != owner.id {
		t.Fatalf("forwarded ingest answered by %q, want owner %q", got, owner.id)
	}

	// An already-forwarded batch landing on a non-owner is a routing bug:
	// 421, never a second forward.
	req, _ := http.NewRequest(http.MethodPost, nonOwner.url+"/v1/ingest", bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "test")
	resp, err = nonOwner.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("double-forwarded ingest = %d, want 421", resp.StatusCode)
	}

	// Stream the whole scan through the non-owner. Forwarding must keep the
	// accumulation coherent on the single owner; the republished entry then
	// replicates everywhere and is bit-exact with the offline fit. The probe
	// batch already delivered trace[:1], so the stream continues from there.
	postIngest(t, nonOwner.ts, meta, trace[1:], true, rand.New(rand.NewSource(9)))
	owner.srv.Close() // drain the owner's worker

	want, err := core.LRUFit(trace, meta, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cn := range nodes {
		got, err := cn.store.Get("lineitem", "suppkey")
		if err != nil {
			t.Fatalf("%s: republished entry missing: %v", cn.id, err)
		}
		if got.FMin != want.FMin || got.C != want.C || len(got.Curve.Knots) != len(want.Curve.Knots) {
			t.Errorf("%s: republished entry diverges from offline fit", cn.id)
		}
	}
}

// TestEqualEpochConflictConverges is the regression for the split-brain
// tiebreak: concurrent PUTs to the same key on opposite sides of a partition
// are stamped with the identical epoch, and with epoch-only ordering each
// side would drop the other's write as stale — permanent divergence. The
// (epoch, origin) stamp must make every node pick the same winner.
func TestEqualEpochConflictConverges(t *testing.T) {
	nodes := startFaultCluster(t, 2, 2)
	a, b := nodes[0], nodes[1]

	partition(nodes[:1], nodes[1:])

	fromA := fitStats(t, "orders", "contested", 1)
	fromB := fitStats(t, "orders", "contested", 2)
	if fromA.C == fromB.C && fromA.FMin == fromB.FMin {
		t.Fatal("test needs distinguishable payloads")
	}
	if status, body := rawMutate(t, a.cnode, http.MethodPut, "/v1/indexes/orders/contested", mustMarshal(t, fromA)); status != http.StatusServiceUnavailable {
		t.Fatalf("partitioned PUT on a = %d, want 503: %s", status, body)
	}
	if status, body := rawMutate(t, b.cnode, http.MethodPut, "/v1/indexes/orders/contested", mustMarshal(t, fromB)); status != http.StatusServiceUnavailable {
		t.Fatalf("partitioned PUT on b = %d, want 503: %s", status, body)
	}

	// Precondition: both sides really did assign the same epoch — otherwise
	// this test degenerates into the plain epoch-ordering case.
	sa, sb := a.node.KeyStamp("orders.contested"), b.node.KeyStamp("orders.contested")
	if sa.Epoch != sb.Epoch {
		t.Fatalf("epochs diverged before heal (a=%d b=%d); conflict scenario not reproduced", sa.Epoch, sb.Epoch)
	}
	if sa.Origin != a.id || sb.Origin != b.id {
		t.Fatalf("origins misrecorded: a=%+v b=%+v", sa, sb)
	}

	healAll(nodes)
	converge(t, nodes)

	// node-b sorts after node-a, so b's write must win on BOTH nodes.
	for _, n := range nodes {
		got, err := n.store.Get("orders", "contested")
		if err != nil {
			t.Fatalf("%s: contested key missing after heal: %v", n.id, err)
		}
		if got.C != fromB.C || got.FMin != fromB.FMin {
			t.Errorf("%s: contested key holds the losing write (C=%v FMin=%v, want C=%v FMin=%v)",
				n.id, got.C, got.FMin, fromB.C, fromB.FMin)
		}
	}
}

// TestDeleteTombstoneSurvivesRestart is the regression for resurrection via
// snapshot: a node that applied a DELETE during a partition, crashed, and
// restarted must still refuse to re-adopt the deleted key from a peer's
// anti-entropy snapshot. Without the durable stamp journal the tombstone
// dies with the process and the snapshot merge resurrects the key.
func TestDeleteTombstoneSurvivesRestart(t *testing.T) {
	nodes := startFaultCluster(t, 2, 2)
	a, b := nodes[0], nodes[1]

	keep := fitStats(t, "orders", "keep", 1)
	doomed := fitStats(t, "orders", "doomed", 2)
	putIndex(t, a.cnode, keep)
	putIndex(t, a.cnode, doomed)
	if b.store.Len() != 2 {
		t.Fatalf("b store len = %d before partition, want 2", b.store.Len())
	}

	partition(nodes[:1], nodes[1:])

	// The DELETE applies locally on a (tombstone journaled), queues a hint,
	// and answers an honest 503 — b never hears about it.
	status, body := rawMutate(t, a.cnode, http.MethodDelete, "/v1/indexes/orders/doomed", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("partitioned DELETE = %d, want 503: %s", status, body)
	}
	if _, err := a.store.Get("orders", "doomed"); err == nil {
		t.Fatal("DELETE not applied locally")
	}

	// Crash node a: the service stops and the in-memory stamp table dies with
	// the process. The restart builds a brand-new cluster node over the same
	// store and journals.
	a.srv.Close()
	renode, err := cluster.NewNode(cluster.Config{
		SelfID:       a.id,
		SelfURL:      a.url,
		Seeds:        []string{b.url},
		Replicas:     2,
		Heartbeat:    50 * time.Millisecond,
		SuspectAfter: 300 * time.Millisecond,
		DeadAfter:    time.Hour,
		Store:        a.store,
		HTTPClient:   a.inj.Client(2 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	reborn, err := New(Config{
		Store:            a.store,
		Cluster:          renode,
		Transport:        a.inj,
		ReplicateTimeout: 500 * time.Millisecond,
		HandoffDir:       a.handoffDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()

	healAll(nodes)

	// Anti-entropy pull from b, which still holds the deleted key. The
	// journal-reloaded tombstone must keep it out of a's store.
	if err := renode.PullSnapshot(context.Background(), b.url); err != nil {
		t.Fatal(err)
	}
	if _, err := a.store.Get("orders", "doomed"); err == nil {
		t.Fatal("snapshot pull resurrected a deleted key after restart")
	}

	// The journaled hint then propagates the DELETE to b. Tick gossip so the
	// reborn node discovers b's address before draining.
	waitFor(t, 10*time.Second, func() bool {
		renode.Tick(context.Background())
		return reborn.DrainHandoff(context.Background()) == 0
	}, "hint drain after restart")
	if _, err := b.store.Get("orders", "doomed"); err == nil {
		t.Fatal("DELETE hint never delivered to b after restart")
	}
	ha, _, err := a.store.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	hb, _, err := b.store.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("stores diverged after restart + heal: a=%q b=%q", ha, hb)
	}
}

// TestConcurrentDrainDeliversEveryHint is the regression for the drain race:
// the background sweeper and synchronous DrainHandoff calls used to both read
// queue[0], deliver it twice, and pop twice — silently discarding the second
// popped hint. With per-peer drain serialization, hammering DrainHandoff from
// many goroutines must still deliver every queued hint exactly as recorded.
// Gossip is deliberately never ticked after heal, so anti-entropy cannot mask
// a dropped hint.
func TestConcurrentDrainDeliversEveryHint(t *testing.T) {
	nodes := startFaultCluster(t, 2, 2)
	a, b := nodes[0], nodes[1]

	partition(nodes[:1], nodes[1:])

	const hints = 8
	sts := make([]*stats.IndexStats, hints)
	for i := range sts {
		sts[i] = fitStats(t, "orders", fmt.Sprintf("k%d", i), int64(i+1))
		status, body := rawMutate(t, a.cnode, http.MethodPut, fmt.Sprintf("/v1/indexes/orders/k%d", i), mustMarshal(t, sts[i]))
		if status != http.StatusServiceUnavailable {
			t.Fatalf("partitioned PUT k%d = %d, want 503: %s", i, status, body)
		}
	}
	if got := a.srv.handoff.pending(); got != hints {
		t.Fatalf("pending hints = %d, want %d", got, hints)
	}

	healAll(nodes)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				a.srv.DrainHandoff(context.Background())
			}
		}()
	}
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool {
		return a.srv.DrainHandoff(context.Background()) == 0
	}, "hint queues to empty")

	for i := 0; i < hints; i++ {
		if _, err := b.store.Get("orders", fmt.Sprintf("k%d", i)); err != nil {
			t.Errorf("hint for orders.k%d lost under concurrent drains: %v", i, err)
		}
	}
}

// TestHandoffAbandonsAbsentPeer is the regression for unbounded hint growth:
// hints queued for a peer that never appears in membership (decommissioned or
// renamed before restart) must be dropped — queue, journal file, and all —
// once the peer has been absent past the abandon horizon, and the drop must
// be visible in the abandoned counter.
func TestHandoffAbandonsAbsentPeer(t *testing.T) {
	store := catalog.NewStore()
	node, err := cluster.NewNode(cluster.Config{
		SelfID:  "solo",
		SelfURL: "http://127.0.0.1:1",
		Store:   store,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:               store,
		Cluster:             node,
		HandoffDir:          t.TempDir(),
		HandoffAbandonAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	srv.handoff.enqueue(hintRecord{
		Peer: "ghost", Method: http.MethodDelete,
		Path: "/v1/indexes/t/c", Epoch: 1, Key: "t.c",
	})
	path := srv.handoff.hintPath("ghost")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("hint journal not created: %v", err)
	}
	if srv.handoff.orphaned() != 1 {
		t.Fatalf("orphaned gauge = %d, want 1", srv.handoff.orphaned())
	}

	// The background sweeper marks the peer absent on its first pass and
	// drops the queue on the first pass after the 50ms horizon.
	waitFor(t, 10*time.Second, func() bool {
		return srv.handoff.pending() == 0
	}, "ghost queue abandonment")
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("abandoned hint journal still on disk: %v", err)
	}
	if got := srv.handoff.abandonedC.Value(); got != 1 {
		t.Fatalf("abandoned counter = %d, want 1", got)
	}
}
