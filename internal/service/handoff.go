package service

// Durable hinted handoff: the partition-tolerance half of mutation
// replication.
//
// When a replicated mutation cannot reach a peer (partitioned, dead, or just
// slow past the per-peer timeout), the sender journals a hint — the complete
// replicated request plus its epoch — into a per-peer CRC32-C-framed file
// under Config.HandoffDir and keeps serving. A background drainer retries
// delivery (resilience.Retry behind a per-peer circuit breaker) until the
// peer answers, then compacts the journal. Because every replicated apply is
// epoch-gated on the receiver (see cluster.go), redelivery is idempotent:
// at-least-once sends converge to exactly-once application.
//
// The journal survives sender crashes — hints are fsynced before the
// originating mutation is acknowledged as quorum-met or surfaced as 503
// "handoff pending" — so an acked mutation can always reach every peer
// eventually, even across a crash of the only node that saw it.
//
// With HandoffDir unset the queues are memory-only: same convergence while
// the process lives, no crash durability (tests, throwaway topologies).

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log/slog"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"epfis/internal/cluster"
	"epfis/internal/faultfs"
	"epfis/internal/obs"
	"epfis/internal/resilience"
)

// DefaultHandoffAbandonAfter is how long hints for a peer absent from
// cluster membership are retained before the queue and its journal are
// dropped (Config.HandoffAbandonAfter overrides; negative keeps them
// forever). The horizon is generous because membership is rebuilt from
// gossip after a restart: a live peer is rediscovered within a heartbeat or
// two, while a decommissioned one never comes back.
const DefaultHandoffAbandonAfter = time.Hour

const (
	// handoffRetryInterval paces the background drainer between sweeps.
	handoffRetryInterval = time.Second
	// handoffMaxFrame bounds one journaled hint (a PUT body plus envelope).
	handoffMaxFrame = 16 << 20
	// handoffCompactAfter is how many delivered-but-still-journaled hints a
	// peer file may accumulate before it is rewritten.
	handoffCompactAfter = 64
)

// hintRecord is one undeliverable replicated mutation, queued for a peer.
// Trace, when set, is the originating request's traceparent; redelivery
// derives child spans from it so a stitched trace shows the handoff edge
// that eventually converged the peer.
type hintRecord struct {
	Peer   string `json:"peer"`
	Method string `json:"method"`
	Path   string `json:"path"`
	Body   []byte `json:"body,omitempty"`
	Epoch  uint64 `json:"epoch"`
	Key    string `json:"key"`
	Trace  string `json:"trace,omitempty"`
}

// handoff is the per-peer hint queues, their journals, and the drainer.
type handoff struct {
	s   *Server
	dir string // "" = memory-only
	fs  faultfs.FS

	mu        sync.Mutex
	queues    map[string][]hintRecord // FIFO per peer
	files     map[string]faultfs.File // open journal handles
	delivered map[string]int          // delivered hints awaiting compaction

	brMu     sync.Mutex
	breakers map[string]*resilience.Breaker

	// drains serializes delivery per peer: the background sweeper and any
	// synchronous DrainHandoff caller must never walk the same queue
	// concurrently, or both would deliver queue[0] and pop twice — silently
	// dropping an undelivered hint.
	drainMu sync.Mutex
	drains  map[string]*sync.Mutex

	// abandonAfter bounds how long hints for a peer absent from membership
	// are kept (a decommissioned or renamed peer never reappears; without a
	// horizon its queue and journal grow forever). absentSince records when a
	// sweep first found each queued peer missing.
	abandonAfter time.Duration
	absentSince  map[string]time.Time

	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once

	queuedC    *obs.Counter
	deliveredC *obs.Counter
	failuresC  *obs.Counter
	journalC   *obs.Counter
	abandonedC *obs.Counter
}

// hintCRC is the Castagnoli table shared by every hint frame.
var hintCRC = crc32.MakeTable(crc32.Castagnoli)

// newHandoff loads any journaled hints from cfg.HandoffDir and starts the
// drainer. Called from New only in cluster mode.
func newHandoff(s *Server, cfg Config) (*handoff, error) {
	h := &handoff{
		s:            s,
		dir:          cfg.HandoffDir,
		fs:           faultfs.OS(),
		queues:       map[string][]hintRecord{},
		files:        map[string]faultfs.File{},
		delivered:    map[string]int{},
		breakers:     map[string]*resilience.Breaker{},
		drains:       map[string]*sync.Mutex{},
		abandonAfter: cfg.HandoffAbandonAfter,
		absentSince:  map[string]time.Time{},
		notify:       make(chan struct{}, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	if h.abandonAfter == 0 {
		h.abandonAfter = DefaultHandoffAbandonAfter
	}
	if h.dir != "" {
		if err := os.MkdirAll(h.dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: handoff dir: %w", err)
		}
		if err := h.load(); err != nil {
			return nil, err
		}
	}
	reg := s.obs.reg
	h.queuedC = reg.Counter("epfis_cluster_handoff_queued_total",
		"Replicated mutations journaled as hints because a peer was unreachable.")
	h.deliveredC = reg.Counter("epfis_cluster_handoff_delivered_total",
		"Journaled hints delivered to their recovered peer.")
	h.failuresC = reg.Counter("epfis_cluster_handoff_failures_total",
		"Hint delivery attempts that failed (retried on the next sweep).")
	h.journalC = reg.Counter("epfis_cluster_handoff_journal_errors_total",
		"Hint journal writes that failed (the hint stays queued in memory).")
	h.abandonedC = reg.Counter("epfis_cluster_handoff_abandoned_total",
		"Hints dropped because their peer stayed absent from membership past the abandon horizon.")
	reg.GaugeFunc("epfis_cluster_handoff_pending",
		"Hints currently queued for unreachable peers.",
		func() float64 { return float64(h.pending()) })
	reg.GaugeFunc("epfis_cluster_handoff_orphaned",
		"Hints queued for peers currently absent from cluster membership.",
		func() float64 { return float64(h.orphaned()) })
	go h.run()
	return h, nil
}

// hintPath is the journal file for one peer. Peer IDs are escaped so any ID
// maps to a safe file name (and unescapes back on load).
func (h *handoff) hintPath(peer string) string {
	return filepath.Join(h.dir, url.PathEscape(peer)+".hints")
}

// load replays every *.hints journal into the in-memory queues, truncating
// torn tails in place (the crash-during-append case).
func (h *handoff) load() error {
	entries, err := os.ReadDir(h.dir)
	if err != nil {
		return fmt.Errorf("service: handoff dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".hints") {
			continue
		}
		peer, err := url.PathUnescape(strings.TrimSuffix(name, ".hints"))
		if err != nil {
			continue // not one of ours
		}
		path := filepath.Join(h.dir, name)
		data, err := h.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("service: handoff journal %s: %w", name, err)
		}
		recs, good := decodeHints(data)
		if good < int64(len(data)) {
			// Torn or corrupt tail: keep the durable prefix, cut the rest.
			if err := h.fs.Truncate(path, good); err != nil {
				return fmt.Errorf("service: handoff journal %s: truncate torn tail: %w", name, err)
			}
		}
		if len(recs) > 0 {
			h.queues[peer] = recs
		}
	}
	return nil
}

// decodeFrame parses one [len][crc][json] frame from the head of data into
// v, reporting the frame's total byte length and whether it was fully valid.
// Shared by the hint and stamp journals.
func decodeFrame(data []byte, v any) (int64, bool) {
	if len(data) < 8 {
		return 0, false
	}
	n := int(binary.LittleEndian.Uint32(data))
	sum := binary.LittleEndian.Uint32(data[4:])
	if n <= 0 || n > handoffMaxFrame || len(data)-8 < n {
		return 0, false
	}
	payload := data[8 : 8+n]
	if crc32.Checksum(payload, hintCRC) != sum {
		return 0, false
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return 0, false
	}
	return int64(8 + n), true
}

// encodeFrame frames one record for a journal.
func encodeFrame(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, hintCRC))
	copy(buf[8:], payload)
	return buf, nil
}

// decodeHints parses a hint journal, returning the records and the byte
// offset of the last fully valid frame.
func decodeHints(data []byte) ([]hintRecord, int64) {
	var recs []hintRecord
	off := int64(0)
	for {
		var rec hintRecord
		n, ok := decodeFrame(data[off:], &rec)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off
}

// enqueue journals a hint (fsynced before return) and queues it for the
// drainer. Journal failures demote the hint to memory-only rather than drop
// it: delivery still happens unless the process dies first.
func (h *handoff) enqueue(rec hintRecord) {
	frame, encErr := encodeFrame(rec)
	h.mu.Lock()
	h.queues[rec.Peer] = append(h.queues[rec.Peer], rec)
	if h.dir != "" && encErr == nil {
		if err := h.appendLocked(rec.Peer, frame); err != nil {
			h.journalC.Inc()
			h.s.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "handoff journal append failed",
				slog.String("peer", rec.Peer), slog.String("error", err.Error()))
		}
	}
	h.mu.Unlock()
	h.queuedC.Inc()
	select {
	case h.notify <- struct{}{}:
	default:
	}
}

// appendLocked writes one frame to the peer's journal and fsyncs. Caller
// holds h.mu.
func (h *handoff) appendLocked(peer string, frame []byte) error {
	f := h.files[peer]
	if f == nil {
		var err error
		f, err = h.fs.OpenAppend(h.hintPath(peer))
		if err != nil {
			return err
		}
		h.files[peer] = f
	}
	if _, err := f.Write(frame); err != nil {
		return err
	}
	return f.Sync()
}

// compactLocked rewrites a peer's journal to exactly its undelivered queue.
// Caller holds h.mu.
func (h *handoff) compactLocked(peer string) {
	h.delivered[peer] = 0
	if h.dir == "" {
		return
	}
	if f := h.files[peer]; f != nil {
		f.Close()
		delete(h.files, peer)
	}
	path := h.hintPath(peer)
	queue := h.queues[peer]
	if len(queue) == 0 {
		_ = h.fs.Remove(path)
		return
	}
	if err := h.fs.Truncate(path, 0); err != nil {
		return // stale frames linger; epoch gating makes redelivery harmless
	}
	for _, rec := range queue {
		frame, err := encodeFrame(rec)
		if err != nil {
			continue
		}
		if err := h.appendLocked(peer, frame); err != nil {
			h.journalC.Inc()
			return
		}
	}
}

// pending reports the total number of queued hints.
func (h *handoff) pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, q := range h.queues {
		n += len(q)
	}
	return n
}

// drainLock lazily builds the per-peer drain mutex.
func (h *handoff) drainLock(id string) *sync.Mutex {
	h.drainMu.Lock()
	defer h.drainMu.Unlock()
	lk := h.drains[id]
	if lk == nil {
		lk = &sync.Mutex{}
		h.drains[id] = lk
	}
	return lk
}

// breaker lazily builds the per-peer delivery breaker.
func (h *handoff) breaker(peer string) *resilience.Breaker {
	h.brMu.Lock()
	defer h.brMu.Unlock()
	br := h.breakers[peer]
	if br == nil {
		br = resilience.NewBreaker(resilience.BreakerConfig{
			Failures: 3,
			Cooldown: handoffRetryInterval,
		})
		h.breakers[peer] = br
	}
	return br
}

// run is the drainer loop: sweep on enqueue notifications and on a steady
// interval (peers recover without telling us).
func (h *handoff) run() {
	defer close(h.done)
	t := time.NewTicker(handoffRetryInterval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-h.notify:
		case <-t.C:
		}
		h.drainOnce(context.Background(), false)
	}
}

// drainOnce attempts delivery for every peer with pending hints. force
// bypasses dead-peer skips and circuit breakers — the deterministic lever
// for drills and tests. Background (non-forced) sweeps also age out queues
// whose peer has left membership, so hints for a decommissioned or renamed
// peer cannot accumulate forever in memory and on disk.
func (h *handoff) drainOnce(ctx context.Context, force bool) {
	h.mu.Lock()
	peers := make([]string, 0, len(h.queues))
	for id, q := range h.queues {
		if len(q) > 0 {
			peers = append(peers, id)
		}
	}
	h.mu.Unlock()
	if !force {
		peers = h.gcAbsent(peers)
	}
	for _, id := range peers {
		h.drainPeer(ctx, id, force)
	}
}

// gcAbsent splits the queued peers into members and ghosts: peers currently
// in membership drain normally, while a peer absent past the abandon horizon
// has its queue and journal dropped (counted in abandonedC). It returns the
// peers still worth draining.
func (h *handoff) gcAbsent(peers []string) []string {
	known := map[string]bool{}
	for _, p := range h.s.cluster.Peers() {
		known[p.ID] = true
	}
	now := time.Now()
	keep := peers[:0]
	for _, id := range peers {
		if known[id] {
			h.mu.Lock()
			delete(h.absentSince, id)
			h.mu.Unlock()
			keep = append(keep, id)
			continue
		}
		if h.abandonAfter < 0 {
			continue // retained forever, but undeliverable: skip the drain
		}
		h.mu.Lock()
		first, seen := h.absentSince[id]
		if !seen {
			h.absentSince[id] = now
			h.mu.Unlock()
			continue
		}
		if now.Sub(first) <= h.abandonAfter {
			h.mu.Unlock()
			continue
		}
		dropped := len(h.queues[id])
		delete(h.queues, id)
		delete(h.delivered, id)
		delete(h.absentSince, id)
		if f := h.files[id]; f != nil {
			f.Close()
			delete(h.files, id)
		}
		if h.dir != "" {
			_ = h.fs.Remove(h.hintPath(id))
		}
		h.mu.Unlock()
		h.abandonedC.Add(uint64(dropped))
		h.s.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "handoff queue abandoned",
			slog.String("peer", id), slog.Int("hints", dropped),
			slog.Duration("absent", now.Sub(first)))
	}
	return keep
}

// orphaned counts hints queued for peers currently absent from membership
// (the epfis_cluster_handoff_orphaned gauge).
func (h *handoff) orphaned() int {
	known := map[string]bool{}
	for _, p := range h.s.cluster.Peers() {
		known[p.ID] = true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for id, q := range h.queues {
		if !known[id] {
			n += len(q)
		}
	}
	return n
}

// drainPeer delivers one peer's queue in FIFO order, stopping at the first
// failure (order preservation keeps same-key epochs arriving ascending in
// the common case; the receiver's stamp gate handles the rest). Drains are
// serialized per peer: the background sweeper and synchronous DrainHandoff
// callers otherwise race on queue[0] — both deliver the same record, both
// pop, and an undelivered hint vanishes.
func (h *handoff) drainPeer(ctx context.Context, id string, force bool) {
	lk := h.drainLock(id)
	lk.Lock()
	defer lk.Unlock()
	var info cluster.PeerInfo
	found := false
	for _, p := range h.s.cluster.Peers() {
		if p.ID == id {
			info, found = p, true
			break
		}
	}
	if !found || info.URL == "" || (!force && info.State == cluster.StateDead) {
		return
	}
	br := h.breaker(id)
	for {
		if ctx.Err() != nil {
			return
		}
		h.mu.Lock()
		queue := h.queues[id]
		if len(queue) == 0 {
			if h.delivered[id] > 0 {
				h.compactLocked(id)
			}
			h.mu.Unlock()
			return
		}
		rec := queue[0]
		h.mu.Unlock()

		commit, _, err := br.Begin()
		if err != nil {
			if !force {
				return // breaker open: try again next sweep
			}
			commit = func(bool) {}
		}
		ptp, hasTP := obs.ParseTraceparent(rec.Trace)
		err = resilience.Retry(ctx, resilience.RetryPolicy{
			MaxAttempts: 3, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond,
		}, func(ctx context.Context) error {
			hop := ptp.Child()
			start := time.Now()
			status, rerr := h.s.replicateTo(info.URL, rec.Method, rec.Path, rec.Body, rec.Epoch, hop, hasTP)
			h.s.cobs.observeReplication(id, "handoff", time.Since(start))
			if hasTP {
				h.s.obs.ring.RecordHop(hop, ptp.Span, obs.HopHandoff, id, rec.Path, status, start, time.Since(start))
			}
			return rerr
		})
		commit(err != nil)
		if err != nil {
			h.failuresC.Inc()
			return
		}
		h.mu.Lock()
		// Re-read under the lock: enqueue only appends, and the per-peer
		// drain mutex excludes every other drainer, so index 0 is still the
		// record just delivered.
		if q := h.queues[id]; len(q) > 0 {
			h.queues[id] = q[1:]
			h.delivered[id]++
			if len(h.queues[id]) == 0 || h.delivered[id] >= handoffCompactAfter {
				h.compactLocked(id)
			}
		}
		h.mu.Unlock()
		h.deliveredC.Inc()
	}
}

// close stops the drainer and releases journal handles.
func (h *handoff) close() {
	h.once.Do(func() { close(h.stop) })
	<-h.done
	h.mu.Lock()
	for id, f := range h.files {
		f.Close()
		delete(h.files, id)
	}
	h.mu.Unlock()
}

// DrainHandoff synchronously attempts delivery of every queued hint,
// bypassing dead-peer skips and per-peer circuit breakers — the
// deterministic drain lever for partition drills and tests. It reports the
// number of hints still pending afterwards.
func (s *Server) DrainHandoff(ctx context.Context) int {
	if s.handoff == nil {
		return 0
	}
	s.handoff.drainOnce(ctx, true)
	return s.handoff.pending()
}
