package service

// ClusterClient is the cluster-aware extension of the retrying Client: it
// learns the ring from any seed node's /v1/cluster/health document, computes
// the same consistent-hash placement every server computes, and routes each
// estimate to the key's owners directly — no proxy hop in the steady state.
//
// Resilience layers, outermost first:
//
//   - ring-position routing with owner failover: the primary is tried first,
//     replicas in ring order after it;
//   - hedging: if the first owner has not answered within HedgeAfter, the
//     request is also sent to the next replica and the first answer wins
//     (estimates are idempotent reads, so hedges are safe);
//   - a per-node resilience.Breaker: a node that keeps failing is skipped at
//     dispatch until its cooldown probe succeeds, so a dead node costs one
//     timeout per cooldown instead of one per request;
//   - 421 re-route: a Misdirected answer means placement moved (a member
//     joined); the client refreshes the ring from the cluster and retries
//     once against the new owners.
//
// Batches are partitioned by primary owner — each node receives exactly the
// items it owns in one sub-batch — and the per-node responses are merged
// back into the original request order.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"epfis/internal/cluster"
	"epfis/internal/resilience"
)

// DefaultHedgeAfter is the time the primary owner gets before a hedge is
// sent to the next replica.
const DefaultHedgeAfter = 50 * time.Millisecond

// ClusterClientConfig configures NewClusterClient. Seeds is required.
type ClusterClientConfig struct {
	// Seeds are node base URLs; the ring is learned from the first one that
	// answers /v1/cluster/health and refreshed on demand after that.
	Seeds []string
	// HTTPClient overrides http.DefaultClient for every node.
	HTTPClient *http.Client
	// Retry tunes each per-node request's retry policy. Note hedging already
	// provides cross-node redundancy; the zero value here keeps the
	// resilience defaults within one node.
	Retry resilience.RetryPolicy
	// HedgeAfter is the wait before hedging to the next replica.
	// 0 = DefaultHedgeAfter; negative disables hedging (failover only).
	HedgeAfter time.Duration
	// BreakerFailures / BreakerCooldown tune the per-node breakers
	// (0 = resilience defaults).
	BreakerFailures int
	BreakerCooldown time.Duration
}

// clusterNode is one node the client knows: its address, a plain Client
// bound to it, and the breaker guarding it.
type clusterNode struct {
	id      string
	url     string
	client  *Client
	breaker *resilience.Breaker
}

// ClusterClient routes estimates across a cluster. Construct with
// NewClusterClient; safe for concurrent use.
type ClusterClient struct {
	cfg ClusterClientConfig
	hc  *http.Client

	mu       sync.RWMutex
	ring     *cluster.Ring
	replicas int
	nodes    map[string]*clusterNode // by node ID
}

// NewClusterClient builds a client over the seed list. The ring is fetched
// lazily on first use (or eagerly via Refresh).
func NewClusterClient(cfg ClusterClientConfig) (*ClusterClient, error) {
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("service: ClusterClientConfig.Seeds is required")
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &ClusterClient{cfg: cfg, hc: hc, nodes: map[string]*clusterNode{}}, nil
}

// Refresh fetches the cluster document from the first answering seed (or
// already-known node) and rebuilds the ring and node table.
func (c *ClusterClient) Refresh(ctx context.Context) error {
	bases := c.knownURLs()
	var lastErr error
	for _, base := range bases {
		cl, err := NewClient(ClientConfig{BaseURL: base, HTTPClient: c.hc,
			Retry: resilience.RetryPolicy{MaxAttempts: 1}})
		if err != nil {
			lastErr = err
			continue
		}
		var doc cluster.Doc
		if err := cl.do(ctx, http.MethodGet, cluster.PathHealth, nil, &doc); err != nil {
			lastErr = err
			continue
		}
		return c.adopt(doc)
	}
	if lastErr == nil {
		lastErr = errors.New("service: no cluster seed answered")
	}
	return fmt.Errorf("service: cluster refresh: %w", lastErr)
}

// knownURLs lists node URLs to try for a refresh: known members first (their
// docs are fresher than a static seed list), then the seeds.
func (c *ClusterClient) knownURLs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[string]bool{}
	out := make([]string, 0, len(c.nodes)+len(c.cfg.Seeds))
	for _, n := range c.nodes {
		if n.url != "" && !seen[n.url] {
			seen[n.url] = true
			out = append(out, n.url)
		}
	}
	for _, s := range c.cfg.Seeds {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// adopt installs a cluster document: rebuild the ring over the member IDs
// and refresh the node table, preserving existing breakers (their failure
// history survives a refresh).
func (c *ClusterClient) adopt(doc cluster.Doc) error {
	ids := make([]string, 0, len(doc.Members))
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range doc.Members {
		if m.ID == "" || m.URL == "" {
			continue
		}
		ids = append(ids, m.ID)
		if n, ok := c.nodes[m.ID]; ok {
			if n.url != m.URL {
				cl, err := NewClient(ClientConfig{BaseURL: m.URL, HTTPClient: c.hc, Retry: c.cfg.Retry})
				if err != nil {
					return err
				}
				n.url, n.client = m.URL, cl
			}
			continue
		}
		cl, err := NewClient(ClientConfig{BaseURL: m.URL, HTTPClient: c.hc, Retry: c.cfg.Retry})
		if err != nil {
			return err
		}
		c.nodes[m.ID] = &clusterNode{
			id:     m.ID,
			url:    m.URL,
			client: cl,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Failures: c.cfg.BreakerFailures,
				Cooldown: c.cfg.BreakerCooldown,
			}),
		}
	}
	if len(ids) == 0 {
		return errors.New("service: cluster document carries no members")
	}
	c.ring = cluster.BuildRing(ids, doc.VNodes)
	c.replicas = doc.Replicas
	if c.replicas <= 0 {
		c.replicas = cluster.DefaultReplicas
	}
	return nil
}

// ensureRing fetches the ring on first use.
func (c *ClusterClient) ensureRing(ctx context.Context) error {
	c.mu.RLock()
	ok := c.ring != nil
	c.mu.RUnlock()
	if ok {
		return nil
	}
	return c.Refresh(ctx)
}

// ownerNodes resolves the key's replica set to dispatchable nodes, primary
// first.
func (c *ClusterClient) ownerNodes(key string) []*clusterNode {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.ring == nil {
		return nil
	}
	ids := c.ring.Owners(key, c.replicas)
	out := make([]*clusterNode, 0, len(ids))
	for _, id := range ids {
		if n, ok := c.nodes[id]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Ring returns the client's current view of the ring (nil before first use).
func (c *ClusterClient) Ring() *cluster.Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring
}

// isMisdirected reports a 421 answer — placement moved under the client.
func isMisdirected(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusMisdirectedRequest
}

// isNodeFailure classifies an estimate error for the per-node breaker:
// transport trouble and 5xx/429 strike the node; client-side errors
// (bad input, unknown index, misdirected) do not.
func isNodeFailure(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500 || se.Code == http.StatusTooManyRequests
	}
	return !errors.Is(err, context.Canceled)
}

// Estimate fetches one estimate from the key's owners, hedging and failing
// over between them, re-routing once on 421.
func (c *ClusterClient) Estimate(ctx context.Context, req EstimateRequest) (EstimateResponse, error) {
	if err := c.ensureRing(ctx); err != nil {
		return EstimateResponse{}, err
	}
	resp, err := c.estimateOnce(ctx, req)
	if isMisdirected(err) {
		if rerr := c.Refresh(ctx); rerr == nil {
			resp, err = c.estimateOnce(ctx, req)
		}
	}
	return resp, err
}

// estimateOnce runs the hedged owner race for one logical estimate.
func (c *ClusterClient) estimateOnce(ctx context.Context, req EstimateRequest) (EstimateResponse, error) {
	key := req.Table + "." + req.Column
	nodes := c.ownerNodes(key)
	if len(nodes) == 0 {
		return EstimateResponse{}, fmt.Errorf("service: no known owner for %s", key)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // winner decided: abandon in-flight hedges
	type result struct {
		resp EstimateResponse
		err  error
	}
	resCh := make(chan result, len(nodes))
	launch := func(n *clusterNode) {
		go func() {
			commit, _, err := n.breaker.Begin()
			if err != nil {
				resCh <- result{err: fmt.Errorf("node %s: %w", n.id, err)}
				return
			}
			resp, err := n.client.Estimate(ctx, req)
			commit(isNodeFailure(err))
			resCh <- result{resp: resp, err: err}
		}()
	}
	launched := 1
	launch(nodes[0])
	var hedge <-chan time.Time
	if c.cfg.HedgeAfter > 0 && len(nodes) > 1 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	var firstErr error
	for received := 0; received < launched; {
		select {
		case r := <-resCh:
			received++
			if r.err == nil {
				return r.resp, nil
			}
			if firstErr == nil || isMisdirected(r.err) {
				// Keep the most actionable error: a 421 tells the caller to
				// re-route, so it wins over earlier transport noise.
				firstErr = r.err
			}
			// A definite failure frees a slot: fail over to the next owner
			// immediately rather than waiting for the hedge timer.
			if launched < len(nodes) {
				launch(nodes[launched])
				launched++
			}
		case <-hedge:
			hedge = nil
			if launched < len(nodes) {
				launch(nodes[launched])
				launched++
			}
		case <-ctx.Done():
			return EstimateResponse{}, ctx.Err()
		}
	}
	return EstimateResponse{}, firstErr
}

// EstimateBatch partitions the batch by primary owner, sends each node its
// sub-batch concurrently, and merges the answers back into request order.
// Items whose sub-batch fails wholesale carry that error per-item; items
// answered 421 are retried once after a ring refresh.
func (c *ClusterClient) EstimateBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	if err := c.ensureRing(ctx); err != nil {
		return BatchResponse{}, err
	}
	items := make([]BatchItem, len(req.Requests))
	if err := c.batchRound(ctx, req.Requests, indexRange(len(req.Requests)), items); err != nil {
		return BatchResponse{}, err
	}
	// One re-route round for items the servers disowned (421).
	var retry []int
	for i, it := range items {
		if it.Estimate == nil && it.Status == http.StatusMisdirectedRequest {
			retry = append(retry, i)
		}
	}
	if len(retry) > 0 {
		if err := c.Refresh(ctx); err == nil {
			_ = c.batchRound(ctx, req.Requests, retry, items)
		}
	}
	out := BatchResponse{Count: len(items), Items: items}
	for _, it := range items {
		if it.Estimate == nil {
			out.Failed++
		} else if it.Estimate.Generation > out.Generation {
			out.Generation = it.Estimate.Generation
		}
	}
	return out, nil
}

func indexRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// batchRound sends the chosen request indices to their primary owners and
// writes answers into items (indexed like reqs).
func (c *ClusterClient) batchRound(ctx context.Context, reqs []EstimateRequest, idxs []int, items []BatchItem) error {
	c.mu.RLock()
	ring := c.ring
	c.mu.RUnlock()
	if ring == nil {
		return errors.New("service: cluster ring not initialized")
	}
	groups := map[string][]int{} // primary owner ID -> request indices
	for _, i := range idxs {
		r := &reqs[i]
		owner := ring.Primary(r.Table + "." + r.Column)
		groups[owner] = append(groups[owner], i)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex // guards items writes across groups
	for owner, members := range groups {
		c.mu.RLock()
		node := c.nodes[owner]
		c.mu.RUnlock()
		wg.Add(1)
		go func(node *clusterNode, members []int) {
			defer wg.Done()
			fill := func(it BatchItem) {
				mu.Lock()
				for _, i := range members {
					items[i] = it
				}
				mu.Unlock()
			}
			if node == nil {
				fill(BatchItem{Error: "no known owner", Status: http.StatusServiceUnavailable})
				return
			}
			commit, _, err := node.breaker.Begin()
			if err != nil {
				fill(BatchItem{Error: err.Error(), Status: http.StatusServiceUnavailable})
				return
			}
			sub := BatchRequest{Requests: make([]EstimateRequest, len(members))}
			for j, i := range members {
				sub.Requests[j] = reqs[i]
			}
			resp, err := node.client.EstimateBatch(ctx, sub)
			commit(isNodeFailure(err))
			if err != nil {
				status := http.StatusServiceUnavailable
				var se *StatusError
				if errors.As(err, &se) {
					status = se.Code
				}
				fill(BatchItem{Error: err.Error(), Status: status})
				return
			}
			mu.Lock()
			for j, i := range members {
				if j < len(resp.Items) {
					items[i] = resp.Items[j]
				} else {
					items[i] = BatchItem{Error: "missing item in node response", Status: http.StatusBadGateway}
				}
			}
			mu.Unlock()
		}(node, members)
	}
	wg.Wait()
	return nil
}

// Health proxies the plain health document from the first answering node.
func (c *ClusterClient) Health(ctx context.Context) (Health, error) {
	var lastErr error
	for _, base := range c.knownURLs() {
		cl, err := NewClient(ClientConfig{BaseURL: base, HTTPClient: c.hc,
			Retry: resilience.RetryPolicy{MaxAttempts: 1}})
		if err != nil {
			lastErr = err
			continue
		}
		h, err := cl.Health(ctx)
		if err == nil {
			return h, nil
		}
		lastErr = err
	}
	return Health{}, fmt.Errorf("service: cluster health: %w", lastErr)
}
