// Package service exposes the statistics catalog and Subprogram Est-IO as a
// long-running HTTP JSON API — the estimation service a query optimizer
// calls on its planning hot path. Est-IO is "a handful of float operations",
// so the service is engineered for high QPS on small requests:
//
//   - every request resolves statistics through one lock-free catalog
//     snapshot load (package catalog);
//   - a sharded LRU memo cache absorbs re-costed identical plan shapes,
//     keyed by (index, generation, B, sigma, S) so catalog updates
//     invalidate implicitly;
//   - POST /v1/estimate/batch amortizes HTTP and JSON overhead across the
//     many candidate plans an optimizer costs per query;
//   - per-route counters and latency summaries are plain atomics, serialized
//     only when GET /metrics asks.
//
// Routes:
//
//	GET    /v1/estimate                     one estimate (query parameters)
//	POST   /v1/estimate/batch               many estimates in one round trip
//	GET    /v1/indexes                      catalog listing
//	PUT    /v1/indexes/{table}/{column}     install statistics
//	DELETE /v1/indexes/{table}/{column}     drop statistics
//	POST   /v1/reload                       re-read the catalog file
//	GET    /healthz                         liveness + catalog generation
//	GET    /metrics                         counters (expvar-style JSON)
//
// Invalid estimation inputs surface as HTTP 400 carrying the core package's
// typed sentinel message; unknown indexes as 404. Handlers run behind
// panic-recovery and request-timeout middleware, and Run drains in-flight
// requests on context cancellation (SIGTERM in cmd/epfis-serve).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/core"
	"epfis/internal/stats"
)

// Defaults for Config zero values.
const (
	DefaultCacheEntries   = 4096
	DefaultRequestTimeout = 5 * time.Second
	DefaultMaxBatch       = 1024

	maxBodyBytes = 8 << 20 // PUT bodies carry histograms; batches carry many inputs
)

// Config configures New. Store is required; everything else defaults.
type Config struct {
	// Store is the catalog the service reads and writes.
	Store *catalog.Store
	// CacheEntries sizes the Est-IO memo cache (total entries across
	// shards). 0 = DefaultCacheEntries; negative disables memoization.
	CacheEntries int
	// RequestTimeout bounds each request's total handling time.
	// 0 = DefaultRequestTimeout; negative disables the timeout.
	RequestTimeout time.Duration
	// MaxBatch caps the number of inputs per batch request.
	// 0 = DefaultMaxBatch.
	MaxBatch int
	// Logger receives lifecycle and panic logs; nil discards them.
	Logger *log.Logger
}

// Server is the estimation service. Construct with New; safe for concurrent
// use.
type Server struct {
	store    *catalog.Store
	cache    *memoCache // nil when disabled
	met      *metrics
	handler  http.Handler
	maxBatch int
	log      *log.Logger
}

// Route names, used as metrics keys.
const (
	routeEstimate    = "GET /v1/estimate"
	routeBatch       = "POST /v1/estimate/batch"
	routeIndexes     = "GET /v1/indexes"
	routePutIndex    = "PUT /v1/indexes/{table}/{column}"
	routeDeleteIndex = "DELETE /v1/indexes/{table}/{column}"
	routeReload      = "POST /v1/reload"
	routeHealthz     = "GET /healthz"
	routeMetrics     = "GET /metrics"
)

// New builds the service around a catalog store.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("service: Config.Store is required")
	}
	s := &Server{
		store:    cfg.Store,
		maxBatch: cfg.MaxBatch,
		log:      cfg.Logger,
	}
	if s.maxBatch == 0 {
		s.maxBatch = DefaultMaxBatch
	}
	if s.log == nil {
		s.log = log.New(io.Discard, "", 0)
	}
	switch {
	case cfg.CacheEntries == 0:
		s.cache = newMemoCache(DefaultCacheEntries)
	case cfg.CacheEntries > 0:
		s.cache = newMemoCache(cfg.CacheEntries)
	}
	s.met = newMetrics([]string{
		routeEstimate, routeBatch, routeIndexes, routePutIndex,
		routeDeleteIndex, routeReload, routeHealthz, routeMetrics,
	})

	mux := http.NewServeMux()
	mux.Handle(routeEstimate, s.instrument(routeEstimate, s.handleEstimate))
	mux.Handle(routeBatch, s.instrument(routeBatch, s.handleBatch))
	mux.Handle(routeIndexes, s.instrument(routeIndexes, s.handleIndexes))
	mux.Handle(routePutIndex, s.instrument(routePutIndex, s.handlePutIndex))
	mux.Handle(routeDeleteIndex, s.instrument(routeDeleteIndex, s.handleDeleteIndex))
	mux.Handle(routeReload, s.instrument(routeReload, s.handleReload))
	mux.Handle(routeHealthz, s.instrument(routeHealthz, s.handleHealthz))
	mux.Handle(routeMetrics, s.instrument(routeMetrics, s.handleMetrics))

	var h http.Handler = mux
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	if timeout > 0 {
		h = http.TimeoutHandler(h, timeout, `{"error":"request timed out"}`)
	}
	s.handler = h
	return s, nil
}

// Handler returns the fully wrapped HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// ServeHTTP makes Server itself an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Run listens on addr and serves until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to 10 seconds.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return s.Serve(ctx, ln)
}

// Serve is Run over an existing listener (useful for ephemeral test ports).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.log.Printf("service: listening on %s (%d catalog entries, generation %d)",
		ln.Addr(), s.store.Len(), s.store.Generation())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.log.Printf("service: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("service: shutdown: %w", err)
		}
		return nil
	}
}

// instrument wraps a handler with panic recovery and per-route metrics.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				s.log.Printf("service: panic on %s: %v", route, p)
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, errors.New("internal error"))
				}
				rec.status = http.StatusInternalServerError
			}
			s.met.observe(route, rec.status, time.Since(start))
		}()
		h(rec, r)
	})
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// estimateRequest is one Est-IO input addressed at a catalog entry. S is a
// pointer so "omitted" (no sargable predicates, treated as 1) is
// distinguishable from an explicit out-of-domain 0.
type estimateRequest struct {
	Table  string   `json:"table"`
	Column string   `json:"column"`
	B      int64    `json:"b"`
	Sigma  float64  `json:"sigma"`
	S      *float64 `json:"s,omitempty"`
	Detail bool     `json:"detail,omitempty"`
}

func (r estimateRequest) sarg() float64 {
	if r.S == nil {
		return 1
	}
	return *r.S
}

// estimateResponse carries the estimate; Fetches is bit-exact with a direct
// core.EstimateFetches call (JSON float64 encoding round-trips exactly).
type estimateResponse struct {
	Table      string         `json:"table"`
	Column     string         `json:"column"`
	B          int64          `json:"b"`
	Sigma      float64        `json:"sigma"`
	S          float64        `json:"s"`
	Fetches    float64        `json:"fetches"`
	Generation uint64         `json:"generation"`
	Cached     bool           `json:"cached"`
	Detail     *core.Estimate `json:"detail,omitempty"`
}

// estimate resolves statistics against one snapshot and runs (or recalls)
// Est-IO. It is the shared core of the single and batch endpoints.
func (s *Server) estimate(snap *catalog.Snapshot, req estimateRequest) (estimateResponse, error) {
	st, err := snap.Get(req.Table, req.Column)
	if err != nil {
		return estimateResponse{}, err
	}
	resp := estimateResponse{
		Table:      req.Table,
		Column:     req.Column,
		B:          req.B,
		Sigma:      req.Sigma,
		S:          req.sarg(),
		Generation: snap.Generation(),
	}
	key := memoKey{
		index: req.Table + "." + req.Column,
		gen:   snap.Generation(),
		b:     req.B,
		sigma: req.Sigma,
		sarg:  resp.S,
	}
	var est core.Estimate
	cached := false
	if s.cache != nil {
		est, cached = s.cache.get(key)
	}
	if !cached {
		est, err = core.EstIO(st, core.Input{B: req.B, Sigma: req.Sigma, S: resp.S}, core.Options{})
		if err != nil {
			return estimateResponse{}, err
		}
		if s.cache != nil {
			s.cache.put(key, est)
		}
	}
	s.met.estimates.Add(1)
	resp.Fetches = est.F
	resp.Cached = cached
	if req.Detail {
		d := est
		resp.Detail = &d
	}
	return resp, nil
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	req, err := parseEstimateQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.estimate(s.store.Snapshot(), req)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func parseEstimateQuery(r *http.Request) (estimateRequest, error) {
	q := r.URL.Query()
	req := estimateRequest{Table: q.Get("table"), Column: q.Get("column")}
	if req.Table == "" || req.Column == "" {
		return req, errors.New("query parameters table and column are required")
	}
	var err error
	if req.B, err = strconv.ParseInt(q.Get("b"), 10, 64); err != nil {
		return req, fmt.Errorf("query parameter b: %w", err)
	}
	if req.Sigma, err = strconv.ParseFloat(q.Get("sigma"), 64); err != nil {
		return req, fmt.Errorf("query parameter sigma: %w", err)
	}
	if raw := q.Get("s"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return req, fmt.Errorf("query parameter s: %w", err)
		}
		req.S = &v
	}
	if raw := q.Get("detail"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			return req, fmt.Errorf("query parameter detail: %w", err)
		}
		req.Detail = v
	}
	return req, nil
}

// batchRequest and batchResponse amortize per-request overhead: one HTTP
// round trip and one JSON document for the dozens of candidate plans an
// optimizer costs while planning a single query.
type batchRequest struct {
	Requests []estimateRequest `json:"requests"`
}

type batchItem struct {
	Estimate *estimateResponse `json:"estimate,omitempty"`
	Error    string            `json:"error,omitempty"`
	Status   int               `json:"status,omitempty"`
}

type batchResponse struct {
	Count      int         `json:"count"`
	Failed     int         `json:"failed"`
	Generation uint64      `json:"generation"`
	Items      []batchItem `json:"items"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var breq batchRequest
	if err := decodeJSON(w, r, &breq); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(breq.Requests) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch has no requests"))
		return
	}
	if len(breq.Requests) > s.maxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(breq.Requests), s.maxBatch))
		return
	}
	// One snapshot for the whole batch: every item is costed against the
	// same catalog generation even if a writer lands mid-flight.
	snap := s.store.Snapshot()
	resp := batchResponse{
		Count:      len(breq.Requests),
		Generation: snap.Generation(),
		Items:      make([]batchItem, len(breq.Requests)),
	}
	for i, req := range breq.Requests {
		est, err := s.estimate(snap, req)
		if err != nil {
			resp.Items[i] = batchItem{Error: err.Error(), Status: statusOf(err)}
			resp.Failed++
			continue
		}
		resp.Items[i] = batchItem{Estimate: &est}
	}
	writeJSON(w, http.StatusOK, resp)
}

// indexSummary is one row of the catalog listing.
type indexSummary struct {
	Table            string    `json:"table"`
	Column           string    `json:"column"`
	Pages            int64     `json:"pages"`
	Records          int64     `json:"records"`
	DistinctKeys     int64     `json:"distinctKeys"`
	ClusteringFactor float64   `json:"clusteringFactor"`
	BufferMin        int64     `json:"bufferMin"`
	BufferMax        int64     `json:"bufferMax"`
	CurveKnots       int       `json:"curveKnots"`
	HasHistogram     bool      `json:"hasHistogram"`
	CollectedAt      time.Time `json:"collectedAt"`
}

func (s *Server) handleIndexes(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	out := struct {
		Generation uint64         `json:"generation"`
		Count      int            `json:"count"`
		Indexes    []indexSummary `json:"indexes"`
	}{Generation: snap.Generation(), Count: snap.Len(), Indexes: []indexSummary{}}
	for _, key := range snap.Keys() {
		e, ok := snap.Lookup(key)
		if !ok {
			continue
		}
		out.Indexes = append(out.Indexes, indexSummary{
			Table:            e.Table,
			Column:           e.Column,
			Pages:            e.T,
			Records:          e.N,
			DistinctKeys:     e.I,
			ClusteringFactor: e.C,
			BufferMin:        e.BMin,
			BufferMax:        e.BMax,
			CurveKnots:       len(e.Curve.Knots),
			HasHistogram:     len(e.KeyHistogram) > 0,
			CollectedAt:      e.CollectedAt,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePutIndex(w http.ResponseWriter, r *http.Request) {
	table, column := r.PathValue("table"), r.PathValue("column")
	var e stats.IndexStats
	if err := decodeJSON(w, r, &e); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if e.Table == "" {
		e.Table = table
	}
	if e.Column == "" {
		e.Column = column
	}
	if e.Table != table || e.Column != column {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("body identifies %s.%s but path identifies %s.%s", e.Table, e.Column, table, column))
		return
	}
	gen, err := s.store.Put(&e)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": e.Key(), "generation": gen})
}

func (s *Server) handleDeleteIndex(w http.ResponseWriter, r *http.Request) {
	table, column := r.PathValue("table"), r.PathValue("column")
	ok, gen, err := s.store.Delete(table, column)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s.%s", stats.ErrNotFound, table, column))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"generation": gen})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	gen, err := s.store.Reload()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, catalog.ErrNoPath) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"generation": gen, "indexes": s.store.Len()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"generation":    snap.Generation(),
		"indexes":       snap.Len(),
		"uptimeSeconds": time.Since(s.met.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.met.snapshot(s.cache))
}

// statusOf maps domain errors to HTTP statuses: invalid Est-IO inputs are
// client errors, unknown indexes are 404s, anything else is a 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, core.ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, stats.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error(), "status": status})
}
