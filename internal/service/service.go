// Package service exposes the statistics catalog and Subprogram Est-IO as a
// long-running HTTP JSON API — the estimation service a query optimizer
// calls on its planning hot path. Est-IO is "a handful of float operations",
// so the service is engineered for high QPS on small requests:
//
//   - every request resolves statistics through one lock-free catalog
//     snapshot load (package catalog), and runs the snapshot's pre-compiled
//     estimator (core.CompiledEstimator) rather than interpreting the
//     statistics entry per call;
//   - a lock-free open-addressed memo cache (CLOCK eviction) absorbs
//     re-costed identical plan shapes, keyed by (index, generation, B,
//     sigma, S) so catalog updates invalidate implicitly;
//   - the two estimate routes bypass encoding/json entirely: pooled
//     append-based encoding and a specialized batch decoder (codec.go) keep
//     the steady-state serving path at a handful of allocations per request
//     while emitting byte-identical JSON;
//   - POST /v1/estimate/batch amortizes HTTP and JSON overhead across the
//     many candidate plans an optimizer costs per query;
//   - per-route counters and latency summaries are plain atomics, serialized
//     only when GET /metrics asks.
//
// Routes:
//
//	GET    /v1/estimate                     one estimate (query parameters)
//	POST   /v1/estimate/batch               many estimates in one round trip
//	GET    /v1/indexes                      catalog listing
//	PUT    /v1/indexes/{table}/{column}     install statistics
//	DELETE /v1/indexes/{table}/{column}     drop statistics
//	POST   /v1/reload                       re-read the catalog file
//	GET    /healthz                         liveness + build info + generation
//	GET    /metrics                         counters (JSON default; Prometheus
//	                                        text via Accept: text/plain or
//	                                        ?format=prom)
//	GET    /debug/traces                    recent request traces (JSON)
//	GET    /debug/traces/{traceid}          one trace, stitched across the cluster
//	GET    /debug/accuracy                  continuous estimator-accuracy telemetry
//	GET    /v1/cluster/metrics              federated cluster-wide metrics
//
// Invalid estimation inputs surface as HTTP 400 carrying the core package's
// typed sentinel message; unknown indexes as 404. Handlers run behind
// panic-recovery and request-timeout middleware, and Run drains in-flight
// requests on context cancellation (SIGTERM in cmd/epfis-serve).
//
// # Resilience
//
// The service degrades explicitly instead of failing wholesale:
//
//   - Admission control bounds in-flight requests per route; excess load is
//     shed with 429 + Retry-After before it queues (healthz and metrics are
//     exempt, so operators can always observe an overloaded instance).
//   - A circuit breaker guards the disk-touching paths (install, delete,
//     reload): consecutive persistence failures open it, and further
//     mutations are rejected with 503 + Retry-After until a cooldown probe
//     succeeds. Estimate reads never touch the breaker — they are lock-free
//     snapshot loads and keep working against the last good catalog.
//   - Degraded mode: when a reload fails (corrupt file, injected fault, bad
//     disk) the last good snapshot stays published and the service keeps
//     answering from it; /healthz and /metrics report "degraded" with the
//     stale generation and the reload error until a reload succeeds.
//   - While draining on shutdown, /healthz turns 503 with Retry-After so
//     load balancers rotate the instance out.
//
// Persistence failures surface as 503 (retryable), never as wrong answers.
//
// # Observability
//
// A zero-allocation observability core (package obs) is threaded through
// every request: per-route latency histograms and status-class counters,
// estimate-shape distributions (requested B, sigma, per-index counts), and
// bridges over the cache, breaker, degraded, and catalog state, all
// exported as a Prometheus text exposition when GET /metrics is asked for
// text/plain (the JSON document stays the default). Requests carry W3C
// traceparent identities — inbound headers are re-parented, absent or
// malformed ones replaced — with per-stage spans (parse/cache/estimate/
// encode) recorded into pooled buffers and retained in a fixed ring served
// by GET /debug/traces. Lifecycle and degradation events are structured
// log/slog records (Config.Slog). The hot path records into preallocated
// atomics only: with tracing and histograms enabled the estimate routes
// stay within the committed alloc budgets (see cmd/epfis-bench -suite
// serve).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/cluster"
	"epfis/internal/core"
	"epfis/internal/obs"
	"epfis/internal/resilience"
	"epfis/internal/stats"
)

// Defaults for Config zero values.
const (
	DefaultCacheEntries   = 4096
	DefaultRequestTimeout = 5 * time.Second
	DefaultMaxBatch       = 1024
	DefaultMaxInflight    = 256

	maxBodyBytes = 8 << 20 // PUT bodies carry histograms; batches carry many inputs
)

// errOverloaded is the admission-control shed response body.
var errOverloaded = errors.New("service overloaded, retry later")

// Config configures New. Store is required; everything else defaults.
type Config struct {
	// Store is the catalog the service reads and writes.
	Store *catalog.Store
	// CacheEntries sizes the Est-IO memo cache (total entries across
	// shards). 0 = DefaultCacheEntries; negative disables memoization.
	CacheEntries int
	// RequestTimeout bounds each request's total handling time.
	// 0 = DefaultRequestTimeout; negative disables the timeout.
	RequestTimeout time.Duration
	// MaxBatch caps the number of inputs per batch request.
	// 0 = DefaultMaxBatch.
	MaxBatch int
	// MaxInflight bounds concurrently handled requests per route; excess
	// requests are shed with 429 + Retry-After. /healthz and /metrics are
	// exempt. 0 = DefaultMaxInflight; negative disables admission control.
	MaxInflight int
	// BreakerFailures is the consecutive persistence-failure count that
	// opens the circuit breaker guarding disk-touching routes.
	// 0 = resilience.DefaultBreakerFailures; negative disables the breaker.
	BreakerFailures int
	// BreakerCooldown is how long the opened breaker rejects mutations
	// before probing again. 0 = resilience.DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Logger receives lifecycle and panic logs; nil discards them.
	// Deprecated in favour of Slog: when only Logger is set it is bridged
	// through a slog text handler on its writer.
	Logger *log.Logger
	// Slog receives structured service logs (request tracing, degraded-mode
	// transitions, breaker state changes). Takes precedence over Logger;
	// with both nil, logs are discarded.
	Slog *slog.Logger
	// TraceRing sizes the ring of recently completed request traces served
	// at GET /debug/traces. 0 = DefaultTraceRing; negative disables request
	// tracing entirely (no traceparent handling, no span recording).
	TraceRing int
	// SlowTrace is the duration at which a completed request is flagged
	// slow: counted in epfis_traces_slow_total and logged at warn.
	// 0 = DefaultSlowTrace; negative flags every request (tests, drills).
	SlowTrace time.Duration
	// Cluster enables cluster mode: ownership routing on the estimate
	// routes, mutation replication, and the /v1/cluster/* routes. nil (the
	// default) keeps the single-node serving path — one pointer check per
	// request, no other cost.
	Cluster *cluster.Node
	// Transport is the HTTP transport for forwarding, replication, and
	// hinted-handoff delivery. nil = http.DefaultTransport. Cluster mode
	// only; the seam faultnet injectors plug into.
	Transport http.RoundTripper
	// ReplicateTimeout bounds each per-peer replication send, so one
	// partitioned peer costs a timeout plus a journaled hint, never a hung
	// client mutation. 0 = DefaultReplicateTimeout. Cluster mode only.
	ReplicateTimeout time.Duration
	// WriteQuorum is W: how many of a key's ring owners must acknowledge a
	// mutation before the client's request succeeds (the local apply counts
	// when this node owns the key). 0 = majority of the owner set; positive
	// = that many (capped at the owner count); negative = no quorum (the
	// pre-quorum best-effort behaviour). Cluster mode only.
	WriteQuorum int
	// HandoffDir is where undeliverable replicated mutations are journaled
	// as per-peer hints (CRC32-C framed, fsynced, replayed at startup and
	// redelivered when the peer recovers), and where applied per-key
	// mutation stamps are journaled so delete tombstones survive restarts.
	// "" keeps both memory-only. Cluster mode only.
	HandoffDir string
	// HandoffAbandonAfter is how long hints for a peer absent from cluster
	// membership are retained before the queue and its journal are dropped.
	// 0 = DefaultHandoffAbandonAfter; negative retains them forever.
	// Cluster mode only.
	HandoffAbandonAfter time.Duration
	// IngestQueue bounds the trace batches queued for the ingest worker;
	// POST /v1/ingest sheds with 429 + Retry-After when it is full.
	// 0 = DefaultIngestQueue; negative disables the ingest route.
	IngestQueue int
	// DriftThreshold is the maximum relative divergence between a live
	// accumulated fetch curve and the published catalog entry before the
	// ingest worker refits and republishes the entry.
	// 0 = DefaultDriftThreshold.
	DriftThreshold float64
}

// reloadFailure records why the service is degraded.
type reloadFailure struct {
	err      string
	staleGen uint64 // generation still being served
	at       time.Time
}

// Server is the estimation service. Construct with New; safe for concurrent
// use.
type Server struct {
	store    *catalog.Store
	cache    *memoCache // nil when disabled
	met      *metrics
	obs      *serverObs
	handler  http.Handler
	maxBatch int

	inflight map[string]chan struct{} // per-route admission tokens; nil route = unbounded
	breaker  *resilience.Breaker      // nil when disabled
	degraded atomic.Pointer[reloadFailure]
	draining atomic.Bool

	cluster   *cluster.Node // nil = single-node mode
	cobs      *clusterObs   // nil unless cluster mode
	proxyHTTP *http.Client  // forwarding + replication transport
	handoff   *handoff      // nil unless cluster mode
	stamps    *stampJournal // nil unless cluster mode with a HandoffDir

	// clusterMu serializes epoch assignment with the store apply for every
	// cluster-mode mutation, so per-key epoch order equals apply order.
	clusterMu   sync.Mutex
	replTimeout time.Duration
	writeQuorum int

	ingest *ingester // nil when the ingest route is disabled
}

// Route names, used as metrics keys.
const (
	routeEstimate    = "GET /v1/estimate"
	routeBatch       = "POST /v1/estimate/batch"
	routeIndexes     = "GET /v1/indexes"
	routeIndex       = "GET /v1/indexes/{key}"
	routePutIndex    = "PUT /v1/indexes/{table}/{column}"
	routeDeleteIndex = "DELETE /v1/indexes/{table}/{column}"
	routeReload      = "POST /v1/reload"
	routeIngest      = "POST /v1/ingest"
	routeHealthz     = "GET /healthz"
	routeMetrics     = "GET /metrics"
	routeTraces      = "GET /debug/traces"
)

// New builds the service around a catalog store.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("service: Config.Store is required")
	}
	s := &Server{
		store:    cfg.Store,
		maxBatch: cfg.MaxBatch,
	}
	if s.maxBatch == 0 {
		s.maxBatch = DefaultMaxBatch
	}
	switch {
	case cfg.CacheEntries == 0:
		s.cache = newMemoCache(DefaultCacheEntries)
	case cfg.CacheEntries > 0:
		s.cache = newMemoCache(cfg.CacheEntries)
	}
	routeNames := []string{
		routeEstimate, routeBatch, routeIndexes, routeIndex, routePutIndex,
		routeDeleteIndex, routeReload, routeHealthz, routeMetrics,
		routeTraces, routeTrace,
	}
	if cfg.IngestQueue >= 0 {
		routeNames = append(routeNames, routeIngest, routeAccuracy)
	}
	if cfg.Cluster != nil {
		routeNames = append(routeNames,
			routeClusterHealth, routeClusterGossip, routeClusterSnapshot,
			routeClusterDigest, routeClusterEntry, routeClusterMetrics)
	}
	s.met = newMetrics(routeNames)

	if cfg.BreakerFailures >= 0 {
		s.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			Failures: cfg.BreakerFailures,
			Cooldown: cfg.BreakerCooldown,
			// The hook fires only on mutations at runtime, after New has
			// finished wiring s.obs (and guards nil regardless).
			OnStateChange: s.onBreakerChange,
		})
	}
	s.obs = newServerObs(s, cfg, routeNames)
	if cfg.Cluster != nil {
		s.cluster = cfg.Cluster
		s.cobs = newClusterObs(s.obs.reg)
		s.cluster.RegisterMetrics(s.obs.reg)
		// Hand the node the request-trace ring so gossip and anti-entropy
		// hops land next to served requests in /debug/traces (nil when
		// tracing is disabled — the node then skips hop recording).
		s.cluster.SetTraceRing(s.obs.ring)
		timeout := cfg.RequestTimeout
		if timeout == 0 {
			timeout = DefaultRequestTimeout
		} else if timeout < 0 {
			// Same contract as the handler timeout: negative disables it.
			// Client.Timeout arms a timer, a cancel context, and a body
			// wrapper on every forwarded request; with it off, cancellation
			// still flows in from the inbound request context.
			timeout = 0
		}
		tr := cfg.Transport
		if tr == nil {
			// Default to the pooled cluster transport: proxying, replication,
			// and hinted handoff share kept-alive connections per peer
			// instead of re-dialing through http.DefaultTransport's
			// 2-idle-conns-per-host pool.
			tr = cluster.SharedTransport()
		}
		s.proxyHTTP = &http.Client{Timeout: timeout, Transport: tr}
		s.replTimeout = cfg.ReplicateTimeout
		if s.replTimeout <= 0 {
			s.replTimeout = DefaultReplicateTimeout
		}
		s.writeQuorum = cfg.WriteQuorum
		h, err := newHandoff(s, cfg)
		if err != nil {
			return nil, err
		}
		s.handoff = h
		if cfg.HandoffDir != "" {
			// Reload applied mutation stamps (delete tombstones included)
			// before the first request: a post-restart snapshot merge must
			// not resurrect a key this node deleted.
			j, err := newStampJournal(s, cfg.HandoffDir)
			if err != nil {
				return nil, err
			}
			s.stamps = j
		}
	}
	maxInflight := cfg.MaxInflight
	if maxInflight == 0 {
		maxInflight = DefaultMaxInflight
	}
	if maxInflight > 0 {
		// healthz/metrics stay exempt: an overloaded instance must still be
		// observable and pass (or deliberately fail) its health checks.
		s.inflight = make(map[string]chan struct{})
		for _, route := range []string{
			routeEstimate, routeBatch, routeIndexes, routeIndex,
			routePutIndex, routeDeleteIndex, routeReload,
		} {
			s.inflight[route] = make(chan struct{}, maxInflight)
		}
	}

	s.ingest = newIngester(s, cfg)
	if s.ingest != nil {
		// With a WAL-backed store, acked ingest batches are journaled and
		// replayed here — before the worker starts, so replay owns the
		// accumulator maps without synchronization.
		if cfg.Store.WALPath() != "" {
			s.ingest.journal = true
			s.ingest.replay(cfg.Store.IngestRecords())
			cfg.Store.SetIngestSource(s.ingest.liveJournal)
		}
		go s.ingest.run()
	}

	mux := http.NewServeMux()
	mux.Handle(routeEstimate, s.instrument(routeEstimate, s.handleEstimate))
	mux.Handle(routeBatch, s.instrument(routeBatch, s.handleBatch))
	mux.Handle(routeIndexes, s.instrument(routeIndexes, s.handleIndexes))
	mux.Handle(routeIndex, s.instrument(routeIndex, s.handleIndex))
	mux.Handle(routePutIndex, s.instrument(routePutIndex, s.handlePutIndex))
	mux.Handle(routeDeleteIndex, s.instrument(routeDeleteIndex, s.handleDeleteIndex))
	mux.Handle(routeReload, s.instrument(routeReload, s.handleReload))
	if s.ingest != nil {
		// The ingest route carries its own backpressure (the bounded queue)
		// and is exempt from per-route admission control.
		mux.Handle(routeIngest, s.instrument(routeIngest, s.handleIngest))
		mux.Handle(routeAccuracy, s.instrument(routeAccuracy, s.handleAccuracy))
	}
	mux.Handle(routeHealthz, s.instrument(routeHealthz, s.handleHealthz))
	mux.Handle(routeMetrics, s.instrument(routeMetrics, s.handleMetrics))
	mux.Handle(routeTraces, s.instrument(routeTraces, s.handleTraces))
	mux.Handle(routeTrace, s.instrument(routeTrace, s.handleTrace))
	if s.cluster != nil {
		// Cluster management routes are exempt from admission control (like
		// healthz/metrics): heartbeats and recovery must work under load.
		mux.Handle(routeClusterHealth, s.instrument(routeClusterHealth, s.handleClusterHealth))
		mux.Handle(routeClusterGossip, s.instrument(routeClusterGossip, s.handleClusterGossip))
		mux.Handle(routeClusterSnapshot, s.instrument(routeClusterSnapshot, s.handleClusterSnapshot))
		mux.Handle(routeClusterDigest, s.instrument(routeClusterDigest, s.handleClusterDigest))
		mux.Handle(routeClusterEntry, s.instrument(routeClusterEntry, s.handleClusterEntry))
		mux.Handle(routeClusterMetrics, s.instrument(routeClusterMetrics, s.handleClusterMetrics))
	}

	var h http.Handler = mux
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	if timeout > 0 {
		h = http.TimeoutHandler(h, timeout, `{"error":"request timed out"}`)
	}
	s.handler = h
	return s, nil
}

// Handler returns the fully wrapped HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// ServeHTTP makes Server itself an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Run listens on addr and serves until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to 10 seconds.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return s.Serve(ctx, ln)
}

// Serve is Run over an existing listener (useful for ephemeral test ports).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.obs.log.LogAttrs(ctx, slog.LevelInfo, "service listening",
		slog.String("addr", ln.Addr().String()),
		slog.Int("indexes", s.store.Len()),
		slog.Uint64("generation", s.store.Generation()))
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Flip health to draining before the listener closes, so balancers
		// checking /healthz rotate this instance out during the drain.
		s.draining.Store(true)
		s.obs.log.LogAttrs(context.Background(), slog.LevelInfo, "service draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("service: shutdown: %w", err)
		}
		return nil
	}
}

// instrument wraps a handler with admission control, panic recovery,
// per-route metrics, and request tracing. The route's instruments are
// resolved once at wrap time, so per-request recording touches no maps. With
// tracing on, the incoming traceparent is parsed (or a fresh identity
// generated), echoed on the response, and a pooled span buffer rides the
// status recorder through the handler; shed (429) responses are recorded in
// the same per-route metrics as handled ones, with their own status label.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	sem := s.inflight[route] // nil for exempt routes or disabled admission
	ro := s.obs.routes[route]
	tracing := s.obs.tracing()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := recPool.Get().(*statusRecorder)
		rec.ResponseWriter, rec.status, rec.wrote, rec.trace = w, http.StatusOK, false, nil
		if tracing {
			tp, hasParent := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
			var parent obs.SpanID
			if hasParent {
				parent = tp.Span
				tp.Span = obs.NewSpanID()
			} else {
				tp = obs.NewTraceparent()
			}
			tb := obs.GetTraceBuf(tp, route, start)
			tb.Parent, tb.HasParent = parent, hasParent
			rec.trace = tb
			w.Header().Set(obs.TraceparentHeader, tp.String())
		}
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				s.obs.log.LogAttrs(context.Background(), slog.LevelError, "handler panic",
					slog.String("route", route), slog.Any("panic", p))
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, errors.New("internal error"))
				}
				rec.status = http.StatusInternalServerError
			}
			d := time.Since(start)
			s.met.observe(route, rec.status, d)
			s.obs.observeRoute(ro, rec.status, d)
			if tb := rec.trace; tb != nil {
				slow := s.obs.isSlow(d)
				s.obs.ring.Record(tb, rec.status, start, d, slow)
				if slow && s.obs.log.Enabled(context.Background(), slog.LevelWarn) {
					s.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
						slog.String("route", route),
						slog.String("trace", tb.TP.TraceString()),
						slog.Int("status", rec.status),
						slog.Duration("duration", d))
				}
				rec.trace = nil
				obs.PutTraceBuf(tb)
			}
			rec.ResponseWriter = nil
			recPool.Put(rec)
		}()
		if sem != nil {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			default:
				// The route is saturated: shed now, cheaply, instead of
				// queueing work the client will have timed out on.
				s.met.sheds.Add(1)
				rec.Header().Set("Retry-After", "1")
				writeError(rec, http.StatusTooManyRequests, errOverloaded)
				return
			}
		}
		h(rec, r)
	})
}

// statusRecorder captures the response status for metrics and carries the
// request's trace buffer to the handlers (avoiding a context allocation).
// Instances are pooled by instrument; a recorder is returned to the pool
// only after the handler and its deferred metrics observation are both done
// with it.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
	trace  *obs.TraceBuf
}

var recPool = sync.Pool{New: func() any { return new(statusRecorder) }}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// EstimateRequest is one Est-IO input addressed at a catalog entry. S is a
// pointer so "omitted" (no sargable predicates, treated as 1) is
// distinguishable from an explicit out-of-domain 0. Exported for the thin
// Go client (see Client).
type EstimateRequest struct {
	Table  string   `json:"table"`
	Column string   `json:"column"`
	B      int64    `json:"b"`
	Sigma  float64  `json:"sigma"`
	S      *float64 `json:"s,omitempty"`
	Detail bool     `json:"detail,omitempty"`
}

func (r EstimateRequest) sarg() float64 {
	if r.S == nil {
		return 1
	}
	return *r.S
}

// EstimateResponse carries the estimate; Fetches is bit-exact with a direct
// core.EstimateFetches call (JSON float64 encoding round-trips exactly).
type EstimateResponse struct {
	Table      string         `json:"table"`
	Column     string         `json:"column"`
	B          int64          `json:"b"`
	Sigma      float64        `json:"sigma"`
	S          float64        `json:"s"`
	Fetches    float64        `json:"fetches"`
	Generation uint64         `json:"generation"`
	Cached     bool           `json:"cached"`
	Detail     *core.Estimate `json:"detail,omitempty"`
}

// estimate resolves statistics against one snapshot and runs (or recalls)
// Est-IO. It is the shared core of the single and batch endpoints, and the
// allocation-free center of the serving path: inputs and results travel by
// pointer, the memo key is built field-wise, and the estimator itself is the
// snapshot's pre-compiled form (flat slices, no interface dispatch) whenever
// one exists — EstIO interpretation remains only as the fallback for entries
// whose compilation failed.
func (s *Server) estimate(snap *catalog.Snapshot, in *estimateInput, out *estimateResult, tb *obs.TraceBuf) error {
	s.obs.observeEstimate(in.table, in.column, in.b, in.sigma)
	ce, ok := snap.Compiled(in.table, in.column)
	var entry *stats.IndexStats
	if !ok {
		var err error
		entry, err = snap.Get(in.table, in.column)
		if err != nil {
			return err
		}
	}
	out.gen = snap.Generation()
	out.cached = false
	key := memoKey{table: in.table, column: in.column, gen: out.gen, b: in.b, sigma: in.sigma, sarg: in.s}
	tb.Mark(obs.StageCache)
	if s.cache != nil {
		if est, hit := s.cache.get(key); hit {
			out.est = est
			out.cached = true
			s.met.estimates.Add(1)
			return nil
		}
	}
	tb.Mark(obs.StageEstimate)
	var err error
	if ce != nil {
		err = ce.EstimateInto(&out.est, core.Input{B: in.b, Sigma: in.sigma, S: in.s})
	} else {
		out.est, err = core.EstIO(entry, core.Input{B: in.b, Sigma: in.sigma, S: in.s}, core.Options{})
	}
	if err != nil {
		return err
	}
	if s.cache != nil {
		s.cache.put(key, out.est)
	}
	s.met.estimates.Add(1)
	return nil
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	tb := traceOf(w)
	tb.Mark(obs.StageParse)
	var in estimateInput
	if err := parseEstimateQuery(r, &in); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.cluster != nil && s.clusterRoute(w, r, &in, tb) {
		return
	}
	var res estimateResult
	if err := s.estimate(s.store.Snapshot(), &in, &res, tb); err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	tb.Mark(obs.StageEncode)
	buf := getBuf()
	b := appendEstimateResponse(*buf, &in, &res)
	b = append(b, '\n') // json.Encoder.Encode appended one; stay byte-identical
	writeResponseBytes(w, http.StatusOK, b)
	*buf = b
	putBuf(buf)
	tb.CloseSpan()
}

// BatchRequest and BatchResponse amortize per-request overhead: one HTTP
// round trip and one JSON document for the dozens of candidate plans an
// optimizer costs while planning a single query.
type BatchRequest struct {
	Requests []EstimateRequest `json:"requests"`
}

// BatchItem is one batch result: an estimate, or a per-item error.
type BatchItem struct {
	Estimate *EstimateResponse `json:"estimate,omitempty"`
	Error    string            `json:"error,omitempty"`
	Status   int               `json:"status,omitempty"`
}

// BatchResponse is the batch endpoint's document.
type BatchResponse struct {
	Count      int         `json:"count"`
	Failed     int         `json:"failed"`
	Generation uint64      `json:"generation"`
	Items      []BatchItem `json:"items"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tb := traceOf(w)
	tb.Mark(obs.StageParse)
	scratch := getBatchScratch()
	defer putBatchScratch(scratch)
	body, err := readBody(http.MaxBytesReader(w, r.Body, maxBodyBytes), scratch.body)
	scratch.body = body
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			// Oversized bodies get the typed sentinel and 413, same as
			// too-many-requests below: a forwarding node sheds the request
			// instead of buffering it.
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("%w: body exceeds %d bytes", ErrBatchTooLarge, mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request body: %w", err))
		return
	}
	// One string conversion for the whole body; every item field decodes as a
	// substring of it.
	if err := decodeBatchBody(string(body), s.maxBatch, scratch); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrBatchTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	if len(scratch.reqs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch has no requests"))
		return
	}
	// One snapshot for the whole batch: every item is costed against the
	// same catalog generation even if a writer lands mid-flight.
	snap := s.store.Snapshot()
	items := scratch.items[:0]
	failed := 0
	// Batch items share one aggregate estimate span (per-item spans would
	// overflow the fixed buffer and say little); the estimate() internals
	// pass nil and stay span-silent.
	tb.Mark(obs.StageEstimate)
	var res estimateResult
	for i := range scratch.reqs {
		in := &scratch.reqs[i]
		if i > 0 {
			items = append(items, ',')
		}
		if s.cluster != nil && !s.ownsEstimate(in) {
			// Batches are not proxied item-by-item (the fan-out would defeat
			// the batching); each misdirected item carries 421 so a
			// cluster-aware client partitions by owner and retries.
			items = appendBatchItemError(items,
				"misdirected: not an owner of "+clusterKey(in), http.StatusMisdirectedRequest)
			failed++
			continue
		}
		if err := s.estimate(snap, in, &res, nil); err != nil {
			items = appendBatchItemError(items, err.Error(), statusOf(err))
			failed++
			continue
		}
		items = append(items, `{"estimate":`...)
		items = appendEstimateResponse(items, in, &res)
		items = append(items, '}')
	}
	scratch.items = items
	tb.Mark(obs.StageEncode)
	out := scratch.out[:0]
	out = append(out, `{"count":`...)
	out = strconv.AppendInt(out, int64(len(scratch.reqs)), 10)
	out = append(out, `,"failed":`...)
	out = strconv.AppendInt(out, int64(failed), 10)
	out = append(out, `,"generation":`...)
	out = strconv.AppendUint(out, snap.Generation(), 10)
	out = append(out, `,"items":[`...)
	out = append(out, items...)
	out = append(out, ']', '}', '\n')
	scratch.out = out
	writeResponseBytes(w, http.StatusOK, out)
	tb.CloseSpan()
}

// indexSummary is one row of the catalog listing.
type indexSummary struct {
	Table            string    `json:"table"`
	Column           string    `json:"column"`
	Pages            int64     `json:"pages"`
	Records          int64     `json:"records"`
	DistinctKeys     int64     `json:"distinctKeys"`
	ClusteringFactor float64   `json:"clusteringFactor"`
	BufferMin        int64     `json:"bufferMin"`
	BufferMax        int64     `json:"bufferMax"`
	CurveKnots       int       `json:"curveKnots"`
	HasHistogram     bool      `json:"hasHistogram"`
	CollectedAt      time.Time `json:"collectedAt"`
}

func (s *Server) handleIndexes(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	out := struct {
		Generation uint64         `json:"generation"`
		Count      int            `json:"count"`
		Indexes    []indexSummary `json:"indexes"`
	}{Generation: snap.Generation(), Count: snap.Len(), Indexes: []indexSummary{}}
	for _, key := range snap.Keys() {
		e, ok := snap.Lookup(key)
		if !ok {
			continue
		}
		out.Indexes = append(out.Indexes, summaryOf(e))
	}
	writeJSON(w, http.StatusOK, out)
}

// summaryOf builds one listing row from a catalog entry.
func summaryOf(e *stats.IndexStats) indexSummary {
	return indexSummary{
		Table:            e.Table,
		Column:           e.Column,
		Pages:            e.T,
		Records:          e.N,
		DistinctKeys:     e.I,
		ClusteringFactor: e.C,
		BufferMin:        e.BMin,
		BufferMax:        e.BMax,
		CurveKnots:       len(e.Curve.Knots),
		HasHistogram:     len(e.KeyHistogram) > 0,
		CollectedAt:      e.CollectedAt,
	}
}

// IndexDoc is the GET /v1/indexes/{key} document: one entry's statistics
// summary plus the serving state a client cares about — the generation it
// was read at, whether a compiled estimator backs it, and (in cluster mode)
// the IDs of the nodes owning the key.
type IndexDoc struct {
	Key        string       `json:"key"`
	Generation uint64       `json:"generation"`
	Compiled   bool         `json:"compiled"`
	Summary    indexSummary `json:"summary"`
	Owners     []string     `json:"owners,omitempty"`
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	snap := s.store.Snapshot()
	e, ok := snap.Lookup(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", stats.ErrNotFound, key))
		return
	}
	_, compiled := snap.CompiledByKey(key)
	doc := IndexDoc{
		Key:        key,
		Generation: snap.Generation(),
		Compiled:   compiled,
		Summary:    summaryOf(e),
	}
	if s.cluster != nil {
		for _, p := range s.cluster.Owners(key) {
			doc.Owners = append(doc.Owners, p.ID)
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handlePutIndex(w http.ResponseWriter, r *http.Request) {
	table, column := r.PathValue("table"), r.PathValue("column")
	var e stats.IndexStats
	if err := decodeJSON(w, r, &e); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if e.Table == "" {
		e.Table = table
	}
	if e.Column == "" {
		e.Column = column
	}
	if e.Table != table || e.Column != column {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("body identifies %s.%s but path identifies %s.%s", e.Table, e.Column, table, column))
		return
	}
	// Validation failures are the client's fault and must not trip the
	// breaker; check before entering the guarded persistence path.
	if err := e.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.cluster != nil {
		// Cluster mode: epoch-gated application for replicated arrivals,
		// quorum fan-out with hinted handoff for local originations.
		s.clusterPut(w, r, &e)
		return
	}
	commit, retryAfter, err := s.beginMutation()
	if err != nil {
		writeRetryable(w, http.StatusServiceUnavailable, err, retryAfter)
		return
	}
	gen, err := s.store.Put(&e)
	commit(err != nil)
	if err != nil {
		// Past validation, a Put error is persistence trouble: retryable.
		writeRetryable(w, http.StatusServiceUnavailable, err, time.Second)
		return
	}
	if s.cache != nil {
		s.cache.dropOtherGenerations(gen)
	}
	s.obs.syncIndexes(s.store.Snapshot())
	writeJSON(w, http.StatusOK, map[string]any{"key": e.Key(), "generation": gen})
}

func (s *Server) handleDeleteIndex(w http.ResponseWriter, r *http.Request) {
	table, column := r.PathValue("table"), r.PathValue("column")
	if s.cluster != nil {
		s.clusterDelete(w, r, table, column)
		return
	}
	commit, retryAfter, err := s.beginMutation()
	if err != nil {
		writeRetryable(w, http.StatusServiceUnavailable, err, retryAfter)
		return
	}
	ok, gen, err := s.store.Delete(table, column)
	commit(err != nil)
	if err != nil {
		writeRetryable(w, http.StatusServiceUnavailable, err, time.Second)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s.%s", stats.ErrNotFound, table, column))
		return
	}
	if s.cache != nil {
		// Belt and braces: generation keying already hides the dead
		// entries, and this sweep frees them so a deleted index cannot
		// linger in memory either.
		s.cache.invalidateIndex(table, column)
		s.cache.dropOtherGenerations(gen)
	}
	writeJSON(w, http.StatusOK, map[string]any{"generation": gen})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	commit, retryAfter, err := s.beginMutation()
	if err != nil {
		writeRetryable(w, http.StatusServiceUnavailable, err, retryAfter)
		return
	}
	gen, err := s.store.Reload()
	if err != nil {
		if errors.Is(err, catalog.ErrNoPath) {
			// Configuration error, not disk trouble: no breaker strike, no
			// degraded mode.
			commit(false)
			writeError(w, http.StatusBadRequest, err)
			return
		}
		commit(true)
		// Keep answering from the last good snapshot and say so loudly.
		s.degraded.Store(&reloadFailure{
			err:      err.Error(),
			staleGen: s.store.Generation(),
			at:       time.Now(),
		})
		s.met.reloadFailures.Add(1)
		s.obs.log.LogAttrs(r.Context(), slog.LevelError, "reload failed, serving degraded",
			slog.Uint64("staleGeneration", s.store.Generation()),
			slog.String("error", err.Error()))
		writeRetryable(w, http.StatusServiceUnavailable, err, time.Second)
		return
	}
	commit(false)
	if s.degraded.Swap(nil) != nil {
		s.obs.log.LogAttrs(r.Context(), slog.LevelInfo, "reload recovered, degraded mode cleared",
			slog.Uint64("generation", gen))
	}
	if s.cache != nil {
		s.cache.dropOtherGenerations(gen)
	}
	s.obs.syncIndexes(s.store.Snapshot())
	if s.cluster != nil {
		// A reload is not forwarded (peers have their own files); the epoch
		// bump makes gossip anti-entropy stream the refreshed catalog to any
		// peer whose content now differs.
		s.noteClusterMutation(r)
	}
	writeJSON(w, http.StatusOK, map[string]any{"generation": gen, "indexes": s.store.Len()})
}

// beginMutation funnels every disk-touching route through the circuit
// breaker. With the breaker disabled it admits unconditionally.
func (s *Server) beginMutation() (commit func(failure bool), retryAfter time.Duration, err error) {
	if s.breaker == nil {
		return func(bool) {}, 0, nil
	}
	return s.breaker.Begin()
}

// Health is the /healthz document (also returned by Client.Health). The
// build fields let probes distinguish a fresh restart of a new binary from a
// long-running degraded instance.
type Health struct {
	Status          string  `json:"status"` // "ok", "degraded", or "draining"
	Generation      uint64  `json:"generation"`
	Indexes         int     `json:"indexes"`
	UptimeSeconds   float64 `json:"uptimeSeconds"`
	Version         string  `json:"version,omitempty"`   // module version from build info
	Revision        string  `json:"revision,omitempty"`  // vcs.revision from build info
	GoVersion       string  `json:"goVersion,omitempty"` // toolchain that built the binary
	Degraded        bool    `json:"degraded"`
	StaleGeneration uint64  `json:"staleGeneration,omitempty"`
	LastReloadError string  `json:"lastReloadError,omitempty"`
	Breaker         string  `json:"breaker,omitempty"` // closed / half-open / open
	RecoveredAtOpen bool    `json:"recoveredAtOpen,omitempty"`
}

// health assembles the current Health document.
func (s *Server) health() Health {
	snap := s.store.Snapshot()
	bi := buildInfo()
	h := Health{
		Status:          "ok",
		Generation:      snap.Generation(),
		Indexes:         snap.Len(),
		UptimeSeconds:   time.Since(s.met.start).Seconds(),
		Version:         bi.version,
		Revision:        bi.revision,
		GoVersion:       bi.goVersion,
		RecoveredAtOpen: s.store.Recovered(),
	}
	if s.breaker != nil {
		h.Breaker = s.breaker.State()
	}
	if f := s.degraded.Load(); f != nil {
		h.Status = "degraded"
		h.Degraded = true
		h.StaleGeneration = f.staleGen
		h.LastReloadError = f.err
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	if h.Status == "draining" {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	// Degraded is still 200: the instance answers estimates correctly from
	// the last good generation, so liveness probes must not kill it.
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Content negotiation: ?format=prom or Accept: text/plain yields the
	// Prometheus text exposition; the default stays the historical JSON
	// document so existing consumers see identical bytes.
	if wantsProm(r) {
		w.Header().Set("Content-Type", obs.ContentType)
		w.WriteHeader(http.StatusOK)
		buf := getBuf()
		b := s.obs.reg.AppendText((*buf)[:0])
		_, _ = w.Write(b)
		*buf = b
		putBuf(buf)
		return
	}
	out := s.met.snapshot(s.cache)
	res := map[string]any{
		"sheds":          s.met.sheds.Load(),
		"reloadFailures": s.met.reloadFailures.Load(),
		"degraded":       s.degraded.Load() != nil,
	}
	if s.breaker != nil {
		opens, rejected := s.breaker.Stats()
		res["breaker"] = map[string]any{
			"state":    s.breaker.State(),
			"opens":    opens,
			"rejected": rejected,
		}
	}
	out["resilience"] = res
	writeJSON(w, http.StatusOK, out)
}

// statusOf maps domain errors to HTTP statuses: invalid Est-IO inputs are
// client errors, unknown indexes are 404s, anything else is a 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, core.ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, stats.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error(), "status": status})
}

// writeRetryable is writeError plus a Retry-After header, for 429/503
// responses the client should retry (Client honors the header).
func writeRetryable(w http.ResponseWriter, status int, err error, after time.Duration) {
	secs := int64(after / time.Second)
	if after%time.Second != 0 || secs < 1 {
		secs++ // round up; Retry-After is whole seconds, minimum 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, status, err)
}
