package service

// Cross-node trace stitching: GET /debug/traces/{traceid} on any node
// returns every record of one trace — served requests and cluster hops —
// merged across the whole cluster and ordered by start time. A slow quorum
// PUT shows up as the coordinator's replicate hops with one straggling peer;
// a forwarded estimate as the non-owner's forward hop parented under the
// client's span next to the owner's served request.
//
// The fan-out is one concurrent GET per live peer with ?local=1 (peers
// answer from their own ring only — no recursion), bounded by the
// replication timeout. A peer that cannot answer inside the bound is
// reported honestly in missing_nodes rather than stalling the stitch.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"epfis/internal/cluster"
	"epfis/internal/obs"
)

// routeTrace serves one stitched trace. Registered alongside routeTraces in
// both single-node and cluster mode (single-node stitches are just the local
// ring's view).
const routeTrace = "GET /debug/traces/{traceid}"

// stitchDoc is the GET /debug/traces/{traceid} document.
type stitchDoc struct {
	Trace        string     `json:"trace"`
	Nodes        []string   `json:"nodes"`
	MissingNodes []string   `json:"missing_nodes,omitempty"`
	Records      []traceDoc `json:"records"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	o := s.obs
	if o.ring == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled"))
		return
	}
	raw := r.PathValue("traceid")
	id, ok := obs.ParseTraceID(raw)
	if !ok {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("malformed trace id %q: want 32 lowercase hex digits", raw))
		return
	}
	doc := stitchDoc{Trace: raw, Records: []traceDoc{}}
	node := s.nodeName()
	for _, rec := range o.ring.FindByTrace(id) {
		doc.Records = append(doc.Records, traceDocOf(rec, node))
	}
	if s.cluster != nil && r.URL.Query().Get("local") != "1" {
		s.stitchPeers(r.Context(), raw, &doc)
	}
	sort.SliceStable(doc.Records, func(i, j int) bool {
		return doc.Records[i].Start.Before(doc.Records[j].Start)
	})
	seen := map[string]bool{}
	for _, rec := range doc.Records {
		if rec.Node != "" && !seen[rec.Node] {
			seen[rec.Node] = true
			doc.Nodes = append(doc.Nodes, rec.Node)
		}
	}
	sort.Strings(doc.Nodes)
	writeJSON(w, http.StatusOK, doc)
}

// stitchPeers fans the trace query out to every live peer concurrently and
// merges the answers into doc. Peers that are dead, unreachable, or slower
// than the replication timeout land in missing_nodes.
func (s *Server) stitchPeers(ctx context.Context, traceID string, doc *stitchDoc) {
	peers := s.cluster.Peers()
	if len(peers) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, s.replTimeout)
	defer cancel()
	type peerTrace struct {
		id   string
		recs []traceDoc
		err  error
	}
	results := make(chan peerTrace, len(peers))
	n := 0
	var wg sync.WaitGroup
	for _, p := range peers {
		if p.URL == "" || p.State == cluster.StateDead {
			doc.MissingNodes = append(doc.MissingNodes, p.ID)
			continue
		}
		n++
		wg.Add(1)
		go func(p cluster.PeerInfo) {
			defer wg.Done()
			recs, err := s.fetchPeerTrace(ctx, p, traceID)
			results <- peerTrace{id: p.ID, recs: recs, err: err}
		}(p)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		res := <-results
		if res.err != nil {
			doc.MissingNodes = append(doc.MissingNodes, res.id)
			continue
		}
		doc.Records = append(doc.Records, res.recs...)
	}
	sort.Strings(doc.MissingNodes)
}

// fetchPeerTrace asks one peer for its local view of the trace.
func (s *Server) fetchPeerTrace(ctx context.Context, p cluster.PeerInfo, traceID string) ([]traceDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.URL+"/debug/traces/"+traceID+"?local=1", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(cluster.HeaderNode, s.cluster.SelfID())
	resp, err := s.proxyHTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: status %d", p.ID, resp.StatusCode)
	}
	var doc stitchDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Records, nil
}
