package service

import (
	"fmt"
	"sync"
	"testing"

	"epfis/internal/core"
)

func TestMemoCacheHitMissAndGenerationKeying(t *testing.T) {
	c := newMemoCache(64)
	k1 := memoKey{table: "t", column: "a", gen: 1, b: 10, sigma: 0.1, sarg: 1}
	if _, ok := c.get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(k1, core.Estimate{F: 42})
	got, ok := c.get(k1)
	if !ok || got.F != 42 {
		t.Fatalf("get after put = (%v, %v)", got.F, ok)
	}
	// Same key, different generation, is a distinct entry.
	k2 := k1
	k2.gen = 2
	if _, ok := c.get(k2); ok {
		t.Fatal("generation bump did not miss")
	}
	// Replacing a live key keeps exactly one entry.
	c.put(k1, core.Estimate{F: 43})
	if got, _ := c.get(k1); got.F != 43 {
		t.Fatalf("replacement not visible, F = %v", got.F)
	}
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d after same-key replacement, want 1", n)
	}
	if c.hits.Load() != 2 || c.misses.Load() != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", c.hits.Load(), c.misses.Load())
	}
}

// TestMemoCacheClockEviction fills one probe window and checks the CLOCK
// sweep evicts an unreferenced entry rather than growing.
func TestMemoCacheClockEviction(t *testing.T) {
	c := newMemoCache(memoWindow) // table of exactly one window
	keys := make([]memoKey, memoWindow+1)
	for i := range keys {
		keys[i] = memoKey{table: "t", column: fmt.Sprintf("c%d", i), gen: 1, b: 1, sigma: 0.5, sarg: 1}
		c.put(keys[i], core.Estimate{F: float64(i)})
	}
	if n := c.len(); n > memoWindow {
		t.Fatalf("cache grew to %d entries, capacity %d", n, memoWindow)
	}
	if c.evictions.Load() == 0 {
		t.Fatal("overflow did not evict")
	}
	// The newest insert is always resident.
	last := keys[len(keys)-1]
	if got, ok := c.get(last); !ok || got.F != float64(memoWindow) {
		t.Fatalf("newest entry = (%v, %v)", got.F, ok)
	}
}

// TestMemoCacheSweeps covers the explicit removal paths: per-index
// invalidation and cross-generation drops.
func TestMemoCacheSweeps(t *testing.T) {
	c := newMemoCache(256)
	put := func(table, column string, gen uint64, b int64) memoKey {
		k := memoKey{table: table, column: column, gen: gen, b: b, sigma: 0.25, sarg: 1}
		c.put(k, core.Estimate{F: float64(b)})
		return k
	}
	kOrders1 := put("orders", "key", 1, 10)
	kOrders2 := put("orders", "key", 2, 10)
	kLine := put("lineitem", "partkey", 2, 20)

	if n := c.invalidateIndex("orders", "key"); n != 2 {
		t.Fatalf("invalidateIndex removed %d entries, want 2", n)
	}
	if _, ok := c.get(kOrders1); ok {
		t.Fatal("invalidated entry still served (gen 1)")
	}
	if _, ok := c.get(kOrders2); ok {
		t.Fatal("invalidated entry still served (gen 2)")
	}
	if got, ok := c.get(kLine); !ok || got.F != 20 {
		t.Fatal("unrelated index swept away")
	}

	put("orders", "key", 1, 30)
	if n := c.dropOtherGenerations(2); n != 1 {
		t.Fatalf("dropOtherGenerations removed %d entries, want 1", n)
	}
	if got, ok := c.get(kLine); !ok || got.F != 20 {
		t.Fatal("current-generation entry swept away")
	}
	if c.invalidations.Load() != 3 {
		t.Fatalf("invalidations = %d, want 3", c.invalidations.Load())
	}
}

func TestMemoCacheBoundedUnderLoad(t *testing.T) {
	const capacity = 64
	c := newMemoCache(capacity)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := memoKey{table: "orders", column: "key", gen: uint64(g), b: int64(i % 100), sigma: 0.1, sarg: 1}
				c.put(k, core.Estimate{F: float64(i)})
				if est, ok := c.get(k); ok && est.F != float64(i) {
					// A concurrent writer may have replaced the same key, but
					// a hit must never return a (key, value) mismatch.
					if est.F < 0 || est.F >= 500 {
						t.Errorf("torn read: F = %v", est.F)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.len(); n > capacity {
		t.Fatalf("cache grew to %d entries, capacity %d", n, capacity)
	}
}

// TestMemoCacheZeroAllocGet proves the read path allocates nothing.
func TestMemoCacheZeroAllocGet(t *testing.T) {
	c := newMemoCache(64)
	k := memoKey{table: "orders", column: "key", gen: 1, b: 10, sigma: 0.1, sarg: 1}
	c.put(k, core.Estimate{F: 7})
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := c.get(k); !ok {
			t.Fatal("miss")
		}
	}); n != 0 {
		t.Errorf("get allocates %v/op, want 0", n)
	}
}
