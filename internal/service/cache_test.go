package service

import (
	"fmt"
	"sync"
	"testing"

	"epfis/internal/core"
)

func TestMemoCacheHitMissEvict(t *testing.T) {
	// One entry per shard: the second distinct key in a shard evicts the
	// first.
	c := newMemoCache(memoShards)
	k1 := memoKey{index: "t.a", gen: 1, b: 10, sigma: 0.1, sarg: 1}
	if _, ok := c.get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(k1, core.Estimate{F: 42})
	got, ok := c.get(k1)
	if !ok || got.F != 42 {
		t.Fatalf("get after put = (%v, %v)", got.F, ok)
	}
	// Same key, different generation, is a distinct entry.
	k2 := k1
	k2.gen = 2
	if _, ok := c.get(k2); ok {
		t.Fatal("generation bump did not miss")
	}

	// Overflowing a shard evicts its least-recently-used entry.
	c2 := newMemoCache(memoShards) // capacity 1 per shard
	var sh *memoShard
	keys := make([]memoKey, 0, 2)
	for i := 0; len(keys) < 2; i++ {
		k := memoKey{index: fmt.Sprintf("t.c%d", i), gen: 1, b: 1, sigma: 0.5, sarg: 1}
		s := c2.shard(k)
		if sh == nil {
			sh = s
		}
		if s == sh {
			keys = append(keys, k)
		}
	}
	c2.put(keys[0], core.Estimate{F: 1})
	c2.put(keys[1], core.Estimate{F: 2})
	if _, ok := c2.get(keys[0]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if got, ok := c2.get(keys[1]); !ok || got.F != 2 {
		t.Fatalf("newest entry = (%v, %v)", got.F, ok)
	}
	if c2.evictions.Load() != 1 {
		t.Fatalf("evictions = %d", c2.evictions.Load())
	}
}

func TestMemoCacheBoundedUnderLoad(t *testing.T) {
	const capacity = 64
	c := newMemoCache(capacity)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := memoKey{index: "orders.key", gen: uint64(g), b: int64(i % 100), sigma: 0.1, sarg: 1}
				c.put(k, core.Estimate{F: float64(i)})
				c.get(k)
			}
		}(g)
	}
	wg.Wait()
	if n := c.len(); n > capacity {
		t.Fatalf("cache grew to %d entries, capacity %d", n, capacity)
	}
}
