package service

// Delta anti-entropy drills: equivalence with the full snapshot pull across
// random divergence sets (including tombstoned keys), and the wire-cost
// property the cluster bench gates — a 1-key divergence must sync for a
// small fraction of the full snapshot stream.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"epfis/internal/cluster"
)

// TestClusterDeltaEquivalence checks that a delta sync and a full snapshot
// pull converge two identically prepared replicas to the byte-identical
// content hash, across randomized divergence sets: mutated entries, freshly
// added entries, deleted entries, and stamp-tracked (tombstoned) keys that
// bulk anti-entropy must leave alone on both paths.
func TestClusterDeltaEquivalence(t *testing.T) {
	const baseEntries = 12
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) + 77))
			nodes := startCluster(t, 3, 3)
			src, deltaPuller, fullPuller := nodes[0], nodes[1], nodes[2]

			// Identical base catalog on every store, installed directly so no
			// replication stamps exist yet.
			cols := make([]string, baseEntries)
			for i := range cols {
				cols[i] = fmt.Sprintf("c%02d", i)
				st := fitStats(t, "t", cols[i], int64(i)+1)
				for _, n := range nodes {
					if _, err := n.store.Put(st); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Diverge the source: mutate two entries, delete two, add one.
			perm := rng.Perm(baseEntries)
			mutated := []string{cols[perm[0]], cols[perm[1]]}
			deleted := []string{cols[perm[2]], cols[perm[3]]}
			for i, c := range mutated {
				if _, err := src.store.Put(fitStats(t, "t", c, int64(100+trial*10+i))); err != nil {
					t.Fatal(err)
				}
			}
			for _, c := range deleted {
				if _, _, err := src.store.Delete("t", c); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := src.store.Put(fitStats(t, "t", "fresh", int64(200+trial))); err != nil {
				t.Fatal(err)
			}

			// Tombstones on both pullers: one mutated key and one deleted key
			// are stamp-tracked, so neither sync path may touch them.
			tomb := cluster.Stamp{Epoch: 9, Origin: "tomb"}
			for _, p := range []*cnode{deltaPuller, fullPuller} {
				p.node.RecordKeyStamp("t."+mutated[0], tomb)
				p.node.RecordKeyStamp("t."+deleted[0], tomb)
			}

			ctx := context.Background()
			if err := deltaPuller.node.PullDelta(ctx, src.url); err != nil {
				t.Fatalf("delta pull: %v", err)
			}
			if err := fullPuller.node.PullSnapshot(ctx, src.url); err != nil {
				t.Fatalf("full pull: %v", err)
			}

			hd, _, err := deltaPuller.store.ContentHash()
			if err != nil {
				t.Fatal(err)
			}
			hf, _, err := fullPuller.store.ContentHash()
			if err != nil {
				t.Fatal(err)
			}
			if hd != hf {
				t.Fatalf("delta converged to %s, full pull to %s", hd, hf)
			}

			// Merge semantics spot checks: deletions never propagate through
			// anti-entropy, and the tombstoned mutation kept its base bytes.
			for _, c := range deleted {
				if _, err := deltaPuller.store.Get("t", c); err != nil {
					t.Fatalf("delta pull deleted local-only key t.%s: %v", c, err)
				}
			}
			okPulls, fallbacks := deltaPuller.node.DeltaPulls()
			if okPulls == 0 || fallbacks != 0 {
				t.Fatalf("delta pulls ok=%d fallback=%d, want ok>0 fallback=0", okPulls, fallbacks)
			}
			db, fb := deltaPuller.node.AntiEntropyBytes()
			if db == 0 || fb != 0 {
				t.Fatalf("delta puller bytes delta=%d full=%d, want delta>0 full=0", db, fb)
			}
		})
	}
}

// TestClusterDeltaOneKeyWireCost is the test-level twin of the bench gate:
// one divergent key out of a dozen must sync via the digest route for far
// fewer bytes than the full snapshot stream, without falling back.
func TestClusterDeltaOneKeyWireCost(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	src, puller := nodes[0], nodes[1]
	for i := 0; i < 12; i++ {
		st := fitStats(t, "t", fmt.Sprintf("c%02d", i), int64(i)+1)
		for _, n := range nodes {
			if _, err := n.store.Put(st); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := src.store.Put(fitStats(t, "t", "c03", 99)); err != nil {
		t.Fatal(err)
	}

	if err := puller.node.Sync(context.Background(), src.url); err != nil {
		t.Fatal(err)
	}
	_, fallbacks := puller.node.DeltaPulls()
	if fallbacks != 0 {
		t.Fatalf("1-key divergence fell back to a full snapshot pull")
	}
	hs, _, err := src.store.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	hp, _, err := puller.store.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if hs != hp {
		t.Fatalf("puller hash %s != source hash %s after delta sync", hp, hs)
	}

	full, _, err := src.store.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	delta, fullBytes := puller.node.AntiEntropyBytes()
	if fullBytes != 0 {
		t.Fatalf("full-pull bytes = %d, want 0", fullBytes)
	}
	if delta == 0 || delta*2 >= uint64(len(full)) {
		t.Fatalf("delta sync cost %d bytes vs %d-byte full snapshot, want < half", delta, len(full))
	}
}
