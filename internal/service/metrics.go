package service

import (
	"sync/atomic"
	"time"
)

// metrics holds the service's expvar-style counters: plain atomics updated
// on the hot path, serialized on demand by GET /metrics. Routes are
// registered once at construction, so observation is lock-free.
type metrics struct {
	start  time.Time
	routes map[string]*routeStats // immutable after newMetrics

	panics    atomic.Uint64
	estimates atomic.Uint64 // individual estimates served (batch items count)

	sheds          atomic.Uint64 // requests rejected by admission control (429)
	reloadFailures atomic.Uint64 // reloads that left the service degraded
}

// routeStats aggregates one route's request counters and a latency summary
// (count / total / max, enough for mean and worst-case dashboards).
type routeStats struct {
	count    atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
	nanosSum atomic.Uint64
	nanosMax atomic.Uint64
}

func newMetrics(routeNames []string) *metrics {
	m := &metrics{start: time.Now(), routes: make(map[string]*routeStats, len(routeNames))}
	for _, r := range routeNames {
		m.routes[r] = &routeStats{}
	}
	return m
}

// observe records one served request. Unknown routes are dropped rather than
// racing a map insert.
func (m *metrics) observe(route string, status int, d time.Duration) {
	rs, ok := m.routes[route]
	if !ok {
		return
	}
	rs.count.Add(1)
	if status >= 400 {
		rs.errors.Add(1)
	}
	ns := uint64(d.Nanoseconds())
	rs.nanosSum.Add(ns)
	for {
		cur := rs.nanosMax.Load()
		if ns <= cur || rs.nanosMax.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// routeSnapshot is the serialized form of one route's counters.
type routeSnapshot struct {
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	AvgMicros float64 `json:"avgMicros"`
	MaxMicros float64 `json:"maxMicros"`
}

// snapshot serializes all counters; cache may be nil when memoization is
// disabled.
func (m *metrics) snapshot(cache *memoCache) map[string]any {
	routes := make(map[string]routeSnapshot, len(m.routes))
	for name, rs := range m.routes {
		n := rs.count.Load()
		snap := routeSnapshot{
			Requests:  n,
			Errors:    rs.errors.Load(),
			MaxMicros: float64(rs.nanosMax.Load()) / 1e3,
		}
		if n > 0 {
			snap.AvgMicros = float64(rs.nanosSum.Load()) / float64(n) / 1e3
		}
		routes[name] = snap
	}
	out := map[string]any{
		"uptimeSeconds": time.Since(m.start).Seconds(),
		"routes":        routes,
		"panics":        m.panics.Load(),
		"estimates":     m.estimates.Load(),
	}
	if cache != nil {
		hits, misses := cache.hits.Load(), cache.misses.Load()
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		out["cache"] = map[string]any{
			"hits":          hits,
			"misses":        misses,
			"evictions":     cache.evictions.Load(),
			"invalidations": cache.invalidations.Load(),
			"entries":       cache.len(),
			"hitRatio":      ratio,
		}
	}
	return out
}
