package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"epfis/internal/core"
)

// --- encoder equivalence ----------------------------------------------------

func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"",
		"orders",
		"plain ascii",
		`quotes " and \ backslashes`,
		"html <script>&amp;</script>",
		"tabs\tnewlines\nreturns\r",
		"controls \x00\x01\x1f\x7f",
		"backspace\bformfeed\f",
		"unicode: héllo wörld 日本語 🚀",
		"line sep \u2028 and para sep \u2029",
		"invalid utf8: \xff\xfe\xc3\x28",
		"surrogate-ish \xed\xa0\x80 bytes",
		strings.Repeat("long", 100) + "<&>",
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		cases = append(cases, string(b))
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("Marshal(%q): %v", s, err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(want, got) {
			t.Errorf("appendJSONString(%q) = %s, encoding/json = %s", s, got, want)
		}
	}
}

func TestAppendJSONFloatMatchesEncodingJSON(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.05, 0.128, 444.3272727272727,
		1e-7, 9.999999e-7, 1e-6, 1.0000001e-6, 0.999999999e21, 1e21, 1e22,
		-1e-7, -1e21, 123456789.123456789, 5e-324, math.MaxFloat64,
		math.SmallestNonzeroFloat64, 1.5e-9, 3.0000000000000004,
	}
	rng := rand.New(rand.NewSource(12))
	for len(cases) < 2000 {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		cases = append(cases, f)
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", f, err)
		}
		got := appendJSONFloat(nil, f)
		if !bytes.Equal(want, got) {
			t.Errorf("appendJSONFloat(%v) = %s, encoding/json = %s", f, got, want)
		}
	}
}

// TestEstimateResponseBytesMatchOldCodec serves /v1/estimate and requires the
// body to equal, byte for byte, what the old writeJSON (json.Encoder over
// EstimateResponse) produced for the same answer — including the trailing
// newline. Covers detail on/off, cached on/off, and names needing escapes.
func TestEstimateResponseBytesMatchOldCodec(t *testing.T) {
	srv, store, st := newTestServer(t)
	weird := fitStats(t, `we<ird&"table`, "col umn\t✓", 7)
	if _, err := store.Put(weird); err != nil {
		t.Fatal(err)
	}

	serve := func(rawQuery string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/estimate?"+rawQuery, nil)
		srv.ServeHTTP(rec, req)
		return rec
	}
	oldEncode := func(v any) []byte {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	for _, c := range []struct {
		name          string
		table, column string
		b             int64
		sigma, s      float64
		sExplicit     bool
		detail        bool
	}{
		{name: "plain", table: st.Table, column: st.Column, b: 64, sigma: 0.05, s: 1},
		{name: "detail", table: st.Table, column: st.Column, b: 64, sigma: 0.05, s: 0.25, sExplicit: true, detail: true},
		{name: "sigma_zero", table: st.Table, column: st.Column, b: 10, sigma: 0, s: 1, detail: true},
		{name: "escaped_names", table: weird.Table, column: weird.Column, b: 32, sigma: 0.5, s: 1},
	} {
		q := url.Values{}
		q.Set("table", c.table)
		q.Set("column", c.column)
		q.Set("b", strconv.FormatInt(c.b, 10))
		q.Set("sigma", strconv.FormatFloat(c.sigma, 'g', -1, 64))
		if c.sExplicit {
			q.Set("s", strconv.FormatFloat(c.s, 'g', -1, 64))
		}
		if c.detail {
			q.Set("detail", "1")
		}
		entry, err := store.Snapshot().Get(c.table, c.column)
		if err != nil {
			t.Fatal(err)
		}
		for _, cached := range []bool{false, true} {
			rec := serve(q.Encode())
			if rec.Code != http.StatusOK {
				t.Fatalf("%s: status %d body %s", c.name, rec.Code, rec.Body.String())
			}
			est, err := core.EstIO(entry, core.Input{B: c.b, Sigma: c.sigma, S: c.s}, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := EstimateResponse{
				Table: c.table, Column: c.column, B: c.b, Sigma: c.sigma, S: c.s,
				Fetches: est.F, Generation: store.Generation(), Cached: cached,
			}
			if c.detail {
				want.Detail = &est
			}
			if got, wantBytes := rec.Body.Bytes(), oldEncode(want); !bytes.Equal(got, wantBytes) {
				t.Errorf("%s (cached=%v):\n got  %s\n want %s", c.name, cached, got, wantBytes)
			}
		}
	}
}

// TestBatchResponseBytesMatchOldCodec does the same for the batch route,
// mixing successful items, per-item 400s, and per-item 404s.
func TestBatchResponseBytesMatchOldCodec(t *testing.T) {
	srv, store, st := newTestServer(t)
	sarg := 0.5
	breq := BatchRequest{Requests: []EstimateRequest{
		{Table: st.Table, Column: st.Column, B: 64, Sigma: 0.05},
		{Table: st.Table, Column: st.Column, B: 128, Sigma: 0.2, S: &sarg, Detail: true},
		{Table: st.Table, Column: st.Column, B: 0, Sigma: 0.05},  // per-item 400
		{Table: "nosuch", Column: "idx", B: 64, Sigma: 0.05},     // per-item 404
		{Table: st.Table, Column: st.Column, B: 64, Sigma: 0.05}, // repeat: cached
	}}
	body, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate/batch", bytes.NewReader(body))
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rec.Code, rec.Body.String())
	}

	// Replicate the old handler: estimate each request and encode the
	// BatchResponse with encoding/json.
	snap := store.Snapshot()
	want := BatchResponse{Count: len(breq.Requests), Generation: snap.Generation(), Items: make([]BatchItem, len(breq.Requests))}
	for i, r := range breq.Requests {
		in := estimateInput{table: r.Table, column: r.Column, b: r.B, sigma: r.Sigma, s: r.sarg(), detail: r.Detail}
		var res estimateResult
		if err := srv.estimate(snap, &in, &res, nil); err != nil {
			want.Items[i] = BatchItem{Error: err.Error(), Status: statusOf(err)}
			want.Failed++
			continue
		}
		item := EstimateResponse{
			Table: r.Table, Column: r.Column, B: r.B, Sigma: r.Sigma, S: in.s,
			Fetches: res.est.F, Generation: res.gen, Cached: true, // all warmed by the served batch
		}
		if r.Detail {
			d := res.est
			item.Detail = &d
		}
		want.Items[i] = BatchItem{Estimate: &item}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(want); err != nil {
		t.Fatal(err)
	}
	got := rec.Body.Bytes()
	// The served batch ran first, so its items 0/1/3(second occurrence) were
	// misses; normalize by comparing structurally for the cached flag, then
	// byte-compare with the flags the server actually reported.
	var served BatchResponse
	if err := json.Unmarshal(got, &served); err != nil {
		t.Fatal(err)
	}
	for i := range want.Items {
		if want.Items[i].Estimate != nil {
			want.Items[i].Estimate.Cached = served.Items[i].Estimate.Cached
		}
	}
	buf.Reset()
	if err := json.NewEncoder(&buf).Encode(want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Errorf("batch bytes differ:\n got  %s\n want %s", got, buf.Bytes())
	}
	// And the repeat of item 0 must have been served from the memo.
	if !served.Items[4].Estimate.Cached {
		t.Error("repeated batch item was not served from the memo cache")
	}
}

// TestGoldenEstimateResponse pins the exact serving bytes for a fixed
// catalog (datagen seed 1) — the same bytes the pre-codec-swap service
// produced, recorded before the swap.
func TestGoldenEstimateResponse(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for _, c := range []struct {
		query  string
		golden string
	}{
		{
			query:  "/v1/estimate?table=orders&column=key&b=64&sigma=0.05",
			golden: "{\"table\":\"orders\",\"column\":\"key\",\"b\":64,\"sigma\":0.05,\"s\":1,\"fetches\":444.3272727272727,\"generation\":1,\"cached\":false}\n",
		},
		{
			query:  "/v1/estimate?table=orders&column=key&b=64&sigma=0.05&s=0.25&detail=1",
			golden: "{\"table\":\"orders\",\"column\":\"key\",\"b\":64,\"sigma\":0.05,\"s\":0.25,\"fetches\":190.7508866613224,\"generation\":1,\"cached\":false,\"detail\":{\"F\":190.7508866613224,\"PFB\":8886.545454545454,\"Base\":444.3272727272727,\"Phi\":0.128,\"Nu\":0,\"Correction\":0,\"SargableFactor\":0.4293026747840548}}\n",
		},
	} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, c.query, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", c.query, rec.Code)
		}
		if got := rec.Body.String(); got != c.golden {
			t.Errorf("%s:\n got  %q\n want %q", c.query, got, c.golden)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q", c.query, ct)
		}
	}
}

// TestAppendBatchRequestMatchesEncodingJSON checks the client-side pooled
// encoder emits exactly json.Marshal's bytes for BatchRequest.
func TestAppendBatchRequestMatchesEncodingJSON(t *testing.T) {
	half := 0.5
	zero := 0.0
	for _, req := range []BatchRequest{
		{},
		{Requests: []EstimateRequest{}},
		{Requests: []EstimateRequest{{Table: "orders", Column: "key", B: 64, Sigma: 0.05}}},
		{Requests: []EstimateRequest{
			{Table: `we<ird&"t`, Column: "c\t✓", B: -1, Sigma: 1e-7, S: &half, Detail: true},
			{Table: "a", Column: "b", B: 9007199254740993, Sigma: 0.3333333333333333, S: &zero},
		}},
	} {
		want, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		got := appendBatchRequest(nil, &req)
		if !bytes.Equal(want, got) {
			t.Errorf("appendBatchRequest:\n got  %s\n want %s", got, want)
		}
	}
}

// --- batch body decoder -----------------------------------------------------

// TestDecodeBatchBodyMatchesEncodingJSON decodes a range of valid bodies with
// both the streaming scanner and the old json.Decoder and requires identical
// resolved inputs.
func TestDecodeBatchBodyMatchesEncodingJSON(t *testing.T) {
	bodies := []string{
		`{"requests":[]}`,
		`{}`,
		`{"requests":null}`,
		`{"requests":[{"table":"orders","column":"key","b":64,"sigma":0.05}]}`,
		`{"requests":[{"table":"orders","column":"key","b":64,"sigma":0.05,"s":0.25,"detail":true}]}`,
		`{"requests":[{"table":"orders","column":"key","b":64,"sigma":0.05,"s":null}]}`,
		`{"requests":[{"b":-3,"sigma":1e-3,"table":"t","column":"c","detail":false}]}`,
		`{"requests":[{"table":"esc\"aped\u0041\t","column":"日本\u2028","b":1,"sigma":1}]}`,
		`{"requests":[{"table":"dup","column":"x","b":1,"b":2,"sigma":0.5}]}`,
		"{\n  \"requests\" : [ { \"table\" : \"w s\" , \"column\" : \"c\" , \"b\" : 9007199254740993 , \"sigma\" : 0.3333333333333333 } ]\n}",
		`{"requests":[{"table":"a","column":"b","b":1,"sigma":0.1},{"table":"c","column":"d","b":2,"sigma":0.2,"s":1e-6}]}`,
		`{"requests":[{"table":null,"column":null,"b":null,"sigma":null,"detail":null}]}`,
		`{"requests":[{"table":"\ud83d\ude00","column":"\ud800","b":1,"sigma":0}]}`,
	}
	for _, body := range bodies {
		var old BatchRequest
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&old); err != nil {
			t.Fatalf("encoding/json rejected fixture %s: %v", body, err)
		}
		scratch := &batchScratch{}
		if err := decodeBatchBody(body, 1024, scratch); err != nil {
			t.Errorf("decodeBatchBody(%s): %v", body, err)
			continue
		}
		if len(scratch.reqs) != len(old.Requests) {
			t.Errorf("%s: %d items, encoding/json %d", body, len(scratch.reqs), len(old.Requests))
			continue
		}
		for i, r := range old.Requests {
			want := estimateInput{table: r.Table, column: r.Column, b: r.B, sigma: r.Sigma, s: r.sarg(), detail: r.Detail}
			if got := scratch.reqs[i]; got != want {
				t.Errorf("%s item %d:\n got  %+v\n want %+v", body, i, got, want)
			}
		}
	}
}

func TestDecodeBatchBodyRejections(t *testing.T) {
	for _, c := range []struct {
		body     string
		fragment string
	}{
		{``, "decode request body"},
		{`[]`, "decode request body"},
		{`{"requests":[{"table":"t","column":"c","b":1,"sigma":0.1}`, "decode request body"},
		{`{"unknown":1}`, `unknown field "unknown"`},
		{`{"requests":[{"table":"t","column":"c","b":1,"sigma":0.1,"extra":true}]}`, `unknown field "extra"`},
		{`{"requests":[{"table":"t","column":"c","b":"12","sigma":0.1}]}`, "decode request body"},
		{`{"requests":[{"table":"t","column":"c","b":1.5,"sigma":0.1}]}`, "field b"},
		{`{"requests":[{"table":"t","column":"c","b":1e3,"sigma":0.1}]}`, "field b"},
		{`{"requests":[{"table":"t","column":"c","b":1,"sigma":1e999}]}`, "field sigma"},
		{`{"requests":[{"table":12,"column":"c","b":1,"sigma":0.1}]}`, "decode request body"},
		{`{"requests":[{"table":"t","column":"c","b":1,"sigma":NaN}]}`, "decode request body"},
		{`{"requests":[{"table":"t","column":"c","b":1,"sigma":0.1,"detail":"yes"}]}`, "field detail"},
	} {
		if err := decodeBatchBody(c.body, 1024, &batchScratch{}); err == nil {
			t.Errorf("decodeBatchBody(%s) accepted", c.body)
		} else if !strings.Contains(err.Error(), c.fragment) {
			t.Errorf("decodeBatchBody(%s) = %q, want fragment %q", c.body, err, c.fragment)
		}
	}
	// The batch limit is enforced while scanning.
	err := decodeBatchBody(`{"requests":[{"b":1},{"b":2},{"b":3}]}`, 2, &batchScratch{})
	if err == nil || !strings.Contains(err.Error(), "exceeds limit 2") {
		t.Errorf("limit breach = %v", err)
	}
}

// --- query parsing ----------------------------------------------------------

func TestParseEstimateQueryHardening(t *testing.T) {
	parse := func(rawQuery string) (estimateInput, error) {
		r := httptest.NewRequest(http.MethodGet, "/v1/estimate?"+rawQuery, nil)
		var in estimateInput
		err := parseEstimateQuery(r, &in)
		return in, err
	}

	// Plain and escaped parameters decode as before.
	in, err := parse("table=orders&column=key&b=64&sigma=0.05&s=0.25&detail=1")
	if err != nil {
		t.Fatal(err)
	}
	if in != (estimateInput{table: "orders", column: "key", b: 64, sigma: 0.05, s: 0.25, detail: true}) {
		t.Fatalf("parsed %+v", in)
	}
	in, err = parse("table=we%3Cird%26%22table&column=col+umn%09%E2%9C%93&b=1&sigma=1")
	if err != nil {
		t.Fatal(err)
	}
	if in.table != `we<ird&"table` || in.column != "col umn\t✓" {
		t.Fatalf("unescaped %q %q", in.table, in.column)
	}

	// Omitted s defaults to 1; empty s is treated as omitted (old behavior).
	if in, err = parse("table=t&column=c&b=1&sigma=0.5&s="); err != nil || in.s != 1 {
		t.Fatalf("empty s: %+v, %v", in, err)
	}

	// Unknown parameters are ignored, even duplicated.
	if _, err = parse("table=t&column=c&b=1&sigma=0.5&zz=1&zz=2"); err != nil {
		t.Fatalf("unknown parameters rejected: %v", err)
	}

	// Duplicated known parameters are rejected.
	for _, q := range []string{
		"table=t&table=t&column=c&b=1&sigma=0.5",
		"table=t&column=c&b=1&b=2&sigma=0.5",
		"table=t&column=c&b=1&sigma=0.5&sigma=0.5",
		"table=t&column=c&b=1&sigma=0.5&s=1&s=1",
	} {
		if _, err := parse(q); err == nil || !strings.Contains(err.Error(), "more than once") {
			t.Errorf("parse(%s) = %v, want duplicate rejection", q, err)
		}
	}

	// Non-finite sigma and s are rejected with the core typed sentinels.
	if _, err := parse("table=t&column=c&b=1&sigma=NaN"); !errors.Is(err, core.ErrBadSigma) {
		t.Errorf("NaN sigma: %v, want ErrBadSigma", err)
	}
	if _, err := parse("table=t&column=c&b=1&sigma=Inf"); !errors.Is(err, core.ErrBadSigma) {
		t.Errorf("Inf sigma: %v, want ErrBadSigma", err)
	}
	if _, err := parse("table=t&column=c&b=1&sigma=0.5&s=NaN"); !errors.Is(err, core.ErrBadSarg) {
		t.Errorf("NaN s: %v, want ErrBadSarg", err)
	}
	if _, err := parse("table=t&column=c&b=1&sigma=0.5&s=-Inf"); !errors.Is(err, core.ErrBadSarg) {
		t.Errorf("-Inf s: %v, want ErrBadSarg", err)
	}
	// Finite out-of-domain values still flow to Est-IO (whose sentinels the
	// handler maps to 400), preserving the old division of labor.
	if _, err := parse("table=t&column=c&b=1&sigma=1.5"); err != nil {
		t.Errorf("finite out-of-range sigma rejected at parse time: %v", err)
	}

	// Error precedence matches the old parser regardless of parameter order.
	if _, err := parse("sigma=bad&b=alsobad&table=t&column=c"); err == nil ||
		!strings.Contains(err.Error(), "parameter b") {
		t.Errorf("precedence: %v, want b error first", err)
	}
	if _, err := parse("b=1&sigma=0.5"); err == nil ||
		!strings.Contains(err.Error(), "table and column are required") {
		t.Errorf("missing identity: %v", err)
	}
}

// TestParseEstimateQueryNonFiniteOverHTTP proves the hardening surfaces as a
// 400 with the typed sentinel message, end to end.
func TestParseEstimateQueryNonFiniteOverHTTP(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for _, q := range []string{
		"/v1/estimate?table=orders&column=key&b=64&sigma=NaN",
		"/v1/estimate?table=orders&column=key&b=64&sigma=%2BInf",
		"/v1/estimate?table=orders&column=key&b=64&sigma=0.05&s=Infinity",
		"/v1/estimate?table=orders&column=key&b=64&b=64&sigma=0.05",
	} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, q, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400 (body %s)", q, rec.Code, rec.Body.String())
		}
	}
}

func TestParseEstimateQueryZeroAlloc(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet,
		"/v1/estimate?table=orders&column=key&b=64&sigma=0.05&s=0.25&detail=1", nil)
	var in estimateInput
	if n := testing.AllocsPerRun(200, func() {
		if err := parseEstimateQuery(r, &in); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("parseEstimateQuery allocates %v/op, want 0", n)
	}
}
