package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"epfis/internal/obs"
	"epfis/internal/resilience"
)

// Client is the thin Go client for the estimation service. It retries
// transport errors and 429/503 responses with the configured policy,
// honoring the server's Retry-After header, and treats every other non-2xx
// status as permanent. Safe for concurrent use.
type Client struct {
	base  string
	http  *http.Client
	retry resilience.RetryPolicy
}

// ClientConfig configures NewClient. BaseURL is required.
type ClientConfig struct {
	// BaseURL is the service root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Retry tunes the retry policy; the zero value uses the resilience
	// defaults (4 attempts, 50ms → 2s backoff with jitter).
	Retry resilience.RetryPolicy
}

// NewClient builds a client for the service at cfg.BaseURL.
func NewClient(cfg ClientConfig) (*Client, error) {
	u, err := url.Parse(cfg.BaseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("service: bad base URL %q", cfg.BaseURL)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimSuffix(u.String(), "/"), http: hc, retry: cfg.Retry}, nil
}

// StatusError is a non-2xx service response. Is(err, ...) matching works
// through errors.As.
type StatusError struct {
	Code    int    // HTTP status
	Message string // server-provided error string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("service: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// retryable reports whether the response status is worth retrying: shed
// (429) and unavailable (503) are explicitly transient on this service.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Estimate fetches one estimate. The returned response is bit-exact with a
// direct core.EstimateFetches call against the served generation.
func (c *Client) Estimate(ctx context.Context, req EstimateRequest) (EstimateResponse, error) {
	buf := getBuf()
	defer putBuf(buf)
	b := append(*buf, "/v1/estimate?table="...)
	b = appendQueryEscape(b, req.Table)
	b = append(b, "&column="...)
	b = appendQueryEscape(b, req.Column)
	b = append(b, "&b="...)
	b = strconv.AppendInt(b, req.B, 10)
	b = append(b, "&sigma="...)
	b = strconv.AppendFloat(b, req.Sigma, 'g', -1, 64)
	if req.S != nil {
		b = append(b, "&s="...)
		b = strconv.AppendFloat(b, *req.S, 'g', -1, 64)
	}
	if req.Detail {
		b = append(b, "&detail=1"...)
	}
	*buf = b
	var out EstimateResponse
	err := c.do(ctx, http.MethodGet, string(b), nil, &out)
	return out, err
}

// EstimateBatch fetches many estimates in one round trip. The request body
// is encoded into a pooled buffer (appendBatchRequest emits the same bytes
// json.Marshal would), so a load generator issuing batches back to back
// reuses one buffer instead of re-allocating per call.
func (c *Client) EstimateBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	for i := range req.Requests {
		r := &req.Requests[i]
		if badJSONNumber(r.Sigma) || (r.S != nil && badJSONNumber(*r.S)) {
			return out, fmt.Errorf("service: encode request: unsupported value in request %d", i)
		}
	}
	buf := getBuf()
	defer putBuf(buf)
	*buf = appendBatchRequest(*buf, &req)
	err := c.do(ctx, http.MethodPost, "/v1/estimate/batch", *buf, &out)
	return out, err
}

func badJSONNumber(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }

// appendBatchRequest encodes a BatchRequest exactly as encoding/json does
// (field order, omitempty s and detail), into a caller-owned buffer.
func appendBatchRequest(dst []byte, req *BatchRequest) []byte {
	dst = append(dst, `{"requests":`...)
	if req.Requests == nil {
		return append(dst, "null}"...)
	}
	dst = append(dst, '[')
	for i := range req.Requests {
		r := &req.Requests[i]
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"table":`...)
		dst = appendJSONString(dst, r.Table)
		dst = append(dst, `,"column":`...)
		dst = appendJSONString(dst, r.Column)
		dst = append(dst, `,"b":`...)
		dst = strconv.AppendInt(dst, r.B, 10)
		dst = append(dst, `,"sigma":`...)
		dst = appendJSONFloat(dst, r.Sigma)
		if r.S != nil {
			dst = append(dst, `,"s":`...)
			dst = appendJSONFloat(dst, *r.S)
		}
		if r.Detail {
			dst = append(dst, `,"detail":true`...)
		}
		dst = append(dst, '}')
	}
	return append(dst, "]}"...)
}

// appendQueryEscape appends url.QueryEscape(s) to dst without intermediate
// strings.
func appendQueryEscape(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == '~':
			dst = append(dst, c)
		case c == ' ':
			dst = append(dst, '+')
		default:
			dst = append(dst, '%', upperHexDigits[c>>4], upperHexDigits[c&0xF])
		}
	}
	return dst
}

const upperHexDigits = "0123456789ABCDEF"

// Reload asks the service to re-read its catalog file, returning the new
// generation.
func (c *Client) Reload(ctx context.Context) (uint64, error) {
	var out struct {
		Generation uint64 `json:"generation"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/reload", nil, &out)
	return out.Generation, err
}

// Health fetches /healthz. A draining instance (503) is reported as a
// *StatusError after retries, with the decoded document discarded.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var out Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// do runs one JSON request through the retry policy. body (may be nil) is a
// pre-encoded JSON document owned by the caller for the duration of the
// call; responses are read into a pooled buffer and decoded from it. Every
// attempt carries the same traceparent — taken from ctx when the caller put
// one there (obs.ContextWithTraceparent), freshly generated otherwise — so
// the retries of one logical call correlate server-side.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	tp, ok := obs.TraceparentFrom(ctx)
	if !ok {
		tp = obs.NewTraceparent()
	}
	traceparent := tp.String()
	return resilience.Retry(ctx, c.retry, func(ctx context.Context) error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return resilience.Permanent(err)
		}
		req.Header.Set(obs.TraceparentHeader, traceparent)
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err // transport errors retry on the backoff schedule
		}
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		// Read the whole response into a pooled buffer: one reusable
		// allocation across calls instead of a fresh json.Decoder buffer per
		// response.
		rbuf := getBuf()
		defer putBuf(rbuf)
		raw, err := readBody(resp.Body, *rbuf)
		*rbuf = raw
		if err != nil {
			return fmt.Errorf("service: read response: %w", err)
		}
		if resp.StatusCode/100 != 2 {
			serr := &StatusError{Code: resp.StatusCode}
			var msg struct {
				Error string `json:"error"`
			}
			if jerr := json.Unmarshal(raw, &msg); jerr == nil {
				serr.Message = msg.Error
			}
			if !retryable(resp.StatusCode) {
				return resilience.Permanent(serr)
			}
			if d := parseRetryAfter(resp.Header.Get("Retry-After")); d > 0 {
				return resilience.After(serr, d)
			}
			return serr
		}
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return resilience.Permanent(fmt.Errorf("service: decode response: %w", err))
		}
		return nil
	})
}

// parseRetryAfter handles both Retry-After forms: delay-seconds and
// HTTP-date. Zero means "no usable hint".
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
