package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"epfis/internal/resilience"
)

// Client is the thin Go client for the estimation service. It retries
// transport errors and 429/503 responses with the configured policy,
// honoring the server's Retry-After header, and treats every other non-2xx
// status as permanent. Safe for concurrent use.
type Client struct {
	base  string
	http  *http.Client
	retry resilience.RetryPolicy
}

// ClientConfig configures NewClient. BaseURL is required.
type ClientConfig struct {
	// BaseURL is the service root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Retry tunes the retry policy; the zero value uses the resilience
	// defaults (4 attempts, 50ms → 2s backoff with jitter).
	Retry resilience.RetryPolicy
}

// NewClient builds a client for the service at cfg.BaseURL.
func NewClient(cfg ClientConfig) (*Client, error) {
	u, err := url.Parse(cfg.BaseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("service: bad base URL %q", cfg.BaseURL)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimSuffix(u.String(), "/"), http: hc, retry: cfg.Retry}, nil
}

// StatusError is a non-2xx service response. Is(err, ...) matching works
// through errors.As.
type StatusError struct {
	Code    int    // HTTP status
	Message string // server-provided error string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("service: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// retryable reports whether the response status is worth retrying: shed
// (429) and unavailable (503) are explicitly transient on this service.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Estimate fetches one estimate. The returned response is bit-exact with a
// direct core.EstimateFetches call against the served generation.
func (c *Client) Estimate(ctx context.Context, req EstimateRequest) (EstimateResponse, error) {
	q := url.Values{}
	q.Set("table", req.Table)
	q.Set("column", req.Column)
	q.Set("b", strconv.FormatInt(req.B, 10))
	q.Set("sigma", strconv.FormatFloat(req.Sigma, 'g', -1, 64))
	if req.S != nil {
		q.Set("s", strconv.FormatFloat(*req.S, 'g', -1, 64))
	}
	if req.Detail {
		q.Set("detail", "1")
	}
	var out EstimateResponse
	err := c.do(ctx, http.MethodGet, "/v1/estimate?"+q.Encode(), nil, &out)
	return out, err
}

// EstimateBatch fetches many estimates in one round trip.
func (c *Client) EstimateBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/estimate/batch", req, &out)
	return out, err
}

// Reload asks the service to re-read its catalog file, returning the new
// generation.
func (c *Client) Reload(ctx context.Context) (uint64, error) {
	var out struct {
		Generation uint64 `json:"generation"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/reload", nil, &out)
	return out.Generation, err
}

// Health fetches /healthz. A draining instance (503) is reported as a
// *StatusError after retries, with the decoded document discarded.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var out Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// do runs one JSON request through the retry policy.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("service: encode request: %w", err)
		}
	}
	return resilience.Retry(ctx, c.retry, func(ctx context.Context) error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return resilience.Permanent(err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err // transport errors retry on the backoff schedule
		}
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		if resp.StatusCode/100 != 2 {
			serr := &StatusError{Code: resp.StatusCode}
			var msg struct {
				Error string `json:"error"`
			}
			if jerr := json.NewDecoder(resp.Body).Decode(&msg); jerr == nil {
				serr.Message = msg.Error
			}
			if !retryable(resp.StatusCode) {
				return resilience.Permanent(serr)
			}
			if d := parseRetryAfter(resp.Header.Get("Retry-After")); d > 0 {
				return resilience.After(serr, d)
			}
			return serr
		}
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resilience.Permanent(fmt.Errorf("service: decode response: %w", err))
		}
		return nil
	})
}

// parseRetryAfter handles both Retry-After forms: delay-seconds and
// HTTP-date. Zero means "no usable hint".
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
