package service

// Durable per-key mutation stamps: the tombstone half of partition-tolerant
// replication.
//
// The receiver-side ordering gate (applyReplicated) and the snapshot-merge
// skip set both key off cluster.Node's per-key stamp table. That table used
// to be memory-only, which left one resurrection window: a node that applied
// a DELETE, crashed, and then pulled a snapshot from a peer that had missed
// the DELETE would happily re-adopt the deleted key — the tombstone died
// with the process. The stamp journal closes it: every applied stamp (local
// or replicated, PUTs and DELETEs alike) is appended to a CRC32-C-framed
// file under Config.HandoffDir — the same durability domain as the hint
// journal — and reloaded into the node's stamp table before the service
// answers its first request. The reload also folds the highest journaled
// epoch into the node's Lamport clock, so the first post-restart local
// mutation is stamped above everything this node ever applied.
//
// The journal is append-only between compactions; once the appended tail
// outgrows the live table it is rewritten from the table (one frame per
// key). With HandoffDir unset the table stays memory-only, preserving the
// old behaviour for tests and throwaway topologies.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"path/filepath"
	"sync"

	"epfis/internal/cluster"
	"epfis/internal/faultfs"
	"epfis/internal/obs"
)

// stampJournalFile is the journal's name under HandoffDir. The hint loader
// only considers *.hints files, so the two journals coexist in one dir.
const stampJournalFile = "keystamps.journal"

// stampCompactMin is the minimum appended-frame count before a compaction is
// considered (avoids rewriting a tiny file on every mutation).
const stampCompactMin = 256

// stampRecord is one journaled stamp frame.
type stampRecord struct {
	Key    string `json:"key"`
	Epoch  uint64 `json:"epoch"`
	Origin string `json:"origin"`
}

// stampJournal persists the cluster node's per-key stamp table.
type stampJournal struct {
	s    *Server
	path string
	fs   faultfs.FS

	mu      sync.Mutex
	f       faultfs.File
	appends int // frames appended since the last compaction

	errorsC *obs.Counter
}

// newStampJournal opens (creating if absent) the stamp journal under dir,
// replays it into the cluster node's stamp table, and folds the highest
// journaled epoch into the node's Lamport clock. The caller (New) has
// already created dir via newHandoff.
func newStampJournal(s *Server, dir string) (*stampJournal, error) {
	j := &stampJournal{
		s:    s,
		path: filepath.Join(dir, stampJournalFile),
		fs:   faultfs.OS(),
	}
	j.errorsC = s.obs.reg.Counter("epfis_cluster_stamp_journal_errors_total",
		"Stamp journal writes that failed (the stamp stays tracked in memory).")
	data, err := j.fs.ReadFile(j.path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("service: stamp journal: %w", err)
	}
	if err == nil {
		recs, good, count := decodeStamps(data)
		if good < int64(len(data)) {
			// Torn or corrupt tail: keep the durable prefix, cut the rest.
			if terr := j.fs.Truncate(j.path, good); terr != nil {
				return nil, fmt.Errorf("service: stamp journal: truncate torn tail: %w", terr)
			}
		}
		var maxEpoch uint64
		for key, st := range recs {
			s.cluster.RecordKeyStamp(key, st)
			if st.Epoch > maxEpoch {
				maxEpoch = st.Epoch
			}
		}
		s.cluster.ObserveEpoch(maxEpoch)
		j.appends = count
	}
	return j, nil
}

// decodeStamps parses [len][crc][json] frames (the hint frame format),
// folding later frames for the same key over earlier ones in Stamp order. It
// returns the folded table, the byte offset of the last fully valid frame,
// and the raw frame count (the compaction-pressure seed).
func decodeStamps(data []byte) (map[string]cluster.Stamp, int64, int) {
	recs := map[string]cluster.Stamp{}
	off, count := int64(0), 0
	for {
		var rec stampRecord
		n, ok := decodeFrame(data[off:], &rec)
		if !ok {
			break
		}
		st := cluster.Stamp{Epoch: rec.Epoch, Origin: rec.Origin}
		if cur := recs[rec.Key]; cur.Less(st) {
			recs[rec.Key] = st
		}
		off += n
		count++
	}
	return recs, off, count
}

// append journals one applied stamp (fsynced). Failures demote the stamp to
// memory-only rather than failing the mutation: the apply already happened
// and the in-memory table still orders everything this process lifetime.
func (j *stampJournal) append(key string, st cluster.Stamp) {
	frame, err := encodeFrame(stampRecord{Key: key, Epoch: st.Epoch, Origin: st.Origin})
	if err != nil {
		j.errorsC.Inc()
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(frame); err != nil {
		j.errorsC.Inc()
		j.s.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "stamp journal append failed",
			slog.String("key", key), slog.String("error", err.Error()))
		return
	}
	j.appends++
	if live := len(j.s.cluster.KeyStamps()); j.appends >= stampCompactMin && j.appends > 2*live {
		j.compactLocked()
	}
}

// appendLocked writes one frame and fsyncs. Caller holds j.mu.
func (j *stampJournal) appendLocked(frame []byte) error {
	if j.f == nil {
		f, err := j.fs.OpenAppend(j.path)
		if err != nil {
			return err
		}
		j.f = f
	}
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	return j.f.Sync()
}

// compactLocked rewrites the journal to exactly the live stamp table (one
// frame per key). Caller holds j.mu.
func (j *stampJournal) compactLocked() {
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	if err := j.fs.Truncate(j.path, 0); err != nil {
		return // stale frames linger; the Stamp-max fold on reload is harmless
	}
	table := j.s.cluster.KeyStamps()
	j.appends = len(table)
	for key, st := range table {
		frame, err := encodeFrame(stampRecord{Key: key, Epoch: st.Epoch, Origin: st.Origin})
		if err != nil {
			continue
		}
		if err := j.appendLocked(frame); err != nil {
			j.errorsC.Inc()
			return
		}
	}
}

// close releases the journal handle.
func (j *stampJournal) close() {
	j.mu.Lock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	j.mu.Unlock()
}

// recordStamp records one applied mutation stamp in the cluster node's table
// and, when the stamp journal is armed, durably. Every apply site (local
// origination, replicated arrival, ingest republish) funnels through here.
func (s *Server) recordStamp(key string, st cluster.Stamp) {
	s.cluster.RecordKeyStamp(key, st)
	if s.stamps != nil {
		s.stamps.append(key, st)
	}
}
