package service

// Straggler-peer drill for the quorum fast-ack path: a client PUT must
// return as soon as W owner acks land, not when the slowest replica
// answers, and the detached straggler send must still converge the slow
// peer — directly when it lands, through a journaled hint when it fails.

import (
	"context"
	"net/http"
	"testing"
	"time"

	"epfis/internal/faultnet"
)

func TestClusterQuorumFastAckStraggler(t *testing.T) {
	nodes := startFaultCluster(t, 3, 3) // R=3, majority W=2: self + one peer
	a, b, c := nodes[0], nodes[1], nodes[2]

	// Every replication send from a to c crawls: the injected delay is far
	// past the 500ms per-peer replication timeout, so the straggler send is
	// guaranteed to miss and journal a hint.
	a.inj.Add(faultnet.Rule{
		Op:    faultnet.OpRequest,
		Peer:  c.host(),
		Route: "/v1/indexes/",
		Count: -1,
		Mode:  faultnet.ModeSlow,
		Delay: 3 * time.Second,
	})

	st := fitStats(t, "orders", "straggler", 7)
	start := time.Now()
	if status, body := rawMutate(t, a.cnode, http.MethodPut,
		"/v1/indexes/orders/straggler", mustMarshal(t, st)); status != http.StatusOK {
		t.Fatalf("PUT with one slow peer = %d, want 200: %s", status, body)
	}
	elapsed := time.Since(start)

	// Fast-ack: the verdict (self + b = 2 acks) must land well before the
	// straggler's 500ms timeout, let alone its 1.5-3s injected delay.
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("quorum PUT took %v with one slow peer, want fast-ack well under the 500ms straggler timeout", elapsed)
	}
	if got := a.srv.cobs.fastAcks.Value(); got == 0 {
		t.Fatalf("fastAcks counter = 0 after straggler PUT, want > 0")
	}

	// b (the fast owner) already holds the entry.
	if _, err := b.store.Get("orders", "straggler"); err != nil {
		t.Fatalf("fast peer missing entry after ack: %v", err)
	}

	// The detached send must converge c eventually: once the straggler
	// times out it journals a hint, and draining after the fault clears
	// delivers it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		a.inj.Reset()
		a.srv.DrainHandoff(context.Background())
		if _, err := c.store.Get("orders", "straggler"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow peer never received the straggler entry via detached send or hint")
		}
		time.Sleep(50 * time.Millisecond)
	}
	hc, _, err := c.store.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	ha, _, err := a.store.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if hc != ha {
		t.Fatalf("slow peer hash %s != originator hash %s after drain", hc, ha)
	}
}
