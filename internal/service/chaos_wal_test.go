package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/core"
	"epfis/internal/faultfs"
)

// TestChaosIngestOverWALFaults runs the streaming-ingestion path against a
// WAL-backed catalog whose filesystem misbehaves: append, write, and fsync
// faults on the log plus rename faults on the checkpoint, armed one class at
// a time while full-scan traces stream through POST /v1/ingest and readers
// hammer /v1/estimate for an index whose statistics never change. Readers
// must only ever see the bit-exact published answer or an honest shed;
// republishes may fail under a fault but must never corrupt the store, and
// a clean reopen at the end must recover every acknowledged commit.
func TestChaosIngestOverWALFaults(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS(), 7)
	path := filepath.Join(t.TempDir(), "catalog.json")
	store, err := catalog.OpenWALFS(path, catalog.WALOptions{CheckpointEvery: 2}, inj)
	if err != nil {
		t.Fatal(err)
	}
	orders := fitStats(t, "orders", "key", 1)
	if _, err := store.Put(orders); err != nil {
		t.Fatal(err)
	}
	want, err := core.EstimateFetches(orders, 100, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, MaxInflight: 64, IngestQueue: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 64

	// Readers: the orders.key statistics never change, so every 200 must
	// carry the exact published estimate no matter what the WAL suffers.
	const readers = 32
	stop := make(chan struct{})
	var (
		wg       sync.WaitGroup
		served   atomic.Int64
		failures atomic.Int64
		firstErr atomic.Pointer[string]
	)
	record := func(format string, args ...any) {
		failures.Add(1)
		msg := fmt.Sprintf(format, args...)
		firstErr.CompareAndSwap(nil, &msg)
	}
	url := ts.URL + "/v1/estimate?table=orders&column=key&b=100&sigma=0.05"
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(url)
				if err != nil {
					record("GET estimate: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var got EstimateResponse
					err := json.NewDecoder(resp.Body).Decode(&got)
					resp.Body.Close()
					if err != nil {
						record("decode estimate: %v", err)
						return
					}
					if got.Fetches != want {
						record("WRONG ANSWER: fetches = %v, want %v (generation %d)",
							got.Fetches, want, got.Generation)
						return
					}
					served.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					resp.Body.Close()
				default:
					resp.Body.Close()
					record("estimate returned status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	// Each round arms one fault class on the durability path and streams a
	// full scan of a fresh, unknown column: drift is 1.0 by construction, so
	// the worker attempts exactly one republish Put into the armed fault.
	faults := []faultfs.Rule{
		{Op: faultfs.OpAppend, Path: ".wal", Nth: 1, Mode: faultfs.ModeError},
		{Op: faultfs.OpWrite, Path: ".wal", Nth: 1, Mode: faultfs.ModePartial},
		{Op: faultfs.OpSync, Path: ".wal", Nth: 1, Mode: faultfs.ModeError},
		{Op: faultfs.OpRename, Path: "catalog.json", Nth: 1, Mode: faultfs.ModeError},
	}
	for round, rule := range faults {
		before := inj.Injected()
		inj.Add(rule)
		ds, meta := ingestDataset(t, "lineitem", fmt.Sprintf("c%d", round), int64(round+13))
		postIngest(t, ts, meta, ds.Trace(), true, rand.New(rand.NewSource(int64(round))))
		// The worker is asynchronous: wait for the republish Put (or its
		// checkpoint) to actually hit the armed fault before the next round.
		deadline := time.Now().Add(10 * time.Second)
		for inj.Injected() == before {
			if time.Now().After(deadline) {
				t.Fatalf("round %d (%s %s): fault never fired", round, rule.Op, rule.Path)
			}
			time.Sleep(time.Millisecond)
		}
	}

	close(stop)
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d reader failures; first: %s", n, *firstErr.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no estimate was served during the chaos run")
	}

	// Disarm and stream one clean scan: the ingest path must have healed
	// (the WAL self-repairs its torn tail on the next commit).
	inj.Reset()
	ds, meta := ingestDataset(t, "lineitem", "healed", 99)
	postIngest(t, ts, meta, ds.Trace(), true, rand.New(rand.NewSource(99)))
	srv.Close() // drains the worker: every queued batch is processed
	if _, err := store.Snapshot().Get("lineitem", "healed"); err != nil {
		t.Fatalf("post-fault republish missing: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean reopen must recover every acknowledged commit bit-exactly.
	reopened, err := catalog.OpenWAL(path, catalog.WALOptions{})
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	defer reopened.Close()
	snap := reopened.Snapshot()
	for _, key := range []struct{ table, column string }{
		{"orders", "key"}, {"lineitem", "healed"},
	} {
		st, err := snap.Get(key.table, key.column)
		if err != nil {
			t.Fatalf("%s.%s lost across reopen: %v", key.table, key.column, err)
		}
		if err := st.Validate(); err != nil {
			t.Fatalf("%s.%s invalid after recovery: %v", key.table, key.column, err)
		}
	}
	reorders, err := snap.Get("orders", "key")
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.EstimateFetches(reorders, 100, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-recovery estimate = %v, want %v", got, want)
	}
	t.Logf("chaos-wal: %d exact answers, %d faults injected", served.Load(), inj.Injected())
}
