package service

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/obs"
)

// Observability defaults for Config zero values.
const (
	DefaultTraceRing = 256
	DefaultSlowTrace = 100 * time.Millisecond
)

// latencyBuckets spans 1µs … ~4s log-spaced: estimates serve in about a
// microsecond while disk-touching mutations run to milliseconds.
var latencyBuckets = obs.ExpBuckets(1e-6, 4, 12)

// sigmaBuckets covers the selectivity fraction domain (0, 1]; values above 1
// land in +Inf and flag malformed traffic.
var sigmaBuckets = []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1}

// statusClasses are the per-route response labels. Shed (429) and
// unavailable/draining (503) responses get their own labels so overload and
// drain behaviour is visible separately from generic 4xx/5xx.
var statusClasses = [...]string{"2xx", "3xx", "4xx", "429", "5xx", "503"}

func statusClass(status int) int {
	switch {
	case status == http.StatusTooManyRequests:
		return 3
	case status == http.StatusServiceUnavailable:
		return 5
	case status >= 500:
		return 4
	case status >= 400:
		return 2
	case status >= 300:
		return 1
	default:
		return 0
	}
}

// routeObs holds one route's hot-path instruments as direct pointers:
// recording is a histogram observe plus one counter increment, with no map
// lookups, locks, or allocation.
type routeObs struct {
	lat    *obs.Histogram
	status [len(statusClasses)]*obs.Counter
}

// obsIndexKey addresses a per-index estimate counter. A comparable struct of
// strings: hot-path lookups build it on the stack from fields the request
// already holds, so no key string is ever concatenated while serving.
type obsIndexKey struct{ table, column string }

// serverObs is the server's observability wiring: the metric registry, the
// ring of completed request traces, and the structured logger.
type serverObs struct {
	reg  *obs.Registry
	log  *slog.Logger
	ring *obs.TraceRing // nil when tracing is disabled
	slow time.Duration  // negative: every request is flagged slow

	routes map[string]*routeObs

	bufferPages        *obs.Histogram
	sigmaDist          *obs.Histogram
	breakerTransitions *obs.Counter

	// Per-index estimate counters: registration happens on catalog mutations
	// under idxMu; the serving path reads an immutable snapshot map through
	// one atomic pointer load.
	idxMu  sync.Mutex
	idxAll map[obsIndexKey]*obs.Counter
	idx    atomic.Pointer[map[obsIndexKey]*obs.Counter]
}

// newServerObs builds the registry and all instruments. Called from New once
// store, cache, metrics, breaker, and the degraded/draining flags exist, so
// the scrape-time bridges can close over them.
func newServerObs(s *Server, cfg Config, routes []string) *serverObs {
	o := &serverObs{
		reg:    obs.NewRegistry(),
		log:    newServiceLogger(cfg),
		slow:   cfg.SlowTrace,
		routes: make(map[string]*routeObs, len(routes)),
		idxAll: make(map[obsIndexKey]*obs.Counter),
	}
	if o.slow == 0 {
		o.slow = DefaultSlowTrace
	}
	ringSize := cfg.TraceRing
	if ringSize == 0 {
		ringSize = DefaultTraceRing
	}
	if ringSize > 0 {
		o.ring = obs.NewTraceRing(ringSize)
	}

	for _, route := range routes {
		ro := &routeObs{
			lat: o.reg.Histogram("epfis_http_request_duration_seconds",
				"Request latency by route.", latencyBuckets,
				obs.Label{Name: "route", Value: route}),
		}
		for i, class := range statusClasses {
			ro.status[i] = o.reg.Counter("epfis_http_requests_total",
				"Requests served by route and status class; shed (429) and draining/unavailable (503) responses have their own labels.",
				obs.Label{Name: "route", Value: route},
				obs.Label{Name: "status", Value: class})
		}
		o.routes[route] = ro
	}

	o.bufferPages = o.reg.Histogram("epfis_estimate_buffer_pages",
		"Requested LRU buffer capacity B across estimate calls.", obs.Pow2Buckets(0, 24))
	o.sigmaDist = o.reg.Histogram("epfis_estimate_sigma",
		"Requested selectivity fraction sigma across estimate calls.", sigmaBuckets)
	o.breakerTransitions = o.reg.Counter("epfis_breaker_transitions_total",
		"Circuit breaker state transitions.")

	met := s.met
	o.reg.CounterFunc("epfis_estimates_total",
		"Individual estimates served (batch items count individually).",
		func() float64 { return float64(met.estimates.Load()) })
	o.reg.CounterFunc("epfis_panics_total",
		"Handler panics recovered by the instrumentation middleware.",
		func() float64 { return float64(met.panics.Load()) })
	o.reg.CounterFunc("epfis_admission_shed_total",
		"Requests shed with 429 by per-route admission control.",
		func() float64 { return float64(met.sheds.Load()) })
	o.reg.CounterFunc("epfis_reload_failures_total",
		"Catalog reloads that left the service degraded.",
		func() float64 { return float64(met.reloadFailures.Load()) })
	o.reg.GaugeFunc("epfis_uptime_seconds",
		"Seconds since the service was constructed.",
		func() float64 { return time.Since(met.start).Seconds() })

	if c := s.cache; c != nil {
		o.reg.CounterFunc("epfis_cache_hits_total", "Est-IO memo cache hits.",
			func() float64 { return float64(c.hits.Load()) })
		o.reg.CounterFunc("epfis_cache_misses_total", "Est-IO memo cache misses.",
			func() float64 { return float64(c.misses.Load()) })
		o.reg.CounterFunc("epfis_cache_evictions_total", "Est-IO memo cache CLOCK evictions.",
			func() float64 { return float64(c.evictions.Load()) })
		o.reg.CounterFunc("epfis_cache_invalidations_total", "Est-IO memo cache invalidations.",
			func() float64 { return float64(c.invalidations.Load()) })
		o.reg.GaugeFunc("epfis_cache_entries", "Live Est-IO memo cache entries.",
			func() float64 { return float64(c.len()) })
	}

	store := s.store
	o.reg.GaugeFunc("epfis_catalog_generation", "Current catalog generation.",
		func() float64 { return float64(store.Generation()) })
	o.reg.GaugeFunc("epfis_catalog_indexes", "Indexes in the current catalog snapshot.",
		func() float64 { return float64(store.Len()) })
	o.reg.GaugeFunc("epfis_catalog_recovered",
		"1 when the catalog was recovered from the previous generation at open.",
		func() float64 { return boolGauge(store.Recovered()) })
	o.reg.GaugeFunc("epfis_degraded",
		"1 while serving from a stale generation after a failed reload.",
		func() float64 { return boolGauge(s.degraded.Load() != nil) })
	o.reg.GaugeFunc("epfis_draining",
		"1 while the service drains in-flight requests during shutdown.",
		func() float64 { return boolGauge(s.draining.Load()) })

	if br := s.breaker; br != nil {
		o.reg.GaugeFunc("epfis_breaker_state",
			"Circuit breaker state: 0 closed, 1 half-open, 2 open.",
			func() float64 {
				switch br.State() {
				case "open":
					return 2
				case "half-open":
					return 1
				default:
					return 0
				}
			})
		o.reg.CounterFunc("epfis_breaker_opens_total", "Times the circuit breaker opened.",
			func() float64 { opens, _ := br.Stats(); return float64(opens) })
		o.reg.CounterFunc("epfis_breaker_rejected_total",
			"Mutations rejected while the circuit breaker was open.",
			func() float64 { _, rejected := br.Stats(); return float64(rejected) })
	}

	if o.ring != nil {
		o.reg.CounterFunc("epfis_traces_total", "Completed request traces recorded.",
			func() float64 { total, _ := o.ring.Totals(); return float64(total) })
		o.reg.CounterFunc("epfis_traces_slow_total",
			"Completed traces over the slow-trace threshold.",
			func() float64 { _, slow := o.ring.Totals(); return float64(slow) })
	}

	// Runtime health: evaluated only at scrape time, so the hot path never
	// pays for a ReadMemStats.
	o.reg.GaugeFunc("epfis_go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	o.reg.GaugeFunc("epfis_go_heap_alloc_bytes", "Heap bytes allocated and in use.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	o.reg.CounterFunc("epfis_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})

	bi := buildInfo()
	o.reg.GaugeFunc("epfis_build_info", "Constant 1 labelled with build metadata.",
		func() float64 { return 1 },
		obs.Label{Name: "version", Value: bi.version},
		obs.Label{Name: "revision", Value: bi.revision},
		obs.Label{Name: "goversion", Value: bi.goVersion})

	o.syncIndexes(store.Snapshot())
	return o
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// tracing reports whether request tracing is enabled.
func (o *serverObs) tracing() bool { return o.ring != nil }

// isSlow applies the slow-trace threshold (negative flags everything).
func (o *serverObs) isSlow(d time.Duration) bool { return o.slow < 0 || d >= o.slow }

// observeRoute records one served request on the route's histogram and
// status-class counter — two direct-pointer instrument updates.
func (o *serverObs) observeRoute(ro *routeObs, status int, d time.Duration) {
	if ro == nil {
		return
	}
	ro.lat.Observe(d.Seconds())
	ro.status[statusClass(status)].Inc()
}

// observeEstimate records the requested (B, sigma) point and the per-index
// traffic counter. The index lookup is one atomic pointer load and one map
// probe with a stack-built comparable key — no allocation.
func (o *serverObs) observeEstimate(table, column string, b int64, sigma float64) {
	o.bufferPages.Observe(float64(b))
	o.sigmaDist.Observe(sigma)
	if m := o.idx.Load(); m != nil {
		if c := (*m)[obsIndexKey{table: table, column: column}]; c != nil {
			c.Inc()
		}
	}
}

// syncIndexes registers estimate counters for catalog entries that lack one
// and republishes the lock-free lookup snapshot. Called at construction and
// after catalog mutations — never on the serving path. Counters persist
// across drops (Prometheus counters must not vanish mid-scrape-series).
func (o *serverObs) syncIndexes(snap *catalog.Snapshot) {
	o.idxMu.Lock()
	defer o.idxMu.Unlock()
	for _, key := range snap.Keys() {
		e, ok := snap.Lookup(key)
		if !ok {
			continue
		}
		k := obsIndexKey{table: e.Table, column: e.Column}
		if _, ok := o.idxAll[k]; ok {
			continue
		}
		o.idxAll[k] = o.reg.Counter("epfis_index_estimates_total",
			"Estimates addressed at each catalog index.",
			obs.Label{Name: "index", Value: e.Table + "." + e.Column})
	}
	pub := make(map[obsIndexKey]*obs.Counter, len(o.idxAll))
	for k, c := range o.idxAll {
		pub[k] = c
	}
	o.idx.Store(&pub)
}

// onBreakerChange is wired as the resilience.Breaker state hook: it counts
// the transition and logs it at warn with structured attrs.
func (s *Server) onBreakerChange(from, to string) {
	o := s.obs
	if o == nil { // transition during New, before wiring completes
		return
	}
	o.breakerTransitions.Inc()
	if o.log.Enabled(context.Background(), slog.LevelWarn) {
		o.log.LogAttrs(context.Background(), slog.LevelWarn, "breaker state change",
			slog.String("from", from), slog.String("to", to))
	}
}

// discardHandler is a no-op slog.Handler. (The stdlib gained one after the
// Go version CI pins, so the service carries its own.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// newServiceLogger resolves the configured structured logger: Slog wins, a
// legacy Logger is bridged through a text handler on its writer, and with
// neither set logs are discarded.
func newServiceLogger(cfg Config) *slog.Logger {
	if cfg.Slog != nil {
		return cfg.Slog
	}
	if cfg.Logger != nil {
		return slog.New(slog.NewTextHandler(cfg.Logger.Writer(), nil))
	}
	return slog.New(discardHandler{})
}

// buildMeta is the once-resolved build identification served by /healthz and
// the epfis_build_info metric.
type buildMeta struct{ version, revision, goVersion string }

var buildInfo = sync.OnceValue(func() buildMeta {
	bi := buildMeta{version: "unknown", revision: "unknown", goVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Version != "" {
		bi.version = info.Main.Version
	}
	for _, st := range info.Settings {
		if st.Key == "vcs.revision" {
			bi.revision = st.Value
		}
	}
	return bi
})

// traceOf recovers the request's span buffer from the pooled status
// recorder. A nil result (tracing disabled, or a writer the middleware did
// not wrap) is safe to pass everywhere: TraceBuf methods no-op on nil.
func traceOf(w http.ResponseWriter) *obs.TraceBuf {
	if rec, ok := w.(*statusRecorder); ok {
		return rec.trace
	}
	return nil
}

// wantsProm reports whether a /metrics request asked for the Prometheus text
// format — ?format=prom, or an Accept header naming text/plain. The default
// stays the historical JSON document.
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}

// traceSpanDoc is one stage in a /debug/traces entry.
type traceSpanDoc struct {
	Name        string  `json:"name"`
	StartMicros float64 `json:"startMicros"`
	DurMicros   float64 `json:"durMicros"`
}

// traceDoc is one completed request or cluster hop in /debug/traces (and in
// stitched cross-node traces), newest first. Node names the recording node;
// Kind/Peer are set on hop records only.
type traceDoc struct {
	Trace          string         `json:"trace"`
	Span           string         `json:"span"`
	Parent         string         `json:"parent,omitempty"`
	Node           string         `json:"node,omitempty"`
	Kind           string         `json:"kind,omitempty"`
	Peer           string         `json:"peer,omitempty"`
	Route          string         `json:"route"`
	Status         int            `json:"status"`
	Start          time.Time      `json:"start"`
	DurationMicros float64        `json:"durationMicros"`
	Slow           bool           `json:"slow"`
	Spans          []traceSpanDoc `json:"spans"`
}

// traceDocOf renders one ring record as its JSON document, stamped with the
// recording node's name.
func traceDocOf(rec obs.TraceRecord, node string) traceDoc {
	td := traceDoc{
		Trace:          rec.TP.TraceString(),
		Span:           rec.TP.Span.String(),
		Node:           node,
		Kind:           rec.Kind,
		Peer:           rec.Peer,
		Route:          rec.Route,
		Status:         rec.Status,
		Start:          rec.Wall,
		DurationMicros: float64(rec.Duration) / 1e3,
		Slow:           rec.Slow,
		Spans:          make([]traceSpanDoc, 0, rec.NSpans),
	}
	if rec.HasParent {
		td.Parent = rec.Parent.String()
	}
	for i := 0; i < rec.NSpans; i++ {
		sp := rec.Spans[i]
		td.Spans = append(td.Spans, traceSpanDoc{
			Name:        sp.Name,
			StartMicros: float64(sp.Start) / 1e3,
			DurMicros:   float64(sp.End-sp.Start) / 1e3,
		})
	}
	return td
}

// nodeName is this server's name in trace documents: the cluster identity
// when clustered, "local" otherwise.
func (s *Server) nodeName() string {
	if s.cluster != nil {
		return s.cluster.SelfID()
	}
	return "local"
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	o := s.obs
	if o.ring == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled"))
		return
	}
	slowOnly := r.URL.Query().Get("slow") == "1"
	total, slow := o.ring.Totals()
	out := struct {
		Ring                int        `json:"ring"`
		Total               uint64     `json:"total"`
		Slow                uint64     `json:"slow"`
		SlowThresholdMicros float64    `json:"slowThresholdMicros,omitempty"`
		Traces              []traceDoc `json:"traces"`
	}{Ring: o.ring.Len(), Total: total, Slow: slow, Traces: []traceDoc{}}
	if o.slow > 0 {
		out.SlowThresholdMicros = float64(o.slow) / 1e3
	}
	node := s.nodeName()
	for _, rec := range o.ring.Snapshot() {
		if slowOnly && !rec.Slow {
			continue
		}
		out.Traces = append(out.Traces, traceDocOf(rec, node))
	}
	writeJSON(w, http.StatusOK, out)
}
