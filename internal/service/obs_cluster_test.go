package service

// Tests for the cluster-wide observability plane: trace propagation on
// cluster hops, cross-node trace stitching (including under partition),
// metrics federation, and continuous accuracy telemetry.

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"epfis/internal/faultnet"
	"epfis/internal/obs"
)

const (
	testTraceID  = "4bf92f3577b34da6a3ce929d0e0e4736"
	testParent   = "00-" + testTraceID + "-00f067aa0ba902b7-01"
	testTraceID2 = "0af7651916cd43dd8448eb211c80319c"
	testParent2  = "00-" + testTraceID2 + "-b7ad6b7169203331-01"
)

// TestProxiedEstimateReparents is the regression for the proxy trace bug:
// the forwarding node must echo its own re-parented traceparent (same trace
// id as the inbound header, fresh span) rather than the one the owner's
// response carried, record a forward hop on its ring, and the owner must
// record the proxied request under the same trace id.
func TestProxiedEstimateReparents(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	st := fitStats(t, "orders", "key", 1)
	putIndex(t, nodes[0], st)

	owners := nodes[0].node.Owners("orders.key")
	if len(owners) != 1 {
		t.Fatalf("owners = %d, want 1 with replicas=1", len(owners))
	}
	var owner, other *cnode
	for _, cn := range nodes {
		if cn.id == owners[0].ID {
			owner = cn
		} else if other == nil {
			other = cn
		}
	}
	if owner == nil || other == nil {
		t.Fatal("could not split owner and non-owner")
	}

	req, _ := http.NewRequest(http.MethodGet,
		other.url+"/v1/estimate?table=orders&column=key&b=64&sigma=0.5", nil)
	req.Header.Set(obs.TraceparentHeader, testParent)
	resp, err := other.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied estimate via %s = %d, want 200", other.id, resp.StatusCode)
	}
	echo := resp.Header.Get(obs.TraceparentHeader)
	if !strings.HasPrefix(echo, "00-"+testTraceID+"-") {
		t.Fatalf("proxied response traceparent %q does not keep the inbound trace id", echo)
	}
	if strings.Contains(echo, "00f067aa0ba902b7") {
		t.Fatalf("proxied response traceparent %q was not re-parented onto a fresh span", echo)
	}

	id, ok := obs.ParseTraceID(testTraceID)
	if !ok {
		t.Fatal("test trace id does not parse")
	}
	var hop bool
	for _, rec := range other.srv.obs.ring.FindByTrace(id) {
		if rec.Kind == obs.HopForward && rec.Peer == owner.id {
			hop = true
		}
	}
	if !hop {
		t.Fatalf("%s recorded no forward hop to %s for the proxied estimate", other.id, owner.id)
	}
	// The owner's ring record lands after its handler returns; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if recs := owner.srv.obs.ring.FindByTrace(id); len(recs) > 0 {
			if recs[0].Route != routeEstimate {
				t.Fatalf("owner record route = %q, want %q", recs[0].Route, routeEstimate)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner %s never recorded the proxied estimate under trace %s", owner.id, testTraceID)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getStitched fetches and decodes one stitched trace document.
func getStitched(t testing.TB, cn *fnode, traceID string) stitchDoc {
	t.Helper()
	resp, err := cn.ts.Client().Get(cn.url + "/debug/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s via %s = %d", traceID, cn.id, resp.StatusCode)
	}
	var doc stitchDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestStitchAcrossClusterIdentifiesSlowOwner drives the acceptance scenario:
// a quorum PUT against a 3-node cluster with one faultnet-slowed owner must
// yield a stitched trace — queried from a node that did not coordinate the
// write — containing the coordinator's replication hops plus the replicated
// requests as served by the peers, with the slow hop identifiable by peer
// label and duration.
func TestStitchAcrossClusterIdentifiesSlowOwner(t *testing.T) {
	nodes := startFaultCluster(t, 3, 3)
	a, b, c := nodes[0], nodes[1], nodes[2]

	// Congest a's replication sends to c: 100–200ms, under the 500ms
	// replication timeout, so the hop succeeds but straggles behind the
	// quorum fast-ack.
	a.inj.Add(faultnet.Rule{
		Op: faultnet.OpRequest, Peer: c.host(), Route: "/v1/indexes/",
		Count: -1, Mode: faultnet.ModeSlow, Delay: 200 * time.Millisecond,
	})

	st := fitStats(t, "orders", "key", 1)
	body := mustMarshal(t, st)
	req, _ := http.NewRequest(http.MethodPut, a.url+"/v1/indexes/orders/key", strings.NewReader(string(body)))
	req.Header.Set(obs.TraceparentHeader, testParent)
	resp, err := a.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quorum PUT = %d, want 200", resp.StatusCode)
	}

	// The slow hop completes detached from the client ack; poll the stitched
	// view from b until both replication hops are visible.
	deadline := time.Now().Add(5 * time.Second)
	for {
		doc := getStitched(t, b, testTraceID)
		var hopB, hopC *traceDoc
		seen := map[string]bool{}
		for i := range doc.Records {
			rec := &doc.Records[i]
			seen[rec.Node] = true
			if rec.Kind == obs.HopReplicate && rec.Node == a.id {
				switch rec.Peer {
				case b.id:
					hopB = rec
				case c.id:
					hopC = rec
				}
			}
		}
		if hopB != nil && hopC != nil {
			if len(seen) < 2 {
				t.Fatalf("stitched trace spans %d nodes, want >= 2: %+v", len(seen), doc.Nodes)
			}
			// The injector floor is Delay/2 = 100ms; the healthy hop runs in
			// single-digit milliseconds.
			if hopC.DurationMicros < 90_000 {
				t.Fatalf("slow hop to %s took %.0fµs, expected >= 90ms of injected congestion", c.id, hopC.DurationMicros)
			}
			if hopC.DurationMicros <= hopB.DurationMicros {
				t.Fatalf("slow hop (%s, %.0fµs) not slower than healthy hop (%s, %.0fµs)",
					c.id, hopC.DurationMicros, b.id, hopB.DurationMicros)
			}
			if len(doc.MissingNodes) != 0 {
				t.Fatalf("healthy stitch reported missing nodes %v", doc.MissingNodes)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stitched trace never showed both replication hops: b=%v c=%v records=%d",
				hopB != nil, hopC != nil, len(doc.Records))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestStitchPartitionedPeerHonestTimeout stitches while one peer's trace
// endpoint is slowed far past the replication timeout: the stitch must
// return the partial trace promptly and name the unreachable peer in
// missing_nodes instead of hanging.
func TestStitchPartitionedPeerHonestTimeout(t *testing.T) {
	nodes := startFaultCluster(t, 3, 3)
	a, b, c := nodes[0], nodes[1], nodes[2]

	st := fitStats(t, "orders", "key", 1)
	body := mustMarshal(t, st)
	req, _ := http.NewRequest(http.MethodPut, a.url+"/v1/indexes/orders/key", strings.NewReader(string(body)))
	req.Header.Set(obs.TraceparentHeader, testParent2)
	resp, err := a.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT = %d, want 200", resp.StatusCode)
	}

	// Give b's ring its replicated-PUT record before cutting c off.
	deadline := time.Now().Add(3 * time.Second)
	id, _ := obs.ParseTraceID(testTraceID2)
	for len(b.srv.obs.ring.FindByTrace(id)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica b never recorded the replicated PUT")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Slow a's stitch fan-out to c far past the 500ms replication timeout.
	a.inj.Add(faultnet.Rule{
		Op: faultnet.OpRequest, Peer: c.host(), Route: "/debug/traces",
		Count: -1, Mode: faultnet.ModeSlow, Delay: 3 * time.Second,
	})

	start := time.Now()
	doc := getStitched(t, a, testTraceID2)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("stitch with a partitioned peer took %v, must stay inside the peer timeout", elapsed)
	}
	missing := false
	for _, nodeID := range doc.MissingNodes {
		if nodeID == c.id {
			missing = true
		}
	}
	if !missing {
		t.Fatalf("missing_nodes = %v, want %s listed", doc.MissingNodes, c.id)
	}
	seen := map[string]bool{}
	for _, rec := range doc.Records {
		seen[rec.Node] = true
	}
	if !seen[a.id] || !seen[b.id] {
		t.Fatalf("partial stitch lost reachable nodes: got %v, want %s and %s", doc.Nodes, a.id, b.id)
	}
}

// TestClusterMetricsFederation scrapes the federated endpoint and checks the
// merged exposition is valid, carries per-node labels, and rolls counters up
// so the cluster series equals the per-node sum.
func TestClusterMetricsFederation(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	st := fitStats(t, "orders", "key", 1)
	putIndex(t, nodes[0], st)

	// Serve a few estimates (non-owners proxy; only serving nodes count).
	for _, cn := range nodes {
		resp, err := cn.ts.Client().Get(cn.url + "/v1/estimate?table=orders&column=key&b=64&sigma=0.5")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate via %s = %d", cn.id, resp.StatusCode)
		}
	}

	resp, err := nodes[0].ts.Client().Get(nodes[0].url + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("federated exposition invalid: %v", err)
	}

	fams, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.ExpoFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	// Counter rollup: node="cluster" equals the per-node sum, and every node
	// contributed a labelled series.
	est, ok := byName["epfis_estimates_total"]
	if !ok {
		t.Fatal("federated exposition lacks epfis_estimates_total")
	}
	perNode := map[string]float64{}
	var cluster float64
	for _, smp := range est.Samples {
		node, _ := smp.LabelValue("node")
		if node == "cluster" {
			cluster = smp.Value
		} else {
			perNode[node] += smp.Value
		}
	}
	if len(perNode) != 3 {
		t.Fatalf("epfis_estimates_total has %d node series, want 3: %v", len(perNode), perNode)
	}
	var sum float64
	for _, v := range perNode {
		sum += v
	}
	if cluster != sum || cluster < 3 {
		t.Fatalf("cluster rollup = %g, per-node sum = %g (want equal and >= 3)", cluster, sum)
	}

	// Histogram rollup: the request-latency family must carry a merged
	// node="cluster" series whose _count equals the per-node counts.
	lat, ok := byName["epfis_http_request_duration_seconds"]
	if !ok {
		t.Fatal("federated exposition lacks epfis_http_request_duration_seconds")
	}
	var latCluster, latNodes float64
	for _, smp := range lat.Samples {
		if !strings.HasSuffix(smp.Name, "_count") {
			continue
		}
		if node, _ := smp.LabelValue("node"); node == "cluster" {
			latCluster += smp.Value
		} else {
			latNodes += smp.Value
		}
	}
	if latCluster == 0 || latCluster != latNodes {
		t.Fatalf("histogram rollup _count = %g, per-node sum = %g (want equal, nonzero)", latCluster, latNodes)
	}

	// Every node answered the scrape.
	upFam, ok := byName["epfis_federation_peer_up"]
	if !ok {
		t.Fatal("federated exposition lacks epfis_federation_peer_up")
	}
	ups := map[string]float64{}
	for _, smp := range upFam.Samples {
		node, _ := smp.LabelValue("node")
		ups[node] = smp.Value
	}
	for _, cn := range nodes {
		if ups[cn.id] != 1 {
			t.Fatalf("epfis_federation_peer_up[%s] = %g, want 1 (all: %v)", cn.id, ups[cn.id], ups)
		}
	}
}

// TestAccuracyTelemetrySingleNode streams one full scan of the published
// index (zero drift, so no republish) and checks the accuracy surfaces: the
// /debug/accuracy document and the epfis_accuracy_relerr histograms must
// both record the measurement even though nothing was refitted.
func TestAccuracyTelemetrySingleNode(t *testing.T) {
	srv, _, st := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Same dataset and seed as the index newTestServer fitted: zero drift,
	// so nothing republishes, but accuracy must still be recorded.
	ds, meta := ingestDataset(t, st.Table, st.Column, 1)
	gen := srv.store.Generation()
	postIngest(t, ts, meta, ds.Trace(), false, rand.New(rand.NewSource(44)))
	srv.Close() // drain the worker so the scan is evaluated

	if srv.store.Generation() != gen {
		t.Fatalf("zero-drift scan republished (generation %d -> %d)", gen, srv.store.Generation())
	}

	var doc accuracyDoc
	getJSON(t, ts, "/debug/accuracy", http.StatusOK, &doc)
	if doc.Node != "local" {
		t.Fatalf("accuracy node = %q, want local", doc.Node)
	}
	acc, ok := doc.Indexes["orders.key"]
	if !ok {
		t.Fatalf("accuracy doc lacks orders.key: %+v", doc.Indexes)
	}
	if acc.Scans < 1 {
		t.Fatalf("scans = %d, want >= 1", acc.Scans)
	}
	if acc.MaxRelErr >= DefaultDriftThreshold {
		t.Fatalf("max relative error %g crossed the drift threshold on the fitted trace", acc.MaxRelErr)
	}
	if acc.MeanRelErr > acc.MaxRelErr {
		t.Fatalf("mean relative error %g exceeds max %g", acc.MeanRelErr, acc.MaxRelErr)
	}
	if len(acc.Points) == 0 || len(acc.Points) > maxAccuracyPoints {
		t.Fatalf("accuracy points = %d, want 1..%d sampled grid points", len(acc.Points), maxAccuracyPoints)
	}
	if acc.RefsSinceRefit < st.N {
		t.Fatalf("refsSinceRefit = %d, want >= %d (one full scan, no refit)", acc.RefsSinceRefit, st.N)
	}
	if acc.Republishes != 0 {
		t.Fatalf("republishes = %d, want 0", acc.Republishes)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition with accuracy metrics invalid: %v", err)
	}
	text := string(body)
	for _, want := range []string{
		"epfis_accuracy_relerr_bucket{index=\"orders.key\",stat=\"max\"",
		"epfis_accuracy_relerr_bucket{index=\"orders.key\",stat=\"mean\"",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition lacks %q", want)
		}
	}
}
