package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"epfis/internal/resilience"
)

// fastRetry is a client retry policy with recorded, not real, sleeps.
func fastRetry(slept *[]time.Duration) resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		Jitter:      -1, // disable for determinism
		Sleep: func(ctx context.Context, d time.Duration) error {
			if slept != nil {
				*slept = append(*slept, d)
			}
			return nil
		},
	}
}

func newClientFor(t *testing.T, ts *httptest.Server, slept *[]time.Duration) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{
		BaseURL:    ts.URL,
		HTTPClient: ts.Client(),
		Retry:      fastRetry(slept),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientEstimateMatchesDirectHandler(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := newClientFor(t, ts, nil)
	got, err := c.Estimate(context.Background(), EstimateRequest{
		Table: "orders", Column: "key", B: 100, Sigma: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want EstimateResponse
	getJSON(t, ts, "/v1/estimate?table=orders&column=key&b=100&sigma=0.01", http.StatusOK, &want)
	if got.Fetches != want.Fetches || got.Generation != want.Generation {
		t.Fatalf("client estimate %+v != direct %+v", got, want)
	}
}

func TestClientRetriesShedRequestsHonoringRetryAfter(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			writeError(w, http.StatusTooManyRequests, errOverloaded)
			return
		}
		writeJSON(w, http.StatusOK, EstimateResponse{Fetches: 42})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var slept []time.Duration
	c := newClientFor(t, ts, &slept)
	got, err := c.Estimate(context.Background(), EstimateRequest{Table: "t", Column: "c", B: 1, Sigma: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Fetches != 42 {
		t.Fatalf("Fetches = %v, want 42", got.Fetches)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
	// Both waits must come from the Retry-After header, not the backoff.
	if len(slept) != 2 || slept[0] != 3*time.Second || slept[1] != 3*time.Second {
		t.Fatalf("slept %v, want [3s 3s]", slept)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusNotFound, errors.New("no such index"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newClientFor(t, ts, nil)
	_, err := c.Estimate(context.Background(), EstimateRequest{Table: "t", Column: "c", B: 1, Sigma: 0.1})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want StatusError 404", err)
	}
	if serr.Message != "no such index" {
		t.Fatalf("Message = %q", serr.Message)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1 (404 is permanent)", n)
	}
}

func TestClientRetriesExhaustReturnStatusError(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeRetryable(w, http.StatusServiceUnavailable, errors.New("draining"), time.Second)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newClientFor(t, ts, nil)
	_, err := c.Health(context.Background())
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want StatusError 503", err)
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("server saw %d calls, want MaxAttempts=4", n)
	}
}

func TestClientBatchAndReloadAndHealth(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := newClientFor(t, ts, nil)
	ctx := context.Background()

	batch, err := c.EstimateBatch(ctx, BatchRequest{Requests: []EstimateRequest{
		{Table: "orders", Column: "key", B: 100, Sigma: 0.01},
		{Table: "no", Column: "such", B: 100, Sigma: 0.01},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Count != 2 || batch.Failed != 1 {
		t.Fatalf("batch count=%d failed=%d, want 2/1", batch.Count, batch.Failed)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health status %q, want ok", h.Status)
	}

	// Reload on an in-memory store has no path: permanent 400.
	_, err = c.Reload(ctx)
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusBadRequest {
		t.Fatalf("reload err = %v, want StatusError 400", err)
	}
}

func TestClientRejectsBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "/relative/only"} {
		if _, err := NewClient(ClientConfig{BaseURL: bad}); err == nil {
			t.Fatalf("NewClient(%q) accepted a bad base URL", bad)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"garbage", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// HTTP-date form: a point ~5s in the future parses to a positive wait.
	future := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got <= 0 || got > 5*time.Second {
		t.Errorf("parseRetryAfter(%q) = %v, want (0, 5s]", future, got)
	}
}
