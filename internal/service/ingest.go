package service

// Streaming trace ingestion: POST /v1/ingest accepts batched page-reference
// traces from live index scans and keeps the catalog's fetch curves fresh
// without an offline LRU-Fit run.
//
// The route is deliberately asynchronous. The handler validates the batch,
// resolves the index metadata (from the payload, else the current catalog
// entry), and enqueues it on a bounded queue; a full queue sheds with 429 +
// Retry-After, so trace producers get backpressure instead of adding latency
// to the serving path. A single worker goroutine drains the queue and feeds
// each batch into a per-index lrusim.Accum — the incremental Mattson
// simulation, bit-identical to analyzing the concatenated trace in one shot.
//
// When an index's accumulated stream reaches a full scan (N references), the
// worker compares the live fetch curve against the published catalog entry
// on the entry's own modeling grid. If the maximum relative divergence
// exceeds Config.DriftThreshold, it refits the curve (core.LRUFitFromCurve —
// LRU-Fit minus the already-done simulation pass), republishes the entry as
// a new catalog generation through the normal store path (WAL-durable when
// the store is WAL-backed), invalidates stale memo-cache generations, and in
// cluster mode bumps the gossip epoch so anti-entropy streams the refreshed
// catalog to peers. Because the accumulator state is exactly the offline
// simulation's state, a republished curve is bit-exact with running
// core.LRUFit over the same trace offline.

// # Crash durability and cluster routing
//
// With a WAL-backed store, every acked batch is journaled first: the handler
// frames the batch (with a dedup ID) into the catalog's CRC32-C WAL
// (walFrameIngest) and fsyncs via group commit before answering 202. At
// startup the journaled batches are replayed into the accumulators — so a
// crash between ack and republish loses nothing — and frames not yet folded
// into a published entry are carried forward across checkpoint rotations.
// Batch IDs make at-least-once delivery safe: a redelivered batch (client
// retry, crash replay of a carried frame) is deduplicated within its
// accumulation window.
//
// In cluster mode each index's stream is accumulated at its ring owners so
// a scan's partial batches never split across nodes: a non-owner forwards
// the batch one hop (X-Epfis-Forwarded), and a forwarded batch landing on a
// non-owner answers 421 like a misrouted estimate.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"epfis/internal/cluster"
	"epfis/internal/core"
	"epfis/internal/lrusim"
	"epfis/internal/obs"
	"epfis/internal/storage"
)

// Ingestion defaults for Config zero values.
const (
	DefaultIngestQueue    = 64
	DefaultDriftThreshold = 0.05

	// maxIngestBatchRefs bounds one batch; larger traces must be split
	// (the accumulator makes splits free).
	maxIngestBatchRefs = 1 << 20
)

// IngestRequest is one POST /v1/ingest batch: a slice of the data-page
// reference trace of an index scan, in reference order. T/N/I optionally
// carry the index metadata; when omitted the current catalog entry's
// metadata is used (and the request fails with 400 if the index is unknown).
type IngestRequest struct {
	Table  string           `json:"table"`
	Column string           `json:"column"`
	Pages  []storage.PageID `json:"pages"`
	T      int64            `json:"t,omitempty"`
	N      int64            `json:"n,omitempty"`
	I      int64            `json:"i,omitempty"`
	// BatchID deduplicates at-least-once delivery: a batch redelivered with
	// the same ID within one accumulation window is fed exactly once.
	// Optional; a journaling server assigns one when absent.
	BatchID string `json:"batchId,omitempty"`
}

// IngestResponse acknowledges an accepted batch.
type IngestResponse struct {
	Key       string `json:"key"`
	BatchID   string `json:"batchId,omitempty"`
	Queued    int    `json:"queued"`    // references accepted
	Depth     int    `json:"depth"`     // queue depth after enqueue
	Journaled bool   `json:"journaled"` // durable in the WAL before this ack
}

// ingestBatch is the queued unit of work.
type ingestBatch struct {
	key   string
	id    string // dedup ID; "" when not journaling
	meta  core.Meta
	pages lrusim.Trace
}

// ingestRecord is the WAL frame payload for one journaled batch: the batch
// plus its resolved metadata, so replay does not depend on catalog state.
type ingestRecord struct {
	ID     string           `json:"id,omitempty"`
	Table  string           `json:"table"`
	Column string           `json:"column"`
	T      int64            `json:"t"`
	N      int64            `json:"n"`
	I      int64            `json:"i"`
	Pages  []storage.PageID `json:"pages"`
}

// ingestState is one index's accumulator between batches. Owned by the
// worker goroutine; never touched by handlers.
type ingestState struct {
	accum *lrusim.Accum
	meta  core.Meta
	seen  map[string]struct{} // batch IDs fed into the current window
}

// pendEntry is one journaled batch not yet folded into a published entry.
type pendEntry struct {
	id      string
	payload []byte
}

// ingester is the ingestion subsystem: the bounded queue, the worker, and
// its instruments.
type ingester struct {
	s      *Server
	ch     chan ingestBatch
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
	drift  float64
	states map[string]*ingestState

	// accMu guards the per-index accuracy state (written by the worker at
	// every completed scan, read by GET /debug/accuracy) and its lazily
	// registered epfis_accuracy_relerr histograms.
	accMu   sync.Mutex
	acc     map[string]*indexAccuracy
	accHist map[string]*obs.Histogram // keyed index\x00stat

	// journal is set by New when the store is WAL-backed: acked batches are
	// framed into the WAL before the 202 and replayed at startup.
	journal bool
	pendMu  sync.Mutex
	pending map[string][]pendEntry // journaled batches per key, FIFO

	batchRefs         *obs.Histogram
	driftDist         *obs.Histogram
	batches           *obs.Counter
	refs              *obs.Counter
	sheds             *obs.Counter
	scans             *obs.Counter
	republishes       *obs.Counter
	republishFailures *obs.Counter
	journalAppends    *obs.Counter
	journalReplays    *obs.Counter
	journalDups       *obs.Counter
	journalErrs       *obs.Counter
	journalDrops      *obs.Counter
}

// newIngester wires the queue and instruments. Called from New after s.obs
// exists; a nil return means ingestion is disabled. New starts the worker
// itself, after replaying any WAL-journaled batches — replay must own the
// accumulator maps before the goroutine exists.
func newIngester(s *Server, cfg Config) *ingester {
	if cfg.IngestQueue < 0 {
		return nil
	}
	depth := cfg.IngestQueue
	if depth == 0 {
		depth = DefaultIngestQueue
	}
	g := &ingester{
		s:       s,
		ch:      make(chan ingestBatch, depth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		drift:   cfg.DriftThreshold,
		states:  make(map[string]*ingestState),
		pending: make(map[string][]pendEntry),
		acc:     make(map[string]*indexAccuracy),
		accHist: make(map[string]*obs.Histogram),
	}
	if g.drift == 0 {
		g.drift = DefaultDriftThreshold
	}
	reg := s.obs.reg
	g.batchRefs = reg.Histogram("epfis_ingest_batch_refs",
		"Page references per accepted ingest batch.", obs.Pow2Buckets(0, 20))
	g.driftDist = reg.Histogram("epfis_ingest_drift",
		"Relative fetch-curve divergence measured at each completed scan.",
		[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5})
	g.batches = reg.Counter("epfis_ingest_batches_total", "Ingest batches accepted.")
	g.refs = reg.Counter("epfis_ingest_refs_total", "Page references ingested.")
	g.sheds = reg.Counter("epfis_ingest_shed_total",
		"Ingest batches shed with 429 because the queue was full.")
	g.scans = reg.Counter("epfis_ingest_scans_total",
		"Full scans completed by accumulated ingest batches.")
	g.republishes = reg.Counter("epfis_ingest_republish_total",
		"Catalog generations republished because live curves drifted past the threshold.")
	g.republishFailures = reg.Counter("epfis_ingest_republish_failures_total",
		"Drifted curves that failed to refit or persist.")
	g.journalAppends = reg.Counter("epfis_ingest_journal_appends_total",
		"Ingest batches framed into the WAL before acknowledgement.")
	g.journalReplays = reg.Counter("epfis_ingest_journal_replayed_total",
		"Journaled ingest batches replayed into accumulators at startup.")
	g.journalDups = reg.Counter("epfis_ingest_journal_duplicates_total",
		"Redelivered batches deduplicated by ID within their accumulation window.")
	g.journalErrs = reg.Counter("epfis_ingest_journal_errors_total",
		"Ingest batches rejected because the WAL append failed.")
	g.journalDrops = reg.Counter("epfis_ingest_journal_dropped_total",
		"Journal frames skipped at replay because they failed to parse.")
	reg.GaugeFunc("epfis_ingest_queue_depth", "Ingest batches waiting for the worker.",
		func() float64 { return float64(len(g.ch)) })
	reg.GaugeFunc("epfis_ingest_journal_pending",
		"Journaled batches not yet folded into a published catalog entry.",
		func() float64 {
			g.pendMu.Lock()
			n := 0
			for _, q := range g.pending {
				n += len(q)
			}
			g.pendMu.Unlock()
			return float64(n)
		})
	return g
}

// close stops the worker after it drains everything already queued.
func (g *ingester) close() {
	g.once.Do(func() { close(g.stop) })
	<-g.done
}

// Close releases background resources (the ingest worker and the handoff
// drainer). The HTTP handler keeps answering — queued batches are drained
// first, later ones sit in the queue unprocessed — so Close is safe to call
// while a server drains.
func (s *Server) Close() {
	if s.ingest != nil {
		s.ingest.close()
	}
	if s.handoff != nil {
		s.handoff.close()
	}
	if s.stamps != nil {
		s.stamps.close()
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	g := s.ingest
	var req IngestRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Table == "" || req.Column == "" {
		writeError(w, http.StatusBadRequest, errors.New("table and column are required"))
		return
	}
	if len(req.Pages) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("pages must carry at least one reference"))
		return
	}
	if len(req.Pages) > maxIngestBatchRefs {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch carries %d references, max %d; split the trace", len(req.Pages), maxIngestBatchRefs))
		return
	}
	if s.cluster != nil {
		// Ring-ownership routing: an index's stream is accumulated at its
		// owners so a scan's partial batches never split across nodes. A
		// non-owner forwards one hop; a forwarded batch still landing on a
		// non-owner means the sender's ring is stale — 421, never a loop.
		key := req.Table + "." + req.Column
		if !s.cluster.Owns(key) {
			if r.Header.Get(cluster.HeaderForwarded) != "" {
				s.cobs.misdirected.Inc()
				s.writeMisdirected(w, key)
				return
			}
			s.forwardIngest(w, r, &req, key)
			return
		}
		w.Header().Set(cluster.HeaderNode, s.cluster.SelfID())
	}
	meta := core.Meta{Table: req.Table, Column: req.Column, T: req.T, N: req.N, I: req.I}
	if meta.T <= 0 || meta.N <= 0 || meta.I <= 0 {
		e, err := s.store.Snapshot().Get(req.Table, req.Column)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf(
				"no catalog entry for %s.%s: the batch must carry t, n, and i", req.Table, req.Column))
			return
		}
		meta.T, meta.N, meta.I = e.T, e.N, e.I
	}
	if meta.I > meta.N {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("i = %d exceeds n = %d", meta.I, meta.N))
		return
	}
	batch := ingestBatch{key: req.Table + "." + req.Column, id: req.BatchID, meta: meta, pages: req.Pages}
	journaled := false
	if g.journal {
		if batch.id == "" {
			batch.id = newBatchID()
		}
		// Backpressure first: shed before journaling, so a full queue costs
		// the client a retry, not a WAL frame.
		if len(g.ch) == cap(g.ch) {
			g.sheds.Inc()
			writeRetryable(w, http.StatusTooManyRequests,
				errors.New("ingest queue full, retry later"), time.Second)
			return
		}
		payload, perr := json.Marshal(ingestRecord{
			ID: batch.id, Table: req.Table, Column: req.Column,
			T: meta.T, N: meta.N, I: meta.I, Pages: req.Pages})
		if perr == nil {
			g.addPending(batch.key, batch.id, payload)
			if err := s.store.AppendIngest(payload); err != nil {
				g.dropPending(batch.key, batch.id)
				g.journalErrs.Inc()
				writeRetryable(w, http.StatusServiceUnavailable,
					fmt.Errorf("journal ingest batch: %w", err), time.Second)
				return
			}
			g.journalAppends.Inc()
			journaled = true
		}
		// The frame is durable; if the slot pre-check raced this blocks
		// until the worker frees a slot rather than losing an acked batch.
		select {
		case g.ch <- batch:
		case <-g.stop:
			writeRetryable(w, http.StatusServiceUnavailable,
				errors.New("ingest worker stopped"), time.Second)
			return
		}
	} else {
		select {
		case g.ch <- batch:
		default:
			g.sheds.Inc()
			writeRetryable(w, http.StatusTooManyRequests,
				errors.New("ingest queue full, retry later"), time.Second)
			return
		}
	}
	g.batches.Inc()
	g.refs.Add(uint64(len(req.Pages)))
	g.batchRefs.Observe(float64(len(req.Pages)))
	writeJSON(w, http.StatusAccepted, IngestResponse{
		Key: batch.key, BatchID: batch.id, Queued: len(req.Pages), Depth: len(g.ch),
		Journaled: journaled})
}

// newBatchID draws a random dedup ID for a journaled batch the client did
// not name. "" (rand failure) just disables dedup for that batch.
func newBatchID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return hex.EncodeToString(b[:])
}

// forwardIngest proxies a non-owned ingest batch one hop to a ring owner,
// preserving any client batch ID so owner-side dedup applies across the hop.
func (s *Server) forwardIngest(w http.ResponseWriter, r *http.Request, req *IngestRequest, key string) {
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	for _, p := range s.cluster.Owners(key) {
		if p.ID == s.cluster.SelfID() || p.URL == "" || p.State == cluster.StateDead {
			continue
		}
		if s.proxyRequest(w, r, p, http.MethodPost, "/v1/ingest", body) {
			s.cobs.proxied.Inc()
			return
		}
	}
	s.cobs.proxyFailures.Inc()
	writeRetryable(w, http.StatusServiceUnavailable,
		fmt.Errorf("%w %s", errAllOwnersDown, key), time.Second)
}

// addPending records a journaled batch as live: its frame is carried across
// checkpoint rotations until its window completes.
func (g *ingester) addPending(key, id string, payload []byte) {
	g.pendMu.Lock()
	g.pending[key] = append(g.pending[key], pendEntry{id: id, payload: payload})
	g.pendMu.Unlock()
}

// dropPending unwinds the most recent pending entry with the given ID (the
// journal-append-failure path).
func (g *ingester) dropPending(key, id string) {
	g.pendMu.Lock()
	q := g.pending[key]
	for i := len(q) - 1; i >= 0; i-- {
		if q[i].id == id {
			g.pending[key] = append(q[:i], q[i+1:]...)
			break
		}
	}
	g.pendMu.Unlock()
}

// removePending retires every pending entry whose ID belongs to a completed
// window. Identity-based (not positional) so handler-append vs worker-drain
// interleavings can never retire the wrong batch.
func (g *ingester) removePending(key string, ids map[string]struct{}) {
	if len(ids) == 0 {
		return
	}
	g.pendMu.Lock()
	q := g.pending[key]
	kept := make([]pendEntry, 0, len(q))
	for _, p := range q {
		if _, done := ids[p.id]; !done {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		delete(g.pending, key)
	} else {
		g.pending[key] = kept
	}
	g.pendMu.Unlock()
}

// liveJournal is the store's ingest carry source at checkpoint rotation:
// the frames of every journaled batch not yet folded into a published
// entry, which must survive into the rotated log for crash replay.
func (g *ingester) liveJournal() [][]byte {
	g.pendMu.Lock()
	defer g.pendMu.Unlock()
	var out [][]byte
	for _, q := range g.pending {
		for _, p := range q {
			out = append(out, p.payload)
		}
	}
	return out
}

// replay re-feeds journaled batches recovered from the WAL, in log order,
// rebuilding the accumulator state that was live at the crash. Runs from New
// before the worker goroutine starts, so it owns all worker state.
func (g *ingester) replay(payloads [][]byte) {
	for _, p := range payloads {
		var rec ingestRecord
		if err := json.Unmarshal(p, &rec); err != nil ||
			rec.Table == "" || rec.Column == "" || len(rec.Pages) == 0 {
			g.journalDrops.Inc()
			continue
		}
		b := ingestBatch{
			key:   rec.Table + "." + rec.Column,
			id:    rec.ID,
			meta:  core.Meta{Table: rec.Table, Column: rec.Column, T: rec.T, N: rec.N, I: rec.I},
			pages: rec.Pages,
		}
		g.addPending(b.key, b.id, p)
		g.journalReplays.Inc()
		g.process(b)
	}
}

// run is the worker loop: drain batches until stopped, then drain the
// residue and exit.
func (g *ingester) run() {
	defer close(g.done)
	for {
		select {
		case b := <-g.ch:
			g.process(b)
		case <-g.stop:
			for {
				select {
				case b := <-g.ch:
					g.process(b)
				default:
					return
				}
			}
		}
	}
}

// process feeds one batch into its index's accumulator and evaluates the
// curve when a full scan's worth of references has been accumulated.
func (g *ingester) process(b ingestBatch) {
	st := g.states[b.key]
	if st == nil {
		st = &ingestState{accum: lrusim.NewAccum()}
		g.states[b.key] = st
	}
	st.meta = b.meta
	if b.id != "" {
		if st.seen == nil {
			st.seen = make(map[string]struct{})
		}
		if _, dup := st.seen[b.id]; dup {
			// At-least-once redelivery (client retry, crash replay of a
			// carried frame): the window already holds this batch.
			g.journalDups.Inc()
			return
		}
		st.seen[b.id] = struct{}{}
	}
	if st.accum.Total()+int64(len(b.pages)) > lrusim.MaxAccumRefs {
		// A stream this long can only come from wrong metadata (N never
		// reached); start the accumulator over rather than panic.
		g.s.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "ingest accumulator overflow, resetting",
			slog.String("index", b.key), slog.Int64("accumulated", st.accum.Total()))
		g.finishWindow(b.key, st)
		if b.id != "" {
			// This batch opens the fresh window; keep its ID deduplicating.
			st.seen = map[string]struct{}{b.id: {}}
		}
	}
	st.accum.Feed(b.pages)
	if st.accum.Total() >= st.meta.N {
		g.evaluate(b.key, st)
		g.finishWindow(b.key, st)
	}
}

// finishWindow resets the accumulator and retires the window's journal
// bookkeeping: batches folded into a completed (evaluated or abandoned)
// window need no replay, so their frames stop being carried at checkpoint
// rotation and their IDs stop deduplicating.
func (g *ingester) finishWindow(key string, st *ingestState) {
	st.accum.Reset()
	if g.journal {
		g.removePending(key, st.seen)
	}
	st.seen = nil
}

// evaluate compares the accumulated curve against the published entry and
// republishes when the divergence crosses the drift threshold.
func (g *ingester) evaluate(key string, st *ingestState) {
	g.scans.Inc()
	curve := st.accum.Curve()
	snap := g.s.store.Snapshot()
	pub, ok := snap.Lookup(key)
	// No published entry: any live curve is fully divergent.
	drift, meanRel := 1.0, 1.0
	var points []accPoint
	if ok {
		drift, meanRel, points = curveAccuracy(curve, pub.T, pub.Curve.Eval)
	}
	g.driftDist.Observe(drift)
	// Accuracy is recorded on every measurement, not just republishes: the
	// telemetry must show a model staying good, not only one going bad.
	g.recordAccuracy(key, snap.Generation(), st.accum.Total(), drift, meanRel, points)
	if drift < g.drift {
		return
	}
	entry, err := core.LRUFitFromCurve(curve, st.meta, core.Options{})
	if err == nil && pub != nil && len(pub.KeyHistogram) > 0 {
		// The refit models page fetches only; the key-distribution histogram
		// carries over from the published entry.
		entry.KeyHistogram = append(entry.KeyHistogram[:0], pub.KeyHistogram...)
	}
	var gen uint64
	if err == nil {
		gen, err = g.s.store.Put(entry)
	}
	if err != nil {
		g.republishFailures.Inc()
		g.s.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "ingest republish failed",
			slog.String("index", key), slog.Float64("drift", drift), slog.String("error", err.Error()))
		return
	}
	g.republishes.Inc()
	g.noteRepublish(key, gen)
	if c := g.s.cache; c != nil {
		c.dropOtherGenerations(gen)
	}
	g.s.obs.syncIndexes(g.s.store.Snapshot())
	if g.s.cluster != nil {
		// Explicit fan-out, not just an epoch bump: peers tracking a
		// mutation epoch for this key skip it during snapshot merges, so
		// only replication (plus hinted handoff) delivers the refit
		// everywhere.
		g.s.replicateRepublish(entry)
	}
	g.s.obs.log.LogAttrs(context.Background(), slog.LevelInfo, "ingest republished catalog entry",
		slog.String("index", key), slog.Float64("drift", drift), slog.Uint64("generation", gen))
}

// curveDrift is the maximum relative divergence between the live curve and
// the published fetch polyline, sampled on the published entry's own
// modeling grid: max over B of |F_live(B) − F_pub(B)| / max(F_pub(B), 1).
func curveDrift(live *lrusim.FetchCurve, pubT int64, pubEval func(float64) float64) float64 {
	maxRel, _, _ := curveAccuracy(live, pubT, pubEval)
	return maxRel
}
