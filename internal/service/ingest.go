package service

// Streaming trace ingestion: POST /v1/ingest accepts batched page-reference
// traces from live index scans and keeps the catalog's fetch curves fresh
// without an offline LRU-Fit run.
//
// The route is deliberately asynchronous. The handler validates the batch,
// resolves the index metadata (from the payload, else the current catalog
// entry), and enqueues it on a bounded queue; a full queue sheds with 429 +
// Retry-After, so trace producers get backpressure instead of adding latency
// to the serving path. A single worker goroutine drains the queue and feeds
// each batch into a per-index lrusim.Accum — the incremental Mattson
// simulation, bit-identical to analyzing the concatenated trace in one shot.
//
// When an index's accumulated stream reaches a full scan (N references), the
// worker compares the live fetch curve against the published catalog entry
// on the entry's own modeling grid. If the maximum relative divergence
// exceeds Config.DriftThreshold, it refits the curve (core.LRUFitFromCurve —
// LRU-Fit minus the already-done simulation pass), republishes the entry as
// a new catalog generation through the normal store path (WAL-durable when
// the store is WAL-backed), invalidates stale memo-cache generations, and in
// cluster mode bumps the gossip epoch so anti-entropy streams the refreshed
// catalog to peers. Because the accumulator state is exactly the offline
// simulation's state, a republished curve is bit-exact with running
// core.LRUFit over the same trace offline.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"epfis/internal/core"
	"epfis/internal/lrusim"
	"epfis/internal/obs"
	"epfis/internal/storage"
)

// Ingestion defaults for Config zero values.
const (
	DefaultIngestQueue    = 64
	DefaultDriftThreshold = 0.05

	// maxIngestBatchRefs bounds one batch; larger traces must be split
	// (the accumulator makes splits free).
	maxIngestBatchRefs = 1 << 20
)

// IngestRequest is one POST /v1/ingest batch: a slice of the data-page
// reference trace of an index scan, in reference order. T/N/I optionally
// carry the index metadata; when omitted the current catalog entry's
// metadata is used (and the request fails with 400 if the index is unknown).
type IngestRequest struct {
	Table  string           `json:"table"`
	Column string           `json:"column"`
	Pages  []storage.PageID `json:"pages"`
	T      int64            `json:"t,omitempty"`
	N      int64            `json:"n,omitempty"`
	I      int64            `json:"i,omitempty"`
}

// IngestResponse acknowledges an accepted batch.
type IngestResponse struct {
	Key    string `json:"key"`
	Queued int    `json:"queued"` // references accepted
	Depth  int    `json:"depth"`  // queue depth after enqueue
}

// ingestBatch is the queued unit of work.
type ingestBatch struct {
	key   string
	meta  core.Meta
	pages lrusim.Trace
}

// ingestState is one index's accumulator between batches. Owned by the
// worker goroutine; never touched by handlers.
type ingestState struct {
	accum *lrusim.Accum
	meta  core.Meta
}

// ingester is the ingestion subsystem: the bounded queue, the worker, and
// its instruments.
type ingester struct {
	s      *Server
	ch     chan ingestBatch
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
	drift  float64
	states map[string]*ingestState

	batchRefs         *obs.Histogram
	driftDist         *obs.Histogram
	batches           *obs.Counter
	refs              *obs.Counter
	sheds             *obs.Counter
	scans             *obs.Counter
	republishes       *obs.Counter
	republishFailures *obs.Counter
}

// newIngester wires the queue, instruments, and worker. Called from New
// after s.obs exists; a nil return means ingestion is disabled.
func newIngester(s *Server, cfg Config) *ingester {
	if cfg.IngestQueue < 0 {
		return nil
	}
	depth := cfg.IngestQueue
	if depth == 0 {
		depth = DefaultIngestQueue
	}
	g := &ingester{
		s:      s,
		ch:     make(chan ingestBatch, depth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		drift:  cfg.DriftThreshold,
		states: make(map[string]*ingestState),
	}
	if g.drift == 0 {
		g.drift = DefaultDriftThreshold
	}
	reg := s.obs.reg
	g.batchRefs = reg.Histogram("epfis_ingest_batch_refs",
		"Page references per accepted ingest batch.", obs.Pow2Buckets(0, 20))
	g.driftDist = reg.Histogram("epfis_ingest_drift",
		"Relative fetch-curve divergence measured at each completed scan.",
		[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5})
	g.batches = reg.Counter("epfis_ingest_batches_total", "Ingest batches accepted.")
	g.refs = reg.Counter("epfis_ingest_refs_total", "Page references ingested.")
	g.sheds = reg.Counter("epfis_ingest_shed_total",
		"Ingest batches shed with 429 because the queue was full.")
	g.scans = reg.Counter("epfis_ingest_scans_total",
		"Full scans completed by accumulated ingest batches.")
	g.republishes = reg.Counter("epfis_ingest_republish_total",
		"Catalog generations republished because live curves drifted past the threshold.")
	g.republishFailures = reg.Counter("epfis_ingest_republish_failures_total",
		"Drifted curves that failed to refit or persist.")
	reg.GaugeFunc("epfis_ingest_queue_depth", "Ingest batches waiting for the worker.",
		func() float64 { return float64(len(g.ch)) })
	go g.run()
	return g
}

// close stops the worker after it drains everything already queued.
func (g *ingester) close() {
	g.once.Do(func() { close(g.stop) })
	<-g.done
}

// Close releases background resources (the ingest worker). The HTTP handler
// keeps answering — queued batches are drained first, later ones sit in the
// queue unprocessed — so Close is safe to call while a server drains.
func (s *Server) Close() {
	if s.ingest != nil {
		s.ingest.close()
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	g := s.ingest
	var req IngestRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Table == "" || req.Column == "" {
		writeError(w, http.StatusBadRequest, errors.New("table and column are required"))
		return
	}
	if len(req.Pages) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("pages must carry at least one reference"))
		return
	}
	if len(req.Pages) > maxIngestBatchRefs {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch carries %d references, max %d; split the trace", len(req.Pages), maxIngestBatchRefs))
		return
	}
	meta := core.Meta{Table: req.Table, Column: req.Column, T: req.T, N: req.N, I: req.I}
	if meta.T <= 0 || meta.N <= 0 || meta.I <= 0 {
		e, err := s.store.Snapshot().Get(req.Table, req.Column)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf(
				"no catalog entry for %s.%s: the batch must carry t, n, and i", req.Table, req.Column))
			return
		}
		meta.T, meta.N, meta.I = e.T, e.N, e.I
	}
	if meta.I > meta.N {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("i = %d exceeds n = %d", meta.I, meta.N))
		return
	}
	batch := ingestBatch{key: req.Table + "." + req.Column, meta: meta, pages: req.Pages}
	select {
	case g.ch <- batch:
	default:
		g.sheds.Inc()
		writeRetryable(w, http.StatusTooManyRequests,
			errors.New("ingest queue full, retry later"), time.Second)
		return
	}
	g.batches.Inc()
	g.refs.Add(uint64(len(req.Pages)))
	g.batchRefs.Observe(float64(len(req.Pages)))
	writeJSON(w, http.StatusAccepted, IngestResponse{
		Key: batch.key, Queued: len(req.Pages), Depth: len(g.ch)})
}

// run is the worker loop: drain batches until stopped, then drain the
// residue and exit.
func (g *ingester) run() {
	defer close(g.done)
	for {
		select {
		case b := <-g.ch:
			g.process(b)
		case <-g.stop:
			for {
				select {
				case b := <-g.ch:
					g.process(b)
				default:
					return
				}
			}
		}
	}
}

// process feeds one batch into its index's accumulator and evaluates the
// curve when a full scan's worth of references has been accumulated.
func (g *ingester) process(b ingestBatch) {
	st := g.states[b.key]
	if st == nil {
		st = &ingestState{accum: lrusim.NewAccum()}
		g.states[b.key] = st
	}
	st.meta = b.meta
	if st.accum.Total()+int64(len(b.pages)) > lrusim.MaxAccumRefs {
		// A stream this long can only come from wrong metadata (N never
		// reached); start the accumulator over rather than panic.
		g.s.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "ingest accumulator overflow, resetting",
			slog.String("index", b.key), slog.Int64("accumulated", st.accum.Total()))
		st.accum.Reset()
	}
	st.accum.Feed(b.pages)
	if st.accum.Total() >= st.meta.N {
		g.evaluate(b.key, st)
		st.accum.Reset()
	}
}

// evaluate compares the accumulated curve against the published entry and
// republishes when the divergence crosses the drift threshold.
func (g *ingester) evaluate(key string, st *ingestState) {
	g.scans.Inc()
	curve := st.accum.Curve()
	snap := g.s.store.Snapshot()
	pub, ok := snap.Lookup(key)
	drift := 1.0 // no published entry: any live curve is fully divergent
	if ok {
		drift = curveDrift(curve, pub.T, pub.Curve.Eval)
	}
	g.driftDist.Observe(drift)
	if drift < g.drift {
		return
	}
	entry, err := core.LRUFitFromCurve(curve, st.meta, core.Options{})
	if err == nil && pub != nil && len(pub.KeyHistogram) > 0 {
		// The refit models page fetches only; the key-distribution histogram
		// carries over from the published entry.
		entry.KeyHistogram = append(entry.KeyHistogram[:0], pub.KeyHistogram...)
	}
	var gen uint64
	if err == nil {
		gen, err = g.s.store.Put(entry)
	}
	if err != nil {
		g.republishFailures.Inc()
		g.s.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "ingest republish failed",
			slog.String("index", key), slog.Float64("drift", drift), slog.String("error", err.Error()))
		return
	}
	g.republishes.Inc()
	if c := g.s.cache; c != nil {
		c.dropOtherGenerations(gen)
	}
	g.s.obs.syncIndexes(g.s.store.Snapshot())
	if g.s.cluster != nil {
		// Same contract as a reload: the mutation is local, the epoch bump
		// makes gossip anti-entropy stream the new generation to peers.
		g.s.cluster.BumpEpoch()
	}
	g.s.obs.log.LogAttrs(context.Background(), slog.LevelInfo, "ingest republished catalog entry",
		slog.String("index", key), slog.Float64("drift", drift), slog.Uint64("generation", gen))
}

// curveDrift is the maximum relative divergence between the live curve and
// the published fetch polyline, sampled on the published entry's own
// modeling grid: max over B of |F_live(B) − F_pub(B)| / max(F_pub(B), 1).
func curveDrift(live *lrusim.FetchCurve, pubT int64, pubEval func(float64) float64) float64 {
	bmin, bmax := core.ModelingRange(pubT, core.Options{})
	grid := core.ModelingGridStep(bmin, bmax, 0, 0)
	maxRel := 0.0
	for _, b := range grid {
		pubF := pubEval(float64(b))
		liveF := float64(live.Fetches(b))
		den := pubF
		if den < 1 {
			den = 1
		}
		rel := (liveF - pubF) / den
		if rel < 0 {
			rel = -rel
		}
		if rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}
