// JSON codec for the two estimate hot paths. GET /v1/estimate and
// POST /v1/estimate/batch are the routes an optimizer hammers at plan-search
// QPS, so they do not go through encoding/json (whose reflection walk and
// per-request garbage dominated the serving profile). Instead:
//
//   - responses are appended into pooled []byte buffers with strconv
//     (appendEstimateResponse / the batch assembly in service.go), emitting
//     byte-for-byte the same JSON encoding/json produced — same field order,
//     same float formatting (the ES6 shortest form with json's exponent
//     cutoffs), same HTML-escaped strings, same trailing newline — proven by
//     the equivalence and golden tests in codec_test.go;
//
//   - batch request bodies are parsed by a minimal scanner specialized to the
//     BatchRequest shape (decodeBatchBody), reading into pooled scratch
//     structures: item fields become substrings of one body string, so a
//     64-item batch costs one body-string allocation instead of hundreds of
//     reflection-driven ones. Unknown fields are rejected exactly like the
//     old DisallowUnknownFields decoder;
//
//   - single-estimate query strings are parsed straight off URL.RawQuery
//     (parseEstimateQuery) without materializing url.Values: zero
//     allocations, plus the hardening the old parser lacked — duplicated
//     parameters are rejected, and NaN/±Inf sigma or s values are refused
//     with the core package's typed sentinels before they reach Est-IO.
//
// Cold routes (catalog management, health, metrics, error bodies) still use
// encoding/json; correctness there matters and nanoseconds do not.
package service

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"epfis/internal/core"
)

// ErrBatchTooLarge is the typed sentinel for a batch body carrying more
// requests than Config.MaxBatch allows (or exceeding the byte cap). The
// batch route maps it to 413 Request Entity Too Large, so a forwarding node
// sheds an oversized request instead of being wedged decoding it.
var ErrBatchTooLarge = errors.New("batch exceeds limit")

// estimateInput is the decoded form of one estimate request on the serving
// hot path. Unlike the wire-facing EstimateRequest it stores the sargable
// selectivity by value (absent = 1, exactly the old S-pointer semantics
// resolved at parse time), so decoding performs no pointer allocation.
type estimateInput struct {
	table  string
	column string
	b      int64
	sigma  float64
	s      float64
	detail bool
}

// estimateResult is the computed half of a response.
type estimateResult struct {
	est    core.Estimate
	gen    uint64
	cached bool
}

// --- pooled buffers ---------------------------------------------------------

// maxPooledBuf bounds what goes back into the pools, so one huge batch does
// not pin megabytes of scratch forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// batchScratch aggregates every reusable piece of batch handling: the body
// read buffer, the decoded items, and the two response assembly buffers.
type batchScratch struct {
	body  []byte
	reqs  []estimateInput
	items []byte
	out   []byte
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func getBatchScratch() *batchScratch { return batchPool.Get().(*batchScratch) }

func putBatchScratch(s *batchScratch) {
	if cap(s.body) > maxPooledBuf || cap(s.items) > maxPooledBuf || cap(s.out) > maxPooledBuf {
		return
	}
	s.body = s.body[:0]
	s.reqs = s.reqs[:0]
	s.items = s.items[:0]
	s.out = s.out[:0]
	batchPool.Put(s)
}

// readBody drains the request body (already wrapped by MaxBytesReader) into
// the scratch buffer, reusing its capacity across requests.
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// --- response encoding ------------------------------------------------------

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, replicating
// encoding/json's encoder with HTML escaping enabled (the writeJSON default):
// control characters, quotes, backslashes, <, >, &, U+2028/U+2029, and
// invalid UTF-8 are escaped identically.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// appendJSONFloat appends f with encoding/json's exact formatting: shortest
// round-trip form, 'f' notation except below 1e-6 / at or above 1e21, and
// the e-09 → e-9 exponent cleanup.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

func appendJSONBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// appendEstimateDetail appends the core.Estimate document (the detail=1
// payload), matching encoding/json's field order for the untagged struct.
func appendEstimateDetail(dst []byte, est *core.Estimate) []byte {
	dst = append(dst, `{"F":`...)
	dst = appendJSONFloat(dst, est.F)
	dst = append(dst, `,"PFB":`...)
	dst = appendJSONFloat(dst, est.PFB)
	dst = append(dst, `,"Base":`...)
	dst = appendJSONFloat(dst, est.Base)
	dst = append(dst, `,"Phi":`...)
	dst = appendJSONFloat(dst, est.Phi)
	dst = append(dst, `,"Nu":`...)
	dst = strconv.AppendInt(dst, int64(est.Nu), 10)
	dst = append(dst, `,"Correction":`...)
	dst = appendJSONFloat(dst, est.Correction)
	dst = append(dst, `,"SargableFactor":`...)
	dst = appendJSONFloat(dst, est.SargableFactor)
	return append(dst, '}')
}

// appendEstimateResponse appends one EstimateResponse document — the exact
// bytes encoding/json produces for the struct, without the struct.
func appendEstimateResponse(dst []byte, in *estimateInput, res *estimateResult) []byte {
	dst = append(dst, `{"table":`...)
	dst = appendJSONString(dst, in.table)
	dst = append(dst, `,"column":`...)
	dst = appendJSONString(dst, in.column)
	dst = append(dst, `,"b":`...)
	dst = strconv.AppendInt(dst, in.b, 10)
	dst = append(dst, `,"sigma":`...)
	dst = appendJSONFloat(dst, in.sigma)
	dst = append(dst, `,"s":`...)
	dst = appendJSONFloat(dst, in.s)
	dst = append(dst, `,"fetches":`...)
	dst = appendJSONFloat(dst, res.est.F)
	dst = append(dst, `,"generation":`...)
	dst = strconv.AppendUint(dst, res.gen, 10)
	dst = append(dst, `,"cached":`...)
	dst = appendJSONBool(dst, res.cached)
	if in.detail {
		dst = append(dst, `,"detail":`...)
		dst = appendEstimateDetail(dst, &res.est)
	}
	return append(dst, '}')
}

// appendBatchItemError appends one failed BatchItem document.
func appendBatchItemError(dst []byte, msg string, status int) []byte {
	dst = append(dst, `{"error":`...)
	dst = appendJSONString(dst, msg)
	dst = append(dst, `,"status":`...)
	dst = strconv.AppendInt(dst, int64(status), 10)
	return append(dst, '}')
}

// writeResponseBytes mirrors writeJSON's header sequence with a
// pre-assembled body (the buffer already carries the trailing newline the
// old json.Encoder appended).
func writeResponseBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// --- query-string parsing ---------------------------------------------------

var (
	errMissingTableColumn = errors.New("query parameters table and column are required")
)

// needsUnescape reports whether a query component contains percent escapes
// or '+' (space) and therefore cannot be used as a raw substring.
func needsUnescape(s string) bool {
	return strings.IndexByte(s, '%') >= 0 || strings.IndexByte(s, '+') >= 0
}

// parseEstimateQuery decodes GET /v1/estimate parameters straight off
// URL.RawQuery into out. The common case — unescaped parameters — allocates
// nothing: values are substrings of the raw query. Semantics match the old
// url.Values-based parser (pairs with semicolons or broken escapes are
// dropped, unknown parameters are ignored), with two hardenings on top:
// a parameter supplied more than once is a 400, and NaN/±Inf sigma or s are
// rejected here with the core typed sentinels instead of flowing onward.
func parseEstimateQuery(r *http.Request, out *estimateInput) error {
	*out = estimateInput{s: 1}
	const (
		seenTable = 1 << iota
		seenColumn
		seenB
		seenSigma
		seenS
		seenDetail
	)
	var seen uint8
	var rawB, rawSigma, rawS, rawDetail string

	query := r.URL.RawQuery
	for len(query) > 0 {
		pair := query
		if i := strings.IndexByte(query, '&'); i >= 0 {
			pair, query = query[:i], query[i+1:]
		} else {
			query = ""
		}
		if pair == "" || strings.IndexByte(pair, ';') >= 0 {
			continue // url.Values drops semicolon pairs; so do we
		}
		key, val := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			key, val = pair[:i], pair[i+1:]
		}
		if needsUnescape(key) {
			k, err := unescapeQuery(key)
			if err != nil {
				continue // url.Values drops undecodable pairs
			}
			key = k
		}
		var bit uint8
		switch key {
		case "table":
			bit = seenTable
		case "column":
			bit = seenColumn
		case "b":
			bit = seenB
		case "sigma":
			bit = seenSigma
		case "s":
			bit = seenS
		case "detail":
			bit = seenDetail
		default:
			continue // unknown parameters stay ignored
		}
		if seen&bit != 0 {
			return fmt.Errorf("query parameter %s supplied more than once", key)
		}
		seen |= bit
		if needsUnescape(val) {
			v, err := unescapeQuery(val)
			if err != nil {
				seen &^= bit
				continue
			}
			val = v
		}
		switch bit {
		case seenTable:
			out.table = val
		case seenColumn:
			out.column = val
		case seenB:
			rawB = val
		case seenSigma:
			rawSigma = val
		case seenS:
			rawS = val
		case seenDetail:
			rawDetail = val
		}
	}

	// Fixed validation order, matching the old parser: identity, b, sigma,
	// s, detail.
	if out.table == "" || out.column == "" {
		return errMissingTableColumn
	}
	var err error
	if out.b, err = strconv.ParseInt(rawB, 10, 64); err != nil {
		return fmt.Errorf("query parameter b: %w", err)
	}
	if out.sigma, err = strconv.ParseFloat(rawSigma, 64); err != nil {
		return fmt.Errorf("query parameter sigma: %w", err)
	}
	if math.IsNaN(out.sigma) || math.IsInf(out.sigma, 0) {
		return core.ErrBadSigma
	}
	if rawS != "" {
		if out.s, err = strconv.ParseFloat(rawS, 64); err != nil {
			return fmt.Errorf("query parameter s: %w", err)
		}
		if math.IsNaN(out.s) || math.IsInf(out.s, 0) {
			return core.ErrBadSarg
		}
	}
	if rawDetail != "" {
		if out.detail, err = strconv.ParseBool(rawDetail); err != nil {
			return fmt.Errorf("query parameter detail: %w", err)
		}
	}
	return nil
}

// unescapeQuery is url.QueryUnescape for the rare escaped component.
func unescapeQuery(s string) (string, error) {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '+':
			b.WriteByte(' ')
		case '%':
			if i+2 >= len(s) {
				return "", errors.New("invalid URL escape")
			}
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if !ok1 || !ok2 {
				return "", errors.New("invalid URL escape")
			}
			b.WriteByte(hi<<4 | lo)
			i += 2
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// --- batch body decoding ----------------------------------------------------

// jsonScanner is a minimal JSON reader over one string. It understands
// exactly the BatchRequest grammar; strings without escapes and all number
// tokens come back as substrings of the input, so decoding a batch costs one
// string conversion for the whole body rather than per-field allocations.
type jsonScanner struct {
	s string
	i int
}

func (sc *jsonScanner) skipSpace() {
	for sc.i < len(sc.s) {
		switch sc.s[sc.i] {
		case ' ', '\t', '\n', '\r':
			sc.i++
		default:
			return
		}
	}
}

func (sc *jsonScanner) expect(c byte) error {
	sc.skipSpace()
	if sc.i >= len(sc.s) || sc.s[sc.i] != c {
		return fmt.Errorf("invalid batch JSON: expected %q at offset %d", c, sc.i)
	}
	sc.i++
	return nil
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (sc *jsonScanner) peek() byte {
	sc.skipSpace()
	if sc.i >= len(sc.s) {
		return 0
	}
	return sc.s[sc.i]
}

// literal consumes the given keyword (true/false/null).
func (sc *jsonScanner) literal(word string) error {
	sc.skipSpace()
	if !strings.HasPrefix(sc.s[sc.i:], word) {
		return fmt.Errorf("invalid batch JSON: expected %q at offset %d", word, sc.i)
	}
	sc.i += len(word)
	return nil
}

// str reads a JSON string. The no-escape fast path returns a substring; the
// escape path decodes into a fresh string (rare for identifier-like values).
func (sc *jsonScanner) str() (string, error) {
	if err := sc.expect('"'); err != nil {
		return "", err
	}
	start := sc.i
	for sc.i < len(sc.s) {
		switch sc.s[sc.i] {
		case '"':
			out := sc.s[start:sc.i]
			sc.i++
			return out, nil
		case '\\':
			return sc.strSlow(start)
		default:
			sc.i++
		}
	}
	return "", errors.New("invalid batch JSON: unterminated string")
}

// strSlow finishes reading a string that contains at least one escape.
func (sc *jsonScanner) strSlow(start int) (string, error) {
	var b strings.Builder
	b.WriteString(sc.s[start:sc.i])
	for sc.i < len(sc.s) {
		c := sc.s[sc.i]
		switch {
		case c == '"':
			sc.i++
			return b.String(), nil
		case c == '\\':
			sc.i++
			if sc.i >= len(sc.s) {
				return "", errors.New("invalid batch JSON: truncated escape")
			}
			switch e := sc.s[sc.i]; e {
			case '"', '\\', '/':
				b.WriteByte(e)
				sc.i++
			case 'b':
				b.WriteByte('\b')
				sc.i++
			case 'f':
				b.WriteByte('\f')
				sc.i++
			case 'n':
				b.WriteByte('\n')
				sc.i++
			case 'r':
				b.WriteByte('\r')
				sc.i++
			case 't':
				b.WriteByte('\t')
				sc.i++
			case 'u':
				r, err := sc.unicodeEscape()
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			default:
				return "", fmt.Errorf("invalid batch JSON: bad escape \\%c", e)
			}
		case c < 0x20:
			return "", errors.New("invalid batch JSON: control character in string")
		default:
			r, size := utf8.DecodeRuneInString(sc.s[sc.i:])
			b.WriteRune(r) // invalid UTF-8 becomes U+FFFD, as encoding/json does
			sc.i += size
		}
	}
	return "", errors.New("invalid batch JSON: unterminated string")
}

// unicodeEscape reads the XXXX of a \uXXXX escape (the backslash and 'u' are
// already consumed), combining surrogate pairs like encoding/json.
func (sc *jsonScanner) unicodeEscape() (rune, error) {
	sc.i++ // consume 'u'
	r, err := sc.hex4()
	if err != nil {
		return 0, err
	}
	if utf16.IsSurrogate(r) {
		if strings.HasPrefix(sc.s[sc.i:], `\u`) {
			save := sc.i
			sc.i += 2
			r2, err := sc.hex4()
			if err != nil {
				return 0, err
			}
			if combined := utf16.DecodeRune(r, r2); combined != utf8.RuneError {
				return combined, nil
			}
			sc.i = save // unpaired: emit replacement, reprocess the second escape
		}
		return utf8.RuneError, nil
	}
	return r, nil
}

func (sc *jsonScanner) hex4() (rune, error) {
	if sc.i+4 > len(sc.s) {
		return 0, errors.New("invalid batch JSON: truncated \\u escape")
	}
	var r rune
	for k := 0; k < 4; k++ {
		v, ok := unhex(sc.s[sc.i+k])
		if !ok {
			return 0, errors.New("invalid batch JSON: bad \\u escape")
		}
		r = r<<4 | rune(v)
	}
	sc.i += 4
	return r, nil
}

// numberToken scans one JSON number, returning it as a substring for
// strconv; ParseInt/ParseFloat validate the digits exactly as the reflection
// decoder did.
func (sc *jsonScanner) numberToken() (string, error) {
	sc.skipSpace()
	start := sc.i
	if sc.i < len(sc.s) && sc.s[sc.i] == '-' {
		sc.i++
	}
	if sc.i >= len(sc.s) || sc.s[sc.i] < '0' || sc.s[sc.i] > '9' {
		return "", fmt.Errorf("invalid batch JSON: expected number at offset %d", start)
	}
	for sc.i < len(sc.s) {
		switch c := sc.s[sc.i]; {
		case c >= '0' && c <= '9', c == '.', c == 'e', c == 'E', c == '+', c == '-':
			sc.i++
		default:
			return sc.s[start:sc.i], nil
		}
	}
	return sc.s[start:], nil
}

// decodeBatchBody parses {"requests":[...]} into scratch.reqs, enforcing
// maxBatch while scanning so an oversized batch fails before its tail is
// parsed. It accepts what the old DisallowUnknownFields json.Decoder
// accepted: unknown fields are errors, null field values are no-ops
// (a null s keeps the "no sargable predicates" default), duplicate fields
// last-win, and trailing data after the document is ignored (json.Decoder
// reads exactly one value).
func decodeBatchBody(body string, maxBatch int, scratch *batchScratch) error {
	sc := jsonScanner{s: body}
	if sc.peek() == 0 {
		return errors.New("decode request body: empty body")
	}
	if err := sc.expect('{'); err != nil {
		return fmt.Errorf("decode request body: %w", err)
	}
	if sc.peek() == '}' {
		sc.i++
		return nil
	}
	for {
		key, err := sc.str()
		if err != nil {
			return fmt.Errorf("decode request body: %w", err)
		}
		if err := sc.expect(':'); err != nil {
			return fmt.Errorf("decode request body: %w", err)
		}
		switch key {
		case "requests":
			if err := decodeRequestsArray(&sc, maxBatch, scratch); err != nil {
				return err
			}
		default:
			return fmt.Errorf("decode request body: json: unknown field %q", key)
		}
		switch sc.peek() {
		case ',':
			sc.i++
		case '}':
			sc.i++
			return nil
		default:
			return fmt.Errorf("decode request body: invalid batch JSON at offset %d", sc.i)
		}
	}
}

func decodeRequestsArray(sc *jsonScanner, maxBatch int, scratch *batchScratch) error {
	if sc.peek() == 'n' { // "requests": null
		if err := sc.literal("null"); err != nil {
			return fmt.Errorf("decode request body: %w", err)
		}
		scratch.reqs = scratch.reqs[:0]
		return nil
	}
	if err := sc.expect('['); err != nil {
		return fmt.Errorf("decode request body: %w", err)
	}
	scratch.reqs = scratch.reqs[:0]
	if sc.peek() == ']' {
		sc.i++
		return nil
	}
	for {
		if maxBatch > 0 && len(scratch.reqs) >= maxBatch {
			return fmt.Errorf("%w %d", ErrBatchTooLarge, maxBatch)
		}
		scratch.reqs = append(scratch.reqs, estimateInput{s: 1})
		if err := decodeBatchItem(sc, &scratch.reqs[len(scratch.reqs)-1]); err != nil {
			return err
		}
		switch sc.peek() {
		case ',':
			sc.i++
		case ']':
			sc.i++
			return nil
		default:
			return fmt.Errorf("decode request body: invalid batch JSON at offset %d", sc.i)
		}
	}
}

func decodeBatchItem(sc *jsonScanner, out *estimateInput) error {
	if err := sc.expect('{'); err != nil {
		return fmt.Errorf("decode request body: %w", err)
	}
	if sc.peek() == '}' {
		sc.i++
		return nil
	}
	for {
		key, err := sc.str()
		if err != nil {
			return fmt.Errorf("decode request body: %w", err)
		}
		if err := sc.expect(':'); err != nil {
			return fmt.Errorf("decode request body: %w", err)
		}
		null := sc.peek() == 'n'
		if null {
			if err := sc.literal("null"); err != nil {
				return fmt.Errorf("decode request body: %w", err)
			}
		}
		switch key {
		case "table", "column":
			if !null {
				v, err := sc.str()
				if err != nil {
					return fmt.Errorf("decode request body: field %s: %w", key, err)
				}
				if key == "table" {
					out.table = v
				} else {
					out.column = v
				}
			}
		case "b":
			if !null {
				tok, err := sc.numberToken()
				if err != nil {
					return fmt.Errorf("decode request body: field b: %w", err)
				}
				if out.b, err = strconv.ParseInt(tok, 10, 64); err != nil {
					return fmt.Errorf("decode request body: cannot decode number %q into field b", tok)
				}
			}
		case "sigma", "s":
			if !null {
				tok, err := sc.numberToken()
				if err != nil {
					return fmt.Errorf("decode request body: field %s: %w", key, err)
				}
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return fmt.Errorf("decode request body: cannot decode number %q into field %s", tok, key)
				}
				if key == "sigma" {
					out.sigma = v
				} else {
					out.s = v
				}
			}
		case "detail":
			if !null {
				switch sc.peek() {
				case 't':
					if err := sc.literal("true"); err != nil {
						return fmt.Errorf("decode request body: %w", err)
					}
					out.detail = true
				case 'f':
					if err := sc.literal("false"); err != nil {
						return fmt.Errorf("decode request body: %w", err)
					}
					out.detail = false
				default:
					return fmt.Errorf("decode request body: field detail: expected bool at offset %d", sc.i)
				}
			}
		default:
			return fmt.Errorf("decode request body: json: unknown field %q", key)
		}
		switch sc.peek() {
		case ',':
			sc.i++
		case '}':
			sc.i++
			return nil
		default:
			return fmt.Errorf("decode request body: invalid batch JSON at offset %d", sc.i)
		}
	}
}
