package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/cluster"
	"epfis/internal/core"
	"epfis/internal/resilience"
	"epfis/internal/stats"
)

// cnode is one in-process cluster member: its store, agent, service, and
// live listener.
type cnode struct {
	id    string
	url   string
	store *catalog.Store
	node  *cluster.Node
	srv   *Server
	ts    *httptest.Server
}

// startClusterNode brings up one service node bound to a pre-opened listener
// (the URL must be known before cluster.NewNode runs).
func startClusterNode(t testing.TB, id string, ln net.Listener, seeds []string, replicas int, store *catalog.Store) *cnode {
	t.Helper()
	url := "http://" + ln.Addr().String()
	node, err := cluster.NewNode(cluster.Config{
		SelfID:       id,
		SelfURL:      url,
		Seeds:        seeds,
		Replicas:     replicas,
		Heartbeat:    50 * time.Millisecond,
		SuspectAfter: 300 * time.Millisecond,
		DeadAfter:    2 * time.Second,
		Store:        store,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Cluster: node})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(srv)
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(ts.Close)
	return &cnode{id: id, url: url, store: store, node: node, srv: srv, ts: ts}
}

// startCluster brings up n nodes that all seed to each other and converges
// their membership (every ring sees every member).
func startCluster(t testing.TB, n, replicas int) []*cnode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*cnode, n)
	for i := range nodes {
		nodes[i] = startClusterNode(t, fmt.Sprintf("node-%c", 'a'+i), lns[i], urls, replicas, catalog.NewStore())
	}
	for round := 0; round < 2; round++ {
		for _, cn := range nodes {
			cn.node.Tick(context.Background())
		}
	}
	for _, cn := range nodes {
		if got := cn.node.Ring().Len(); got != n {
			t.Fatalf("%s ring has %d members after convergence, want %d", cn.id, got, n)
		}
	}
	return nodes
}

// putIndex installs a catalog entry over HTTP via the given node.
func putIndex(t testing.TB, cn *cnode, st *stats.IndexStats) {
	t.Helper()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut,
		cn.url+"/v1/indexes/"+st.Table+"/"+st.Column, bytes.NewReader(raw))
	resp, err := cn.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT %s.%s via %s: status %d", st.Table, st.Column, cn.id, resp.StatusCode)
	}
}

func TestIndexIntrospection(t *testing.T) {
	srv, _, st := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var doc IndexDoc
	getJSON(t, ts, "/v1/indexes/orders.key", http.StatusOK, &doc)
	if doc.Key != "orders.key" || doc.Generation != 1 || !doc.Compiled {
		t.Errorf("IndexDoc = %+v", doc)
	}
	if doc.Summary.Pages != st.T || doc.Summary.Records != st.N || doc.Summary.CurveKnots != len(st.Curve.Knots) {
		t.Errorf("summary = %+v, want stats of %s.%s", doc.Summary, st.Table, st.Column)
	}
	if doc.Owners != nil {
		t.Errorf("single-node IndexDoc has owners %v, want none", doc.Owners)
	}
	getJSON(t, ts, "/v1/indexes/no.such", http.StatusNotFound, nil)
}

func TestClusterReplicationAndBitExactServing(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	st := fitStats(t, "orders", "key", 1)
	putIndex(t, nodes[0], st)

	// The PUT fanned out synchronously: every store has the entry.
	for _, cn := range nodes {
		if cn.store.Len() != 1 {
			t.Fatalf("%s store len = %d after replicated PUT", cn.id, cn.store.Len())
		}
		if cn.node.Epoch() == 0 {
			t.Errorf("%s epoch still 0 after mutation", cn.id)
		}
	}

	// Every node answers bit-exactly, whether it owns the key or proxies.
	want, err := core.EstimateFetches(st, 100, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	const path = "/v1/estimate?table=orders&column=key&b=100&sigma=0.1"
	for _, cn := range nodes {
		var got EstimateResponse
		getJSON(t, cn.ts, path, http.StatusOK, &got)
		if got.Fetches != want {
			t.Errorf("%s: estimate = %v, want %v (owns=%v)",
				cn.id, got.Fetches, want, cn.node.Owns("orders.key"))
		}
	}

	// The introspection route reports the replica set in cluster mode.
	var doc IndexDoc
	getJSON(t, nodes[0].ts, "/v1/indexes/orders.key", http.StatusOK, &doc)
	if len(doc.Owners) != 2 {
		t.Errorf("IndexDoc owners = %v, want 2 entries", doc.Owners)
	}

	// An already-forwarded request landing on a non-owner answers 421 with
	// the owner set — never a second forward.
	var nonOwner *cnode
	for _, cn := range nodes {
		if !cn.node.Owns("orders.key") {
			nonOwner = cn
			break
		}
	}
	if nonOwner == nil {
		t.Fatal("no non-owner with R=2 over 3 nodes")
	}
	req, _ := http.NewRequest(http.MethodGet, nonOwner.url+path, nil)
	req.Header.Set(cluster.HeaderForwarded, "test")
	resp, err := nonOwner.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("forwarded request to non-owner: status %d, want 421", resp.StatusCode)
	}
	var mis struct {
		Key    string `json:"key"`
		Owners []struct{ ID, URL string } `json:"owners"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mis); err != nil {
		t.Fatal(err)
	}
	if mis.Key != "orders.key" || len(mis.Owners) != 2 {
		t.Errorf("421 body = %+v", mis)
	}

	// Batch items for non-owned keys answer per-item 421 (clients partition
	// by owner; the server never proxies item-by-item).
	var batch BatchResponse
	postJSON(t, nonOwner.ts, "/v1/estimate/batch", BatchRequest{Requests: []EstimateRequest{
		{Table: "orders", Column: "key", B: 100, Sigma: 0.1},
	}}, http.StatusOK, &batch)
	if batch.Failed != 1 || batch.Items[0].Status != http.StatusMisdirectedRequest {
		t.Errorf("non-owner batch item = %+v", batch.Items[0])
	}

	// DELETE replicates too.
	req, _ = http.NewRequest(http.MethodDelete, nodes[1].url+"/v1/indexes/orders/key", nil)
	resp2, err := nodes[1].ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp2.StatusCode)
	}
	for _, cn := range nodes {
		if cn.store.Len() != 0 {
			t.Errorf("%s store len = %d after replicated DELETE", cn.id, cn.store.Len())
		}
	}
}

func TestClusterSnapshotRoute(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	st := fitStats(t, "orders", "key", 1)
	putIndex(t, nodes[0], st)

	resp, err := nodes[0].ts.Client().Get(nodes[0].url + cluster.PathSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.HeaderNode); got != "node-a" {
		t.Errorf("snapshot node header = %q", got)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The stream is the trailered on-disk format and imports bit-exactly
	// into a fresh store.
	if !strings.Contains(string(data), "#epfis-catalog v1 ") {
		t.Fatal("snapshot stream lacks the checksum trailer")
	}
	fresh := catalog.NewStore()
	if _, err := fresh.ImportSnapshot(data); err != nil {
		t.Fatalf("ImportSnapshot: %v", err)
	}
	got, err := fresh.Get("orders", "key")
	if err != nil {
		t.Fatal(err)
	}
	if got.FMin != st.FMin || len(got.Curve.Knots) != len(st.Curve.Knots) {
		t.Errorf("imported entry diverges: %+v", got)
	}
}

func TestClusterClientEndToEnd(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	indexes := []*stats.IndexStats{
		fitStats(t, "orders", "key", 1),
		fitStats(t, "lineitem", "partkey", 7),
		fitStats(t, "customer", "nationkey", 11),
	}
	for _, st := range indexes {
		putIndex(t, nodes[0], st)
	}

	cc, err := NewClusterClient(ClusterClientConfig{
		Seeds: []string{nodes[1].url},
		Retry: resilience.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cc.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if cc.Ring().Len() != 3 {
		t.Fatalf("client ring has %d members", cc.Ring().Len())
	}

	for _, st := range indexes {
		want, err := core.EstimateFetches(st, 250, 0.3, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cc.Estimate(ctx, EstimateRequest{Table: st.Table, Column: st.Column, B: 250, Sigma: 0.3})
		if err != nil {
			t.Fatalf("Estimate(%s.%s): %v", st.Table, st.Column, err)
		}
		if got.Fetches != want {
			t.Errorf("Estimate(%s.%s) = %v, want %v", st.Table, st.Column, got.Fetches, want)
		}
	}

	// A batch spanning all owners partitions, fans out, and merges in order.
	var req BatchRequest
	for _, st := range indexes {
		for _, b := range []int64{12, 100, 1000} {
			req.Requests = append(req.Requests, EstimateRequest{Table: st.Table, Column: st.Column, B: b, Sigma: 0.2})
		}
	}
	resp, err := cc.EstimateBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 0 || resp.Count != len(req.Requests) {
		t.Fatalf("batch = count %d failed %d", resp.Count, resp.Failed)
	}
	for i, r := range req.Requests {
		st := indexes[i/3]
		want, err := core.EstimateFetches(st, r.B, r.Sigma, 1)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Items[i].Estimate == nil || resp.Items[i].Estimate.Fetches != want {
			t.Errorf("batch item %d (%s.%s B=%d) = %+v, want %v", i, r.Table, r.Column, r.B, resp.Items[i], want)
		}
	}
}

// honestOrFail asserts an estimate error is an "honest" one: a retryable or
// re-routable status, a breaker rejection, or transport trouble — never a
// definitive-looking wrong answer like 200 with a bad number, 400, or 404.
func honestOrFail(t *testing.T, err error) {
	t.Helper()
	var se *StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case http.StatusMisdirectedRequest, http.StatusTooManyRequests,
			http.StatusBadGateway, http.StatusServiceUnavailable:
			return
		default:
			t.Errorf("dishonest error status %d during chaos: %v", se.Code, err)
		}
		return
	}
	// Transport errors and open breakers are honest: the caller knows to retry.
}

// TestClusterChaosKillNodeUnderLoad is the acceptance chaos drill: 3 nodes at
// R=2 serve concurrent reads through the cluster client while one node is
// killed mid-load. Every successful answer must be bit-exact against the
// direct Est-IO computation; every failure must be an honest, retryable
// error. Afterwards the killed node restarts EMPTY (fresh store, new port)
// and must recover the catalog via snapshot streaming from its peers.
func TestClusterChaosKillNodeUnderLoad(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	indexes := []*stats.IndexStats{
		fitStats(t, "orders", "key", 1),
		fitStats(t, "lineitem", "partkey", 7),
		fitStats(t, "customer", "nationkey", 11),
	}
	for _, st := range indexes {
		putIndex(t, nodes[0], st)
	}

	// Precompute the bit-exact expectations for the load mix.
	bs := []int64{12, 50, 100, 500, 5000}
	want := map[string]float64{}
	for _, st := range indexes {
		for _, b := range bs {
			f, err := core.EstimateFetches(st, b, 0.1, 1)
			if err != nil {
				t.Fatal(err)
			}
			want[fmt.Sprintf("%s.%s/%d", st.Table, st.Column, b)] = f
		}
	}

	// Background gossip keeps membership fresh while the victim dies.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, cn := range nodes {
		go cn.node.Run(ctx)
	}

	cc, err := NewClusterClient(ClusterClientConfig{
		Seeds:           []string{nodes[0].url, nodes[1].url},
		Retry:           resilience.RetryPolicy{MaxAttempts: 1},
		HedgeAfter:      10 * time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Refresh(ctx); err != nil {
		t.Fatal(err)
	}

	var okCount, errCount atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := indexes[rng.Intn(len(indexes))]
				b := bs[rng.Intn(len(bs))]
				resp, err := cc.Estimate(ctx, EstimateRequest{Table: st.Table, Column: st.Column, B: b, Sigma: 0.1})
				if err != nil {
					errCount.Add(1)
					honestOrFail(t, err)
					continue
				}
				okCount.Add(1)
				if w := want[fmt.Sprintf("%s.%s/%d", st.Table, st.Column, b)]; resp.Fetches != w {
					t.Errorf("WRONG NUMBER under chaos: %s.%s B=%d = %v, want %v",
						st.Table, st.Column, b, resp.Fetches, w)
				}
			}
		}(g)
	}

	// Let the load warm up, then kill one node abruptly mid-flight.
	time.Sleep(150 * time.Millisecond)
	victim := nodes[2]
	victim.ts.CloseClientConnections()
	victim.ts.Close()
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	if okCount.Load() == 0 {
		t.Fatal("no successful estimates during the chaos window")
	}
	t.Logf("chaos load: %d ok, %d honest errors", okCount.Load(), errCount.Load())

	// After the kill settles, the survivors still answer every key bit-exactly.
	for _, st := range indexes {
		resp, err := cc.Estimate(ctx, EstimateRequest{Table: st.Table, Column: st.Column, B: 100, Sigma: 0.1})
		if err != nil {
			t.Fatalf("post-kill Estimate(%s.%s): %v", st.Table, st.Column, err)
		}
		if w := want[fmt.Sprintf("%s.%s/100", st.Table, st.Column)]; resp.Fetches != w {
			t.Errorf("post-kill %s.%s = %v, want %v", st.Table, st.Column, resp.Fetches, w)
		}
	}

	// Restart the victim with a FRESH store on a new port — same ring
	// identity. It must recover the catalog from a peer via snapshot
	// streaming (not from disk) and then serve bit-exactly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reborn := startClusterNode(t, victim.id, ln, []string{nodes[0].url, nodes[1].url}, 2, catalog.NewStore())
	go reborn.node.Run(ctx)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && reborn.store.Len() != len(indexes) {
		time.Sleep(20 * time.Millisecond)
	}
	if reborn.store.Len() != len(indexes) {
		t.Fatalf("restarted node recovered %d/%d entries via snapshot streaming", reborn.store.Len(), len(indexes))
	}
	if pulls, _ := reborn.node.Pulls(); pulls == 0 {
		t.Error("restarted node did not pull a snapshot")
	}
	if rh, sh := reborn.node.CatalogHash(), nodes[0].node.CatalogHash(); rh != sh {
		t.Errorf("restarted node content hash %q, peers have %q", rh, sh)
	}

	// Direct reads from the reborn node for keys it owns are bit-exact.
	for _, st := range indexes {
		key := st.Table + "." + st.Column
		if !reborn.node.Owns(key) {
			continue
		}
		var got EstimateResponse
		getJSON(t, reborn.ts, fmt.Sprintf("/v1/estimate?table=%s&column=%s&b=100&sigma=0.1", st.Table, st.Column),
			http.StatusOK, &got)
		if w := want[key+"/100"]; got.Fetches != w {
			t.Errorf("reborn node %s = %v, want %v", key, got.Fetches, w)
		}
	}
}
