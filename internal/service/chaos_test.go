package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/core"
	"epfis/internal/faultfs"
	"epfis/internal/resilience"
)

// newChaosServer builds a service over a disk-backed store whose filesystem
// runs through a fault injector, seeded with the standard "orders.key" index.
func newChaosServer(t *testing.T) (*Server, *catalog.Store, *faultfs.Injector, float64) {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.OS(), 42)
	store, err := catalog.OpenFS(filepath.Join(t.TempDir(), "catalog.json"), inj)
	if err != nil {
		t.Fatal(err)
	}
	orders := fitStats(t, "orders", "key", 1)
	if _, err := store.Put(orders); err != nil {
		t.Fatal(err)
	}
	want, err := core.EstimateFetches(orders, 100, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:           store,
		MaxInflight:     64,
		BreakerFailures: 2,
		BreakerCooldown: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, store, inj, want
}

// TestChaosFaultsMidTrafficNeverWrongAnswers is the acceptance chaos test:
// faults are injected on every catalog write-path operation class (create,
// write, fsync, close, rename, directory fsync) while 200 concurrent readers
// hammer /v1/estimate for an index whose statistics never change. Every
// reader response must be either a bit-exact estimate from the last good
// generation, or an honest shed/unavailable status — never a wrong number,
// never a panic. After the injector is disarmed, a retrying client reload
// must restore "ok" health.
func TestChaosFaultsMidTrafficNeverWrongAnswers(t *testing.T) {
	srv, store, inj, want := newChaosServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// 200 concurrent readers over a two-connection-idle default transport
	// would thrash TIME_WAIT; allow the pool to hold them all.
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	scratch := fitStats(t, "scratch", "col", 2)
	scratchBody, err := json.Marshal(scratch)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 200
	stop := make(chan struct{})
	var (
		wg       sync.WaitGroup
		served   atomic.Int64 // 200s with the exact answer
		shed     atomic.Int64 // 429/503
		failures atomic.Int64
		firstErr atomic.Pointer[string]
	)
	record := func(format string, args ...any) {
		failures.Add(1)
		msg := fmt.Sprintf(format, args...)
		firstErr.CompareAndSwap(nil, &msg)
	}
	url := ts.URL + "/v1/estimate?table=orders&column=key&b=100&sigma=0.05"
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(url)
				if err != nil {
					record("GET estimate: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var got EstimateResponse
					err := json.NewDecoder(resp.Body).Decode(&got)
					resp.Body.Close()
					if err != nil {
						record("decode estimate: %v", err)
						return
					}
					if got.Fetches != want {
						record("WRONG ANSWER: fetches = %v, want %v (generation %d)",
							got.Fetches, want, got.Generation)
						return
					}
					served.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					resp.Body.Close()
					shed.Add(1)
				default:
					resp.Body.Close()
					record("estimate returned status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	// Mutator: walk every write-path op class, arm a fault on the next
	// matching catalog operation, and drive PUT / DELETE / reload traffic
	// into it. Mutations may succeed, shed, or fail 503 — anything but a
	// wrong reader answer.
	mutate := func(method, path string, body []byte) {
		var rd *bytes.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			record("%s %s: %v", method, path, err)
			return
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusNotFound,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			record("%s %s returned status %d", method, path, resp.StatusCode)
		}
	}
	writeOps := []faultfs.Op{
		faultfs.OpCreate, faultfs.OpWrite, faultfs.OpSync,
		faultfs.OpClose, faultfs.OpRename, faultfs.OpSyncDir,
	}
	for round := 0; round < 3; round++ {
		for _, op := range writeOps {
			inj.Add(faultfs.Rule{Op: op, Path: "catalog", Nth: 1, Mode: faultfs.ModeError})
			mutate(http.MethodPut, "/v1/indexes/scratch/col", scratchBody)
			mutate(http.MethodDelete, "/v1/indexes/scratch/col", nil)
			mutate(http.MethodPost, "/v1/reload", nil)
			time.Sleep(5 * time.Millisecond) // let the breaker cooldown elapse
		}
	}
	close(stop)
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d reader/mutator failures; first: %s", n, *firstErr.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no estimate was served during the chaos run")
	}
	if inj.Injected() == 0 {
		t.Fatal("no fault actually fired; the chaos run exercised nothing")
	}
	t.Logf("chaos: %d exact answers, %d sheds, %d faults injected",
		served.Load(), shed.Load(), inj.Injected())

	// A read fault on the catalog file degrades reload but not serving.
	inj.Reset()
	inj.Add(faultfs.Rule{Op: faultfs.OpReadFile, Path: "catalog", Nth: 1, Mode: faultfs.ModeError})
	time.Sleep(25 * time.Millisecond) // past the breaker cooldown
	mutate(http.MethodPost, "/v1/reload", nil)
	var h Health
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.Status != "degraded" || !h.Degraded || h.LastReloadError == "" {
		t.Fatalf("health after failed reload = %+v, want degraded with an error", h)
	}
	if h.StaleGeneration != store.Generation() {
		t.Fatalf("staleGeneration = %d, want %d", h.StaleGeneration, store.Generation())
	}

	// Disarm the injector: a retrying client's reload must succeed (waiting
	// out the breaker via Retry-After) and health must return to "ok".
	inj.Reset()
	c, err := NewClient(ClientConfig{
		BaseURL:    ts.URL,
		HTTPClient: client,
		Retry: resilience.RetryPolicy{
			MaxAttempts: 8,
			// Honor the server's Retry-After shape but compress the waits so
			// the test finishes promptly.
			Sleep: func(ctx context.Context, d time.Duration) error {
				time.Sleep(d / 20)
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reload(context.Background()); err != nil {
		t.Fatalf("fault-free reload through retrying client: %v", err)
	}
	h, err = c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Degraded {
		t.Fatalf("health after recovery = %+v, want ok", h)
	}
	// And the answers are still exact.
	var got EstimateResponse
	getJSON(t, ts, "/v1/estimate?table=orders&column=key&b=100&sigma=0.05", http.StatusOK, &got)
	if got.Fetches != want {
		t.Fatalf("post-recovery estimate = %v, want %v", got.Fetches, want)
	}
}

// TestOverloadShedsDeterministically fills the estimate route's admission
// tokens by hand and proves the next request is shed with 429 + Retry-After
// instead of queueing, then that releasing a token restores service.
func TestOverloadShedsDeterministically(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sem := srv.inflight[routeEstimate]
	for i := 0; i < cap(sem); i++ {
		sem <- struct{}{}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/estimate?table=orders&column=key&b=100&sigma=0.05")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated route returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	// Health stays reachable while the serving routes are saturated.
	var h Health
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Fatalf("health during overload = %q, want ok", h.Status)
	}
	var met map[string]any
	getJSON(t, ts, "/metrics", http.StatusOK, &met)
	res, ok := met["resilience"].(map[string]any)
	if !ok || res["sheds"].(float64) < 1 {
		t.Fatalf("metrics resilience block = %v, want sheds >= 1", met["resilience"])
	}

	<-sem // release one token; service resumes
	var got EstimateResponse
	getJSON(t, ts, "/v1/estimate?table=orders&column=key&b=100&sigma=0.05", http.StatusOK, &got)
}

// TestDeletedIndexNeverServesCachedEstimates is the regression test for the
// memo-invalidation satellite: after DELETE, the index 404s rather than
// serving a memoized estimate, and a re-installed replacement with different
// statistics is computed fresh against the new statistics.
func TestDeletedIndexNeverServesCachedEstimates(t *testing.T) {
	srv, store, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	const q = "/v1/estimate?table=orders&column=key&b=100&sigma=0.05"

	// Warm the memo: second hit is served from cache.
	var first, second EstimateResponse
	getJSON(t, ts, q, http.StatusOK, &first)
	getJSON(t, ts, q, http.StatusOK, &second)
	if !second.Cached {
		t.Fatal("second identical estimate was not memoized")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/indexes/orders/key", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete returned %d", resp.StatusCode)
	}
	if n := srv.cache.len(); n != 0 {
		t.Fatalf("cache holds %d entries after delete, want 0", n)
	}
	getJSON(t, ts, q, http.StatusNotFound, nil)

	// Re-install the same key with different statistics: the estimate must
	// be computed fresh from the new statistics, not recalled from the old.
	replacement := fitStats(t, "orders", "key", 99)
	body, err := json.Marshal(replacement)
	if err != nil {
		t.Fatal(err)
	}
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/indexes/orders/key", bytes.NewReader(body))
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reinstall returned %d", resp.StatusCode)
	}
	fresh, err := store.Get("orders", "key")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.EstimateFetches(fresh, 100, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want == first.Fetches {
		t.Fatal("test is vacuous: replacement statistics estimate identically")
	}
	var got EstimateResponse
	getJSON(t, ts, q, http.StatusOK, &got)
	if got.Cached {
		t.Fatal("first estimate after reinstall claims to be cached")
	}
	if got.Fetches != want {
		t.Fatalf("estimate after reinstall = %v, want %v (stale would be %v)",
			got.Fetches, want, first.Fetches)
	}
}

// TestEstimateHotPathAllocations pins the allocation budget of the memoized
// estimate path at zero: the memo key is built field-wise (no string
// concatenation), the result travels by out-pointer, and admission control,
// degraded-mode checks, and breaker state add nothing.
func TestEstimateHotPathAllocations(t *testing.T) {
	srv, store, _ := newTestServer(t)
	snap := store.Snapshot()
	in := estimateInput{table: "orders", column: "key", b: 100, sigma: 0.05, s: 1}
	var res estimateResult
	if err := srv.estimate(snap, &in, &res, nil); err != nil { // warm the memo
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := srv.estimate(snap, &in, &res, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("memoized estimate allocates %.1f objects/op, budget is 0", allocs)
	}
}

// TestHealthzDrainingReturns503 proves a draining instance tells balancers
// to go away (503 + Retry-After) while still identifying itself.
func TestHealthzDrainingReturns503(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.draining.Store(true)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining healthz carries no Retry-After")
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("status = %q, want draining", h.Status)
	}
}
