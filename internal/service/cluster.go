package service

// Cluster-mode serving: ownership routing, request forwarding, mutation
// replication, and the three cluster routes (health, gossip, snapshot).
//
// Everything here is reached only when Config.Cluster is set. The single-node
// serving path pays exactly one nil-pointer check per request (s.cluster ==
// nil), so the committed alloc budgets are untouched with cluster mode off.
//
// Routing model: the catalog is fully replicated (mutations fan out
// synchronously; gossip anti-entropy repairs missed peers via snapshot
// streaming), while the consistent-hash ring assigns each index key an R-way
// replica set that answers estimates for it — owners keep hot memo-cache
// locality and bound each node's working set. A node receiving an estimate
// for a key it does not own proxies it to an owner (one hop, marked with
// X-Epfis-Forwarded); a forwarded request that still lands on a non-owner
// answers 421 Misdirected Request with the owner set, so stale rings
// re-route instead of looping.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"epfis/internal/cluster"
	"epfis/internal/obs"
)

// Cluster route names (metrics keys, mux patterns).
const (
	routeClusterHealth   = "GET " + cluster.PathHealth
	routeClusterGossip   = "POST " + cluster.PathGossip
	routeClusterSnapshot = "GET " + cluster.PathSnapshot
)

// errNotOwner is the 421 body message prefix.
var errAllOwnersDown = errors.New("no owner reachable for key")

// clusterObs is the proxy-vs-own serving metrics, registered only in cluster
// mode.
type clusterObs struct {
	servedOwn     *obs.Counter
	proxied       *obs.Counter
	misdirected   *obs.Counter
	proxyFailures *obs.Counter
	replicated    *obs.Counter
	replFailures  *obs.Counter
}

func newClusterObs(reg *obs.Registry) *clusterObs {
	src := func(v string) obs.Label { return obs.Label{Name: "source", Value: v} }
	return &clusterObs{
		servedOwn: reg.Counter("epfis_cluster_estimates_total",
			"Estimates by serving disposition.", src("own")),
		proxied: reg.Counter("epfis_cluster_estimates_total",
			"Estimates by serving disposition.", src("proxied")),
		misdirected: reg.Counter("epfis_cluster_estimates_total",
			"Estimates by serving disposition.", src("misdirected")),
		proxyFailures: reg.Counter("epfis_cluster_proxy_failures_total",
			"Estimate proxy attempts that exhausted every owner."),
		replicated: reg.Counter("epfis_cluster_replication_total",
			"Mutations replicated to peers."),
		replFailures: reg.Counter("epfis_cluster_replication_failures_total",
			"Peer replication sends that failed (anti-entropy repairs them)."),
	}
}

// clusterKey builds the ring key for an estimate input.
func clusterKey(in *estimateInput) string { return in.table + "." + in.column }

// ownsEstimate reports whether this node should answer for the input's key.
func (s *Server) ownsEstimate(in *estimateInput) bool {
	return s.cluster.Owns(clusterKey(in))
}

// clusterRoute handles ownership for the single-estimate route. It reports
// true when it fully handled the request (proxied or rejected); false means
// this node owns the key and the caller serves it locally.
func (s *Server) clusterRoute(w http.ResponseWriter, r *http.Request, in *estimateInput, tb *obs.TraceBuf) bool {
	key := clusterKey(in)
	if s.cluster.Owns(key) {
		s.cobs.servedOwn.Inc()
		w.Header().Set(cluster.HeaderNode, s.cluster.SelfID())
		return false
	}
	if r.Header.Get(cluster.HeaderForwarded) != "" {
		// Already forwarded once and we still do not own it: the sender's
		// ring is stale. Answer 421 with the owner set; never forward again.
		s.cobs.misdirected.Inc()
		s.writeMisdirected(w, key)
		return true
	}
	tb.Mark(obs.StageProxy)
	defer tb.CloseSpan()
	for _, p := range s.cluster.Owners(key) {
		if p.ID == s.cluster.SelfID() || p.URL == "" || p.State == cluster.StateDead {
			continue
		}
		if s.proxyTo(w, r, p.URL) {
			s.cobs.proxied.Inc()
			return true
		}
	}
	// Every owner was unreachable. 503 is the honest answer: retryable, and
	// never a number this node cannot vouch for.
	s.cobs.proxyFailures.Inc()
	writeRetryable(w, http.StatusServiceUnavailable,
		fmt.Errorf("%w %s", errAllOwnersDown, key), time.Second)
	return true
}

// proxyTo forwards the estimate request to one owner, copying its response
// through verbatim. It reports false on transport failure (the caller tries
// the next owner); any completed upstream response — success or error — is
// relayed as-is and reported true.
func (s *Server) proxyTo(w http.ResponseWriter, r *http.Request, baseURL string) bool {
	ctx := r.Context()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+r.URL.RequestURI(), nil)
	if err != nil {
		return false
	}
	req.Header.Set(cluster.HeaderForwarded, s.cluster.SelfID())
	if tp := w.Header().Get(obs.TraceparentHeader); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	resp, err := s.proxyHTTP.Do(req)
	if err != nil {
		return false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if id := resp.Header.Get(cluster.HeaderNode); id != "" {
		w.Header().Set(cluster.HeaderNode, id)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// writeMisdirected answers 421 with the key's owner set so the caller can
// refresh its ring and re-route.
func (s *Server) writeMisdirected(w http.ResponseWriter, key string) {
	type ownerDoc struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	owners := s.cluster.Owners(key)
	docs := make([]ownerDoc, 0, len(owners))
	for _, p := range owners {
		docs = append(docs, ownerDoc{ID: p.ID, URL: p.URL})
	}
	writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
		"error":  "misdirected: this node does not own " + key,
		"status": http.StatusMisdirectedRequest,
		"key":    key,
		"owners": docs,
	})
}

// replicate fans a successful local mutation out to every known peer, after
// bumping the mutation epoch. Sends are synchronous (the client's PUT
// returning means live replicas have it) but individually best-effort:
// failures are counted and logged, and gossip anti-entropy converges the
// missed peer from the epoch/hash difference. A mutation that itself arrived
// as replication (X-Epfis-Replicated) is applied locally only — the
// originator's epoch is folded in and nothing is re-forwarded.
func (s *Server) replicate(r *http.Request, method, path string, body []byte) {
	if s.cluster == nil {
		return
	}
	if r.Header.Get(cluster.HeaderReplicated) != "" {
		if e, err := strconv.ParseUint(r.Header.Get(cluster.HeaderEpoch), 10, 64); err == nil {
			s.cluster.ObserveEpoch(e)
		}
		return
	}
	epoch := s.cluster.BumpEpoch()
	peers := s.cluster.Peers()
	var wg sync.WaitGroup
	for _, p := range peers {
		if p.URL == "" || p.State == cluster.StateDead {
			continue
		}
		wg.Add(1)
		go func(p cluster.PeerInfo) {
			defer wg.Done()
			if err := s.replicateTo(r, p.URL, method, path, body, epoch); err != nil {
				s.cobs.replFailures.Inc()
				s.obs.log.LogAttrs(r.Context(), slog.LevelWarn, "mutation replication failed",
					slog.String("peer", p.ID), slog.String("path", path),
					slog.String("error", err.Error()))
				return
			}
			s.cobs.replicated.Inc()
		}(p)
	}
	wg.Wait()
}

// replicateTo sends one replicated mutation to one peer.
func (s *Server) replicateTo(r *http.Request, baseURL, method, path string, body []byte, epoch uint64) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), method, baseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(cluster.HeaderReplicated, s.cluster.SelfID())
	req.Header.Set(cluster.HeaderEpoch, strconv.FormatUint(epoch, 10))
	resp, err := s.proxyHTTP.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	// 404 on a replicated delete means the peer already lacks the entry —
	// converged, not failed.
	if resp.StatusCode/100 != 2 && !(method == http.MethodDelete && resp.StatusCode == http.StatusNotFound) {
		return fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	return nil
}

// noteClusterMutation accounts for a local mutation that is not forwarded
// (reload): a replicated arrival folds the originator's epoch in, a local
// origination bumps our own so anti-entropy propagates the change.
func (s *Server) noteClusterMutation(r *http.Request) {
	if s.cluster == nil {
		return
	}
	if r.Header.Get(cluster.HeaderReplicated) != "" {
		if e, err := strconv.ParseUint(r.Header.Get(cluster.HeaderEpoch), 10, 64); err == nil {
			s.cluster.ObserveEpoch(e)
		}
		return
	}
	s.cluster.BumpEpoch()
}

// handleClusterHealth serves the membership document: self plus every known
// peer with states, generations, epochs, and catalog hashes.
func (s *Server) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.HealthDoc())
}

// handleClusterGossip is the heartbeat receiver: fold the sender's document
// in, answer with ours.
func (s *Server) handleClusterGossip(w http.ResponseWriter, r *http.Request) {
	var doc cluster.Doc
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode gossip document: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Merge(doc))
}

// handleClusterSnapshot streams the checksummed catalog snapshot — the exact
// trailered on-disk format, so the receiving ImportSnapshot verifies
// integrity end to end. Headers carry the serving node, its epoch, and the
// generation the stream captured.
func (s *Server) handleClusterSnapshot(w http.ResponseWriter, r *http.Request) {
	data, gen, err := s.store.ExportSnapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(cluster.HeaderNode, s.cluster.SelfID())
	h.Set(cluster.HeaderEpoch, strconv.FormatUint(s.cluster.Epoch(), 10))
	h.Set(cluster.HeaderGeneration, strconv.FormatUint(gen, 10))
	h.Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
