package service

// Cluster-mode serving: ownership routing, request forwarding, mutation
// replication, and the three cluster routes (health, gossip, snapshot).
//
// Everything here is reached only when Config.Cluster is set. The single-node
// serving path pays exactly one nil-pointer check per request (s.cluster ==
// nil), so the committed alloc budgets are untouched with cluster mode off.
//
// Routing model: the catalog is fully replicated (mutations fan out
// synchronously; gossip anti-entropy repairs missed peers via snapshot
// streaming), while the consistent-hash ring assigns each index key an R-way
// replica set that answers estimates for it — owners keep hot memo-cache
// locality and bound each node's working set. A node receiving an estimate
// for a key it does not own proxies it to an owner (one hop, marked with
// X-Epfis-Forwarded); a forwarded request that still lands on a non-owner
// answers 421 Misdirected Request with the owner set, so stale rings
// re-route instead of looping.
//
// Mutation model: every mutation is stamped with a cluster-wide Lamport
// epoch at the node that first receives it, applied locally, then fanned out
// to every live peer with a per-peer timeout. The client's PUT/DELETE
// succeeds only when W of the key's R ring owners acknowledged the write
// (Config.WriteQuorum; majority by default) — otherwise 503, with the local
// apply standing and the missed peers queued as durable hints (handoff.go).
// Receivers apply a replicated mutation only when its (epoch, originator)
// stamp advances the key's last-applied stamp, which makes redelivery
// idempotent and closes the delete-resurrection race: a reordered older PUT
// can no longer overwrite a newer DELETE. The originator tiebreaker decides
// equal epochs — concurrent same-key mutations on both sides of a partition
// — identically on every node, so replicas converge after heal. Applied
// stamps are journaled under HandoffDir (stamps.go) and reloaded at startup,
// so delete tombstones survive restarts and a post-restart snapshot merge
// cannot resurrect a deleted key.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"epfis/internal/cluster"
	"epfis/internal/obs"
	"epfis/internal/stats"
)

// DefaultReplicateTimeout bounds each per-peer replication send when
// Config.ReplicateTimeout is zero: a partitioned peer costs one timeout and
// a hint, never a hung client request.
const DefaultReplicateTimeout = 2 * time.Second

// replicationBuckets grade the per-peer replication send latency (0.5ms to
// ~4s; the last bucket catches timeouts).
var replicationBuckets = obs.ExpBuckets(0.0005, 2, 14)

// Cluster route names (metrics keys, mux patterns).
const (
	routeClusterHealth   = "GET " + cluster.PathHealth
	routeClusterGossip   = "POST " + cluster.PathGossip
	routeClusterSnapshot = "GET " + cluster.PathSnapshot
	routeClusterDigest   = "GET " + cluster.PathDigest
	routeClusterEntry    = "GET " + cluster.PathEntryPrefix + "{key}"
)

// errNotOwner is the 421 body message prefix.
var errAllOwnersDown = errors.New("no owner reachable for key")

// clusterObs is the proxy-vs-own serving metrics, registered only in cluster
// mode.
type clusterObs struct {
	servedOwn     *obs.Counter
	proxied       *obs.Counter
	misdirected   *obs.Counter
	proxyFailures *obs.Counter
	replicated    *obs.Counter
	replFailures  *obs.Counter
	staleDrops    *obs.Counter
	fastAcks      *obs.Counter

	reg       *obs.Registry
	replLatMu sync.Mutex
	replLat   map[string]*obs.Histogram // per-peer replication send latency
}

func newClusterObs(reg *obs.Registry) *clusterObs {
	src := func(v string) obs.Label { return obs.Label{Name: "source", Value: v} }
	return &clusterObs{
		servedOwn: reg.Counter("epfis_cluster_estimates_total",
			"Estimates by serving disposition.", src("own")),
		proxied: reg.Counter("epfis_cluster_estimates_total",
			"Estimates by serving disposition.", src("proxied")),
		misdirected: reg.Counter("epfis_cluster_estimates_total",
			"Estimates by serving disposition.", src("misdirected")),
		proxyFailures: reg.Counter("epfis_cluster_proxy_failures_total",
			"Estimate proxy attempts that exhausted every owner."),
		replicated: reg.Counter("epfis_cluster_replication_total",
			"Mutations replicated to peers."),
		replFailures: reg.Counter("epfis_cluster_replication_failures_total",
			"Peer replication sends that failed (hinted handoff redelivers them)."),
		staleDrops: reg.Counter("epfis_cluster_stale_mutations_total",
			"Replicated mutations skipped because the key had already applied an equal or later epoch."),
		fastAcks: reg.Counter("epfis_cluster_quorum_fastacks_total",
			"Quorum verdicts returned while replication sends were still in flight."),
		reg:     reg,
		replLat: map[string]*obs.Histogram{},
	}
}

// observeReplication records one peer send in that peer's latency histogram
// (epfis_cluster_replication_seconds{peer=...,route=...}), registered lazily
// on the first send — never on the single-node serving path. route is the
// hop disposition: "put"/"delete" for quorum fan-out, "handoff" for hint
// redelivery.
func (c *clusterObs) observeReplication(peer, route string, d time.Duration) {
	key := peer + "\x00" + route
	c.replLatMu.Lock()
	h := c.replLat[key]
	if h == nil {
		h = c.reg.Histogram("epfis_cluster_replication_seconds",
			"Replication send latency by peer and route.", replicationBuckets,
			obs.Label{Name: "peer", Value: peer},
			obs.Label{Name: "route", Value: route})
		c.replLat[key] = h
	}
	c.replLatMu.Unlock()
	h.Observe(d.Seconds())
}

// replRoute maps a replication method to its histogram route label.
func replRoute(method string) string {
	if method == http.MethodDelete {
		return "delete"
	}
	return "put"
}

// clusterKey builds the ring key for an estimate input.
func clusterKey(in *estimateInput) string { return in.table + "." + in.column }

// ownsEstimate reports whether this node should answer for the input's key.
func (s *Server) ownsEstimate(in *estimateInput) bool {
	return s.cluster.Owns(clusterKey(in))
}

// clusterRoute handles ownership for the single-estimate route. It reports
// true when it fully handled the request (proxied or rejected); false means
// this node owns the key and the caller serves it locally.
func (s *Server) clusterRoute(w http.ResponseWriter, r *http.Request, in *estimateInput, tb *obs.TraceBuf) bool {
	key := clusterKey(in)
	if s.cluster.Owns(key) {
		s.cobs.servedOwn.Inc()
		w.Header().Set(cluster.HeaderNode, s.cluster.SelfID())
		return false
	}
	if r.Header.Get(cluster.HeaderForwarded) != "" {
		// Already forwarded once and we still do not own it: the sender's
		// ring is stale. Answer 421 with the owner set; never forward again.
		s.cobs.misdirected.Inc()
		s.writeMisdirected(w, key)
		return true
	}
	tb.Mark(obs.StageProxy)
	defer tb.CloseSpan()
	for _, p := range s.cluster.Owners(key) {
		if p.ID == s.cluster.SelfID() || p.URL == "" || p.State == cluster.StateDead {
			continue
		}
		if s.proxyTo(w, r, p) {
			s.cobs.proxied.Inc()
			return true
		}
	}
	// Every owner was unreachable. 503 is the honest answer: retryable, and
	// never a number this node cannot vouch for.
	s.cobs.proxyFailures.Inc()
	writeRetryable(w, http.StatusServiceUnavailable,
		fmt.Errorf("%w %s", errAllOwnersDown, key), time.Second)
	return true
}

// proxyTo forwards the estimate request to one owner.
func (s *Server) proxyTo(w http.ResponseWriter, r *http.Request, p cluster.PeerInfo) bool {
	return s.proxyRequest(w, r, p, http.MethodGet, r.URL.RequestURI(), nil)
}

// proxyRequest forwards a request to one peer with the given method, path,
// and body, copying the response through verbatim. It reports false on
// transport failure (the caller tries the next owner); any completed
// upstream response — success or error — is relayed as-is and reported true.
// The outbound request carries this node's id plus a child traceparent
// derived from the inbound request's trace (read from the request's trace
// buffer, never from response headers), and the sender records one forward
// hop so the stitched trace shows the proxy edge.
func (s *Server) proxyRequest(w http.ResponseWriter, r *http.Request, p cluster.PeerInfo, method, path string, body []byte) bool {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), method, p.URL+path, rd)
	if err != nil {
		return false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(cluster.HeaderForwarded, s.cluster.SelfID())
	req.Header.Set(cluster.HeaderNode, s.cluster.SelfID())
	var hop obs.Traceparent
	var parent obs.SpanID
	traced := false
	if tb := traceOf(w); tb != nil {
		parent = tb.TP.Span
		hop = tb.TP.Child()
		traced = true
		req.Header.Set(obs.TraceparentHeader, hop.String())
	}
	start := time.Now()
	resp, err := s.proxyHTTP.Do(req)
	if traced {
		status := 0
		if err == nil {
			status = resp.StatusCode
		}
		s.obs.ring.RecordHop(hop, parent, obs.HopForward, p.ID, path, status, start, time.Since(start))
	}
	if err != nil {
		return false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if id := resp.Header.Get(cluster.HeaderNode); id != "" {
		w.Header().Set(cluster.HeaderNode, id)
	}
	w.WriteHeader(resp.StatusCode)
	cb := proxyCopyPool.Get().(*[]byte)
	io.CopyBuffer(w, resp.Body, *cb)
	proxyCopyPool.Put(cb)
	return true
}

// writeMisdirected answers 421 with the key's owner set so the caller can
// refresh its ring and re-route.
func (s *Server) writeMisdirected(w http.ResponseWriter, key string) {
	type ownerDoc struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	owners := s.cluster.Owners(key)
	docs := make([]ownerDoc, 0, len(owners))
	for _, p := range owners {
		docs = append(docs, ownerDoc{ID: p.ID, URL: p.URL})
	}
	writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
		"error":  "misdirected: this node does not own " + key,
		"status": http.StatusMisdirectedRequest,
		"key":    key,
		"owners": docs,
	})
}

// mutationEncoder pairs a buffer with a reusable json.Encoder for the
// replication-body hot path; pooling both means a cluster PUT stops paying
// encoder-state and buffer-growth allocations per call.
type mutationEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var mutationEncPool = sync.Pool{New: func() any {
	m := &mutationEncoder{}
	m.enc = json.NewEncoder(&m.buf)
	return m
}}

// encodeMutationBody renders an entry as the replication fan-out body using
// the pooled encoder. The returned slice is an exact-size caller-owned copy:
// the body outlives this call — detached straggler sends and hint journals
// retain it — so it must never alias pooled memory.
func encodeMutationBody(e *stats.IndexStats) ([]byte, error) {
	m := mutationEncPool.Get().(*mutationEncoder)
	m.buf.Reset()
	if err := m.enc.Encode(e); err != nil {
		mutationEncPool.Put(m)
		return nil, err
	}
	b := bytes.TrimSuffix(m.buf.Bytes(), []byte("\n"))
	out := make([]byte, len(b))
	copy(out, b)
	if m.buf.Cap() <= maxPooledBuf {
		mutationEncPool.Put(m)
	}
	return out, nil
}

// proxyCopyPool holds the 32KB buffers proxyRequest streams upstream
// response bodies through, so a forwarded estimate does not allocate a copy
// buffer per hop.
var proxyCopyPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// indexPath is the replicated mutation path for one index.
func indexPath(table, column string) string {
	return "/v1/indexes/" + url.PathEscape(table) + "/" + url.PathEscape(column)
}

// replicatedStamp extracts the (epoch, originator) stamp of a replicated
// mutation; replicated is false for locally originated requests. The
// originator is the X-Epfis-Replicated value — receivers never re-forward,
// so the sender is always the node that assigned the epoch.
func replicatedStamp(r *http.Request) (st cluster.Stamp, replicated bool, err error) {
	origin := r.Header.Get(cluster.HeaderReplicated)
	if origin == "" {
		return cluster.Stamp{}, false, nil
	}
	e, perr := strconv.ParseUint(r.Header.Get(cluster.HeaderEpoch), 10, 64)
	if perr != nil {
		return cluster.Stamp{}, true, fmt.Errorf("replicated mutation carries no valid %s header", cluster.HeaderEpoch)
	}
	return cluster.Stamp{Epoch: e, Origin: origin}, true, nil
}

// clusterPut is handlePutIndex's cluster-mode tail (the entry is already
// validated): epoch-gated application for replicated arrivals, epoch-stamped
// quorum fan-out for local originations.
func (s *Server) clusterPut(w http.ResponseWriter, r *http.Request, e *stats.IndexStats) {
	key := e.Key()
	if st, replicated, rerr := replicatedStamp(r); replicated {
		if rerr != nil {
			writeError(w, http.StatusBadRequest, rerr)
			return
		}
		s.applyReplicated(w, key, st, func() (uint64, error) {
			gen, err := s.store.Put(e)
			if err == nil && s.cache != nil {
				s.cache.dropOtherGenerations(gen)
			}
			return gen, err
		})
		return
	}
	body, merr := encodeMutationBody(e)
	if merr != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encode replication body: %w", merr))
		return
	}
	gen, epoch, retryAfter, err := s.applyLocal(key, func() (uint64, error) { return s.store.Put(e) })
	if err != nil {
		writeRetryable(w, http.StatusServiceUnavailable, err, retryAfter)
		return
	}
	if s.cache != nil {
		s.cache.dropOtherGenerations(gen)
	}
	s.obs.syncIndexes(s.store.Snapshot())
	tp, traced := requestTrace(w)
	if err := s.replicateQuorum(http.MethodPut, indexPath(e.Table, e.Column), body, key, epoch, tp, traced); err != nil {
		writeRetryable(w, http.StatusServiceUnavailable,
			fmt.Errorf("replication quorum not met for %s: %w (applied locally, handoff pending; safe to retry)", key, err),
			time.Second)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "generation": gen, "epoch": epoch})
}

// requestTrace captures the inbound request's trace identity by value —
// replication goroutines outlive the handler, and the TraceBuf behind
// traceOf is pooled, so they must never retain the pointer.
func requestTrace(w http.ResponseWriter) (obs.Traceparent, bool) {
	if tb := traceOf(w); tb != nil {
		return tb.TP, true
	}
	return obs.Traceparent{}, false
}

// clusterDelete is handleDeleteIndex's cluster-mode tail. A replicated
// arrival records the delete's epoch even when the key is already absent —
// that record is the in-memory tombstone that keeps a late older PUT from
// resurrecting the deletion.
func (s *Server) clusterDelete(w http.ResponseWriter, r *http.Request, table, column string) {
	key := table + "." + column
	if st, replicated, rerr := replicatedStamp(r); replicated {
		if rerr != nil {
			writeError(w, http.StatusBadRequest, rerr)
			return
		}
		s.applyReplicated(w, key, st, func() (uint64, error) {
			ok, gen, err := s.store.Delete(table, column)
			if err != nil {
				return 0, err
			}
			if ok && s.cache != nil {
				s.cache.invalidateIndex(table, column)
				s.cache.dropOtherGenerations(gen)
			}
			return gen, nil
		})
		return
	}
	commit, retryAfter, err := s.beginMutation()
	if err != nil {
		writeRetryable(w, http.StatusServiceUnavailable, err, retryAfter)
		return
	}
	s.clusterMu.Lock()
	epoch := s.cluster.BumpEpoch()
	ok, gen, err := s.store.Delete(table, column)
	if err == nil && ok {
		s.recordStamp(key, cluster.Stamp{Epoch: epoch, Origin: s.cluster.SelfID()})
	}
	s.clusterMu.Unlock()
	commit(err != nil)
	if err != nil {
		writeRetryable(w, http.StatusServiceUnavailable, err, time.Second)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s.%s", stats.ErrNotFound, table, column))
		return
	}
	if s.cache != nil {
		s.cache.invalidateIndex(table, column)
		s.cache.dropOtherGenerations(gen)
	}
	tp, traced := requestTrace(w)
	if err := s.replicateQuorum(http.MethodDelete, indexPath(table, column), nil, key, epoch, tp, traced); err != nil {
		writeRetryable(w, http.StatusServiceUnavailable,
			fmt.Errorf("replication quorum not met for %s: %w (deleted locally, handoff pending; safe to retry)", key, err),
			time.Second)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"generation": gen, "epoch": epoch})
}

// applyReplicated applies one replicated mutation iff its (epoch, origin)
// stamp advances the key's last-applied stamp — the per-key ordering gate
// that makes replication delivery idempotent (hinted-handoff redelivery,
// client retries) and closes the delete-resurrection race. The originator
// tiebreaker resolves equal epochs, which concurrent mutations on both sides
// of a partition can produce: every node picks the same winner, so replicas
// converge after heal instead of each dropping the other's write as stale.
func (s *Server) applyReplicated(w http.ResponseWriter, key string, st cluster.Stamp, apply func() (uint64, error)) {
	// Fold the originator's epoch in before taking the mutation lock, so a
	// local mutation serialized after this one is stamped strictly above it.
	s.cluster.ObserveEpoch(st.Epoch)
	commit, retryAfter, err := s.beginMutation()
	if err != nil {
		writeRetryable(w, http.StatusServiceUnavailable, err, retryAfter)
		return
	}
	s.clusterMu.Lock()
	if !s.cluster.KeyStamp(key).Less(st) {
		s.clusterMu.Unlock()
		commit(false)
		s.cobs.staleDrops.Inc()
		writeJSON(w, http.StatusOK, map[string]any{"key": key, "skipped": true, "epoch": st.Epoch})
		return
	}
	gen, err := apply()
	if err == nil {
		s.recordStamp(key, st)
	}
	s.clusterMu.Unlock()
	commit(err != nil)
	if err != nil {
		writeRetryable(w, http.StatusServiceUnavailable, err, time.Second)
		return
	}
	s.obs.syncIndexes(s.store.Snapshot())
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "generation": gen, "epoch": st.Epoch})
}

// applyLocal runs a locally originated mutation under the cluster mutation
// lock with a freshly assigned epoch, so epoch order matches apply order for
// every same-key mutation flowing through this node.
func (s *Server) applyLocal(key string, apply func() (uint64, error)) (gen, epoch uint64, retryAfter time.Duration, err error) {
	commit, retryAfter, err := s.beginMutation()
	if err != nil {
		return 0, 0, retryAfter, err
	}
	s.clusterMu.Lock()
	epoch = s.cluster.BumpEpoch()
	gen, err = apply()
	if err == nil {
		s.recordStamp(key, cluster.Stamp{Epoch: epoch, Origin: s.cluster.SelfID()})
	}
	s.clusterMu.Unlock()
	commit(err != nil)
	if err != nil {
		return 0, 0, time.Second, err
	}
	return gen, epoch, 0, nil
}

// replicateQuorum fans an epoch-stamped mutation out to every live peer and
// returns as soon as the quorum verdict is decided: the mutation is
// acknowledged when W of the key's R ring owners hold it (the local apply
// counts when this node is an owner), and rejected the moment enough owner
// sends have failed that W is unreachable. Sends that are still in flight
// when the verdict lands — owner stragglers and every non-owner peer —
// detach and finish in the background, still journaling a durable hint on
// failure, so a slow replica costs the client nothing and convergence never
// waits for anti-entropy. Peers that are unreachable up front — dead,
// URL-less — get the hint immediately. A missed quorum returns an error;
// the caller surfaces 503 with the applied-locally contract (retry-safe,
// because every replicated apply is epoch-gated).
func (s *Server) replicateQuorum(method, path string, body []byte, key string, epoch uint64, tp obs.Traceparent, traced bool) error {
	route := replRoute(method)
	var traceVal string
	if traced {
		traceVal = tp.String() // rendered once; hints carry it for redelivery
	}
	owners := map[string]bool{}
	for _, p := range s.cluster.Owners(key) {
		owners[p.ID] = true
	}
	acks := 0
	if owners[s.cluster.SelfID()] {
		acks++
	}
	var live []cluster.PeerInfo
	pending := 0 // owner sends in flight
	for _, p := range s.cluster.Peers() {
		if p.URL == "" || p.State == cluster.StateDead {
			s.cobs.replFailures.Inc()
			s.handoff.enqueue(hintRecord{Peer: p.ID, Method: method, Path: path, Body: body, Epoch: epoch, Key: key, Trace: traceVal})
			continue
		}
		live = append(live, p)
		if owners[p.ID] {
			pending++
		}
	}
	// Buffered to every owner send, so a straggler's late report never
	// blocks its goroutine after the verdict has been returned.
	results := make(chan bool, pending)
	for _, p := range live {
		go func(p cluster.PeerInfo, isOwner bool) {
			hop := tp.Child() // fresh span per peer edge
			start := time.Now()
			status, err := s.replicateTo(p.URL, method, path, body, epoch, hop, traced)
			s.cobs.observeReplication(p.ID, route, time.Since(start))
			if traced {
				s.obs.ring.RecordHop(hop, tp.Span, obs.HopReplicate, p.ID, path, status, start, time.Since(start))
			}
			if err != nil {
				s.cobs.replFailures.Inc()
				s.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "replication failed, hint journaled",
					slog.String("peer", p.ID), slog.String("path", path),
					slog.String("error", err.Error()))
				s.handoff.enqueue(hintRecord{Peer: p.ID, Method: method, Path: path, Body: body, Epoch: epoch, Key: key, Trace: traceVal})
			} else {
				s.cobs.replicated.Inc()
			}
			if isOwner {
				results <- err == nil
			}
		}(p, owners[p.ID])
	}
	// Fast-ack loop: stop waiting the moment the verdict is decided — quorum
	// met, or too few owner sends left for it ever to be met.
	need := s.quorumFor(len(owners))
	for acks < need && acks+pending >= need {
		if <-results {
			acks++
		}
		pending--
	}
	if pending > 0 {
		s.cobs.fastAcks.Inc()
	}
	if acks < need {
		return fmt.Errorf("%d/%d owner acks, need %d", acks, len(owners), need)
	}
	return nil
}

// quorumFor resolves Config.WriteQuorum against a key's owner count:
// 0 = majority, positive = that many acks (capped at the owner count),
// negative = none (the local apply suffices; hints still converge peers).
func (s *Server) quorumFor(owners int) int {
	switch {
	case s.writeQuorum < 0:
		return 0
	case s.writeQuorum > 0:
		if s.writeQuorum > owners {
			return owners
		}
		return s.writeQuorum
	default:
		return owners/2 + 1
	}
}

// replicateRepublish fans an ingest-refit entry out like a local PUT. No
// client waits on it, so a missed quorum is logged rather than surfaced;
// hints still carry the refit to every peer eventually. Explicit replication
// matters here: peers tracking an epoch for the key skip it during snapshot
// merges, so anti-entropy alone would never deliver the refit.
func (s *Server) replicateRepublish(e *stats.IndexStats) {
	key := e.Key()
	body, err := encodeMutationBody(e)
	if err != nil {
		return
	}
	s.clusterMu.Lock()
	epoch := s.cluster.BumpEpoch()
	s.recordStamp(key, cluster.Stamp{Epoch: epoch, Origin: s.cluster.SelfID()})
	s.clusterMu.Unlock()
	// No client request carries a trace here; a republish starts its own.
	var tp obs.Traceparent
	traced := s.obs.tracing()
	if traced {
		tp = obs.NewTraceparent()
	}
	if err := s.replicateQuorum(http.MethodPut, indexPath(e.Table, e.Column), body, key, epoch, tp, traced); err != nil {
		s.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "ingest republish quorum not met",
			slog.String("index", key), slog.String("error", err.Error()))
	}
}

// replicateTo sends one replicated mutation to one peer, bounded by the
// per-peer replication timeout. When traced, the send carries tp as its
// traceparent so the receiver's span re-parents onto the originating trace.
// The returned status is the peer's HTTP answer (0 on transport failure).
func (s *Server) replicateTo(baseURL, method, path string, body []byte, epoch uint64, tp obs.Traceparent, traced bool) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.replTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, baseURL+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(cluster.HeaderReplicated, s.cluster.SelfID())
	req.Header.Set(cluster.HeaderNode, s.cluster.SelfID())
	req.Header.Set(cluster.HeaderEpoch, strconv.FormatUint(epoch, 10))
	if traced {
		req.Header.Set(obs.TraceparentHeader, tp.String())
	}
	resp, err := s.proxyHTTP.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	// 404 on a replicated delete means the peer already lacks the entry —
	// converged, not failed.
	if resp.StatusCode/100 != 2 && !(method == http.MethodDelete && resp.StatusCode == http.StatusNotFound) {
		return resp.StatusCode, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	return resp.StatusCode, nil
}

// noteClusterMutation accounts for a local mutation that is not forwarded
// (reload): a replicated arrival folds the originator's epoch in, a local
// origination bumps our own so anti-entropy propagates the change.
func (s *Server) noteClusterMutation(r *http.Request) {
	if s.cluster == nil {
		return
	}
	if r.Header.Get(cluster.HeaderReplicated) != "" {
		if e, err := strconv.ParseUint(r.Header.Get(cluster.HeaderEpoch), 10, 64); err == nil {
			s.cluster.ObserveEpoch(e)
		}
		return
	}
	s.cluster.BumpEpoch()
}

// handleClusterHealth serves the membership document: self plus every known
// peer with states, generations, epochs, and catalog hashes.
func (s *Server) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.HealthDoc())
}

// handleClusterGossip is the heartbeat receiver: fold the sender's document
// in, answer with ours.
func (s *Server) handleClusterGossip(w http.ResponseWriter, r *http.Request) {
	var doc cluster.Doc
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode gossip document: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Merge(doc))
}

// handleClusterSnapshot streams the checksummed catalog snapshot — the exact
// trailered on-disk format, so the receiving ImportSnapshot verifies
// integrity end to end. Headers carry the serving node, its epoch, and the
// generation the stream captured.
func (s *Server) handleClusterSnapshot(w http.ResponseWriter, r *http.Request) {
	data, gen, err := s.store.ExportSnapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(cluster.HeaderNode, s.cluster.SelfID())
	h.Set(cluster.HeaderEpoch, strconv.FormatUint(s.cluster.Epoch(), 10))
	h.Set(cluster.HeaderGeneration, strconv.FormatUint(gen, 10))
	h.Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleClusterDigest serves the per-entry digest table that drives delta
// anti-entropy: key -> (last applied stamp, CRC32-C of the canonical
// single-entry payload), plus this node's epoch and generation. A behind
// peer diffs it against its own digests and fetches only divergent entries.
func (s *Server) handleClusterDigest(w http.ResponseWriter, r *http.Request) {
	doc, err := s.cluster.DigestDoc()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set(cluster.HeaderNode, s.cluster.SelfID())
	writeJSON(w, http.StatusOK, doc)
}

// handleClusterEntry streams one entry in the trailered catalog framing —
// the delta-sync sibling of handleClusterSnapshot, with the same end-to-end
// checksum verification on the receiving MergeEntries.
func (s *Server) handleClusterEntry(w http.ResponseWriter, r *http.Request) {
	key, err := url.PathUnescape(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad entry key: %w", err))
		return
	}
	data, gen, err := s.store.ExportEntry(key)
	if err != nil {
		if errors.Is(err, stats.ErrNotFound) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(cluster.HeaderNode, s.cluster.SelfID())
	h.Set(cluster.HeaderEpoch, strconv.FormatUint(s.cluster.Epoch(), 10))
	h.Set(cluster.HeaderGeneration, strconv.FormatUint(gen, 10))
	h.Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
