package stats

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"epfis/internal/curvefit"
	"epfis/internal/histogram"
)

func sample(tbl, col string) *IndexStats {
	return &IndexStats{
		Table: tbl, Column: col,
		T: 1000, N: 40_000, I: 500,
		BMin: 12, BMax: 1000, FMin: 35_000, C: 0.128,
		Curve: curvefit.PolyLine{Knots: []curvefit.Point{
			{X: 12, Y: 35_000}, {X: 400, Y: 8_000}, {X: 1000, Y: 1_000},
		}},
		GridPoints:  32,
		CollectedAt: time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC),
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sample("t", "c").Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := map[string]func(*IndexStats){
		"T=0":        func(s *IndexStats) { s.T = 0 },
		"N=0":        func(s *IndexStats) { s.N = 0 },
		"I=0":        func(s *IndexStats) { s.I = 0 },
		"I>N":        func(s *IndexStats) { s.I = s.N + 1 },
		"BMin=0":     func(s *IndexStats) { s.BMin = 0 },
		"BMax<BMin":  func(s *IndexStats) { s.BMax = s.BMin - 1 },
		"C<0":        func(s *IndexStats) { s.C = -0.1 },
		"C>1":        func(s *IndexStats) { s.C = 1.1 },
		"FMin<T":     func(s *IndexStats) { s.FMin = s.T - 1 },
		"badCurve":   func(s *IndexStats) { s.Curve.Knots = s.Curve.Knots[:1] },
		"curveOrder": func(s *IndexStats) { s.Curve.Knots[1].X = 5 },
	}
	for name, mutate := range mutations {
		s := sample("t", "c")
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid entry", name)
		}
	}
}

func TestCatalogPutGet(t *testing.T) {
	c := NewCatalog()
	if err := c.Put(sample("orders", "date")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(sample("orders", "custid")); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	got, err := c.Get("orders", "date")
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != "orders.date" || got.T != 1000 {
		t.Errorf("Get returned %+v", got)
	}
	// Returned copy must not alias the stored entry.
	got.T = 9
	again, _ := c.Get("orders", "date")
	if again.T != 1000 {
		t.Error("Get returned aliased entry")
	}
	if _, err := c.Get("orders", "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing err = %v", err)
	}
	wantKeys := []string{"orders.custid", "orders.date"}
	gotKeys := c.Keys()
	if len(gotKeys) != 2 || gotKeys[0] != wantKeys[0] || gotKeys[1] != wantKeys[1] {
		t.Errorf("Keys = %v", gotKeys)
	}
}

func TestCatalogPutRejectsInvalid(t *testing.T) {
	c := NewCatalog()
	bad := sample("t", "c")
	bad.C = 2
	if err := c.Put(bad); err == nil {
		t.Error("Put accepted invalid entry")
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	c := NewCatalog()
	for _, col := range []string{"a", "b", "c"} {
		if err := c.Put(sample("tbl", col)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 3 {
		t.Fatalf("reloaded Len = %d", re.Len())
	}
	got, err := re.Get("tbl", "b")
	if err != nil {
		t.Fatal(err)
	}
	want := sample("tbl", "b")
	if got.T != want.T || got.C != want.C || len(got.Curve.Knots) != len(want.Curve.Knots) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if !got.CollectedAt.Equal(want.CollectedAt) {
		t.Errorf("CollectedAt = %v", got.CollectedAt)
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	in := strings.NewReader(`{"version": 99, "entries": []}`)
	if _, err := Load(in); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("Load accepted garbage")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"entries":[{"table":"t"}]}`)); err == nil {
		t.Error("Load accepted invalid entry")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	c := NewCatalog()
	if err := c.Put(sample("t", "c")); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	re, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Errorf("Len = %d", re.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadFile(missing) succeeded")
	}
}

func TestKeyHistogramRoundTrip(t *testing.T) {
	s := sample("t", "h")
	s.KeyHistogram = []histogram.Bucket{
		{Lo: 1, Hi: 100, Count: 500, Distinct: 100},
		{Lo: 101, Hi: 200, Count: 500, Distinct: 100},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate with histogram: %v", err)
	}
	c := NewCatalog()
	if err := c.Put(s); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Get("t", "h")
	if err != nil {
		t.Fatal(err)
	}
	h, err := got.Histogram()
	if err != nil || h == nil {
		t.Fatalf("Histogram: %v", err)
	}
	if h.N() != 1000 || h.NumBuckets() != 2 {
		t.Errorf("reconstructed histogram N=%d buckets=%d", h.N(), h.NumBuckets())
	}
	if sel := h.EstimateRange(1, 100, false, false); sel != 0.5 {
		t.Errorf("selectivity = %g", sel)
	}
}

func TestValidateRejectsBadHistogram(t *testing.T) {
	s := sample("t", "h")
	s.KeyHistogram = []histogram.Bucket{
		{Lo: 10, Hi: 5, Count: 1, Distinct: 1}, // inverted
	}
	if err := s.Validate(); err == nil {
		t.Error("inverted histogram bucket accepted")
	}
}

func TestHistogramNilWhenAbsent(t *testing.T) {
	s := sample("t", "h")
	h, err := s.Histogram()
	if err != nil || h != nil {
		t.Errorf("Histogram() = %v, %v, want nil, nil", h, err)
	}
}
