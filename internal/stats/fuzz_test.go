package stats

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"epfis/internal/curvefit"
)

// FuzzCatalogRoundTrip hardens the catalog's JSON format, which the
// estimation service exposes to untrusted input (PUT /v1/indexes and the
// reloadable catalog file): any document that Load accepts must validate,
// re-serialize, and re-load to an identical catalog — no panics, no NaN/Inf
// smuggling, no entries that Validate would reject.
func FuzzCatalogRoundTrip(f *testing.F) {
	// Seed with a genuine catalog document.
	c := NewCatalog()
	err := c.Put(&IndexStats{
		Table: "orders", Column: "key",
		T: 100, N: 1000, I: 100,
		BMin: 12, BMax: 100, FMin: 500, C: 0.5,
		Curve: curvefit.PolyLine{Knots: []curvefit.Point{
			{X: 12, Y: 500}, {X: 100, Y: 100},
		}},
		GridPoints:  2,
		CollectedAt: time.Unix(0, 0).UTC(),
	})
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := c.Save(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"version":1,"entries":[]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"entries":[{"table":"t","column":"c","pages":-1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"entries":[{"table":"t","column":"c","pages":1,` +
		`"records":1,"distinctKeys":1,"bufferMin":1,"bufferMax":1,"fetchesAtBMin":1,` +
		`"clusteringFactor":1e999,"fpfCurve":{"knots":[]}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c1, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		// Everything Load accepted has passed Validate.
		for _, key := range c1.Keys() {
			e, err := c1.Get(splitKey(key))
			if err != nil {
				t.Fatalf("Get(%q) after Load: %v", key, err)
			}
			if err := e.Validate(); err != nil {
				t.Fatalf("Load admitted invalid entry %q: %v", key, err)
			}
		}
		// Accepted catalogs round-trip losslessly.
		var buf bytes.Buffer
		if err := c1.Save(&buf); err != nil {
			t.Fatalf("Save of loaded catalog: %v", err)
		}
		c2, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Load of saved catalog: %v\nserialized: %s", err, buf.String())
		}
		if !reflect.DeepEqual(c1.Keys(), c2.Keys()) {
			t.Fatalf("keys changed across round trip: %v != %v", c1.Keys(), c2.Keys())
		}
		for _, key := range c1.Keys() {
			e1, _ := c1.Get(splitKey(key))
			e2, _ := c2.Get(splitKey(key))
			if !reflect.DeepEqual(e1, e2) {
				t.Fatalf("entry %q changed across round trip:\n%+v\n%+v", key, e1, e2)
			}
		}
	})
}

// splitKey mirrors the catalog key convention "table.column" (column never
// contains a dot; table may).
func splitKey(key string) (table, column string) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}
