// Package stats defines the catalog records produced by LRU-Fit and consumed
// by Est-IO, and a small system catalog that stores them — the paper:
//
//	"This coordinate information can be stored in a system catalog entry
//	 associated with the index for later use by Est-IO."
//
// The catalog serializes to JSON so statistics collected by cmd/epfis can be
// inspected and reused across runs.
//
// # Thread safety
//
// Catalog is a plain in-memory map with no internal synchronization: it is
// safe for any number of goroutines to call read methods (Get, Len, Keys,
// Save) concurrently, but writes (Put) must not run concurrently with any
// other method. IndexStats values are passed around by shallow copy — the
// copies share the Curve.Knots and KeyHistogram backing arrays — so treat
// every entry obtained from a catalog as read-only. Long-running concurrent
// services should use package catalog, which wraps this type in a
// copy-on-write snapshot store with lock-free reads.
package stats

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"epfis/internal/curvefit"
	"epfis/internal/histogram"
)

// FormatVersion is bumped whenever the serialized layout changes.
const FormatVersion = 1

// IndexStats is the catalog entry for one index, everything Est-IO needs.
type IndexStats struct {
	// Table and Column identify the index.
	Table  string `json:"table"`
	Column string `json:"column"`

	// T is the number of data pages in the table.
	T int64 `json:"pages"`
	// N is the number of records in the table.
	N int64 `json:"records"`
	// I is the number of distinct key values in the index.
	I int64 `json:"distinctKeys"`

	// BMin and BMax bound the modeled buffer-size range.
	BMin int64 `json:"bufferMin"`
	BMax int64 `json:"bufferMax"`
	// FMin is the measured page-fetch count for a full scan at B = BMin.
	FMin int64 `json:"fetchesAtBMin"`
	// C is the clustering factor (N - FMin) / (N - T), clamped to [0, 1].
	C float64 `json:"clusteringFactor"`

	// Curve is the piecewise-linear approximation to the FPF curve:
	// x = buffer size in pages, y = full-scan page fetches.
	Curve curvefit.PolyLine `json:"fpfCurve"`

	// KeyHistogram optionally carries the key column's compressed equi-depth
	// histogram buckets, so an optimizer rebuilt from the catalog can
	// estimate start/stop selectivities without rescanning the data.
	KeyHistogram []histogram.Bucket `json:"keyHistogram,omitempty"`

	// GridPoints is the number of (B, F) samples the curve was fitted to.
	GridPoints int `json:"gridPoints"`
	// CollectedAt records when LRU-Fit ran.
	CollectedAt time.Time `json:"collectedAt"`
}

// Errors returned by this package.
var (
	ErrNotFound   = errors.New("stats: no statistics for index")
	ErrBadVersion = errors.New("stats: unsupported catalog format version")
)

// Validate checks internal consistency of the entry.
func (s *IndexStats) Validate() error {
	switch {
	case s.T < 1:
		return fmt.Errorf("stats: T = %d, want >= 1", s.T)
	case s.N < 1:
		return fmt.Errorf("stats: N = %d, want >= 1", s.N)
	case s.I < 1 || s.I > s.N:
		return fmt.Errorf("stats: I = %d, want in [1, N=%d]", s.I, s.N)
	case s.BMin < 1 || s.BMax < s.BMin:
		return fmt.Errorf("stats: buffer range [%d, %d] invalid", s.BMin, s.BMax)
	case s.C < 0 || s.C > 1:
		return fmt.Errorf("stats: C = %g, want in [0, 1]", s.C)
	case s.FMin < s.T && s.N >= s.T:
		return fmt.Errorf("stats: FMin = %d below T = %d", s.FMin, s.T)
	}
	if err := s.Curve.Validate(); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if len(s.KeyHistogram) > 0 {
		if _, err := histogram.FromBuckets(s.KeyHistogram); err != nil {
			return fmt.Errorf("stats: %w", err)
		}
	}
	return nil
}

// Histogram reconstructs the key column's histogram, or nil when the entry
// carries none.
func (s *IndexStats) Histogram() (*histogram.EquiDepth, error) {
	if len(s.KeyHistogram) == 0 {
		return nil, nil
	}
	return histogram.FromBuckets(s.KeyHistogram)
}

// Key identifies the entry within a catalog.
func (s *IndexStats) Key() string { return s.Table + "." + s.Column }

// Catalog is an in-memory system catalog of index statistics. It is not
// safe for concurrent mutation; see the package comment's thread-safety
// notes (package catalog provides the concurrent store).
type Catalog struct {
	entries map[string]*IndexStats
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: make(map[string]*IndexStats)}
}

// Put validates and stores (or replaces) an entry.
func (c *Catalog) Put(s *IndexStats) error {
	if err := s.Validate(); err != nil {
		return err
	}
	cp := *s
	c.entries[s.Key()] = &cp
	return nil
}

// Get returns the entry for table.column. The returned value is a shallow
// copy: scalar fields are the caller's to change, but Curve.Knots and
// KeyHistogram share backing arrays with the stored entry and must be
// treated as read-only.
func (c *Catalog) Get(tbl, column string) (*IndexStats, error) {
	s, ok := c.entries[tbl+"."+column]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNotFound, tbl, column)
	}
	cp := *s
	return &cp, nil
}

// Len reports the number of entries.
func (c *Catalog) Len() int { return len(c.entries) }

// Keys lists the entry keys in sorted order.
func (c *Catalog) Keys() []string {
	ks := make([]string, 0, len(c.entries))
	for k := range c.entries {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// catalogFile is the serialized form.
type catalogFile struct {
	Version int           `json:"version"`
	Entries []*IndexStats `json:"entries"`
}

// Save writes the catalog as JSON.
func (c *Catalog) Save(w io.Writer) error {
	f := catalogFile{Version: FormatVersion}
	for _, k := range c.Keys() {
		f.Entries = append(f.Entries, c.entries[k])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("stats: save catalog: %w", err)
	}
	return nil
}

// Load reads a catalog from JSON, validating every entry.
func Load(r io.Reader) (*Catalog, error) {
	var f catalogFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("stats: load catalog: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, f.Version)
	}
	c := NewCatalog()
	for _, e := range f.Entries {
		if err := c.Put(e); err != nil {
			return nil, fmt.Errorf("stats: load catalog entry %s: %w", e.Key(), err)
		}
	}
	return c, nil
}

// SaveFile writes the catalog to a file path.
func (c *Catalog) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	defer f.Close()
	if err := c.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a catalog from a file path.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stats: %w", err)
	}
	defer f.Close()
	return Load(f)
}
