package gwl

import (
	"math"
	"testing"
)

func TestSpecsMatchPaperTables(t *testing.T) {
	// Table 2 spot checks.
	if Tables["CMAC"].Pages != 774 || Tables["CMAC"].RecordsPerPage != 20 {
		t.Error("CMAC spec wrong")
	}
	if Tables["PLON"].Pages != 4857 || Tables["PLON"].RecordsPerPage != 123 {
		t.Error("PLON spec wrong")
	}
	if got := Tables["CAGD"].Records(); got != 1093*104 {
		t.Errorf("CAGD records = %d", got)
	}
	// Table 3: eight columns, cardinality never exceeds record count.
	if len(Columns) != 8 {
		t.Fatalf("%d columns", len(Columns))
	}
	for _, c := range Columns {
		if c.Cardinality < 1 || c.Cardinality > c.Table.Records() {
			t.Errorf("%s: cardinality %d vs records %d", c.Name(), c.Cardinality, c.Table.Records())
		}
		if c.TargetC <= 0 || c.TargetC >= 1 {
			t.Errorf("%s: target C %g", c.Name(), c.TargetC)
		}
	}
}

func TestColumnByName(t *testing.T) {
	c, err := ColumnByName("INAP.UWID")
	if err != nil || c.Cardinality != 60 {
		t.Errorf("ColumnByName: %+v, %v", c, err)
	}
	if _, err := ColumnByName("NO.PE"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestFigure1ColumnsExist(t *testing.T) {
	if len(Figure1Columns) != 5 {
		t.Fatalf("%d figure-1 columns", len(Figure1Columns))
	}
	for _, name := range Figure1Columns {
		if _, err := ColumnByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestReconstructScaledHitsTargetC(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration loop")
	}
	for _, name := range []string{"CMAC.BRAN", "INAP.UWID", "PLON.CLID", "CAGD.POLN"} {
		spec, err := ColumnByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Reconstruct(spec, Options{Scale: 8, Tolerance: 0.03})
		if err != nil {
			t.Fatalf("Reconstruct(%s): %v", name, err)
		}
		if math.Abs(r.MeasuredC-spec.TargetC) > 3*0.03 {
			t.Errorf("%s: measured C %.3f, target %.3f", name, r.MeasuredC, spec.TargetC)
		}
		// Shape parameters: R preserved exactly, I/N ratio approximately.
		if got := float64(r.N) / float64(r.T); math.Abs(got-float64(spec.Table.RecordsPerPage)) > 0.01 {
			t.Errorf("%s: N/T = %g, want %d", name, got, spec.Table.RecordsPerPage)
		}
		wantRatio := float64(spec.Cardinality) / float64(spec.Table.Records())
		gotRatio := float64(r.I) / float64(r.N)
		if math.Abs(gotRatio-wantRatio)/wantRatio > 0.1 {
			t.Errorf("%s: I/N = %g, want %g", name, gotRatio, wantRatio)
		}
		if r.Stats == nil || r.Stats.Validate() != nil {
			t.Errorf("%s: invalid stats", name)
		}
	}
}

func TestReconstructDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration loop")
	}
	spec, _ := ColumnByName("CMAC.BRAN")
	a, err := Reconstruct(spec, Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reconstruct(spec, Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Disorder != b.Disorder || a.MeasuredC != b.MeasuredC {
		t.Errorf("nondeterministic calibration: %g/%g vs %g/%g", a.Disorder, a.MeasuredC, b.Disorder, b.MeasuredC)
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}
	o.normalize()
	if o.Seed != 1 || o.Scale != 1 || o.Tolerance != 0.02 || o.MaxIterations != 24 {
		t.Errorf("normalized = %+v", o)
	}
}

func TestReconstructAllColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration loop over all columns")
	}
	recons, err := ReconstructAll(Options{Scale: 16, Tolerance: 0.035})
	if err != nil {
		t.Fatal(err)
	}
	if len(recons) != len(Columns) {
		t.Fatalf("reconstructed %d of %d columns", len(recons), len(Columns))
	}
	for _, r := range recons {
		if math.Abs(r.MeasuredC-r.Spec.TargetC) > 3*0.035 {
			t.Errorf("%s: measured C %.3f vs target %.3f", r.Spec.Name(), r.MeasuredC, r.Spec.TargetC)
		}
		if int64(len(r.Dataset.Keys)) != r.N {
			t.Errorf("%s: dataset has %d entries, want %d", r.Spec.Name(), len(r.Dataset.Keys), r.N)
		}
	}
}
