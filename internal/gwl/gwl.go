// Package gwl reconstructs the paper's customer dataset — the Great-West
// Life (GWL) benchmark database (Steindel & Madison, 1987) — which is
// proprietary and unavailable. This is the substitution documented in
// DESIGN.md:
//
// Every estimation algorithm in this system consumes only (a) the
// data-page reference trace of an index scan and (b) the scalar statistics
// (N, T, R, I, C, σ). The paper publishes all of the scalar statistics for
// its eight GWL columns: Table 2 gives each table's page count and
// records-per-page, Table 3 gives each column's cardinality and clustering
// factor C. We therefore generate synthetic placements with the same window
// model as the paper's own synthetic section (§5.2) and *calibrate* the
// window parameter per column until the measured clustering factor matches
// the published C — reproducing the statistics regime each algorithm saw.
//
// Calibration bisects a single "disorder" knob d ∈ [0, 1] that widens the
// placement window (K = d) and ramps the placement noise up to the paper's
// 5% (noise = min(0.05, d)); the measured C is monotonically non-increasing
// in d, so bisection converges.
package gwl

import (
	"errors"
	"fmt"
	"math"

	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/stats"
)

// TableSpec is one row of the paper's Table 2.
type TableSpec struct {
	Name           string
	Pages          int64 // T
	RecordsPerPage int   // R
}

// Records returns N = T * R.
func (t TableSpec) Records() int64 { return t.Pages * int64(t.RecordsPerPage) }

// ColumnSpec is one row of the paper's Table 3 joined with its Table 2 row.
type ColumnSpec struct {
	Table       TableSpec
	Column      string
	Cardinality int64   // I ("Col Card")
	TargetC     float64 // published clustering factor, as a fraction
}

// Name returns the paper's TABLE.COLUMN label.
func (c ColumnSpec) Name() string { return c.Table.Name + "." + c.Column }

// Tables reproduces the paper's Table 2.
var Tables = map[string]TableSpec{
	"CMAC": {Name: "CMAC", Pages: 774, RecordsPerPage: 20},
	"CAGD": {Name: "CAGD", Pages: 1093, RecordsPerPage: 104},
	"INAP": {Name: "INAP", Pages: 1945, RecordsPerPage: 76},
	"PLON": {Name: "PLON", Pages: 4857, RecordsPerPage: 123},
}

// Columns reproduces the paper's Table 3, in the paper's order.
var Columns = []ColumnSpec{
	{Table: Tables["CMAC"], Column: "BRAN", Cardinality: 131, TargetC: 0.433},
	{Table: Tables["CMAC"], Column: "CEDT", Cardinality: 2829, TargetC: 0.646},
	{Table: Tables["CAGD"], Column: "CMAN", Cardinality: 6155, TargetC: 0.353},
	{Table: Tables["CAGD"], Column: "POLN", Cardinality: 110074, TargetC: 0.996},
	{Table: Tables["INAP"], Column: "APLD", Cardinality: 729, TargetC: 0.794},
	{Table: Tables["INAP"], Column: "MALD", Cardinality: 517, TargetC: 0.643},
	{Table: Tables["INAP"], Column: "UWID", Cardinality: 60, TargetC: 0.908},
	{Table: Tables["PLON"], Column: "CLID", Cardinality: 437654, TargetC: 0.236},
}

// ColumnByName finds a spec by its TABLE.COLUMN label.
func ColumnByName(name string) (ColumnSpec, error) {
	for _, c := range Columns {
		if c.Name() == name {
			return c, nil
		}
	}
	return ColumnSpec{}, fmt.Errorf("gwl: unknown column %q", name)
}

// Figure1Columns are the five columns whose FPF curves the paper plots in
// Figure 1.
var Figure1Columns = []string{"CMAC.BRAN", "CMAC.CEDT", "INAP.APLD", "INAP.MALD", "INAP.UWID"}

// Options configures a reconstruction.
type Options struct {
	// Seed drives the deterministic generator (default 1 when zero —
	// seed 0 is remapped so the zero value is usable).
	Seed int64
	// Scale divides the table's page count (and proportionally the records
	// and cardinality) to speed up tests; 0 or 1 = full published size.
	Scale int
	// Tolerance is the acceptable |measured C − target C| (default 0.02).
	Tolerance float64
	// MaxIterations bounds the bisection (default 24).
	MaxIterations int
}

func (o *Options) normalize() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.02
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 24
	}
}

// Reconstruction is a calibrated synthetic stand-in for one GWL column.
type Reconstruction struct {
	// Spec is the published specification being matched.
	Spec ColumnSpec
	// Dataset is the calibrated placement (possibly scaled down).
	Dataset *datagen.Dataset
	// Stats is the LRU-Fit catalog entry measured on the reconstruction.
	Stats *stats.IndexStats
	// MeasuredC is the clustering factor of the reconstruction.
	MeasuredC float64
	// Disorder is the calibrated knob value.
	Disorder float64
	// T, N, I are the (possibly scaled) shape parameters actually used.
	T, N, I int64
}

// ErrCalibrationFailed reports that bisection could not reach the target C
// within tolerance.
var ErrCalibrationFailed = errors.New("gwl: calibration failed")

// Reconstruct calibrates one column.
func Reconstruct(spec ColumnSpec, opts Options) (*Reconstruction, error) {
	opts.normalize()
	t := spec.Table.Pages / int64(opts.Scale)
	if t < 8 {
		t = 8
	}
	n := t * int64(spec.Table.RecordsPerPage)
	i := spec.Cardinality
	if opts.Scale > 1 {
		// Preserve I/N, the duplicates-per-key regime.
		i = int64(math.Round(float64(spec.Cardinality) * float64(n) / float64(spec.Table.Records())))
	}
	if i < 1 {
		i = 1
	}
	if i > n {
		i = n
	}

	eval := func(d float64) (*datagen.Dataset, *stats.IndexStats, error) {
		cfg := datagen.Config{
			Name:  spec.Name(),
			N:     n,
			I:     i,
			R:     spec.Table.RecordsPerPage,
			Theta: 0,
			K:     d,
			Seed:  opts.Seed,
		}
		noise := math.Min(datagen.DefaultNoise, d)
		if noise == 0 {
			cfg.Noise = datagen.NoNoise
		} else {
			cfg.Noise = noise
		}
		ds, err := datagen.GenerateDataset(cfg)
		if err != nil {
			return nil, nil, err
		}
		st, err := core.LRUFit(ds.Trace(), core.Meta{
			Table: spec.Table.Name, Column: spec.Column, T: t, N: n, I: i,
		}, core.Options{})
		if err != nil {
			return nil, nil, err
		}
		return ds, st, nil
	}

	lo, hi := 0.0, 1.0
	var best *Reconstruction
	for iter := 0; iter < opts.MaxIterations; iter++ {
		var d float64
		switch iter {
		case 0:
			d = lo
		case 1:
			d = hi
		default:
			d = (lo + hi) / 2
		}
		ds, st, err := eval(d)
		if err != nil {
			return nil, err
		}
		r := &Reconstruction{
			Spec: spec, Dataset: ds, Stats: st,
			MeasuredC: st.C, Disorder: d, T: t, N: n, I: i,
		}
		if best == nil || math.Abs(st.C-spec.TargetC) < math.Abs(best.MeasuredC-spec.TargetC) {
			best = r
		}
		if math.Abs(st.C-spec.TargetC) <= opts.Tolerance {
			return r, nil
		}
		if iter >= 1 {
			if st.C > spec.TargetC {
				lo = d // too clustered: more disorder
			} else {
				hi = d
			}
		}
	}
	if best != nil && math.Abs(best.MeasuredC-spec.TargetC) <= 3*opts.Tolerance {
		return best, nil
	}
	got := math.NaN()
	if best != nil {
		got = best.MeasuredC
	}
	return nil, fmt.Errorf("%w: %s target C=%.3f, best %.3f", ErrCalibrationFailed, spec.Name(), spec.TargetC, got)
}

// ReconstructAll calibrates every published column.
func ReconstructAll(opts Options) ([]*Reconstruction, error) {
	out := make([]*Reconstruction, 0, len(Columns))
	for _, spec := range Columns {
		r, err := Reconstruct(spec, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
