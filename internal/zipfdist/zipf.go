// Package zipfdist implements the generalized Zipf distribution of Knuth
// (The Art of Computer Programming, Vol. 3), used by the paper's synthetic
// data generator to model skew in the distribution of duplicates per
// distinct value:
//
//	"Knuth (1973) described a generalized Zipf distribution with a parameter
//	 θ that can be used to model distributions such as the uniform
//	 distribution (θ = 0) or the '80-20' distribution (θ = 0.86)."
//
// Rank i (1-based) has probability p_i = c / i^θ with c normalizing the sum
// to 1. θ = 0 degenerates to uniform; θ = 1 is classical Zipf.
package zipfdist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrBadParams reports invalid distribution parameters.
var ErrBadParams = errors.New("zipfdist: invalid parameters")

// Zipf is a generalized Zipf distribution over ranks 1..N.
type Zipf struct {
	n     int64
	theta float64
	cum   []float64 // cum[i] = P(rank <= i+1)
}

// New builds the distribution over n ranks with skew parameter theta >= 0.
func New(n int64, theta float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n = %d", ErrBadParams, n)
	}
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return nil, fmt.Errorf("%w: theta = %g", ErrBadParams, theta)
	}
	z := &Zipf{n: n, theta: theta, cum: make([]float64, n)}
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += math.Pow(float64(i), -theta)
		z.cum[i-1] = sum
	}
	for i := range z.cum {
		z.cum[i] /= sum
	}
	z.cum[n-1] = 1 // exact, despite rounding
	return z, nil
}

// N reports the number of ranks.
func (z *Zipf) N() int64 { return z.n }

// Theta reports the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// P returns the probability of rank i (1-based).
func (z *Zipf) P(i int64) float64 {
	if i < 1 || i > z.n {
		return 0
	}
	if i == 1 {
		return z.cum[0]
	}
	return z.cum[i-1] - z.cum[i-2]
}

// CDF returns P(rank <= i).
func (z *Zipf) CDF(i int64) float64 {
	if i < 1 {
		return 0
	}
	if i > z.n {
		return 1
	}
	return z.cum[i-1]
}

// Sample draws a rank in [1, N] by inverse-CDF binary search.
func (z *Zipf) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	idx := sort.SearchFloat64s(z.cum, u)
	if idx >= int(z.n) {
		idx = int(z.n) - 1
	}
	return int64(idx) + 1
}

// Frequencies apportions total records across distinct ranks proportionally
// to the Zipf probabilities using largest-remainder rounding, guaranteeing
// every rank receives at least one record (a distinct value with zero
// duplicates would not be a distinct value of the dataset). It requires
// total >= distinct.
func Frequencies(total, distinct int64, theta float64) ([]int64, error) {
	if total < distinct {
		return nil, fmt.Errorf("%w: total %d < distinct %d", ErrBadParams, total, distinct)
	}
	z, err := New(distinct, theta)
	if err != nil {
		return nil, err
	}
	counts := make([]int64, distinct)
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, distinct)
	// Reserve one record per rank up front, apportion the rest.
	rest := float64(total - distinct)
	assigned := int64(0)
	for i := int64(0); i < distinct; i++ {
		exact := rest * z.P(i+1)
		fl := math.Floor(exact)
		counts[i] = 1 + int64(fl)
		assigned += 1 + int64(fl)
		fracs[i] = frac{idx: int(i), rem: exact - fl}
	}
	// Distribute the remainder by largest fractional part (ties by rank).
	left := total - assigned
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx
	})
	for i := int64(0); i < left; i++ {
		counts[fracs[i%distinct].idx]++
	}
	return counts, nil
}

// EightyTwenty is the theta value Knuth associates with the "80-20" rule,
// used by the paper's skewed synthetic datasets.
const EightyTwenty = 0.86
