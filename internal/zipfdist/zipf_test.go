package zipfdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Error("New(0) accepted")
	}
	if _, err := New(10, -1); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := New(10, math.NaN()); err == nil {
		t.Error("NaN theta accepted")
	}
}

func TestUniformWhenThetaZero(t *testing.T) {
	z, err := New(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int64{1, 50, 100} {
		if p := z.P(i); math.Abs(p-0.01) > 1e-12 {
			t.Errorf("P(%d) = %g, want 0.01", i, p)
		}
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.86, 1, 2} {
		z, err := New(1000, theta)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := int64(1); i <= 1000; i++ {
			sum += z.P(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%g: sum P = %g", theta, sum)
		}
		if z.CDF(1000) != 1 {
			t.Errorf("theta=%g: CDF(N) = %g", theta, z.CDF(1000))
		}
	}
}

func TestMonotoneDecreasingProbabilities(t *testing.T) {
	z, err := New(500, 0.86)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(2); i <= 500; i++ {
		if z.P(i) > z.P(i-1)+1e-15 {
			t.Fatalf("P(%d) = %g > P(%d) = %g", i, z.P(i), i-1, z.P(i-1))
		}
	}
}

func TestEightyTwentySkew(t *testing.T) {
	// With theta = 0.86, the top 20% of ranks should carry roughly 80% of
	// the mass (the motivation for the parameter value).
	z, err := New(10_000, EightyTwenty)
	if err != nil {
		t.Fatal(err)
	}
	top20 := z.CDF(2000)
	if top20 < 0.70 || top20 > 0.90 {
		t.Errorf("top-20%% mass = %g, want ~0.8", top20)
	}
}

func TestPOutOfRange(t *testing.T) {
	z, _ := New(10, 1)
	if z.P(0) != 0 || z.P(11) != 0 {
		t.Error("out-of-range P != 0")
	}
	if z.CDF(0) != 0 || z.CDF(11) != 1 {
		t.Error("out-of-range CDF wrong")
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	z, err := New(100, 0.86)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const draws = 200_000
	counts := make([]int64, 101)
	for i := 0; i < draws; i++ {
		r := z.Sample(rng)
		if r < 1 || r > 100 {
			t.Fatalf("sample out of range: %d", r)
		}
		counts[r]++
	}
	// Chi-square-lite: empirical freq within 15% of expected for big ranks.
	for _, i := range []int64{1, 2, 5, 10} {
		expected := z.P(i) * draws
		got := float64(counts[i])
		if math.Abs(got-expected)/expected > 0.15 {
			t.Errorf("rank %d: observed %g, expected %g", i, got, expected)
		}
	}
}

func TestFrequenciesExactTotalAndPositivity(t *testing.T) {
	for _, theta := range []float64{0, 0.86} {
		for _, tc := range []struct{ total, distinct int64 }{
			{1_000_000, 10_000}, {100, 100}, {101, 100}, {50, 7},
		} {
			counts, err := Frequencies(tc.total, tc.distinct, theta)
			if err != nil {
				t.Fatalf("Frequencies(%d, %d, %g): %v", tc.total, tc.distinct, theta, err)
			}
			var sum int64
			for i, c := range counts {
				if c < 1 {
					t.Fatalf("rank %d has count %d", i+1, c)
				}
				sum += c
			}
			if sum != tc.total {
				t.Errorf("theta=%g total=%d: sum = %d", theta, tc.total, sum)
			}
		}
	}
}

func TestFrequenciesSkewOrdering(t *testing.T) {
	counts, err := Frequencies(100_000, 100, 0.86)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] <= counts[99] {
		t.Errorf("rank 1 count %d <= rank 100 count %d", counts[0], counts[99])
	}
	// Uniform: all equal.
	uni, err := Frequencies(100_000, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range uni {
		if c != 1000 {
			t.Errorf("uniform rank %d = %d, want 1000", i+1, c)
		}
	}
}

func TestFrequenciesValidation(t *testing.T) {
	if _, err := Frequencies(5, 10, 0); err == nil {
		t.Error("total < distinct accepted")
	}
}

// Property: frequencies are non-increasing with rank for any theta >= 0
// (allowing +-1 rounding jitter from largest-remainder).
func TestFrequenciesAlmostMonotoneProperty(t *testing.T) {
	f := func(seedRaw uint8, thetaRaw uint8) bool {
		distinct := int64(seedRaw)%200 + 2
		total := distinct * (1 + int64(thetaRaw)%50)
		theta := float64(thetaRaw) / 128
		counts, err := Frequencies(total, distinct, theta)
		if err != nil {
			return false
		}
		for i := 1; i < len(counts); i++ {
			if counts[i] > counts[i-1]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
