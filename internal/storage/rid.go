// Package storage implements the physical storage substrate used throughout
// the EPFIS reproduction: fixed-size slotted pages, record identifiers,
// page stores, heap files, and tables.
//
// The layout is deliberately conventional for a relational engine: a table is
// a heap file of slotted pages; each record is addressed by a RID (page
// number, slot number). Index scans resolve index entries to RIDs and fetch
// the containing data pages through a buffer pool (package buffer); counting
// those fetches is the ground truth that the estimation algorithms in
// internal/core and internal/baselines are judged against.
package storage

import "fmt"

// PageID identifies a page within a page store. Page numbering starts at 0.
type PageID uint32

// InvalidPageID is a sentinel for "no page".
const InvalidPageID = PageID(^uint32(0))

// RID is a record identifier: the page that holds the record and the slot
// index of the record within that page's slot directory.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID in the conventional (page,slot) form.
func (r RID) String() string {
	return fmt.Sprintf("(%d,%d)", r.Page, r.Slot)
}

// Less orders RIDs by page then slot. It defines the physical order of
// records in a heap file.
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// Compare returns -1, 0, or +1 according to the physical order of the RIDs.
func (r RID) Compare(o RID) int {
	switch {
	case r.Less(o):
		return -1
	case o.Less(r):
		return 1
	default:
		return 0
	}
}
