package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPageEmpty(t *testing.T) {
	p := NewPage(7, PageKindHeap)
	if p.Kind() != PageKindHeap {
		t.Errorf("Kind = %d, want %d", p.Kind(), PageKindHeap)
	}
	if p.ID() != 7 {
		t.Errorf("ID = %d, want 7", p.ID())
	}
	if p.NumSlots() != 0 {
		t.Errorf("NumSlots = %d, want 0", p.NumSlots())
	}
	if got, want := p.FreeSpace(), PageSize-pageHeaderSize-slotEntrySize; got != want {
		t.Errorf("FreeSpace = %d, want %d", got, want)
	}
}

func TestPageInsertAndRecord(t *testing.T) {
	p := NewPage(0, PageKindHeap)
	recs := [][]byte{
		[]byte("alpha"),
		[]byte(""),
		bytes.Repeat([]byte{0xAB}, 100),
		[]byte("omega"),
	}
	var slots []uint16
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatalf("Insert(%q): %v", r, err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Record(s)
		if err != nil {
			t.Fatalf("Record(%d): %v", s, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Errorf("Record(%d) = %q, want %q", s, got, recs[i])
		}
	}
}

func TestPageInsertUntilFull(t *testing.T) {
	p := NewPage(0, PageKindHeap)
	rec := make([]byte, 100)
	n := 0
	for {
		_, err := p.Insert(rec)
		if err == ErrPageFull {
			break
		}
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		n++
		if n > PageSize {
			t.Fatal("page never filled")
		}
	}
	want := (PageSize - pageHeaderSize) / (100 + slotEntrySize)
	if n != want {
		t.Errorf("inserted %d records of 100 bytes, want %d", n, want)
	}
}

func TestPageRecordTooBig(t *testing.T) {
	p := NewPage(0, PageKindHeap)
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); err != ErrRecordTooBig {
		t.Errorf("Insert(oversize) error = %v, want ErrRecordTooBig", err)
	}
	if _, err := p.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Errorf("Insert(max size) error = %v, want nil", err)
	}
}

func TestPageDelete(t *testing.T) {
	p := NewPage(0, PageKindHeap)
	s, err := p.Insert([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(s); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := p.Record(s); err == nil {
		t.Error("Record on deleted slot succeeded, want error")
	}
	if err := p.Delete(99); err == nil {
		t.Error("Delete(99) on empty directory succeeded, want error")
	}
}

func TestPageBadSlot(t *testing.T) {
	p := NewPage(0, PageKindHeap)
	if _, err := p.Record(0); err == nil {
		t.Error("Record(0) on empty page succeeded, want error")
	}
}

func TestPageRoundTrip(t *testing.T) {
	p := NewPage(3, PageKindBTreeLeaf)
	for i := 0; i < 10; i++ {
		if _, err := p.Insert([]byte{byte(i), byte(i * 2)}); err != nil {
			t.Fatal(err)
		}
	}
	q, err := FromBytes(p.Bytes())
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if q.ID() != 3 || q.Kind() != PageKindBTreeLeaf || q.NumSlots() != 10 {
		t.Errorf("round trip header mismatch: id=%d kind=%d slots=%d", q.ID(), q.Kind(), q.NumSlots())
	}
	for i := 0; i < 10; i++ {
		got, err := q.Record(uint16(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte{byte(i), byte(i * 2)}) {
			t.Errorf("slot %d = %v", i, got)
		}
	}
}

func TestPageChecksumDetectsCorruption(t *testing.T) {
	p := NewPage(1, PageKindHeap)
	if _, err := p.Insert([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), p.Bytes()...)
	img[200] ^= 0xFF
	if _, err := FromBytes(img); err == nil {
		t.Error("FromBytes on corrupted image succeeded, want checksum error")
	}
}

func TestFromBytesWrongLength(t *testing.T) {
	if _, err := FromBytes(make([]byte, 17)); err == nil {
		t.Error("FromBytes(short) succeeded, want error")
	}
}

// Property: any sequence of inserted records reads back identically, in order.
func TestPageInsertReadProperty(t *testing.T) {
	f := func(seed int64, sizes []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPage(0, PageKindHeap)
		var stored [][]byte
		for _, sz := range sizes {
			rec := make([]byte, int(sz))
			rng.Read(rec)
			if _, err := p.Insert(rec); err != nil {
				break // page filled; what's stored so far must still read back
			}
			stored = append(stored, rec)
		}
		for i, want := range stored {
			got, err := p.Record(uint16(i))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return p.NumSlots() == len(stored)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPayloadSizeFor(t *testing.T) {
	for _, r := range []int{1, 2, 3, 20, 40, 76, 80, 104, 123} {
		payload, err := PayloadSizeFor(r)
		if err != nil {
			t.Fatalf("PayloadSizeFor(%d): %v", r, err)
		}
		p := NewPage(0, PageKindHeap)
		rec := EncodeRecord(Record{Key: 1, Payload: make([]byte, payload)})
		n := 0
		for {
			if _, err := p.Insert(rec); err != nil {
				break
			}
			n++
		}
		if n != r {
			t.Errorf("PayloadSizeFor(%d) = %d bytes but %d records fit", r, payload, n)
		}
	}
}

func TestPayloadSizeForErrors(t *testing.T) {
	if _, err := PayloadSizeFor(0); err == nil {
		t.Error("PayloadSizeFor(0) succeeded")
	}
	if _, err := PayloadSizeFor(PageSize); err == nil {
		t.Error("PayloadSizeFor(PageSize) succeeded")
	}
}

func TestRIDOrdering(t *testing.T) {
	a := RID{Page: 1, Slot: 5}
	b := RID{Page: 1, Slot: 6}
	c := RID{Page: 2, Slot: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("RID ordering broken")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("RID Compare broken")
	}
	if a.String() != "(1,5)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestRecordRoundTrip(t *testing.T) {
	f := func(key int64, payload []byte) bool {
		got, err := DecodeRecord(EncodeRecord(Record{Key: key, Payload: payload}))
		return err == nil && got.Key == key && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRecordShort(t *testing.T) {
	if _, err := DecodeRecord([]byte{1, 2, 3}); err == nil {
		t.Error("DecodeRecord(short) succeeded")
	}
}
