package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// PageStore is the unbuffered page persistence interface. A buffer pool
// (package buffer) sits on top of a PageStore and counts every ReadPage as a
// physical page fetch.
type PageStore interface {
	// ReadPage copies page id into dst. Implementations must return
	// ErrNoSuchPage (possibly wrapped) for unallocated ids.
	ReadPage(id PageID, dst *Page) error
	// WritePage persists the page under the given id, which must have been
	// allocated.
	WritePage(id PageID, src *Page) error
	// Allocate reserves a fresh page id.
	Allocate() (PageID, error)
	// NumPages reports the number of allocated pages.
	NumPages() int
}

// MemStore is an in-memory PageStore. It is the default substrate for the
// experiments: the paper's ground truth is a count of LRU buffer misses, not
// real disk time, so an in-memory store reproduces it exactly while keeping
// multi-million-record sweeps fast.
type MemStore struct {
	mu    sync.RWMutex
	pages []*Page
}

// NewMemStore returns an empty in-memory page store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadPage implements PageStore.
func (s *MemStore) ReadPage(id PageID, dst *Page) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.pages) || s.pages[id] == nil {
		return fmt.Errorf("%w: page %d", ErrNoSuchPage, id)
	}
	dst.CopyFrom(s.pages[id])
	return nil
}

// WritePage implements PageStore.
func (s *MemStore) WritePage(id PageID, src *Page) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("%w: page %d not allocated", ErrNoSuchPage, id)
	}
	cp := &Page{}
	cp.CopyFrom(src)
	s.pages[id] = cp
	return nil
}

// Allocate implements PageStore.
func (s *MemStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := PageID(len(s.pages))
	s.pages = append(s.pages, NewPage(id, PageKindFree))
	return id, nil
}

// NumPages implements PageStore.
func (s *MemStore) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// FileStore is a file-backed PageStore using a single flat file of
// PageSize-aligned pages. It exists so that the library is a complete storage
// engine, not only a simulator; the experiments default to MemStore.
type FileStore struct {
	mu   sync.Mutex
	f    *os.File
	n    int
	sync bool
}

// OpenFileStore opens (creating if necessary) a page file at path.
// If syncWrites is true every WritePage is followed by an fsync.
func OpenFileStore(path string, syncWrites bool) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat page file: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: page file %q size %d is not a multiple of %d", path, st.Size(), PageSize)
	}
	return &FileStore{f: f, n: int(st.Size() / PageSize), sync: syncWrites}, nil
}

// ReadPage implements PageStore, verifying the stored checksum.
func (s *FileStore) ReadPage(id PageID, dst *Page) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= s.n {
		return fmt.Errorf("%w: page %d", ErrNoSuchPage, id)
	}
	var raw [PageSize]byte
	if _, err := s.f.ReadAt(raw[:], int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p, err := FromBytes(raw[:])
	if err != nil {
		return fmt.Errorf("storage: page %d: %w", id, err)
	}
	dst.CopyFrom(p)
	return nil
}

// WritePage implements PageStore.
func (s *FileStore) WritePage(id PageID, src *Page) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= s.n {
		return fmt.Errorf("%w: page %d not allocated", ErrNoSuchPage, id)
	}
	if _, err := s.f.WriteAt(src.Bytes(), int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("storage: sync page file: %w", err)
		}
	}
	return nil
}

// Allocate implements PageStore by extending the file with a sealed empty
// page.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := PageID(s.n)
	p := NewPage(id, PageKindFree)
	if _, err := s.f.WriteAt(p.Bytes(), int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: extend page file: %w", err)
	}
	s.n++
	return id, nil
}

// NumPages implements PageStore.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Close releases the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }
