package storage

import (
	"errors"
	"path/filepath"
	"testing"
)

func testStores(t *testing.T) map[string]PageStore {
	t.Helper()
	fs, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.db"), false)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]PageStore{"mem": NewMemStore(), "file": fs}
}

func TestHeapFileAppendGet(t *testing.T) {
	for name, store := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			h := NewHeapFile(store)
			payload, err := PayloadSizeFor(20)
			if err != nil {
				t.Fatal(err)
			}
			var rids []RID
			const n = 105
			for i := 0; i < n; i++ {
				rid, err := h.Append(Record{Key: int64(i), Payload: make([]byte, payload)})
				if err != nil {
					t.Fatalf("Append(%d): %v", i, err)
				}
				rids = append(rids, rid)
			}
			if err := h.Flush(); err != nil {
				t.Fatal(err)
			}
			if h.NumRecords() != n {
				t.Errorf("NumRecords = %d, want %d", h.NumRecords(), n)
			}
			// 20 records/page, 105 records -> 6 pages.
			if h.NumPages() != 6 {
				t.Errorf("NumPages = %d, want 6", h.NumPages())
			}
			for i, rid := range rids {
				rec, err := h.Get(rid)
				if err != nil {
					t.Fatalf("Get(%v): %v", rid, err)
				}
				if rec.Key != int64(i) {
					t.Errorf("Get(%v).Key = %d, want %d", rid, rec.Key, i)
				}
			}
		})
	}
}

func TestHeapFileRIDsPhysicallyOrdered(t *testing.T) {
	store := NewMemStore()
	h := NewHeapFile(store)
	var prev RID
	for i := 0; i < 300; i++ {
		rid, err := h.Append(Record{Key: int64(i), Payload: make([]byte, 64)})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && !prev.Less(rid) {
			t.Fatalf("append order not physical: %v then %v", prev, rid)
		}
		prev = rid
	}
}

func TestMemStoreErrors(t *testing.T) {
	s := NewMemStore()
	var p Page
	if err := s.ReadPage(0, &p); !errors.Is(err, ErrNoSuchPage) {
		t.Errorf("ReadPage(0) err = %v, want ErrNoSuchPage", err)
	}
	if err := s.WritePage(5, NewPage(5, PageKindHeap)); !errors.Is(err, ErrNoSuchPage) {
		t.Errorf("WritePage(5) err = %v, want ErrNoSuchPage", err)
	}
}

func TestFileStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	fs, err := OpenFileStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPage(id, PageKindHeap)
	if _, err := p.Insert([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WritePage(id, p); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if fs2.NumPages() != 1 {
		t.Fatalf("NumPages after reopen = %d, want 1", fs2.NumPages())
	}
	var q Page
	if err := fs2.ReadPage(id, &q); err != nil {
		t.Fatal(err)
	}
	rec, err := q.Record(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec) != "durable" {
		t.Errorf("record = %q, want durable", rec)
	}
}

func TestFileStoreBadSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ragged.db")
	if err := writeFile(path, make([]byte, PageSize+1)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, false); err == nil {
		t.Error("OpenFileStore on ragged file succeeded")
	}
}

func TestPlacedHeapBuilder(t *testing.T) {
	store := NewMemStore()
	b, err := NewPlacedHeapBuilder(store, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Capacity() != 3 || b.NumPages() != 4 {
		t.Fatalf("capacity=%d pages=%d", b.Capacity(), b.NumPages())
	}
	// Scatter records across pages out of order.
	placement := []int{2, 0, 2, 1, 3, 2, 0}
	var rids []RID
	for i, pg := range placement {
		rid, err := b.Place(pg, int64(i))
		if err != nil {
			t.Fatalf("Place(%d,%d): %v", pg, i, err)
		}
		rids = append(rids, rid)
	}
	// Page 2 now holds 3 records; a 4th must fail.
	if _, err := b.Place(2, 99); !errors.Is(err, ErrPagePlanFull) {
		t.Errorf("Place on full page err = %v, want ErrPagePlanFull", err)
	}
	ids, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("Finish returned %d ids", len(ids))
	}
	// Records must be readable and hold the right keys.
	for i, rid := range rids {
		var p Page
		if err := store.ReadPage(rid.Page, &p); err != nil {
			t.Fatal(err)
		}
		raw, err := p.Record(rid.Slot)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := DecodeRecord(raw)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Key != int64(i) {
			t.Errorf("record %d key = %d", i, rec.Key)
		}
	}
	// Placement must map RIDs to the planned pages.
	for i, pg := range placement {
		if rids[i].Page != ids[pg] {
			t.Errorf("record %d on page %d, want planned page %d", i, rids[i].Page, ids[pg])
		}
	}
	// Finish twice is idempotent; Place after Finish fails.
	if _, err := b.Finish(); err != nil {
		t.Errorf("second Finish: %v", err)
	}
	if _, err := b.Place(0, 1); err == nil {
		t.Error("Place after Finish succeeded")
	}
}

func TestPlacedHeapBuilderErrors(t *testing.T) {
	store := NewMemStore()
	if _, err := NewPlacedHeapBuilder(store, 0, 3); err == nil {
		t.Error("0 pages accepted")
	}
	b, err := NewPlacedHeapBuilder(store, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Place(-1, 0); err == nil {
		t.Error("negative page index accepted")
	}
	if _, err := b.Place(2, 0); err == nil {
		t.Error("out-of-range page index accepted")
	}
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}
