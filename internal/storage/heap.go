package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record is the logical tuple stored in the experiment tables: a single
// int64 key column (the indexed column) plus an opaque payload whose size is
// chosen to control the number of records per page, mirroring the paper's
// R = N/T parameter.
type Record struct {
	Key     int64
	Payload []byte
}

// EncodeRecord serializes a record: 8-byte little-endian key then payload.
func EncodeRecord(r Record) []byte {
	b := make([]byte, 8+len(r.Payload))
	binary.LittleEndian.PutUint64(b, uint64(r.Key))
	copy(b[8:], r.Payload)
	return b
}

// DecodeRecord parses a serialized record.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < 8 {
		return Record{}, fmt.Errorf("storage: record too short: %d bytes", len(b))
	}
	return Record{
		Key:     int64(binary.LittleEndian.Uint64(b)),
		Payload: append([]byte(nil), b[8:]...),
	}, nil
}

// PayloadSizeFor returns the payload size that makes exactly recordsPerPage
// records fit on one page (and recordsPerPage+1 not fit).
// It returns an error when recordsPerPage is out of the feasible range.
func PayloadSizeFor(recordsPerPage int) (int, error) {
	if recordsPerPage < 1 {
		return 0, fmt.Errorf("storage: records per page must be >= 1, got %d", recordsPerPage)
	}
	usable := PageSize - pageHeaderSize
	// Each record consumes len(rec) bytes plus one slot entry.
	per := usable/recordsPerPage - slotEntrySize
	payload := per - 8
	if payload < 0 {
		return 0, fmt.Errorf("storage: %d records per page does not fit in a %d-byte page", recordsPerPage, PageSize)
	}
	// Verify one more record would not fit.
	if (recordsPerPage+1)*(per+slotEntrySize) <= usable {
		// per was rounded down so this should not happen, but guard anyway.
		return 0, fmt.Errorf("storage: internal error sizing %d records per page", recordsPerPage)
	}
	return payload, nil
}

// HeapFile is a heap of slotted pages within a PageStore. Records append to
// the last page until it fills, then a new page is allocated. The heap tracks
// its own page ids so several heaps (and B-trees) can share one store.
type HeapFile struct {
	store   PageStore
	pageIDs []PageID
	last    *Page // cached image of the final page, nil when empty
	count   int
}

// NewHeapFile creates an empty heap file in the store.
func NewHeapFile(store PageStore) *HeapFile {
	return &HeapFile{store: store}
}

// NumPages reports the number of pages in this heap (the paper's T).
func (h *HeapFile) NumPages() int { return len(h.pageIDs) }

// NumRecords reports the number of records inserted (the paper's N).
func (h *HeapFile) NumRecords() int { return h.count }

// PageIDs returns the heap's page ids in physical order. The slice is shared;
// callers must not mutate it.
func (h *HeapFile) PageIDs() []PageID { return h.pageIDs }

// Append inserts a record at the end of the heap and returns its RID.
func (h *HeapFile) Append(rec Record) (RID, error) {
	enc := EncodeRecord(rec)
	if h.last == nil || len(enc) > h.last.FreeSpace() {
		if err := h.flushLast(); err != nil {
			return RID{}, err
		}
		id, err := h.store.Allocate()
		if err != nil {
			return RID{}, fmt.Errorf("storage: heap append: %w", err)
		}
		h.pageIDs = append(h.pageIDs, id)
		h.last = NewPage(id, PageKindHeap)
	}
	slot, err := h.last.Insert(enc)
	if err != nil {
		return RID{}, fmt.Errorf("storage: heap append: %w", err)
	}
	h.count++
	return RID{Page: h.last.ID(), Slot: slot}, nil
}

func (h *HeapFile) flushLast() error {
	if h.last == nil {
		return nil
	}
	if err := h.store.WritePage(h.last.ID(), h.last); err != nil {
		return fmt.Errorf("storage: heap flush: %w", err)
	}
	return nil
}

// Flush persists any buffered tail page. Call after the final Append.
func (h *HeapFile) Flush() error { return h.flushLast() }

// Get fetches the record at rid directly from the store (unbuffered).
// Scans that must count page fetches go through a buffer pool instead.
func (h *HeapFile) Get(rid RID) (Record, error) {
	var p Page
	if err := h.store.ReadPage(rid.Page, &p); err != nil {
		return Record{}, err
	}
	raw, err := p.Record(rid.Slot)
	if err != nil {
		return Record{}, err
	}
	return DecodeRecord(raw)
}

// ErrPagePlanFull reports that a placement exceeded a page's planned capacity.
var ErrPagePlanFull = errors.New("storage: planned page is full")

// PlacedHeapBuilder materializes a table whose record-to-page assignment is
// chosen by the caller, which is how the synthetic data generator realizes
// the paper's window placement model (records of one key value scattered over
// a window of pages). All pages are pre-allocated; Place assigns a record to
// a specific page index; Finish seals every page.
type PlacedHeapBuilder struct {
	store    PageStore
	pages    []*Page
	ids      []PageID
	capacity int
	payload  int
	fill     []int
	count    int
	done     bool
}

// NewPlacedHeapBuilder pre-allocates numPages pages each planned to hold
// exactly recordsPerPage records.
func NewPlacedHeapBuilder(store PageStore, numPages, recordsPerPage int) (*PlacedHeapBuilder, error) {
	if numPages < 1 {
		return nil, fmt.Errorf("storage: placed heap needs >= 1 page, got %d", numPages)
	}
	payload, err := PayloadSizeFor(recordsPerPage)
	if err != nil {
		return nil, err
	}
	b := &PlacedHeapBuilder{
		store:    store,
		pages:    make([]*Page, numPages),
		ids:      make([]PageID, numPages),
		capacity: recordsPerPage,
		payload:  payload,
		fill:     make([]int, numPages),
	}
	for i := range b.pages {
		id, err := store.Allocate()
		if err != nil {
			return nil, fmt.Errorf("storage: placed heap allocate: %w", err)
		}
		b.ids[i] = id
		b.pages[i] = NewPage(id, PageKindHeap)
	}
	return b, nil
}

// Capacity reports the planned records-per-page.
func (b *PlacedHeapBuilder) Capacity() int { return b.capacity }

// NumPages reports the number of pre-allocated pages.
func (b *PlacedHeapBuilder) NumPages() int { return len(b.pages) }

// Fill reports how many records have been placed on page index i.
func (b *PlacedHeapBuilder) Fill(i int) int { return b.fill[i] }

// Place stores a record with the given key on the page with the given index
// (0-based position within this heap, not the global PageID) and returns its
// RID.
func (b *PlacedHeapBuilder) Place(pageIdx int, key int64) (RID, error) {
	return b.PlaceWith(pageIdx, key, 0)
}

// PlaceWith is Place with a second column value stored in the leading bytes
// of the record payload (the paper's minor index column b; see
// btree.Entry.Included).
func (b *PlacedHeapBuilder) PlaceWith(pageIdx int, key int64, second uint32) (RID, error) {
	if b.done {
		return RID{}, errors.New("storage: placed heap already finished")
	}
	if pageIdx < 0 || pageIdx >= len(b.pages) {
		return RID{}, fmt.Errorf("storage: page index %d out of range [0,%d)", pageIdx, len(b.pages))
	}
	if b.fill[pageIdx] >= b.capacity {
		return RID{}, fmt.Errorf("%w: index %d", ErrPagePlanFull, pageIdx)
	}
	rec := Record{Key: key, Payload: make([]byte, b.payload)}
	if len(rec.Payload) >= 4 {
		binary.LittleEndian.PutUint32(rec.Payload[:4], second)
	}
	slot, err := b.pages[pageIdx].Insert(EncodeRecord(rec))
	if err != nil {
		return RID{}, fmt.Errorf("storage: place on page %d: %w", pageIdx, err)
	}
	b.fill[pageIdx]++
	b.count++
	return RID{Page: b.ids[pageIdx], Slot: slot}, nil
}

// SecondColumn extracts the minor column value stored by PlaceWith, or 0
// when the payload is too small to carry one.
func (r Record) SecondColumn() uint32 {
	if len(r.Payload) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(r.Payload[:4])
}

// Finish writes every page to the store and returns the heap's page ids in
// physical order.
func (b *PlacedHeapBuilder) Finish() ([]PageID, error) {
	if b.done {
		return b.ids, nil
	}
	for i, p := range b.pages {
		if err := b.store.WritePage(b.ids[i], p); err != nil {
			return nil, fmt.Errorf("storage: placed heap finish: %w", err)
		}
	}
	b.done = true
	return b.ids, nil
}

// NumRecords reports the number of records placed so far.
func (b *PlacedHeapBuilder) NumRecords() int { return b.count }
