package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PageSize is the fixed size in bytes of every page in the system. 4 KiB is
// the page size assumed throughout the experiments (the paper's figures are
// expressed in pages, so the absolute size only affects record capacity).
const PageSize = 4096

// Page kinds stored in the page header. The storage layer itself only
// interprets PageKindHeap; the B-tree layer stamps its own kinds so that a
// corrupted or misdirected read is detected instead of misinterpreted.
const (
	PageKindFree uint8 = iota
	PageKindHeap
	PageKindBTreeLeaf
	PageKindBTreeInternal
	PageKindMeta
)

// Page header layout (little endian):
//
//	offset 0  uint32  checksum (CRC-32C of bytes [8, PageSize))
//	offset 4  uint8   kind
//	offset 5  uint8   reserved
//	offset 6  uint16  slot count
//	offset 8  uint32  page id (self reference, for diagnostics)
//	offset 12 uint16  free-space offset (start of unused region)
//	offset 14 uint16  reserved
//	offset 16 ...     record heap grows upward from here
//
// The slot directory grows downward from the end of the page; each slot is
// 4 bytes: uint16 record offset, uint16 record length. A slot with offset 0
// is a dead (deleted) slot.
const (
	pageHeaderSize = 16
	slotEntrySize  = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Common storage errors.
var (
	ErrPageFull     = errors.New("storage: page full")
	ErrBadChecksum  = errors.New("storage: page checksum mismatch")
	ErrBadSlot      = errors.New("storage: invalid slot")
	ErrRecordTooBig = errors.New("storage: record larger than page capacity")
	ErrNoSuchPage   = errors.New("storage: no such page")
)

// Page is an in-memory image of one fixed-size slotted page.
type Page struct {
	buf [PageSize]byte
}

// NewPage returns an initialized, empty page of the given kind with the given
// self-identifying id.
func NewPage(id PageID, kind uint8) *Page {
	p := &Page{}
	p.buf[4] = kind
	binary.LittleEndian.PutUint16(p.buf[6:8], 0)
	binary.LittleEndian.PutUint32(p.buf[8:12], uint32(id))
	binary.LittleEndian.PutUint16(p.buf[12:14], pageHeaderSize)
	return p
}

// Kind reports the page kind stamped in the header.
func (p *Page) Kind() uint8 { return p.buf[4] }

// ID reports the self-identifying page id stored in the header.
func (p *Page) ID() PageID {
	return PageID(binary.LittleEndian.Uint32(p.buf[8:12]))
}

// NumSlots reports the number of slots in the slot directory, including dead
// slots.
func (p *Page) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[6:8]))
}

func (p *Page) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.buf[6:8], uint16(n))
}

func (p *Page) freeOffset() int {
	return int(binary.LittleEndian.Uint16(p.buf[12:14]))
}

func (p *Page) setFreeOffset(off int) {
	binary.LittleEndian.PutUint16(p.buf[12:14], uint16(off))
}

func (p *Page) slotBase(slot int) int {
	return PageSize - (slot+1)*slotEntrySize
}

// FreeSpace reports the number of payload bytes that can still be inserted,
// accounting for the slot-directory entry a new record would need
// (slotBase of the next slot already reserves that entry's 4 bytes).
func (p *Page) FreeSpace() int {
	free := p.slotBase(p.NumSlots()) - p.freeOffset()
	if free < 0 {
		return 0
	}
	return free
}

// MaxRecordSize is the largest record payload a single empty page can hold.
const MaxRecordSize = PageSize - pageHeaderSize - slotEntrySize

// Insert appends a record to the page and returns its slot number.
// It fails with ErrPageFull when the record does not fit.
func (p *Page) Insert(rec []byte) (uint16, error) {
	if len(rec) > MaxRecordSize {
		return 0, ErrRecordTooBig
	}
	if len(rec) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	slot := p.NumSlots()
	off := p.freeOffset()
	copy(p.buf[off:], rec)
	base := p.slotBase(slot)
	binary.LittleEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], uint16(len(rec)))
	p.setFreeOffset(off + len(rec))
	p.setNumSlots(slot + 1)
	return uint16(slot), nil
}

// Record returns the payload stored in the given slot. The returned slice
// aliases the page buffer and must not be retained across page reuse.
func (p *Page) Record(slot uint16) ([]byte, error) {
	if int(slot) >= p.NumSlots() {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, p.NumSlots())
	}
	base := p.slotBase(int(slot))
	off := int(binary.LittleEndian.Uint16(p.buf[base : base+2]))
	length := int(binary.LittleEndian.Uint16(p.buf[base+2 : base+4]))
	if off == 0 {
		return nil, fmt.Errorf("%w: slot %d is dead", ErrBadSlot, slot)
	}
	if off < pageHeaderSize || off+length > PageSize-p.NumSlots()*slotEntrySize {
		return nil, fmt.Errorf("%w: slot %d points outside record area", ErrBadSlot, slot)
	}
	return p.buf[off : off+length], nil
}

// Delete marks the slot dead. The space is not reclaimed (no compaction);
// the experiments never require in-place updates, but deletion support keeps
// the substrate honest for general use.
func (p *Page) Delete(slot uint16) error {
	if int(slot) >= p.NumSlots() {
		return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, p.NumSlots())
	}
	base := p.slotBase(int(slot))
	binary.LittleEndian.PutUint16(p.buf[base:base+2], 0)
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], 0)
	return nil
}

// Bytes returns the raw page image with the checksum freshly sealed.
func (p *Page) Bytes() []byte {
	p.seal()
	return p.buf[:]
}

// RawBody returns the page bytes after the checksum field; used by tests.
func (p *Page) RawBody() []byte { return p.buf[8:] }

func (p *Page) seal() {
	sum := crc32.Checksum(p.buf[8:], castagnoli)
	binary.LittleEndian.PutUint32(p.buf[0:4], sum)
}

// FromBytes deserializes a page image, verifying length and checksum.
func FromBytes(b []byte) (*Page, error) {
	if len(b) != PageSize {
		return nil, fmt.Errorf("storage: page image is %d bytes, want %d", len(b), PageSize)
	}
	p := &Page{}
	copy(p.buf[:], b)
	want := binary.LittleEndian.Uint32(p.buf[0:4])
	got := crc32.Checksum(p.buf[8:], castagnoli)
	if want != got {
		return nil, fmt.Errorf("%w: want %08x got %08x", ErrBadChecksum, want, got)
	}
	return p, nil
}

// CopyFrom replaces this page's contents with src's.
func (p *Page) CopyFrom(src *Page) { p.buf = src.buf }
