// Package datagen generates the paper's synthetic datasets (§5.2): tables
// with a controlled degree of clustering between index order and physical
// record placement.
//
// The generator follows the paper's modified Wolf et al. (1990) scheme:
//
//   - N records take I distinct values; duplicates per value follow Knuth's
//     generalized Zipf distribution with parameter θ (θ = 0 uniform,
//     θ = 0.86 the "80-20" rule).
//   - Distinct values are processed in key order. Each value's records are
//     assigned to random pages within a moving window of ⌈K·T⌉ pages; when a
//     page in the window fills, the next page not in the window is added.
//     The initial window is pages [0, ⌈K·T⌉).
//   - With a small noise probability (5% in the paper) a record is placed on
//     a random non-full page outside the window.
//
// K = 0 (window collapses to one page) yields a perfectly clustered table;
// K = 1 (window = whole table) yields random placement.
//
// Two products are offered: GenerateDataset emits the logical placement
// (keys + page trace in index order) used by the large experiment sweeps,
// and Materialize turns a dataset into a real table.Table — slotted heap
// pages plus a bulk-loaded B-tree — with an identical reference trace, which
// an integration test verifies.
package datagen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"epfis/internal/lrusim"
	"epfis/internal/storage"
	"epfis/internal/table"
	"epfis/internal/zipfdist"
)

// DefaultNoise is the paper's noise factor: "In our experiments, the noise
// factor was set to 5%".
const DefaultNoise = 0.05

// Config describes one synthetic dataset.
type Config struct {
	// Name labels the dataset in reports.
	Name string
	// N is the number of records.
	N int64
	// I is the number of distinct key values.
	I int64
	// R is the number of records per page.
	R int
	// Theta is the Zipf skew of duplicates per value (0 = uniform).
	Theta float64
	// K is the clustering window size as a fraction of the table's pages.
	K float64
	// Noise is the probability a record lands outside the window;
	// negative means DefaultNoise. Use NoNoise for exactly zero.
	Noise float64
	// Seed drives the deterministic generator.
	Seed int64
	// Column names the indexed column; empty = "key".
	Column string
	// SortRIDs orders each key value's entries by page (the paper's §6
	// future-work item "indexes with sorted RIDs for a given key value").
	// The default (false) keeps insertion order, the behavior the paper's
	// model assumes.
	SortRIDs bool
	// BCardinality, when > 0, adds a minor index column b (the paper's §2
	// index on columns (a, b)) with values uniform in [1, BCardinality],
	// independent of placement. Index-sargable predicates like b = v then
	// have selectivity S = 1/BCardinality.
	BCardinality int64
}

// NoNoise disables placement noise (Noise fields are probabilities, so the
// zero value must be distinguishable from "unset").
const NoNoise = -1

// ErrBadConfig reports invalid generator parameters.
var ErrBadConfig = errors.New("datagen: invalid config")

func (c *Config) normalize() error {
	if c.Column == "" {
		c.Column = "key"
	}
	switch {
	case c.N < 1:
		return fmt.Errorf("%w: N = %d", ErrBadConfig, c.N)
	case c.I < 1 || c.I > c.N:
		return fmt.Errorf("%w: I = %d with N = %d", ErrBadConfig, c.I, c.N)
	case c.R < 1:
		return fmt.Errorf("%w: R = %d", ErrBadConfig, c.R)
	case c.K < 0 || c.K > 1:
		return fmt.Errorf("%w: K = %g", ErrBadConfig, c.K)
	case c.Theta < 0:
		return fmt.Errorf("%w: theta = %g", ErrBadConfig, c.Theta)
	}
	if c.Noise == 0 {
		c.Noise = DefaultNoise
	} else if c.Noise == NoNoise {
		c.Noise = 0
	}
	if c.Noise < 0 || c.Noise > 1 {
		return fmt.Errorf("%w: noise = %g", ErrBadConfig, c.Noise)
	}
	return nil
}

// Dataset is the logical output of the generator: record placement in index
// (key, insertion) order.
type Dataset struct {
	// Config echoes the (normalized) generator parameters.
	Config Config
	// T is the number of data pages, ceil(N/R).
	T int64
	// Keys[i] is the key value of the i-th index entry.
	Keys []int64
	// PageOf[i] is the 0-based page index holding the i-th entry's record.
	PageOf []int32
	// BVals[i] is the i-th entry's minor column value (nil when the config
	// had no BCardinality).
	BVals []uint32
}

// Trace returns the data-page reference trace of a full index scan.
func (d *Dataset) Trace() lrusim.Trace {
	tr := make(lrusim.Trace, len(d.PageOf))
	for i, p := range d.PageOf {
		tr[i] = storage.PageID(p)
	}
	return tr
}

// SliceTrace returns the trace of entries [lo, hi) — a partial scan in index
// order.
func (d *Dataset) SliceTrace(lo, hi int) lrusim.Trace {
	return d.SliceTraceInto(nil, lo, hi)
}

// SliceTraceInto is SliceTrace writing into buf's storage when it has the
// capacity, for callers that measure many scans and want to reuse one
// buffer. The returned trace aliases buf; it is only valid until the next
// reuse.
func (d *Dataset) SliceTraceInto(buf lrusim.Trace, lo, hi int) lrusim.Trace {
	n := hi - lo
	if cap(buf) < n {
		buf = make(lrusim.Trace, n)
	} else {
		buf = buf[:n]
	}
	for i := lo; i < hi; i++ {
		buf[i-lo] = storage.PageID(d.PageOf[i])
	}
	return buf
}

// FilteredSliceTrace returns the trace of entries in [lo, hi) whose minor
// column equals b — the page references of a partial scan with the
// index-sargable predicate "b = v" applied before fetching. It requires a
// dataset generated with BCardinality > 0.
func (d *Dataset) FilteredSliceTrace(lo, hi int, b uint32) (lrusim.Trace, error) {
	if d.BVals == nil {
		return nil, errors.New("datagen: dataset has no minor column (BCardinality was 0)")
	}
	var tr lrusim.Trace
	for i := lo; i < hi; i++ {
		if d.BVals[i] == b {
			tr = append(tr, storage.PageID(d.PageOf[i]))
		}
	}
	return tr, nil
}

// avail is a set of page indexes with O(1) random pick and removal.
type avail struct {
	items []int32
	pos   map[int32]int
}

func newAvail(capacity int) *avail {
	return &avail{items: make([]int32, 0, capacity), pos: make(map[int32]int, capacity)}
}

func (a *avail) add(p int32) {
	a.pos[p] = len(a.items)
	a.items = append(a.items, p)
}

func (a *avail) remove(p int32) {
	i, ok := a.pos[p]
	if !ok {
		return
	}
	last := len(a.items) - 1
	a.items[i] = a.items[last]
	a.pos[a.items[i]] = i
	a.items = a.items[:last]
	delete(a.pos, p)
}

func (a *avail) contains(p int32) bool { _, ok := a.pos[p]; return ok }

func (a *avail) empty() bool { return len(a.items) == 0 }

func (a *avail) pick(rng *rand.Rand) int32 {
	return a.items[rng.Intn(len(a.items))]
}

// GenerateDataset runs the placement model and returns the logical dataset.
func GenerateDataset(cfg Config) (*Dataset, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	t := (cfg.N + int64(cfg.R) - 1) / int64(cfg.R)
	freqs, err := zipfdist.Frequencies(cfg.N, cfg.I, cfg.Theta)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	w := int64(math.Ceil(cfg.K * float64(t)))
	if w < 1 {
		w = 1
	}
	if w > t {
		w = t
	}

	window := newAvail(int(w))
	outside := newAvail(int(t - w))
	for p := int64(0); p < w; p++ {
		window.add(int32(p))
	}
	for p := w; p < t; p++ {
		outside.add(int32(p))
	}
	frontier := w // next page to pull into the window

	fill := make([]int32, t)
	capPerPage := int32(cfg.R)

	ds := &Dataset{
		Config: cfg,
		T:      t,
		Keys:   make([]int64, 0, cfg.N),
		PageOf: make([]int32, 0, cfg.N),
	}
	if cfg.BCardinality > 0 {
		ds.BVals = make([]uint32, 0, cfg.N)
	}

	// onFull handles a page reaching capacity.
	onFull := func(p int32) {
		if window.contains(p) {
			window.remove(p)
			// "the next page not in the window is added to the window":
			// advance the frontier past pages noise already filled.
			for frontier < t {
				np := int32(frontier)
				frontier++
				if fill[np] < capPerPage {
					outside.remove(np)
					window.add(np)
					break
				}
				// Full from noise: it is in neither set already.
			}
		} else {
			outside.remove(p)
		}
	}

	place := func(key int64) error {
		var p int32
		useOutside := cfg.Noise > 0 && rng.Float64() < cfg.Noise && !outside.empty()
		switch {
		case useOutside:
			p = outside.pick(rng)
		case !window.empty():
			p = window.pick(rng)
		case !outside.empty():
			// Window exhausted (all its pages full, frontier at end):
			// fall back to any remaining page.
			p = outside.pick(rng)
		default:
			return fmt.Errorf("datagen: internal: no page available with %d records placed", len(ds.Keys))
		}
		fill[p]++
		ds.Keys = append(ds.Keys, key)
		ds.PageOf = append(ds.PageOf, p)
		if cfg.BCardinality > 0 {
			ds.BVals = append(ds.BVals, uint32(1+rng.Int63n(cfg.BCardinality)))
		}
		if fill[p] == capPerPage {
			onFull(p)
		}
		return nil
	}

	for v := int64(0); v < cfg.I; v++ {
		key := v + 1 // keys are 1..I in order
		start := len(ds.PageOf)
		for r := int64(0); r < freqs[v]; r++ {
			if err := place(key); err != nil {
				return nil, err
			}
		}
		if cfg.SortRIDs {
			// §6 future work: within one key value, present RIDs in page
			// order instead of insertion order. The minor column (when
			// present) travels with its record.
			seg := ds.PageOf[start:]
			if ds.BVals == nil {
				sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
			} else {
				bseg := ds.BVals[start:]
				idx := make([]int, len(seg))
				for j := range idx {
					idx[j] = j
				}
				sort.Slice(idx, func(a, b int) bool { return seg[idx[a]] < seg[idx[b]] })
				sortedP := make([]int32, len(seg))
				sortedB := make([]uint32, len(seg))
				for j, k := range idx {
					sortedP[j], sortedB[j] = seg[k], bseg[k]
				}
				copy(seg, sortedP)
				copy(bseg, sortedB)
			}
		}
	}
	return ds, nil
}

// Materialize builds a real table (heap pages + B-tree index) realizing the
// dataset's placement exactly: the index's full-scan trace equals
// ds.Trace().
func Materialize(ds *Dataset) (*table.Table, error) {
	b, err := table.NewBuilder(ds.Config.Name, int(ds.T), ds.Config.R)
	if err != nil {
		return nil, err
	}
	for i := range ds.Keys {
		var included uint32
		if ds.BVals != nil {
			included = ds.BVals[i]
		}
		if err := b.PlaceEntry(ds.Config.Column, int(ds.PageOf[i]), ds.Keys[i], included); err != nil {
			return nil, fmt.Errorf("datagen: materialize entry %d: %w", i, err)
		}
	}
	return b.Build()
}

// Generate is GenerateDataset followed by Materialize.
func Generate(cfg Config) (*table.Table, *Dataset, error) {
	ds, err := GenerateDataset(cfg)
	if err != nil {
		return nil, nil, err
	}
	tb, err := Materialize(ds)
	if err != nil {
		return nil, nil, err
	}
	return tb, ds, nil
}

// KeyRankBounds returns, for each distinct key (1-based rank k), the index
// of its first entry in Keys, plus a final sentinel len(Keys). Scans over
// key ranges translate to slices of the entry array via this table.
func (d *Dataset) KeyRankBounds() []int {
	bounds := make([]int, 0, d.Config.I+1)
	var prev int64
	for i, k := range d.Keys {
		if i == 0 || k != prev {
			bounds = append(bounds, i)
			prev = k
		}
	}
	bounds = append(bounds, len(d.Keys))
	return bounds
}
