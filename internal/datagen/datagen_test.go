package datagen

import (
	"math"
	"testing"

	"epfis/internal/btree"
	"epfis/internal/core"
	"epfis/internal/lrusim"
)

// btreeEntry aliases btree.Entry for test readability.
type btreeEntry = btree.Entry

func gen(t testing.TB, cfg Config) *Dataset {
	t.Helper()
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatalf("GenerateDataset(%+v): %v", cfg, err)
	}
	return ds
}

func baseCfg() Config {
	return Config{Name: "syn", N: 20_000, I: 200, R: 40, Theta: 0, K: 0.05, Seed: 1}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0, I: 1, R: 1},
		{N: 10, I: 0, R: 1},
		{N: 10, I: 11, R: 1},
		{N: 10, I: 5, R: 0},
		{N: 10, I: 5, R: 1, K: -0.1},
		{N: 10, I: 5, R: 1, K: 1.5},
		{N: 10, I: 5, R: 1, Theta: -1},
		{N: 10, I: 5, R: 1, Noise: 2},
	}
	for _, cfg := range bad {
		if _, err := GenerateDataset(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestDatasetShape(t *testing.T) {
	cfg := baseCfg()
	ds := gen(t, cfg)
	if int64(len(ds.Keys)) != cfg.N || int64(len(ds.PageOf)) != cfg.N {
		t.Fatalf("lengths: keys=%d pages=%d", len(ds.Keys), len(ds.PageOf))
	}
	if want := (cfg.N + int64(cfg.R) - 1) / int64(cfg.R); ds.T != want {
		t.Errorf("T = %d, want %d", ds.T, want)
	}
	// Keys non-decreasing, cover 1..I.
	seen := make(map[int64]bool)
	for i, k := range ds.Keys {
		if i > 0 && k < ds.Keys[i-1] {
			t.Fatalf("keys decrease at %d", i)
		}
		if k < 1 || k > cfg.I {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if int64(len(seen)) != cfg.I {
		t.Errorf("distinct keys = %d, want %d", len(seen), cfg.I)
	}
	// No page exceeds capacity.
	fill := make([]int, ds.T)
	for _, p := range ds.PageOf {
		fill[p]++
		if fill[p] > cfg.R {
			t.Fatalf("page %d over capacity", p)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := gen(t, baseCfg())
	b := gen(t, baseCfg())
	if len(a.Keys) != len(b.Keys) {
		t.Fatal("lengths differ")
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || a.PageOf[i] != b.PageOf[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
	cfg := baseCfg()
	cfg.Seed = 2
	c := gen(t, cfg)
	same := true
	for i := range a.PageOf {
		if a.PageOf[i] != c.PageOf[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placement")
	}
}

// measureC runs LRU-Fit on the dataset and returns the clustering factor.
func measureC(t testing.TB, ds *Dataset) float64 {
	t.Helper()
	st, err := core.LRUFit(ds.Trace(), core.Meta{
		Table: "t", Column: "k", T: ds.T, N: ds.Config.N, I: ds.Config.I,
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st.C
}

func TestKZeroNoNoiseIsPerfectlyClustered(t *testing.T) {
	cfg := baseCfg()
	cfg.K = 0
	cfg.Noise = NoNoise
	ds := gen(t, cfg)
	// Window of one page, no noise: pages fill strictly sequentially.
	for i := 1; i < len(ds.PageOf); i++ {
		if ds.PageOf[i] < ds.PageOf[i-1] {
			t.Fatalf("page order decreases at %d", i)
		}
	}
	if c := measureC(t, ds); c < 0.999 {
		t.Errorf("C = %g, want ~1", c)
	}
}

func TestClusteringDecreasesWithK(t *testing.T) {
	var prev float64 = 2
	for _, k := range []float64{0, 0.05, 0.2, 0.5, 1} {
		cfg := baseCfg()
		cfg.K = k
		ds := gen(t, cfg)
		c := measureC(t, ds)
		if c < 0 || c > 1 {
			t.Fatalf("K=%g: C = %g out of range", k, c)
		}
		// Allow small jitter but require the broad monotone trend.
		if c > prev+0.05 {
			t.Errorf("K=%g: C = %g rose above previous %g", k, c, prev)
		}
		prev = c
	}
	// Extremes: K=0 highly clustered, K=1 close to random.
	cfg := baseCfg()
	cfg.K = 0
	if c := measureC(t, gen(t, cfg)); c < 0.85 {
		t.Errorf("K=0 C = %g, want high (5%% noise only)", c)
	}
	cfg.K = 1
	if c := measureC(t, gen(t, cfg)); c > 0.35 {
		t.Errorf("K=1 C = %g, want low", c)
	}
}

func TestNoiseReducesClustering(t *testing.T) {
	cfg := baseCfg()
	cfg.K = 0
	cfg.Noise = NoNoise
	clean := measureC(t, gen(t, cfg))
	cfg.Noise = 0.20
	noisy := measureC(t, gen(t, cfg))
	if noisy >= clean {
		t.Errorf("noise did not reduce C: clean %g, noisy %g", clean, noisy)
	}
}

func TestZipfSkewedDuplicates(t *testing.T) {
	cfg := baseCfg()
	cfg.Theta = 0.86
	ds := gen(t, cfg)
	bounds := ds.KeyRankBounds()
	if len(bounds) != int(cfg.I)+1 {
		t.Fatalf("bounds = %d, want %d", len(bounds), cfg.I+1)
	}
	first := bounds[1] - bounds[0]
	last := bounds[len(bounds)-1] - bounds[len(bounds)-2]
	if first <= last {
		t.Errorf("rank 1 count %d <= last rank count %d under skew", first, last)
	}
}

func TestSliceTrace(t *testing.T) {
	ds := gen(t, baseCfg())
	tr := ds.SliceTrace(100, 200)
	if len(tr) != 100 {
		t.Fatalf("slice length %d", len(tr))
	}
	full := ds.Trace()
	for i := range tr {
		if tr[i] != full[100+i] {
			t.Fatal("slice trace mismatch")
		}
	}
}

func TestMaterializeMatchesDataset(t *testing.T) {
	cfg := baseCfg()
	cfg.N = 4_000
	cfg.I = 80
	ds := gen(t, cfg)
	tb, err := Materialize(ds)
	if err != nil {
		t.Fatal(err)
	}
	if tb.T() != int(ds.T) || tb.N() != int(cfg.N) {
		t.Errorf("table T=%d N=%d, want %d %d", tb.T(), tb.N(), ds.T, cfg.N)
	}
	ix, err := tb.Index("key")
	if err != nil {
		t.Fatal(err)
	}
	if ix.DistinctKeys != int(cfg.I) {
		t.Errorf("I = %d, want %d", ix.DistinctKeys, cfg.I)
	}
	if err := ix.Tree.Check(); err != nil {
		t.Fatalf("index check: %v", err)
	}
	got, err := ix.FullScanTrace()
	if err != nil {
		t.Fatal(err)
	}
	want := ds.Trace()
	if len(got) != len(want) {
		t.Fatalf("trace lengths: %d vs %d", len(got), len(want))
	}
	// The physical page ids are the heap's pages in order, so trace entries
	// must match the dataset's page indexes mapped through DataPages.
	for i := range got {
		if got[i] != tb.DataPages[want[i]] {
			t.Fatalf("trace mismatch at %d: %d vs page index %d", i, got[i], want[i])
		}
	}
	// And therefore identical fetch curves.
	a := lrusim.Analyze(got)
	b := lrusim.Analyze(want)
	for _, bs := range []int{1, 5, 20, 100} {
		if a.Fetches(bs) != b.Fetches(bs) {
			t.Errorf("fetch curves differ at B=%d", bs)
		}
	}
}

func TestGenerateConvenience(t *testing.T) {
	cfg := baseCfg()
	cfg.N = 2_000
	cfg.I = 50
	tb, ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb == nil || ds == nil || tb.N() != 2000 {
		t.Error("Generate returned bad results")
	}
}

func TestPaperScaleRatiosPreserved(t *testing.T) {
	// The scaled-down default experiments keep N/I and R as in the paper.
	cfg := Config{Name: "scaled", N: 100_000, I: 1_000, R: 40, Theta: 0, K: 0.5, Seed: 7}
	ds := gen(t, cfg)
	if got := float64(cfg.N) / float64(cfg.I); got != 100 {
		t.Errorf("N/I = %g", got)
	}
	if got := float64(cfg.N) / float64(ds.T); math.Abs(got-40) > 0.1 {
		t.Errorf("N/T = %g, want 40", got)
	}
}

func TestSortRIDsWithinKey(t *testing.T) {
	cfg := baseCfg()
	cfg.K = 1 // random placement: unsorted RIDs jump backwards constantly
	plain := gen(t, cfg)
	cfg.SortRIDs = true
	sorted := gen(t, cfg)

	// Within each key, pages must be non-decreasing in the sorted variant.
	bounds := sorted.KeyRankBounds()
	for k := 0; k+1 < len(bounds); k++ {
		for i := bounds[k] + 1; i < bounds[k+1]; i++ {
			if sorted.PageOf[i] < sorted.PageOf[i-1] {
				t.Fatalf("key %d: pages decrease at entry %d", k, i)
			}
		}
	}
	// Same multiset of placements per key (sorting only reorders).
	pb := plain.KeyRankBounds()
	if len(pb) != len(bounds) {
		t.Fatal("key bounds differ")
	}
	for k := 0; k+1 < len(bounds); k++ {
		if bounds[k] != pb[k] {
			t.Fatalf("key %d bounds differ", k)
		}
	}
	// Sorted RIDs can only help a tiny buffer: F(1) must not increase.
	fPlain := lrusim.Analyze(plain.Trace()).Fetches(1)
	fSorted := lrusim.Analyze(sorted.Trace()).Fetches(1)
	if fSorted > fPlain {
		t.Errorf("sorted RIDs increased F(1): %d > %d", fSorted, fPlain)
	}
}

func TestMinorColumnGeneration(t *testing.T) {
	cfg := baseCfg()
	cfg.BCardinality = 8
	ds := gen(t, cfg)
	if len(ds.BVals) != len(ds.Keys) {
		t.Fatalf("BVals length %d, keys %d", len(ds.BVals), len(ds.Keys))
	}
	counts := make(map[uint32]int)
	for _, b := range ds.BVals {
		if b < 1 || b > 8 {
			t.Fatalf("b value %d out of range", b)
		}
		counts[b]++
	}
	if len(counts) != 8 {
		t.Errorf("only %d distinct b values", len(counts))
	}
	// Roughly uniform: each value ~N/8 = 2500 within 20%.
	for b, c := range counts {
		if c < 2000 || c > 3000 {
			t.Errorf("b=%d count %d, want ~2500", b, c)
		}
	}
}

func TestFilteredSliceTrace(t *testing.T) {
	cfg := baseCfg()
	cfg.BCardinality = 4
	ds := gen(t, cfg)
	full := ds.SliceTrace(0, 1000)
	var want int
	for i := 0; i < 1000; i++ {
		if ds.BVals[i] == 2 {
			want++
		}
	}
	got, err := ds.FilteredSliceTrace(0, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Errorf("filtered trace %d entries, want %d", len(got), want)
	}
	if len(got) >= len(full) {
		t.Error("filter did not reduce the trace")
	}
	// No-minor-column dataset refuses.
	plain := gen(t, baseCfg())
	if _, err := plain.FilteredSliceTrace(0, 10, 1); err == nil {
		t.Error("FilteredSliceTrace without BCardinality succeeded")
	}
}

func TestSortRIDsKeepsMinorColumnPaired(t *testing.T) {
	cfg := baseCfg()
	cfg.BCardinality = 4
	plain := gen(t, cfg)
	cfg.SortRIDs = true
	sorted := gen(t, cfg)
	// Multisets of (page, b) pairs per key must match.
	bounds := plain.KeyRankBounds()
	for k := 0; k+1 < len(bounds); k++ {
		lo, hi := bounds[k], bounds[k+1]
		count := func(ds *Dataset) map[[2]int64]int {
			m := map[[2]int64]int{}
			for i := lo; i < hi; i++ {
				m[[2]int64{int64(ds.PageOf[i]), int64(ds.BVals[i])}]++
			}
			return m
		}
		a, b := count(plain), count(sorted)
		if len(a) != len(b) {
			t.Fatalf("key %d: pair multiset size differs", k)
		}
		for pair, n := range a {
			if b[pair] != n {
				t.Fatalf("key %d: pair %v count %d vs %d", k, pair, n, b[pair])
			}
		}
	}
}

func TestMaterializeWithMinorColumn(t *testing.T) {
	cfg := baseCfg()
	cfg.N = 2_000
	cfg.I = 40
	cfg.BCardinality = 4
	ds := gen(t, cfg)
	tb, err := Materialize(ds)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := tb.Index("key")
	if err != nil {
		t.Fatal(err)
	}
	// Every index entry must carry the dataset's b value, in entry order.
	i := 0
	err = ix.Tree.Scan(nil, nil, func(e btreeEntry) error {
		if e.Included != ds.BVals[i] {
			t.Fatalf("entry %d included %d, want %d", i, e.Included, ds.BVals[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 2000 {
		t.Fatalf("scanned %d entries", i)
	}
}
