package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/obs"
)

// Cluster route paths and headers, shared by the node, the service layer
// that mounts the handlers, and the cluster-aware client.
const (
	PathHealth   = "/v1/cluster/health"
	PathGossip   = "/v1/cluster/gossip"
	PathSnapshot = "/v1/cluster/snapshot"
	// PathDigest serves the per-entry digest table (key -> stamp + CRC) that
	// drives delta anti-entropy.
	PathDigest = "/v1/cluster/digest"
	// PathEntryPrefix prefixes single-entry exports; the path-escaped entry
	// key follows it.
	PathEntryPrefix = "/v1/cluster/entry/"

	// HeaderNode carries the sending/serving node ID.
	HeaderNode = "X-Epfis-Node"
	// HeaderEpoch carries the cluster mutation epoch of a replicated
	// mutation or a snapshot stream.
	HeaderEpoch = "X-Epfis-Epoch"
	// HeaderGeneration carries the serving node's catalog generation on a
	// snapshot stream.
	HeaderGeneration = "X-Epfis-Generation"
	// HeaderReplicated marks a mutation as replication fan-out (the value is
	// the originating node ID); receivers apply it locally and do not
	// re-forward.
	HeaderReplicated = "X-Epfis-Replicated"
	// HeaderForwarded marks a proxied estimate request (the value is the
	// forwarding node ID); a receiver that still does not own the key
	// answers 421 instead of forwarding again, so stale rings cannot loop.
	HeaderForwarded = "X-Epfis-Forwarded"
)

// snapshotPullTimeout bounds one anti-entropy snapshot transfer.
const snapshotPullTimeout = 30 * time.Second

// DefaultSnapshotMaxBytes caps anti-entropy response bodies (snapshot,
// digest, entry) when Config.SnapshotMaxBytes is zero. A corrupt or hostile
// peer can then cost the puller at most this much memory, never an OOM.
const DefaultSnapshotMaxBytes = 64 << 20

// DefaultDeltaThreshold is the divergence fraction above which delta
// anti-entropy gives up and pulls the full snapshot: fetching more than a
// quarter of the catalog entry-by-entry costs more round trips than one
// bulk stream saves.
const DefaultDeltaThreshold = 0.25

// NodeInfo is one node's record in the gossip documents.
type NodeInfo struct {
	ID          string `json:"id"`
	URL         string `json:"url"`
	State       string `json:"state"`
	Generation  uint64 `json:"generation"`
	Epoch       uint64 `json:"epoch"`
	CatalogHash string `json:"catalogHash,omitempty"`
}

// Doc is the document exchanged by heartbeats and served at
// GET /v1/cluster/health: the sender's own state plus every member it knows.
type Doc struct {
	Self     NodeInfo   `json:"self"`
	Replicas int        `json:"replicas"`
	VNodes   int        `json:"vnodes"`
	Members  []NodeInfo `json:"members"`
}

// Config configures NewNode. SelfID, SelfURL, and Store are required.
type Config struct {
	// SelfID is this node's stable identity on the ring. Placement hashes
	// it, so it must be unique and must survive restarts.
	SelfID string
	// SelfURL is the base URL peers reach this node at (http://host:port).
	SelfURL string
	// Seeds are peer base URLs contacted at startup to join the cluster.
	Seeds []string
	// Replicas is R, the replica-set size per key (0 = DefaultReplicas,
	// capped at MaxReplicas).
	Replicas int
	// VNodes is the virtual nodes per member (0 = DefaultVNodes).
	VNodes int
	// Heartbeat is the gossip interval (0 = DefaultHeartbeat).
	Heartbeat time.Duration
	// SuspectAfter / DeadAfter drive peer state decay (0 = defaults).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Clock replaces time.Now (tests) — the injectable-clock seam shared
	// with resilience.Breaker.
	Clock func() time.Time
	// HTTPClient performs gossip and snapshot transfers; nil uses a private
	// client with sane timeouts.
	HTTPClient *http.Client
	// Store is the node's catalog store; snapshot streaming exports from and
	// imports into it.
	Store *catalog.Store
	// Log receives membership and sync events; nil discards.
	Log *slog.Logger
	// SnapshotMaxBytes caps anti-entropy response bodies (0 =
	// DefaultSnapshotMaxBytes). Oversize responses fail the pull and count
	// in epfis_cluster_antientropy_oversize_total.
	SnapshotMaxBytes int64
	// DeltaThreshold is the fraction of the peer's catalog that may diverge
	// before delta anti-entropy falls back to a full snapshot pull (0 =
	// DefaultDeltaThreshold).
	DeltaThreshold float64
	// MaxIdleConnsPerHost tunes the default pooled transport's per-peer idle
	// connection depth (0 = the process-wide SharedTransport with default
	// tuning). Ignored when HTTPClient is set.
	MaxIdleConnsPerHost int
}

// Node is the per-process cluster agent. Construct with NewNode; all methods
// are safe for concurrent use.
type Node struct {
	cfg   Config
	store *catalog.Store
	mem   *Membership
	hc    *http.Client
	log   *slog.Logger

	ring        atomic.Pointer[Ring]
	ringVersion atomic.Uint64 // membership version the ring was built at

	epoch atomic.Uint64

	// Per-key last-applied mutation stamps: the ordering guard that keeps a
	// replicated DELETE from being resurrected by a stale PUT (and vice
	// versa), and the skip set for merge-based snapshot pulls. The service
	// layer persists these through its stamp journal (HandoffDir) and
	// re-seeds them via RecordKeyStamp at startup; without that journal they
	// are memory-only.
	keyMu     sync.Mutex
	keyStamps map[string]Stamp

	// Cached catalog content hash, keyed by generation.
	hashMu  sync.Mutex
	hashGen uint64
	hashVal string

	// Cached per-entry digests, keyed by generation (same discipline as the
	// content hash: computing them encodes every entry, so the cache keeps
	// digest serving and delta diffs cheap between mutations).
	digestMu  sync.Mutex
	digestGen uint64
	digestVal map[string]uint32

	pulling atomic.Bool // single-flight guard for anti-entropy syncs

	pullsOK   atomic.Uint64
	pullsFail atomic.Uint64
	rounds    atomic.Uint64

	// Anti-entropy accounting: completed delta syncs, delta syncs that fell
	// back to a full snapshot, bytes received by mode, and responses
	// rejected by the size cap.
	deltaOK       atomic.Uint64
	deltaFallback atomic.Uint64
	bytesDelta    atomic.Uint64
	bytesFull     atomic.Uint64
	oversize      atomic.Uint64

	// Per-peer instruments, registered lazily as peers are discovered.
	obsMu  sync.Mutex
	reg    *obs.Registry
	peerUp map[string]*obs.Gauge
	hbLat  map[string]*obs.Histogram
	aeLat  map[string]*obs.Histogram // anti-entropy latency, keyed peer\x00route

	// traceRing, when attached, receives one hop record per cluster-internal
	// send (gossip, digest/entry/snapshot pulls) so distributed traces show
	// the anti-entropy edges too. Nil = tracing disabled.
	traceRing atomic.Pointer[obs.TraceRing]
}

// NewNode validates cfg and builds the agent. The initial ring contains self
// only (plus any seed-discovered peers after the first Tick); seeds are
// contacted by Run/Tick, never by NewNode.
func NewNode(cfg Config) (*Node, error) {
	if cfg.SelfID == "" {
		return nil, errors.New("cluster: Config.SelfID is required")
	}
	if cfg.SelfURL == "" {
		return nil, errors.New("cluster: Config.SelfURL is required")
	}
	if cfg.Store == nil {
		return nil, errors.New("cluster: Config.Store is required")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.Replicas < 1 || cfg.Replicas > MaxReplicas {
		return nil, fmt.Errorf("cluster: Replicas must be in [1, %d], got %d", MaxReplicas, cfg.Replicas)
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(discardHandler{})
	}
	n := &Node{
		cfg:    cfg,
		store:  cfg.Store,
		mem:    NewMembership(cfg.SelfID, cfg.SuspectAfter, cfg.DeadAfter, cfg.Clock),
		log:    cfg.Log,
		peerUp: map[string]*obs.Gauge{},
		hbLat:  map[string]*obs.Histogram{},
		aeLat:  map[string]*obs.Histogram{},
	}
	if n.cfg.SnapshotMaxBytes <= 0 {
		n.cfg.SnapshotMaxBytes = DefaultSnapshotMaxBytes
	}
	if n.cfg.DeltaThreshold <= 0 {
		n.cfg.DeltaThreshold = DefaultDeltaThreshold
	}
	n.hc = cfg.HTTPClient
	if n.hc == nil {
		// Default client rides the pooled cluster transport: gossip and
		// anti-entropy reuse the same kept-alive connections as the service
		// layer's proxy/replication client.
		tr := http.RoundTripper(SharedTransport())
		if cfg.MaxIdleConnsPerHost > 0 {
			tr = NewTransport(cfg.MaxIdleConnsPerHost)
		}
		n.hc = &http.Client{Timeout: 5 * time.Second, Transport: tr}
	}
	// A node that boots with statistics starts at epoch 1 so empty peers
	// pull from it; an empty node starts at 0 and adopts whatever the
	// cluster has.
	if cfg.Store.Len() > 0 {
		n.epoch.Store(1)
	}
	n.rebuildRing()
	return n, nil
}

// discardHandler mirrors the service's no-op slog handler (the stdlib gained
// one after the Go version CI pins).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// SelfID returns the node's ring identity.
func (n *Node) SelfID() string { return n.cfg.SelfID }

// SelfURL returns the node's advertised base URL.
func (n *Node) SelfURL() string { return n.cfg.SelfURL }

// Replicas returns R, the replica-set size.
func (n *Node) Replicas() int { return n.cfg.Replicas }

// Ring returns the current ring (immutable; one atomic load).
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Owns reports whether this node is in the key's replica set. It is
// allocation-free — the serving path's ownership check.
func (n *Node) Owns(key string) bool {
	return n.ring.Load().Owns(n.cfg.SelfID, key, n.cfg.Replicas)
}

// Owners returns the key's replica set as peer records, self included (a
// self entry carries this node's own state). Order is ring order: the first
// entry is the primary.
func (n *Node) Owners(key string) []PeerInfo {
	ids := n.ring.Load().Owners(key, n.cfg.Replicas)
	out := make([]PeerInfo, 0, len(ids))
	for _, id := range ids {
		if id == n.cfg.SelfID {
			out = append(out, PeerInfo{ID: id, URL: n.cfg.SelfURL, State: StateAlive})
			continue
		}
		if p, ok := n.mem.Peer(id); ok {
			out = append(out, p)
		} else {
			out = append(out, PeerInfo{ID: id, State: StateSuspect})
		}
	}
	return out
}

// Peers lists the known peers (excluding self).
func (n *Node) Peers() []PeerInfo { return n.mem.Peers() }

// Epoch returns the node's current mutation epoch.
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// BumpEpoch advances the mutation epoch for a locally originated catalog
// mutation and returns the new value.
func (n *Node) BumpEpoch() uint64 { return n.epoch.Add(1) }

// ObserveEpoch folds a remote epoch in (Lamport max), so replicated
// mutations and snapshot imports keep epochs comparable cluster-wide.
func (n *Node) ObserveEpoch(e uint64) {
	for {
		cur := n.epoch.Load()
		if e <= cur || n.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Stamp is the total order on same-key mutations: the Lamport epoch the
// mutation was assigned, tie-broken by the originating node ID. Two sides of
// a partition can assign the identical epoch to concurrent mutations of the
// same key (both advance in lockstep from the same base); the originator
// tiebreaker makes every node pick the same winner after heal, so replicas
// converge instead of each dropping the other's write as stale.
type Stamp struct {
	Epoch  uint64 `json:"epoch"`
	Origin string `json:"origin"`
}

// Less reports whether s orders strictly before o: by epoch, then by
// originating node ID. Equal stamps (redelivery of the same mutation) are
// not Less — application stays idempotent.
func (s Stamp) Less(o Stamp) bool {
	if s.Epoch != o.Epoch {
		return s.Epoch < o.Epoch
	}
	return s.Origin < o.Origin
}

// KeyStamp reports the last mutation stamp applied for a key (the zero Stamp
// = no tracked mutation).
func (n *Node) KeyStamp(key string) Stamp {
	n.keyMu.Lock()
	defer n.keyMu.Unlock()
	return n.keyStamps[key]
}

// RecordKeyStamp advances a key's last-applied stamp (monotonic max in Stamp
// order). The service records every applied mutation — local or replicated,
// including deletes, where the record doubles as a tombstone.
func (n *Node) RecordKeyStamp(key string, st Stamp) {
	n.keyMu.Lock()
	if n.keyStamps == nil {
		n.keyStamps = map[string]Stamp{}
	}
	if cur := n.keyStamps[key]; cur.Less(st) {
		n.keyStamps[key] = st
	}
	n.keyMu.Unlock()
}

// HasKeyStamp reports whether a key has a tracked mutation stamp — the skip
// predicate for merge-based snapshot pulls: stamp-tracked keys converge
// through replicated mutations and hinted handoff, not bulk anti-entropy,
// so a pulled snapshot must not clobber (or resurrect) them.
func (n *Node) HasKeyStamp(key string) bool {
	n.keyMu.Lock()
	defer n.keyMu.Unlock()
	return n.keyStamps[key] != Stamp{}
}

// KeyStamps copies the tracked stamp table — the compaction source for the
// service's durable stamp journal.
func (n *Node) KeyStamps() map[string]Stamp {
	n.keyMu.Lock()
	defer n.keyMu.Unlock()
	out := make(map[string]Stamp, len(n.keyStamps))
	for k, v := range n.keyStamps {
		out[k] = v
	}
	return out
}

// CatalogHash returns the content hash of the current catalog snapshot,
// cached per generation (computing it encodes the snapshot, so the cache
// keeps heartbeats cheap between mutations).
func (n *Node) CatalogHash() string {
	gen := n.store.Generation()
	n.hashMu.Lock()
	defer n.hashMu.Unlock()
	if n.hashGen == gen && n.hashVal != "" {
		return n.hashVal
	}
	hash, hgen, err := n.store.ContentHash()
	if err != nil {
		return ""
	}
	n.hashGen, n.hashVal = hgen, hash
	return hash
}

// DigestEntry is one entry's record in the digest document: the CRC32-C of
// its canonical single-entry payload plus the last mutation stamp this node
// applied for the key (omitted when untracked — most entries are, and the
// digest document's size is the delta path's fixed wire cost).
type DigestEntry struct {
	CRC   uint32 `json:"crc"`
	Stamp *Stamp `json:"stamp,omitempty"`
}

// DigestDoc is served at GET /v1/cluster/digest: every entry's digest, the
// serving node's epoch, and the generation the digests describe. A behind
// peer diffs it against its own digests and fetches only divergent entries.
type DigestDoc struct {
	Node       string                 `json:"node"`
	Epoch      uint64                 `json:"epoch"`
	Generation uint64                 `json:"generation"`
	Entries    map[string]DigestEntry `json:"entries"`
}

// entryDigests returns the per-entry digest table, cached per generation.
// The returned map is shared — callers must treat it as read-only.
func (n *Node) entryDigests() (map[string]uint32, uint64, error) {
	gen := n.store.Generation()
	n.digestMu.Lock()
	defer n.digestMu.Unlock()
	if n.digestGen == gen && n.digestVal != nil {
		return n.digestVal, n.digestGen, nil
	}
	d, dgen, err := n.store.EntryDigests()
	if err != nil {
		return nil, 0, err
	}
	n.digestGen, n.digestVal = dgen, d
	return d, dgen, nil
}

// DigestDoc assembles the document served at GET /v1/cluster/digest.
func (n *Node) DigestDoc() (DigestDoc, error) {
	digests, gen, err := n.entryDigests()
	if err != nil {
		return DigestDoc{}, err
	}
	doc := DigestDoc{
		Node:       n.cfg.SelfID,
		Epoch:      n.epoch.Load(),
		Generation: gen,
		Entries:    make(map[string]DigestEntry, len(digests)),
	}
	for k, crc := range digests {
		de := DigestEntry{CRC: crc}
		if st := n.KeyStamp(k); st != (Stamp{}) {
			de.Stamp = &st
		}
		doc.Entries[k] = de
	}
	return doc, nil
}

// selfInfo assembles this node's own gossip record.
func (n *Node) selfInfo() NodeInfo {
	return NodeInfo{
		ID:          n.cfg.SelfID,
		URL:         n.cfg.SelfURL,
		State:       StateAlive.String(),
		Generation:  n.store.Generation(),
		Epoch:       n.epoch.Load(),
		CatalogHash: n.CatalogHash(),
	}
}

// HealthDoc assembles the document served at GET /v1/cluster/health and sent
// as the gossip payload.
func (n *Node) HealthDoc() Doc {
	peers := n.mem.Peers()
	doc := Doc{
		Self:     n.selfInfo(),
		Replicas: n.cfg.Replicas,
		VNodes:   n.cfg.VNodes,
		Members:  make([]NodeInfo, 0, len(peers)+1),
	}
	doc.Members = append(doc.Members, doc.Self)
	for _, p := range peers {
		doc.Members = append(doc.Members, NodeInfo{
			ID:          p.ID,
			URL:         p.URL,
			State:       p.State.String(),
			Generation:  p.Generation,
			Epoch:       p.Epoch,
			CatalogHash: p.CatalogHash,
		})
	}
	return doc
}

// Merge folds a received gossip document in: the sender is marked alive with
// the catalog state it reported, and member entries it carries are added to
// the member table (discovery — states are NOT adopted; only direct contact
// makes a peer alive here). It returns this node's own document, which the
// gossip handler echoes back. Merge also feeds anti-entropy: a sender that
// is ahead (higher epoch, different hash) triggers an async snapshot pull.
func (n *Node) Merge(remote Doc) Doc {
	changed := n.mem.Upsert(remote.Self.ID, remote.Self.URL)
	n.mem.ObserveAlive(remote.Self.ID, remote.Self.Generation, remote.Self.Epoch, remote.Self.CatalogHash)
	for _, m := range remote.Members {
		if n.mem.Upsert(m.ID, m.URL) {
			changed = true
		}
	}
	if changed {
		n.rebuildRing()
	}
	n.maybePull(remote.Self)
	// Lamport receive rule, AFTER the pull decision (which keys off the
	// epoch gap): fold the sender's epoch so a restarted node's next local
	// mutation stamps an epoch above everything the cluster has seen —
	// otherwise its writes would be dropped as stale by peers' per-key
	// epoch guards.
	n.ObserveEpoch(remote.Self.Epoch)
	return n.HealthDoc()
}

// rebuildRing rebuilds the ring from the current member set if the set
// changed since the last build.
func (n *Node) rebuildRing() {
	v := n.mem.Version()
	if n.ring.Load() != nil && n.ringVersion.Load() == v {
		return
	}
	ring := BuildRing(n.mem.MemberIDs(), n.cfg.VNodes)
	n.ring.Store(ring)
	n.ringVersion.Store(v)
	n.log.LogAttrs(context.Background(), slog.LevelInfo, "cluster ring rebuilt",
		slog.Int("members", ring.Len()), slog.Uint64("memberVersion", v))
}

// Run gossips on the heartbeat interval until ctx is done. Seeds are
// contacted on the first round.
func (n *Node) Run(ctx context.Context) error {
	t := time.NewTicker(n.cfg.Heartbeat)
	defer t.Stop()
	n.Tick(ctx)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			n.Tick(ctx)
		}
	}
}

// Tick runs one gossip round: exchange documents with every known peer (and,
// until peers are discovered, the configured seeds), refresh peer states and
// metrics, and rebuild the ring if the member set grew. Exported so tests
// and drills can drive rounds deterministically without the timer.
func (n *Node) Tick(ctx context.Context) {
	n.rounds.Add(1)
	type target struct{ id, url string } // id "" = seed (identity unknown yet)
	var targets []target
	seen := map[string]bool{n.cfg.SelfURL: true}
	for _, p := range n.mem.Peers() {
		if p.URL != "" && !seen[p.URL] {
			seen[p.URL] = true
			targets = append(targets, target{id: p.ID, url: p.URL})
		}
	}
	for _, s := range n.cfg.Seeds {
		if s != "" && !seen[s] {
			seen[s] = true
			targets = append(targets, target{url: s})
		}
	}
	doc := n.HealthDoc()
	var wg sync.WaitGroup
	for _, tg := range targets {
		wg.Add(1)
		go func(tg target) {
			defer wg.Done()
			start := time.Now()
			reply, err := n.gossipOnce(ctx, tg.url, doc)
			if err != nil {
				n.log.LogAttrs(ctx, slog.LevelDebug, "gossip failed",
					slog.String("peer", tg.url), slog.String("error", err.Error()))
				return
			}
			n.observeHeartbeat(reply.Self.ID, time.Since(start))
			n.Merge(reply)
		}(tg)
	}
	wg.Wait()
	n.syncPeerGauges()
}

// gossipOnce POSTs this node's document to one peer and decodes the reply.
// With tracing on, the exchange carries a fresh traceparent and the sender
// records one gossip hop span.
func (n *Node) gossipOnce(ctx context.Context, baseURL string, doc Doc) (Doc, error) {
	body, err := json.Marshal(doc)
	if err != nil {
		return Doc{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+PathGossip, bytes.NewReader(body))
	if err != nil {
		return Doc{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderNode, n.cfg.SelfID)
	var tp obs.Traceparent
	traced := n.tracing()
	if traced {
		tp = obs.NewTraceparent()
		req.Header.Set(obs.TraceparentHeader, tp.String())
	}
	start := time.Now()
	resp, err := n.hc.Do(req)
	if err != nil {
		if traced {
			n.recordHop(tp, obs.HopGossip, n.peerIDByURL(baseURL), PathGossip, 0, start)
		}
		return Doc{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var reply Doc
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&reply)
	if traced {
		peer := reply.Self.ID
		if peer == "" {
			peer = n.peerIDByURL(baseURL)
		}
		n.recordHop(tp, obs.HopGossip, peer, PathGossip, resp.StatusCode, start)
	}
	if resp.StatusCode != http.StatusOK {
		return Doc{}, fmt.Errorf("cluster: gossip %s: status %d", baseURL, resp.StatusCode)
	}
	if decodeErr != nil {
		return Doc{}, fmt.Errorf("cluster: gossip %s: %w", baseURL, decodeErr)
	}
	return reply, nil
}

// maybePull schedules an async anti-entropy sync from a peer whose catalog
// is ahead of ours: strictly higher mutation epoch with a different content
// hash. Syncs are single-flight and delta-first (digest diff, then
// per-entry fetches), falling back to the full snapshot stream when the
// divergence is too broad. Equal epochs with diverging hashes are a
// conflict gossip cannot resolve; they are logged and left to operators
// (the next mutation's epoch bump breaks the tie).
func (n *Node) maybePull(remote NodeInfo) {
	selfEpoch := n.epoch.Load()
	if remote.Epoch < selfEpoch || remote.URL == "" {
		return
	}
	hash := n.CatalogHash()
	if remote.CatalogHash == "" || remote.CatalogHash == hash {
		return
	}
	if remote.Epoch == selfEpoch {
		n.log.LogAttrs(context.Background(), slog.LevelWarn, "catalog divergence at equal epoch",
			slog.String("peer", remote.ID), slog.Uint64("epoch", selfEpoch),
			slog.String("selfHash", hash), slog.String("peerHash", remote.CatalogHash))
		return
	}
	if !n.pulling.CompareAndSwap(false, true) {
		return
	}
	url := remote.URL
	go func() {
		defer n.pulling.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), snapshotPullTimeout)
		defer cancel()
		if err := n.Sync(ctx, url); err != nil {
			n.pullsFail.Add(1)
			n.log.LogAttrs(ctx, slog.LevelWarn, "anti-entropy sync failed",
				slog.String("peer", url), slog.String("error", err.Error()))
		}
	}()
}

// doHop performs one anti-entropy request against a peer: it stamps the
// sender id and (with tracing on) a fresh child traceparent, times the round
// trip into the per-peer/per-route latency histogram, and records a hop span
// into the trace ring. kind doubles as the histogram's route label value.
func (n *Node) doHop(req *http.Request, kind, baseURL string) (*http.Response, error) {
	peer := n.peerIDByURL(baseURL)
	var tp obs.Traceparent
	traced := n.tracing()
	if traced {
		tp = obs.NewTraceparent()
		req.Header.Set(obs.TraceparentHeader, tp.String())
	}
	start := time.Now()
	resp, err := n.hc.Do(req)
	status := 0
	if err == nil {
		status = resp.StatusCode
	}
	n.observeAntiEntropy(peer, kind, time.Since(start))
	if traced {
		n.recordHop(tp, kind, peer, req.URL.Path, status, start)
	}
	return resp, err
}

// errDeltaFallback marks a delta sync that declined in favor of the full
// snapshot stream (too much divergence, or an empty local catalog where a
// bulk adopt is strictly cheaper than per-entry fetches).
var errDeltaFallback = errors.New("cluster: delta sync fell back to full snapshot")

// Sync converges this node with a peer, delta-first: diff digests and fetch
// only divergent entries; any delta failure — threshold exceeded, digest
// route unavailable, a fetch error mid-stream — falls back to the full
// snapshot pull, which remains the correctness backstop.
func (n *Node) Sync(ctx context.Context, baseURL string) error {
	err := n.PullDelta(ctx, baseURL)
	if err == nil {
		return nil
	}
	n.deltaFallback.Add(1)
	if !errors.Is(err, errDeltaFallback) {
		n.log.LogAttrs(ctx, slog.LevelDebug, "delta sync failed, pulling full snapshot",
			slog.String("peer", baseURL), slog.String("error", err.Error()))
	}
	return n.PullSnapshot(ctx, baseURL)
}

// PullDelta runs one delta anti-entropy round against a peer: fetch its
// digest table, diff against ours (skipping stamp-tracked keys, which
// converge through replicated mutations and hinted handoff), fetch each
// divergent entry as a verified trailered stream, and fold them in as one
// merge generation. The wire cost is O(changed entries) plus one digest
// document, against O(catalog) for a full pull. Returns errDeltaFallback
// (wrapped) when a full pull is the better plan.
func (n *Node) PullDelta(ctx context.Context, baseURL string) error {
	remote, err := n.fetchDigest(ctx, baseURL)
	if err != nil {
		return err
	}
	local, _, err := n.entryDigests()
	if err != nil {
		return err
	}
	var diff []string
	for k, de := range remote.Entries {
		if n.HasKeyStamp(k) {
			continue
		}
		if crc, ok := local[k]; ok && crc == de.CRC {
			continue
		}
		diff = append(diff, k)
	}
	if len(diff) == 0 {
		// All divergence (if any) is stamp-tracked: nothing bulk anti-entropy
		// may touch. Fold the epoch so the pull trigger quiesces.
		n.ObserveEpoch(remote.Epoch)
		n.deltaOK.Add(1)
		return nil
	}
	if len(local) == 0 {
		return fmt.Errorf("%w: local catalog is empty, bulk adopt is cheaper", errDeltaFallback)
	}
	if max := n.cfg.DeltaThreshold * float64(len(remote.Entries)); float64(len(diff)) > max {
		return fmt.Errorf("%w: %d of %d entries divergent (threshold %.0f%%)",
			errDeltaFallback, len(diff), len(remote.Entries), n.cfg.DeltaThreshold*100)
	}
	sort.Strings(diff)
	streams := make([][]byte, 0, len(diff))
	for _, k := range diff {
		data, err := n.fetchEntry(ctx, baseURL, k)
		if err != nil {
			return err
		}
		streams = append(streams, data)
	}
	gen, err := n.store.MergeEntries(streams, n.HasKeyStamp)
	if err != nil {
		return fmt.Errorf("cluster: delta merge from %s: %w", baseURL, err)
	}
	n.ObserveEpoch(remote.Epoch)
	n.deltaOK.Add(1)
	n.log.LogAttrs(ctx, slog.LevelInfo, "catalog delta pulled",
		slog.String("peer", baseURL), slog.Int("entries", len(diff)),
		slog.Uint64("generation", gen), slog.Uint64("epoch", remote.Epoch))
	return nil
}

// fetchDigest GETs a peer's digest document, bounded by the snapshot size
// cap; the bytes count against the delta wire-cost counter.
func (n *Node) fetchDigest(ctx context.Context, baseURL string) (DigestDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+PathDigest, nil)
	if err != nil {
		return DigestDoc{}, err
	}
	req.Header.Set(HeaderNode, n.cfg.SelfID)
	resp, err := n.doHop(req, obs.HopDigest, baseURL)
	if err != nil {
		return DigestDoc{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return DigestDoc{}, fmt.Errorf("cluster: digest %s: status %d", baseURL, resp.StatusCode)
	}
	data, err := n.readBounded(resp.Body, "digest")
	if err != nil {
		return DigestDoc{}, fmt.Errorf("cluster: digest %s: %w", baseURL, err)
	}
	n.bytesDelta.Add(uint64(len(data)))
	var doc DigestDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return DigestDoc{}, fmt.Errorf("cluster: digest %s: %w", baseURL, err)
	}
	return doc, nil
}

// fetchEntry GETs one entry's trailered stream from a peer, bounded by the
// snapshot size cap; the bytes count against the delta wire-cost counter.
func (n *Node) fetchEntry(ctx context.Context, baseURL, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+PathEntryPrefix+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderNode, n.cfg.SelfID)
	resp, err := n.doHop(req, obs.HopEntry, baseURL)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: entry %s from %s: status %d", key, baseURL, resp.StatusCode)
	}
	data, err := n.readBounded(resp.Body, "entry")
	if err != nil {
		return nil, fmt.Errorf("cluster: entry %s from %s: %w", key, baseURL, err)
	}
	n.bytesDelta.Add(uint64(len(data)))
	return data, nil
}

// readBounded reads a response body under the configured size cap, counting
// oversize rejections so a peer serving runaway streams is visible.
func (n *Node) readBounded(r io.Reader, what string) ([]byte, error) {
	max := n.cfg.SnapshotMaxBytes
	data, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > max {
		n.oversize.Add(1)
		return nil, fmt.Errorf("%s stream exceeds the %d-byte cap", what, max)
	}
	return data, nil
}

// PullSnapshot streams the checksummed catalog snapshot from a peer and
// merges it in: the trailer is verified, the payload re-validated,
// estimators recompiled through the catalog's core.Compile ingress path,
// and the result persisted through the store's (possibly fault-injected)
// filesystem. The merge is a union guarded by the per-key stamp table —
// keys this node has applied tracked mutations for are left alone (hinted
// handoff converges them precisely), and local-only keys are never deleted
// by a pull; an empty booting node degenerates to a full adopt. The peer's
// epoch header folds into ours on success.
func (n *Node) PullSnapshot(ctx context.Context, baseURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+PathSnapshot, nil)
	if err != nil {
		return err
	}
	req.Header.Set(HeaderNode, n.cfg.SelfID)
	resp, err := n.doHop(req, obs.HopSnapshot, baseURL)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: snapshot %s: status %d", baseURL, resp.StatusCode)
	}
	data, err := n.readBounded(resp.Body, "snapshot")
	if err != nil {
		return fmt.Errorf("cluster: snapshot %s: %w", baseURL, err)
	}
	n.bytesFull.Add(uint64(len(data)))
	gen, err := n.store.MergeSnapshot(data, n.HasKeyStamp)
	if err != nil {
		return fmt.Errorf("cluster: snapshot %s: %w", baseURL, err)
	}
	var remoteEpoch uint64
	if raw := resp.Header.Get(HeaderEpoch); raw != "" {
		fmt.Sscanf(raw, "%d", &remoteEpoch)
	}
	n.ObserveEpoch(remoteEpoch)
	n.pullsOK.Add(1)
	n.log.LogAttrs(ctx, slog.LevelInfo, "catalog snapshot pulled",
		slog.String("peer", baseURL), slog.Uint64("generation", gen),
		slog.Uint64("epoch", remoteEpoch), slog.Int("indexes", n.store.Len()))
	return nil
}

// Pulls reports completed and failed snapshot pulls (tests, metrics).
func (n *Node) Pulls() (ok, failed uint64) {
	return n.pullsOK.Load(), n.pullsFail.Load()
}

// DeltaPulls reports completed delta syncs and delta syncs that fell back
// to a full snapshot pull.
func (n *Node) DeltaPulls() (ok, fallback uint64) {
	return n.deltaOK.Load(), n.deltaFallback.Load()
}

// AntiEntropyBytes reports the bytes received over the wire by sync mode —
// the honest cost ledger the delta-sync gates (bench, clustercheck) read.
func (n *Node) AntiEntropyBytes() (delta, full uint64) {
	return n.bytesDelta.Load(), n.bytesFull.Load()
}

// OversizeRejections reports anti-entropy responses rejected by the
// configured size cap.
func (n *Node) OversizeRejections() uint64 { return n.oversize.Load() }

// Rounds reports the number of gossip rounds run.
func (n *Node) Rounds() uint64 { return n.rounds.Load() }

// SetTraceRing attaches the trace ring that receives hop records for this
// node's outbound cluster traffic. The service layer passes its request
// ring, so request and hop records stitch into one timeline.
func (n *Node) SetTraceRing(r *obs.TraceRing) { n.traceRing.Store(r) }

// TraceRing returns the attached hop-trace ring (nil when tracing is off).
func (n *Node) TraceRing() *obs.TraceRing { return n.traceRing.Load() }

// tracing reports whether hop tracing is enabled, so disabled nodes skip
// the traceparent render entirely.
func (n *Node) tracing() bool { return n.traceRing.Load() != nil }

// peerIDByURL resolves a peer's node ID from its base URL, falling back to
// the URL itself for peers not yet in the member table (seed contacts).
func (n *Node) peerIDByURL(baseURL string) string {
	for _, p := range n.mem.Peers() {
		if p.URL == baseURL {
			return p.ID
		}
	}
	return baseURL
}

// recordHop writes one completed cluster-internal send into the attached
// trace ring (no-op when tracing is off).
func (n *Node) recordHop(tp obs.Traceparent, kind, peer, route string, status int, start time.Time) {
	n.traceRing.Load().RecordHop(tp, obs.SpanID{}, kind, peer, route, status, start, time.Since(start))
}

// RegisterMetrics wires the node's cluster metrics into an obs registry:
// cluster-level gauges/counters now, and per-peer epfis_cluster_peer_up
// gauges plus heartbeat-latency histograms as peers are discovered.
func (n *Node) RegisterMetrics(reg *obs.Registry) {
	n.obsMu.Lock()
	n.reg = reg
	n.obsMu.Unlock()
	reg.GaugeFunc("epfis_cluster_epoch", "Cluster mutation epoch (Lamport).",
		func() float64 { return float64(n.epoch.Load()) })
	reg.GaugeFunc("epfis_cluster_members", "Members on the hash ring, self included.",
		func() float64 { return float64(n.ring.Load().Len()) })
	reg.GaugeFunc("epfis_cluster_replicas", "Replica-set size R.",
		func() float64 { return float64(n.cfg.Replicas) })
	reg.CounterFunc("epfis_cluster_gossip_rounds_total", "Gossip rounds run.",
		func() float64 { return float64(n.rounds.Load()) })
	reg.CounterFunc("epfis_cluster_snapshot_pulls_total", "Catalog snapshots pulled from peers.",
		func() float64 { return float64(n.pullsOK.Load()) })
	reg.CounterFunc("epfis_cluster_snapshot_pull_failures_total", "Snapshot pulls that failed.",
		func() float64 { return float64(n.pullsFail.Load()) })
	reg.CounterFunc("epfis_cluster_delta_pulls_total", "Delta anti-entropy syncs completed.",
		func() float64 { return float64(n.deltaOK.Load()) })
	reg.CounterFunc("epfis_cluster_delta_fallbacks_total", "Delta syncs that fell back to a full snapshot pull.",
		func() float64 { return float64(n.deltaFallback.Load()) })
	reg.CounterFunc("epfis_cluster_antientropy_bytes_total", "Anti-entropy bytes received by sync mode.",
		func() float64 { return float64(n.bytesDelta.Load()) }, obs.Label{Name: "mode", Value: "delta"})
	reg.CounterFunc("epfis_cluster_antientropy_bytes_total", "Anti-entropy bytes received by sync mode.",
		func() float64 { return float64(n.bytesFull.Load()) }, obs.Label{Name: "mode", Value: "full"})
	reg.CounterFunc("epfis_cluster_antientropy_oversize_total", "Anti-entropy responses rejected by the size cap.",
		func() float64 { return float64(n.oversize.Load()) })
	n.syncPeerGauges()
}

// heartbeatBuckets spans 100µs … ~1.6s: loopback heartbeats are sub-ms, WAN
// peers and injected slow-IO land in the tail.
var heartbeatBuckets = obs.ExpBuckets(1e-4, 2, 14)

// observeHeartbeat records one successful heartbeat round trip to a peer.
func (n *Node) observeHeartbeat(peerID string, d time.Duration) {
	if peerID == "" {
		return
	}
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	if n.reg == nil {
		return
	}
	h, ok := n.hbLat[peerID]
	if !ok {
		h = n.reg.Histogram("epfis_cluster_heartbeat_seconds",
			"Gossip round-trip latency by peer.", heartbeatBuckets,
			obs.Label{Name: "peer", Value: peerID})
		n.hbLat[peerID] = h
	}
	h.Observe(d.Seconds())
}

// observeAntiEntropy records one anti-entropy round trip (digest, entry, or
// snapshot pull) into the per-peer, per-route latency histogram, registering
// the series lazily as peers and routes are first used.
func (n *Node) observeAntiEntropy(peerID, route string, d time.Duration) {
	if peerID == "" {
		return
	}
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	if n.reg == nil {
		return
	}
	key := peerID + "\x00" + route
	h, ok := n.aeLat[key]
	if !ok {
		h = n.reg.Histogram("epfis_cluster_antientropy_seconds",
			"Anti-entropy round-trip latency by peer and route.", heartbeatBuckets,
			obs.Label{Name: "peer", Value: peerID},
			obs.Label{Name: "route", Value: route})
		n.aeLat[key] = h
	}
	h.Observe(d.Seconds())
}

// syncPeerGauges refreshes the per-peer up gauges (1 alive, 0 otherwise),
// registering gauges for newly discovered peers.
func (n *Node) syncPeerGauges() {
	peers := n.mem.Peers()
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	if n.reg == nil {
		return
	}
	for _, p := range peers {
		g, ok := n.peerUp[p.ID]
		if !ok {
			g = n.reg.Gauge("epfis_cluster_peer_up",
				"1 while the peer is alive (heard from within the suspect window).",
				obs.Label{Name: "peer", Value: p.ID})
			n.peerUp[p.ID] = g
		}
		if p.State == StateAlive {
			g.Set(1)
		} else {
			g.Set(0)
		}
	}
}
