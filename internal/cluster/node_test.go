package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"epfis/internal/catalog"
	"epfis/internal/curvefit"
	"epfis/internal/obs"
	"epfis/internal/stats"
)

// testEntry builds a valid catalog entry (mirrors the catalog tests' helper).
func testEntry(table, column string, fmin int64) *stats.IndexStats {
	return &stats.IndexStats{
		Table: table, Column: column,
		T: 100, N: 1000, I: 100,
		BMin: 12, BMax: 100, FMin: fmin, C: 0.5,
		Curve: curvefit.PolyLine{Knots: []curvefit.Point{
			{X: 12, Y: float64(fmin)}, {X: 100, Y: 100},
		}},
		GridPoints:  2,
		CollectedAt: time.Unix(0, 0).UTC(),
	}
}

// storeWith builds an in-memory store holding the given entries.
func storeWith(t *testing.T, entries ...*stats.IndexStats) *catalog.Store {
	t.Helper()
	st := catalog.NewStore()
	for _, e := range entries {
		if _, err := st.Put(e); err != nil {
			t.Fatalf("Put(%s.%s): %v", e.Table, e.Column, err)
		}
	}
	return st
}

// serveNode exposes a node's gossip and snapshot routes the way the service
// layer does, so cluster tests can run real HTTP exchanges without importing
// internal/service (which would be an import cycle).
func serveNode(t *testing.T, n *Node) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathGossip, func(w http.ResponseWriter, r *http.Request) {
		var doc Doc
		if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.Merge(doc))
	})
	mux.HandleFunc("GET "+PathSnapshot, func(w http.ResponseWriter, r *http.Request) {
		data, gen, err := n.store.ExportSnapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set(HeaderNode, n.SelfID())
		w.Header().Set(HeaderEpoch, strconv.FormatUint(n.Epoch(), 10))
		w.Header().Set(HeaderGeneration, strconv.FormatUint(gen, 10))
		w.Write(data)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNewNodeValidation(t *testing.T) {
	st := catalog.NewStore()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"missing SelfID", Config{SelfURL: "http://a", Store: st}},
		{"missing SelfURL", Config{SelfID: "a", Store: st}},
		{"missing Store", Config{SelfID: "a", SelfURL: "http://a"}},
		{"replicas too big", Config{SelfID: "a", SelfURL: "http://a", Store: st, Replicas: MaxReplicas + 1}},
		{"replicas negative", Config{SelfID: "a", SelfURL: "http://a", Store: st, Replicas: -1}},
	}
	for _, tc := range cases {
		if _, err := NewNode(tc.cfg); err == nil {
			t.Errorf("%s: NewNode succeeded, want error", tc.name)
		}
	}
	n, err := NewNode(Config{SelfID: "a", SelfURL: "http://a", Store: st})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if n.Replicas() != DefaultReplicas {
		t.Errorf("Replicas = %d, want default %d", n.Replicas(), DefaultReplicas)
	}
	if r := n.Ring(); r.Len() != 1 || r.Members()[0] != "a" {
		t.Errorf("initial ring = %v, want [a]", r.Members())
	}
}

func TestNodeEpochSemantics(t *testing.T) {
	empty, _ := NewNode(Config{SelfID: "a", SelfURL: "http://a", Store: catalog.NewStore()})
	if empty.Epoch() != 0 {
		t.Errorf("empty node epoch = %d, want 0 (adopts the cluster's catalog)", empty.Epoch())
	}
	loaded, _ := NewNode(Config{SelfID: "b", SelfURL: "http://b",
		Store: storeWith(t, testEntry("t", "c", 500))})
	if loaded.Epoch() != 1 {
		t.Errorf("loaded node epoch = %d, want 1 (peers should pull from it)", loaded.Epoch())
	}

	if got := loaded.BumpEpoch(); got != 2 {
		t.Errorf("BumpEpoch = %d, want 2", got)
	}
	loaded.ObserveEpoch(10)
	if loaded.Epoch() != 10 {
		t.Errorf("after ObserveEpoch(10): %d", loaded.Epoch())
	}
	loaded.ObserveEpoch(4) // max-fold: lower epochs are ignored
	if loaded.Epoch() != 10 {
		t.Errorf("ObserveEpoch(4) regressed epoch to %d", loaded.Epoch())
	}
}

func TestNodeMergeDiscoversMembersAndRebuildsRing(t *testing.T) {
	n, _ := NewNode(Config{SelfID: "a", SelfURL: "http://a",
		Store: catalog.NewStore(), Replicas: 2})
	reply := n.Merge(Doc{
		Self: NodeInfo{ID: "b", URL: "http://b", Generation: 2, Epoch: 0, CatalogHash: ""},
		Members: []NodeInfo{
			{ID: "b", URL: "http://b"},
			{ID: "c", URL: "http://c"},
			{ID: "a", URL: "http://a"}, // self in the member list is ignored
		},
	})

	if got := n.Ring().Members(); len(got) != 3 {
		t.Fatalf("ring members after merge = %v, want a,b,c", got)
	}
	if reply.Self.ID != "a" || reply.Replicas != 2 {
		t.Errorf("merge reply self = %+v, replicas = %d", reply.Self, reply.Replicas)
	}
	// The reply's member list carries everyone for onward discovery.
	ids := map[string]bool{}
	for _, m := range reply.Members {
		ids[m.ID] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !ids[want] {
			t.Errorf("merge reply members missing %s: %+v", want, reply.Members)
		}
	}
	// Direct contact marked b alive; c is known but never heard from.
	if p, _ := n.mem.Peer("b"); p.State != StateAlive || p.Generation != 2 {
		t.Errorf("peer b after merge = %+v", p)
	}

	// Owners covers self with a synthesized alive record.
	for _, k := range []string{"t.a", "t.b", "u.c", "v.d"} {
		owners := n.Owners(k)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q) = %v, want 2 entries", k, owners)
		}
		for _, o := range owners {
			if o.ID == "a" && o.URL != "http://a" {
				t.Errorf("self owner entry lost URL: %+v", o)
			}
		}
		if n.Owns(k) != (owners[0].ID == "a" || owners[1].ID == "a") {
			t.Errorf("Owns(%q) disagrees with Owners", k)
		}
	}
}

func TestNodeGossipRoundTripAndSnapshotPull(t *testing.T) {
	// Source node: has statistics, epoch 1.
	src, err := NewNode(Config{SelfID: "src", SelfURL: "http://src",
		Store: storeWith(t, testEntry("orders", "o_custkey", 500), testEntry("lineitem", "l_partkey", 450))})
	if err != nil {
		t.Fatal(err)
	}
	srcSrv := serveNode(t, src)
	src.cfg.SelfURL = srcSrv.URL // advertise the live listener

	// Recovering node: empty store, seeds point at the source.
	dst, err := NewNode(Config{SelfID: "dst", SelfURL: "http://dst",
		Store: catalog.NewStore(), Seeds: []string{srcSrv.URL}})
	if err != nil {
		t.Fatal(err)
	}

	dst.Tick(context.Background())
	if dst.Rounds() != 1 {
		t.Errorf("Rounds = %d, want 1", dst.Rounds())
	}
	// Gossip discovered the source...
	if p, ok := dst.mem.Peer("src"); !ok || p.State != StateAlive {
		t.Fatalf("source not discovered alive: %+v ok=%v", p, ok)
	}
	// ...and the epoch/hash gap triggered an async snapshot pull.
	waitUntil(t, 5*time.Second, "snapshot pull", func() bool {
		ok, _ := dst.Pulls()
		return ok == 1
	})
	if dst.store.Len() != 2 {
		t.Fatalf("imported store has %d entries, want 2", dst.store.Len())
	}
	if dst.Epoch() != src.Epoch() {
		t.Errorf("epoch after pull = %d, want %d", dst.Epoch(), src.Epoch())
	}
	if dh, sh := dst.CatalogHash(), src.CatalogHash(); dh != sh || dh == "" {
		t.Errorf("content hash after pull = %q, want %q", dh, sh)
	}
	// The imported statistics are bit-exact.
	got, err := dst.store.Get("orders", "o_custkey")
	if err != nil {
		t.Fatalf("Get after import: %v", err)
	}
	if got.FMin != 500 || got.T != 100 {
		t.Errorf("imported entry = %+v", got)
	}

	// Converged: another round must not pull again.
	dst.Tick(context.Background())
	waitUntil(t, time.Second, "round settle", func() bool { return dst.Rounds() == 2 })
	time.Sleep(20 * time.Millisecond)
	if ok, _ := dst.Pulls(); ok != 1 {
		t.Errorf("converged node pulled again: %d pulls", ok)
	}
}

func TestNodePullSnapshotRejectsGarbage(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"not":"a snapshot"}`))
	}))
	defer srv.Close()
	n, _ := NewNode(Config{SelfID: "a", SelfURL: "http://a", Store: catalog.NewStore()})
	if err := n.PullSnapshot(context.Background(), srv.URL); err == nil {
		t.Fatal("PullSnapshot accepted a stream without a checksum trailer")
	}
	if n.store.Len() != 0 {
		t.Errorf("garbage import mutated the store: %d entries", n.store.Len())
	}
}

func TestNodeEqualEpochDivergenceDoesNotPull(t *testing.T) {
	a, _ := NewNode(Config{SelfID: "a", SelfURL: "http://a",
		Store: storeWith(t, testEntry("t", "x", 500))})
	// A peer at the same epoch with a different hash is a conflict, not a
	// pull trigger.
	a.Merge(Doc{Self: NodeInfo{ID: "b", URL: "http://b", Epoch: a.Epoch(),
		CatalogHash: "crc32c:ffffffff"}})
	time.Sleep(20 * time.Millisecond)
	if ok, fail := a.Pulls(); ok != 0 || fail != 0 {
		t.Errorf("equal-epoch divergence triggered a pull: ok=%d fail=%d", ok, fail)
	}
}

func TestNodeMetricsExposition(t *testing.T) {
	src, _ := NewNode(Config{SelfID: "src", SelfURL: "http://src",
		Store: storeWith(t, testEntry("t", "x", 500))})
	srcSrv := serveNode(t, src)

	n, _ := NewNode(Config{SelfID: "n", SelfURL: "http://n",
		Store: catalog.NewStore(), Seeds: []string{srcSrv.URL}})
	reg := obs.NewRegistry()
	n.RegisterMetrics(reg)
	n.Tick(context.Background())

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`epfis_cluster_members 2`,
		`epfis_cluster_peer_up{peer="src"} 1`,
		`epfis_cluster_heartbeat_seconds_count{peer="src"} 1`,
		`epfis_cluster_gossip_rounds_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

func TestNodeHealthDocShape(t *testing.T) {
	n, _ := NewNode(Config{SelfID: "a", SelfURL: "http://a",
		Store: storeWith(t, testEntry("t", "x", 500)), Replicas: 2, VNodes: 32})
	n.Merge(Doc{Self: NodeInfo{ID: "b", URL: "http://b", Epoch: 5}})
	doc := n.HealthDoc()
	if doc.Self.ID != "a" || doc.Self.Epoch != n.Epoch() || doc.Self.CatalogHash == "" {
		t.Errorf("HealthDoc self = %+v", doc.Self)
	}
	if doc.Replicas != 2 || doc.VNodes != 32 {
		t.Errorf("HealthDoc R/vnodes = %d/%d", doc.Replicas, doc.VNodes)
	}
	if len(doc.Members) != 2 || doc.Members[0].ID != "a" {
		t.Errorf("HealthDoc members = %+v", doc.Members)
	}
	// Round-trips through JSON (the wire format).
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Doc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Self != doc.Self {
		t.Errorf("Doc did not round-trip: %+v vs %+v", back.Self, doc.Self)
	}
}

func TestStampOrderingAndRecord(t *testing.T) {
	var zero Stamp
	a1 := Stamp{Epoch: 1, Origin: "node-a"}
	b1 := Stamp{Epoch: 1, Origin: "node-b"}
	a2 := Stamp{Epoch: 2, Origin: "node-a"}
	if !zero.Less(a1) || a1.Less(zero) {
		t.Error("zero stamp must order before any real stamp")
	}
	if !a1.Less(b1) || b1.Less(a1) {
		t.Error("equal epochs must tie-break by origin, identically everywhere")
	}
	if !b1.Less(a2) || a2.Less(b1) {
		t.Error("epoch dominates origin")
	}
	if a1.Less(a1) {
		t.Error("a stamp must not order before itself (idempotent redelivery)")
	}

	n, _ := NewNode(Config{SelfID: "a", SelfURL: "http://a", Store: catalog.NewStore()})
	if n.HasKeyStamp("k") {
		t.Error("fresh node tracks no stamps")
	}
	n.RecordKeyStamp("k", b1)
	n.RecordKeyStamp("k", a1) // older by tiebreak: must not regress
	if got := n.KeyStamp("k"); got != b1 {
		t.Errorf("KeyStamp after regressing record = %+v, want %+v", got, b1)
	}
	n.RecordKeyStamp("k", a2)
	if got := n.KeyStamp("k"); got != a2 {
		t.Errorf("KeyStamp after advancing record = %+v, want %+v", got, a2)
	}
	if !n.HasKeyStamp("k") || n.HasKeyStamp("other") {
		t.Error("HasKeyStamp must reflect exactly the recorded keys")
	}
	if got := n.KeyStamps(); len(got) != 1 || got["k"] != a2 {
		t.Errorf("KeyStamps = %+v", got)
	}
}
